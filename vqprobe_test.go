package vqprobe_test

import (
	"bytes"
	"testing"

	"vqprobe"
)

// facade tests share one small simulated corpus.
var facadeSessions = func() []vqprobe.Session {
	return vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 160, Seed: 3})
}()

func TestTrainAndDiagnose(t *testing.T) {
	model, err := vqprobe.Train(facadeSessions, vqprobe.DetectSeverity, vqprobe.AllVantagePoints)
	if err != nil {
		t.Fatal(err)
	}
	if len(model.SelectedFeatures()) == 0 {
		t.Fatal("no features selected")
	}
	conf, err := model.Evaluate(facadeSessions)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Accuracy() < 0.8 {
		t.Errorf("training-set accuracy %.2f suspiciously low", conf.Accuracy())
	}
	d := model.DiagnoseSession(facadeSessions[0])
	if d.Class == "" || d.Severity == "" {
		t.Errorf("empty diagnosis: %+v", d)
	}
}

func TestDiagnoseWithPartialRecords(t *testing.T) {
	model, err := vqprobe.Train(facadeSessions, vqprobe.IdentifyRootCause, vqprobe.AllVantagePoints)
	if err != nil {
		t.Fatal(err)
	}
	// Only the mobile record available: must still produce a class.
	s := facadeSessions[1]
	d := model.Diagnose(map[string]map[string]float64{
		vqprobe.VPMobile: s.Records[vqprobe.VPMobile],
	})
	if d.Class == "" {
		t.Error("diagnosis with a single VP returned nothing")
	}
	// No records at all: still answers (majority behaviour).
	if d := model.Diagnose(nil); d.Class == "" {
		t.Error("diagnosis with no records returned nothing")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	model, err := vqprobe.Train(facadeSessions, vqprobe.IdentifyRootCause, vqprobe.AllVantagePoints)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := vqprobe.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Task != model.Task {
		t.Errorf("task lost: %v", back.Task)
	}
	for i, s := range facadeSessions {
		if i >= 40 {
			break
		}
		if got, want := back.DiagnoseSession(s), model.DiagnoseSession(s); got != want {
			t.Fatalf("loaded model disagrees on session %d: %+v vs %+v", i, got, want)
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := vqprobe.LoadModel(bytes.NewBufferString("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := vqprobe.LoadModel(bytes.NewBufferString("{}")); err == nil {
		t.Error("empty model accepted")
	}
}

func TestDatasetExportTasks(t *testing.T) {
	for _, task := range []vqprobe.Task{
		vqprobe.DetectSeverity, vqprobe.LocateProblem,
		vqprobe.IdentifyRootCause, vqprobe.DetectProblem,
	} {
		d, err := vqprobe.Dataset(facadeSessions, task, []string{vqprobe.VPMobile})
		if err != nil {
			t.Fatalf("%s: %v", task, err)
		}
		if d.Len() == 0 {
			t.Errorf("%s produced an empty dataset", task)
		}
	}
	if _, err := vqprobe.Dataset(facadeSessions, "bogus", nil); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestTrainFromCSVRoundTrip(t *testing.T) {
	d, err := vqprobe.Dataset(facadeSessions, vqprobe.DetectSeverity, vqprobe.AllVantagePoints)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	model, err := vqprobe.TrainFromCSV(&buf, vqprobe.DetectSeverity, vqprobe.AllVantagePoints)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := d.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	conf, err := model.EvaluateCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Accuracy() < 0.8 {
		t.Errorf("CSV round-trip accuracy %.2f", conf.Accuracy())
	}
}

func TestTreeTextRenders(t *testing.T) {
	model, err := vqprobe.Train(facadeSessions, vqprobe.DetectSeverity, []string{vqprobe.VPMobile})
	if err != nil {
		t.Fatal(err)
	}
	if txt := model.TreeText(); len(txt) < 10 {
		t.Errorf("tree rendering too small: %q", txt)
	}
}

func TestSimulationDeterminism(t *testing.T) {
	a := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 10, Seed: 77})
	b := vqprobe.SimulateControlled(vqprobe.SimulationConfig{Sessions: 10, Seed: 77})
	for i := range a {
		if a[i].MOS != b[i].MOS || a[i].Label != b[i].Label {
			t.Fatalf("simulation not deterministic at session %d", i)
		}
	}
}

func TestFeatureRanking(t *testing.T) {
	model, err := vqprobe.Train(facadeSessions, vqprobe.IdentifyRootCause, vqprobe.AllVantagePoints)
	if err != nil {
		t.Fatal(err)
	}
	ranking := model.FeatureRanking()
	if len(ranking) == 0 {
		t.Fatal("empty ranking")
	}
	for cls, scores := range ranking {
		prev := 1e18
		for _, s := range scores {
			if s.Score > prev {
				t.Errorf("class %s ranking not sorted", cls)
			}
			prev = s.Score
		}
	}
}

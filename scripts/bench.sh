#!/usr/bin/env bash
# bench.sh — training-path, fleet, and inference performance harness.
#
#   scripts/bench.sh run     full-length benchmark run; rewrites the
#                            committed baselines reports/BENCH_PR3.json
#                            (training path), reports/BENCH_PR6.json
#                            (fleet sessions/sec), reports/BENCH_PR8.json
#                            (batch/forest inference + snapshot load),
#                            reports/BENCH_PR9.json (self-lint cold vs
#                            cached-warm) and reports/BENCH_PR10.json
#                            (router throughput + failover latency)
#   scripts/bench.sh check   quick run compared against the committed
#                            baselines; fails on a gross regression
#                            (the CI smoke guard)
#
# The training benchmark set covers feature construction, FCBF
# selection, C4.5 tree building, prediction, and 10-fold
# cross-validation. The fleet benchmark runs one b.N-session fleet so
# ns/op is ns per simulated session; bench_report.py derives the
# sessions/sec figure recorded in the baseline. The inference set times
# the serving hot path — scalar vs batch single-tree, batch forest
# (serial + parallel), the pointer-forest vector path, and binary
# snapshot load — with one iteration = one prediction, so
# bench_report.py derives predictions_per_sec and snapshot_load_ms
# directly (see docs/PERFORMANCE.md for the methodology). The router
# set drives full /diagnose round trips through an in-process vqroute
# handler over loopback replicas: rows/s is proxy throughput, and the
# failover bench's ns/op is the detect-and-re-route latency for a
# batch whose sticky replica rejects it (docs/ROUTING.md).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES='BenchmarkFeatureConstruction|BenchmarkFCBFSelection|BenchmarkC45Training|BenchmarkC45Prediction|BenchmarkCrossValidation'
BASELINE=reports/BENCH_PR3.json
FLEET_BENCH='BenchmarkFleetSessions'
FLEET_BASELINE=reports/BENCH_PR6.json
INFER_BENCHES='BenchmarkPredictRowScalar|BenchmarkPredictBatch|BenchmarkForestPredictBatch|BenchmarkForestPredictBatchParallel|BenchmarkForestPredictVector|BenchmarkSnapshotLoad'
INFER_BASELINE=reports/BENCH_PR8.json
LINT_BENCHES='BenchmarkSelfLintCold|BenchmarkSelfLintWarm'
LINT_BASELINE=reports/BENCH_PR9.json
ROUTE_BENCHES='BenchmarkRouterDiagnose|BenchmarkRouterFailover'
ROUTE_BASELINE=reports/BENCH_PR10.json
MODE="${1:-run}"

run_bench() { # $1: -benchtime value
  go test -run '^$' -bench "^(${BENCHES})\$" -benchmem -benchtime "$1" .
}

run_fleet_bench() { # $1: -benchtime value (use a fixed Nx: one iteration = one session)
  go test -run '^$' -bench "^${FLEET_BENCH}\$" -benchmem -benchtime "$1" ./internal/fleet/
}

run_infer_bench() { # $1: -benchtime value (duration-based: iteration counts span 5 orders of magnitude)
  go test -run '^$' -bench "^(${INFER_BENCHES})\$" -benchmem -benchtime "$1" ./internal/ml/c45/
}

run_lint_bench() { # always 1x: one cold iteration type-checks the whole module (~13s)
  go test -run '^$' -bench "^(${LINT_BENCHES})\$" -benchmem -benchtime 1x ./internal/lint/
}

run_route_bench() { # $1: -benchtime value (duration-based: one iteration = one HTTP round trip, ~0.1–1 ms)
  go test -run '^$' -bench "^(${ROUTE_BENCHES})\$" -benchmem -benchtime "$1" ./internal/route/
}

case "$MODE" in
run)
  out="$(run_bench 1s)"
  printf '%s\n' "$out"
  printf '%s\n' "$out" | python3 scripts/bench_report.py parse >"$BASELINE"
  echo "wrote $BASELINE"
  fleet_out="$(run_fleet_bench 200000x)"
  printf '%s\n' "$fleet_out"
  printf '%s\n' "$fleet_out" | python3 scripts/bench_report.py parse >"$FLEET_BASELINE"
  echo "wrote $FLEET_BASELINE"
  infer_out="$(run_infer_bench 1s)"
  printf '%s\n' "$infer_out"
  printf '%s\n' "$infer_out" | python3 scripts/bench_report.py parse >"$INFER_BASELINE"
  echo "wrote $INFER_BASELINE"
  lint_out="$(run_lint_bench)"
  printf '%s\n' "$lint_out"
  printf '%s\n' "$lint_out" | python3 scripts/bench_report.py parse >"$LINT_BASELINE"
  echo "wrote $LINT_BASELINE"
  route_out="$(run_route_bench 1s)"
  printf '%s\n' "$route_out"
  printf '%s\n' "$route_out" | python3 scripts/bench_report.py parse >"$ROUTE_BASELINE"
  echo "wrote $ROUTE_BASELINE"
  ;;
check)
  # 100x: enough iterations to keep the sub-µs benches out of warmup
  # noise (5x flaked BenchmarkC45Prediction past the 4x guard) while
  # staying a quick smoke.
  out="$(run_bench 100x)"
  printf '%s\n' "$out"
  printf '%s\n' "$out" | python3 scripts/bench_report.py parse |
    python3 scripts/bench_report.py compare "$BASELINE"
  fleet_out="$(run_fleet_bench 20000x)"
  printf '%s\n' "$fleet_out"
  printf '%s\n' "$fleet_out" | python3 scripts/bench_report.py parse |
    python3 scripts/bench_report.py compare "$FLEET_BASELINE"
  # Duration-based benchtime: the inference set spans ~40 ns
  # (PredictBatch) to ~1 ms (SnapshotLoad) per iteration, so no fixed
  # Nx suits all of them.
  infer_out="$(run_infer_bench 100ms)"
  printf '%s\n' "$infer_out"
  printf '%s\n' "$infer_out" | python3 scripts/bench_report.py parse |
    python3 scripts/bench_report.py compare "$INFER_BASELINE"
  lint_out="$(run_lint_bench)"
  printf '%s\n' "$lint_out"
  printf '%s\n' "$lint_out" | python3 scripts/bench_report.py parse |
    python3 scripts/bench_report.py compare "$LINT_BASELINE"
  route_out="$(run_route_bench 100ms)"
  printf '%s\n' "$route_out"
  printf '%s\n' "$route_out" | python3 scripts/bench_report.py parse |
    python3 scripts/bench_report.py compare "$ROUTE_BASELINE"
  ;;
*)
  echo "usage: scripts/bench.sh [run|check]" >&2
  exit 2
  ;;
esac

#!/usr/bin/env bash
# bench.sh — training-path performance harness.
#
#   scripts/bench.sh run     full-length benchmark run; rewrites the
#                            committed baseline reports/BENCH_PR3.json
#   scripts/bench.sh check   quick run compared against the committed
#                            baseline; fails on a gross regression
#                            (the CI smoke guard)
#
# The benchmark set covers the training hot path this baseline tracks:
# feature construction, FCBF selection, C4.5 tree building, prediction,
# and 10-fold cross-validation.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES='BenchmarkFeatureConstruction|BenchmarkFCBFSelection|BenchmarkC45Training|BenchmarkC45Prediction|BenchmarkCrossValidation'
BASELINE=reports/BENCH_PR3.json
MODE="${1:-run}"

run_bench() { # $1: -benchtime value
  go test -run '^$' -bench "^(${BENCHES})\$" -benchmem -benchtime "$1" .
}

case "$MODE" in
run)
  out="$(run_bench 1s)"
  printf '%s\n' "$out"
  printf '%s\n' "$out" | python3 scripts/bench_report.py parse >"$BASELINE"
  echo "wrote $BASELINE"
  ;;
check)
  out="$(run_bench 5x)"
  printf '%s\n' "$out"
  printf '%s\n' "$out" | python3 scripts/bench_report.py parse |
    python3 scripts/bench_report.py compare "$BASELINE"
  ;;
*)
  echo "usage: scripts/bench.sh [run|check]" >&2
  exit 2
  ;;
esac

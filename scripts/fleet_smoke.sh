#!/usr/bin/env bash
# fleet_smoke.sh — CI smoke for the fleet simulator (docs/FLEET.md).
#
# Asserts the two load-bearing vqfleet guarantees on a real binary:
#
#   determinism     a 50k-session fleet produces byte-identical summary
#                   files for workers 1/2/8, on a race-instrumented
#                   build (so the scheduler actually interleaves shards
#                   differently run to run)
#   bounded memory  peak RSS is set by shards × maxlive pooled slots,
#                   not by -sessions: a 20x session-count spread must
#                   not move the high-water mark materially
set -euo pipefail
cd "$(dirname "$0")/.."

SESSIONS="${FLEET_SMOKE_SESSIONS:-50000}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== determinism: identical summary bytes for workers 1/2/8 (race build) =="
go build -race -o "$tmp/vqfleet.race" ./cmd/vqfleet
for w in 1 2 8; do
  "$tmp/vqfleet.race" -sessions "$SESSIONS" -workers "$w" -quiet -o "$tmp/w$w.txt"
done
cmp "$tmp/w1.txt" "$tmp/w2.txt"
cmp "$tmp/w1.txt" "$tmp/w8.txt"
echo "ok: $SESSIONS sessions, byte-identical for any worker count"

echo "== bounded memory: peak RSS independent of session count =="
go build -o "$tmp/vqfleet" ./cmd/vqfleet
peak_rss() { # $@: command; echoes peak VmHWM in kB
  "$@" &
  local pid=$! peak=0 v
  while kill -0 "$pid" 2>/dev/null; do
    v="$(awk '/VmHWM/{print $2}' "/proc/$pid/status" 2>/dev/null || true)"
    if [ -n "${v:-}" ] && [ "$v" -gt "$peak" ]; then peak="$v"; fi
    sleep 0.02
  done
  wait "$pid"
  echo "$peak"
}
small="$(peak_rss "$tmp/vqfleet" -sessions 10000 -quiet -o "$tmp/small.txt")"
big=$((SESSIONS * 4))
large="$(peak_rss "$tmp/vqfleet" -sessions "$big" -quiet -o "$tmp/large.txt")"
echo "peak RSS: ${small}kB @ 10000 sessions, ${large}kB @ $big sessions"
# Allow 1.5x + 16MB of slack for GC timing; real leakage of per-session
# state at 20x the sessions dwarfs that immediately.
if [ "$large" -gt $((small * 3 / 2 + 16384)) ]; then
  echo "FAIL: peak RSS grew with session count" >&2
  exit 1
fi
echo "ok: peak RSS flat across a $((big / 10000))x session-count spread"

#!/usr/bin/env bash
# route_smoke.sh — CI smoke for fleet mode (docs/ROUTING.md).
#
# Boots two real race-instrumented vqserve replicas behind a
# race-instrumented vqroute and asserts the router tier end to end
# across actual processes:
#
#   routing      a /diagnose batch through the router answers every row
#                with a classification, spread across both replicas
#   rollout      a staged model rollout (canary → hash verify → fan out)
#                completes with 200 and both replicas converge on the
#                new snapshot hash
#   failover     SIGKILLing one replica mid-fleet loses no rows: the
#                next batch still answers everything, the router records
#                a failover, and the health loop ejects the dead replica
#   shed-vs-503  with the whole fleet gone the router answers 503
set -euo pipefail
cd "$(dirname "$0")/.."

A_ADDR="${ROUTE_SMOKE_A:-127.0.0.1:18701}"
B_ADDR="${ROUTE_SMOKE_B:-127.0.0.1:18702}"
R_ADDR="${ROUTE_SMOKE_R:-127.0.0.1:18710}"
tmp="$(mktemp -d)"
a_pid="" b_pid="" r_pid=""
cleanup() {
  for pid in "$a_pid" "$b_pid" "$r_pid"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  for pid in "$a_pid" "$b_pid" "$r_pid"; do
    [ -n "$pid" ] && wait "$pid" 2>/dev/null || true
  done
  rm -rf "$tmp"
}
trap cleanup EXIT

wait_http() { # $1: url, $2: log to dump on failure
  for i in $(seq 1 50); do
    curl -fsS "$1" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "never answered: $1" >&2
  cat "$2" >&2
  exit 1
}

echo "== build (vqserve + vqroute race-instrumented) =="
go build -race -o "$tmp/vqserve" ./cmd/vqserve
go build -race -o "$tmp/vqroute" ./cmd/vqroute
go build -o "$tmp/vqlab" ./cmd/vqlab
go build -o "$tmp/vqtrain" ./cmd/vqtrain

echo "== train two model versions =="
"$tmp/vqlab" -sessions 120 -seed 1 -out "$tmp/data1.csv"
"$tmp/vqtrain" -in "$tmp/data1.csv" -out "$tmp/model_v1.json" >/dev/null
"$tmp/vqlab" -sessions 140 -seed 2 -out "$tmp/data2.csv"
"$tmp/vqtrain" -in "$tmp/data2.csv" -out "$tmp/model_v2.json" >/dev/null
# Both replicas serve the same model path, as a shared artifact store
# would: the staged rollout below re-reads it on /-/reload.
cp "$tmp/model_v1.json" "$tmp/model.json"

echo "== start two replicas + the router =="
"$tmp/vqserve" -model "$tmp/model.json" -addr "$A_ADDR" 2>"$tmp/a.log" &
a_pid=$!
"$tmp/vqserve" -model "$tmp/model.json" -addr "$B_ADDR" 2>"$tmp/b.log" &
b_pid=$!
wait_http "http://$A_ADDR/healthz" "$tmp/a.log"
wait_http "http://$B_ADDR/healthz" "$tmp/b.log"
"$tmp/vqroute" -replicas "http://$A_ADDR,http://$B_ADDR" -addr "$R_ADDR" \
  -health-every 200ms -eject-after 2 2>"$tmp/r.log" &
r_pid=$!
wait_http "http://$R_ADDR/healthz" "$tmp/r.log"
curl -fsS "http://$R_ADDR/healthz" | grep -q '"status":"ok"'
echo "ok: fleet up, router reports both replicas healthy"

mkbatch() { # $1: rows, $2: id prefix — session IDs spread over the ring
  for i in $(seq 1 "$1"); do
    printf '{"id":"%s-%d","features":{"mobile.rtt":180,"mobile.loss_pct":7}}\n' "$2" "$i"
  done
}

echo "== a batch through the router answers every row =="
mkbatch 60 warm >"$tmp/batch.ndjson"
curl -fsS --data-binary @"$tmp/batch.ndjson" \
  "http://$R_ADDR/diagnose" >"$tmp/out.ndjson"
rows=$(wc -l <"$tmp/out.ndjson")
[ "$rows" -eq 60 ] || { echo "expected 60 rows, got $rows" >&2; exit 1; }
grep -q '"class":' "$tmp/out.ndjson"
if grep -q '"error":' "$tmp/out.ndjson"; then
  echo "router answered error rows:" >&2
  grep '"error":' "$tmp/out.ndjson" >&2
  exit 1
fi
# Sticky consistent hashing must have spread 60 sessions over both
# replicas (the avalanche-mixed ring guarantees a non-degenerate split).
curl -fsS "http://$A_ADDR/metrics" | grep '^vqserve_requests_total' | grep -qv ' 0$'
curl -fsS "http://$B_ADDR/metrics" | grep '^vqserve_requests_total' | grep -qv ' 0$'
echo "ok: 60/60 rows classified, both replicas took traffic"

echo "== staged rollout converges the fleet on the new snapshot =="
cp "$tmp/model_v2.json" "$tmp/model.json"
code=$(curl -sS -o "$tmp/rollout.json" -w '%{http_code}' \
  -X POST "http://$R_ADDR/-/rollout")
[ "$code" = "200" ] || { echo "rollout answered HTTP $code" >&2
  cat "$tmp/rollout.json" >&2; exit 1; }
grep -q '"status":"complete"' "$tmp/rollout.json"
grep -q '"outcome":"canary"' "$tmp/rollout.json"
grep -q '"outcome":"reloaded"' "$tmp/rollout.json"
hash_a=$(curl -fsS "http://$A_ADDR/healthz" | sed 's/.*"snapshot_hash":"\([^"]*\)".*/\1/')
hash_b=$(curl -fsS "http://$B_ADDR/healthz" | sed 's/.*"snapshot_hash":"\([^"]*\)".*/\1/')
[ -n "$hash_a" ] && [ "$hash_a" = "$hash_b" ] ||
  { echo "split brain after rollout: A=$hash_a B=$hash_b" >&2; exit 1; }
echo "ok: rollout complete, both replicas at snapshot $hash_a"

echo "== SIGKILL one replica: traffic fails over, router ejects it =="
kill -9 "$a_pid"
wait "$a_pid" 2>/dev/null || true
a_pid=""
mkbatch 60 postkill >"$tmp/batch2.ndjson"
curl -fsS --data-binary @"$tmp/batch2.ndjson" \
  "http://$R_ADDR/diagnose" >"$tmp/out2.ndjson"
rows=$(wc -l <"$tmp/out2.ndjson")
[ "$rows" -eq 60 ] || { echo "expected 60 rows after kill, got $rows" >&2; exit 1; }
if grep -q '"error":' "$tmp/out2.ndjson"; then
  echo "rows lost to the dead replica:" >&2
  grep '"error":' "$tmp/out2.ndjson" >&2
  exit 1
fi
curl -fsS "http://$R_ADDR/metrics" | grep '^vqroute_failovers_total' | grep -qv ' 0$'
# Two failed 200ms health sweeps eject the dead replica.
for i in $(seq 1 50); do
  curl -fsS "http://$R_ADDR/healthz" | grep -q '"down":1' && break
  sleep 0.1
done
curl -fsS "http://$R_ADDR/healthz" >"$tmp/healthz.json"
grep -q '"down":1' "$tmp/healthz.json"
grep -q '"status":"degraded"' "$tmp/healthz.json"
echo "ok: 60/60 rows survived the kill, dead replica ejected"

echo "== surviving replica still serves through the router =="
mkbatch 20 tail >"$tmp/batch3.ndjson"
curl -fsS --data-binary @"$tmp/batch3.ndjson" \
  "http://$R_ADDR/diagnose" | grep -c '"class":' | grep -q '^20$'
echo "ok: post-eject traffic flows"

echo "== whole fleet down answers 503, not a hang =="
kill "$b_pid"
wait "$b_pid" 2>/dev/null || true
b_pid=""
for i in $(seq 1 50); do
  curl -fsS "http://$R_ADDR/healthz" >/dev/null 2>&1 || break
  sleep 0.1
done
code=$(printf '{"id":"s","features":{}}\n' |
  curl -sS -o /dev/null -w '%{http_code}' --data-binary @- \
    "http://$R_ADDR/diagnose" || true)
[ "$code" = "503" ] || { echo "fleet-down answered HTTP $code, want 503" >&2; exit 1; }
echo "ok: fleet-wide outage is a 503"

kill "$r_pid"
wait "$r_pid" 2>/dev/null || true
r_pid=""
echo "route smoke: all checks passed"

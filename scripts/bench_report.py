#!/usr/bin/env python3
"""Benchmark report helper for scripts/bench.sh.

  bench_report.py parse             stdin: `go test -bench` output
                                    stdout: {name: {ns_op, b_op, allocs_op}}
  bench_report.py compare BASELINE  stdin: a report produced by `parse`
                                    exits 1 when a benchmark regressed past
                                    the tolerances vs the committed baseline
"""
import json
import re
import sys

# Smoke tolerances: wall-clock is noisy on shared CI runners, so only a
# gross slowdown fails; allocation counts are nearly deterministic, so
# they get a tighter bound.
NS_TOLERANCE = 4.0
ALLOC_TOLERANCE = 2.5

LINE = re.compile(
    r"^(Benchmark\w+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op"
    r"(?:\s+[\d.]+ MB/s)?(?:\s+([\d.]+) rows/s)?"
    r"\s+([\d.]+) B/op\s+([\d.]+) allocs/op"
)

# The inference benchmarks count one iteration per prediction, so
# ns/op inverts directly into the headline predictions/sec figure.
PREDICTION_BENCHES = {
    "BenchmarkPredictRowScalar",
    "BenchmarkPredictBatch",
    "BenchmarkForestPredictBatch",
    "BenchmarkForestPredictBatchParallel",
    "BenchmarkForestPredictVector",
}


def parse(stream):
    out = {}
    for line in stream:
        m = LINE.match(line)
        if m:
            entry = {
                "ns_op": float(m.group(2)),
                "b_op": float(m.group(4)),
                "allocs_op": float(m.group(5)),
            }
            # Router benches emit a custom rows/s metric (rows proxied
            # per second through the full HTTP round trip).
            if m.group(3):
                entry["rows_per_sec"] = round(float(m.group(3)), 1)
            # The fleet benchmark runs one b.N-session fleet, so ns/op
            # is ns per simulated session — record the headline
            # throughput figure alongside it.
            if m.group(1) == "BenchmarkFleetSessions" and entry["ns_op"] > 0:
                entry["sessions_per_sec"] = round(1e9 / entry["ns_op"], 1)
            if m.group(1) in PREDICTION_BENCHES and entry["ns_op"] > 0:
                entry["predictions_per_sec"] = round(1e9 / entry["ns_op"], 1)
            if m.group(1) == "BenchmarkSnapshotLoad":
                entry["snapshot_load_ms"] = round(entry["ns_op"] / 1e6, 3)
            if m.group(1).startswith("BenchmarkSelfLint"):
                entry["self_lint_ms"] = round(entry["ns_op"] / 1e6, 1)
            # One failover-bench iteration is one single-row batch that
            # fails on its sticky replica and re-routes: ns/op is the
            # full detect-and-re-route latency.
            if m.group(1) == "BenchmarkRouterFailover":
                entry["failover_ms"] = round(entry["ns_op"] / 1e6, 3)
            out[m.group(1)] = entry
    # The headline figure of the incremental lint cache: how much of
    # the cold run (full type-check + analysis) the warm run skips.
    cold = out.get("BenchmarkSelfLintCold")
    warm = out.get("BenchmarkSelfLintWarm")
    if cold and warm and warm["ns_op"] > 0:
        warm["cache_speedup"] = round(cold["ns_op"] / warm["ns_op"], 1)
    return out


def main():
    if len(sys.argv) >= 2 and sys.argv[1] == "parse":
        report = parse(sys.stdin)
        if not report:
            sys.exit("bench_report.py: no benchmark lines found on stdin")
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
        return

    if len(sys.argv) == 3 and sys.argv[1] == "compare":
        with open(sys.argv[2]) as f:
            baseline = json.load(f)
        current = json.load(sys.stdin)
        failures = []
        # The lint cache must stay a real cache: a warm self-lint run
        # below 5x over cold means the content keys stopped hitting.
        warm = current.get("BenchmarkSelfLintWarm")
        if warm is not None and warm.get("cache_speedup", 0) < 5:
            failures.append(
                f"BenchmarkSelfLintWarm: cache_speedup "
                f"{warm.get('cache_speedup')} < 5x over cold"
            )
        for name, base in sorted(baseline.items()):
            cur = current.get(name)
            if cur is None:
                failures.append(f"{name}: missing from current run")
                continue
            if cur["ns_op"] > base["ns_op"] * NS_TOLERANCE:
                failures.append(
                    f"{name}: {cur['ns_op']:.0f} ns/op vs baseline "
                    f"{base['ns_op']:.0f} (> {NS_TOLERANCE}x)"
                )
            if cur["allocs_op"] > base["allocs_op"] * ALLOC_TOLERANCE + 16:
                failures.append(
                    f"{name}: {cur['allocs_op']:.0f} allocs/op vs baseline "
                    f"{base['allocs_op']:.0f} (> {ALLOC_TOLERANCE}x)"
                )
        if failures:
            print(f"benchmark regression vs {sys.argv[2]}:", file=sys.stderr)
            for f in failures:
                print("  " + f, file=sys.stderr)
            sys.exit(1)
        print(f"benchmarks within tolerance of baseline ({len(baseline)} compared)")
        return

    sys.exit(__doc__)


if __name__ == "__main__":
    main()

#!/usr/bin/env bash
# obs_smoke.sh — CI smoke for the obs telemetry plane (docs/OBSERVABILITY.md).
#
# Boots a real race-instrumented vqserve with a canary SLO whose latency
# threshold (1ns) no request can meet, drives /diagnose traffic, and
# asserts the full telemetry path end to end:
#
#   /vars        serves a snapshot with ring history for the engine series
#   burn-rate    the canary fast+slow windows saturate and the alert
#                fires, visible in /healthz "alerts" and the slog stream
#   /dashboard   serves the self-contained HTML page
#   vqtop        renders one frame from each source (-source vars and
#                -source metrics) in snapshot mode
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${OBS_SMOKE_ADDR:-127.0.0.1:18700}"
tmp="$(mktemp -d)"
srv_pid=""
cleanup() {
  [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
  [ -n "$srv_pid" ] && wait "$srv_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build (vqserve race-instrumented) =="
go build -race -o "$tmp/vqserve" ./cmd/vqserve
go build -o "$tmp/vqlab" ./cmd/vqlab
go build -o "$tmp/vqtrain" ./cmd/vqtrain
go build -o "$tmp/vqtop" ./cmd/vqtop

echo "== train a small model =="
"$tmp/vqlab" -sessions 120 -seed 1 -out "$tmp/data.csv"
"$tmp/vqtrain" -in "$tmp/data.csv" -out "$tmp/model.json" >/dev/null

# Canary SLO: threshold_s below every latency bucket makes each request
# a violation, so burn = 1/(1-objective) = 2 >= burn 1 the moment both
# windows carry traffic — a deterministic fast-burn trigger.
cat >"$tmp/slo.json" <<'EOF'
[
  {
    "name": "latency-canary",
    "hist": "vqserve_stage_latency_seconds{stage=\"total\"}",
    "threshold_s": 1e-9,
    "objective": 0.5,
    "fast_window": "1s",
    "slow_window": "2s",
    "burn": 1
  }
]
EOF

echo "== start vqserve with the obs plane =="
"$tmp/vqserve" -model "$tmp/model.json" -addr "$ADDR" \
  -obs 200ms -slo "$tmp/slo.json" 2>"$tmp/serve.log" &
srv_pid=$!

for i in $(seq 1 50); do
  curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
  kill -0 "$srv_pid" 2>/dev/null || { cat "$tmp/serve.log" >&2; exit 1; }
  sleep 0.1
done

echo "== drive /diagnose load for ~3s =="
req='{"id":"s1","features":{"mobile.rtt":180,"mobile.loss_pct":7}}'
end=$((SECONDS + 3))
while [ "$SECONDS" -lt "$end" ]; do
  printf '%s\n%s\n%s\n' "$req" "$req" "$req" |
    curl -fsS --data-binary @- "http://$ADDR/diagnose" >/dev/null
  sleep 0.1
done

echo "== /vars serves ring history =="
curl -fsS "http://$ADDR/vars" >"$tmp/vars.json"
grep -q '"vqserve_requests_total"' "$tmp/vars.json"
# the gauge name embeds quoted labels, which JSON escapes
grep -q 'vqserve_slo_burn_rate{slo=\\"latency-canary\\",window=\\"fast\\"}' "$tmp/vars.json"
echo "ok: /vars carries engine series and burn-rate gauges"

echo "== canary alert fires on /healthz and in the logs =="
curl -fsS "http://$ADDR/healthz" >"$tmp/healthz.json"
grep -q '"alerts":' "$tmp/healthz.json"
grep -q '"slo":"latency-canary"' "$tmp/healthz.json"
grep -q '"state":"firing"' "$tmp/healthz.json"
grep -q 'slo alert firing' "$tmp/serve.log"
echo "ok: latency-canary firing"

echo "== /dashboard serves the HTML page =="
curl -fsS "http://$ADDR/dashboard" | grep -qi '<!doctype html>'
echo "ok: dashboard up"

echo "== vqtop renders one frame from each source =="
"$tmp/vqtop" -url "http://$ADDR" -source vars -once >"$tmp/top.txt"
head -3 "$tmp/top.txt"
grep -q 'latency-canary FIRING' "$tmp/top.txt"
grep -q 'vqserve_requests_total' "$tmp/top.txt"
"$tmp/vqtop" -url "http://$ADDR" -source metrics -once |
  grep -q 'vqserve_requests_total'
echo "ok: vqtop snapshot mode against /vars and /metrics"

kill "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=""
echo "obs smoke: all checks passed"

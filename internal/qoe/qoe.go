// Package qoe converts application-layer playback statistics into Mean
// Opinion Scores and the class labels the paper trains on.
//
// The MOS model follows Mok et al., "Measuring the Quality of Experience
// of HTTP Video Streaming" (IM 2011), the same regression the paper
// cites: MOS = 4.23 - 0.0672*Lti - 0.742*Lfr - 0.106*Ltr, where the L
// terms are the levels of initial buffering time, rebuffering frequency
// and mean rebuffering duration. Mok et al. quantize levels to {0,1,2};
// with that quantization the minimum score is 2.32 and the paper's
// "severe" band (MOS < 2) is unreachable, so — as documented in
// DESIGN.md — we use the continuous monotone extension of the same level
// functions, which spans [1.1, 4.23] and makes all three paper bands
// (good > 3, mild 2-3, severe < 2) attainable.
package qoe

import (
	"fmt"
	"math"
	"time"

	"vqprobe/internal/video"
)

// Severity is the QoE band of a session, derived from its MOS.
type Severity int

// Severity bands, using the paper's thresholds.
const (
	Good   Severity = iota // MOS > 3
	Mild                   // 2 <= MOS <= 3
	Severe                 // MOS < 2
)

func (s Severity) String() string {
	switch s {
	case Good:
		return "good"
	case Mild:
		return "mild"
	case Severe:
		return "severe"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Fault identifies the induced problem of a scenario (Table 2).
type Fault int

// The simulated problem catalogue.
const (
	FaultNone Fault = iota
	WANCongestion
	WANShaping
	LANCongestion
	LANShaping
	MobileLoad
	LowRSSI
	WiFiInterference
)

// Faults lists every induced fault (excluding FaultNone), in a stable
// order used by experiment sweeps.
var Faults = []Fault{WANCongestion, WANShaping, LANCongestion, LANShaping, MobileLoad, LowRSSI, WiFiInterference}

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case WANCongestion:
		return "wan_cong"
	case WANShaping:
		return "wan_shaped"
	case LANCongestion:
		return "lan_cong"
	case LANShaping:
		return "lan_shaped"
	case MobileLoad:
		return "mobile_load"
	case LowRSSI:
		return "low_rssi"
	case WiFiInterference:
		return "wifi_interf"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// Location is the path segment a fault lives in.
type Location int

// Path segments, matching Section 5.2 of the paper. Wireless-medium
// faults belong to the LAN segment (the wireless link is the user's
// local network).
const (
	LocNone Location = iota
	LocMobile
	LocLAN
	LocWAN
)

func (l Location) String() string {
	switch l {
	case LocNone:
		return "none"
	case LocMobile:
		return "mobile"
	case LocLAN:
		return "lan"
	case LocWAN:
		return "wan"
	default:
		return fmt.Sprintf("loc(%d)", int(l))
	}
}

// Location maps a fault to its path segment.
func (f Fault) Location() Location {
	switch f {
	case WANCongestion, WANShaping:
		return LocWAN
	case LANCongestion, LANShaping, LowRSSI, WiFiInterference:
		return LocLAN
	case MobileLoad:
		return LocMobile
	default:
		return LocNone
	}
}

// MOSMax is the best attainable score in Mok et al.'s regression.
const MOSMax = 4.23

// levelTI maps startup delay to the continuous initial-buffering level.
// Anchors: 1s -> 0, 5s -> 1, 15s -> 2, then slow growth capped at 3.
func levelTI(startup time.Duration) float64 {
	t := startup.Seconds()
	switch {
	case t <= 1:
		return 0
	case t <= 5:
		return (t - 1) / 4
	case t <= 15:
		return 1 + (t-5)/10
	default:
		return capf(2+(t-15)/100, 3)
	}
}

// levelFR maps rebuffering frequency (events/s) to its level.
// Anchors: 0 -> 0, 0.02 -> 1, 0.15 -> 2 (Mok et al.'s quantization
// boundaries), then a steep tail — constant rebuffering several times a
// minute is the dominant annoyance — capped at 3.6.
func levelFR(freq float64) float64 {
	switch {
	case freq <= 0:
		return 0
	case freq <= 0.02:
		return freq / 0.02
	case freq <= 0.15:
		return 1 + (freq-0.02)/0.13
	default:
		return capf(2+(freq-0.15)*6, 3.6)
	}
}

// levelTR maps mean rebuffering duration to its level.
// Anchors: 1s -> 0, 5s -> 1, 10s -> 2, then growth capped at 3.
func levelTR(mean time.Duration) float64 {
	t := mean.Seconds()
	switch {
	case t <= 1:
		return 0
	case t <= 5:
		return (t - 1) / 4
	case t <= 10:
		return 1 + (t-5)/5
	default:
		return capf(2+(t-10)/20, 3)
	}
}

// MOS scores one playback session. Failed sessions (never started, or
// died mid-stream) receive the floor score of 1.
func MOS(r video.Report) float64 {
	if r.Failed {
		return 1
	}
	m := MOSMax -
		0.0672*levelTI(r.StartupDelay) -
		0.742*levelFR(r.RebufferFrequency()) -
		0.106*levelTR(r.MeanStallDuration())
	// Extension to Mok et al. (documented in DESIGN.md): the regression
	// underweights the total stalled share of the session; spending more
	// than 10% of wall time rebuffering is penalized directly.
	if s := r.SessionTime.Seconds(); s > 0 {
		if ratio := r.StallTime.Seconds() / s; ratio > 0.1 {
			m -= 2.5 * (ratio - 0.1)
		}
	}
	// Sustained frame skipping degrades perceived quality even without
	// buffer stalls; treat heavy skipping as at most "mild".
	if r.PlayedSec > 0 {
		skipRate := float64(r.SkippedFrames) / (r.PlayedSec * float64(max(1, r.Clip.FPS)))
		if skipRate > 0.15 && m > 3.0 {
			m = 3.0
		}
	}
	// Clamp to the scale's floor. The explicit NaN/Inf check matters: a
	// degenerate report (non-finite PlayedSec or stall stats from an
	// upstream bug) would otherwise leak a non-finite score into the
	// labels — NaN compares false against every threshold, so it would
	// silently band as Severe and poison the training set.
	if math.IsNaN(m) || math.IsInf(m, 0) || m < 1 {
		m = 1
	}
	return m
}

// SeverityOf bands a MOS using the paper's thresholds. A NaN score
// (only possible when a caller bypasses MOS's clamping) bands as Severe
// — the conservative reading of a corrupted measurement — because NaN
// compares false against both thresholds.
func SeverityOf(mos float64) Severity {
	switch {
	case mos > 3:
		return Good
	case mos >= 2:
		return Mild
	default:
		return Severe
	}
}

// Label is a fully qualified session label: the induced fault plus the
// severity the MOS model assigned.
type Label struct {
	Fault    Fault
	Severity Severity
}

// SeverityClass is the 3-way class of Section 5.1 ("good", "mild",
// "severe").
func (l Label) SeverityClass() string { return l.Severity.String() }

// LocationClass is the 7-way class of Section 5.2: "good" or
// "<segment>_<severity>".
func (l Label) LocationClass() string {
	if l.Severity == Good || l.Fault == FaultNone {
		return "good"
	}
	return l.Fault.Location().String() + "_" + l.Severity.String()
}

// ExactClass is the 15-way class of Section 5.3: "good" or
// "<fault>_<severity>".
func (l Label) ExactClass() string {
	if l.Severity == Good || l.Fault == FaultNone {
		return "good"
	}
	return l.Fault.String() + "_" + l.Severity.String()
}

// ExactClasses enumerates all 15 exact classes in stable order.
func ExactClasses() []string {
	out := []string{"good"}
	for _, f := range Faults {
		out = append(out, f.String()+"_mild", f.String()+"_severe")
	}
	return out
}

func capf(v, hi float64) float64 {
	if v > hi {
		return hi
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FineSeverity is the five-band refinement the paper proposes as future
// work ("dividing problematic sessions into more labels in order to
// obtain a more fine grain classification of the severity").
type FineSeverity int

// Fine severity bands over the MOS scale.
const (
	FineExcellent FineSeverity = iota // MOS > 3.8
	FineGood                          // 3.0 < MOS <= 3.8
	FineFair                          // 2.5 < MOS <= 3.0
	FinePoor                          // 2.0 < MOS <= 2.5
	FineBad                           // MOS <= 2.0
)

func (s FineSeverity) String() string {
	switch s {
	case FineExcellent:
		return "excellent"
	case FineGood:
		return "good"
	case FineFair:
		return "fair"
	case FinePoor:
		return "poor"
	case FineBad:
		return "bad"
	default:
		return fmt.Sprintf("fine(%d)", int(s))
	}
}

// FineSeverityOf bands a MOS into the five-level scale.
func FineSeverityOf(mos float64) FineSeverity {
	switch {
	case mos > 3.8:
		return FineExcellent
	case mos > 3.0:
		return FineGood
	case mos > 2.5:
		return FineFair
	case mos > 2.0:
		return FinePoor
	default:
		return FineBad
	}
}

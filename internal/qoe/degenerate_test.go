package qoe

// Regression tests for degenerate sessions: reports carrying zeros or
// non-finite values (a session that never played a frame, a corrupted
// upstream measurement) must still score to a finite MOS on [1, MOSMax]
// and band deterministically.

import (
	"math"
	"testing"
	"time"

	"vqprobe/internal/video"
)

func finiteInBand(t *testing.T, name string, m float64) {
	t.Helper()
	if math.IsNaN(m) || math.IsInf(m, 0) {
		t.Fatalf("%s: MOS is non-finite (%v)", name, m)
	}
	if m < 1 || m > MOSMax {
		t.Errorf("%s: MOS %v outside [1, %v]", name, m, MOSMax)
	}
}

func TestMOSDegenerateSessions(t *testing.T) {
	cases := []struct {
		name string
		r    video.Report
	}{
		{"zero report", video.Report{}},
		{"zero duration clip", video.Report{
			Clip: video.Clip{Duration: 0, FPS: 0}, PlayedSec: 0, SessionTime: 0}},
		{"zero bytes, stalls but no stall time", video.Report{Stalls: 3}},
		{"stall time but zero stalls", video.Report{StallTime: 10 * time.Second}},
		{"NaN played seconds", video.Report{PlayedSec: math.NaN(), SkippedFrames: 100,
			SessionTime: 30 * time.Second}},
		{"Inf played seconds", video.Report{PlayedSec: math.Inf(1),
			SessionTime: 30 * time.Second, SkippedFrames: 10}},
		{"negative session time", video.Report{SessionTime: -time.Second, Stalls: 1,
			StallTime: time.Second}},
		{"huge stall share", video.Report{SessionTime: time.Second,
			StallTime: time.Hour, Stalls: 1}},
	}
	for _, c := range cases {
		finiteInBand(t, c.name, MOS(c.r))
	}
}

func TestSeverityOfNonFinite(t *testing.T) {
	// A non-finite score (only possible when callers bypass MOS's
	// clamping) bands as Severe — the conservative reading — and must
	// not panic or band as Good.
	if got := SeverityOf(math.NaN()); got != Severe {
		t.Errorf("SeverityOf(NaN) = %v, want Severe", got)
	}
	if got := SeverityOf(math.Inf(-1)); got != Severe {
		t.Errorf("SeverityOf(-Inf) = %v, want Severe", got)
	}
	if got := SeverityOf(math.Inf(1)); got != Good {
		t.Errorf("SeverityOf(+Inf) = %v, want Good", got)
	}
}

func TestRebufferFrequencyZeroSession(t *testing.T) {
	r := video.Report{Stalls: 5, SessionTime: 0}
	if f := r.RebufferFrequency(); f != 0 {
		t.Errorf("zero-duration session: frequency %v, want 0 (not Inf)", f)
	}
	if d := (video.Report{Stalls: 0, StallTime: time.Second}).MeanStallDuration(); d != 0 {
		t.Errorf("zero stalls: mean duration %v, want 0", d)
	}
}

package qoe

import (
	"testing"
	"testing/quick"
	"time"

	"vqprobe/internal/video"
)

func clip() video.Clip {
	return video.Clip{Bitrate: 1.5e6, Duration: 60 * time.Second, FPS: 30}
}

func TestPerfectSessionScoresMax(t *testing.T) {
	r := video.Report{Clip: clip(), StartupDelay: 500 * time.Millisecond, SessionTime: time.Minute, PlayedSec: 60, Completed: true}
	if m := MOS(r); m != MOSMax {
		t.Errorf("perfect session MOS = %.3f, want %.2f", m, MOSMax)
	}
}

func TestFailedSessionScoresFloor(t *testing.T) {
	r := video.Report{Clip: clip(), Failed: true}
	if m := MOS(r); m != 1 {
		t.Errorf("failed session MOS = %.3f, want 1", m)
	}
}

func TestStallsDegradeMOS(t *testing.T) {
	base := video.Report{Clip: clip(), StartupDelay: time.Second, SessionTime: time.Minute, PlayedSec: 60}
	stalled := base
	stalled.Stalls = 5
	stalled.StallTime = 25 * time.Second
	if MOS(stalled) >= MOS(base) {
		t.Error("stalls did not reduce MOS")
	}
	if SeverityOf(MOS(stalled)) == Good {
		t.Errorf("5 stalls/25s in a minute scored %v; should not be good", MOS(stalled))
	}
}

func TestAllThreeBandsReachable(t *testing.T) {
	good := video.Report{Clip: clip(), StartupDelay: 800 * time.Millisecond, SessionTime: time.Minute, PlayedSec: 60}
	mild := video.Report{Clip: clip(), StartupDelay: 4 * time.Second, SessionTime: time.Minute, PlayedSec: 55,
		Stalls: 4, StallTime: 10 * time.Second}
	severe := video.Report{Clip: clip(), StartupDelay: 20 * time.Second, SessionTime: 2 * time.Minute, PlayedSec: 30,
		Stalls: 40, StallTime: 80 * time.Second}
	if got := SeverityOf(MOS(good)); got != Good {
		t.Errorf("clean session banded %v (MOS %.2f)", got, MOS(good))
	}
	if got := SeverityOf(MOS(mild)); got != Mild {
		t.Errorf("mildly stalled session banded %v (MOS %.2f)", got, MOS(mild))
	}
	if got := SeverityOf(MOS(severe)); got != Severe {
		t.Errorf("heavily stalled session banded %v (MOS %.2f)", got, MOS(severe))
	}
}

func TestMOSMonotoneInStalls(t *testing.T) {
	prev := MOSMax + 1
	for stalls := 0; stalls <= 30; stalls += 3 {
		r := video.Report{Clip: clip(), StartupDelay: time.Second, SessionTime: time.Minute, PlayedSec: 60,
			Stalls: stalls, StallTime: time.Duration(stalls) * 2 * time.Second}
		m := MOS(r)
		if m > prev {
			t.Fatalf("MOS not monotone: %d stalls -> %.3f > %.3f", stalls, m, prev)
		}
		prev = m
	}
}

func TestMOSBounded(t *testing.T) {
	f := func(startupMs uint16, stalls uint8, stallSec uint8, sessionSec uint8) bool {
		r := video.Report{
			Clip:         clip(),
			StartupDelay: time.Duration(startupMs) * time.Millisecond,
			Stalls:       int(stalls),
			StallTime:    time.Duration(stallSec) * time.Second,
			SessionTime:  time.Duration(sessionSec) * time.Second,
			PlayedSec:    float64(sessionSec),
		}
		m := MOS(r)
		return m >= 1 && m <= MOSMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeavySkippingCapsAtMild(t *testing.T) {
	r := video.Report{Clip: clip(), StartupDelay: 500 * time.Millisecond, SessionTime: time.Minute,
		PlayedSec: 60, SkippedFrames: 600} // a third of all frames
	if m := MOS(r); m > 3.0 {
		t.Errorf("heavy frame skipping scored %.2f, want <= 3", m)
	}
}

func TestSeverityThresholds(t *testing.T) {
	cases := []struct {
		mos  float64
		want Severity
	}{{3.5, Good}, {3.01, Good}, {3.0, Mild}, {2.0, Mild}, {1.99, Severe}, {1.0, Severe}}
	for _, c := range cases {
		if got := SeverityOf(c.mos); got != c.want {
			t.Errorf("SeverityOf(%.2f) = %v, want %v", c.mos, got, c.want)
		}
	}
}

func TestFaultLocations(t *testing.T) {
	cases := map[Fault]Location{
		WANCongestion: LocWAN, WANShaping: LocWAN,
		LANCongestion: LocLAN, LANShaping: LocLAN,
		LowRSSI: LocLAN, WiFiInterference: LocLAN,
		MobileLoad: LocMobile, FaultNone: LocNone,
	}
	for f, want := range cases {
		if got := f.Location(); got != want {
			t.Errorf("%v.Location() = %v, want %v", f, got, want)
		}
	}
}

func TestLabelClasses(t *testing.T) {
	l := Label{Fault: LANCongestion, Severity: Severe}
	if l.SeverityClass() != "severe" {
		t.Error("severity class")
	}
	if l.LocationClass() != "lan_severe" {
		t.Errorf("location class = %s", l.LocationClass())
	}
	if l.ExactClass() != "lan_cong_severe" {
		t.Errorf("exact class = %s", l.ExactClass())
	}
	goodL := Label{Fault: LANCongestion, Severity: Good}
	if goodL.ExactClass() != "good" || goodL.LocationClass() != "good" {
		t.Error("good severity must map to the good class regardless of fault")
	}
}

func TestExactClassesComplete(t *testing.T) {
	cs := ExactClasses()
	if len(cs) != 15 {
		t.Fatalf("got %d exact classes, want 15", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if seen[c] {
			t.Errorf("duplicate class %s", c)
		}
		seen[c] = true
	}
	if !seen["good"] || !seen["wifi_interf_severe"] || !seen["wan_cong_mild"] {
		t.Error("expected classes missing")
	}
}

func TestFineSeverityBands(t *testing.T) {
	cases := []struct {
		mos  float64
		want FineSeverity
	}{{4.2, FineExcellent}, {3.81, FineExcellent}, {3.5, FineGood}, {3.01, FineGood},
		{2.8, FineFair}, {2.51, FineFair}, {2.3, FinePoor}, {2.01, FinePoor},
		{2.0, FineBad}, {1.0, FineBad}}
	for _, c := range cases {
		if got := FineSeverityOf(c.mos); got != c.want {
			t.Errorf("FineSeverityOf(%.2f) = %v, want %v", c.mos, got, c.want)
		}
	}
}

func TestFineSeverityConsistentWithCoarse(t *testing.T) {
	// The fine bands must refine, never contradict, the coarse bands.
	for mos := 1.0; mos <= 4.23; mos += 0.01 {
		coarse, fine := SeverityOf(mos), FineSeverityOf(mos)
		switch coarse {
		case Good:
			if fine != FineExcellent && fine != FineGood {
				t.Fatalf("MOS %.2f: coarse good but fine %v", mos, fine)
			}
		case Mild:
			if fine != FineFair && fine != FinePoor && fine != FineBad {
				t.Fatalf("MOS %.2f: coarse mild but fine %v", mos, fine)
			}
		case Severe:
			if fine != FineBad {
				t.Fatalf("MOS %.2f: coarse severe but fine %v", mos, fine)
			}
		}
	}
}

package fleet

import "vqprobe/internal/obs"

// CauseDrift replays a fleet summary's tumbling windows through the obs
// cause-mix drift detector: each window's diagnosed root-cause counts
// (ByCause, in CauseClasses index order) are one observation, and the
// returned events mark the windows where the population's cause mix
// shifted against the trailing baseline. The summary is deterministic
// for a given seed and the detector is pure, so the event list is too —
// a seeded mid-run fault step (Config.FaultStepAt) provably raises the
// same events at the same windows at any worker count.
func CauseDrift(f *FleetSummary, cfg obs.DriftConfig) []obs.DriftEvent {
	d := obs.NewDetector(cfg, CauseClasses())
	var events []obs.DriftEvent
	for i := range f.Windows {
		if ev, ok := d.Observe(f.Windows[i].ByCause[:]); ok {
			events = append(events, ev)
		}
	}
	return events
}

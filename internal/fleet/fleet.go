package fleet

import (
	"errors"
	"time"

	"vqprobe/internal/parallel"
	"vqprobe/internal/qoe"
	"vqprobe/internal/serve"
	"vqprobe/internal/testbed"
	"vqprobe/internal/video"
)

// Config bounds one fleet run.
type Config struct {
	// Sessions is the population size.
	Sessions int
	// Seed is the master seed; every session derives its private
	// sub-seed from it and its index.
	Seed int64
	// Workers caps the goroutines executing shards; zero selects
	// GOMAXPROCS. Any value yields the identical summary.
	Workers int
	// Shards is the event-loop count. It is part of the virtual
	// topology (fixed default 8, NOT tied to the machine's core count)
	// so the default summary is machine-independent; sessions map to
	// shards by index modulo Shards.
	Shards int
	// Horizon is the span of the fleet's virtual clock over which
	// session arrivals spread. Zero selects 1h.
	Horizon time.Duration
	// Window is the tumbling aggregation window. Zero selects 1m.
	Window time.Duration
	// MaxLive caps concurrently live sessions per shard — the pooled
	// slot count, and with it the run's peak memory. Zero selects 4096.
	MaxLive int
	// FaultProb is the probability a session carries an induced fault;
	// zero selects 0.30 (the wild-setting rate).
	FaultProb float64
	// PinFault forces every faulty session to one fault class (fleet
	// what-if sweeps); FaultNone samples the natural mix.
	PinFault qoe.Fault
	// FaultStepAt, when positive, steps the fault probability to
	// FaultStepProb for sessions arriving at or after this horizon
	// offset — a seeded mid-run incident (CDN degradation, cell
	// overload) the obs drift detector is expected to catch. The step
	// keys off the session's arrival time, so it is index-pure: the
	// same session sees the same probability at any worker count.
	FaultStepAt   time.Duration
	FaultStepProb float64
	// Engine, when set, feeds every finished session's synthesized
	// feature vector through the serve diagnosis engine and scores the
	// verdicts against ground truth (per-window DiagTotal/DiagMatch).
	Engine *serve.Engine
	// DiagBatch is the per-shard DiagnoseBatch size; zero selects 128.
	DiagBatch int
	// ModelTask annotates the summary when Engine is set.
	ModelTask string
	// Full routes sessions through the packet-level testbed (pooled
	// testbed.Runner) instead of the fluid model: ~1000× the per-session
	// cost, for ground-truthing small fleets.
	Full bool
	// Progress, when set, is called from shard goroutines with the
	// number of sessions just completed; it must be safe for concurrent
	// use (e.g. an atomic counter add).
	Progress func(n int)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Horizon <= 0 {
		c.Horizon = time.Hour
	}
	if c.Window <= 0 {
		c.Window = time.Minute
	}
	if c.MaxLive <= 0 {
		c.MaxLive = 4096
	}
	if c.DiagBatch <= 0 {
		c.DiagBatch = 128
	}
	if c.FaultProb < 0 {
		c.FaultProb = 0
	}
	return c
}

// RunStats reports execution-side observations (not part of the
// deterministic summary): the bounded-memory tests assert on them.
type RunStats struct {
	// MaxLive is the highest number of concurrently live pooled
	// sessions observed on any shard — the memory high-water mark in
	// units of session slots.
	MaxLive int
	// Shards echoes the resolved shard count.
	Shards int
}

// Run simulates the configured fleet and returns its summary. The
// summary — including its EncodeText/EncodeJSON bytes — is a pure
// function of the Config's scenario knobs: Workers, MaxLive, DiagBatch
// and Progress cannot change it (see docs/FLEET.md for the contract
// and internal/fleet determinism tests for the proof).
func Run(cfg Config) (*FleetSummary, RunStats, error) {
	cfg = cfg.withDefaults()
	if cfg.Sessions <= 0 {
		return nil, RunStats{}, errors.New("fleet: Sessions must be positive")
	}
	if cfg.Window > cfg.Horizon {
		return nil, RunStats{}, errors.New("fleet: Window exceeds Horizon")
	}

	shards := make([]*shard, cfg.Shards)
	if cfg.Full {
		parallel.For(cfg.Shards, cfg.Workers, func(i int) {
			shards[i] = runFullShard(i, &cfg)
		})
	} else {
		parallel.For(cfg.Shards, cfg.Workers, func(i int) {
			s := newShard(i, &cfg)
			s.run()
			shards[i] = s
		})
	}

	// Merge in fixed shard-index order. (Exactness of the sketch merge
	// makes the order irrelevant; fixing it anyway keeps the contract
	// simple to state and test.)
	agg := NewAggregator(cfg.Horizon, cfg.Window)
	stats := RunStats{Shards: cfg.Shards}
	for _, s := range shards {
		agg.Merge(s.agg)
		if s.maxLive > stats.MaxLive {
			stats.MaxLive = s.maxLive
		}
	}
	sum := &FleetSummary{
		Seed:      cfg.Seed,
		Sessions:  uint64(cfg.Sessions),
		Shards:    cfg.Shards,
		Horizon:   cfg.Horizon,
		Window:    cfg.Window,
		ModelTask: cfg.ModelTask,
		Total:     agg.Total,
		Windows:   agg.Windows,
	}
	return sum, stats, nil
}

// runFullShard is the full-fidelity twin of shard.run: the same
// scenarios, shard mapping and aggregation, but each session runs the
// packet-level testbed through a pooled testbed.Runner (the cheap path
// vqsim -sessions shares). Sessions execute sequentially per shard —
// at ~ms each there is nothing to multiplex.
func runFullShard(id int, cfg *Config) *shard {
	s := newShard(id, cfg)
	runner := testbed.NewRunner()
	for idx := uint64(id); idx < uint64(cfg.Sessions); idx += uint64(cfg.Shards) {
		sc := SampleScenario(*cfg, idx)
		res := runner.Run(sc.SessionConfig())
		var sum SessionSummary
		summaryFromResult(sc, &res, &sum)
		if cfg.Engine != nil {
			req := serve.Request{Features: res.Combined("mobile", "router", "server")}
			out := cfg.Engine.DiagnoseBatch([]serve.Request{req})
			if out[0].Err == "" {
				sum.Cause = CauseIndex(out[0].Cause)
			} else {
				sum.Cause = CauseUnknown
			}
			s.agg.Observe(&sum, true)
		} else {
			s.agg.Observe(&sum, false)
		}
		s.completed++
		if s.maxLive < 1 {
			s.maxLive = 1
		}
		if cfg.Progress != nil {
			cfg.Progress(1)
		}
	}
	return s
}

// summaryFromResult rolls a full-testbed session result into the same
// fixed-size record the fluid model emits.
func summaryFromResult(sc Scenario, res *testbed.SessionResult, sum *SessionSummary) {
	rep := res.Report
	sess := rep.SessionTime.Seconds()
	*sum = SessionSummary{
		Index:      sc.Index,
		Fault:      sc.Spec.Fault,
		Severity:   res.Label.Severity,
		Abandoned:  rep.Failed,
		Completed:  rep.Completed,
		ArrivalSec: float32(sc.Arrival.Seconds()),
		StartupSec: float32(rep.StartupDelay.Seconds()),
		Stalls:     uint32(rep.Stalls),
		StallSec:   float32(rep.StallTime.Seconds()),
		StallRatio: float32(safeDiv(rep.StallTime.Seconds(), sess)),
		PlayedSec:  float32(rep.PlayedSec),
		SessionSec: float32(sess),
		MOS:        float32(res.MOS),
		Bytes:      uint64(rep.BytesReceived),
	}
	sum.Cause = sum.TrueCause()
}

// ReplayResult is one re-simulated session, for drilling into a
// flagged record out of a fleet run.
type ReplayResult struct {
	Scenario Scenario
	Summary  SessionSummary
	Report   video.Report
}

// Replay re-simulates session `index` of the configured fleet in
// isolation and returns its summary and full report. Because sessions
// are index-pure, the summary is bit-identical to the record the fleet
// run aggregated — the CHAOS_SEED-style escape hatch for production
// debugging: any session out of a million can be pulled out and
// inspected alone.
func Replay(cfg Config, index uint64) (ReplayResult, error) {
	cfg = cfg.withDefaults()
	if index >= uint64(cfg.Sessions) {
		return ReplayResult{}, errors.New("fleet: replay index out of range")
	}
	sc := SampleScenario(cfg, index)
	if cfg.Full {
		runner := testbed.NewRunner()
		res := runner.Run(sc.SessionConfig())
		var sum SessionSummary
		summaryFromResult(sc, &res, &sum)
		return ReplayResult{Scenario: sc, Summary: sum, Report: res.Report}, nil
	}
	var s session
	s.reset(&cfg, index)
	at := s.firstEvent()
	for at > 0 {
		at = s.step(at)
	}
	var sum SessionSummary
	s.summarize(&sum)
	if cfg.Engine != nil {
		fv := make(map[string]float64, 12)
		s.features(fv)
		out := cfg.Engine.DiagnoseBatch([]serve.Request{{Features: fv}})
		if out[0].Err == "" {
			sum.Cause = CauseIndex(out[0].Cause)
		} else {
			sum.Cause = CauseUnknown
		}
	}
	return ReplayResult{Scenario: sc, Summary: sum, Report: s.report()}, nil
}

package fleet

import "testing"

// BenchmarkFleetSessions measures the fleet's per-session cost by
// running one b.N-session fleet: ns/op is ns per simulated session, so
// sessions/sec = 1e9 / ns_op (scripts/bench_report.py derives it for
// reports/BENCH_PR6.json; methodology in docs/PERFORMANCE.md).
func BenchmarkFleetSessions(b *testing.B) {
	b.ReportAllocs()
	sum, _, err := Run(Config{Sessions: b.N, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if sum.Total.Sessions != uint64(b.N) {
		b.Fatalf("aggregated %d sessions, want %d", sum.Total.Sessions, b.N)
	}
}

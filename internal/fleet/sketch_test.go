package fleet

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func fillHist(h *Hist, seed int64, n int) {
	rng := newSessionRand(seed)
	for i := 0; i < n; i++ {
		h.Add(rng.Float64() * 10)
	}
}

// Sketch merges must be exact and order-independent: integer bin
// counts make A+(B+C) == (C+A)+B bit for bit, which is what lets the
// fleet merge shard aggregates in any order without changing a byte.
func TestHistMergeOrderInvariance(t *testing.T) {
	edges := LinearEdges(0, 10, 20)
	parts := make([]*Hist, 4)
	for i := range parts {
		parts[i] = NewHist(edges)
		fillHist(parts[i], int64(i+1), 500+i*37)
	}

	orders := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{2, 0, 3, 1},
	}
	var ref *Hist
	for _, ord := range orders {
		m := NewHist(edges)
		for _, i := range ord {
			m.Merge(parts[i])
		}
		if ref == nil {
			ref = m
			continue
		}
		if !reflect.DeepEqual(ref, m) {
			t.Fatalf("merge order %v changed the sketch", ord)
		}
		var a, b strings.Builder
		ref.AppendTo(&a, "h", "")
		m.AppendTo(&b, "h", "")
		if a.String() != b.String() {
			t.Fatalf("merge order %v changed the rendered bytes", ord)
		}
	}
	var want uint64
	for _, p := range parts {
		want += p.N
	}
	if ref.N != want {
		t.Fatalf("merged N = %d, want %d", ref.N, want)
	}
}

func TestHistMergeShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched edge sets did not panic")
		}
	}()
	NewHist(LinearEdges(0, 1, 4)).Merge(NewHist(LinearEdges(0, 1, 8)))
}

func TestHistQuantile(t *testing.T) {
	h := NewHist(LinearEdges(0, 100, 100))
	for v := 0.5; v < 100; v++ {
		h.Add(v)
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Fatalf("p50 = %v, want ~50", q)
	}
	if q := h.Quantile(0); q < h.Min || q > h.Max {
		t.Fatalf("p0 = %v outside observed [%v, %v]", q, h.Min, h.Max)
	}
	if q := h.Quantile(1); q > h.Max {
		t.Fatalf("p100 = %v above observed max %v", q, h.Max)
	}
	// Quantiles clamp to the observed range even when the bins are
	// much wider than the data.
	one := NewHist(LinearEdges(0, 100, 2))
	one.Add(7)
	if q := one.Quantile(0.99); q != 7 {
		t.Fatalf("single-sample p99 = %v, want 7", q)
	}
}

func TestHistAddDropsNaNAndClamps(t *testing.T) {
	h := NewHist(LinearEdges(0, 1, 4))
	h.Add(math.NaN())
	if h.N != 0 {
		t.Fatal("NaN was counted")
	}
	h.Add(-5) // below the first edge: clamps into the underflow bin
	h.Add(99) // above the last edge: clamps into the overflow bin
	if h.N != 2 {
		t.Fatalf("N = %d, want 2", h.N)
	}
	if h.Min != -5 || h.Max != 99 {
		t.Fatalf("min/max = %v/%v, want -5/99", h.Min, h.Max)
	}
}

func TestHistReset(t *testing.T) {
	h := NewHist(LinearEdges(0, 1, 4))
	fillHist(h, 1, 100)
	h.Reset()
	if h.N != 0 || h.Sum != 0 {
		t.Fatalf("reset left N=%d Sum=%v", h.N, h.Sum)
	}
	for _, c := range h.Counts {
		if c != 0 {
			t.Fatal("reset left a non-zero bin")
		}
	}
}

func TestEdgesMonotonic(t *testing.T) {
	for name, edges := range map[string][]float64{
		"linear":  LinearEdges(0, 10, 16),
		"log":     LogEdges(0.2, 60, 24),
		"startup": startupEdges,
		"stall":   stallRatioEdges,
		"mos":     mosEdges,
	} {
		for i := 1; i < len(edges); i++ {
			if !(edges[i] > edges[i-1]) {
				t.Fatalf("%s edges not strictly increasing at %d: %v <= %v",
					name, i, edges[i], edges[i-1])
			}
		}
	}
}

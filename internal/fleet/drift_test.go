package fleet

import (
	"bytes"
	"testing"
	"time"

	"vqprobe/internal/obs"
)

// TestFaultStepRaisesOneDriftEvent is the population-scale drift proof:
// a 100k-session fleet with a seeded fault-probability step at 30m
// (0.30 → 0.90 — a mid-run incident tripling the faulty share) must
// raise exactly one cause-mix drift event, at the first stepped window,
// with identical summary bytes and drift events at any worker count.
// Sessions aggregate into their arrival window and the step keys off
// arrival time, so window 30 is exactly the incident onset.
func TestFaultStepRaisesOneDriftEvent(t *testing.T) {
	cfg := Config{
		Sessions:      100_000,
		Seed:          7,
		FaultStepAt:   30 * time.Minute,
		FaultStepProb: 0.90,
	}

	var refText []byte
	var refEvents []obs.DriftEvent
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		sum, _, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		text := sum.EncodeText()
		events := CauseDrift(sum, obs.DriftConfig{})
		if refText == nil {
			refText, refEvents = text, events
			continue
		}
		if !bytes.Equal(refText, text) {
			t.Fatalf("workers=%d: summary bytes differ from workers=1", workers)
		}
		if len(events) != len(refEvents) {
			t.Fatalf("workers=%d: %d drift events vs %d", workers, len(events), len(refEvents))
		}
		for i := range events {
			if events[i] != refEvents[i] {
				t.Fatalf("workers=%d: event %d = %+v vs %+v", workers, i, events[i], refEvents[i])
			}
		}
	}

	if len(refEvents) != 1 {
		t.Fatalf("got %d drift events %+v, want exactly 1", len(refEvents), refEvents)
	}
	ev := refEvents[0]
	if ev.Window != 30 {
		t.Fatalf("drift at window %d, want 30 (the step window)", ev.Window)
	}
	if ev.JSD < 0.02 {
		t.Fatalf("JSD = %v, below the firing threshold", ev.JSD)
	}
	// The dominant move is the good class losing ~60 points of mass to
	// the fault classes.
	if ev.Cause == "" || ev.Delta == 0 {
		t.Fatalf("event carries no mover: %+v", ev)
	}
}

// TestFaultStepOffIsNoop: the zero value leaves the fleet byte-identical
// to a run without the fields — no drift, no behavior change.
func TestFaultStepOffIsNoop(t *testing.T) {
	base, _ := runText(t, testFleetConfig(20000))
	stepped, _ := runText(t, Config{Sessions: 20000, Seed: 7, FaultStepAt: 0, FaultStepProb: 0.9})
	if !bytes.Equal(base, stepped) {
		t.Fatal("FaultStepAt=0 changed the summary bytes")
	}
	sum, _, err := Run(testFleetConfig(20000))
	if err != nil {
		t.Fatal(err)
	}
	if events := CauseDrift(sum, obs.DriftConfig{}); len(events) != 0 {
		t.Fatalf("steady fleet raised drift events: %+v", events)
	}
}

package fleet

import (
	"math/rand"
	"time"

	"vqprobe/internal/faults"
	"vqprobe/internal/qoe"
	"vqprobe/internal/testbed"
	"vqprobe/internal/video"
	"vqprobe/internal/wireless"
)

// Scenario is the complete deterministic description of one fleet
// session: everything the playback model (or the full-fidelity testbed
// bridge) needs is derived from the master seed and the session index
// alone, never from execution order. That index-purity is the root of
// the fleet determinism contract — shard count, worker count and
// admission timing cannot change a session's outcome because they are
// not inputs to it.
type Scenario struct {
	Index uint64
	Seed  int64
	// Arrival is the session's start time on the fleet's virtual clock,
	// uniform over the configured horizon.
	Arrival time.Duration

	WAN  testbed.WANProfile
	Tech wireless.Technology
	Clip video.Clip

	Spec      faults.Spec
	FaultFrom time.Duration
	FaultDur  time.Duration

	BaseRSSI   float64
	Background float64
	ServerLoad float64
	// DeviceTier buckets the handset population: 0 flagship, 1
	// mid-range, 2 budget (weakest decode and ingest capacity).
	DeviceTier int
	// PatienceStartup / PatienceStall are the abandonment thresholds:
	// users give up when startup or cumulative stalling exceeds them.
	PatienceStartup time.Duration
	PatienceStall   time.Duration
}

// splitmix64 is the SplitMix64 mixer (Steele et al.), the standard
// cheap way to derive statistically independent sub-seeds from
// (masterSeed, index) without any shared-stream coupling.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SubSeed derives session index i's private seed from the master seed.
func SubSeed(master int64, i uint64) int64 {
	return int64(splitmix64(splitmix64(uint64(master)) ^ splitmix64(i+0x1D8AF066)))
}

// smSource is a SplitMix64-backed rand.Source64: 8 bytes of state
// instead of the ~5KB lagged-Fibonacci state math/rand's default
// source carries. With MaxLive pooled sessions per shard that state
// difference is the fleet's memory high-water mark, so the slots use
// this. Streams from distinct SplitMix64 seeds are independent enough
// for scenario sampling and capacity noise.
type smSource struct{ s uint64 }

func (r *smSource) Seed(seed int64) { r.s = uint64(seed) }
func (r *smSource) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
func (r *smSource) Int63() int64 { return int64(r.Uint64() >> 1) }

// newSessionRand builds the compact deterministic generator a pooled
// session slot owns; Seed(SubSeed(...)) re-arms it per session.
func newSessionRand(seed int64) *rand.Rand {
	return rand.New(&smSource{s: uint64(seed)})
}

// SampleScenario draws session i's scenario from the population mix.
// The mix mirrors the paper's in-the-wild setting (Section 6.2) scaled
// to a service population: mostly CDN-served WiFi viewers, a 3G slice,
// arbitrary signal quality, and cfg.FaultProb of sessions suffering one
// induced problem from the Table 2 catalogue.
func SampleScenario(cfg Config, i uint64) Scenario {
	return sampleScenario(cfg, i, newSessionRand(SubSeed(cfg.Seed, i)))
}

// sampleScenario draws from rng, which the caller must have seeded
// with SubSeed(cfg.Seed, i) — the pooled-session path reuses one
// *rand.Rand per slot and keeps drawing session dynamics from the same
// stream, which is equivalent to SampleScenario by construction.
func sampleScenario(cfg Config, i uint64, rng *rand.Rand) Scenario {
	seed := SubSeed(cfg.Seed, i)
	sc := Scenario{Index: i, Seed: seed}

	sc.Arrival = time.Duration(rng.Int63n(int64(cfg.Horizon)))

	// Service/access mix: 3:1 CDN vs. private DSL origin, 70% WiFi.
	sc.Tech = wireless.TechWiFi
	sc.WAN = testbed.WANCDN
	if rng.Float64() < 0.25 {
		sc.WAN = testbed.WANDSL
	}
	if rng.Float64() < 0.30 {
		sc.Tech = wireless.Tech3G
		sc.WAN = testbed.WANMobile
	}

	// Clip: top-100-like catalog shape — short-form dominated with a
	// long-form tail, SD:HD at 60:40.
	dur := 20 + rng.ExpFloat64()*45
	if dur > 300 {
		dur = 300
	}
	clip := video.Clip{ID: int(i%1000) + 1, Quality: video.SD, FPS: 30,
		Duration: time.Duration(dur * float64(time.Second))}
	if rng.Float64() < 0.40 {
		clip.Quality = video.HD
		clip.Bitrate = 2.5e6 + 3.5e6*rng.Float64()
	} else {
		clip.Bitrate = 1.0e6 + 1.5e6*rng.Float64()
	}
	sc.Clip = clip

	// Signal: most users sit in comfortable coverage; the tail roams
	// toward the association edge. Cellular hides the worst of it.
	sc.BaseRSSI = -45 - 35*rng.Float64()*rng.Float64()
	if sc.Tech == wireless.Tech3G && sc.BaseRSSI < -72 {
		sc.BaseRSSI = -72 - 10*rng.Float64()
	}

	sc.Background = 0.2 + 0.6*rng.Float64()
	sc.ServerLoad = 0.05 + 0.2*rng.Float64()
	sc.DeviceTier = deviceTier(rng)
	sc.PatienceStartup = time.Duration((30 + 60*rng.Float64()) * float64(time.Second))
	sc.PatienceStall = time.Duration(float64(clip.Duration) * (0.35 + 0.4*rng.Float64()))

	// Fault matrix: the natural-occurrence mix of GenerateWild — biased
	// to congestion and signal problems, shaping faults excluded in the
	// wild — unless the caller pins the whole fleet to one fault.
	prob := cfg.FaultProb
	if prob == 0 {
		prob = 0.30
	}
	if cfg.FaultStepAt > 0 && sc.Arrival >= cfg.FaultStepAt {
		prob = cfg.FaultStepProb
	}
	sc.Spec = faults.Spec{Fault: qoe.FaultNone}
	if cfg.PinFault != qoe.FaultNone {
		sc.Spec = faults.Spec{Fault: cfg.PinFault, Intensity: 0.1 + 0.9*rng.Float64()}
	} else if rng.Float64() < prob {
		natural := [...]qoe.Fault{
			qoe.WANCongestion, qoe.WANCongestion, qoe.LANCongestion,
			qoe.MobileLoad, qoe.LowRSSI, qoe.LowRSSI, qoe.WiFiInterference,
		}
		sc.Spec = faults.Spec{
			Fault:     natural[rng.Intn(len(natural))],
			Intensity: 0.25 + 0.75*rng.Float64(),
		}
	}
	if sc.Spec.Fault != qoe.FaultNone {
		// Problems occupy a window inside the session, wild-style: they
		// may start before the viewer does and often outlast the clip.
		sc.FaultFrom = time.Duration(float64(clip.Duration) * 0.15 * rng.Float64())
		sc.FaultDur = time.Duration(float64(clip.Duration) * (0.7 + 0.6*rng.Float64()))
	}
	return sc
}

func deviceTier(rng *rand.Rand) int {
	switch v := rng.Float64(); {
	case v < 0.35:
		return 0
	case v < 0.80:
		return 1
	default:
		return 2
	}
}

// SessionConfig bridges a fleet scenario onto the full-fidelity
// testbed: the same scenario that drives the cheap fluid model can be
// replayed through the packet-level simulation (vqfleet -fidelity
// full, or vqfleet -replay ... -full) for ground-truthing the fleet
// model, at ~three orders of magnitude more cost per session.
func (sc Scenario) SessionConfig() testbed.SessionConfig {
	opts := testbed.Options{
		Seed:             sc.Seed,
		WAN:              sc.WAN,
		Tech:             sc.Tech,
		BaseRSSI:         sc.BaseRSSI,
		Mobility:         true,
		Pacing:           sc.WAN == testbed.WANCDN,
		BackgroundScale:  sc.Background,
		ServerLoadMean:   sc.ServerLoad,
		InstrumentRouter: sc.Tech == wireless.TechWiFi,
		InstrumentServer: sc.WAN != testbed.WANCDN,
	}
	return testbed.SessionConfig{
		Opts:      opts,
		Spec:      sc.Spec,
		FaultFrom: sc.FaultFrom,
		FaultDur:  sc.FaultDur,
		Clip:      sc.Clip,
	}
}

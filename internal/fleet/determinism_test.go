package fleet

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"vqprobe/internal/features"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/qoe"
	"vqprobe/internal/serve"
)

func testFleetConfig(sessions int) Config {
	return Config{Sessions: sessions, Seed: 7}
}

func runText(t *testing.T, cfg Config) ([]byte, RunStats) {
	t.Helper()
	sum, stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sum.EncodeText(), stats
}

// The headline determinism contract: the encoded fleet summary is
// byte-identical for any worker count, because session outcomes are
// index-pure and shard merges are exact.
func TestWorkerInvariance(t *testing.T) {
	cfg := testFleetConfig(20000)
	var ref []byte
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		sum, _, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		text := sum.EncodeText()
		js, err := sum.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = append(text, js...)
			continue
		}
		if !bytes.Equal(ref, append(text, js...)) {
			t.Fatalf("workers=%d produced different summary bytes", workers)
		}
	}
}

// MaxLive bounds memory, not outcomes: squeezing the pool to a handful
// of slots forces heavy slot reuse and admission throttling, yet the
// summary bytes must not move. The high-water mark must respect the
// configured bound — that is the bounded-memory guarantee in units of
// session slots.
func TestMaxLiveInvarianceAndBound(t *testing.T) {
	cfg := testFleetConfig(20000)
	ref, refStats := runText(t, cfg)
	if refStats.MaxLive > 4096 {
		t.Fatalf("high-water %d exceeds default MaxLive", refStats.MaxLive)
	}

	cfg.MaxLive = 16
	squeezed, stats := runText(t, cfg)
	if !bytes.Equal(ref, squeezed) {
		t.Fatal("MaxLive=16 changed the summary bytes")
	}
	if stats.MaxLive > 16 {
		t.Fatalf("high-water %d exceeds MaxLive=16", stats.MaxLive)
	}
	// 20k sessions over an hour through 8×16 slots only fits if slots
	// are actually reused; a high-water at the cap proves throttling
	// engaged rather than the pool growing.
	if stats.MaxLive != 16 {
		t.Fatalf("high-water %d, want the cap (16) under pressure", stats.MaxLive)
	}
}

// Scenario sampling is a pure function of (seed, index): resampling any
// index must reproduce the scenario exactly, in any order.
func TestScenarioIndexPure(t *testing.T) {
	cfg := testFleetConfig(1000)
	cfg = cfg.withDefaults()
	first := make([]Scenario, 50)
	for i := range first {
		first[i] = SampleScenario(cfg, uint64(i))
	}
	for i := len(first) - 1; i >= 0; i-- { // resample in reverse order
		if again := SampleScenario(cfg, uint64(i)); !reflect.DeepEqual(first[i], again) {
			t.Fatalf("scenario %d not reproducible", i)
		}
	}
	other := cfg
	other.Seed = 8
	if reflect.DeepEqual(first[0], SampleScenario(other, 0)) {
		t.Fatal("different master seeds produced the same scenario")
	}
}

// A fleet run must aggregate exactly the sessions it was asked for:
// re-deriving every scenario independently and counting ground-truth
// fault classes must reproduce the fleet's ByFault counters.
func TestFleetMatchesScenarioCensus(t *testing.T) {
	cfg := testFleetConfig(20000)
	sum, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var census [nFaults + 1]uint64
	dcfg := cfg.withDefaults()
	for i := uint64(0); i < uint64(cfg.Sessions); i++ {
		census[SampleScenario(dcfg, i).Spec.Fault]++
	}
	if sum.Total.ByFault != census {
		t.Fatalf("fleet ByFault %v != independent census %v", sum.Total.ByFault, census)
	}
}

// The gold equivalence test: replaying every session in isolation
// (fresh session state, no pooling, no multiplexing) and aggregating
// the records must reproduce the multiplexed fleet run byte for byte.
// This is what makes -replay trustworthy — the record it prints for
// any index is exactly the record the fleet run folded in.
func TestReplayEquivalence(t *testing.T) {
	cfg := testFleetConfig(5000)
	sum, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dcfg := cfg.withDefaults()
	agg := NewAggregator(dcfg.Horizon, dcfg.Window)
	for i := uint64(0); i < uint64(cfg.Sessions); i++ {
		res, err := Replay(cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Summary
		agg.Observe(&s, false)
	}
	replayed := &FleetSummary{
		Seed: sum.Seed, Sessions: sum.Sessions, Shards: sum.Shards,
		Horizon: sum.Horizon, Window: sum.Window,
		Total: agg.Total, Windows: agg.Windows,
	}
	if !bytes.Equal(sum.EncodeText(), replayed.EncodeText()) {
		t.Fatal("isolated replays do not reproduce the fleet summary")
	}
}

// The CHAOS_SEED-style escape hatch at scale: out of a 100k-session
// run, pull one flagged (severe, faulted) session and re-simulate it
// alone; the replay must be self-consistent and repeatable.
func TestReplayFlaggedSessionFrom100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-session run")
	}
	cfg := testFleetConfig(100000)
	sum, stats, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total.Sessions != 100000 {
		t.Fatalf("aggregated %d sessions, want 100000", sum.Total.Sessions)
	}
	if sum.Total.BySeverity[qoe.Severe] == 0 {
		t.Fatal("a 100k fleet produced no severe sessions to flag")
	}
	if stats.MaxLive > 4096 {
		t.Fatalf("high-water %d exceeds the slot pool", stats.MaxLive)
	}

	// Find a flagged session the way an operator would drill in: scan
	// indices, replay candidates, stop at the first severe faulted one.
	dcfg := cfg.withDefaults()
	flagged := int64(-1)
	var rec ReplayResult
	for i := uint64(0); i < uint64(cfg.Sessions); i++ {
		if SampleScenario(dcfg, i).Spec.Fault == qoe.FaultNone {
			continue
		}
		res, err := Replay(cfg, i)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Severity == qoe.Severe {
			flagged, rec = int64(i), res
			break
		}
	}
	if flagged < 0 {
		t.Fatal("no severe faulted session found")
	}
	again, err := Replay(cfg, uint64(flagged))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Summary != again.Summary {
		t.Fatalf("replay of session %d not repeatable:\n%+v\n%+v", flagged, rec.Summary, again.Summary)
	}
	if got := rec.Summary.TrueCause(); got != CauseIndex(rec.Scenario.Spec.Fault.String()) {
		t.Fatalf("flagged session %d: true cause %d does not attribute its fault %s",
			flagged, got, rec.Scenario.Spec.Fault)
	}
}

// Pooled slot reuse must not leak state between sessions: resetting a
// slot that just ran a heavy faulted session onto a new index must
// yield the same summary as a fresh slot.
func TestSlotReuseLeavesNoResidue(t *testing.T) {
	cfg := testFleetConfig(1000)
	cfg.PinFault = qoe.WANCongestion
	cfg = cfg.withDefaults()

	runSlot := func(s *session, idx uint64) SessionSummary {
		s.reset(&cfg, idx)
		for at := s.firstEvent(); at > 0; {
			at = s.step(at)
		}
		var sum SessionSummary
		s.summarize(&sum)
		return sum
	}

	var dirty session
	runSlot(&dirty, 3) // heavy faulted session leaves the slot dirty
	reused := runSlot(&dirty, 4)

	var fresh session
	if want := runSlot(&fresh, 4); reused != want {
		t.Fatalf("slot reuse changed session 4:\nreused %+v\nfresh  %+v", reused, want)
	}
}

// fleetTestModel trains a tiny decision tree over the features the
// fluid model synthesizes, so the engine-fed path can run end to end
// in-process.
func fleetTestModel(t testing.TB) *serve.Model {
	t.Helper()
	var insts []ml.Instance
	for ratio := 0.0; ratio <= 0.5; ratio += 0.02 {
		for rssi := -85.0; rssi <= -50; rssi += 5 {
			cls := "good"
			if ratio > 0.1 {
				if rssi < -75 {
					cls = "low_rssi_severe"
				} else {
					cls = "wan_cong_mild"
				}
			}
			insts = append(insts, ml.Instance{
				Features: metrics.Vector{
					"mobile.app_stall_ratio":        ratio,
					"mobile.wlan0_nic_rssi_dbm_avg": rssi,
				},
				Class: cls,
			})
		}
	}
	d := ml.NewDataset(insts)
	constructed, norm := features.Construct(d)
	ct, err := c45.Compile(c45.Default().TrainTree(constructed))
	if err != nil {
		t.Fatal(err)
	}
	return serve.NewModel("exact", norm, ct)
}

// Feeding every summary through the serve engine must preserve worker
// invariance: diagnosis verdicts land per-index, so batch boundaries
// and engine scheduling cannot reorder anything observable.
func TestEngineFedWorkerInvariance(t *testing.T) {
	eng := serve.NewEngine(fleetTestModel(t), serve.Config{Shards: 2})
	defer eng.Close()

	cfg := testFleetConfig(4000)
	cfg.Engine = eng
	cfg.ModelTask = "exact"
	cfg.DiagBatch = 37 // deliberately odd so batches straddle retirements

	var ref []byte
	for _, workers := range []int{1, 4} {
		cfg.Workers = workers
		sum, _, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Total.DiagTotal != uint64(cfg.Sessions) {
			t.Fatalf("diagnosed %d of %d sessions", sum.Total.DiagTotal, cfg.Sessions)
		}
		if sum.Total.DiagMatch == 0 {
			t.Fatal("model matched nothing — feature plumbing broken?")
		}
		text := sum.EncodeText()
		if ref == nil {
			ref = text
			continue
		}
		if !bytes.Equal(ref, text) {
			t.Fatalf("engine-fed run with workers=%d changed the summary bytes", workers)
		}
	}
}

// Full fidelity routes the same scenarios through the packet-level
// testbed via the pooled Runner; a small fleet must aggregate cleanly.
func TestFullFidelitySmallFleet(t *testing.T) {
	cfg := testFleetConfig(12)
	cfg.Full = true
	cfg.Horizon = 10 * time.Minute
	cfg.Window = time.Minute
	sum, _, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total.Sessions != 12 {
		t.Fatalf("aggregated %d sessions, want 12", sum.Total.Sessions)
	}
	rep, err := Replay(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Index != 5 || rep.Summary.SessionSec <= 0 {
		t.Fatalf("full-fidelity replay summary malformed: %+v", rep.Summary)
	}
}

func TestRunValidation(t *testing.T) {
	if _, _, err := Run(Config{Sessions: 0}); err == nil {
		t.Fatal("Sessions=0 accepted")
	}
	if _, _, err := Run(Config{Sessions: 1, Horizon: time.Minute, Window: time.Hour}); err == nil {
		t.Fatal("Window > Horizon accepted")
	}
	if _, err := Replay(testFleetConfig(10), 10); err == nil {
		t.Fatal("out-of-range replay index accepted")
	}
}

// Package fleet is the population-scale simulator: it multiplexes many
// concurrent scenario-driven video sessions per event loop, spreads
// event loops across cores via internal/parallel, and rolls each
// finished session into a fixed-size SessionSummary that streams into
// windowed fleet aggregates — percentile sketches for startup delay,
// stall ratio and MOS plus per-fault-class and per-root-cause counters
// — so memory is O(shards × windows × bins), never O(sessions).
//
// Determinism contract: a fleet run is a pure function of
// (Config.Seed, Config.Sessions, scenario knobs). Every session derives
// its own sub-seed from the master seed and its index (splitmix64), all
// sessions are independent, sketch bins hold integer counts (merges are
// exact and commutative), and shard results merge in fixed shard-index
// order — so the encoded fleet summary is byte-identical for any
// -workers value. docs/FLEET.md spells out the full contract.
package fleet

import "vqprobe/internal/sketch"

// Hist is the exact mergeable fixed-bin histogram sketch, now shared
// with the obs telemetry plane via internal/sketch: fleet quantiles and
// live obs quantiles go through byte-identical machinery. The alias
// (rather than a wrapper type) keeps every existing fleet API and its
// JSON encoding bit-for-bit what it was before the extraction.
type Hist = sketch.Hist

// Re-exported constructors so fleet callers and tests are untouched by
// the internal/sketch extraction.
var (
	NewHist     = sketch.NewHist
	LinearEdges = sketch.LinearEdges
	LogEdges    = sketch.LogEdges
)

package fleet

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"vqprobe/internal/qoe"
)

// SessionSummary is the fixed-size record one finished session leaves
// behind — the fleet analogue of the `viewer_playback_events` →
// session-summary rollup: everything downstream analytics need, nothing
// that grows with session length. Event logs, traces and feature maps
// die with the pooled session state.
type SessionSummary struct {
	Index      uint64
	Fault      qoe.Fault
	Severity   qoe.Severity
	Cause      uint8 // root-cause class, index into CauseClasses
	Abandoned  bool
	Completed  bool
	ArrivalSec float32
	StartupSec float32
	Stalls     uint32
	StallSec   float32
	StallRatio float32 // stall time / session time
	PlayedSec  float32
	SessionSec float32
	MOS        float32
	Bytes      uint64
}

// nFaults is the size of the qoe fault catalogue; array sizes need a
// constant. An init check below keeps it honest against qoe.Faults.
const nFaults = 7

// Root-cause class indices: 0 is a healthy session, 1..nFaults follow
// the qoe.Faults catalogue order, and the last class is a degraded
// session with no attributable cause.
const (
	CauseGood    uint8 = 0
	CauseUnknown uint8 = nFaults + 1
	nCauses            = nFaults + 2
)

func init() {
	if len(qoe.Faults) != nFaults {
		panic("fleet: nFaults out of sync with qoe.Faults")
	}
}

// CauseClasses enumerates the root-cause taxonomy in index order.
func CauseClasses() []string {
	out := make([]string, 0, nCauses)
	out = append(out, "good")
	for _, f := range qoe.Faults {
		out = append(out, f.String())
	}
	return append(out, "unknown")
}

// CauseIndex maps a cause name (a qoe.Fault string, "good", or
// anything else → unknown) to its class index.
func CauseIndex(name string) uint8 {
	if name == "good" {
		return CauseGood
	}
	for i, f := range qoe.Faults {
		if f.String() == name {
			return uint8(i + 1)
		}
	}
	return CauseUnknown
}

// TrueCause derives the ground-truth root-cause class of a summary:
// healthy sessions are "good" regardless of any latent fault (the
// fault didn't bite), degraded sessions attribute to the induced fault,
// and degraded sessions without one are "unknown" — the same
// conflation rule as testbed.LocationLabel.
func (s *SessionSummary) TrueCause() uint8 {
	if s.Severity == qoe.Good {
		return CauseGood
	}
	if s.Fault == qoe.FaultNone {
		return CauseUnknown
	}
	return CauseIndex(s.Fault.String())
}

// Histogram edge sets shared by every window (Hist retains, never
// mutates, the edge slice).
var (
	startupEdges    = LogEdges(0.2, 60, 24)    // seconds
	stallRatioEdges = LinearEdges(0, 0.8, 16)  // fraction of session time
	mosEdges        = LinearEdges(1, 4.25, 13) // MOS scale, ~0.25 wide bins
)

// WindowSummary aggregates the sessions whose arrival fell in one
// tumbling window of the fleet's virtual clock. All state is either an
// integer counter or a fixed-bin Hist, so merging windows across shards
// is exact and order-independent.
type WindowSummary struct {
	Sessions   uint64              `json:"sessions"`
	Abandoned  uint64              `json:"abandoned"`
	Completed  uint64              `json:"completed"`
	BySeverity [3]uint64           `json:"by_severity"` // good/mild/severe
	ByFault    [nFaults + 1]uint64 `json:"by_fault"`    // ground truth, qoe.Fault order (0 = none)
	ByCause    [nCauses]uint64     `json:"by_cause"`    // diagnosed root cause
	DiagTotal  uint64              `json:"diag_total"`  // sessions diagnosed by a model
	DiagMatch  uint64              `json:"diag_match"`  // ... whose verdict matched ground truth
	Startup    *Hist               `json:"startup_s"`
	StallRatio *Hist               `json:"stall_ratio"`
	MOS        *Hist               `json:"mos"`
}

func newWindowSummary() WindowSummary {
	return WindowSummary{
		Startup:    NewHist(startupEdges),
		StallRatio: NewHist(stallRatioEdges),
		MOS:        NewHist(mosEdges),
	}
}

// observe folds one session summary into the window.
func (w *WindowSummary) observe(s *SessionSummary, diagnosed bool) {
	w.Sessions++
	if s.Abandoned {
		w.Abandoned++
	}
	if s.Completed {
		w.Completed++
	}
	w.BySeverity[s.Severity]++
	w.ByFault[s.Fault]++
	w.ByCause[s.Cause]++
	if diagnosed {
		w.DiagTotal++
		if s.Cause == s.TrueCause() {
			w.DiagMatch++
		}
	}
	w.Startup.Add(float64(s.StartupSec))
	w.StallRatio.Add(float64(s.StallRatio))
	w.MOS.Add(float64(s.MOS))
}

// merge adds o into w (exact: integer counters and shared-edge hists).
func (w *WindowSummary) merge(o *WindowSummary) {
	w.Sessions += o.Sessions
	w.Abandoned += o.Abandoned
	w.Completed += o.Completed
	for i := range w.BySeverity {
		w.BySeverity[i] += o.BySeverity[i]
	}
	for i := range w.ByFault {
		w.ByFault[i] += o.ByFault[i]
	}
	for i := range w.ByCause {
		w.ByCause[i] += o.ByCause[i]
	}
	w.DiagTotal += o.DiagTotal
	w.DiagMatch += o.DiagMatch
	w.Startup.Merge(o.Startup)
	w.StallRatio.Merge(o.StallRatio)
	w.MOS.Merge(o.MOS)
}

// Aggregator is one shard's streaming aggregation state: a fixed array
// of tumbling windows plus an all-sessions rollup. Its memory is
// O(windows × bins), set entirely by the horizon/window configuration —
// independent of how many sessions flow through it.
type Aggregator struct {
	window  time.Duration
	Total   WindowSummary
	Windows []WindowSummary
}

// NewAggregator sizes the window array for the horizon.
func NewAggregator(horizon, window time.Duration) *Aggregator {
	n := int((horizon + window - 1) / window)
	if n < 1 {
		n = 1
	}
	a := &Aggregator{window: window, Total: newWindowSummary()}
	a.Windows = make([]WindowSummary, n)
	for i := range a.Windows {
		a.Windows[i] = newWindowSummary()
	}
	return a
}

// Observe folds one finished session into its arrival window and the
// total rollup.
func (a *Aggregator) Observe(s *SessionSummary, diagnosed bool) {
	i := int(time.Duration(float64(time.Second)*float64(s.ArrivalSec)) / a.window)
	if i < 0 {
		i = 0
	}
	if i >= len(a.Windows) {
		i = len(a.Windows) - 1
	}
	a.Windows[i].observe(s, diagnosed)
	a.Total.observe(s, diagnosed)
}

// Merge folds another aggregator (same horizon/window shape) into a.
func (a *Aggregator) Merge(o *Aggregator) {
	if len(a.Windows) != len(o.Windows) {
		panic("fleet: merging aggregators with different window counts")
	}
	a.Total.merge(&o.Total)
	for i := range a.Windows {
		a.Windows[i].merge(&o.Windows[i])
	}
}

// FleetSummary is the final artifact of a fleet run.
type FleetSummary struct {
	Seed      int64           `json:"seed"`
	Sessions  uint64          `json:"sessions"`
	Shards    int             `json:"shards"`
	Horizon   time.Duration   `json:"horizon_ns"`
	Window    time.Duration   `json:"window_ns"`
	ModelTask string          `json:"model_task,omitempty"`
	Total     WindowSummary   `json:"total"`
	Windows   []WindowSummary `json:"windows"`
}

// EncodeJSON renders the summary as deterministic JSON: the struct has
// no maps, so field order and therefore bytes are fixed for a given
// run's inputs.
//
//lint:deterministic fleet reports are byte-compared across runs and worker counts
func (f *FleetSummary) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(f, "", " ")
}

// EncodeText renders the human-readable fleet report. The encoding is
// byte-stable for identical summaries (fixed iteration order, fixed
// float formats) — the determinism tests compare these bytes across
// worker counts.
//
//lint:deterministic fleet text reports are byte-compared across runs and worker counts
func (f *FleetSummary) EncodeText() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: sessions=%d seed=%d shards=%d horizon=%v window=%v\n",
		f.Sessions, f.Seed, f.Shards, f.Horizon, f.Window)
	t := &f.Total
	fmt.Fprintf(&b, "outcome: completed=%d abandoned=%d good=%d mild=%d severe=%d\n",
		t.Completed, t.Abandoned, t.BySeverity[0], t.BySeverity[1], t.BySeverity[2])
	t.Startup.AppendTo(&b, "startup", "s")
	t.StallRatio.AppendTo(&b, "stall_ratio", "")
	t.MOS.AppendTo(&b, "mos", "")
	b.WriteString("by fault class (ground truth):\n")
	fmt.Fprintf(&b, "  %-12s %d\n", "none", t.ByFault[qoe.FaultNone])
	for _, fc := range qoe.Faults {
		fmt.Fprintf(&b, "  %-12s %d\n", fc.String(), t.ByFault[fc])
	}
	b.WriteString("by root cause (diagnosed):\n")
	for i, name := range CauseClasses() {
		fmt.Fprintf(&b, "  %-12s %d\n", name, t.ByCause[i])
	}
	if t.DiagTotal > 0 {
		fmt.Fprintf(&b, "diagnosis: model=%s total=%d match=%d accuracy=%.4f\n",
			f.ModelTask, t.DiagTotal, t.DiagMatch, float64(t.DiagMatch)/float64(t.DiagTotal))
	}
	b.WriteString("windows (non-empty):\n")
	for i := range f.Windows {
		w := &f.Windows[i]
		if w.Sessions == 0 {
			continue
		}
		fmt.Fprintf(&b, "  [%4d] t=%-8v n=%-8d good=%-8d mild=%-7d severe=%-7d p50_mos=%.3f p95_startup=%.3fs p95_stall=%.4f\n",
			i, time.Duration(i)*f.Window, w.Sessions, w.BySeverity[0], w.BySeverity[1], w.BySeverity[2],
			w.MOS.Quantile(0.50), w.Startup.Quantile(0.95), w.StallRatio.Quantile(0.95))
	}
	return []byte(b.String())
}

package fleet

import (
	"math"
	"math/rand"
	"time"

	"vqprobe/internal/qoe"
	"vqprobe/internal/testbed"
	"vqprobe/internal/video"
	"vqprobe/internal/wireless"
)

// The fleet session model is a fluid approximation of the packet-level
// testbed: instead of simulating every TCP segment (~24ms and ~200k
// allocations per session), it advances a progressive-download player
// analytically between capacity-change events. Throughput is piecewise
// constant — resampled every few virtual seconds and whenever the
// scenario's fault window opens or closes — and within one segment the
// buffer trajectory is linear, so stall/resume/startup/completion
// boundaries are computed in closed form. A session costs a few dozen
// heap events (~µs), which is what makes a million-session fleet
// tractable on one machine. The same Scenario can be re-run through the
// full testbed (Scenario.SessionConfig) to ground-truth the
// approximation; docs/FLEET.md compares the two.

type playState uint8

const (
	stStartup playState = iota // buffering toward first frame
	stPlaying                  // rendering; download may still run
	stStalled                  // buffer ran dry mid-play
	stDone
)

// Player model constants: the testbed player starts after ~2s of media
// and resumes a stall with ~1.5s in the buffer.
const (
	startupTargetSec = 2.0
	resumeTargetSec  = 1.5
	minEventStep     = time.Millisecond // floor on boundary steps (float-precision guard)
)

// session is the pooled per-slot state: one live session of a shard's
// event loop. It is reused across sessions (reset() reinitializes every
// field), so a shard's memory is O(MaxLive), not O(sessions).
type session struct {
	sc  Scenario
	rng *rand.Rand

	state    playState
	t        time.Duration // fleet-clock time of last integration
	end      time.Duration // fleet-clock hard cap for this session
	epochEnd time.Duration // current capacity segment's end

	thr       float64 // current goodput, bits/s
	downBits  float64
	totalBits float64
	playedSec float64
	doneDown  bool

	// derived static rates
	wanBase  float64
	devBase  float64
	rttMS    float64
	skipFrac float64 // frames skipped per rendered frame under decode stress

	// accumulated QoE ground truth
	startup    time.Duration
	stallStart time.Duration
	stallTime  time.Duration
	stalls     int
	skipped    float64
	bufSum     float64 // ∫ buffer dt, for BufferMeanSec
	failed     bool
	failReason string

	// current capacity segment's measurement-plane snapshot
	segRTT      float64
	segCPU      float64
	segRSSI     float64
	segLossPkts float64
	segRetry    float64

	// accumulated measurement-plane estimates (feature synthesis)
	rttSum     float64 // ∫ rtt dt over download time
	rttDur     float64
	retransPkt float64
	retries    float64
	cpuSum     float64
	cpuDur     float64
	rssiSum    float64
	rssiDur    float64
}

// reset re-arms the slot for session index idx of cfg's fleet: the
// slot's pooled *rand.Rand is reseeded with the session's private
// sub-seed, the scenario sampled from it, and the playback dynamics
// keep drawing from the same stream.
func (s *session) reset(cfg *Config, idx uint64) {
	rng := s.rng
	if rng == nil {
		rng = newSessionRand(SubSeed(cfg.Seed, idx))
	} else {
		rng.Seed(SubSeed(cfg.Seed, idx))
	}
	sc := sampleScenario(*cfg, idx, rng)
	*s = session{sc: sc, rng: rng}
	s.t = sc.Arrival
	s.end = sc.Arrival + 4*sc.Clip.Duration + 90*time.Second
	s.totalBits = sc.Clip.Bitrate * sc.Clip.Duration.Seconds()

	switch sc.WAN {
	case testbed.WANCDN:
		s.wanBase, s.rttMS = 20e6, 46
	case testbed.WANMobile:
		s.wanBase, s.rttMS = 5.22e6, 210
	default: // DSL
		s.wanBase, s.rttMS = 7.8e6, 104
	}
	switch sc.DeviceTier {
	case 0:
		s.devBase = 48e6
	case 1:
		s.devBase = 28e6
	default:
		s.devBase = 14e6
	}

	// Connection setup + first media bytes: a TCP handshake and request
	// round trip plus server think time under load.
	setup := time.Duration((1.5*s.rttMS/1e3 + 0.25*sc.ServerLoad) * float64(time.Second))
	s.t += setup
	s.resample()
}

// start pushes the session's first event time (its arrival, after
// connection setup).
func (s *session) firstEvent() time.Duration { return s.t }

// faultActive reports whether the scenario's fault window covers fleet
// time t (session-relative windowing, like testbed.RunSession).
func (s *session) faultActive(t time.Duration) bool {
	if s.sc.Spec.Fault == qoe.FaultNone {
		return false
	}
	rel := t - s.sc.Arrival
	return rel >= s.sc.FaultFrom && rel < s.sc.FaultFrom+s.sc.FaultDur
}

// wifiCap maps an instantaneous RSSI to an achievable WLAN goodput —
// the fluid stand-in for rate adaptation plus retransmissions.
func wifiCap(rssi float64) float64 {
	switch {
	case rssi >= -60:
		return 42e6
	case rssi >= -85:
		return 42e6 + (rssi+60)/(25)*(42e6-2.2e6) // linear down to 2.2 Mbit/s at -85
	case rssi >= -89:
		return 2.2e6 + (rssi+85)/4*(2.2e6-0.25e6)
	default:
		return 0.25e6
	}
}

// resample ends the current capacity segment and draws the next one:
// base path capacity, cross-traffic breathing, the fault's effect when
// its window is open, and multiplicative noise. It also refreshes the
// measurement-plane estimators (RTT, CPU, RSSI, loss) that the feature
// synthesizer integrates.
func (s *session) resample() {
	sc, rng := &s.sc, s.rng
	active := s.faultActive(s.t)
	i := sc.Spec.Intensity

	wan := s.wanBase * (1 - 0.35*sc.Background*(0.5+0.5*rng.Float64())) * (1 - 0.5*sc.ServerLoad)
	// Mobile-tap segment RTT: the testbed's mobile probe measures
	// data→ack delay at the client tap, NOT the WAN path RTT — a few
	// milliseconds when healthy, inflated by queueing at whichever hop
	// the fault congests (calibrated against packet-level runs of the
	// same scenarios; see docs/FLEET.md).
	rtt := 0.6 + 4*sc.Background*rng.Float64()
	loss := 0.00005
	dev := s.devBase
	cpu := 18 + 25*sc.Background*rng.Float64()
	rssi := sc.BaseRSSI + rng.NormFloat64()*2
	retryRate := 0.02 // link retries per packet, healthy baseline
	radioMul := 1.0   // airtime share left to the session on the radio link
	radioCap := math.Inf(1)
	s.skipFrac = 0

	if active {
		switch sc.Spec.Fault {
		case qoe.WANCongestion:
			wan *= 1 - lerp(0.35, 0.95, i)*(0.8+0.2*rng.Float64())
			rtt += 0.3 * lerp(20, 260, i)
			loss += lerp(0.0005, 0.006, i)
		case qoe.WANShaping:
			wan *= lerp(0.8, 0.12, i)
			rtt += 0.3 * lerp(20, 250, i)
			loss += lerp(0.003, 0.03, i)
		case qoe.LANCongestion:
			// The congestor claims most of the medium; collisions eat
			// much of what the share math leaves.
			radioMul = (1 - lerp(0.8, 0.975, i)) * (0.5 + 0.5*rng.Float64())
			retryRate += lerp(0.1, 0.3, i)
			rtt += lerp(10, 120, i) * (0.5 + rng.Float64())
			loss += lerp(0.0003, 0.003, i)
		case qoe.LANShaping:
			radioCap = lerp(12e6, 0.5e6, i)
			rtt += lerp(2, 20, i)
		case qoe.MobileLoad:
			cpu = lerp(55, 97, i) + rng.NormFloat64()*2
			dev *= 1 - 0.9*i
			s.skipFrac = math.Max(0, lerp(-0.08, 0.4, i))
			rtt += lerp(2, 8, i)
		case qoe.LowRSSI:
			rssi = lerp(-74, -90, i) + rng.NormFloat64()*1.5
			retryRate += lerp(0.05, 0.4, i)
			rtt += lerp(2, 15, i)
		case qoe.WiFiInterference:
			// A competing WLAN duty-cycles; this epoch it claims a
			// breathing share of airtime.
			share := lerp(0.45, 0.9, i) * (0.75 + 0.5*rng.Float64())
			radioMul = math.Max(0.03, 1-share)
			retryRate += lerp(0.1, 0.5, i)
			rtt += lerp(1, 4, i)
		}
	}

	var radio float64
	if sc.Tech == wireless.Tech3G {
		radio = 6.1e6 * (1 - 0.2*rng.Float64())
		if rssi < -80 {
			radio *= math.Max(0.15, 1-(-80-rssi)/15)
		}
	} else {
		radio = wifiCap(rssi)
	}
	radio = math.Min(radio*radioMul, radioCap)

	noise := math.Exp(rng.NormFloat64() * 0.15)
	if noise < 0.6 {
		noise = 0.6
	} else if noise > 1.6 {
		noise = 1.6
	}
	thr := math.Min(math.Min(wan, radio), dev) * noise
	// Loss caps Reno throughput (simplified Mathis bound already folded
	// into the testbed's links); approximate with a proportional drag.
	// Link-layer retries similarly tax goodput.
	thr *= math.Max(0.1, 1-25*loss)
	thr *= 1 - 0.5*clamp01f(retryRate*1.5)
	if thr < 1e3 {
		thr = 1e3
	}
	s.thr = thr

	// Measurement-plane snapshot for this segment, integrated by step().
	s.segRTT = rtt
	s.segCPU = cpu
	s.segRSSI = rssi
	s.segLossPkts = loss
	s.segRetry = retryRate

	epoch := time.Duration((2 + 4*rng.Float64()) * float64(time.Second))
	s.epochEnd = s.t + epoch
	// Snap the segment boundary to the fault window's edges so the
	// effect starts and stops exactly on schedule.
	for _, edge := range [2]time.Duration{sc.Arrival + sc.FaultFrom, sc.Arrival + sc.FaultFrom + sc.FaultDur} {
		if sc.Spec.Fault != qoe.FaultNone && edge > s.t && edge < s.epochEnd {
			s.epochEnd = edge
		}
	}
}

// step advances the session to `now` (integrating download/playback)
// and returns the fleet time of its next event, or 0 when the session
// finished. The shard loop calls it with the time it scheduled.
func (s *session) step(now time.Duration) time.Duration {
	s.integrate(now)
	if s.state == stDone {
		return 0
	}

	// State transitions at the current instant.
	bitrate := s.sc.Clip.Bitrate
	buf := s.downBits/bitrate - s.playedSec // media seconds in buffer
	switch s.state {
	case stStartup:
		if s.downBits >= startupTargetSec*bitrate || s.doneDown {
			s.startup = s.t - s.sc.Arrival
			s.state = stPlaying
		} else if s.t-s.sc.Arrival >= s.sc.PatienceStartup {
			return s.finish(true, "startup_abandoned")
		}
	case stPlaying:
		if s.playedSec >= s.sc.Clip.Duration.Seconds()-1e-9 {
			return s.finish(false, "")
		}
		if !s.doneDown && buf <= 1e-9 {
			s.state = stStalled
			s.stalls++
			s.stallStart = s.t
		}
	case stStalled:
		if s.doneDown || buf >= resumeTargetSec-1e-9 {
			s.stallTime += s.t - s.stallStart
			s.stallStart = 0
			s.state = stPlaying
		} else if s.stallTime+(s.t-s.stallStart) >= s.sc.PatienceStall {
			return s.finish(true, "stall_abandoned")
		}
	}
	if s.t >= s.end {
		return s.finish(!s.completedPlayout(), "wallclock_cap")
	}

	if s.t >= s.epochEnd {
		s.resample()
	}

	// Closed-form time to the next boundary in the current segment.
	next := s.epochEnd
	bound := func(dtSec float64) {
		if dtSec < 0 {
			dtSec = 0
		}
		at := s.t + time.Duration(dtSec*float64(time.Second))
		if at < s.t+minEventStep {
			at = s.t + minEventStep
		}
		if at < next {
			next = at
		}
	}
	switch s.state {
	case stStartup:
		bound((startupTargetSec*bitrate - s.downBits) / s.thr)
		pat := s.sc.Arrival + s.sc.PatienceStartup
		if pat < next {
			next = pat
		}
	case stPlaying:
		bound(s.sc.Clip.Duration.Seconds() - s.playedSec) // playout end
		if !s.doneDown {
			bound((s.totalBits - s.downBits) / s.thr) // download completion
			if s.thr < bitrate {                      // buffer depletion
				bound(buf / (1 - s.thr/bitrate))
			}
		}
	case stStalled:
		bound((resumeTargetSec - buf) * bitrate / s.thr)
		pat := s.t + (s.sc.PatienceStall - s.stallTime - (s.t - s.stallStart))
		if pat < next {
			next = pat
		}
	}
	if s.end < next {
		next = s.end
	}
	if next <= s.t {
		next = s.t + minEventStep
	}
	return next
}

// integrate advances download and playback fluid state from s.t to now
// and accumulates the measurement-plane integrals.
func (s *session) integrate(now time.Duration) {
	dt := (now - s.t).Seconds()
	if dt <= 0 {
		return
	}
	if !s.doneDown {
		got := s.thr * dt
		if s.downBits+got >= s.totalBits {
			got = s.totalBits - s.downBits
			s.doneDown = true
		}
		s.downBits += got
		pkts := got / 8 / 1380
		s.retransPkt += pkts * s.segLossPkts * 30 // retransmits per lost pkt incl. window fallout
		s.retries += pkts * s.segRetry * 2        // MAC retries per data pkt (calibrated vs testbed)
		s.rttSum += s.segRTT * dt
		s.rttDur += dt
	}
	if s.state == stPlaying {
		s.playedSec += dt
		s.skipped += s.skipFrac * float64(s.sc.Clip.FPS) * dt
		s.bufSum += math.Max(0, s.downBits/s.sc.Clip.Bitrate-s.playedSec) * dt
	}
	s.cpuSum += s.segCPU * dt
	s.cpuDur += dt
	s.rssiSum += s.segRSSI * dt
	s.rssiDur += dt
	s.t = now
}

func (s *session) completedPlayout() bool {
	return s.playedSec >= s.sc.Clip.Duration.Seconds()-0.5
}

// finish closes the session and freezes its stats; step() returns 0
// afterwards.
func (s *session) finish(failed bool, reason string) time.Duration {
	if s.state == stStalled && s.stallStart > 0 {
		s.stallTime += s.t - s.stallStart
	}
	if s.state == stStartup && failed {
		s.startup = s.t - s.sc.Arrival
	}
	s.failed = failed
	s.failReason = reason
	s.state = stDone
	return 0
}

// report assembles the video.Report the real player would have
// produced, which feeds the same qoe.MOS model the testbed uses — the
// QoE layer is shared, only the transport beneath it is approximated.
func (s *session) report() video.Report {
	return video.Report{
		Clip:          s.sc.Clip,
		StartupDelay:  s.startup,
		Stalls:        s.stalls,
		StallTime:     s.stallTime,
		SkippedFrames: int(s.skipped),
		PlayedSec:     s.playedSec,
		SessionTime:   s.t - s.sc.Arrival,
		BufferMeanSec: safeDiv(s.bufSum, s.playedSec),
		Completed:     s.completedPlayout(),
		Failed:        s.failed && !s.completedPlayout(),
		FailReason:    s.failReason,
		BytesReceived: int64(s.downBits / 8),
	}
}

// summarize rolls the finished session into its fixed-size record.
func (s *session) summarize(sum *SessionSummary) {
	rep := s.report()
	mos := qoe.MOS(rep)
	sess := rep.SessionTime.Seconds()
	*sum = SessionSummary{
		Index:      s.sc.Index,
		Fault:      s.sc.Spec.Fault,
		Severity:   qoe.SeverityOf(mos),
		Abandoned:  rep.Failed,
		Completed:  rep.Completed,
		ArrivalSec: float32(s.sc.Arrival.Seconds()),
		StartupSec: float32(rep.StartupDelay.Seconds()),
		Stalls:     uint32(rep.Stalls),
		StallSec:   float32(rep.StallTime.Seconds()),
		StallRatio: float32(safeDiv(rep.StallTime.Seconds(), sess)),
		PlayedSec:  float32(rep.PlayedSec),
		SessionSec: float32(sess),
		MOS:        float32(mos),
		Bytes:      uint64(rep.BytesReceived),
	}
	sum.Cause = sum.TrueCause()
}

// features synthesizes the mobile-probe headline feature vector into
// fv (cleared first; the map is pooled by the caller). Keys match the
// testbed's mobile vantage point so trained models can consume fleet
// sessions through the serve engine.
func (s *session) features(fv map[string]float64) {
	for k := range fv {
		delete(fv, k)
	}
	sess := (s.t - s.sc.Arrival).Seconds()
	// Throughput over session time: the testbed's paced progressive
	// flow stays open for the whole session, so its flow-duration
	// denominator is session time, not download-active time.
	fv["mobile.tcp_s2c_throughput_bps"] = safeDiv(s.downBits, sess)
	fv["mobile.tcp_s2c_rtt_ms_avg"] = safeDiv(s.rttSum, s.rttDur)
	fv["mobile.tcp_s2c_retrans_pkts"] = s.retransPkt
	fv["mobile.tcp_first_data_delay_s"] = 2.5*s.rttMS/1e3 + 0.3*s.sc.ServerLoad
	fv["mobile.hw_cpu_pct_avg"] = safeDiv(s.cpuSum, s.cpuDur)
	fv["mobile.wlan0_nic_rssi_dbm_avg"] = safeDiv(s.rssiSum, s.rssiDur)
	fv["mobile.wlan0_nic_retries"] = s.retries
	fv["mobile.app_startup_delay_s"] = s.startup.Seconds()
	fv["mobile.app_stall_ratio"] = safeDiv(s.stallTime.Seconds(), sess)
}

func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }

func clamp01f(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

package fleet

import (
	"strconv"
	"time"

	"vqprobe/internal/serve"
)

// shardEvent is one pending wake-up of a live session slot.
type shardEvent struct {
	at   int64 // time.Duration, kept raw for compact comparisons
	slot int32
}

// eventHeap is a hand-rolled binary min-heap over shardEvents —
// container/heap would box every Push/Pop through an interface, and at
// tens of events per session across a million sessions that garbage
// dominates the run. Ordering is by time with slot as the tie-break,
// so pop order is fully deterministic.
type eventHeap []shardEvent

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].slot < h[j].slot
}

func (h *eventHeap) push(e shardEvent) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *eventHeap) pop() shardEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q.less(l, s) {
			s = l
		}
		if r < n && q.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	return top
}

// shard is one event loop of the fleet: it owns MaxLive pooled session
// slots, a wake-up heap multiplexing the live set, and its private
// aggregation state. Shard s simulates every session index i with
// i % Shards == s; because session outcomes are index-pure, the shard
// is an independent unit of work and shards can execute on any worker
// in any order without changing a single bit of the merged summary.
type shard struct {
	id    int
	cfg   *Config
	agg   *Aggregator
	slots []session
	free  []int32
	heap  eventHeap

	// engine-feeding batch buffers (nil engine leaves them unused)
	batchReqs []serve.Request
	batchSums []SessionSummary
	batchMaps []map[string]float64

	maxLive   int // high-water mark of concurrently live sessions
	completed uint64
}

func newShard(id int, cfg *Config) *shard {
	s := &shard{
		id:    id,
		cfg:   cfg,
		agg:   NewAggregator(cfg.Horizon, cfg.Window),
		slots: make([]session, cfg.MaxLive),
		free:  make([]int32, 0, cfg.MaxLive),
		heap:  make(eventHeap, 0, cfg.MaxLive),
	}
	for i := cfg.MaxLive - 1; i >= 0; i-- {
		s.free = append(s.free, int32(i))
	}
	if cfg.Engine != nil {
		n := cfg.DiagBatch
		s.batchReqs = make([]serve.Request, 0, n)
		s.batchSums = make([]SessionSummary, 0, n)
		s.batchMaps = make([]map[string]float64, n)
		for i := range s.batchMaps {
			s.batchMaps[i] = make(map[string]float64, 12)
		}
	}
	return s
}

// run simulates every session of this shard. Admission is by index
// order whenever a pooled slot is free; since sessions are independent
// this changes nothing about any session's outcome, it only bounds how
// many are in flight (memory O(MaxLive)).
func (s *shard) run() {
	next := uint64(s.id) // next session index owned by this shard
	total := uint64(s.cfg.Sessions)
	stride := uint64(s.cfg.Shards)
	live := 0
	for {
		for len(s.free) > 0 && next < total {
			slot := s.free[len(s.free)-1]
			s.free = s.free[:len(s.free)-1]
			sess := &s.slots[slot]
			sess.reset(s.cfg, next)
			s.heap.push(shardEvent{at: int64(sess.firstEvent()), slot: slot})
			next += stride
			live++
			if live > s.maxLive {
				s.maxLive = live
			}
		}
		if len(s.heap) == 0 {
			break
		}
		ev := s.heap.pop()
		sess := &s.slots[ev.slot]
		if at := sess.step(time.Duration(ev.at)); at > 0 {
			s.heap.push(shardEvent{at: int64(at), slot: ev.slot})
			continue
		}
		s.retire(ev.slot)
		s.free = append(s.free, ev.slot)
		live--
	}
	s.flushDiag()
}

// retire summarizes a finished slot and feeds it to the aggregator —
// directly, or through the serve engine's diagnosis batch when a model
// is attached.
func (s *shard) retire(slot int32) {
	sess := &s.slots[slot]
	s.completed++
	if s.cfg.Engine == nil {
		var sum SessionSummary
		sess.summarize(&sum)
		s.agg.Observe(&sum, false)
		if s.cfg.Progress != nil {
			s.cfg.Progress(1)
		}
		return
	}
	i := len(s.batchReqs)
	fv := s.batchMaps[i]
	sess.features(fv)
	var sum SessionSummary
	sess.summarize(&sum)
	s.batchReqs = append(s.batchReqs, serve.Request{
		ID:       strconv.FormatUint(sum.Index, 10),
		Features: fv,
	})
	s.batchSums = append(s.batchSums, sum)
	if len(s.batchReqs) == cap(s.batchReqs) {
		s.flushDiag()
	}
}

// flushDiag sends the pending batch through the engine and aggregates
// the diagnosed summaries. Results land per-index, so batch contents
// and engine sharding cannot reorder anything observable.
func (s *shard) flushDiag() {
	if s.cfg.Engine == nil || len(s.batchReqs) == 0 {
		return
	}
	results := s.cfg.Engine.DiagnoseBatch(s.batchReqs)
	for i := range results {
		sum := &s.batchSums[i]
		if results[i].Err == "" {
			sum.Cause = CauseIndex(results[i].Cause)
		} else {
			sum.Cause = CauseUnknown
		}
		s.agg.Observe(sum, true)
	}
	if s.cfg.Progress != nil {
		s.cfg.Progress(len(s.batchReqs))
	}
	s.batchReqs = s.batchReqs[:0]
	s.batchSums = s.batchSums[:0]
}

package video

import (
	"math/rand"
	"testing"
	"time"

	"vqprobe/internal/hardware"
	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
)

// rig is a minimal client<->server world for player tests.
type rig struct {
	sim    *simnet.Sim
	link   *simnet.Link
	client *tcpsim.Host
	server *tcpsim.Host
	device *hardware.Device
	srv    *Server
	clip   Clip
}

func newRig(seed int64, linkCfg simnet.LinkConfig, srvCfg ServerConfig, clip Clip) *rig {
	s := simnet.New(seed)
	cn := s.NewNode("phone", 1)
	sn := s.NewNode("server", 2)
	cnic, snic := cn.AddNIC("wlan0"), sn.AddNIC("eth0")
	link := simnet.ConnectSym(s, "direct", cnic, snic, linkCfg)
	r := &rig{
		sim:    s,
		link:   link,
		client: tcpsim.NewHost(cn, cnic),
		server: tcpsim.NewHost(sn, snic),
		device: hardware.NewDevice(s, hardware.ProfileGalaxyS2),
		clip:   clip,
	}
	r.srv = NewServer(r.server, srvCfg)
	r.srv.ClipFor = func(simnet.FlowKey) Clip { return clip }
	return r
}

// play runs the session to completion (or the deadline) and returns the
// report.
func (r *rig) play(t *testing.T, cfg PlayerConfig, deadline time.Duration) Report {
	t.Helper()
	var rep Report
	got := false
	p := Play(r.client, r.device, 2, r.clip, cfg)
	p.OnFinish = func(rr Report) { rep = rr; got = true; r.sim.Halt() }
	r.sim.Run(deadline)
	if !got {
		p.ForceFinish()
		rep = p.Report()
	}
	return rep
}

func sdClip(sec int) Clip {
	return Clip{ID: 1, Quality: SD, Bitrate: 1.5e6, Duration: time.Duration(sec) * time.Second, FPS: 30}
}

func TestHealthyPlaybackNoStalls(t *testing.T) {
	r := newRig(1, simnet.LinkConfig{Rate: 20e6, Delay: 15 * time.Millisecond, QueueBytes: 256 * 1024}, ServerConfig{}, sdClip(30))
	rep := r.play(t, PlayerConfig{}, 5*time.Minute)
	if !rep.Completed {
		t.Fatalf("healthy session did not complete: %+v", rep)
	}
	if rep.Stalls != 0 {
		t.Errorf("healthy session had %d stalls", rep.Stalls)
	}
	if rep.StartupDelay > 3*time.Second {
		t.Errorf("healthy startup delay %v too high", rep.StartupDelay)
	}
	if rep.SkippedFrames > 10 {
		t.Errorf("healthy session skipped %d frames", rep.SkippedFrames)
	}
}

func TestSlowLinkCausesStalls(t *testing.T) {
	// 1 Mbit/s link cannot sustain a 1.5 Mbit/s clip.
	r := newRig(2, simnet.LinkConfig{Rate: 1e6, Delay: 30 * time.Millisecond, QueueBytes: 128 * 1024}, ServerConfig{}, sdClip(30))
	rep := r.play(t, PlayerConfig{}, 10*time.Minute)
	if rep.Stalls == 0 {
		t.Errorf("undersized link produced no stalls: %+v", rep)
	}
	if rep.StallTime == 0 {
		t.Error("stall time should be positive")
	}
}

func TestPacedDeliveryCompletesHealthy(t *testing.T) {
	r := newRig(3, simnet.LinkConfig{Rate: 20e6, Delay: 15 * time.Millisecond, QueueBytes: 256 * 1024},
		ServerConfig{Pacing: true}, sdClip(30))
	rep := r.play(t, PlayerConfig{}, 5*time.Minute)
	if !rep.Completed || rep.Stalls != 0 {
		t.Errorf("paced healthy session: completed=%v stalls=%d", rep.Completed, rep.Stalls)
	}
}

func TestPacingLimitsThroughput(t *testing.T) {
	// With pacing the transfer should stretch close to the clip length
	// rather than finishing line-rate fast.
	clip := sdClip(40)
	r := newRig(4, simnet.LinkConfig{Rate: 50e6, Delay: 10 * time.Millisecond, QueueBytes: 1 << 20},
		ServerConfig{Pacing: true}, clip)
	var doneAt time.Duration
	p := Play(r.client, r.device, 2, clip, PlayerConfig{})
	p.OnFinish = func(Report) { doneAt = r.sim.Now(); r.sim.Halt() }
	r.sim.Run(5 * time.Minute)
	if doneAt == 0 {
		t.Fatal("paced session never finished")
	}
	// 10s burst + remaining 30s of media at 1.25x => at least ~20s.
	if doneAt < 25*time.Second {
		t.Errorf("paced 40s clip finished at %v; pacing is not limiting", doneAt)
	}
}

func TestMobileLoadCausesStallsOnHealthyNetwork(t *testing.T) {
	r := newRig(5, simnet.LinkConfig{Rate: 20e6, Delay: 15 * time.Millisecond, QueueBytes: 256 * 1024}, ServerConfig{}, sdClip(30))
	// Saturate the device from t=5s.
	r.device.Stress(92, 300, 30, 5*time.Second, time.Minute)
	rep := r.play(t, PlayerConfig{}, 10*time.Minute)
	if rep.Stalls == 0 && rep.SkippedFrames < 30 {
		t.Errorf("overloaded device produced neither stalls nor skips: %+v", rep)
	}
}

func TestModerateLoadSkipsFramesWithoutStalling(t *testing.T) {
	r := newRig(6, simnet.LinkConfig{Rate: 20e6, Delay: 15 * time.Millisecond, QueueBytes: 256 * 1024}, ServerConfig{}, sdClip(30))
	// Enough load to push decode factor below 1 but above the stall
	// threshold: base 12% + 55% + SD decode demand 9% ~= 76%.
	r.device.Stress(60, 100, 0, 0, time.Minute)
	rep := r.play(t, PlayerConfig{}, 10*time.Minute)
	if rep.SkippedFrames == 0 {
		t.Errorf("moderate load should skip frames: %+v", rep)
	}
}

func TestDeadLinkFailsSession(t *testing.T) {
	r := newRig(7, simnet.LinkConfig{Rate: 20e6, Delay: 15 * time.Millisecond}, ServerConfig{}, sdClip(30))
	r.link.SetDown(true)
	rep := r.play(t, PlayerConfig{}, 10*time.Minute)
	if !rep.Failed {
		t.Errorf("session over a dead link must fail: %+v", rep)
	}
	if rep.Completed {
		t.Error("failed session cannot be completed")
	}
}

func TestStartupDelayReflectsSlowStart(t *testing.T) {
	fast := newRig(8, simnet.LinkConfig{Rate: 20e6, Delay: 10 * time.Millisecond, QueueBytes: 256 * 1024}, ServerConfig{}, sdClip(25))
	slow := newRig(8, simnet.LinkConfig{Rate: 20e6, Delay: 150 * time.Millisecond, JitterStd: 10 * time.Millisecond, Loss: 0.02, QueueBytes: 256 * 1024}, ServerConfig{}, sdClip(25))
	repF := fast.play(t, PlayerConfig{}, 5*time.Minute)
	repS := slow.play(t, PlayerConfig{}, 5*time.Minute)
	if repS.StartupDelay <= repF.StartupDelay {
		t.Errorf("startup on slow path (%v) not above fast path (%v)", repS.StartupDelay, repF.StartupDelay)
	}
}

func TestServerLoadDelaysStartup(t *testing.T) {
	idle := newRig(9, simnet.LinkConfig{Rate: 20e6, Delay: 15 * time.Millisecond, QueueBytes: 256 * 1024}, ServerConfig{}, sdClip(25))
	busy := newRig(9, simnet.LinkConfig{Rate: 20e6, Delay: 15 * time.Millisecond, QueueBytes: 256 * 1024},
		ServerConfig{LoadFn: func(time.Duration) float64 { return 0.9 }}, sdClip(25))
	repI := idle.play(t, PlayerConfig{}, 5*time.Minute)
	repB := busy.play(t, PlayerConfig{}, 5*time.Minute)
	if repB.StartupDelay < repI.StartupDelay+time.Second {
		t.Errorf("busy server startup %v not clearly above idle %v", repB.StartupDelay, repI.StartupDelay)
	}
}

func TestReportDerivedMetrics(t *testing.T) {
	r := Report{Stalls: 4, StallTime: 8 * time.Second, SessionTime: 40 * time.Second}
	if got := r.MeanStallDuration(); got != 2*time.Second {
		t.Errorf("MeanStallDuration = %v", got)
	}
	if got := r.RebufferFrequency(); got != 0.1 {
		t.Errorf("RebufferFrequency = %v", got)
	}
	empty := Report{}
	if empty.MeanStallDuration() != 0 || empty.RebufferFrequency() != 0 {
		t.Error("zero-value report must not divide by zero")
	}
}

func TestCatalogProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	clips := NewCatalog(rng, CatalogConfig{})
	if len(clips) != 100 {
		t.Fatalf("default catalog size %d, want 100", len(clips))
	}
	hd := 0
	for _, c := range clips {
		if c.Duration < 20*time.Second || c.Duration > 120*time.Second {
			t.Errorf("clip duration %v out of range", c.Duration)
		}
		switch c.Quality {
		case HD:
			hd++
			if c.Bitrate < 1.8e6 || c.Bitrate > 2.6e6 {
				t.Errorf("HD bitrate %.0f out of range", c.Bitrate)
			}
		case SD:
			if c.Bitrate < 0.6e6 || c.Bitrate > 1.2e6 {
				t.Errorf("SD bitrate %.0f out of range", c.Bitrate)
			}
		}
		if c.SizeBytes() <= 0 {
			t.Errorf("clip %d has non-positive size", c.ID)
		}
	}
	if hd < 20 || hd > 60 {
		t.Errorf("HD share %d/100 far from 40%%", hd)
	}
}

func TestCatalogDeterministic(t *testing.T) {
	a := NewCatalog(rand.New(rand.NewSource(7)), CatalogConfig{N: 10})
	b := NewCatalog(rand.New(rand.NewSource(7)), CatalogConfig{N: 10})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("catalog not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPlayerTimeline(t *testing.T) {
	r := newRig(40, simnet.LinkConfig{Rate: 20e6, Delay: 15 * time.Millisecond, QueueBytes: 256 * 1024}, ServerConfig{}, sdClip(25))
	var events []Event
	p := Play(r.client, r.device, 2, r.clip, PlayerConfig{})
	p.OnFinish = func(Report) { events = p.Events(); r.sim.Halt() }
	r.sim.Run(5 * time.Minute)
	if len(events) < 3 {
		t.Fatalf("timeline too short: %+v", events)
	}
	kinds := map[string]bool{}
	var prev time.Duration
	for _, e := range events {
		kinds[e.Kind] = true
		if e.At < prev {
			t.Fatalf("timeline not monotone: %+v", events)
		}
		prev = e.At
	}
	for _, want := range []string{"established", "play", "finished"} {
		if !kinds[want] {
			t.Errorf("timeline missing %q event: %+v", want, events)
		}
	}
}

func TestStalledSessionTimelineHasStallPairs(t *testing.T) {
	r := newRig(41, simnet.LinkConfig{Rate: 0.7e6, Delay: 30 * time.Millisecond, QueueBytes: 96 * 1024}, ServerConfig{}, sdClip(25))
	p := Play(r.client, r.device, 2, r.clip, PlayerConfig{})
	done := false
	p.OnFinish = func(Report) { done = true; r.sim.Halt() }
	r.sim.Run(10 * time.Minute)
	if !done {
		p.ForceFinish()
	}
	stalls, resumes := 0, 0
	for _, e := range p.Events() {
		switch e.Kind {
		case "stall":
			stalls++
		case "resume":
			resumes++
		}
	}
	if stalls == 0 {
		t.Fatal("undersized link produced no stall events in the timeline")
	}
	if resumes > stalls {
		t.Errorf("more resumes (%d) than stalls (%d)", resumes, stalls)
	}
}

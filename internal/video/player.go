package video

import (
	"fmt"
	"time"

	"vqprobe/internal/hardware"
	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
	"vqprobe/internal/trace"
)

// PlayerState is the playback state machine.
type PlayerState int

// Player states.
const (
	StateConnecting PlayerState = iota
	StateBuffering
	StatePlaying
	StateStalled
	StateFinished
	StateFailed
)

func (s PlayerState) String() string {
	switch s {
	case StateConnecting:
		return "connecting"
	case StateBuffering:
		return "buffering"
	case StatePlaying:
		return "playing"
	case StateStalled:
		return "stalled"
	case StateFinished:
		return "finished"
	case StateFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// PlayerConfig tunes the playout model. Zero values select defaults that
// match the stock Android media player behaviour the paper instrumented.
type PlayerConfig struct {
	StartupBufferSec float64       // media seconds buffered before first play; default 2
	ResumeBufferSec  float64       // media seconds buffered before resuming; default 2
	AbandonAfter     time.Duration // give up if playback hasn't started; default 60s
	RcvBuf           int           // socket receive buffer; default 128 KiB
	Tick             time.Duration // playout loop cadence; default 100ms
}

func (c *PlayerConfig) defaults() {
	if c.StartupBufferSec == 0 {
		c.StartupBufferSec = 2
	}
	if c.ResumeBufferSec == 0 {
		c.ResumeBufferSec = 2
	}
	if c.AbandonAfter == 0 {
		c.AbandonAfter = 60 * time.Second
	}
	if c.RcvBuf == 0 {
		// A BDP-scale receive window doubles as the congestion control
		// the era's handsets effectively had: it stops slow start from
		// overshooting the bottleneck queue by hundreds of segments,
		// which NewReno (no SACK in this simulator) cannot recover from
		// gracefully. 128 KiB ~= BDP + bottleneck queue for the Table 3
		// links.
		c.RcvBuf = 128 * 1024
	}
	if c.Tick == 0 {
		c.Tick = 100 * time.Millisecond
	}
}

// minStall is the shortest interruption counted as a rebuffering event;
// anything shorter is render jitter invisible to the user.
const minStall = 300 * time.Millisecond

// decoderStallBelow / decoderResumeAbove bound the decode-capacity
// hysteresis that turns device overload into visible stalls.
const (
	decoderStallBelow  = 0.45
	decoderResumeAbove = 0.60
)

// Report is the QoE ground truth of one playback session. Its fields are
// used only for MOS labelling, never as classifier features, mirroring
// the paper's protocol.
type Report struct {
	Clip          Clip
	StartupDelay  time.Duration
	Stalls        int
	StallTime     time.Duration
	SkippedFrames int
	PlayedSec     float64
	SessionTime   time.Duration // wall time from request to finish
	BufferMeanSec float64
	Completed     bool
	Failed        bool
	FailReason    string
	BytesReceived int64
}

// MeanStallDuration returns the average rebuffering duration.
func (r Report) MeanStallDuration() time.Duration {
	if r.Stalls == 0 {
		return 0
	}
	return r.StallTime / time.Duration(r.Stalls)
}

// RebufferFrequency returns stalls per second of session time.
func (r Report) RebufferFrequency() float64 {
	s := r.SessionTime.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Stalls) / s
}

// Player drives one video session: it dials the server, reads the stream
// into a media buffer throttled by the device's decode capacity, and
// plays it out, recording every QoE-relevant event.
type Player struct {
	sim    *simnet.Sim
	host   *tcpsim.Host
	device *hardware.Device
	clip   Clip
	cfg    PlayerConfig

	conn  *tcpsim.Conn
	start time.Duration

	state        PlayerState
	stallStart   time.Duration
	stallDecoder bool

	downloaded   int64 // media bytes moved into the playout buffer
	headerToSkip int64
	playedSec    float64
	skipped      float64
	startupDelay time.Duration
	downloadDone bool

	bufSamples, bufSum float64

	stalls     int
	stallTime  time.Duration
	failReason string

	ticker *simnet.Ticker
	events []Event

	// Tracing (inert zero values when the Sim has no tracer). The
	// session span parents everything; download/startup/stall spans are
	// zeroed once ended so teardown can close whatever remains open.
	tr           *trace.Tracer
	sessionSpan  trace.Span
	downloadSpan trace.Span
	startupSpan  trace.Span
	stallSpan    trace.Span

	// OnFinish fires exactly once with the final report.
	OnFinish func(r Report)
}

// Event is one timestamped entry of the session timeline (state changes
// and milestones), for inspection tools and tests.
type Event struct {
	At     time.Duration
	Kind   string // "established", "play", "stall", "resume", "finished", "failed"
	Detail string
}

// Events returns the session timeline recorded so far.
func (p *Player) Events() []Event { return p.events }

func (p *Player) logEvent(kind, detail string) {
	p.events = append(p.events, Event{At: p.sim.Now(), Kind: kind, Detail: detail})
	p.tr.Instant("player", kind, detail, p.sessionSpan.ID())
}

// Play starts a session for clip against serverAddr. The device model
// supplies decode capacity; it must belong to the same simulation.
func Play(host *tcpsim.Host, device *hardware.Device, serverAddr simnet.Addr, clip Clip, cfg PlayerConfig) *Player {
	cfg.defaults()
	p := &Player{
		sim:          host.Sim(),
		host:         host,
		device:       device,
		clip:         clip,
		cfg:          cfg,
		state:        StateConnecting,
		start:        host.Sim().Now(),
		headerToSkip: responseHeader,
	}
	p.tr = p.sim.Tracer()
	p.sessionSpan = p.tr.StartSpan("player", "session", 0)
	p.downloadSpan = p.tr.StartSpan("player", "download", p.sessionSpan.ID())
	p.startupSpan = p.tr.StartSpan("player", "startup", p.sessionSpan.ID())
	p.conn = host.Dial(serverAddr, Port)
	p.conn.SetRcvBuf(cfg.RcvBuf)
	p.conn.SetAutoRead(false)
	p.conn.OnEstablished = func() {
		p.logEvent("established", "")
		p.conn.Write(requestBytes)
		if p.state == StateConnecting {
			p.state = StateBuffering
		}
	}
	p.conn.OnPeerClose = func() {
		p.drainSocket(1 << 30)
		p.downloadDone = true
		p.endDownloadSpan(fmt.Sprintf("bytes=%d", p.downloaded))
		p.conn.Close()
	}
	p.conn.OnAbort = func(reason string) {
		if p.state == StateConnecting || p.state == StateBuffering && p.playedSec == 0 && p.downloaded == 0 {
			p.fail("connection failed: " + reason)
			return
		}
		// Mid-stream loss of the connection: whatever is buffered still
		// plays out, but the session cannot complete.
		p.downloadDone = true
		p.endDownloadSpan("aborted: " + reason)
		if p.failReason == "" {
			p.failReason = "connection lost mid-stream: " + reason
		}
	}
	// Decode demand registers as soon as the pipeline spins up.
	device.SetDecodeDemand(clip.Bitrate / 1e6 * device.Profile().DecodeCostPerMbps)
	p.ticker = simnet.NewTicker(p.sim, cfg.Tick, p.tick)
	return p
}

// State returns the current playback state.
func (p *Player) State() PlayerState { return p.state }

// Done reports whether the session has reached a terminal state.
func (p *Player) Done() bool { return p.state == StateFinished || p.state == StateFailed }

// BufferSec returns the current playout buffer level in media seconds.
func (p *Player) BufferSec() float64 {
	// A degenerate clip (zero/negative bitrate) must not poison the
	// whole QoE pipeline with NaN/Inf buffer levels.
	if p.clip.Bitrate <= 0 {
		return 0
	}
	return float64(p.downloaded)*8/p.clip.Bitrate - p.playedSec
}

// drainSocket moves up to maxBytes from the TCP receive buffer into the
// media buffer, skipping the response header.
func (p *Player) drainSocket(maxBytes int64) {
	n := p.conn.Buffered()
	if n > maxBytes {
		n = maxBytes
	}
	if n <= 0 {
		return
	}
	p.conn.Consume(n)
	if p.headerToSkip > 0 {
		skip := p.headerToSkip
		if skip > n {
			skip = n
		}
		p.headerToSkip -= skip
		n -= skip
	}
	p.downloaded += n
}

// tick advances the playout model by one interval.
func (p *Player) tick(now time.Duration) {
	if p.Done() {
		return
	}
	tickSec := p.cfg.Tick.Seconds()
	df := p.device.DecodeFactor()

	// Socket read, throttled by decode capacity: a healthy device reads
	// far ahead of real time; a loaded one lets the receive buffer (and
	// therefore the advertised TCP window) fill up - the signal the
	// server-side probe picks up for "mobile load".
	readCap := int64(tickSec * p.clip.Bitrate / 8 * (0.5 + 4*df*df))
	p.drainSocket(readCap)

	p.bufSamples++
	p.bufSum += p.BufferSec()

	switch p.state {
	case StateConnecting, StateBuffering:
		if now-p.start > p.cfg.AbandonAfter {
			p.fail("startup timeout: user abandoned")
			return
		}
		if p.BufferSec() >= p.cfg.StartupBufferSec || (p.downloadDone && p.downloaded > 0) {
			p.startupDelay = now - p.start
			p.state = StatePlaying
			p.logEvent("play", fmt.Sprintf("startup %.1fs", p.startupDelay.Seconds()))
			p.startupSpan.End()
			p.startupSpan = trace.Span{}
		}
	case StatePlaying:
		if df < decoderStallBelow {
			p.enterStall(now, true)
			return
		}
		if p.BufferSec() < tickSec {
			if p.downloadDone {
				// End of stream: whatever fraction remains plays out.
				p.playedSec += p.BufferSec()
				p.finish()
				return
			}
			p.enterStall(now, false)
			return
		}
		if df < 1 {
			p.skipped += (1 - df) * float64(p.clip.FPS) * tickSec
		}
		p.playedSec += tickSec
		if p.playedSec >= p.clip.Duration.Seconds()-tickSec {
			p.finish()
		}
	case StateStalled:
		if now-p.start > p.cfg.AbandonAfter+p.clip.Duration {
			p.fail("stalled beyond tolerance: user abandoned")
			return
		}
		if p.stallDecoder {
			if df >= decoderResumeAbove {
				p.exitStall(now)
			}
			return
		}
		if p.BufferSec() >= p.cfg.ResumeBufferSec || (p.downloadDone && p.BufferSec() > 0) {
			p.exitStall(now)
			return
		}
		if p.downloadDone && p.BufferSec() <= 0 {
			// Stream is over and nothing is left to play.
			p.exitStall(now)
			p.finish()
		}
	}
}

func (p *Player) enterStall(now time.Duration, decoder bool) {
	p.state = StateStalled
	p.stallStart = now
	p.stallDecoder = decoder
	reason := "buffer empty"
	if decoder {
		reason = "decoder overloaded"
	}
	p.stallSpan = p.tr.StartSpan("player", "stall", p.sessionSpan.ID())
	p.logEvent("stall", reason)
}

func (p *Player) exitStall(now time.Duration) {
	d := now - p.stallStart
	if d >= minStall {
		p.stalls++
		p.stallTime += d
	}
	p.state = StatePlaying
	p.stallSpan.EndDetail(fmt.Sprintf("stalled %.1fs", d.Seconds()))
	p.stallSpan = trace.Span{}
	p.logEvent("resume", fmt.Sprintf("stalled %.1fs", d.Seconds()))
}

// endDownloadSpan closes the download span exactly once; later calls
// see the zeroed (inert) span and no-op.
func (p *Player) endDownloadSpan(detail string) {
	p.downloadSpan.EndDetail(detail)
	p.downloadSpan = trace.Span{}
}

func (p *Player) fail(reason string) {
	// Keep the first recorded reason: a session that lost its connection
	// mid-stream and later abandons should report the root cause, not
	// the downstream symptom.
	if p.failReason == "" {
		p.failReason = reason
	}
	p.state = StateFailed
	p.logEvent("failed", p.failReason)
	p.teardown()
}

func (p *Player) finish() {
	if p.failReason != "" {
		p.state = StateFailed
		p.logEvent("failed", p.failReason)
	} else {
		p.state = StateFinished
		p.logEvent("finished", fmt.Sprintf("played %.1fs", p.playedSec))
	}
	p.teardown()
}

func (p *Player) teardown() {
	p.ticker.Stop()
	p.device.SetDecodeDemand(0)
	if p.conn.State() != tcpsim.StateAborted && p.conn.State() != tcpsim.StateDone {
		p.conn.Close()
	}
	// Close any span the session ended before completing, then the
	// session span itself, so every recorded span has a duration.
	p.stallSpan.EndDetail("session ended while stalled")
	p.stallSpan = trace.Span{}
	p.startupSpan.EndDetail("never started playing")
	p.startupSpan = trace.Span{}
	p.endDownloadSpan(fmt.Sprintf("incomplete bytes=%d", p.downloaded))
	p.sessionSpan.EndDetail(fmt.Sprintf("state=%s played=%.1fs stalls=%d", p.state, p.playedSec, p.stalls))
	p.sessionSpan = trace.Span{}
	if p.OnFinish != nil {
		p.OnFinish(p.Report())
	}
}

// ForceFinish terminates a session that exceeded the scenario's wall
// clock budget, marking it failed if it never completed.
func (p *Player) ForceFinish() {
	if p.Done() {
		return
	}
	if p.state == StateStalled {
		p.exitStall(p.sim.Now())
	}
	if p.playedSec < p.clip.Duration.Seconds()-1 && p.failReason == "" {
		p.failReason = "session timeout"
	}
	p.finish()
}

// Report assembles the QoE ground truth collected so far.
func (p *Player) Report() Report {
	mean := 0.0
	if p.bufSamples > 0 {
		mean = p.bufSum / p.bufSamples
	}
	completed := p.state == StateFinished && p.playedSec >= p.clip.Duration.Seconds()-1
	return Report{
		Clip:          p.clip,
		StartupDelay:  p.startupDelay,
		Stalls:        p.stalls,
		StallTime:     p.stallTime,
		SkippedFrames: int(p.skipped),
		PlayedSec:     p.playedSec,
		SessionTime:   p.sim.Now() - p.start,
		BufferMeanSec: mean,
		Completed:     completed,
		Failed:        p.state == StateFailed,
		FailReason:    p.failReason,
		BytesReceived: p.downloaded,
	}
}

// Flow returns the TCP flow key of the session's connection, which is
// what vantage-point probes key their records on.
func (p *Player) Flow() simnet.FlowKey { return p.conn.Flow() }

// InjectAbort severs the session's transport mid-stream, driving the
// same code path as a network-initiated reset. This is the fault-
// injection seam used by internal/chaos; production sessions never call
// it.
func (p *Player) InjectAbort(reason string) {
	if p.Done() {
		return
	}
	p.conn.Abort("injected: " + reason)
}

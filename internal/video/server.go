package video

import (
	"time"

	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
)

// Port is the server's listening port.
const Port = 80

// requestBytes approximates the HTTP GET the client sends; responseHeader
// approximates the response header preceding the media bytes.
const (
	requestBytes   = 300
	responseHeader = 500
)

// ServerConfig controls the delivery mechanism.
type ServerConfig struct {
	// Pacing enables YouTube-style delivery: an initial burst followed
	// by chunks throttled to PaceFactor x the clip bitrate. Without
	// pacing the whole file is written at once (plain progressive
	// download) and TCP alone governs the rate.
	Pacing bool
	// PaceFactor is the throttle multiple over the media bitrate. Zero
	// selects 1.25, the classic YouTube value.
	PaceFactor float64
	// BurstSeconds is the un-throttled initial burst, in media seconds.
	// Zero selects 10s.
	BurstSeconds float64
	// LoadFn, if set, reports the server's utilization [0,1] (driven by
	// the ApacheBench-style background load). High load delays the
	// response start and slows paced delivery, which is how an
	// overloaded content server degrades QoE.
	LoadFn func(now time.Duration) float64
}

// Server is the content server application.
type Server struct {
	host *tcpsim.Host
	cfg  ServerConfig

	// ClipFor resolves which clip a new connection is asking for. The
	// testbed installs a closure; the simulator cannot carry payload
	// content, so the "URL" travels out of band.
	ClipFor func(flow simnet.FlowKey) Clip
}

// NewServer starts the server application listening on Port.
func NewServer(host *tcpsim.Host, cfg ServerConfig) *Server {
	if cfg.PaceFactor == 0 {
		cfg.PaceFactor = 1.25
	}
	if cfg.BurstSeconds == 0 {
		cfg.BurstSeconds = 10
	}
	s := &Server{host: host, cfg: cfg}
	host.Listen(Port, s.accept)
	return s
}

func (s *Server) load(now time.Duration) float64 {
	if s.cfg.LoadFn == nil {
		return 0
	}
	l := s.cfg.LoadFn(now)
	if l < 0 {
		return 0
	}
	if l > 1 {
		return 1
	}
	return l
}

func (s *Server) accept(c *tcpsim.Conn) {
	var got int
	started := false
	c.OnData = func(n int) {
		got += n
		if started || got < requestBytes {
			return
		}
		started = true
		s.respond(c)
	}
}

// respond streams the requested clip. Response latency and paced-chunk
// cadence both degrade with server load.
func (s *Server) respond(c *tcpsim.Conn) {
	sim := s.host.Sim()
	clip := Clip{Bitrate: 1.5e6, Duration: 30 * time.Second} // fallback
	if s.ClipFor != nil {
		clip = s.ClipFor(c.Flow())
	}
	// Request processing time: ~5ms when idle, ballooning under load.
	loadNow := s.load(sim.Now())
	delay := 5*time.Millisecond + time.Duration(loadNow*loadNow*float64(2*time.Second))
	total := clip.SizeBytes() + responseHeader

	sim.After(delay, func() {
		if !s.cfg.Pacing {
			c.Write(total)
			c.Close()
			return
		}
		burst := int64(s.cfg.BurstSeconds*clip.Bitrate/8) + responseHeader
		if burst > total {
			burst = total
		}
		c.Write(burst)
		sent := burst
		const tick = 250 * time.Millisecond
		var t *simnet.Ticker
		t = simnet.NewTicker(sim, tick, func(now time.Duration) {
			if c.State() == tcpsim.StateAborted || c.State() == tcpsim.StateDone {
				t.Stop()
				return
			}
			rate := s.cfg.PaceFactor * clip.Bitrate / 8 // bytes/s
			rate *= 1 - 0.7*s.load(now)                 // loaded servers trickle
			chunk := int64(rate * tick.Seconds())
			if rem := total - sent; chunk > rem {
				chunk = rem
			}
			if chunk > 0 {
				c.Write(chunk)
				sent += chunk
			}
			if sent >= total {
				c.Close()
				t.Stop()
			}
		})
	})
}

package video

import (
	"time"

	"vqprobe/internal/hardware"
	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
)

// The paper's design claims to be agnostic to the video delivery
// mechanism — "static or adaptive streaming, pacing and so on" (Section
// 2). This file implements the adaptive case: DASH-style segmented
// delivery over a persistent connection with a buffer-based bitrate
// adaptation rule (BBA-like). The ext-adaptive experiment verifies that
// a model trained on progressive downloads still diagnoses faults under
// adaptive delivery.

// Rung is one quality level of an adaptive ladder.
type Rung struct {
	Name    string
	Bitrate float64 // bits per second
}

// DefaultLadder approximates a 2014 YouTube/DASH ladder.
var DefaultLadder = []Rung{
	{"240p", 0.35e6},
	{"360p", 0.75e6},
	{"480p", 1.2e6},
	{"720p", 2.2e6},
}

// AdaptiveConfig tunes the adaptive session.
type AdaptiveConfig struct {
	Ladder     []Rung        // quality ladder; nil selects DefaultLadder
	SegmentDur time.Duration // media duration per segment; zero selects 4s
	// MaxBufferSec stops requesting when this much media is buffered.
	// Zero selects 20s.
	MaxBufferSec float64
	// Player carries the playout parameters shared with the
	// progressive player (startup/resume thresholds, tick).
	Player PlayerConfig
}

func (c *AdaptiveConfig) defaults() {
	if len(c.Ladder) == 0 {
		c.Ladder = DefaultLadder
	}
	if c.SegmentDur == 0 {
		c.SegmentDur = 4 * time.Second
	}
	if c.MaxBufferSec == 0 {
		c.MaxBufferSec = 20
	}
	c.Player.defaults()
}

// AdaptiveReport extends the QoE ground truth with adaptation metrics.
type AdaptiveReport struct {
	Report
	Switches   int     // quality changes during the session
	AvgBitrate float64 // mean selected bitrate, bits/s
	TimeLowest float64 // fraction of segments fetched at the bottom rung
}

// AdaptiveSession couples the DASH-like server and client applications.
// The orchestrator creates it, wires the server side with ServeAdaptive,
// and starts the client with PlayAdaptive.
type AdaptiveSession struct {
	cfg      AdaptiveConfig
	duration time.Duration
	segments int

	// rung is the client's current selection; the server reads it when
	// a request arrives (the out-of-band stand-in for the URL path of a
	// DASH segment request).
	rung int
}

// NewAdaptiveSession prepares a session for a clip of the given duration.
func NewAdaptiveSession(duration time.Duration, cfg AdaptiveConfig) *AdaptiveSession {
	cfg.defaults()
	n := int(duration / cfg.SegmentDur)
	if n < 1 {
		n = 1
	}
	return &AdaptiveSession{cfg: cfg, duration: duration, segments: n}
}

// SegmentBytes returns the size of one segment at rung r.
func (as *AdaptiveSession) SegmentBytes(r int) int64 {
	return int64(as.cfg.Ladder[r].Bitrate*as.cfg.SegmentDur.Seconds()/8) + responseHeader
}

// ServeAdaptive installs the server side on host: each request returns
// one segment at the client's currently selected rung, closing after the
// last segment.
func (as *AdaptiveSession) ServeAdaptive(host *tcpsim.Host) {
	host.Listen(Port, func(c *tcpsim.Conn) {
		served := 0
		pending := 0
		c.OnData = func(n int) {
			pending += n
			for pending >= requestBytes && served < as.segments {
				pending -= requestBytes
				served++
				c.Write(as.SegmentBytes(as.rung))
				if served == as.segments {
					c.Close()
				}
			}
		}
	})
}

// AdaptivePlayer drives segmented playback with buffer-based adaptation.
type AdaptivePlayer struct {
	sim     *simnet.Sim
	session *AdaptiveSession
	device  *hardware.Device
	conn    *tcpsim.Conn

	start        time.Duration
	state        PlayerState
	stallStart   time.Duration
	stallDecoder bool

	requested, completed int
	segRecvd             int64 // bytes of the in-flight segment
	segBytes             int64 // expected bytes of the in-flight segment

	bufferedSec  float64 // downloaded, not yet played media seconds
	playedSec    float64
	skipped      float64
	startupDelay time.Duration
	stalls       int
	stallTime    time.Duration
	failReason   string

	switches   int
	rateSum    float64
	lowSegs    int
	lastRung   int
	downloadOK bool

	segStart time.Duration // when the in-flight segment was requested
	ewmaThr  float64       // smoothed segment throughput, bits/s

	ticker *simnet.Ticker

	// OnFinish fires once with the final report.
	OnFinish func(AdaptiveReport)
}

// PlayAdaptive starts the client side of an adaptive session.
func PlayAdaptive(host *tcpsim.Host, device *hardware.Device, serverAddr simnet.Addr, session *AdaptiveSession) *AdaptivePlayer {
	p := &AdaptivePlayer{
		sim:     host.Sim(),
		session: session,
		device:  device,
		state:   StateConnecting,
		start:   host.Sim().Now(),
	}
	p.conn = host.Dial(serverAddr, Port)
	p.conn.SetRcvBuf(session.cfg.Player.RcvBuf)
	p.conn.SetAutoRead(false)
	p.conn.OnEstablished = func() {
		p.state = StateBuffering
		p.requestNext()
	}
	p.conn.OnPeerClose = func() {
		p.drain()
		p.downloadOK = true
		p.conn.Close()
	}
	p.conn.OnAbort = func(reason string) {
		if p.completed == 0 && p.playedSec == 0 {
			p.fail("connection failed: " + reason)
			return
		}
		p.downloadOK = true
		if p.failReason == "" {
			p.failReason = "connection lost mid-stream: " + reason
		}
	}
	// Decode demand follows the top rung the device might play.
	device.SetDecodeDemand(session.cfg.Ladder[len(session.cfg.Ladder)-1].Bitrate / 1e6 *
		device.Profile().DecodeCostPerMbps * 0.7)
	p.ticker = simnet.NewTicker(p.sim, session.cfg.Player.Tick, p.tick)
	return p
}

// chooseRung combines a throughput rule with a buffer reservoir, like
// production ABRs: pick the highest rung the measured throughput
// sustains with 30% headroom, but fall to the bottom whenever the buffer
// is nearly dry.
func (p *AdaptivePlayer) chooseRung() int {
	ladder := p.session.cfg.Ladder
	if p.bufferedSec < 2 {
		return 0
	}
	if p.ewmaThr <= 0 {
		return 0 // no estimate yet: start cautious
	}
	r := 0
	for i, rung := range ladder {
		if rung.Bitrate*1.3 <= p.ewmaThr {
			r = i
		}
	}
	return r
}

// downloadOver reports that no more media will arrive: every segment
// was fetched, or the transport closed or was lost mid-stream.
func (p *AdaptivePlayer) downloadOver() bool {
	return p.downloadOK || p.completed >= p.session.segments
}

func (p *AdaptivePlayer) requestNext() {
	if p.requested >= p.session.segments || p.downloadOK {
		return
	}
	r := p.chooseRung()
	if p.requested > 0 && r != p.lastRung {
		p.switches++
	}
	p.lastRung = r
	p.session.rung = r
	p.rateSum += p.session.cfg.Ladder[r].Bitrate
	if r == 0 {
		p.lowSegs++
	}
	p.segBytes = p.session.SegmentBytes(r)
	// segRecvd deliberately carries over: it is a running byte-stream
	// position, and any bytes already delivered belong to this segment.
	p.segStart = p.sim.Now()
	p.requested++
	p.conn.Write(requestBytes)
}

// drain moves received bytes from the socket into segment accounting.
func (p *AdaptivePlayer) drain() {
	n := p.conn.Buffered()
	if n <= 0 {
		return
	}
	p.conn.Consume(n)
	p.segRecvd += n
	for p.segBytes > 0 && p.segRecvd >= p.segBytes {
		if dl := (p.sim.Now() - p.segStart).Seconds(); dl > 0 {
			thr := float64(p.segBytes) * 8 / dl
			if p.ewmaThr == 0 {
				p.ewmaThr = thr
			} else {
				p.ewmaThr = 0.6*p.ewmaThr + 0.4*thr
			}
		}
		p.segRecvd -= p.segBytes
		p.completed++
		p.bufferedSec += p.session.cfg.SegmentDur.Seconds()
		// Request the next segment unless the buffer is full; a full
		// buffer pauses requests (tick resumes them).
		if p.bufferedSec < p.session.cfg.MaxBufferSec {
			p.requestNext()
		} else {
			p.segBytes = 0
		}
	}
}

// Done reports whether the session reached a terminal state.
func (p *AdaptivePlayer) Done() bool { return p.state == StateFinished || p.state == StateFailed }

func (p *AdaptivePlayer) tick(now time.Duration) {
	if p.Done() {
		return
	}
	cfg := p.session.cfg
	tickSec := cfg.Player.Tick.Seconds()
	p.drain()

	// Resume paused requests once the buffer drains below the cap. The
	// state guard matters: before the handshake completes the first
	// request is not out yet, and issuing one here would double-request
	// segment 1.
	if p.state != StateConnecting && p.segBytes == 0 &&
		p.requested < p.session.segments &&
		p.bufferedSec < cfg.MaxBufferSec && p.requested == p.completed {
		p.requestNext()
	}

	df := p.device.DecodeFactor()
	switch p.state {
	case StateConnecting, StateBuffering:
		if now-p.start > cfg.Player.AbandonAfter {
			p.fail("startup timeout: user abandoned")
			return
		}
		// downloadOver (not just all-segments-fetched) matters in every
		// branch below: a connection lost mid-stream must play out what
		// is buffered and then end, instead of waiting for segments that
		// will never arrive until the abandonment timer fires.
		if p.state == StateBuffering && p.downloadOver() && p.bufferedSec <= 0 {
			p.finish() // nothing buffered and nothing coming
			return
		}
		if p.bufferedSec >= cfg.Player.StartupBufferSec ||
			(p.downloadOver() && p.bufferedSec > 0) {
			p.startupDelay = now - p.start
			p.state = StatePlaying
		}
	case StatePlaying:
		if df < decoderStallBelow {
			p.state = StateStalled
			p.stallStart = now
			p.stallDecoder = true
			return
		}
		if p.bufferedSec < tickSec {
			if p.downloadOver() {
				p.playedSec += p.bufferedSec
				p.finish()
				return
			}
			p.state = StateStalled
			p.stallStart = now
			p.stallDecoder = false
			return
		}
		if df < 1 {
			p.skipped += (1 - df) * 30 * tickSec
		}
		p.bufferedSec -= tickSec
		p.playedSec += tickSec
		if p.playedSec >= p.session.duration.Seconds()-tickSec {
			p.finish()
		}
	case StateStalled:
		if now-p.start > cfg.Player.AbandonAfter+p.session.duration {
			p.fail("stalled beyond tolerance: user abandoned")
			return
		}
		if p.stallDecoder {
			if df >= decoderResumeAbove {
				p.exitStall(now)
			}
			return
		}
		if p.bufferedSec >= cfg.Player.ResumeBufferSec ||
			(p.downloadOver() && p.bufferedSec > 0) {
			p.exitStall(now)
			return
		}
		if p.downloadOver() && p.bufferedSec <= 0 {
			// Stream is over (or the transport is gone) and nothing is
			// left to play: end the session now rather than stalling
			// until the abandonment timer.
			p.exitStall(now)
			p.finish()
		}
	}
}

func (p *AdaptivePlayer) exitStall(now time.Duration) {
	d := now - p.stallStart
	if d >= minStall {
		p.stalls++
		p.stallTime += d
	}
	p.state = StatePlaying
}

func (p *AdaptivePlayer) fail(reason string) {
	// Keep the first recorded reason (e.g. a mid-stream connection loss)
	// over downstream symptoms like the abandonment timeout.
	if p.failReason == "" {
		p.failReason = reason
	}
	p.state = StateFailed
	p.teardown()
}

func (p *AdaptivePlayer) finish() {
	if p.failReason != "" {
		p.state = StateFailed
	} else {
		p.state = StateFinished
	}
	p.teardown()
}

func (p *AdaptivePlayer) teardown() {
	p.ticker.Stop()
	p.device.SetDecodeDemand(0)
	if p.conn.State() != tcpsim.StateAborted && p.conn.State() != tcpsim.StateDone {
		p.conn.Close()
	}
	if p.OnFinish != nil {
		p.OnFinish(p.Report())
	}
}

// ForceFinish terminates an over-budget session.
func (p *AdaptivePlayer) ForceFinish() {
	if p.Done() {
		return
	}
	if p.state == StateStalled {
		p.exitStall(p.sim.Now())
	}
	if p.playedSec < p.session.duration.Seconds()-1 && p.failReason == "" {
		p.failReason = "session timeout"
	}
	p.finish()
}

// Flow returns the session's TCP flow key for probe lookup.
func (p *AdaptivePlayer) Flow() simnet.FlowKey { return p.conn.Flow() }

// InjectAbort severs the session's transport mid-stream, driving the
// same code path as a network-initiated reset. Fault-injection seam for
// internal/chaos; production sessions never call it.
func (p *AdaptivePlayer) InjectAbort(reason string) {
	if p.Done() {
		return
	}
	p.conn.Abort("injected: " + reason)
}

// Report assembles the adaptive QoE ground truth.
func (p *AdaptivePlayer) Report() AdaptiveReport {
	avg := 0.0
	if p.requested > 0 {
		avg = p.rateSum / float64(p.requested)
	}
	completed := p.state == StateFinished && p.playedSec >= p.session.duration.Seconds()-1
	return AdaptiveReport{
		Report: Report{
			Clip:          Clip{Quality: "ABR", Bitrate: avg, Duration: p.duration(), FPS: 30},
			StartupDelay:  p.startupDelay,
			Stalls:        p.stalls,
			StallTime:     p.stallTime,
			SkippedFrames: int(p.skipped),
			PlayedSec:     p.playedSec,
			SessionTime:   p.sim.Now() - p.start,
			Completed:     completed,
			Failed:        p.state == StateFailed,
			FailReason:    p.failReason,
		},
		Switches:   p.switches,
		AvgBitrate: avg,
		TimeLowest: float64(p.lowSegs) / float64(max(1, p.requested)),
	}
}

func (p *AdaptivePlayer) duration() time.Duration { return p.session.duration }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

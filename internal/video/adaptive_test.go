package video

import (
	"testing"
	"time"

	"vqprobe/internal/hardware"
	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
)

// adaptiveRig runs one adaptive session over a configurable link.
func adaptiveRig(t *testing.T, seed int64, linkCfg simnet.LinkConfig, dur time.Duration) AdaptiveReport {
	t.Helper()
	s := simnet.New(seed)
	cn := s.NewNode("phone", 1)
	sn := s.NewNode("server", 2)
	cnic, snic := cn.AddNIC("wlan0"), sn.AddNIC("eth0")
	simnet.ConnectSym(s, "l", cnic, snic, linkCfg)
	client := tcpsim.NewHost(cn, cnic)
	server := tcpsim.NewHost(sn, snic)
	dev := hardware.NewDevice(s, hardware.ProfileGalaxyS2)

	session := NewAdaptiveSession(dur, AdaptiveConfig{})
	session.ServeAdaptive(server)
	var rep AdaptiveReport
	got := false
	p := PlayAdaptive(client, dev, 2, session)
	p.OnFinish = func(r AdaptiveReport) { rep = r; got = true; s.Halt() }
	s.Run(dur*6 + 2*time.Minute)
	if !got {
		p.ForceFinish()
		rep = p.Report()
	}
	return rep
}

func TestAdaptiveHealthyClimbsLadder(t *testing.T) {
	rep := adaptiveRig(t, 1, simnet.LinkConfig{Rate: 20e6, Delay: 20 * time.Millisecond, QueueBytes: 128 * 1024}, 40*time.Second)
	if !rep.Completed {
		t.Fatalf("healthy adaptive session failed: %+v", rep)
	}
	if rep.Stalls != 0 {
		t.Errorf("healthy adaptive session stalled %d times", rep.Stalls)
	}
	if rep.AvgBitrate < 1.0e6 {
		t.Errorf("fat link but avg bitrate only %.2f Mb/s; ladder never climbed", rep.AvgBitrate/1e6)
	}
	if rep.TimeLowest > 0.5 {
		t.Errorf("spent %.0f%% of segments at the bottom rung on a fat link", rep.TimeLowest*100)
	}
}

func TestAdaptiveStarvedLinkDropsQuality(t *testing.T) {
	// 0.9 Mb/s: only the bottom rungs are sustainable; adaptation should
	// prevent most stalls by staying low.
	rep := adaptiveRig(t, 2, simnet.LinkConfig{Rate: 0.9e6, Delay: 40 * time.Millisecond, QueueBytes: 64 * 1024}, 40*time.Second)
	if rep.AvgBitrate > 1.2e6 {
		t.Errorf("starved link but avg bitrate %.2f Mb/s", rep.AvgBitrate/1e6)
	}
	if rep.TimeLowest < 0.3 {
		t.Errorf("starved link: only %.0f%% of segments at the bottom rung", rep.TimeLowest*100)
	}
}

func TestAdaptiveBeatsProgressiveOnBadLink(t *testing.T) {
	// On a link below the progressive clip's bitrate, the adaptive
	// player should stall less than a fixed-rate progressive player.
	link := simnet.LinkConfig{Rate: 1e6, Delay: 40 * time.Millisecond, QueueBytes: 64 * 1024}
	adaptive := adaptiveRig(t, 3, link, 40*time.Second)

	r := newRig(3, link, ServerConfig{}, Clip{ID: 1, Quality: HD, Bitrate: 2.2e6, Duration: 40 * time.Second, FPS: 30})
	progressive := r.play(t, PlayerConfig{}, 10*time.Minute)

	if adaptive.StallTime >= progressive.StallTime {
		t.Errorf("adaptive stalled %v vs progressive %v; adaptation is not helping",
			adaptive.StallTime, progressive.StallTime)
	}
}

func TestAdaptiveSwitchCounting(t *testing.T) {
	rep := adaptiveRig(t, 4, simnet.LinkConfig{Rate: 20e6, Delay: 20 * time.Millisecond, QueueBytes: 128 * 1024}, 40*time.Second)
	// Climbing from the bottom rung must register at least one switch.
	if rep.Switches == 0 && rep.AvgBitrate > 0.4e6 {
		t.Errorf("bitrate climbed (%.2f Mb/s) but zero switches recorded", rep.AvgBitrate/1e6)
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	a := adaptiveRig(t, 7, simnet.LinkConfig{Rate: 3e6, Delay: 30 * time.Millisecond, Loss: 0.01, QueueBytes: 96 * 1024}, 30*time.Second)
	b := adaptiveRig(t, 7, simnet.LinkConfig{Rate: 3e6, Delay: 30 * time.Millisecond, Loss: 0.01, QueueBytes: 96 * 1024}, 30*time.Second)
	if a.AvgBitrate != b.AvgBitrate || a.Stalls != b.Stalls || a.Switches != b.Switches {
		t.Errorf("adaptive session not deterministic: %+v vs %+v", a, b)
	}
}

func TestAdaptiveSegmentAccounting(t *testing.T) {
	session := NewAdaptiveSession(40*time.Second, AdaptiveConfig{})
	if session.segments != 10 {
		t.Errorf("40s / 4s = %d segments, want 10", session.segments)
	}
	if session.SegmentBytes(0) >= session.SegmentBytes(len(DefaultLadder)-1) {
		t.Error("bottom rung segment not smaller than top rung")
	}
}

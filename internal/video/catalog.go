// Package video implements the application layer of the reproduction: a
// synthetic video catalog, an HTTP-like progressive-download server, and
// a buffered player that exports the QoE ground truth (startup delay,
// stalls, frame skips) exactly as the paper's instrumented Android
// application did.
package video

import (
	"fmt"
	"math/rand"
	"time"
)

// Quality is the encoded definition of a clip.
type Quality string

// Catalog qualities. The paper mixed Standard and High Definition
// downloads of the YouTube top-100 list.
const (
	SD Quality = "SD"
	HD Quality = "HD"
)

// Clip is one video in the catalog.
type Clip struct {
	ID       int
	Title    string
	Quality  Quality
	Bitrate  float64 // average encoded bitrate, bits per second
	Duration time.Duration
	FPS      int
}

// SizeBytes returns the total media size of the clip.
func (c Clip) SizeBytes() int64 {
	return int64(c.Bitrate * c.Duration.Seconds() / 8)
}

func (c Clip) String() string {
	return fmt.Sprintf("clip#%d %s %s %.1fMbps %v", c.ID, c.Title, c.Quality, c.Bitrate/1e6, c.Duration)
}

// CatalogConfig bounds the synthetic catalog generator.
type CatalogConfig struct {
	N           int           // number of clips; zero selects 100
	MinDuration time.Duration // zero selects 20s
	MaxDuration time.Duration // zero selects 120s
	HDShare     float64       // fraction of HD clips; zero selects 0.4
}

// NewCatalog generates a top-N-like catalog. Durations follow a
// lognormal-ish distribution clamped to the configured range; bitrates
// vary within the quality class so that feature construction has real
// video diversity to normalize away.
func NewCatalog(rng *rand.Rand, cfg CatalogConfig) []Clip {
	if cfg.N == 0 {
		cfg.N = 100
	}
	if cfg.MinDuration == 0 {
		cfg.MinDuration = 20 * time.Second
	}
	if cfg.MaxDuration == 0 {
		cfg.MaxDuration = 120 * time.Second
	}
	if cfg.HDShare == 0 {
		cfg.HDShare = 0.4
	}
	clips := make([]Clip, cfg.N)
	for i := range clips {
		q, base := SD, 0.6e6+rng.Float64()*0.6e6 // 0.6-1.2 Mbps (2013-era 360/480p)
		if rng.Float64() < cfg.HDShare {
			q, base = HD, 1.8e6+rng.Float64()*0.8e6 // 1.8-2.6 Mbps (2013-era 720p)
		}
		span := cfg.MaxDuration - cfg.MinDuration
		// Skew toward shorter clips, as view-count charts are.
		frac := rng.Float64()
		frac *= frac
		dur := cfg.MinDuration + time.Duration(float64(span)*frac)
		clips[i] = Clip{
			ID:       i,
			Title:    fmt.Sprintf("top100-%03d", i),
			Quality:  q,
			Bitrate:  base,
			Duration: dur.Round(time.Second),
			FPS:      30,
		}
	}
	return clips
}

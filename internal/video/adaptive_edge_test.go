package video

// Stall and teardown edge cases for the adaptive player, pinned by the
// chaos sweep (see docs/ROBUSTNESS.md): exact boundary behavior of the
// minStall accounting and the abandonment tolerance, stalls entered
// while the session is still starting up, and mid-stream loss of the
// transport while stalled or buffering.

import (
	"strings"
	"testing"
	"time"

	"vqprobe/internal/hardware"
	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
)

// adaptiveChaosRig is adaptiveRig with access to the player and the
// link, so tests can inject faults mid-session.
type adaptiveChaosRig struct {
	sim     *simnet.Sim
	link    *simnet.Link
	dev     *hardware.Device
	session *AdaptiveSession
	player  *AdaptivePlayer
	rep     AdaptiveReport
	got     bool
}

func newAdaptiveChaosRig(t *testing.T, seed int64, linkCfg simnet.LinkConfig, dur time.Duration) *adaptiveChaosRig {
	t.Helper()
	r := &adaptiveChaosRig{sim: simnet.New(seed)}
	cn := r.sim.NewNode("phone", 1)
	sn := r.sim.NewNode("server", 2)
	cnic, snic := cn.AddNIC("wlan0"), sn.AddNIC("eth0")
	r.link = simnet.ConnectSym(r.sim, "l", cnic, snic, linkCfg)
	client := tcpsim.NewHost(cn, cnic)
	server := tcpsim.NewHost(sn, snic)
	r.dev = hardware.NewDevice(r.sim, hardware.ProfileGalaxyS2)

	r.session = NewAdaptiveSession(dur, AdaptiveConfig{})
	r.session.ServeAdaptive(server)
	r.player = PlayAdaptive(client, r.dev, 2, r.session)
	r.player.OnFinish = func(rep AdaptiveReport) { r.rep = rep; r.got = true; r.sim.Halt() }
	return r
}

// Sub-minStall interruptions are render jitter, not rebuffering events:
// they must not count, must not accumulate across repeats, and the
// boundary is inclusive (exactly minStall counts).
func TestAdaptiveSubMinStallNotDoubleCounted(t *testing.T) {
	p := &AdaptivePlayer{}

	// Two back-to-back interruptions just under the threshold.
	for i := 0; i < 2; i++ {
		p.state = StateStalled
		p.stallStart = time.Duration(i+1) * time.Second
		p.exitStall(p.stallStart + minStall - time.Millisecond)
		if p.state != StatePlaying {
			t.Fatalf("stall %d: state %v after exitStall, want playing", i, p.state)
		}
	}
	if p.stalls != 0 || p.stallTime != 0 {
		t.Errorf("two sub-minStall interruptions counted: stalls=%d stallTime=%v (want 0, 0)",
			p.stalls, p.stallTime)
	}

	// Exactly minStall is a real stall.
	p.state = StateStalled
	p.stallStart = 10 * time.Second
	p.exitStall(p.stallStart + minStall)
	if p.stalls != 1 || p.stallTime != minStall {
		t.Errorf("stall of exactly minStall: stalls=%d stallTime=%v (want 1, %v)",
			p.stalls, p.stallTime, minStall)
	}
}

// The progressive player shares the accounting; pin it too.
func TestPlayerSubMinStallNotDoubleCounted(t *testing.T) {
	p := &Player{sim: simnet.New(0)}
	for i := 0; i < 2; i++ {
		p.state = StateStalled
		p.stallStart = time.Duration(i+1) * time.Second
		p.exitStall(p.stallStart + minStall - time.Millisecond)
	}
	if p.stalls != 0 || p.stallTime != 0 {
		t.Errorf("sub-minStall interruptions counted: stalls=%d stallTime=%v", p.stalls, p.stallTime)
	}
	p.state = StateStalled
	p.stallStart = 10 * time.Second
	p.exitStall(p.stallStart + minStall)
	if p.stalls != 1 || p.stallTime != minStall {
		t.Errorf("exact-boundary stall: stalls=%d stallTime=%v", p.stalls, p.stallTime)
	}
}

// A stall lasting exactly the abandonment tolerance must not abandon:
// the tolerance check is strictly greater-than, so the session fails
// only on the first tick past the boundary.
func TestAdaptiveStallAtAbandonmentBoundary(t *testing.T) {
	r := newAdaptiveChaosRig(t, 11,
		simnet.LinkConfig{Rate: 20e6, Delay: 20 * time.Millisecond, QueueBytes: 128 * 1024},
		40*time.Second)
	p := r.player
	cfg := r.session.cfg.Player
	tolerance := cfg.AbandonAfter + r.session.duration

	// Ticks land on multiples of cfg.Tick. Rewrite the session mid-run,
	// between two ticks, so that at the next tick (mutateAt+tick/2) the
	// stall sits exactly at the tolerance boundary, and one tick later
	// it is past it.
	const mutateBase = 5 * time.Second
	mutateAt := mutateBase + cfg.Tick/2
	boundaryTick := mutateBase + cfg.Tick
	r.sim.At(mutateAt, func() {
		r.link.SetDown(true) // nothing more arrives; drain stays empty
		p.state = StateStalled
		p.stallDecoder = false
		p.stallStart = mutateAt
		p.bufferedSec = 0
		p.segBytes = 0
		p.requested = r.session.segments // no further requests
		p.start = boundaryTick - tolerance
	})
	r.sim.At(boundaryTick+cfg.Tick/4, func() {
		if p.state != StateStalled {
			t.Errorf("at the tolerance boundary: state %v, want still stalled", p.state)
		}
	})
	r.sim.At(boundaryTick+cfg.Tick+cfg.Tick/4, func() {
		if p.state != StateFailed {
			t.Errorf("one tick past the tolerance: state %v, want failed", p.state)
		}
		r.sim.Halt()
	})
	r.sim.Run(mutateBase + time.Minute)

	if !strings.Contains(p.failReason, "stalled beyond tolerance") {
		t.Errorf("fail reason %q, want abandonment", p.failReason)
	}
}

// A device overloaded from the first frame stalls the session the
// moment playback starts (stall entered during startup); once the load
// clears, playback resumes and completes with sane accounting.
func TestAdaptiveStallEnteredDuringStartup(t *testing.T) {
	r := newAdaptiveChaosRig(t, 12,
		simnet.LinkConfig{Rate: 20e6, Delay: 20 * time.Millisecond, QueueBytes: 128 * 1024},
		40*time.Second)
	r.dev.Stress(98, 0, 50, 0, 15*time.Second)
	r.sim.Run(10 * time.Minute)
	if !r.got {
		t.Fatalf("session never finished; state %v", r.player.state)
	}
	rep := r.rep
	if rep.Failed {
		t.Fatalf("session failed: %s", rep.FailReason)
	}
	if rep.Stalls < 1 || rep.StallTime <= 0 {
		t.Errorf("overloaded decoder during startup: stalls=%d stallTime=%v, want >= 1 stall",
			rep.Stalls, rep.StallTime)
	}
	if rep.StartupDelay < 0 || rep.StartupDelay > r.session.cfg.Player.AbandonAfter {
		t.Errorf("implausible startup delay %v", rep.StartupDelay)
	}
	if rep.StallTime > rep.SessionTime {
		t.Errorf("stallTime %v exceeds sessionTime %v", rep.StallTime, rep.SessionTime)
	}
}

// Regression: a connection lost mid-stream while the buffer is low used
// to hang the adaptive session in Stalled/Buffering until the
// abandonment timer (AbandonAfter + duration), because only
// completed == segments — never the dead transport — ended the wait.
// The session must instead play out what it has and terminate promptly,
// preserving the root-cause failure reason.
func TestAdaptiveMidStreamAbortTerminatesPromptly(t *testing.T) {
	r := newAdaptiveChaosRig(t, 13,
		simnet.LinkConfig{Rate: 3e6, Delay: 30 * time.Millisecond, QueueBytes: 96 * 1024},
		40*time.Second)
	const abortAt = 6 * time.Second
	r.sim.At(abortAt, func() { r.player.InjectAbort("mid-stream chaos") })
	r.sim.Run(10 * time.Minute)
	if !r.got {
		t.Fatalf("session never finished; state %v buffered=%.1fs downloadOK=%v",
			r.player.state, r.player.bufferedSec, r.player.downloadOK)
	}
	rep := r.rep
	if !rep.Failed {
		t.Fatalf("aborted mid-stream but not marked failed: %+v", rep)
	}
	if !strings.Contains(rep.FailReason, "connection lost mid-stream") {
		t.Errorf("fail reason %q, want the mid-stream root cause preserved", rep.FailReason)
	}
	// Before the fix the session idled until AbandonAfter + duration
	// (100s). With at most MaxBufferSec of media buffered at the abort,
	// it must end well before that.
	maxEnd := abortAt + time.Duration(r.session.cfg.MaxBufferSec)*time.Second + 10*time.Second
	if rep.SessionTime > maxEnd {
		t.Errorf("session dragged on for %v after a dead transport (limit %v)", rep.SessionTime, maxEnd)
	}
}

// Same fault while the session is still buffering (nothing played yet):
// the old code could only fail via the startup-abandonment timer.
func TestAdaptiveAbortDuringStartupFailsFast(t *testing.T) {
	// A starved link keeps the session buffering long enough to inject.
	r := newAdaptiveChaosRig(t, 14,
		simnet.LinkConfig{Rate: 0.2e6, Delay: 50 * time.Millisecond, QueueBytes: 64 * 1024},
		40*time.Second)
	const abortAt = 2 * time.Second
	r.sim.At(abortAt, func() { r.player.InjectAbort("startup chaos") })
	r.sim.Run(10 * time.Minute)
	if !r.got {
		t.Fatalf("session never finished; state %v", r.player.state)
	}
	if !r.rep.Failed {
		t.Fatalf("aborted during startup but not failed: %+v", r.rep)
	}
	if r.rep.SessionTime > 30*time.Second {
		t.Errorf("startup abort took %v to surface (want well under the %v abandonment timer)",
			r.rep.SessionTime, r.session.cfg.Player.AbandonAfter)
	}
}

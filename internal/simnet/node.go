package simnet

import (
	"fmt"
	"time"
)

// PacketDir tells a tap whether the packet was leaving or entering the
// tapped node.
type PacketDir int

// Tap directions.
const (
	DirOut PacketDir = iota // packet sent by the node
	DirIn                   // packet received by the node
)

func (d PacketDir) String() string {
	if d == DirOut {
		return "out"
	}
	return "in"
}

// TapFunc observes packets crossing a NIC. Taps are the measurement
// primitive: a vantage-point probe is a set of taps on the node it
// instruments. Taps must not modify or retain the packet.
type TapFunc func(now time.Duration, nic *NIC, pkt *Packet, dir PacketDir)

// Handler consumes packets delivered to a node. The transport layer
// (tcpsim) and the router implement it.
type Handler interface {
	HandlePacket(nic *NIC, pkt *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(nic *NIC, pkt *Packet)

// HandlePacket implements Handler.
func (f HandlerFunc) HandlePacket(nic *NIC, pkt *Packet) { f(nic, pkt) }

// NIC is a network interface attached to a node and (once connected) to
// one end of a link.
type NIC struct {
	Name string
	node *Node

	link    *Link
	linkDir *linkDir // the direction this NIC transmits into

	// Counters, maintained by the NIC itself; the link-level probe
	// samples them periodically.
	TxPackets   int64
	TxBytes     int64
	RxPackets   int64
	RxBytes     int64
	Disconnects int64 // incremented by Link.SetDown transitions
}

// Node returns the node this NIC belongs to.
func (n *NIC) Node() *Node { return n.node }

// Link returns the link the NIC is attached to, or nil.
func (n *NIC) Link() *Link { return n.link }

// send transmits a packet out of this NIC.
func (n *NIC) send(pkt *Packet) {
	if n.linkDir == nil {
		panic(fmt.Sprintf("simnet: send on unconnected NIC %s", n.Name))
	}
	n.TxPackets++
	n.TxBytes += int64(pkt.Size())
	for _, tap := range n.node.taps {
		tap(n.node.sim.Now(), n, pkt, DirOut)
	}
	n.linkDir.enqueue(pkt)
}

// receive is called by the link when a packet arrives at this NIC.
func (n *NIC) receive(pkt *Packet) {
	n.RxPackets++
	n.RxBytes += int64(pkt.Size())
	for _, tap := range n.node.taps {
		tap(n.node.sim.Now(), n, pkt, DirIn)
	}
	if n.node.handler != nil {
		n.node.handler.HandlePacket(n, pkt)
	}
}

// Node is a simulated device: a host (server, phone, wired client) or a
// router/AP. A node owns NICs and an optional packet handler.
type Node struct {
	Name string
	Addr Addr

	sim     *Sim
	nics    []*NIC
	handler Handler
	taps    []TapFunc
}

// NewNode creates a node with the given name and address.
func (s *Sim) NewNode(name string, addr Addr) *Node {
	return &Node{Name: name, Addr: addr, sim: s}
}

// Sim returns the simulator the node belongs to.
func (n *Node) Sim() *Sim { return n.sim }

// AddNIC attaches a new, unconnected NIC to the node.
func (n *Node) AddNIC(name string) *NIC {
	nic := &NIC{Name: name, node: n}
	n.nics = append(n.nics, nic)
	return nic
}

// NICs returns the node's interfaces.
func (n *Node) NICs() []*NIC { return n.nics }

// SetHandler installs the packet consumer for the node.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// AddTap registers an observer for every packet crossing any of the
// node's NICs, in either direction.
func (n *Node) AddTap(t TapFunc) { n.taps = append(n.taps, t) }

// Send transmits a packet out of the given NIC, which must belong to
// this node.
func (n *Node) Send(nic *NIC, pkt *Packet) {
	if nic.node != n {
		panic(fmt.Sprintf("simnet: NIC %s does not belong to node %s", nic.Name, n.Name))
	}
	nic.send(pkt)
}

// Router forwards packets between a node's NICs based on a static
// destination-address table. It models the home gateway / access point.
type Router struct {
	node   *Node
	routes map[Addr]*NIC
	def    *NIC
}

// NewRouter wraps a node in forwarding behaviour and installs itself as
// the node's handler.
func NewRouter(node *Node) *Router {
	r := &Router{node: node, routes: make(map[Addr]*NIC)}
	node.SetHandler(r)
	return r
}

// AddRoute directs traffic for dst out of nic.
func (r *Router) AddRoute(dst Addr, nic *NIC) { r.routes[dst] = nic }

// SetDefault sets the NIC used when no specific route matches.
func (r *Router) SetDefault(nic *NIC) { r.def = nic }

// HandlePacket implements Handler by forwarding the packet toward its
// destination. Packets without a route (and no default) are dropped
// silently, as a real router would after TTL games we don't model.
func (r *Router) HandlePacket(in *NIC, pkt *Packet) {
	out := r.routes[pkt.Flow.Dst]
	if out == nil {
		out = r.def
	}
	if out == nil || out == in {
		return
	}
	out.send(pkt)
}

package simnet

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	s := New(1)
	fired := time.Duration(-1)
	s.At(10*time.Millisecond, func() {
		s.At(5*time.Millisecond, func() { fired = s.Now() })
	})
	s.RunAll()
	if fired != 10*time.Millisecond {
		t.Errorf("past event fired at %v, want clamped to 10ms", fired)
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	s := New(1)
	ran := 0
	s.At(10*time.Millisecond, func() { ran++ })
	s.At(50*time.Millisecond, func() { ran++ })
	s.Run(20 * time.Millisecond)
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if s.Now() != 20*time.Millisecond {
		t.Errorf("Now = %v, want 20ms", s.Now())
	}
	s.Run(time.Second)
	if ran != 2 {
		t.Errorf("second Run executed %d total, want 2", ran)
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	ran := 0
	s.At(time.Millisecond, func() { ran++; s.Halt() })
	s.At(2*time.Millisecond, func() { ran++ })
	s.RunAll()
	if ran != 1 {
		t.Fatalf("Halt did not stop the loop: ran=%d", ran)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var ticks []time.Duration
	tk := NewTicker(s, 100*time.Millisecond, func(now time.Duration) {
		ticks = append(ticks, now)
		if len(ticks) == 3 {
			s.Halt()
		}
	})
	s.RunAll()
	tk.Stop()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, want := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond} {
		if ticks[i] != want {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(s, 10*time.Millisecond, func(now time.Duration) {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	s.Run(time.Second)
	if n != 2 {
		t.Fatalf("ticker fired %d times after Stop, want 2", n)
	}
}

// twoHosts builds a minimal a<->b topology and returns both nodes, the
// link, and a channel-free capture of packets delivered to b.
func twoHosts(s *Sim, cfg LinkConfig) (a, b *Node, link *Link, gotB *[]*Packet) {
	a = s.NewNode("a", 1)
	b = s.NewNode("b", 2)
	na := a.AddNIC("eth0")
	nb := b.AddNIC("eth0")
	link = ConnectSym(s, "ab", na, nb, cfg)
	var got []*Packet
	b.SetHandler(HandlerFunc(func(nic *NIC, pkt *Packet) { got = append(got, pkt) }))
	return a, b, link, &got
}

func TestLinkDeliveryTiming(t *testing.T) {
	s := New(1)
	// 8 Mbit/s, 10ms delay: a 960B payload packet (1000B wire) takes
	// 1ms serialization + 10ms propagation.
	a, _, _, got := twoHosts(s, LinkConfig{Rate: 8e6, Delay: 10 * time.Millisecond})
	pkt := s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 1000-HeaderBytes, nil)
	a.Send(a.NICs()[0], pkt)
	s.RunAll()
	if len(*got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(*got))
	}
	if want := 11 * time.Millisecond; s.Now() != want {
		t.Errorf("delivery at %v, want %v", s.Now(), want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	s := New(1)
	a, _, _, got := twoHosts(s, LinkConfig{Rate: 8e6, Delay: 0})
	for i := 0; i < 3; i++ {
		a.Send(a.NICs()[0], s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 1000-HeaderBytes, nil))
	}
	s.RunAll()
	if len(*got) != 3 {
		t.Fatalf("delivered %d, want 3", len(*got))
	}
	// Three 1ms serializations back to back.
	if want := 3 * time.Millisecond; s.Now() != want {
		t.Errorf("last delivery at %v, want %v", s.Now(), want)
	}
}

func TestQueueTailDrop(t *testing.T) {
	s := New(1)
	a, _, link, got := twoHosts(s, LinkConfig{Rate: 1e6, Delay: 0, QueueBytes: 2500})
	for i := 0; i < 10; i++ {
		a.Send(a.NICs()[0], s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 1000-HeaderBytes, nil))
	}
	s.RunAll()
	st := link.Stats(AtoB)
	if st.QueueDrops == 0 {
		t.Error("expected tail drops on a 2500B queue fed 10x1000B")
	}
	if len(*got)+int(st.QueueDrops) != 10 {
		t.Errorf("delivered %d + dropped %d != 10", len(*got), st.QueueDrops)
	}
}

func TestChannelLoss(t *testing.T) {
	s := New(42)
	a, _, link, got := twoHosts(s, LinkConfig{Rate: 1e9, Delay: 0, Loss: 0.5, QueueBytes: 1 << 30})
	const n = 2000
	for i := 0; i < n; i++ {
		a.Send(a.NICs()[0], s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 100, nil))
	}
	s.RunAll()
	loss := float64(link.Stats(AtoB).ChannelLoss) / n
	if loss < 0.45 || loss > 0.55 {
		t.Errorf("measured loss %.3f, want ~0.5", loss)
	}
	if len(*got)+int(link.Stats(AtoB).ChannelLoss) != n {
		t.Errorf("delivered+lost != sent")
	}
}

func TestLinkRetriesRecoverLoss(t *testing.T) {
	s := New(7)
	a, _, link, got := twoHosts(s, LinkConfig{Rate: 1e9, Delay: 0, Retries: 7, QueueBytes: 1 << 30})
	link.SetPerTryLossFn(AtoB, func(time.Duration) float64 { return 0.5 })
	const n = 500
	for i := 0; i < n; i++ {
		a.Send(a.NICs()[0], s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 100, nil))
	}
	s.RunAll()
	st := link.Stats(AtoB)
	// With 7 retries at p=0.5, residual loss is ~0.5^8 = 0.4%.
	if got := float64(st.ChannelLoss) / n; got > 0.03 {
		t.Errorf("residual loss %.3f despite retries, want <3%%", got)
	}
	if st.Retries == 0 {
		t.Error("expected link-layer retries to be counted")
	}
	if len(*got) < n*9/10 {
		t.Errorf("delivered only %d/%d", len(*got), n)
	}
}

func TestLinkDown(t *testing.T) {
	s := New(1)
	a, b, link, got := twoHosts(s, LinkConfig{Rate: 1e6, Delay: 0})
	link.SetDown(true)
	a.Send(a.NICs()[0], s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 100, nil))
	s.RunAll()
	if len(*got) != 0 {
		t.Error("packet delivered over a down link")
	}
	if b.NICs()[0].Disconnects != 1 || a.NICs()[0].Disconnects != 1 {
		t.Error("SetDown(true) should count one disconnect per endpoint")
	}
	link.SetDown(true) // no transition
	if b.NICs()[0].Disconnects != 1 {
		t.Error("repeated SetDown(true) must not double-count")
	}
	link.SetDown(false)
	a.Send(a.NICs()[0], s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 100, nil))
	s.RunAll()
	if len(*got) != 1 {
		t.Error("packet not delivered after link back up")
	}
}

func TestBusyFnSlowsForeground(t *testing.T) {
	// With 80% fluid background load, 10 packets on a 8Mbit/s link
	// should take ~5x longer than unloaded.
	elapsed := func(busy float64) time.Duration {
		s := New(1)
		a, _, link, _ := twoHosts(s, LinkConfig{Rate: 8e6, Delay: 0, QueueBytes: 1 << 20})
		if busy > 0 {
			link.AddBusyFn(AtoB, func(time.Duration) float64 { return busy })
		}
		for i := 0; i < 10; i++ {
			a.Send(a.NICs()[0], s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 1000-HeaderBytes, nil))
		}
		s.RunAll()
		return s.Now()
	}
	base, loaded := elapsed(0), elapsed(0.8)
	if loaded < 4*base {
		t.Errorf("80%% busy link finished in %v vs %v unloaded; want >=4x slower", loaded, base)
	}
}

func TestRouterForwards(t *testing.T) {
	s := New(1)
	host := s.NewNode("host", 1)
	rt := s.NewNode("router", 100)
	dst := s.NewNode("dst", 2)

	h0 := host.AddNIC("eth0")
	r0 := rt.AddNIC("lan")
	r1 := rt.AddNIC("wan")
	d0 := dst.AddNIC("eth0")
	ConnectSym(s, "h-r", h0, r0, LinkConfig{Rate: 1e9})
	ConnectSym(s, "r-d", r1, d0, LinkConfig{Rate: 1e9})

	router := NewRouter(rt)
	router.AddRoute(1, r0)
	router.AddRoute(2, r1)

	var got []*Packet
	dst.SetHandler(HandlerFunc(func(nic *NIC, pkt *Packet) { got = append(got, pkt) }))
	host.Send(h0, s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 100, nil))
	s.RunAll()
	if len(got) != 1 {
		t.Fatalf("router delivered %d packets, want 1", len(got))
	}
}

func TestRouterDropsUnroutable(t *testing.T) {
	s := New(1)
	host := s.NewNode("host", 1)
	rt := s.NewNode("router", 100)
	h0 := host.AddNIC("eth0")
	r0 := rt.AddNIC("lan")
	ConnectSym(s, "h-r", h0, r0, LinkConfig{Rate: 1e9})
	NewRouter(rt) // no routes at all
	host.Send(h0, s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 99}, 100, nil))
	s.RunAll() // must terminate without panic
}

func TestTapsSeeBothDirections(t *testing.T) {
	s := New(1)
	a, b, _, _ := twoHosts(s, LinkConfig{Rate: 1e9})
	var outs, ins int
	b.AddTap(func(now time.Duration, nic *NIC, pkt *Packet, dir PacketDir) {
		if dir == DirIn {
			ins++
		} else {
			outs++
		}
	})
	// a -> b
	a.Send(a.NICs()[0], s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 100, nil))
	s.RunAll()
	// b -> a
	b.Send(b.NICs()[0], s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 2, Dst: 1}, 100, nil))
	s.RunAll()
	if ins != 1 || outs != 1 {
		t.Errorf("tap saw in=%d out=%d, want 1/1", ins, outs)
	}
}

func TestNICCounters(t *testing.T) {
	s := New(1)
	a, b, _, _ := twoHosts(s, LinkConfig{Rate: 1e9})
	pkt := s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 960, nil)
	a.Send(a.NICs()[0], pkt)
	s.RunAll()
	if a.NICs()[0].TxBytes != 1000 || b.NICs()[0].RxBytes != 1000 {
		t.Errorf("counters tx=%d rx=%d, want 1000/1000", a.NICs()[0].TxBytes, b.NICs()[0].RxBytes)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, int64) {
		s := New(99)
		a, _, link, _ := twoHosts(s, LinkConfig{Rate: 1e6, Delay: 5 * time.Millisecond,
			JitterStd: time.Millisecond, Loss: 0.1, QueueBytes: 8000})
		for i := 0; i < 200; i++ {
			a.Send(a.NICs()[0], s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 500, nil))
		}
		s.RunAll()
		return s.Now(), link.Stats(AtoB).ChannelLoss
	}
	t1, l1 := run()
	t2, l2 := run()
	if t1 != t2 || l1 != l2 {
		t.Errorf("same seed diverged: (%v,%d) vs (%v,%d)", t1, l1, t2, l2)
	}
}

func TestFlowKeyReverse(t *testing.T) {
	f := func(src, dst int16, sp, dp uint16) bool {
		k := FlowKey{Proto: ProtoTCP, Src: Addr(src), Dst: Addr(dst), SrcPort: int(sp), DstPort: int(dp)}
		return k.Reverse().Reverse() == k &&
			k.Reverse().Src == k.Dst && k.Reverse().DstPort == k.SrcPort
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketSize(t *testing.T) {
	s := New(1)
	p := s.NewPacket(FlowKey{}, 1460, &TCPHeader{})
	if p.Size() != 1460+HeaderBytes {
		t.Errorf("Size = %d, want %d", p.Size(), 1460+HeaderBytes)
	}
	if !p.IsTCP() {
		t.Error("IsTCP = false with header present")
	}
}

func TestPacketIDsUnique(t *testing.T) {
	s := New(1)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		p := s.NewPacket(FlowKey{}, 0, nil)
		if seen[p.ID] {
			t.Fatalf("duplicate packet ID %d", p.ID)
		}
		seen[p.ID] = true
	}
}

// TestPacketConservation: after the simulation drains, every packet
// offered to a link direction is accounted for exactly once as
// delivered, queue-dropped, or channel-lost.
func TestPacketConservation(t *testing.T) {
	f := func(seed int64, nPkts uint8, lossPct, busyPct uint8) bool {
		s := New(seed)
		a := s.NewNode("a", 1)
		b := s.NewNode("b", 2)
		an, bn := a.AddNIC("0"), b.AddNIC("0")
		link := ConnectSym(s, "l", an, bn, LinkConfig{
			Rate: 2e6, Delay: 5 * time.Millisecond,
			Loss:       float64(lossPct%90) / 100,
			QueueBytes: 8000,
		})
		if busyPct > 0 {
			bf := float64(busyPct%80) / 100
			link.AddBusyFn(AtoB, func(time.Duration) float64 { return bf })
		}
		delivered := 0
		b.SetHandler(HandlerFunc(func(*NIC, *Packet) { delivered++ }))
		n := int(nPkts)%120 + 1
		for i := 0; i < n; i++ {
			a.Send(an, s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 500, nil))
		}
		s.RunAll()
		st := link.Stats(AtoB)
		return delivered+int(st.QueueDrops)+int(st.ChannelLoss) == n &&
			int(st.Enqueued) == n-int(st.QueueDrops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFIFODeliveryOrder: jitter must never reorder packets on a wire.
func TestFIFODeliveryOrder(t *testing.T) {
	s := New(5)
	a := s.NewNode("a", 1)
	b := s.NewNode("b", 2)
	an, bn := a.AddNIC("0"), b.AddNIC("0")
	ConnectSym(s, "l", an, bn, LinkConfig{
		Rate: 50e6, Delay: 10 * time.Millisecond, JitterStd: 8 * time.Millisecond,
		QueueBytes: 1 << 20,
	})
	var got []uint64
	b.SetHandler(HandlerFunc(func(_ *NIC, p *Packet) { got = append(got, p.ID) }))
	var sent []uint64
	for i := 0; i < 300; i++ {
		p := s.NewPacket(FlowKey{Proto: ProtoUDP, Src: 1, Dst: 2}, 200, nil)
		sent = append(sent, p.ID)
		a.Send(an, p)
	}
	s.RunAll()
	if len(got) != len(sent) {
		t.Fatalf("delivered %d of %d", len(got), len(sent))
	}
	for i := range got {
		if got[i] != sent[i] {
			t.Fatalf("reordered at %d: got %d want %d", i, got[i], sent[i])
		}
	}
}

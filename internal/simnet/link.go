package simnet

import (
	"fmt"
	"math"
	"time"
)

// LinkConfig describes one direction of a link. A duplex link is built
// from two of these (usually identical).
type LinkConfig struct {
	// Rate is the nominal capacity in bits per second. Required.
	Rate float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// JitterStd is the standard deviation of normally distributed
	// per-packet delay jitter (tc/netem style). Samples are truncated
	// so the total one-way delay never goes negative.
	JitterStd time.Duration
	// Loss is the per-packet loss probability applied on the channel
	// (after queueing), as netem applies it.
	Loss float64
	// QueueBytes caps the FIFO queue; packets arriving at a full queue
	// are dropped (tail drop). Zero selects a default of 64 KiB.
	QueueBytes int
	// Retries is the number of link-layer retransmission attempts
	// (wireless MAC behaviour). Zero means a lost packet is simply lost,
	// as on a wired link.
	Retries int
	// RetryBackoff is the extra wait added per retry attempt.
	RetryBackoff time.Duration
}

// DefaultQueueBytes is used when LinkConfig.QueueBytes is zero.
const DefaultQueueBytes = 64 * 1024

// minEffectiveRate floors the usable rate so a fully saturated link
// still drains at a crawl instead of dividing by zero.
const minEffectiveRate = 1e3 // 1 kbit/s

// DirStats counts what happened on one direction of a link.
type DirStats struct {
	TxPackets   int64 // packets that completed transmission
	TxBytes     int64 // wire bytes transmitted (successful packets)
	QueueDrops  int64 // packets dropped at a full queue
	ChannelLoss int64 // packets lost on the channel after all retries
	Retries     int64 // link-layer retransmission attempts
	Enqueued    int64 // packets accepted into the queue
}

// linkDir is one direction of a duplex link.
type linkDir struct {
	link *Link
	cfg  LinkConfig
	dst  *NIC

	// Dynamic hooks; nil means "use the static config value".
	rateFn func(now time.Duration) float64
	lossFn func(now time.Duration) float64
	// busyFn returns the fraction [0,1) of capacity consumed by fluid
	// background traffic (cross traffic, interference airtime).
	busyFns []func(now time.Duration) float64
	// perTryLossFn adds per-transmission-attempt error probability
	// (wireless channel errors); subject to link-layer retries.
	perTryLossFn func(now time.Duration) float64

	queue  []*Packet
	qBytes int
	busy   bool
	stats  DirStats

	// lastDelivery enforces FIFO delivery despite per-packet jitter: a
	// wire does not reorder. (netem's jitter famously does reorder,
	// which wrecks Reno with spurious duplicate ACKs; the paper's Linux
	// stacks tolerated that via SACK/DSACK heuristics this simulator's
	// leaner TCP lacks, so the link removes the artifact instead.)
	lastDelivery time.Duration
}

// Link is a duplex point-to-point link between two NICs.
type Link struct {
	sim  *Sim
	name string
	dirs [2]*linkDir
	down bool
}

// Direction selects one of the two directions of a duplex link.
type Direction int

// Link directions. AtoB is from the first NIC passed to Connect toward
// the second.
const (
	AtoB Direction = 0
	BtoA Direction = 1
)

// Connect creates a duplex link between NICs a and b with per-direction
// configs. The NICs must not already be attached to a link.
func Connect(sim *Sim, name string, a, b *NIC, cfgAB, cfgBA LinkConfig) *Link {
	if a.link != nil || b.link != nil {
		panic(fmt.Sprintf("simnet: NIC already connected (%s / %s)", a.Name, b.Name))
	}
	normalize := func(c *LinkConfig) {
		if c.Rate <= 0 {
			panic("simnet: link rate must be positive")
		}
		if c.QueueBytes <= 0 {
			c.QueueBytes = DefaultQueueBytes
		}
	}
	normalize(&cfgAB)
	normalize(&cfgBA)
	l := &Link{sim: sim, name: name}
	l.dirs[AtoB] = &linkDir{link: l, cfg: cfgAB, dst: b}
	l.dirs[BtoA] = &linkDir{link: l, cfg: cfgBA, dst: a}
	a.link, a.linkDir = l, l.dirs[AtoB]
	b.link, b.linkDir = l, l.dirs[BtoA]
	return l
}

// ConnectSym creates a duplex link with the same config in both
// directions.
func ConnectSym(sim *Sim, name string, a, b *NIC, cfg LinkConfig) *Link {
	return Connect(sim, name, a, b, cfg, cfg)
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// SetRateFn installs a dynamic capacity function for the given direction,
// overriding the static Rate. Pass nil to restore the static value.
func (l *Link) SetRateFn(d Direction, fn func(now time.Duration) float64) { l.dirs[d].rateFn = fn }

// SetLossFn installs a dynamic channel-loss probability for the given
// direction, overriding the static Loss.
func (l *Link) SetLossFn(d Direction, fn func(now time.Duration) float64) { l.dirs[d].lossFn = fn }

// SetPerTryLossFn installs a per-transmission-attempt error probability
// (wireless channel errors, recovered by link-layer retries).
func (l *Link) SetPerTryLossFn(d Direction, fn func(now time.Duration) float64) {
	l.dirs[d].perTryLossFn = fn
}

// AddBusyFn registers a fluid background-load source on a direction. The
// function returns the fraction of capacity [0,1) that background traffic
// occupies at a given time; multiple sources add up (capped below 1).
// Fluid background both reduces the rate available to foreground packets
// and inflates queueing delay, which is how iperf-style congestion and
// D-ITG-style variation are modelled without per-packet cost.
func (l *Link) AddBusyFn(d Direction, fn func(now time.Duration) float64) {
	l.dirs[d].busyFns = append(l.dirs[d].busyFns, fn)
}

// SetDown marks the whole link up or down. While down, packets offered to
// either direction are dropped as channel losses. A transition to down
// increments the Disconnects counter on both endpoint NICs.
func (l *Link) SetDown(down bool) {
	if down && !l.down {
		l.dirs[AtoB].dst.Disconnects++
		l.dirs[BtoA].dst.Disconnects++
	}
	l.down = down
}

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// Stats returns a copy of the counters for a direction.
func (l *Link) Stats(d Direction) DirStats { return l.dirs[d].stats }

// Config returns the static configuration of a direction.
func (l *Link) Config(d Direction) LinkConfig { return l.dirs[d].cfg }

// busyFrac sums the fluid background load on the direction, capped just
// below 1 so the effective rate stays positive.
func (d *linkDir) busyFrac(now time.Duration) float64 {
	var b float64
	for _, fn := range d.busyFns {
		b += fn(now)
	}
	if b < 0 {
		b = 0
	}
	if b > 0.98 {
		b = 0.98
	}
	return b
}

// effectiveRate is the capacity available to foreground packets.
func (d *linkDir) effectiveRate(now time.Duration) float64 {
	r := d.cfg.Rate
	if d.rateFn != nil {
		r = d.rateFn(now)
	}
	r *= 1 - d.busyFrac(now)
	return math.Max(r, minEffectiveRate)
}

func (d *linkDir) lossProb(now time.Duration) float64 {
	p := d.cfg.Loss
	if d.lossFn != nil {
		p = d.lossFn(now)
	}
	// Heavy fluid cross traffic overflows the shared queue: model the
	// overflow as extra loss once occupancy passes 90%.
	if b := d.busyFrac(now); b > 0.90 {
		p += (b - 0.90) * 2.5
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// crossQueueDelay models time spent behind fluid cross-traffic in the
// shared queue, using an M/M/1-style rho/(1-rho) growth on the mean
// packet service time, randomized +-50% and capped at 400ms.
func (d *linkDir) crossQueueDelay(now time.Duration) time.Duration {
	b := d.busyFrac(now)
	if b <= 0 {
		return 0
	}
	rate := d.cfg.Rate
	if d.rateFn != nil {
		rate = d.rateFn(now)
	}
	if rate < minEffectiveRate {
		rate = minEffectiveRate
	}
	meanPktTime := 1500 * 8 / rate // seconds
	qd := meanPktTime * b / (1 - b)
	qd *= 0.5 + d.link.sim.rng.Float64() // +-50%
	del := time.Duration(qd * float64(time.Second))
	if del > 400*time.Millisecond {
		del = 400 * time.Millisecond
	}
	return del
}

// enqueue offers a packet to the direction's FIFO. Called by NIC.send.
func (d *linkDir) enqueue(pkt *Packet) {
	tr := d.link.sim.tracer
	if d.link.down {
		d.stats.ChannelLoss++
		if tr.Enabled() {
			tr.Instant("net", "channel_loss", fmt.Sprintf("link=%s down #%d %s", d.link.name, pkt.ID, pkt.Flow), 0)
		}
		return
	}
	if d.qBytes+pkt.Size() > d.cfg.QueueBytes {
		d.stats.QueueDrops++
		if tr.Enabled() {
			tr.Instant("net", "queue_drop", fmt.Sprintf("link=%s qbytes=%d #%d %s", d.link.name, d.qBytes, pkt.ID, pkt.Flow), 0)
		}
		return
	}
	d.queue = append(d.queue, pkt)
	d.qBytes += pkt.Size()
	d.stats.Enqueued++
	if tr.Enabled() {
		tr.Instant("net", "enqueue", fmt.Sprintf("link=%s bytes=%d #%d %s", d.link.name, pkt.Size(), pkt.ID, pkt.Flow), 0)
	}
	if !d.busy {
		d.startService()
	}
}

// startService begins transmitting the head-of-line packet.
func (d *linkDir) startService() {
	d.busy = true
	pkt := d.queue[0]
	sim := d.link.sim
	now := sim.Now()

	rate := d.effectiveRate(now)
	txTime := time.Duration(float64(pkt.Size()*8) / rate * float64(time.Second))

	// Decide the number of transmission attempts. Channel errors are
	// recovered by link-layer retries (wireless MAC behaviour); the
	// netem-style Loss is applied once, un-recovered, as on a wire.
	tries := 1
	lost := false
	if p := d.perTryLoss(now); p > 0 {
		maxAttempts := 1 + d.cfg.Retries
		for tries = 1; tries <= maxAttempts; tries++ {
			if sim.rng.Float64() >= p {
				break // this attempt succeeded
			}
		}
		if tries > maxAttempts {
			tries = maxAttempts
			lost = true // every attempt failed
		}
	}
	if !lost && sim.rng.Float64() < d.lossProb(now) {
		lost = true
	}

	total := time.Duration(tries)*txTime + time.Duration(tries-1)*d.cfg.RetryBackoff
	d.stats.Retries += int64(tries - 1)
	if tries > 1 {
		if tr := sim.tracer; tr.Enabled() {
			tr.Instant("net", "retry", fmt.Sprintf("link=%s attempts=%d lost=%t #%d %s", d.link.name, tries, lost, pkt.ID, pkt.Flow), 0)
		}
	}

	sim.After(total, func() {
		// Packet leaves the queue whether or not it survived.
		d.queue = d.queue[1:]
		d.qBytes -= pkt.Size()

		if d.link.down || lost {
			d.stats.ChannelLoss++
			if tr := sim.tracer; tr.Enabled() {
				tr.Instant("net", "channel_loss", fmt.Sprintf("link=%s #%d %s", d.link.name, pkt.ID, pkt.Flow), 0)
			}
		} else {
			d.stats.TxPackets++
			d.stats.TxBytes += int64(pkt.Size())
			latency := d.cfg.Delay + d.jitter() + d.crossQueueDelay(sim.Now())
			deliverAt := sim.Now() + latency
			if deliverAt < d.lastDelivery {
				deliverAt = d.lastDelivery // FIFO: no reordering on a wire
			}
			d.lastDelivery = deliverAt
			dst := d.dst
			sim.At(deliverAt, func() { dst.receive(pkt) })
		}
		if len(d.queue) > 0 {
			d.startService()
		} else {
			d.busy = false
		}
	})
}

func (d *linkDir) perTryLoss(now time.Duration) float64 {
	if d.perTryLossFn == nil {
		return 0
	}
	p := d.perTryLossFn(now)
	if p < 0 {
		return 0
	}
	if p > 0.95 {
		return 0.95
	}
	return p
}

// jitter samples the netem-style normal jitter, truncated at zero.
func (d *linkDir) jitter() time.Duration {
	if d.cfg.JitterStd <= 0 {
		return 0
	}
	j := time.Duration(d.link.sim.rng.NormFloat64() * float64(d.cfg.JitterStd))
	if j < -d.cfg.Delay {
		j = -d.cfg.Delay
	}
	return j
}

// QueueDepthBytes reports the currently queued bytes on a direction
// (foreground packets only).
func (l *Link) QueueDepthBytes(d Direction) int { return l.dirs[d].qBytes }

// SetDelay overrides the static propagation delay of a direction (used
// by shaping faults, which tc/netem applies as a delay change).
func (l *Link) SetDelay(d Direction, delay time.Duration) { l.dirs[d].cfg.Delay = delay }

// SetLoss overrides the static channel loss probability of a direction.
func (l *Link) SetLoss(d Direction, p float64) { l.dirs[d].cfg.Loss = p }

// SetJitter overrides the delay jitter of a direction.
func (l *Link) SetJitter(d Direction, std time.Duration) { l.dirs[d].cfg.JitterStd = std }

// Package simnet implements a deterministic discrete-event network
// simulator: a virtual clock, an event queue, hosts with network
// interfaces, and duplex links with configurable bandwidth, propagation
// delay, jitter, loss and FIFO queues.
//
// The simulator is the testbed substrate for the vqprobe reproduction: it
// stands in for the physical server/router/phone topology of the paper.
// Everything above it (TCP, video delivery, probes, fault injection) runs
// on top of the primitives defined here.
//
// All randomness is drawn from a *rand.Rand owned by the Sim, so a run is
// fully reproducible from its seed. Time is virtual: the simulator never
// consults the wall clock.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"vqprobe/internal/trace"
)

// Sim is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	nextID uint64
	halted bool
	tracer *trace.Tracer
}

// New returns a simulator whose random number generator is seeded with
// seed. Two simulators created with the same seed and driven by the same
// schedule of events produce identical traces.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's random source. All model components must
// draw randomness from here to preserve reproducibility.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// SetTracer attaches an event recorder to the simulation. Everything
// running on this Sim (links, TCP connections, the video player) emits
// spans and instant events into it. A nil tracer (the default) disables
// recording at zero cost; the tracer should be clocked by s.Now so
// events carry virtual timestamps.
func (s *Sim) SetTracer(t *trace.Tracer) { s.tracer = t }

// Tracer returns the attached recorder, or nil when tracing is off.
// The nil result is safe to use directly: all trace.Tracer methods
// no-op on a nil receiver.
func (s *Sim) Tracer() *trace.Tracer { return s.tracer }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is clamped to the present: the event runs at Now.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Step executes the earliest pending event and returns true, or returns
// false when no events remain.
func (s *Sim) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	s.now = ev.at
	ev.fn()
	return true
}

// Run processes events until the queue drains or virtual time would pass
// until. Events scheduled exactly at until still run. It returns the
// virtual time at which processing stopped.
func (s *Sim) Run(until time.Duration) time.Duration {
	s.halted = false
	for !s.halted && s.events.Len() > 0 {
		if s.events[0].at > until {
			s.now = until
			return s.now
		}
		s.Step()
	}
	if s.now < until && !s.halted {
		s.now = until
	}
	return s.now
}

// RunAll processes events until the queue is empty or Halt is called.
func (s *Sim) RunAll() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// Halt stops Run/RunAll after the currently executing event returns.
// Pending events stay queued and a subsequent Run resumes them.
func (s *Sim) Halt() { s.halted = true }

// Pending reports how many events are queued.
func (s *Sim) Pending() int { return s.events.Len() }

// nextPacketID hands out unique packet identifiers for tracing.
func (s *Sim) nextPacketID() uint64 {
	s.nextID++
	return s.nextID
}

type event struct {
	at  time.Duration
	seq uint64 // tie-break: FIFO among simultaneous events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Ticker invokes fn every interval of virtual time until Stop is called.
// It is the building block for per-second samplers (RSSI, CPU, NIC
// counters) used by the probes.
type Ticker struct {
	sim      *Sim
	interval time.Duration
	fn       func(now time.Duration)
	stopped  bool
}

// NewTicker starts a ticker with the given interval. The first tick fires
// one interval from now. interval must be positive.
func NewTicker(sim *Sim, interval time.Duration, fn func(now time.Duration)) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("simnet: non-positive ticker interval %v", interval))
	}
	t := &Ticker{sim: sim, interval: interval, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.sim.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn(t.sim.Now())
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop cancels future ticks. A tick already dispatched for the current
// instant may still run.
func (t *Ticker) Stop() { t.stopped = true }

package simnet

import (
	"fmt"
	"time"
)

// Addr identifies a host in the simulated network. Addresses are flat:
// routing is done on the destination address alone, which is sufficient
// for the star topologies the testbed uses.
type Addr int

// Proto distinguishes transport protocols carried in packets.
type Proto uint8

// Transport protocols understood by the simulator.
const (
	ProtoTCP Proto = iota
	ProtoUDP
)

func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// FlowKey is the 4-tuple (plus protocol) identifying a flow. It is
// comparable and can be used as a map key, mirroring the Flow/Endpoint
// pattern of packet-decoding libraries.
type FlowKey struct {
	Proto    Proto
	Src, Dst Addr
	SrcPort  int
	DstPort  int
}

// Reverse returns the key of the opposite direction of the same
// conversation.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Proto: k.Proto, Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s %d:%d->%d:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// TCPFlags is the bitset of TCP control flags carried by a segment.
type TCPFlags uint8

// TCP control flags.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
	FlagPSH
)

// Has reports whether all flags in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// TCPHeader models the transport header fields that a tstat-style flow
// meter inspects on the wire. Sequence and acknowledgement numbers are
// byte offsets from the start of the stream (no random ISN: probes in
// this simulator see relative sequence numbers directly, which is what
// tstat reports anyway).
type TCPHeader struct {
	Seq    int64    // first payload byte carried by this segment
	Ack    int64    // next byte expected from the peer
	Flags  TCPFlags // control flags
	Window int      // advertised receive window in bytes
	MSS    int      // MSS option; only meaningful on SYN segments
}

// HeaderBytes is the fixed per-packet overhead (IP + TCP/UDP headers)
// added to the payload when computing wire size.
const HeaderBytes = 40

// Packet is the unit of transfer in the simulator. Packets are allocated
// per transmission; links and nodes must not retain them after handing
// them off.
type Packet struct {
	ID      uint64 // unique per simulation, for tracing
	Flow    FlowKey
	Payload int        // application payload bytes
	TCP     *TCPHeader // nil for non-TCP packets

	// Sent is the virtual time the packet left its origin host. Probes
	// must not use it (they only observe arrival times at their tap);
	// it exists for tracing and tests.
	Sent time.Duration
}

// Size returns the wire size of the packet in bytes.
func (p *Packet) Size() int { return p.Payload + HeaderBytes }

// IsTCP reports whether the packet carries a TCP header.
func (p *Packet) IsTCP() bool { return p.TCP != nil }

// NewPacket allocates a packet stamped with a unique ID and the current
// virtual time.
func (s *Sim) NewPacket(flow FlowKey, payload int, hdr *TCPHeader) *Packet {
	return &Packet{ID: s.nextPacketID(), Flow: flow, Payload: payload, TCP: hdr, Sent: s.now}
}

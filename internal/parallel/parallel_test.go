package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersCapsAtTasks(t *testing.T) {
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8,3) = %d, want 3", got)
	}
	if got, want := Workers(0, 2), min(runtime.GOMAXPROCS(0), 2); got != want {
		t.Errorf("Workers(0,2) = %d, want %d", got, want)
	}
	if got := Workers(0, 1<<30); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0,huge) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1,0) = %d, want 1", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		For(n, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroItems(t *testing.T) {
	ran := false
	For(0, 4, func(int) { ran = true })
	if ran {
		t.Error("For(0, ...) invoked the callback")
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const n, workers = 500, 4
	var bad atomic.Int32
	For(1, 1, func(int) {}) // exercise the inline path too
	ForWorker(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Errorf("%d callbacks saw an out-of-range worker id", bad.Load())
	}
}

// Package parallel provides the bounded worker-pool primitives shared
// by dataset generation (internal/testbed) and the training stack
// (internal/ml, internal/ml/c45, internal/features). Every pool here is
// deterministic-by-construction for callers that write results into
// per-index slots: work items are identified by index, outputs land in
// disjoint locations, and aggregation happens serially in index order
// at the call site.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob against a task count: zero or a
// negative request means GOMAXPROCS, and the result never exceeds the
// number of tasks — spinning up more goroutines than tasks is pure
// overhead (the bug runAll in internal/testbed used to have).
func Workers(requested, tasks int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > tasks {
		requested = tasks
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// For runs fn(i) for every i in [0, n) on at most workers goroutines
// and blocks until all calls return. The worker count is resolved with
// Workers; when it collapses to 1 the loop runs inline with no
// goroutines and no allocation, so hot paths can call For
// unconditionally.
func For(n, workers int, fn func(i int)) {
	ForWorker(n, workers, func(_, i int) { fn(i) })
}

// ForWorker is For with the worker's identity passed to the callback:
// fn(w, i) receives w in [0, resolved workers), letting callers index
// per-worker scratch buffers without synchronization. Items are handed
// out dynamically (work stealing via a shared counter), so the mapping
// of items to workers is not deterministic — only the per-index outputs
// are.
func ForWorker(n, workers int, fn func(worker, i int)) {
	workers = Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

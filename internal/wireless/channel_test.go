package wireless

import (
	"testing"
	"time"

	"vqprobe/internal/simnet"
)

func newLink(seed int64) (*simnet.Sim, *simnet.Link, *simnet.Node, *simnet.Node) {
	s := simnet.New(seed)
	a := s.NewNode("ap", 1)
	b := s.NewNode("phone", 2)
	l := simnet.ConnectSym(s, "wifi", a.AddNIC("wlan0"), b.AddNIC("wlan0"),
		simnet.LinkConfig{Rate: 70e6, Delay: 2 * time.Millisecond, Retries: 7, RetryBackoff: 100 * time.Microsecond})
	return s, l, a, b
}

func TestStrongSignalHighRate(t *testing.T) {
	s, l, _, _ := newLink(1)
	c := Attach(s, l, ChannelConfig{BaseRSSI: -45, RSSIStd: 1})
	if got := c.macRate(); got < 30e6 {
		t.Errorf("strong signal (-45dBm) rate = %.0f, want >= 30Mbit/s", got)
	}
	if c.tryLoss() > 0.05 {
		t.Errorf("strong signal per-try loss = %.3f, want small", c.tryLoss())
	}
}

func TestWeakSignalLowRate(t *testing.T) {
	s, l, _, _ := newLink(2)
	c := Attach(s, l, ChannelConfig{BaseRSSI: -85, RSSIStd: 1})
	if got := c.macRate(); got > 7e6 {
		t.Errorf("weak signal (-85dBm) rate = %.0f, want low", got)
	}
	if c.tryLoss() < 0.05 {
		t.Errorf("weak signal per-try loss = %.3f, want elevated", c.tryLoss())
	}
}

func TestRateMonotoneInRSSI(t *testing.T) {
	prev := -1.0
	for rssi := -95.0; rssi <= -40; rssi += 5 {
		s, l, _, _ := newLink(3)
		c := Attach(s, l, ChannelConfig{BaseRSSI: rssi})
		if r := c.macRate(); r < prev {
			t.Fatalf("rate not monotone: %.0f at %.0fdBm < %.0f below", r, rssi, prev)
		} else {
			prev = r
		}
	}
}

func TestInterferenceStealsAirtimeNotRSSI(t *testing.T) {
	s, l, _, _ := newLink(4)
	c := Attach(s, l, ChannelConfig{
		BaseRSSI:     -50,
		Interference: func(time.Duration) float64 { return 0.6 },
	})
	s.Run(3 * time.Second)
	if c.RSSI() < -60 {
		t.Errorf("interference should not tank RSSI, got %.1f", c.RSSI())
	}
	if c.Interference() != 0.6 {
		t.Errorf("interference = %.2f, want 0.6", c.Interference())
	}
	// Collisions show up as per-try loss on top of the SNR-driven rate.
	clean := Attach(simnet.New(5), mustLink(5), ChannelConfig{BaseRSSI: -50})
	if c.tryLoss() <= clean.tryLoss() {
		t.Errorf("interference tryLoss %.3f not above clean %.3f", c.tryLoss(), clean.tryLoss())
	}
}

func mustLink(seed int64) *simnet.Link {
	_, l, _, _ := newLink(seed)
	return l
}

func TestRSSISamplingAndVariation(t *testing.T) {
	s, l, _, _ := newLink(6)
	var samples []float64
	c := Attach(s, l, ChannelConfig{BaseRSSI: -60, RSSIStd: 3})
	c.OnSample = func(now time.Duration, rssi float64) { samples = append(samples, rssi) }
	s.Run(30 * time.Second)
	if len(samples) != 30 {
		t.Fatalf("got %d samples in 30s, want 30", len(samples))
	}
	var mean float64
	varied := false
	for i, v := range samples {
		mean += v
		if i > 0 && v != samples[0] {
			varied = true
		}
	}
	mean /= float64(len(samples))
	if mean < -70 || mean > -50 {
		t.Errorf("mean RSSI %.1f far from base -60", mean)
	}
	if !varied {
		t.Error("RSSI never varied despite RSSIStd=3")
	}
}

func TestMobilityWalkStaysBounded(t *testing.T) {
	s, l, _, _ := newLink(7)
	c := Attach(s, l, ChannelConfig{BaseRSSI: -60, RSSIStd: 1, Walk: 2})
	lo, hi := 0.0, -200.0
	c.OnSample = func(_ time.Duration, rssi float64) {
		if rssi < lo {
			lo = rssi
		}
		if rssi > hi {
			hi = rssi
		}
	}
	s.Run(10 * time.Minute)
	if lo < -95 || hi > -25 {
		t.Errorf("mobility walk escaped plausible range: [%.1f, %.1f]", lo, hi)
	}
	if hi-lo < 5 {
		t.Errorf("mobility produced almost no variation: [%.1f, %.1f]", lo, hi)
	}
}

func TestDeepFadeDisconnects(t *testing.T) {
	s, l, a, _ := newLink(8)
	Attach(s, l, ChannelConfig{BaseRSSI: -92, RSSIStd: 1})
	s.Run(2 * time.Minute)
	if a.NICs()[0].Disconnects == 0 {
		t.Error("expected disconnections at -92dBm")
	}
	// And the link must come back up at some point rather than staying
	// down forever.
	downAtEnd := l.Down()
	s.Run(4 * time.Minute)
	if downAtEnd && l.Down() {
		// Run further; with reassociation the link flaps rather than dies.
		t.Log("link still down; acceptable only if flapping")
	}
}

func Test3GRatesLower(t *testing.T) {
	s, l, _, _ := newLink(9)
	c := Attach(s, l, ChannelConfig{Tech: Tech3G, BaseRSSI: -60})
	if r := c.macRate(); r > 8e6 {
		t.Errorf("3G rate %.0f too high", r)
	}
	if c.Tech() != Tech3G {
		t.Errorf("Tech = %v", c.Tech())
	}
}

func TestRSSIFromDistance(t *testing.T) {
	near := RSSIFromDistance(1, 0)
	far := RSSIFromDistance(40, 0)
	if near < -45 || near > -35 {
		t.Errorf("1m RSSI = %.1f, want about -40", near)
	}
	if far > -80 {
		t.Errorf("40m RSSI = %.1f, want below -80", far)
	}
	if att := RSSIFromDistance(10, 15); att >= RSSIFromDistance(10, 0) {
		t.Error("attenuation must reduce RSSI")
	}
	if RSSIFromDistance(0.2, 0) != RSSIFromDistance(1, 0) {
		t.Error("distances under 1m clamp to 1m")
	}
}

func TestTransferFasterOnStrongSignal(t *testing.T) {
	// End-to-end sanity: the same TCP transfer should finish much
	// faster at -45dBm than at -85dBm.
	elapsed := func(rssi float64) time.Duration {
		s := simnet.New(11)
		ap := s.NewNode("ap", 1)
		ph := s.NewNode("phone", 2)
		apn, phn := ap.AddNIC("wlan0"), ph.AddNIC("wlan0")
		l := simnet.ConnectSym(s, "wifi", apn, phn,
			simnet.LinkConfig{Rate: 70e6, Delay: 2 * time.Millisecond, Retries: 7})
		Attach(s, l, ChannelConfig{BaseRSSI: rssi, RSSIStd: 1})
		// Push raw packets AP->phone and count arrival of the last one.
		var lastArrival time.Duration
		ph.SetHandler(simnet.HandlerFunc(func(*simnet.NIC, *simnet.Packet) { lastArrival = s.Now() }))
		for i := 0; i < 200; i++ {
			ap.Send(apn, s.NewPacket(simnet.FlowKey{Proto: simnet.ProtoUDP, Src: 1, Dst: 2}, 1460, nil))
		}
		s.Run(10 * time.Minute) // the channel ticker never drains; run bounded
		return lastArrival
	}
	strong, weak := elapsed(-45), elapsed(-85)
	if weak < 4*strong {
		t.Errorf("weak-signal drain %v not much slower than strong %v", weak, strong)
	}
}

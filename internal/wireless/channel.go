// Package wireless models the last-hop radio channel: received signal
// strength, SNR-driven PHY rates, link-layer retries, external
// interference, and disconnections.
//
// The model attaches to a simnet.Link and drives its dynamic rate, per-try
// loss and busy-fraction hooks, so the transport layer experiences low
// RSSI as "slow and retry-heavy" and interference as "less airtime and
// collisions with normal RSSI" — the physical distinction the paper's
// classifier exploits (only the mobile VP sees RSSI; the router and
// server must infer wireless trouble from RTT and retransmissions).
package wireless

import (
	"math"
	"time"

	"vqprobe/internal/simnet"
)

// Technology labels the radio in use; probes export it as a context
// attribute, never as a classifier feature (the paper's design is
// technology-agnostic).
type Technology string

// Supported radio technologies.
const (
	TechWiFi Technology = "wifi"
	Tech3G   Technology = "3g"
)

// ChannelConfig parameterizes a radio channel.
type ChannelConfig struct {
	Tech Technology

	// BaseRSSI is the mean received signal strength in dBm, derived
	// from distance and any attenuation the scenario applies. A healthy
	// nearby station sits around -45 dBm; the edge of coverage is
	// below -85 dBm.
	BaseRSSI float64
	// RSSIStd is the standard deviation of the per-second shadowing
	// variation around BaseRSSI.
	RSSIStd float64
	// Walk, when positive, adds a bounded random walk to the RSSI each
	// second (mobility). The value is the walk step std in dB.
	Walk float64
	// Interference is the fraction [0,1) of airtime stolen by other
	// transmitters on the channel, sampled each second; nil means no
	// interference. Interference also adds collision losses.
	Interference func(now time.Duration) float64
	// NoiseFloor in dBm. Zero selects -95 dBm.
	NoiseFloor float64
	// SampleInterval for the RSSI/interference processes. Zero selects
	// one second, matching the paper's collection interval.
	SampleInterval time.Duration
	// DisconnectBelow is the RSSI under which the link may flap. Zero
	// selects -88 dBm.
	DisconnectBelow float64
}

// Channel binds a radio model to a simulated link.
type Channel struct {
	sim  *simnet.Sim
	link *simnet.Link
	cfg  ChannelConfig

	rssi     float64
	rateCap  float64
	walkOff  float64
	interf   float64
	downTill time.Duration
	ticker   *simnet.Ticker

	// OnSample, if set, is invoked after each per-second update with
	// the current RSSI; the link-layer probe uses it to record the
	// signal time series exactly as the paper's probes did.
	OnSample func(now time.Duration, rssi float64)
}

// rateStep maps an SNR threshold to a usable MAC-layer rate (bit/s) and a
// per-attempt frame error probability. The table approximates single
// stream 802.11n MCS behaviour after MAC efficiency, spanning the 1-70
// Mbit/s range the paper quotes for 802.11 a/b/g/n.
type rateStep struct {
	minSNR  float64
	rate    float64
	tryLoss float64
}

var rateTable = []rateStep{
	{30, 70e6, 0.01},
	{25, 52e6, 0.015},
	{22, 39e6, 0.02},
	{18, 26e6, 0.03},
	{15, 19.5e6, 0.05},
	{12, 13e6, 0.08},
	{9, 6.5e6, 0.12},
	{5, 2e6, 0.22},
	{2, 1e6, 0.35},
	{math.Inf(-1), 0.5e6, 0.55},
}

// rate3GTable is the coarser cellular equivalent (HSPA-like).
var rate3GTable = []rateStep{
	{20, 7.2e6, 0.01},
	{12, 3.6e6, 0.03},
	{6, 1.8e6, 0.08},
	{2, 0.8e6, 0.2},
	{math.Inf(-1), 0.3e6, 0.45},
}

// Attach installs a radio model on link. The channel drives the link's
// rate, per-try loss and interference busy fraction in both directions
// and starts the per-second sampling process.
func Attach(sim *simnet.Sim, link *simnet.Link, cfg ChannelConfig) *Channel {
	if cfg.NoiseFloor == 0 {
		cfg.NoiseFloor = -95
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = time.Second
	}
	if cfg.DisconnectBelow == 0 {
		cfg.DisconnectBelow = -88
	}
	if cfg.Tech == "" {
		cfg.Tech = TechWiFi
	}
	c := &Channel{sim: sim, link: link, cfg: cfg, rssi: cfg.BaseRSSI}
	for _, d := range []simnet.Direction{simnet.AtoB, simnet.BtoA} {
		d := d
		link.SetRateFn(d, func(now time.Duration) float64 { return c.macRate() })
		link.SetPerTryLossFn(d, func(now time.Duration) float64 { return c.tryLoss() })
		link.AddBusyFn(d, func(now time.Duration) float64 { return c.interf })
	}
	c.sample(0) // establish initial state
	c.ticker = simnet.NewTicker(sim, cfg.SampleInterval, c.sample)
	return c
}

// Stop halts the channel's sampling process.
func (c *Channel) Stop() { c.ticker.Stop() }

// RSSI returns the current received signal strength in dBm.
func (c *Channel) RSSI() float64 { return c.rssi }

// SNR returns the current signal-to-noise ratio in dB. Interference
// raises the effective noise floor slightly (co-channel energy).
func (c *Channel) SNR() float64 {
	noise := c.cfg.NoiseFloor + 6*c.interf
	return c.rssi - noise
}

// Interference returns the current stolen-airtime fraction.
func (c *Channel) Interference() float64 { return c.interf }

// Tech returns the radio technology of the channel.
func (c *Channel) Tech() Technology { return c.cfg.Tech }

func (c *Channel) table() []rateStep {
	if c.cfg.Tech == Tech3G {
		return rate3GTable
	}
	return rateTable
}

func (c *Channel) step() rateStep {
	snr := c.SNR()
	for _, s := range c.table() {
		if snr >= s.minSNR {
			return s
		}
	}
	return c.table()[len(c.table())-1]
}

// macRate is the rate the link serves foreground packets at, given the
// current SNR-selected modulation and any shaping cap.
func (c *Channel) macRate() float64 {
	r := c.step().rate
	if c.rateCap > 0 && c.rateCap < r {
		r = c.rateCap
	}
	return r
}

// tryLoss is the per-attempt frame error probability. Collisions from
// interference add on top of the SNR-driven error rate.
func (c *Channel) tryLoss() float64 {
	p := c.step().tryLoss
	p += 0.5 * c.interf * c.interf // collision probability grows superlinearly
	if p > 0.9 {
		p = 0.9
	}
	return p
}

// sample advances the per-second RSSI/interference processes.
func (c *Channel) sample(now time.Duration) {
	rng := c.sim.Rand()
	if c.cfg.Walk > 0 {
		c.walkOff += rng.NormFloat64() * c.cfg.Walk
		// Mean-revert so mobility wanders but does not drift away.
		c.walkOff *= 0.97
		if c.walkOff > 20 {
			c.walkOff = 20
		}
		if c.walkOff < -25 {
			c.walkOff = -25
		}
	}
	c.rssi = c.cfg.BaseRSSI + c.walkOff + rng.NormFloat64()*c.cfg.RSSIStd
	if c.cfg.Interference != nil {
		c.interf = clamp01(c.cfg.Interference(now))
	}

	// Deep fades flap the association.
	if c.link.Down() {
		if now >= c.downTill {
			c.link.SetDown(false)
		}
	} else if c.rssi < c.cfg.DisconnectBelow && rng.Float64() < 0.3 {
		c.link.SetDown(true)
		c.downTill = now + time.Duration(1+rng.Intn(4))*time.Second
	}

	if c.OnSample != nil {
		c.OnSample(now, c.rssi)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 0.98 {
		return 0.98
	}
	return v
}

// RSSIFromDistance converts a distance in meters (plus extra attenuation
// in dB) into a mean RSSI using a log-distance path loss model with
// exponent 3.0 and 20 dBm transmit power, calibrated so 1m yields about
// -40 dBm and 40m about -88 dBm.
func RSSIFromDistance(meters, attenuationDB float64) float64 {
	if meters < 1 {
		meters = 1
	}
	return -40 - 30*math.Log10(meters) - attenuationDB
}

// SetRateCap caps the channel's MAC rate regardless of SNR; zero removes
// the cap. LAN shaping faults (802.11 a/b/g/n rate limits of 1-70
// Mbit/s) are applied through this hook.
func (c *Channel) SetRateCap(bps float64) { c.rateCap = bps }

// SetBaseRSSI moves the mean signal strength (poor-reception faults:
// distance and attenuation).
func (c *Channel) SetBaseRSSI(dbm float64) { c.cfg.BaseRSSI = dbm }

// SetInterference installs or replaces the stolen-airtime process.
func (c *Channel) SetInterference(fn func(now time.Duration) float64) { c.cfg.Interference = fn }

// Disconnect forces the association down for dur: the flap-recovery
// logic will not re-associate before the outage ends. Wild-scenario
// mobility uses a long dur to model a user walking out of coverage
// mid-session.
func (c *Channel) Disconnect(dur time.Duration) {
	c.link.SetDown(true)
	c.downTill = c.sim.Now() + dur
}

// Package sketch provides the repo's exact mergeable histogram sketch:
// the fixed-bin streaming percentile structure shared by the fleet
// aggregation layer (windowed fleet summaries) and the obs telemetry
// plane (live p50/p95/p99 over ring-store samples). Keeping one
// implementation means fleet quantiles and obs quantiles are computed
// by byte-identical machinery — a p99 in a fleet report and a p99 on a
// live dashboard can never disagree about what "p99" means.
package sketch

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Hist is a fixed-bin histogram sketch: the streaming, mergeable
// percentile structure the aggregation layers use. Bin edges are fixed
// at construction, counts are integers, so merging two histograms is
// exact bin-wise addition — commutative and associative, which is what
// makes a merged summary independent of merge order and worker count
// (a t-digest would trade that exactness for adaptive resolution).
//
// Values below the first edge land in bin 0; values at or above the
// last edge land in the final (overflow) bin. Quantiles interpolate
// linearly inside a bin, so their error is bounded by bin width.
type Hist struct {
	// Edges are the n-1 interior bin boundaries for n bins, ascending.
	Edges []float64 `json:"edges"`
	// Counts has len(Edges)+1 bins.
	Counts []uint64 `json:"counts"`
	// N is the total observation count (sum of Counts).
	N uint64 `json:"n"`
	// Sum accumulates raw values for exact means.
	Sum float64 `json:"sum"`
	// Min/Max track exact extremes; meaningful only when N > 0.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// NewHist builds a histogram over the given interior edges (ascending,
// at least one). The edge slice is retained, not copied; callers pass
// literals or shared edge sets.
func NewHist(edges []float64) *Hist {
	if len(edges) == 0 {
		panic("sketch: NewHist needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			panic("sketch: NewHist edges must ascend")
		}
	}
	return &Hist{Edges: edges, Counts: make([]uint64, len(edges)+1)}
}

// LinearEdges returns n-1 evenly spaced interior edges spanning
// [lo, hi], producing n equal-width bins plus the two open tails.
func LinearEdges(lo, hi float64, n int) []float64 {
	edges := make([]float64, n-1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i+1)/float64(n)
	}
	return edges
}

// LogEdges returns geometrically spaced interior edges from lo to hi
// (both positive), matching the dynamic range of latency-like metrics.
func LogEdges(lo, hi float64, n int) []float64 {
	edges := make([]float64, n-1)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range edges {
		edges[i] = v
		v *= ratio
	}
	return edges
}

// Add records one observation. NaN observations are dropped — they
// carry no orderable value and would poison Sum.
func (h *Hist) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.Counts[h.bin(v)]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// bin maps a value to its bin index: bin i covers [Edges[i-1],
// Edges[i]), so the index is the number of edges <= v.
func (h *Hist) bin(v float64) int {
	return sort.Search(len(h.Edges), func(i int) bool { return h.Edges[i] > v })
}

// Merge adds o's bins into h. The histograms must share an edge set.
//
//lint:deterministic shard-merge order must not change merged bytes; wall-derived inputs would
func (h *Hist) Merge(o *Hist) {
	if len(h.Edges) != len(o.Edges) {
		panic("sketch: merging histograms with different shapes")
	}
	if o.N == 0 {
		return
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	if h.N == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if h.N == 0 || o.Max > h.Max {
		h.Max = o.Max
	}
	h.N += o.N
	h.Sum += o.Sum
}

// Reset zeroes the histogram for reuse, keeping the edge set.
func (h *Hist) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.N, h.Sum, h.Min, h.Max = 0, 0, 0, 0
}

// Mean returns the exact mean of all observations (0 when empty).
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the containing bin, clamped to the observed
// [Min, Max]. Returns 0 when the histogram is empty.
func (h *Hist) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	target := q * float64(h.N)
	var cum float64
	for i, c := range h.Counts {
		next := cum + float64(c)
		if next >= target && c > 0 {
			lo, hi := h.binBounds(i)
			frac := (target - cum) / float64(c)
			return clampf(lo+(hi-lo)*frac, h.Min, h.Max)
		}
		cum = next
	}
	return h.Max
}

// binBounds returns the value range bin i covers, substituting the
// observed extremes for the open tails.
func (h *Hist) binBounds(i int) (lo, hi float64) {
	if i == 0 {
		return h.Min, h.Edges[0]
	}
	if i == len(h.Edges) {
		return h.Edges[len(h.Edges)-1], h.Max
	}
	return h.Edges[i-1], h.Edges[i]
}

// AppendTo renders the histogram's headline statistics into b in a
// fixed format (part of the byte-stable fleet summary encoding).
func (h *Hist) AppendTo(b *strings.Builder, name, unit string) {
	fmt.Fprintf(b, "  %-12s n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g %s\n",
		name, h.N, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max, unit)
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

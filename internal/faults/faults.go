// Package faults implements the induced-problem catalogue of the paper's
// Table 2. Each injector maps a fault kind plus a continuous intensity
// in [0,1] onto concrete knob settings of the simulated testbed, the
// same way the authors drove tc/netem, iperf, stress, attenuation and a
// competing WLAN.
//
//	Simulated Problem       Paper's tool          This package
//	LAN shaping             tc/netem (1-70Mb/s)   wireless rate cap
//	WAN shaping             tc/netem (Table 3)    WAN rate/delay/loss change
//	LAN congestion          iperf UDP             fluid congestor on the WiFi link
//	WAN congestion          iperf UDP             fluid congestor on the WAN link
//	Mobile load             stress                hardware.Device.Stress
//	Poor signal             distance/attenuation  lower base RSSI
//	WiFi interference       adjacent WLAN         channel busy fraction + collisions
package faults

import (
	"math/rand"
	"time"

	"vqprobe/internal/hardware"
	"vqprobe/internal/qoe"
	"vqprobe/internal/simnet"
	"vqprobe/internal/traffic"
	"vqprobe/internal/wireless"
)

// Spec is one induced problem instance.
type Spec struct {
	Fault qoe.Fault
	// Intensity in [0,1]: 0 is barely perceptible, 1 is the worst the
	// testbed produces. The QoE label (mild/severe) is derived from the
	// measured MOS, not from this knob, mirroring the paper's protocol.
	Intensity float64
}

// Target collects the testbed components an injector may touch.
type Target struct {
	Rng     *rand.Rand
	Sim     *simnet.Sim
	WANLink *simnet.Link
	// WANDown is the direction of the WAN link that carries video data
	// toward the client.
	WANDown simnet.Direction
	WiFi    *simnet.Link
	// WiFiDown is the direction of the WiFi link toward the client.
	WiFiDown simnet.Direction
	Channel  *wireless.Channel
	Device   *hardware.Device
	SrvLoad  *traffic.ServerLoad
}

// Apply injects the fault into the target during [from, from+dur).
// Shaping faults and poor signal act on static link/channel state and
// are applied for the whole run when from is zero (the controlled
// testbed keeps a fault active for the entire session, as the paper's
// scenarios did).
func Apply(t Target, s Spec, from, dur time.Duration) {
	i := clamp01(s.Intensity)
	switch s.Fault {
	case qoe.FaultNone:
		return

	case qoe.LANShaping:
		// 802.11 a/b/g/n per-stream rates span 1-70 Mbit/s; shaping
		// drags the cap from comfortable down to painful.
		cap := lerp(12e6, 0.5e6, i)
		t.Channel.SetRateCap(jitter(t.Rng, cap, 0.1))

	case qoe.WANShaping:
		base := t.WANLink.Config(t.WANDown)
		rate := base.Rate * lerp(0.85, 0.15, i)
		t.WANLink.SetRateFn(t.WANDown, func(time.Duration) float64 { return rate })
		t.WANLink.SetDelay(t.WANDown, base.Delay+time.Duration(lerp(20, 250, i))*time.Millisecond)
		t.WANLink.SetLoss(t.WANDown, lerp(0.003, 0.03, i)) // up to and past the Table 2 values

	case qoe.LANCongestion:
		level := lerp(0.8, 0.975, i)
		traffic.AttachCongestor(t.Sim, t.WiFi, t.WiFiDown, level, from, dur)
		// The reverse path shares the medium; ACKs contend too.
		traffic.AttachCongestor(t.Sim, t.WiFi, 1-t.WiFiDown, level*0.5, from, dur)

	case qoe.WANCongestion:
		level := lerp(0.35, 0.95, i)
		traffic.AttachCongestor(t.Sim, t.WANLink, t.WANDown, level, from, dur)
		if t.SrvLoad != nil {
			t.SrvLoad.Boost(lerp(0.1, 0.5, i), from, dur)
		}

	case qoe.MobileLoad:
		cpu := lerp(50, 95, i)
		mem := lerp(80, 400, i)
		io := lerp(10, 45, i)
		t.Device.Stress(jitter(t.Rng, cpu, 0.08), mem, io, from, dur)

	case qoe.LowRSSI:
		// Distance plus attenuation: from the edge of comfort down to
		// the edge of association.
		t.Channel.SetBaseRSSI(lerp(-74, -90, i) + t.Rng.NormFloat64()*1.5)

	case qoe.WiFiInterference:
		level := lerp(0.45, 0.9, i)
		rng := t.Rng
		t.Channel.SetInterference(func(now time.Duration) float64 {
			if now < from || now >= from+dur {
				return 0
			}
			// A competing WLAN duty-cycles; its offered load breathes.
			return clamp01(level * (0.75 + 0.5*rng.Float64()))
		})
	}
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }

func jitter(rng *rand.Rand, v, frac float64) float64 {
	return v * (1 + frac*(rng.Float64()*2-1))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

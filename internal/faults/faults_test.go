package faults

import (
	"math/rand"
	"testing"
	"time"

	"vqprobe/internal/hardware"
	"vqprobe/internal/qoe"
	"vqprobe/internal/simnet"
	"vqprobe/internal/traffic"
	"vqprobe/internal/wireless"
)

// world builds a minimal two-link topology with every knob an injector
// can touch.
func world(seed int64) (Target, *simnet.Sim) {
	sim := simnet.New(seed)
	phone := sim.NewNode("phone", 1)
	router := sim.NewNode("router", 100)
	server := sim.NewNode("server", 2)
	pn := phone.AddNIC("wlan0")
	rl := router.AddNIC("wlan0")
	rw := router.AddNIC("eth0")
	sn := server.AddNIC("eth0")
	wifi := simnet.ConnectSym(sim, "wifi", pn, rl,
		simnet.LinkConfig{Rate: 70e6, Delay: 2 * time.Millisecond, Retries: 7})
	wan := simnet.ConnectSym(sim, "wan", rw, sn,
		simnet.LinkConfig{Rate: 7.8e6, Delay: 50 * time.Millisecond})
	chn := wireless.Attach(sim, wifi, wireless.ChannelConfig{BaseRSSI: -50})
	dev := hardware.NewDevice(sim, hardware.ProfileGalaxyS2)
	load := traffic.NewServerLoad(sim, 0.1, 0.02)
	return Target{
		Rng: rand.New(rand.NewSource(seed)), Sim: sim,
		WANLink: wan, WANDown: simnet.BtoA,
		WiFi: wifi, WiFiDown: simnet.BtoA,
		Channel: chn, Device: dev, SrvLoad: load,
	}, sim
}

func TestFaultNoneIsNoOp(t *testing.T) {
	tgt, sim := world(1)
	before := tgt.WANLink.Config(simnet.BtoA)
	Apply(tgt, Spec{Fault: qoe.FaultNone, Intensity: 1}, 0, time.Hour)
	sim.Run(5 * time.Second)
	after := tgt.WANLink.Config(simnet.BtoA)
	if before != after {
		t.Error("FaultNone modified the WAN link")
	}
}

func TestWANShapingChangesLink(t *testing.T) {
	tgt, _ := world(2)
	base := tgt.WANLink.Config(simnet.BtoA)
	Apply(tgt, Spec{Fault: qoe.WANShaping, Intensity: 0.8}, 0, time.Hour)
	cfgAfter := tgt.WANLink.Config(simnet.BtoA)
	if cfgAfter.Delay <= base.Delay {
		t.Error("WAN shaping did not add delay")
	}
	if cfgAfter.Loss <= base.Loss {
		t.Error("WAN shaping did not add loss")
	}
}

func TestWANShapingIntensityMonotone(t *testing.T) {
	delayAt := func(i float64) time.Duration {
		tgt, _ := world(3)
		Apply(tgt, Spec{Fault: qoe.WANShaping, Intensity: i}, 0, time.Hour)
		return tgt.WANLink.Config(simnet.BtoA).Delay
	}
	if delayAt(0.9) <= delayAt(0.1) {
		t.Error("higher intensity should add more delay")
	}
}

func TestLANShapingCapsChannelRate(t *testing.T) {
	// Build an inline world so the router node is reachable, drain a
	// packet train router->phone, and compare with/without the cap.
	elapsed := func(intensity float64) time.Duration {
		sim := simnet.New(5)
		phone := sim.NewNode("phone", 1)
		router := sim.NewNode("router", 100)
		pn, rl := phone.AddNIC("wlan0"), router.AddNIC("wlan0")
		wifi := simnet.ConnectSym(sim, "wifi", pn, rl,
			simnet.LinkConfig{Rate: 70e6, Delay: 2 * time.Millisecond, Retries: 7, QueueBytes: 1 << 20})
		chn := wireless.Attach(sim, wifi, wireless.ChannelConfig{BaseRSSI: -50})
		tgt := Target{Rng: rand.New(rand.NewSource(5)), Sim: sim,
			WiFi: wifi, WiFiDown: simnet.BtoA, Channel: chn,
			Device: hardware.NewDevice(sim, hardware.ProfileGalaxyS2)}
		if intensity > 0 {
			Apply(tgt, Spec{Fault: qoe.LANShaping, Intensity: intensity}, 0, time.Hour)
		}
		var last time.Duration
		phone.SetHandler(simnet.HandlerFunc(func(*simnet.NIC, *simnet.Packet) { last = sim.Now() }))
		for i := 0; i < 50; i++ {
			router.Send(rl, sim.NewPacket(simnet.FlowKey{Proto: simnet.ProtoUDP, Src: 100, Dst: 1}, 1460, nil))
		}
		sim.Run(time.Minute)
		return last
	}
	fast, slow := elapsed(0), elapsed(1)
	if slow < 5*fast {
		t.Errorf("LAN shaping barely slowed the link: %v vs %v", slow, fast)
	}
}

func TestMobileLoadStressesDevice(t *testing.T) {
	tgt, sim := world(6)
	Apply(tgt, Spec{Fault: qoe.MobileLoad, Intensity: 0.9}, 0, time.Minute)
	sim.Run(10 * time.Second)
	if tgt.Device.CPU() < 60 {
		t.Errorf("mobile load fault: CPU %.1f, want high", tgt.Device.CPU())
	}
}

func TestLowRSSIDropsSignal(t *testing.T) {
	tgt, sim := world(7)
	before := tgt.Channel.RSSI()
	Apply(tgt, Spec{Fault: qoe.LowRSSI, Intensity: 0.9}, 0, time.Hour)
	sim.Run(3 * time.Second)
	if tgt.Channel.RSSI() > before-20 {
		t.Errorf("low-RSSI fault: %.1f -> %.1f, want a big drop", before, tgt.Channel.RSSI())
	}
}

func TestInterferenceWindowed(t *testing.T) {
	tgt, sim := world(8)
	Apply(tgt, Spec{Fault: qoe.WiFiInterference, Intensity: 0.9}, 10*time.Second, 10*time.Second)
	sim.Run(5 * time.Second)
	if tgt.Channel.Interference() > 0.01 {
		t.Errorf("interference active before its window: %.2f", tgt.Channel.Interference())
	}
	sim.Run(15 * time.Second)
	if tgt.Channel.Interference() < 0.3 {
		t.Errorf("interference %.2f inside window, want strong", tgt.Channel.Interference())
	}
	sim.Run(25 * time.Second)
	if tgt.Channel.Interference() > 0.01 {
		t.Errorf("interference %.2f after window, want zero", tgt.Channel.Interference())
	}
}

func TestCongestionBoostsServerLoad(t *testing.T) {
	tgt, sim := world(9)
	Apply(tgt, Spec{Fault: qoe.WANCongestion, Intensity: 1}, 0, time.Minute)
	sim.Run(5 * time.Second)
	if tgt.SrvLoad.Level(sim.Now()) < 0.3 {
		t.Errorf("WAN congestion should boost server load, got %.2f", tgt.SrvLoad.Level(sim.Now()))
	}
}

func TestIntensityClamped(t *testing.T) {
	tgt, _ := world(10)
	// Out-of-range intensities must not panic or produce absurd knobs.
	Apply(tgt, Spec{Fault: qoe.WANShaping, Intensity: 5}, 0, time.Hour)
	Apply(tgt, Spec{Fault: qoe.LowRSSI, Intensity: -3}, 0, time.Hour)
	if tgt.Channel.RSSI() < -120 {
		t.Errorf("clamping failed: RSSI %.1f", tgt.Channel.RSSI())
	}
}

package route

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxLine bounds one NDJSON line in either direction (1 MiB, matching
// vqserve's ingest bound).
const maxLine = 1 << 20

// rowRef is one input row in flight: its slot in the merged response
// and the raw line forwarded verbatim to whichever replica serves it.
type rowRef struct {
	slot int
	id   string
	line []byte
}

// errLine renders the router's own per-row answer in the same NDJSON
// shape replicas use, so clients never see two result dialects.
func errLine(id, msg string) []byte {
	b, err := json.Marshal(struct {
		ID  string `json:"id,omitempty"`
		Err string `json:"error"`
	}{ID: id, Err: msg})
	if err != nil {
		// Marshal of two strings cannot fail; keep the row answered anyway.
		return []byte(`{"error":"internal: unrenderable error"}`)
	}
	return b
}

// Handler returns the router's HTTP surface:
//
//	POST /diagnose   NDJSON batch: rows fan out to replicas by session
//	                 ID (sticky consistent hash, least-loaded fallback),
//	                 answers merge back in input order
//	GET  /healthz    router + per-replica state summary
//	GET  /metrics    Prometheus text exposition
//	POST /-/rollout  staged model rollout across the fleet (?hash=
//	                 pins the expected snapshot hash)
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/diagnose", rt.handleDiagnose)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.Handle("/metrics", rt.reg.Handler())
	mux.HandleFunc("/-/rollout", rt.handleRollout)
	return mux
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	sts := rt.Statuses()
	var healthy, degraded, down int
	for _, s := range sts {
		switch s.State {
		case "healthy":
			healthy++
		case "degraded":
			degraded++
		case "down":
			down++
		}
	}
	status, code := "ok", http.StatusOK
	switch {
	case down == len(sts):
		status, code = "down", http.StatusServiceUnavailable
	case degraded+down > 0:
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"healthy":  healthy,
		"degraded": degraded,
		"down":     down,
		"replicas": sts,
	})
}

// retryAfterSeconds renders the Retry-After hint, rounding up so a
// sub-second configuration never advertises "0".
func (rt *Router) retryAfterSeconds() string {
	secs := (rt.cfg.RetryAfter + time.Second - 1) / time.Second
	return strconv.FormatInt(int64(secs), 10)
}

func (rt *Router) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST NDJSON to /diagnose", http.StatusMethodNotAllowed)
		return
	}
	rt.obs.requests.Inc()

	// Fleet-wide outage answers before any routing work: there is no
	// capacity problem to back off from, the tier is simply gone.
	anyRoutable := false
	for _, rep := range rt.reps {
		if rep.routable() {
			anyRoutable = true
			break
		}
	}
	if !anyRoutable {
		http.Error(w, "no replica available: entire fleet is down", http.StatusServiceUnavailable)
		return
	}

	// The shared context ties every upstream sub-request to the
	// downstream client: an aborted client write (or disconnect — the
	// server cancels r.Context() then) cancels all in-flight replica
	// requests instead of leaking them.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	var t0 time.Time
	if rt.cfg.Clock != nil {
		t0 = rt.cfg.Clock()
	}

	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	var (
		results [][]byte
		perRep  = make([][]rowRef, len(rt.reps))
		lineno  int
		rowsIn  int
		shedN   int
	)
	shedMsg := "router overloaded: no replica with capacity; retry after " + rt.retryAfterSeconds() + "s"
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var hdr struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(line, &hdr); err != nil {
			// A line the router cannot parse would fail at the replica
			// too; answering it locally keeps true input line numbers,
			// which sub-batches would otherwise renumber.
			results = append(results, errLine("", fmt.Sprintf("line %d: %v", lineno, err)))
			continue
		}
		rowsIn++
		slot := len(results)
		results = append(results, nil)
		idx := rt.route(hdr.ID, 1, nil)
		if idx < 0 {
			shedN++
			results[slot] = errLine(hdr.ID, shedMsg)
			continue
		}
		perRep[idx] = append(perRep[idx], rowRef{slot: slot, id: hdr.ID, line: append([]byte(nil), line...)})
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(results) == 0 {
		http.Error(w, "empty request body", http.StatusBadRequest)
		return
	}
	rt.obs.rows.Add(uint64(rowsIn))
	if shedN > 0 {
		rt.obs.shed.Add(uint64(shedN))
	}

	// Backpressure propagation: a batch the router could not place at
	// all is one HTTP-level rejection with a backoff hint, not a retry
	// storm into saturated queues.
	if rowsIn > 0 && shedN == rowsIn {
		w.Header().Set("Retry-After", rt.retryAfterSeconds())
		http.Error(w, shedMsg, http.StatusTooManyRequests)
		return
	}

	var wg sync.WaitGroup
	for idx := range perRep {
		if len(perRep[idx]) == 0 {
			continue
		}
		wg.Add(1)
		go func(idx int, rows []rowRef) {
			defer wg.Done()
			rt.proxyRows(ctx, idx, rows, results)
		}(idx, perRep[idx])
	}
	wg.Wait()

	if rt.cfg.Clock != nil {
		rt.obs.proxyHist.Observe(rt.cfg.Clock().Sub(t0).Seconds())
	}
	// Client hung up while the fleet was answering: the upstream
	// requests were canceled with it, and there is no socket worth
	// serializing to.
	if r.Context().Err() != nil {
		return
	}
	if shedN > 0 {
		w.Header().Set("Retry-After", rt.retryAfterSeconds())
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	for i := range results {
		line := results[i]
		if line == nil {
			// Defensive: every slot is answered exactly once above; an
			// unanswered one is a router bug, surfaced not hidden.
			line = errLine("", "internal: row lost by router")
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			// Dead client mid-merge: cancel any stragglers and stop.
			cancel()
			return
		}
	}
}

// proxyRows drives one replica sub-batch to completion: send, collect
// per-row answers, and on a mid-stream replica failure fail the
// *unserved* tail over to the least-loaded healthy peer — rows already
// answered stay answered, so every row the router acknowledged is
// classified exactly once regardless of how many replicas die on it.
func (rt *Router) proxyRows(ctx context.Context, idx int, rows []rowRef, results [][]byte) {
	tried := make([]bool, len(rt.reps))
	for {
		tried[idx] = true
		rep := rt.reps[idx]
		unserved, reason := rt.sendBatch(ctx, rep, rows, results)
		if len(unserved) == 0 {
			rt.noteServed(rep, len(rows))
			return
		}
		if served := len(rows) - len(unserved); served > 0 {
			rep.rowsC.Add(uint64(served))
		}
		rows = unserved
		if ctx.Err() != nil {
			// The downstream client is gone (or the batch was aborted):
			// not a replica fault, so no failure accounting and no
			// failover — just answer the slots for the merge's
			// invariant and stop.
			for _, rw := range rows {
				results[rw.slot] = errLine(rw.id, "request canceled")
			}
			return
		}
		rt.noteFailure(rep, reason)
		rt.obs.failovers.Inc()
		rt.logf("failover", "from", rep.url, "rows", len(rows), "reason", reason)
		next := rt.route("", len(rows), func(i int) bool { return tried[i] })
		if next < 0 {
			for _, rw := range rows {
				results[rw.slot] = errLine(rw.id, "no healthy replica available: "+reason)
			}
			rt.obs.shed.Add(uint64(len(rows)))
			return
		}
		idx = next
	}
}

// sendBatch posts one sub-batch to a replica and maps its NDJSON
// answer lines back onto the rows' slots, in order — vqserve preserves
// input order, which is what makes the k-th answer line the k-th
// row's. It returns the unserved tail (empty on success) and the
// failure reason.
func (rt *Router) sendBatch(ctx context.Context, rep *replica, rows []rowRef, results [][]byte) ([]rowRef, string) {
	n := int64(len(rows))
	rep.inflight.Add(n)
	rep.inflightG.Set(float64(rep.inflight.Load()))
	defer func() {
		rep.inflight.Add(-n)
		rep.inflightG.Set(float64(rep.inflight.Load()))
	}()

	var buf bytes.Buffer
	for _, rw := range rows {
		buf.Write(rw.line)
		buf.WriteByte('\n')
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/diagnose", &buf)
	if err != nil {
		return rows, err.Error()
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := rt.client.Do(req)
	if err != nil {
		return rows, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return rows, fmt.Sprintf("replica HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	served := 0
	for served < len(rows) && sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		results[rows[served].slot] = append([]byte(nil), line...)
		served++
	}
	if err := sc.Err(); err != nil {
		return rows[served:], fmt.Sprintf("response stream broke after %d of %d rows: %v", served, len(rows), err)
	}
	if served < len(rows) {
		return rows[served:], fmt.Sprintf("replica answered %d of %d rows", served, len(rows))
	}
	return nil, ""
}

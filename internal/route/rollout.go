package route

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// StageResult records what happened to one replica during a rollout.
type StageResult struct {
	Replica string `json:"replica"`
	Outcome string `json:"outcome"` // canary | reloaded | skipped_down | failed
	Hash    string `json:"hash,omitempty"`
	Error   string `json:"error,omitempty"`
}

// RolloutReport is the full account of one staged rollout attempt.
type RolloutReport struct {
	Status string        `json:"status"` // complete | held
	Reason string        `json:"reason,omitempty"`
	Canary string        `json:"canary,omitempty"`
	Hash   string        `json:"hash,omitempty"`
	Stages []StageResult `json:"stages"`
}

// ErrRolloutInProgress reports a rollout attempted while another holds
// the coordinator lock.
var ErrRolloutInProgress = errors.New("route: a staged rollout is already in progress")

// Rollout pushes a new model across the fleet in stages:
//
//  1. Refresh every replica's health; a Degraded replica anywhere
//     holds the rollout — it is already serving a last-good model, and
//     moving the rest of the fleet would widen the version split.
//  2. Reload the canary (first live replica in config order) and
//     verify its post-reload /healthz: status ok and, when expectHash
//     is given, the advertised snapshot hash matches.
//  3. Send canary traffic through the reloaded replica's /diagnose and
//     require a clean classification.
//  4. Fan out sequentially to the remaining live replicas, verifying
//     after each reload that its hash equals the canary's — a mismatch
//     is a split brain (replicas loading different artifacts) and
//     halts the fan-out where it stands.
//
// Down replicas are skipped (they re-join on their next successful
// probe and must be rolled again by the operator — the report says so).
// Any hold increments vqroute_rollouts_held_total and leaves the fleet
// as the failure found it; nothing is rolled back automatically because
// replicas keep serving their last-good snapshot either way.
func (rt *Router) Rollout(ctx context.Context, expectHash string) (RolloutReport, error) {
	if !rt.rolloutMu.TryLock() {
		return RolloutReport{}, ErrRolloutInProgress
	}
	defer rt.rolloutMu.Unlock()

	rep := RolloutReport{Status: "held"}
	held := func(reason string) (RolloutReport, error) {
		rep.Reason = reason
		rt.obs.rolloutsHeld.Inc()
		rt.logf("rollout held", "reason", reason)
		return rep, nil
	}

	// Stage 0: fresh fleet view. Routing state may be minutes stale
	// relative to a deliberate model push.
	rt.PollHealth(ctx)
	var canary *replica
	for _, r := range rt.reps {
		switch State(r.state.Load()) {
		case Degraded:
			r.mu.Lock()
			why := r.lastErr
			r.mu.Unlock()
			return held(fmt.Sprintf("replica %s is degraded (%s); fix or eject it before rolling out", r.url, why))
		case Healthy:
			if canary == nil {
				canary = r
			}
		}
	}
	if canary == nil {
		return held("no healthy replica to canary")
	}
	rep.Canary = canary.url

	// Stage 1: canary reload + hash verification.
	hash, err := rt.reloadOne(ctx, canary)
	if err != nil {
		rep.Stages = append(rep.Stages, StageResult{Replica: canary.url, Outcome: "failed", Error: err.Error()})
		return held(fmt.Sprintf("canary %s reload failed: %v", canary.url, err))
	}
	if expectHash != "" && hash != expectHash {
		rep.Stages = append(rep.Stages, StageResult{Replica: canary.url, Outcome: "failed", Hash: hash})
		return held(fmt.Sprintf("canary %s loaded hash %s, expected %s", canary.url, hash, expectHash))
	}
	rep.Hash = hash

	// Stage 2: canary traffic. A model that loads but cannot classify
	// must not reach the rest of the fleet.
	if err := rt.canaryProbe(ctx, canary); err != nil {
		rep.Stages = append(rep.Stages, StageResult{Replica: canary.url, Outcome: "failed", Hash: hash, Error: err.Error()})
		return held(fmt.Sprintf("canary %s traffic probe failed: %v", canary.url, err))
	}
	rep.Stages = append(rep.Stages, StageResult{Replica: canary.url, Outcome: "canary", Hash: hash})
	rt.logf("rollout canary verified", "replica", canary.url, "hash", hash)

	// Stage 3: sequential fan-out with the split-brain guard.
	for _, r := range rt.reps {
		if r == canary {
			continue
		}
		if State(r.state.Load()) == Down {
			rep.Stages = append(rep.Stages, StageResult{Replica: r.url, Outcome: "skipped_down"})
			continue
		}
		h, err := rt.reloadOne(ctx, r)
		if err != nil {
			rep.Stages = append(rep.Stages, StageResult{Replica: r.url, Outcome: "failed", Error: err.Error()})
			return held(fmt.Sprintf("fan-out to %s failed: %v", r.url, err))
		}
		if h != hash {
			rep.Stages = append(rep.Stages, StageResult{Replica: r.url, Outcome: "failed", Hash: h})
			return held(fmt.Sprintf("split brain: %s loaded hash %s, canary has %s", r.url, h, hash))
		}
		rep.Stages = append(rep.Stages, StageResult{Replica: r.url, Outcome: "reloaded", Hash: h})
		rt.logf("rollout fan-out step", "replica", r.url, "hash", h)
	}

	rep.Status = "complete"
	rep.Reason = ""
	rt.obs.rollouts.Inc()
	rt.logf("rollout complete", "hash", hash, "stages", len(rep.Stages))
	return rep, nil
}

// reloadOne POSTs /-/reload to a replica and verifies the post-reload
// /healthz, returning the snapshot hash now being served.
func (rt *Router) reloadOne(ctx context.Context, rep *replica) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/-/reload", nil)
	if err != nil {
		return "", err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.noteFailure(rep, err.Error())
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		// The replica keeps its last-good model and reports degraded on
		// its own /healthz; fold that into our view immediately.
		rt.pollOne(ctx, rep)
		return "", fmt.Errorf("reload HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	hb, err := rt.fetchHealthz(ctx, rep)
	if err != nil {
		rt.noteFailure(rep, err.Error())
		return "", fmt.Errorf("post-reload healthz: %w", err)
	}
	if hb.Status != "ok" {
		rt.noteDegraded(rep, hb.Model.SnapshotHash, hb.LastReloadError)
		return "", fmt.Errorf("post-reload status %q: %s", hb.Status, hb.LastReloadError)
	}
	rt.noteHealthy(rep, hb.Model.SnapshotHash)
	return hb.Model.SnapshotHash, nil
}

// canaryProbe pushes Config.CanaryBody through the replica's /diagnose
// and requires every answer row to classify without error.
func (rt *Router) canaryProbe(ctx context.Context, rep *replica) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/diagnose", strings.NewReader(rt.cfg.CanaryBody))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("canary HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	rows := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		rows++
		var row struct {
			Err string `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return fmt.Errorf("canary row %d: unparseable answer: %v", rows, err)
		}
		if row.Err != "" {
			return fmt.Errorf("canary row %d failed: %s", rows, row.Err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if rows == 0 {
		return errors.New("canary answered no rows")
	}
	return nil
}

// handleRollout triggers a staged rollout: POST /-/rollout[?hash=...].
// 200 with the report on completion, 409 with the report when held or
// when another rollout is already running.
func (rt *Router) handleRollout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST to /-/rollout", http.StatusMethodNotAllowed)
		return
	}
	report, err := rt.Rollout(r.Context(), r.URL.Query().Get("hash"))
	w.Header().Set("Content-Type", "application/json")
	switch {
	case err != nil:
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(map[string]string{"status": "busy", "reason": err.Error()})
	case report.Status != "complete":
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(report)
	default:
		json.NewEncoder(w).Encode(report)
	}
}

package route

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"vqprobe/internal/serve"
)

func TestRolloutStagedHappyPath(t *testing.T) {
	var reloadsA, reloadsB atomic.Int64
	a := startEngine(t, "v1", func() (*serve.Model, error) {
		reloadsA.Add(1)
		return modelWithHash(t, "v2"), nil
	})
	b := startEngine(t, "v1", func() (*serve.Model, error) {
		reloadsB.Add(1)
		return modelWithHash(t, "v2"), nil
	})
	rt := newRouter(t, Config{Replicas: []string{a.URL, b.URL}})

	rep, err := rt.Rollout(context.Background(), "v2")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "complete" || rep.Hash != "v2" {
		t.Fatalf("rollout report: %+v", rep)
	}
	if rep.Canary != a.URL {
		t.Fatalf("canary %s, want first replica %s", rep.Canary, a.URL)
	}
	if len(rep.Stages) != 2 || rep.Stages[0].Outcome != "canary" || rep.Stages[1].Outcome != "reloaded" {
		t.Fatalf("stages: %+v", rep.Stages)
	}
	if reloadsA.Load() != 1 || reloadsB.Load() != 1 {
		t.Fatalf("reload counts a=%d b=%d, want 1 each", reloadsA.Load(), reloadsB.Load())
	}
	for _, s := range rt.Statuses() {
		if s.ModelHash != "v2" || s.State != "healthy" {
			t.Fatalf("post-rollout replica: %+v", s)
		}
	}
	if rt.obs.rollouts.Value() != 1 || rt.obs.rolloutsHeld.Value() != 0 {
		t.Fatalf("rollout counters: done=%d held=%d", rt.obs.rollouts.Value(), rt.obs.rolloutsHeld.Value())
	}
}

func TestRolloutHashMismatchHolds(t *testing.T) {
	a := startEngine(t, "v1", func() (*serve.Model, error) { return modelWithHash(t, "v2"), nil })
	b := startEngine(t, "v1", func() (*serve.Model, error) { return modelWithHash(t, "v2"), nil })
	rt := newRouter(t, Config{Replicas: []string{a.URL, b.URL}})

	rep, err := rt.Rollout(context.Background(), "v3-expected")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "held" || !strings.Contains(rep.Reason, "expected v3-expected") {
		t.Fatalf("wrong-hash rollout: %+v", rep)
	}
	// The canary already reloaded before verification caught the wrong
	// artifact — but the fan-out must not have happened.
	if sts := rt.Statuses(); sts[1].ModelHash == "v2" {
		t.Fatalf("fan-out ran despite canary hash mismatch: %+v", sts[1])
	}
	if rt.obs.rolloutsHeld.Value() != 1 {
		t.Fatalf("rolloutsHeld=%d, want 1", rt.obs.rolloutsHeld.Value())
	}
}

// TestRolloutHeldOnDegraded pins the auto-hold: a fleet with a
// degraded replica refuses to start a rollout at all.
func TestRolloutHeldOnDegraded(t *testing.T) {
	var reloadsA atomic.Int64
	a := startEngine(t, "v1", func() (*serve.Model, error) {
		reloadsA.Add(1)
		return modelWithHash(t, "v2"), nil
	})
	b := startEngine(t, "v1", func() (*serve.Model, error) {
		return nil, errors.New("model file corrupted")
	})

	// Degrade replica B for real: its own reload fails, it keeps
	// serving the last-good snapshot and reports degraded.
	resp, err := http.Post(b.URL+"/-/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("degrading reload answered HTTP %d", resp.StatusCode)
	}

	rt := newRouter(t, Config{Replicas: []string{a.URL, b.URL}})
	rep, err := rt.Rollout(context.Background(), "v2")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "held" || !strings.Contains(rep.Reason, "degraded") {
		t.Fatalf("rollout into a degraded fleet: %+v", rep)
	}
	if reloadsA.Load() != 0 {
		t.Fatal("canary reloaded despite the degraded-replica hold")
	}
	if rt.obs.rolloutsHeld.Value() != 1 {
		t.Fatalf("rolloutsHeld=%d, want 1", rt.obs.rolloutsHeld.Value())
	}
}

// TestRolloutSplitBrainHolds: the fan-out halts the moment a replica
// loads a different artifact than the verified canary.
func TestRolloutSplitBrainHolds(t *testing.T) {
	a := startEngine(t, "v1", func() (*serve.Model, error) { return modelWithHash(t, "v2"), nil })
	b := startEngine(t, "v1", func() (*serve.Model, error) { return modelWithHash(t, "v2-other"), nil })
	rt := newRouter(t, Config{Replicas: []string{a.URL, b.URL}})

	rep, err := rt.Rollout(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "held" || !strings.Contains(rep.Reason, "split brain") {
		t.Fatalf("split-brain rollout: %+v", rep)
	}
	last := rep.Stages[len(rep.Stages)-1]
	if last.Replica != b.URL || last.Outcome != "failed" || last.Hash != "v2-other" {
		t.Fatalf("split-brain stage: %+v", last)
	}
}

func TestRolloutSkipsDownReplica(t *testing.T) {
	a := startEngine(t, "v1", func() (*serve.Model, error) { return modelWithHash(t, "v2"), nil })
	dead := newScriptedReplica(t)
	deadURL := dead.srv.URL
	dead.srv.Close() // nothing listens there anymore

	rt := newRouter(t, Config{Replicas: []string{a.URL, deadURL}, EjectAfter: 1})
	rt.PollHealth(context.Background()) // ejects the dead replica

	rep, err := rt.Rollout(context.Background(), "v2")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "complete" {
		t.Fatalf("rollout with a down replica: %+v", rep)
	}
	if len(rep.Stages) != 2 || rep.Stages[1].Outcome != "skipped_down" {
		t.Fatalf("stages: %+v", rep.Stages)
	}
}

// TestRolloutCanaryTrafficFailureHolds: a model that loads but cannot
// answer canary traffic must not fan out.
func TestRolloutCanaryTrafficFailureHolds(t *testing.T) {
	var reloadsB atomic.Int64
	a := startEngine(t, "v1", func() (*serve.Model, error) { return modelWithHash(t, "v2"), nil })
	b := startEngine(t, "v1", func() (*serve.Model, error) {
		reloadsB.Add(1)
		return modelWithHash(t, "v2"), nil
	})
	// A canary body the replica answers with a per-row error stands in
	// for "loads fine, serves garbage".
	rt := newRouter(t, Config{Replicas: []string{a.URL, b.URL}, CanaryBody: "not json\n"})

	rep, err := rt.Rollout(context.Background(), "v2")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != "held" || !strings.Contains(rep.Reason, "traffic probe") {
		t.Fatalf("failed-canary rollout: %+v", rep)
	}
	if reloadsB.Load() != 0 {
		t.Fatal("fan-out ran despite the canary traffic failure")
	}
}

func TestRolloutHTTPEndpoint(t *testing.T) {
	a := startEngine(t, "v1", func() (*serve.Model, error) { return modelWithHash(t, "v2"), nil })
	rt := newRouter(t, Config{Replicas: []string{a.URL}})
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/-/rollout?hash=v2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rollout endpoint answered HTTP %d", resp.StatusCode)
	}
	var rep RolloutReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "complete" || rep.Hash != "v2" {
		t.Fatalf("endpoint report: %+v", rep)
	}

	// A second rollout expecting a hash the replica will not load holds
	// with 409.
	resp2, err := http.Post(srv.URL+"/-/rollout?hash=v9", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("held rollout answered HTTP %d, want 409", resp2.StatusCode)
	}
}

func BenchmarkRouterDiagnose(b *testing.B) {
	a := newScriptedReplica(b)
	c := newScriptedReplica(b)
	rt := newRouter(b, Config{Replicas: []string{a.srv.URL, c.srv.URL}})

	const rows = 64
	ids := make([]string, rows)
	for i := range ids {
		ids[i] = fmt.Sprintf("sess-%d", i)
	}
	body := ndjson(ids...)
	h := rt.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/diagnose", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
	b.ReportMetric(float64(rows*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkRouterFailover measures the full failover round trip: the
// first replica rejects every batch, the tail re-routes to the second.
func BenchmarkRouterFailover(b *testing.B) {
	broken := newScriptedReplica(b)
	broken.serveRows = func(w http.ResponseWriter, _ *http.Request, _ []string) {
		http.Error(w, "synthetic replica failure", http.StatusInternalServerError)
	}
	healthy := newScriptedReplica(b)
	// EjectAfter is effectively infinite so the broken replica keeps
	// absorbing (and failing) its sticky traffic every iteration.
	rt := newRouter(b, Config{Replicas: []string{broken.srv.URL, healthy.srv.URL}, EjectAfter: 1 << 30})

	var id string
	for i := 0; ; i++ {
		id = fmt.Sprintf("sess-%d", i)
		if rt.ring.owner(id) == 0 {
			break
		}
	}
	body := ndjson(id)
	h := rt.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/diagnose", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			b.Fatalf("HTTP %d", rec.Code)
		}
	}
	if rt.obs.failovers.Value() == 0 {
		b.Fatal("benchmark never exercised the failover path")
	}
}

package route

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vqprobe/internal/features"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/serve"
)

// --- shared helpers -------------------------------------------------

// modelWithHash trains a small fully separable model (good /
// lan_cong_mild / lan_cong_severe over rtt×loss, mirroring the chaos
// harness's fixture — chaos itself imports this package, so the tests
// rebuild it locally) and stamps it with a snapshot hash so /healthz
// advertises a rollout identity.
func modelWithHash(t testing.TB, hash string) *serve.Model {
	t.Helper()
	var insts []ml.Instance
	for rtt := 10.0; rtt <= 200; rtt += 10 {
		for loss := 0.0; loss <= 10; loss++ {
			cls := "good"
			if rtt > 100 {
				if loss > 5 {
					cls = "lan_cong_severe"
				} else {
					cls = "lan_cong_mild"
				}
			}
			insts = append(insts, ml.Instance{
				Features: metrics.Vector{"mobile.rtt": rtt, "mobile.loss": loss},
				Class:    cls,
			})
		}
	}
	constructed, norm := features.Construct(ml.NewDataset(insts))
	ct, err := c45.Compile(c45.Default().TrainTree(constructed))
	if err != nil {
		t.Fatal(err)
	}
	m := serve.NewModel("exact", norm, ct)
	m.SetProvenance(hash, 0)
	return m
}

// startEngine boots a real vqserve engine behind an httptest server.
func startEngine(t testing.TB, hash string, reload func() (*serve.Model, error)) *httptest.Server {
	t.Helper()
	e := serve.NewEngine(modelWithHash(t, hash), serve.Config{Shards: 2, ReloadFunc: reload})
	t.Cleanup(func() { e.Close() })
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// ndjson renders one diagnosable row per ID.
func ndjson(ids ...string) string {
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, `{"id":%q,"features":{"mobile.rtt":150,"mobile.loss":8}}`+"\n", id)
	}
	return b.String()
}

// resultRow is the slice of a replica answer line the tests inspect.
type resultRow struct {
	ID    string `json:"id"`
	Class string `json:"class"`
	Err   string `json:"error"`
}

func readRows(t testing.TB, body io.Reader) []resultRow {
	t.Helper()
	var out []resultRow
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r resultRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("unparseable result line %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("result stream: %v", err)
	}
	return out
}

func newRouter(t testing.TB, cfg Config) *Router {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// --- routing picker -------------------------------------------------

func TestRouteStickyOwner(t *testing.T) {
	rt := newRouter(t, Config{Replicas: []string{"http://a", "http://b", "http://c"}})
	owner := rt.route("session-42", 1, nil)
	if owner < 0 {
		t.Fatal("healthy fleet refused a row")
	}
	for i := 0; i < 50; i++ {
		if got := rt.route("session-42", 1, nil); got != owner {
			t.Fatalf("sticky routing broke: pick %d then %d", owner, got)
		}
	}
	if owner != rt.ring.owner("session-42") {
		t.Fatalf("route() picked %d, ring owner is %d", owner, rt.ring.owner("session-42"))
	}
}

func TestRouteFallbackWhenOwnerDown(t *testing.T) {
	rt := newRouter(t, Config{Replicas: []string{"http://a", "http://b"}})
	owner := rt.ring.owner("sess")
	rt.reps[owner].state.Store(int32(Down))
	got := rt.route("sess", 1, nil)
	if got == owner || got < 0 {
		t.Fatalf("down owner %d still picked (got %d)", owner, got)
	}
	rt.reps[1-owner].state.Store(int32(Down))
	if got := rt.route("sess", 1, nil); got != -1 {
		t.Fatalf("fully down fleet routed to %d, want shed", got)
	}
}

func TestRouteDegradedKeepsStickyButNoFailover(t *testing.T) {
	rt := newRouter(t, Config{Replicas: []string{"http://a", "http://b"}})
	owner := rt.ring.owner("sess")
	rt.reps[owner].state.Store(int32(Degraded))
	// A degraded owner keeps its sticky traffic: it still answers
	// correctly from the last-good model, and shifting would churn
	// session state for nothing.
	if got := rt.route("sess", 1, nil); got != owner {
		t.Fatalf("degraded owner lost its sticky traffic: want %d got %d", owner, got)
	}
	// But it must never absorb other replicas' failover rows.
	if got := rt.route("", 1, func(i int) bool { return i == 1-owner }); got != -1 {
		t.Fatalf("degraded replica %d accepted failover traffic (got %d)", owner, got)
	}
}

func TestRouteRespectsMaxInflight(t *testing.T) {
	rt := newRouter(t, Config{Replicas: []string{"http://a", "http://b"}, MaxInflight: 4})
	owner := rt.ring.owner("sess")
	rt.reps[owner].inflight.Store(4)
	got := rt.route("sess", 1, nil)
	if got == owner {
		t.Fatal("saturated owner still picked")
	}
	if got < 0 {
		t.Fatal("fallback with room refused the row")
	}
	if rt.reps[owner].shedC.Value() != 1 {
		t.Fatalf("owner refusal not recorded: shedC=%d", rt.reps[owner].shedC.Value())
	}
	rt.reps[1-owner].inflight.Store(4)
	if got := rt.route("sess", 1, nil); got != -1 {
		t.Fatalf("fully saturated fleet routed to %d, want shed", got)
	}
}

// --- health state machine -------------------------------------------

func TestHealthTransitions(t *testing.T) {
	var mu sync.Mutex
	mode := "ok"
	setMode := func(m string) { mu.Lock(); mode = m; mu.Unlock() }
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		m := mode
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch m {
		case "ok":
			fmt.Fprint(w, `{"status":"ok","model":{"snapshot_hash":"h1"}}`)
		case "degraded":
			fmt.Fprint(w, `{"status":"degraded","last_reload_error":"reload exploded","model":{"snapshot_hash":"h0"}}`)
		default:
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, "not json at all")
		}
	}))
	defer srv.Close()

	rt := newRouter(t, Config{Replicas: []string{srv.URL}, EjectAfter: 2})
	ctx := context.Background()

	rt.PollHealth(ctx)
	if s := rt.Statuses()[0]; s.State != "healthy" || s.ModelHash != "h1" {
		t.Fatalf("after ok poll: %+v", s)
	}

	setMode("degraded")
	rt.PollHealth(ctx)
	if s := rt.Statuses()[0]; s.State != "degraded" || !strings.Contains(s.LastError, "reload exploded") {
		t.Fatalf("after degraded poll: %+v", s)
	}
	if rt.reps[0].degradedG.Value() != 1 || rt.reps[0].healthyG.Value() != 0 {
		t.Fatalf("degraded gauges wrong: healthy=%v degraded=%v",
			rt.reps[0].healthyG.Value(), rt.reps[0].degradedG.Value())
	}

	// Failures eject only after EjectAfter consecutive misses.
	setMode("broken")
	rt.PollHealth(ctx)
	if s := rt.Statuses()[0]; s.State == "down" {
		t.Fatalf("ejected after a single failure: %+v", s)
	}
	rt.PollHealth(ctx)
	if s := rt.Statuses()[0]; s.State != "down" {
		t.Fatalf("not ejected after EjectAfter failures: %+v", s)
	}
	if rt.reps[0].healthyG.Value() != 0 {
		t.Fatal("down replica still advertises healthy gauge")
	}

	// A succeeding probe re-admits the replica.
	setMode("ok")
	rt.PollHealth(ctx)
	if s := rt.Statuses()[0]; s.State != "healthy" {
		t.Fatalf("no recovery after ok poll: %+v", s)
	}
	if got := rt.obs.healthPolls.Value(); got != 5 {
		t.Fatalf("healthPolls=%d, want 5", got)
	}
}

// --- ring -----------------------------------------------------------

func TestRingDeterministicAndBalanced(t *testing.T) {
	urls := []string{"http://a", "http://b", "http://c"}
	r1, r2 := buildRing(urls, 64), buildRing(urls, 64)
	if len(r1.points) != len(urls)*64 {
		t.Fatalf("ring has %d points, want %d", len(r1.points), len(urls)*64)
	}
	for i := range r1.points {
		if r1.points[i] != r2.points[i] {
			t.Fatalf("ring build is not deterministic at point %d", i)
		}
	}
	owned := make(map[int]int)
	for i := 0; i < 3000; i++ {
		owned[r1.owner(fmt.Sprintf("session-%d", i))]++
	}
	for idx := range urls {
		if owned[idx] == 0 {
			t.Fatalf("replica %d owns no sessions: %v", idx, owned)
		}
	}
	// Same ID, same owner — forever.
	for i := 0; i < 100; i++ {
		if r1.owner("pinned") != r2.owner("pinned") {
			t.Fatal("owner lookup is unstable")
		}
	}
}

// TestRingBalancedForPortOnlyURLs is the regression pin for the hash
// finalizer: raw FNV-64a clustered vnode points for URLs differing only
// in the port (the standard local-fleet layout), to the point of one
// replica owning zero sessions for some port pairs.
func TestRingBalancedForPortOnlyURLs(t *testing.T) {
	for port := 30000; port < 60000; port += 101 {
		urls := []string{
			fmt.Sprintf("http://127.0.0.1:%d", port),
			fmt.Sprintf("http://127.0.0.1:%d", port+2),
		}
		r := buildRing(urls, 64)
		owned := [2]int{}
		for i := 0; i < 1000; i++ {
			owned[r.owner(fmt.Sprintf("session-%d", i))]++
		}
		// 20% minimum share: loose enough for hash noise, tight enough
		// that the pre-fix degenerate layouts (0–2 sessions) fail loudly.
		if owned[0] < 200 || owned[1] < 200 {
			t.Fatalf("ports %d/%d: lopsided ownership %v", port, port+2, owned)
		}
	}
}

package route

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// healthzBody is the slice of vqserve's /healthz answer the router
// consumes: liveness status, the degraded-mode reason, and the serving
// model's identity hash (the staged-rollout verification handle).
type healthzBody struct {
	Status          string `json:"status"`
	LastReloadError string `json:"last_reload_error"`
	Model           struct {
		SnapshotHash string `json:"snapshot_hash"`
	} `json:"model"`
}

// maxHealthzBody bounds one /healthz response read (64 KiB).
const maxHealthzBody = 64 << 10

// fetchHealthz performs one /healthz probe against a replica.
func (rt *Router) fetchHealthz(ctx context.Context, rep *replica) (healthzBody, error) {
	var hb healthzBody
	hctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		return hb, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return hb, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxHealthzBody))
	if err != nil {
		return hb, err
	}
	// 503 still carries a JSON body ("no model"): parse before judging
	// the status code so the error names the replica's own words.
	if err := json.Unmarshal(body, &hb); err != nil {
		return hb, fmt.Errorf("healthz HTTP %d: unparseable body: %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return hb, fmt.Errorf("healthz HTTP %d: status %q", resp.StatusCode, hb.Status)
	}
	return hb, nil
}

// pollOne probes one replica and applies the resulting state
// transition.
func (rt *Router) pollOne(ctx context.Context, rep *replica) {
	hb, err := rt.fetchHealthz(ctx, rep)
	switch {
	case err != nil:
		rt.noteFailure(rep, err.Error())
	case hb.Status == "ok":
		rt.noteHealthy(rep, hb.Model.SnapshotHash)
	case hb.Status == "degraded":
		why := hb.LastReloadError
		if why == "" {
			why = "replica reports degraded"
		}
		rt.noteDegraded(rep, hb.Model.SnapshotHash, why)
	default:
		rt.noteFailure(rep, fmt.Sprintf("healthz status %q", hb.Status))
	}
}

// PollHealth sweeps every replica's /healthz once, concurrently, and
// applies state transitions: ok → Healthy, degraded → Degraded (traffic
// shifts and rollouts hold), repeated failure → Down (ejected until a
// probe succeeds). cmd/vqroute runs this on a wall ticker; tests call
// it directly, which is what keeps the package itself clock-free.
func (rt *Router) PollHealth(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.reps {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.pollOne(ctx, rep)
		}(rep)
	}
	wg.Wait()
	rt.obs.healthPolls.Inc()
}

package route

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// scriptedReplica is a vqserve stand-in with exact control over the
// wire behavior, recording every batch of IDs it was asked to serve.
type scriptedReplica struct {
	mu      sync.Mutex
	batches [][]string
	// serveRows answers one /diagnose request; nil means "answer every
	// row with class good".
	serveRows func(w http.ResponseWriter, r *http.Request, ids []string)
	srv       *httptest.Server
}

func newScriptedReplica(t testing.TB) *scriptedReplica {
	t.Helper()
	fr := &scriptedReplica{}
	fr.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"status":"ok","model":{"snapshot_hash":"h"}}`)
		case "/diagnose":
			ids := scanIDs(r.Body)
			fr.mu.Lock()
			fr.batches = append(fr.batches, ids)
			serve := fr.serveRows
			fr.mu.Unlock()
			if serve == nil {
				w.Header().Set("Content-Type", "application/x-ndjson")
				for _, id := range ids {
					fmt.Fprintf(w, `{"id":%q,"class":"good"}`+"\n", id)
				}
				return
			}
			serve(w, r, ids)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(fr.srv.Close)
	return fr
}

func scanIDs(body io.Reader) []string {
	var ids []string
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var hdr struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(sc.Bytes(), &hdr); err == nil {
			ids = append(ids, hdr.ID)
		}
	}
	return ids
}

func (fr *scriptedReplica) servedIDs() []string {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	var all []string
	for _, b := range fr.batches {
		all = append(all, b...)
	}
	return all
}

func TestProxyMergesInInputOrder(t *testing.T) {
	a := startEngine(t, "h1", nil)
	b := startEngine(t, "h1", nil)
	rt := newRouter(t, Config{Replicas: []string{a.URL, b.URL}})

	ids := make([]string, 12)
	for i := range ids {
		ids[i] = fmt.Sprintf("sess-%d", i)
	}
	// A malformed line and a blank line ride along mid-batch: the
	// malformed one must keep its true input line number, the blank one
	// must vanish, and neither may shift any classified row's slot.
	body := ndjson(ids[:6]...) + "this is not json\n\n" + ndjson(ids[6:]...)

	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/diagnose", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	rows := readRows(t, rec.Body)
	if len(rows) != len(ids)+1 {
		t.Fatalf("got %d result rows, want %d", len(rows), len(ids)+1)
	}
	for i, r := range rows {
		switch {
		case i < 6:
			if r.ID != ids[i] || r.Err != "" {
				t.Fatalf("slot %d: %+v, want %s classified", i, r, ids[i])
			}
		case i == 6:
			if !strings.Contains(r.Err, "line 7") {
				t.Fatalf("malformed line lost its input line number: %+v", r)
			}
		default:
			if r.ID != ids[i-1] || r.Err != "" {
				t.Fatalf("slot %d: %+v, want %s classified", i, r, ids[i-1])
			}
		}
	}
}

// TestProxyFailoverExactlyOnce is the replica-kill contract: when a
// replica dies mid-stream, rows it already answered stay answered and
// only the unserved tail re-routes, so every acknowledged row is
// classified exactly once.
func TestProxyFailoverExactlyOnce(t *testing.T) {
	broken := newScriptedReplica(t)
	healthy := newScriptedReplica(t)
	rt := newRouter(t, Config{Replicas: []string{broken.srv.URL, healthy.srv.URL}})

	// The broken replica answers exactly one row, then the connection
	// dies mid-stream.
	broken.serveRows = func(w http.ResponseWriter, _ *http.Request, ids []string) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintf(w, `{"id":%q,"class":"good"}`+"\n", ids[0])
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}

	var ids, toBroken []string
	for i := 0; len(toBroken) < 3 || len(ids)-len(toBroken) < 3; i++ {
		id := fmt.Sprintf("sess-%d", i)
		ids = append(ids, id)
		if rt.ring.owner(id) == 0 {
			toBroken = append(toBroken, id)
		}
		if i > 1000 {
			t.Fatal("ring never assigned enough sessions to both replicas")
		}
	}

	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/diagnose", strings.NewReader(ndjson(ids...))))
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	rows := readRows(t, rec.Body)
	if len(rows) != len(ids) {
		t.Fatalf("got %d result rows for %d inputs", len(rows), len(ids))
	}
	seen := map[string]int{}
	for i, r := range rows {
		if r.ID != ids[i] {
			t.Fatalf("slot %d holds %q, want %q — order broke across failover", i, r.ID, ids[i])
		}
		if r.Err != "" {
			t.Fatalf("row %s lost to failover: %q", r.ID, r.Err)
		}
		seen[r.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("row %s answered %d times", id, n)
		}
	}
	// The failed-over tail must be exactly the broken replica's batch
	// minus the one row it served — nothing re-sent, nothing dropped.
	healthyGot := map[string]int{}
	for _, id := range healthy.servedIDs() {
		healthyGot[id]++
	}
	for i, id := range toBroken {
		want := 1
		if i == 0 {
			want = 0 // served by the broken replica before it died
		}
		if healthyGot[id] != want {
			t.Fatalf("failover row %s sent to healthy replica %d times, want %d", id, healthyGot[id], want)
		}
	}
	if got := rt.obs.failovers.Value(); got != 1 {
		t.Fatalf("failovers counter %d, want 1", got)
	}
	if rt.reps[0].errsC.Value() == 0 {
		t.Fatal("broken replica's failure left no error count")
	}
}

func TestProxyShedsWith429(t *testing.T) {
	a := newScriptedReplica(t)
	b := newScriptedReplica(t)
	rt := newRouter(t, Config{Replicas: []string{a.srv.URL, b.srv.URL}, MaxInflight: 2, RetryAfter: 3 * time.Second})
	rt.reps[0].inflight.Store(2)
	rt.reps[1].inflight.Store(2)

	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/diagnose", strings.NewReader(ndjson("s1", "s2"))))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated fleet answered HTTP %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want 3", got)
	}
	if got := rt.obs.shed.Value(); got != 2 {
		t.Fatalf("shed counter %d, want 2", got)
	}
	// No replica saw the rows: shedding means not retrying into overload.
	if len(a.servedIDs())+len(b.servedIDs()) != 0 {
		t.Fatal("shed rows still reached a replica")
	}
}

func TestProxyAllDownAnswers503(t *testing.T) {
	a := newScriptedReplica(t)
	rt := newRouter(t, Config{Replicas: []string{a.srv.URL}})
	rt.reps[0].state.Store(int32(Down))
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/diagnose", strings.NewReader(ndjson("s1"))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead fleet answered HTTP %d, want 503", rec.Code)
	}
}

// TestProxyClientDisconnectCancelsUpstream is the satellite-3 audit
// pin: when the downstream client goes away mid-request, the router
// must cancel its upstream replica requests instead of leaving them
// running against a dead socket.
func TestProxyClientDisconnectCancelsUpstream(t *testing.T) {
	gotUpstream := make(chan struct{})
	upstreamCanceled := make(chan struct{})
	var once sync.Once
	slow := newScriptedReplica(t)
	slow.serveRows = func(_ http.ResponseWriter, r *http.Request, _ []string) {
		once.Do(func() { close(gotUpstream) })
		// Hold the request open until the router cancels it; the
		// timeout is only a failure backstop.
		select {
		case <-r.Context().Done():
			close(upstreamCanceled)
		case <-time.After(5 * time.Second):
		}
	}
	rt := newRouter(t, Config{Replicas: []string{slow.srv.URL}})
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, router.URL+"/diagnose", strings.NewReader(ndjson("s1")))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()

	<-gotUpstream // the replica is holding the proxied request
	cancel()      // client disconnects mid-flight

	select {
	case <-upstreamCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("upstream replica request was not canceled after client disconnect")
	}
	if err := <-done; err == nil {
		t.Fatal("canceled client request reported success")
	}
}

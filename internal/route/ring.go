package route

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over the replica set: every replica
// contributes VNodes points (FNV-64a of "url#vnode"), and a session ID
// is owned by the first point clockwise from its own hash. Stickiness
// is the goal — per-session state on a replica (explain caches, shard
// ordering) survives as long as the replica does — and virtual nodes
// keep ownership spread even across a small fleet. The ring is built
// once at router construction and never mutated, so lookups are
// lock-free.
type ring struct {
	points []ringPoint
	n      int // replica count
}

type ringPoint struct {
	hash uint64
	idx  int
}

// fnv64 hashes s and finalizes with a 64-bit avalanche mixer. Raw
// FNV-64a diffuses trailing-byte differences poorly: replica URLs that
// differ only in the port digit (the common local-fleet layout) land
// their vnode points in tight clusters, and a two-replica ring can
// leave one replica owning almost nothing. The mixer spreads every
// input bit across the whole word, which is what ring placement needs.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// buildRing lays vnodes points per replica URL on the ring. Ties (two
// points hashing identically) break by replica index so the layout is
// deterministic for any URL set.
func buildRing(urls []string, vnodes int) ring {
	pts := make([]ringPoint, 0, len(urls)*vnodes)
	for i, u := range urls {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, ringPoint{hash: fnv64(u + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].hash != pts[b].hash {
			return pts[a].hash < pts[b].hash
		}
		return pts[a].idx < pts[b].idx
	})
	return ring{points: pts, n: len(urls)}
}

// owner returns the replica index owning the session ID: the first ring
// point at or clockwise past the ID's hash, wrapping at the top.
func (rg ring) owner(id string) int {
	h := fnv64(id)
	i := sort.Search(len(rg.points), func(k int) bool { return rg.points[k].hash >= h })
	if i == len(rg.points) {
		i = 0
	}
	return rg.points[i].idx
}

// Package route is the fleet-mode router tier: one vqroute process
// fronts N vqserve replicas, spreading /diagnose NDJSON traffic across
// them with a consistent-hash ring (sticky by session ID, so
// per-session state such as explain caches stays on one replica) and a
// least-loaded fallback, managing replica health (poll /healthz, eject
// on repeated failure, hold traffic shifts and rollouts when a replica
// reports degraded), coordinating staged model rollouts (canary →
// verify model hash → fan out), and propagating backpressure between
// tiers (a saturated fleet answers 429 + Retry-After instead of
// retrying into overload).
//
// The package is deliberately clock-free: all wall time comes through
// Config.Clock and all periodic work through explicit PollHealth calls,
// so cmd/vqroute owns the real clock and tests drive the router
// deterministically. cmd/vqroute is the thin daemon over this package;
// docs/ROUTING.md describes the topology and protocols.
package route

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vqprobe/internal/metrics"
)

// State is one replica's routing disposition.
type State int32

const (
	// Healthy replicas receive their hash-owned traffic and serve as
	// fallback targets for failed or saturated peers.
	Healthy State = iota
	// Degraded replicas are alive but self-reported degraded (a failed
	// model reload: serving from the last-good snapshot). They keep
	// their sticky traffic — shifting it would churn session state for
	// a replica that still answers correctly — but never receive
	// failover traffic, and any staged rollout holds until they
	// recover.
	Degraded
	// Down replicas failed EjectAfter consecutive health probes (or
	// proxy attempts) and receive no traffic until a probe succeeds.
	Down
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	}
	return "unknown"
}

// Config tunes the router. Replicas is required; everything else has a
// serviceable default.
type Config struct {
	// Replicas is the base URL of every vqserve replica, e.g.
	// "http://127.0.0.1:8701". Order is the staged-rollout order.
	Replicas []string
	// Client performs all upstream HTTP. Nil selects a zero-value
	// client (no global timeout: /diagnose responses stream, and
	// per-probe budgets come from contexts).
	Client *http.Client
	// Registry receives the router's metrics; one is created if nil.
	Registry *metrics.Registry
	// Logger, when set, records state transitions, failovers and
	// rollout stages. Nil disables logging.
	Logger *slog.Logger
	// Clock supplies wall time for the proxy latency histogram —
	// typically time.Now, injected so the package itself never reads
	// the clock. Nil disables latency observation.
	Clock func() time.Time
	// VNodes is the virtual-node count per replica on the hash ring.
	// Zero selects 64.
	VNodes int
	// EjectAfter is how many consecutive failed probes (health polls or
	// proxy attempts) eject a replica to Down. Zero selects 3.
	EjectAfter int
	// MaxInflight caps outstanding proxied rows per replica; rows
	// beyond it try the least-loaded fallback and are shed at the
	// router when no replica has room. Zero selects 1024.
	MaxInflight int
	// RetryAfter is the client backoff hint on 429 responses and shed
	// rows. Zero selects 1s.
	RetryAfter time.Duration
	// HealthTimeout bounds one /healthz probe. Zero selects 2s.
	HealthTimeout time.Duration
	// CanaryBody is the NDJSON batch sent through a freshly reloaded
	// replica before a rollout proceeds. Empty selects a single minimal
	// row.
	CanaryBody string
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.CanaryBody == "" {
		c.CanaryBody = `{"id":"vqroute-canary","features":{}}` + "\n"
	}
	return c
}

// replica is one upstream vqserve process as the router sees it.
type replica struct {
	url string
	idx int

	state atomic.Int32 // State; hot-path reads skip the mutex

	mu          sync.Mutex
	consecFails int
	modelHash   string
	lastErr     string

	inflight atomic.Int64

	healthyG  *metrics.Gauge
	degradedG *metrics.Gauge
	inflightG *metrics.Gauge
	rowsC     *metrics.Counter
	shedC     *metrics.Counter
	errsC     *metrics.Counter
}

// ReplicaStatus is one replica's state snapshot for /healthz and logs.
type ReplicaStatus struct {
	URL       string `json:"url"`
	State     string `json:"state"`
	ModelHash string `json:"model_hash,omitempty"`
	LastError string `json:"last_error,omitempty"`
	Inflight  int64  `json:"inflight"`
}

// Router is the fleet router. Create with New, poll replica health with
// PollHealth (cmd/vqroute runs it on a ticker), serve with Handler, and
// coordinate model pushes with Rollout.
type Router struct {
	cfg    Config
	client *http.Client
	reg    *metrics.Registry
	log    *slog.Logger
	reps   []*replica
	ring   ring

	rolloutMu sync.Mutex // one staged rollout at a time

	obs routerObs
}

// routerObs bundles the router-level metric handles; names are
// documented in docs/ROUTING.md.
type routerObs struct {
	requests, rows, shed   *metrics.Counter
	failovers, healthPolls *metrics.Counter
	rollouts, rolloutsHeld *metrics.Counter
	proxyHist              *metrics.Histogram
}

// New builds a router over the configured replica set. The replica list
// is fixed for the router's lifetime: fleet membership changes are a
// restart (the hash ring must agree across router instances anyway).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("route: no replicas configured")
	}
	rt := &Router{cfg: cfg, client: cfg.Client, reg: cfg.Registry, log: cfg.Logger}
	urls := make([]string, len(cfg.Replicas))
	for i, u := range cfg.Replicas {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("route: replica %d: empty URL", i)
		}
		urls[i] = u
		rep := &replica{
			url:       u,
			idx:       i,
			healthyG:  rt.reg.Gauge(fmt.Sprintf("vqroute_replica_healthy{replica=%q}", u), "replica is healthy and routable (1 = healthy)"),
			degradedG: rt.reg.Gauge(fmt.Sprintf("vqroute_replica_degraded{replica=%q}", u), "replica self-reports degraded (serving last-good model)"),
			inflightG: rt.reg.Gauge(fmt.Sprintf("vqroute_replica_inflight{replica=%q}", u), "rows currently proxied to this replica"),
			rowsC:     rt.reg.Counter(fmt.Sprintf("vqroute_replica_rows_total{replica=%q}", u), "rows answered by this replica"),
			shedC:     rt.reg.Counter(fmt.Sprintf("vqroute_replica_shed_total{replica=%q}", u), "rows refused at this replica (saturated or down) during routing"),
			errsC:     rt.reg.Counter(fmt.Sprintf("vqroute_replica_errors_total{replica=%q}", u), "transport or protocol failures against this replica"),
		}
		// Replicas start healthy: the first poll corrects optimism, and
		// starting pessimistic would black-hole traffic until it runs.
		rep.healthyG.Set(1)
		rt.reps = append(rt.reps, rep)
	}
	rt.ring = buildRing(urls, cfg.VNodes)
	rt.obs = routerObs{
		requests:     rt.reg.Counter("vqroute_requests_total", "proxied /diagnose requests"),
		rows:         rt.reg.Counter("vqroute_rows_total", "NDJSON rows accepted for routing"),
		shed:         rt.reg.Counter("vqroute_shed_total", "rows shed at the router (no replica with capacity)"),
		failovers:    rt.reg.Counter("vqroute_failovers_total", "sub-batches re-routed after a replica failure"),
		healthPolls:  rt.reg.Counter("vqroute_health_polls_total", "completed health sweeps"),
		rollouts:     rt.reg.Counter("vqroute_rollouts_total", "staged rollouts completed"),
		rolloutsHeld: rt.reg.Counter("vqroute_rollouts_held_total", "staged rollouts held (degraded replica, hash mismatch, or canary failure)"),
		proxyHist: rt.reg.Histogram("vqroute_proxy_latency_seconds", "upstream sub-batch round-trip latency",
			metrics.LatencyBuckets),
	}
	return rt, nil
}

// Registry returns the router's metrics registry.
func (rt *Router) Registry() *metrics.Registry { return rt.reg }

// Statuses reports every replica's current state, in config order.
func (rt *Router) Statuses() []ReplicaStatus {
	out := make([]ReplicaStatus, len(rt.reps))
	for i, rep := range rt.reps {
		rep.mu.Lock()
		out[i] = ReplicaStatus{
			URL:       rep.url,
			State:     State(rep.state.Load()).String(),
			ModelHash: rep.modelHash,
			LastError: rep.lastErr,
			Inflight:  rep.inflight.Load(),
		}
		rep.mu.Unlock()
	}
	return out
}

// logf emits one structured log line when a logger is configured.
func (rt *Router) logf(msg string, args ...any) {
	if rt.log != nil {
		rt.log.Info(msg, args...)
	}
}

// setState applies a state transition and its gauge updates; callers
// hold rep.mu.
func (rt *Router) setState(rep *replica, s State, why string) {
	old := State(rep.state.Swap(int32(s)))
	if s == Healthy {
		rep.healthyG.Set(1)
	} else {
		rep.healthyG.Set(0)
	}
	if s == Degraded {
		rep.degradedG.Set(1)
	} else {
		rep.degradedG.Set(0)
	}
	if old != s {
		rt.logf("replica state change", "replica", rep.url, "from", old.String(), "to", s.String(), "why", why)
	}
}

// noteFailure records one failed probe or proxy attempt; EjectAfter
// consecutive failures eject the replica.
func (rt *Router) noteFailure(rep *replica, why string) {
	rep.errsC.Inc()
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecFails++
	rep.lastErr = why
	if rep.consecFails >= rt.cfg.EjectAfter && State(rep.state.Load()) != Down {
		rt.setState(rep, Down, fmt.Sprintf("%d consecutive failures: %s", rep.consecFails, why))
	}
}

// noteHealthy records one successful probe reporting status "ok".
func (rt *Router) noteHealthy(rep *replica, modelHash string) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecFails = 0
	rep.lastErr = ""
	rep.modelHash = modelHash
	rt.setState(rep, Healthy, "healthz ok")
}

// noteDegraded records a probe reporting status "degraded": alive and
// serving (from the last-good model), but holding rollouts.
func (rt *Router) noteDegraded(rep *replica, modelHash, why string) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.consecFails = 0
	rep.lastErr = why
	if modelHash != "" {
		rep.modelHash = modelHash
	}
	rt.setState(rep, Degraded, why)
}

// noteServed resets the failure streak after rows round-tripped
// cleanly — a successful proxy is as good a liveness signal as a poll.
func (rt *Router) noteServed(rep *replica, rows int) {
	rep.rowsC.Add(uint64(rows))
	rep.mu.Lock()
	rep.consecFails = 0
	rep.mu.Unlock()
}

// routable says whether the replica may receive traffic at all.
func (rep *replica) routable() bool { return State(rep.state.Load()) != Down }

// underLimit says whether the replica has inflight room for n more rows.
func (rep *replica) underLimit(n int, max int) bool {
	return rep.inflight.Load()+int64(n) <= int64(max)
}

// route picks the replica for one row: the ring owner when the session
// ID's primary is routable and has room (a Degraded primary keeps its
// sticky traffic — the hold on traffic shifts), otherwise the
// least-loaded Healthy replica, otherwise -1 (shed at the router).
// excluded marks replicas already tried by this row's failover walk.
func (rt *Router) route(id string, rows int, excluded func(int) bool) int {
	if id != "" {
		p := rt.ring.owner(id)
		rep := rt.reps[p]
		if excluded == nil || !excluded(p) {
			if rep.routable() && rep.underLimit(rows, rt.cfg.MaxInflight) {
				return p
			}
			// The sticky owner refused (saturated or down): record the
			// refusal against it even if a fallback absorbs the row.
			rep.shedC.Add(uint64(rows))
		}
	}
	best, bestLoad := -1, int64(0)
	for i, rep := range rt.reps {
		if excluded != nil && excluded(i) {
			continue
		}
		if State(rep.state.Load()) != Healthy || !rep.underLimit(rows, rt.cfg.MaxInflight) {
			continue
		}
		if load := rep.inflight.Load(); best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

package hardware

import (
	"testing"
	"time"

	"vqprobe/internal/simnet"
)

func TestIdleDeviceLowCPU(t *testing.T) {
	s := simnet.New(1)
	d := NewDevice(s, ProfileGalaxyS2)
	var sum float64
	n := 0
	d.OnSample = func(_ time.Duration, cpu, _, _ float64) { sum += cpu; n++ }
	s.Run(60 * time.Second)
	if n != 60 {
		t.Fatalf("got %d samples, want 60", n)
	}
	if avg := sum / float64(n); avg > 30 {
		t.Errorf("idle CPU average %.1f%%, want low", avg)
	}
}

func TestStressRaisesCPUDuringWindow(t *testing.T) {
	s := simnet.New(2)
	d := NewDevice(s, ProfileGalaxyS2)
	d.Stress(70, 0, 0, 10*time.Second, 20*time.Second)
	var before, during, after []float64
	d.OnSample = func(now time.Duration, cpu, _, _ float64) {
		switch {
		case now < 10*time.Second:
			before = append(before, cpu)
		case now < 30*time.Second:
			during = append(during, cpu)
		default:
			after = append(after, cpu)
		}
	}
	s.Run(40 * time.Second)
	if avg(during) < avg(before)+40 {
		t.Errorf("stress window CPU %.1f not clearly above baseline %.1f", avg(during), avg(before))
	}
	if avg(after) > avg(before)+15 {
		t.Errorf("CPU did not recover after stress: %.1f vs %.1f", avg(after), avg(before))
	}
}

func TestStressConsumesMemory(t *testing.T) {
	s := simnet.New(3)
	d := NewDevice(s, ProfileGalaxyS2)
	d.Stress(0, 300, 0, 0, time.Minute)
	s.Run(5 * time.Second)
	if d.MemFreeMB() > ProfileGalaxyS2.MemFreeBaseMB-200 {
		t.Errorf("free memory %.0f did not drop under 300MB allocation", d.MemFreeMB())
	}
}

func TestMemoryNeverNegative(t *testing.T) {
	s := simnet.New(4)
	d := NewDevice(s, ProfileNexusS)
	d.Stress(0, 10_000, 0, 0, time.Minute)
	s.Run(10 * time.Second)
	if d.MemFreeMB() < 0 {
		t.Errorf("free memory went negative: %.1f", d.MemFreeMB())
	}
}

func TestDecodeFactorDegradesUnderLoad(t *testing.T) {
	s := simnet.New(5)
	d := NewDevice(s, ProfileGalaxyS2)
	d.SetDecodeDemand(30) // SD decode
	s.Run(2 * time.Second)
	if f := d.DecodeFactor(); f < 0.99 {
		t.Errorf("unloaded decode factor %.2f, want ~1", f)
	}
	d.Stress(85, 200, 20, 2*time.Second, time.Minute)
	s.Run(10 * time.Second)
	if f := d.DecodeFactor(); f > 0.8 {
		t.Errorf("decode factor %.2f under 85%% CPU stress, want degraded", f)
	}
	if f := d.DecodeFactor(); f <= 0 {
		t.Errorf("decode factor must stay positive, got %.2f", f)
	}
}

func TestDecodeDemandShowsInCPU(t *testing.T) {
	s := simnet.New(6)
	d := NewDevice(s, ProfileNexusS)
	d.SetDecodeDemand(40)
	var sum float64
	n := 0
	d.OnSample = func(_ time.Duration, cpu, _, _ float64) { sum += cpu; n++ }
	s.Run(30 * time.Second)
	if avg := sum / float64(n); avg < 40 {
		t.Errorf("CPU with 40%% decode demand averaged %.1f, want >= 40", avg)
	}
}

func TestIOWaitFromStress(t *testing.T) {
	s := simnet.New(7)
	d := NewDevice(s, ProfileGalaxyS2)
	d.Stress(0, 0, 40, 0, time.Minute)
	s.Run(5 * time.Second)
	if d.IOWait() < 20 {
		t.Errorf("IO wait %.1f under IO stress, want elevated", d.IOWait())
	}
}

func TestOverlappingStressesAdd(t *testing.T) {
	s := simnet.New(8)
	d := NewDevice(s, ProfileNexus5)
	d.Stress(30, 0, 0, 0, time.Minute)
	d.Stress(30, 0, 0, 0, time.Minute)
	s.Run(5 * time.Second)
	if d.CPU() < 55 {
		t.Errorf("two 30%% stresses yielded %.1f%% CPU, want additive", d.CPU())
	}
}

func TestCPUClamped(t *testing.T) {
	s := simnet.New(9)
	d := NewDevice(s, ProfileNexusS)
	d.Stress(500, 0, 0, 0, time.Minute)
	s.Run(5 * time.Second)
	if d.CPU() > 100 {
		t.Errorf("CPU %.1f exceeds 100%%", d.CPU())
	}
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

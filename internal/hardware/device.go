// Package hardware models the OS/hardware state of a device in the
// testbed: CPU utilization, free memory and I/O pressure, and the effect
// of that state on the video decode pipeline.
//
// The model reproduces the causal path the paper's "Mobile Load" fault
// relies on: a loaded device cannot decode and render frames in time, so
// playback stalls and frames are skipped even though the network is
// perfectly healthy. It also feeds the OS/hardware-layer metrics the
// probes export (per-second CPU, free memory, I/O wait samples).
package hardware

import (
	"time"

	"vqprobe/internal/simnet"
)

// Profile describes the baseline characteristics of a device class.
type Profile struct {
	// CPUBase is the idle-state CPU utilization percentage (OS,
	// background apps) around which the model fluctuates.
	CPUBase float64
	// CPUStd is the per-second variation of the baseline.
	CPUStd float64
	// MemTotalMB is total system memory.
	MemTotalMB float64
	// MemFreeBaseMB is the free memory when idle.
	MemFreeBaseMB float64
	// DecodeCostPerMbps is the CPU percentage consumed by decoding one
	// Mbit/s of video (software decode on 2012-era handsets).
	DecodeCostPerMbps float64
}

// Profiles for the three device models the paper's testbed used. The
// numbers are plausible for the era: weaker devices pay more CPU per
// decoded megabit.
var (
	ProfileGalaxyS2 = Profile{CPUBase: 12, CPUStd: 4, MemTotalMB: 1024, MemFreeBaseMB: 420, DecodeCostPerMbps: 6}
	ProfileNexusS   = Profile{CPUBase: 15, CPUStd: 5, MemTotalMB: 512, MemFreeBaseMB: 180, DecodeCostPerMbps: 9}
	ProfileNexus5   = Profile{CPUBase: 8, CPUStd: 3, MemTotalMB: 2048, MemFreeBaseMB: 900, DecodeCostPerMbps: 3}
	ProfileServer   = Profile{CPUBase: 10, CPUStd: 3, MemTotalMB: 16384, MemFreeBaseMB: 12000, DecodeCostPerMbps: 0}
	ProfileRouter   = Profile{CPUBase: 6, CPUStd: 2, MemTotalMB: 128, MemFreeBaseMB: 64, DecodeCostPerMbps: 0}
)

// load is one synthetic workload occupying resources for a time span.
type load struct {
	cpu, memMB, io float64
	from, to       time.Duration
}

// Device is the hardware model of one node.
type Device struct {
	sim     *simnet.Sim
	profile Profile
	loads   []load

	// decodeDemand is the CPU share the video player currently asks
	// for; the player registers it while playing.
	decodeDemand float64

	cpu    float64 // latest sampled utilization 0-100
	memMB  float64 // latest sampled free memory
	ioWait float64 // latest sampled I/O wait percentage
	ticker *simnet.Ticker

	// OnSample, if set, receives the per-second hardware sample; the
	// OS/hardware probe registers here.
	OnSample func(now time.Duration, cpu, memFreeMB, ioWait float64)
}

// NewDevice creates a device model and starts its one-second sampling
// process.
func NewDevice(sim *simnet.Sim, p Profile) *Device {
	d := &Device{sim: sim, profile: p}
	d.sample(0)
	d.ticker = simnet.NewTicker(sim, time.Second, d.sample)
	return d
}

// Stop halts the sampling process.
func (d *Device) Stop() { d.ticker.Stop() }

// Stress schedules a synthetic workload (the `stress` tool): cpu is the
// CPU percentage consumed, memMB the resident memory claimed, io the
// I/O wait percentage induced, over [from, from+dur).
func (d *Device) Stress(cpu, memMB, io float64, from, dur time.Duration) {
	d.loads = append(d.loads, load{cpu: cpu, memMB: memMB, io: io, from: from, to: from + dur})
}

// SetDecodeDemand registers the CPU share the media pipeline wants;
// the video player updates this as the nominal bitrate changes.
func (d *Device) SetDecodeDemand(cpu float64) { d.decodeDemand = cpu }

// Profile returns the device's baseline profile.
func (d *Device) Profile() Profile { return d.profile }

// CPU returns the most recent CPU utilization sample (0-100).
func (d *Device) CPU() float64 { return d.cpu }

// MemFreeMB returns the most recent free-memory sample.
func (d *Device) MemFreeMB() float64 { return d.memMB }

// IOWait returns the most recent I/O wait sample (0-100).
func (d *Device) IOWait() float64 { return d.ioWait }

// DecodeFactor returns the fraction [0,1] of required decode throughput
// the device can currently sustain. It is 1 while there is CPU headroom
// and degrades once demand plus background load exceeds the machine:
// the video player multiplies its consumption rate by this factor, which
// is what turns device load into stalls and frame skips.
func (d *Device) DecodeFactor() float64 {
	if d.decodeDemand <= 0 {
		return 1
	}
	other := d.backgroundCPU(d.sim.Now())
	avail := 100 - other
	if avail < 5 {
		avail = 5
	}
	f := 1.0
	if avail < d.decodeDemand {
		f = avail / d.decodeDemand
	}
	// Scheduling contention: past ~70% background utilization the
	// decode/render pipeline misses deadlines even with nominal CPU
	// headroom (thread contention, thermal throttling). The penalty
	// ramps from none at 70% to 65% at full load.
	if other > 70 {
		f *= 1 - 0.65*(other-70)/30
	}
	return f
}

// backgroundCPU sums baseline and stress CPU at time t (without the
// decoder's own demand).
func (d *Device) backgroundCPU(t time.Duration) float64 {
	cpu := d.profile.CPUBase
	for _, l := range d.loads {
		if t >= l.from && t < l.to {
			cpu += l.cpu
		}
	}
	if cpu > 100 {
		cpu = 100
	}
	return cpu
}

func (d *Device) sample(now time.Duration) {
	rng := d.sim.Rand()
	cpu := d.backgroundCPU(now) + rng.NormFloat64()*d.profile.CPUStd
	// The decoder's demand shows up in measured utilization too, capped
	// by what the machine can give.
	cpu += minf(d.decodeDemand, 100-d.backgroundCPU(now))
	d.cpu = clampPct(cpu)

	memUsed := 0.0
	io := 0.0
	for _, l := range d.loads {
		if now >= l.from && now < l.to {
			memUsed += l.memMB
			io += l.io
		}
	}
	free := d.profile.MemFreeBaseMB - memUsed + rng.NormFloat64()*d.profile.MemFreeBaseMB*0.03
	if free < 8 {
		free = 8
	}
	d.memMB = free
	d.ioWait = clampPct(io + rng.NormFloat64()*1.5)

	if d.OnSample != nil {
		d.OnSample(now, d.cpu, d.memMB, d.ioWait)
	}
}

func clampPct(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

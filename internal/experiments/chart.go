package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Minimal text charting for experiment output: the paper's Figure 9 is
// a pair of CDFs, rendered here as aligned ASCII curves so vqreport can
// show the distribution shape, not just quantiles.

// cdfSeries is one named empirical distribution.
type cdfSeries struct {
	Name   string
	Values []float64
}

// renderCDF draws the CDFs of several series on a shared x axis as a
// rows x cols character grid. Each series gets its own glyph; exact
// overlaps show the later series' glyph.
func renderCDF(title, xlabel string, series []cdfSeries, rows, cols int) string {
	glyphs := []byte{'*', 'o', '+', 'x', '#'}
	lo, hi := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, v := range s.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			any = true
		}
	}
	if !any {
		return title + ": (no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for si, s := range series {
		if len(s.Values) == 0 {
			continue
		}
		vs := append([]float64{}, s.Values...)
		sort.Float64s(vs)
		g := glyphs[si%len(glyphs)]
		for c := 0; c < cols; c++ {
			x := lo + (hi-lo)*float64(c)/float64(cols-1)
			// F(x): fraction of values <= x.
			f := float64(sort.SearchFloat64s(vs, x+1e-12)) / float64(len(vs))
			r := rows - 1 - int(f*float64(rows-1)+0.5)
			grid[r][c] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r := 0; r < rows; r++ {
		f := float64(rows-1-r) / float64(rows-1)
		fmt.Fprintf(&b, "%5.2f |%s|\n", f, grid[r])
	}
	fmt.Fprintf(&b, "      %s\n", strings.Repeat("-", cols+2))
	fmt.Fprintf(&b, "      %-*.4g%*.4g  (%s)\n", cols/2, lo, cols-cols/2, hi, xlabel)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s (n=%d)", glyphs[si%len(glyphs)], s.Name, len(s.Values)))
	}
	fmt.Fprintf(&b, "      legend: %s\n", strings.Join(legend, "   "))
	return b.String()
}

package experiments

import (
	"time"

	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
)

// tcpSender drives a plain bulk TCP transfer inside an ablation
// scenario and records when it finished.
type tcpSender struct {
	sim    *simnet.Sim
	bytes  int64
	start  time.Duration
	doneAt time.Duration
}

// newTCPSender wires TCP hosts onto two already-linked nodes and starts
// a bulk transfer a->b of n bytes.
func newTCPSender(sim *simnet.Sim, a *simnet.Node, an *simnet.NIC, b *simnet.Node, bn *simnet.NIC, n int64) *tcpSender {
	s := &tcpSender{sim: sim, bytes: n, start: sim.Now()}
	sender := tcpsim.NewHost(a, an)
	receiver := tcpsim.NewHost(b, bn)
	receiver.Listen(80, func(c *tcpsim.Conn) {
		c.OnPeerClose = func() {
			s.doneAt = sim.Now()
			c.Close()
			sim.Halt()
		}
	})
	conn := sender.Dial(b.Addr, 80)
	conn.OnEstablished = func() {
		conn.Write(n)
		conn.Close()
	}
	return s
}

// throughput returns the achieved goodput in bits per second (zero if
// the transfer never completed).
func (s *tcpSender) throughput() float64 {
	if s.doneAt <= s.start {
		return 0
	}
	return float64(s.bytes) * 8 / (s.doneAt - s.start).Seconds()
}

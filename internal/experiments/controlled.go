package experiments

import (
	"math/rand"
	"sort"
	"strings"

	"vqprobe/internal/features"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/bayes"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/ml/svm"
	"vqprobe/internal/qoe"
	"vqprobe/internal/testbed"
)

// Table1FeatureSelection reproduces Table 1: the feature set surviving
// FCBF on the combined controlled dataset (the paper went from 354
// metrics to 22).
func Table1FeatureSelection(s *Suite) *Table {
	d := dataset(s.Controlled(), []string{"mobile", "router", "server"}, testbed.ExactLabel)
	constructed, _ := features.Construct(d)
	scores := features.FCBF(constructed, fcbfDelta)
	t := &Table{
		ID:     "table1",
		Title:  "Features after Feature Selection (FCBF on the combined controlled dataset)",
		Header: []string{"rank", "feature", "SU(class)"},
	}
	for i, sc := range scores {
		t.AddRow(itoa(i+1), sc.Feature, f3(sc.SU))
	}
	t.AddNote("feature space reduced from %d to %d (paper: 354 to 22)",
		len(constructed.Features()), len(scores))
	return t
}

// severityOrder fixes the row order of detection tables.
var severityOrder = []string{"good", "mild", "severe"}

// Fig3ProblemDetection reproduces Figure 3 and the Section 5.1
// accuracies: per-VP precision/recall for good/mild/severe with 10-fold
// cross-validation on the controlled dataset.
func Fig3ProblemDetection(s *Suite) *Table {
	t := &Table{
		ID:     "fig3",
		Title:  "Problem detection (good/mild/severe), controlled dataset, 10-fold CV",
		Header: []string{"vp", "accuracy", "class", "precision", "recall"},
	}
	for _, set := range VPSets {
		d := dataset(s.Controlled(), set.VPs, testbed.SeverityLabel)
		conf := cvPipeline(d, s.cfg.Folds, s.cfg.Seed, s.cfg.TrainWorkers)
		for _, cls := range severityOrder {
			t.AddRow(set.Name, pct(conf.Accuracy()), cls, f3(conf.Precision(cls)), f3(conf.Recall(cls)))
		}
	}
	t.AddNote("paper overall accuracy: mobile 88.1%%, router 86.4%%, server 85.6%%, combined 88.8%%")
	return t
}

// LocationDetection reproduces Section 5.2: detecting the problem's
// segment (mobile/LAN/WAN x severity).
func LocationDetection(s *Suite) *Table {
	t := &Table{
		ID:     "loc",
		Title:  "Problem location detection (segment x severity), controlled dataset, 10-fold CV",
		Header: []string{"vp", "accuracy", "class", "precision", "recall"},
	}
	for _, set := range VPSets {
		d := dataset(s.Controlled(), set.VPs, testbed.LocationLabel)
		conf := cvPipeline(d, s.cfg.Folds, s.cfg.Seed, s.cfg.TrainWorkers)
		classes := conf.Classes()
		sort.Strings(classes)
		for _, cls := range classes {
			t.AddRow(set.Name, pct(conf.Accuracy()), cls, f3(conf.Precision(cls)), f3(conf.Recall(cls)))
		}
	}
	t.AddNote("paper: server VP localizes LAN problems nearly as well as the router VP")
	return t
}

// Fig4ExactProblem reproduces Figure 4 and the Section 5.3 accuracies:
// per-VP precision/recall over the 15 exact classes.
func Fig4ExactProblem(s *Suite) *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "Exact problem detection (fault x severity), controlled dataset, 10-fold CV",
		Header: []string{"vp", "accuracy", "class", "precision", "recall", "n"},
	}
	for _, set := range VPSets {
		d := dataset(s.Controlled(), set.VPs, testbed.ExactLabel)
		conf := cvPipeline(d, s.cfg.Folds, s.cfg.Seed, s.cfg.TrainWorkers)
		counts := d.ClassCounts()
		for _, cls := range qoe.ExactClasses() {
			if counts[cls] == 0 {
				continue
			}
			t.AddRow(set.Name, pct(conf.Accuracy()), cls, f3(conf.Precision(cls)), f3(conf.Recall(cls)), itoa(counts[cls]))
		}
	}
	t.AddNote("paper overall accuracy: mobile 88.18%%, router 85.74%%, server 84.2%%, combined 88.95%%")
	return t
}

// Table4FeatureRanking reproduces Table 4: the three highest-ranked
// features per fault for each vantage point.
func Table4FeatureRanking(s *Suite) *Table {
	t := &Table{
		ID:     "table4",
		Title:  "Top-3 features per exact problem per vantage point (tree path importance)",
		Header: []string{"vp", "class", "1st", "2nd", "3rd"},
	}
	for _, set := range VPSets {
		d := dataset(s.Controlled(), set.VPs, testbed.ExactLabel)
		reduced, _, _ := features.Select(d, fcbfDelta)
		tree := c45.Default().TrainTree(reduced)
		per := tree.PerClassImportance()
		for _, cls := range qoe.ExactClasses() {
			if cls == "good" {
				continue
			}
			scores := per[cls]
			row := []string{set.Name, cls}
			for i := 0; i < 3; i++ {
				if i < len(scores) {
					row = append(row, scores[i].Feature)
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
	}
	return t
}

// featureSets defines Figure 5's input groups by name predicates over
// the constructed feature space.
var featureSets = []struct {
	Name  string
	Match func(f string) bool
}{
	{"RSSI", func(f string) bool { return strings.Contains(f, "rssi") }},
	{"HW", func(f string) bool { return strings.Contains(f, "hw_") }},
	{"UTILIZATION", func(f string) bool { return strings.Contains(f, "nic_rx_util") || strings.Contains(f, "nic_tx_util") }},
	{"DELAY", func(f string) bool { return strings.Contains(f, "rtt") || strings.Contains(f, "handshake") }},
	{"TCP", func(f string) bool { return strings.Contains(f, "tcp_") }},
	{"ALL", func(string) bool { return true }},
}

// Fig5FeatureSets reproduces Figure 5: exact-problem detection quality
// (macro precision/recall over the classes) using different feature
// subsets on the combined VPs, with FS&FC last.
func Fig5FeatureSets(s *Suite) *Table {
	t := &Table{
		ID:     "fig5",
		Title:  "Detection quality by feature set (combined VPs, exact labels, 10-fold CV)",
		Header: []string{"feature set", "features", "macro precision", "macro recall", "accuracy"},
	}
	d := dataset(s.Controlled(), []string{"mobile", "router", "server"}, testbed.ExactLabel)
	constructed, _ := features.Construct(d)
	all := constructed.Features()
	rng := func() *rand.Rand { return rand.New(rand.NewSource(s.cfg.Seed + 5)) }

	for _, fs := range featureSets {
		var names []string
		for _, f := range all {
			if fs.Match(f) {
				names = append(names, f)
			}
		}
		sub := constructed.Project(names)
		conf := ml.CrossValidate(c45.Default(), sub, s.cfg.Folds, rng())
		t.AddRow(fs.Name, itoa(len(names)), f3(conf.MacroPrecision()), f3(conf.MacroRecall()), pct(conf.Accuracy()))
	}
	// FS & FC: the full pipeline.
	scores := features.FCBF(constructed, fcbfDelta)
	sel := constructed.Project(features.Names(scores))
	conf := ml.CrossValidate(c45.Default(), sel, s.cfg.Folds, rng())
	t.AddRow("FS & FC", itoa(len(scores)), f3(conf.MacroPrecision()), f3(conf.MacroRecall()), pct(conf.Accuracy()))
	t.AddNote("paper shape: RSSI ~ HW < UTILIZATION < DELAY < ALL < FS&FC")
	return t
}

// AlgorithmComparison reproduces the Section 3.2 claim: C4.5 outperforms
// Naive Bayes and SVM on this problem.
func AlgorithmComparison(s *Suite) *Table {
	t := &Table{
		ID:     "algos",
		Title:  "Classifier comparison (combined VPs, 10-fold CV)",
		Header: []string{"task", "algorithm", "accuracy", "macro precision", "macro recall"},
	}
	for _, task := range []struct {
		name  string
		label testbed.Labeler
	}{{"severity", testbed.SeverityLabel}, {"exact", testbed.ExactLabel}} {
		d := dataset(s.Controlled(), []string{"mobile", "router", "server"}, task.label)
		reduced, _, _ := features.Select(d, fcbfDelta)
		for _, alg := range []struct {
			name string
			tr   ml.Trainer
		}{
			{"C4.5", c45.Default()},
			{"NaiveBayes", bayes.New()},
			{"LinearSVM", svm.New(svm.Config{Seed: s.cfg.Seed})},
		} {
			conf := ml.CrossValidate(alg.tr, reduced, s.cfg.Folds, rand.New(rand.NewSource(s.cfg.Seed+9)))
			t.AddRow(task.name, alg.name, pct(conf.Accuracy()), f3(conf.MacroPrecision()), f3(conf.MacroRecall()))
		}
	}
	return t
}

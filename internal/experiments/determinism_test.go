package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"vqprobe/internal/testbed"
)

// TestPipelineWorkerInvariance is the end-to-end determinism proof on a
// controlled corpus: the fitted tree, the FCBF-selected feature list,
// and the cross-validated confusion matrix are all byte-identical
// whether the stack runs serially or on 8 workers.
func TestPipelineWorkerInvariance(t *testing.T) {
	sessions := testbed.GenerateControlled(testbed.GenConfig{Sessions: 120, Seed: 7})
	d := dataset(sessions, []string{"mobile", "router", "server"}, testbed.SeverityLabel)
	if d.Len() < 100 {
		t.Fatalf("corpus too small: %d instances", d.Len())
	}

	serial := TrainPipelineWorkers(d, 1)
	serialTree, err := json.Marshal(serial.Tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		p := TrainPipelineWorkers(d, workers)
		if !reflect.DeepEqual(p.Selected, serial.Selected) {
			t.Errorf("workers=%d selected features differ: %v vs %v", workers, p.Selected, serial.Selected)
		}
		tree, err := json.Marshal(p.Tree)
		if err != nil {
			t.Fatal(err)
		}
		if string(tree) != string(serialTree) {
			t.Errorf("workers=%d serialized tree differs from serial fit", workers)
		}
	}

	serialCV := cvPipeline(d, 5, 3, 1).String()
	for _, workers := range []int{2, 8} {
		if got := cvPipeline(d, 5, 3, workers).String(); got != serialCV {
			t.Errorf("workers=%d CV confusion differs from serial run:\n%s\nvs\n%s", workers, got, serialCV)
		}
	}
}

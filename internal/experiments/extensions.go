package experiments

import (
	"math/rand"
	"time"

	"vqprobe/internal/faults"
	"vqprobe/internal/ml"
	"vqprobe/internal/qoe"
	"vqprobe/internal/testbed"
	"vqprobe/internal/video"
)

// This file implements the extensions the paper proposes but does not
// evaluate: iterative per-entity root cause analysis (Section 7,
// "Collaboration"), continuous training (Section 7), robustness to
// vantage points missing at inference time (Section 2, third challenge),
// and multi-problem sessions (Section 9, future work).

// segmentOf maps a vantage point to the path segment it owns in the
// iterative protocol.
var segmentOf = map[string]qoe.Location{
	"mobile": qoe.LocMobile,
	"router": qoe.LocLAN,
	"server": qoe.LocWAN,
}

// iterativeLabel builds the per-entity training label: an entity only
// learns to recognize "the problem is in MY segment" vs "it is
// somewhere else" vs "all good" — no cross-entity data needed.
func iterativeLabel(seg qoe.Location) testbed.Labeler {
	return func(r testbed.SessionResult) string {
		if r.Label.Severity == qoe.Good || r.Spec.Fault == qoe.FaultNone {
			return "good"
		}
		if r.Spec.Fault.Location() == seg {
			return "mine"
		}
		return "elsewhere"
	}
}

// ExtIterativeRCA evaluates the paper's proposed privacy-preserving
// protocol: each entity trains only on its own measurements with
// my-segment/elsewhere/good labels, then at diagnosis time the entities
// are polled mobile -> router -> server and the first "mine" verdict
// assigns the location. Compared against the centralized combined model.
func ExtIterativeRCA(s *Suite) *Table {
	t := &Table{
		ID:     "ext-iterative",
		Title:  "Extension: iterative per-entity RCA vs centralized combination (location task)",
		Header: []string{"approach", "location accuracy", "notes"},
	}
	order := []string{"mobile", "router", "server"}

	// Split the controlled corpus into train/eval halves.
	all := s.Controlled()
	half := len(all) / 2
	trainRes, evalRes := all[:half], all[half:]

	// Per-entity local models.
	local := map[string]*Pipeline{}
	for _, vp := range order {
		d := dataset(trainRes, []string{vp}, iterativeLabel(segmentOf[vp]))
		local[vp] = TrainPipeline(d)
	}

	truth := func(r testbed.SessionResult) string {
		if r.Label.Severity == qoe.Good || r.Spec.Fault == qoe.FaultNone {
			return "good"
		}
		return r.Spec.Fault.Location().String()
	}

	correct, total := 0, 0
	for _, r := range evalRes {
		want := truth(r)
		got := "good"
		for _, vp := range order {
			verdict := local[vp].PredictVector(r.Combined(vp))
			if verdict == "mine" {
				got = segmentOf[vp].String()
				break
			}
		}
		if got == want {
			correct++
		}
		total++
	}
	t.AddRow("iterative (no data sharing)", pct(float64(correct)/float64(total)),
		"each entity reports only in-my-segment / not")

	// Centralized baseline: combined model with location labels,
	// trained on the same half, evaluated on the other.
	train := dataset(trainRes, order, testbed.LocationLabel)
	p := TrainPipeline(train)
	correct, total = 0, 0
	for _, r := range evalRes {
		want := truth(r)
		pred := p.PredictVector(r.Combined(order...))
		base, _ := splitClass(pred)
		if base == want {
			correct++
		}
		total++
	}
	t.AddRow("centralized (all raw data shared)", pct(float64(correct)/float64(total)),
		"upper bound requiring full collaboration")
	t.AddNote("the paper argues iterative RCA trades little accuracy for full privacy")
	return t
}

// ExtContinuousTraining evaluates Section 7's continuous-training claim:
// folding progressively more labeled real-world instances into the lab
// training set improves real-world accuracy.
func ExtContinuousTraining(s *Suite) *Table {
	t := &Table{
		ID:     "ext-continuous",
		Title:  "Extension: continuous training with labeled real-world instances (exact task)",
		Header: []string{"real-world share added", "accuracy on held-out real-world data"},
	}
	vps := []string{"mobile", "router", "server"}
	rw := s.RealWorld()
	half := len(rw) / 2
	pool, held := rw[:half], rw[half:]
	heldDS := dataset(held, vps, testbed.ExactLabel)

	base := dataset(s.Controlled(), vps, testbed.ExactLabel)
	for _, share := range []float64{0, 0.25, 0.5, 1.0} {
		n := int(share * float64(len(pool)))
		combined := make([]ml.Instance, 0, base.Len()+n)
		combined = append(combined, base.Instances...)
		extra := dataset(pool[:n], vps, testbed.ExactLabel)
		combined = append(combined, extra.Instances...)
		p := TrainPipeline(ml.NewDataset(combined))
		conf := p.Evaluate(heldDS)
		t.AddRow(pct(share), pct(conf.Accuracy()))
	}
	t.AddNote("accuracy should be non-decreasing as labeled field data accumulates")
	return t
}

// ExtMissingVP evaluates inference-time robustness: the combined model
// diagnoses sessions whose records are missing entire vantage points
// (C4.5 fractional-instance handling follows both branches on missing
// split values).
func ExtMissingVP(s *Suite) *Table {
	t := &Table{
		ID:     "ext-missingvp",
		Title:  "Extension: combined model with vantage points missing at diagnosis time (severity task)",
		Header: []string{"available VPs", "accuracy"},
	}
	vps := []string{"mobile", "router", "server"}
	all := s.Controlled()
	half := len(all) / 2
	p := TrainPipeline(dataset(all[:half], vps, testbed.SeverityLabel))

	for _, avail := range [][]string{
		{"mobile", "router", "server"},
		{"mobile", "router"},
		{"mobile", "server"},
		{"router", "server"},
		{"mobile"},
		{"router"},
		{"server"},
	} {
		correct, total := 0, 0
		for _, r := range all[half:] {
			pred := p.PredictVector(r.Combined(avail...))
			if pred == testbed.SeverityLabel(r) {
				correct++
			}
			total++
		}
		name := avail[0]
		for _, v := range avail[1:] {
			name += "+" + v
		}
		t.AddRow(name, pct(float64(correct)/float64(total)))
	}
	t.AddNote("accuracy degrades gracefully rather than collapsing when probes disappear")
	return t
}

// multiFaultPairs are plausibly co-occurring problem pairs.
var multiFaultPairs = [][2]qoe.Fault{
	{qoe.MobileLoad, qoe.LowRSSI},
	{qoe.WANCongestion, qoe.LANCongestion},
	{qoe.LANShaping, qoe.MobileLoad},
	{qoe.WiFiInterference, qoe.WANCongestion},
	{qoe.LowRSSI, qoe.WANShaping},
}

// ExtMultiProblem evaluates the paper's future-work scenario: two faults
// injected simultaneously. The single-fault-trained model cannot name
// both; it is scored on whether its prediction matches either induced
// fault ("any-match") and on how often it at least detects a problem.
func ExtMultiProblem(s *Suite) *Table {
	t := &Table{
		ID:     "ext-multiproblem",
		Title:  "Extension: sessions with two co-occurring faults, single-fault-trained model",
		Header: []string{"fault pair", "n", "detected problem", "matched either fault"},
	}
	vps := []string{"mobile", "router", "server"}
	p := TrainPipeline(dataset(s.Controlled(), vps, testbed.ExactLabel))

	rng := rand.New(rand.NewSource(s.cfg.Seed + 99))
	perPair := s.cfg.ControlledSessions / 40
	if perPair < 4 {
		perPair = 4
	}
	for _, pair := range multiFaultPairs {
		detected, matched, n := 0, 0, 0
		for i := 0; i < perPair; i++ {
			clip := video.Clip{
				ID: i, Quality: video.SD, Bitrate: 0.8e6 + rng.Float64()*1.2e6,
				Duration: time.Duration(20+rng.Intn(40)) * time.Second, FPS: 30,
			}
			res := testbed.RunSession(testbed.SessionConfig{
				Opts: testbed.Options{
					Seed:             s.cfg.Seed*1000 + int64(i)*37 + int64(pair[0])*7 + int64(pair[1]),
					BackgroundScale:  0.3,
					InstrumentRouter: true, InstrumentServer: true,
				},
				Spec:  faults.Spec{Fault: pair[0], Intensity: 0.5 + 0.5*rng.Float64()},
				Extra: []faults.Spec{{Fault: pair[1], Intensity: 0.5 + 0.5*rng.Float64()}},
				Clip:  clip,
			})
			if res.Label.Severity == qoe.Good {
				continue // the pair happened not to hurt this session
			}
			n++
			pred := p.PredictVector(res.Combined(vps...))
			if pred != "good" {
				detected++
				base, _ := splitClass(pred)
				if base == pair[0].String() || base == pair[1].String() {
					matched++
				}
			}
		}
		if n == 0 {
			t.AddRow(pair[0].String()+"+"+pair[1].String(), "0", "-", "-")
			continue
		}
		t.AddRow(pair[0].String()+"+"+pair[1].String(), itoa(n),
			pct(float64(detected)/float64(n)), pct(float64(matched)/float64(n)))
	}
	t.AddNote("detection should stay high; naming a specific co-occurring fault is the open problem")
	return t
}

// ExtAdaptiveDelivery tests the Section 2 agnosticism claim directly:
// the exact-problem model trained on progressive/paced downloads is
// evaluated on DASH-style adaptive sessions with the same fault
// catalogue. Feature construction (count/byte/duration normalization)
// is what should make the transfer work.
func ExtAdaptiveDelivery(s *Suite) *Table {
	t := &Table{
		ID:     "ext-adaptive",
		Title:  "Extension: progressive-trained model on adaptive (DASH-like) sessions",
		Header: []string{"metric", "value"},
	}
	vps := []string{"mobile", "router", "server"}
	p := TrainPipeline(dataset(s.Controlled(), vps, testbed.ExactLabel))

	rng := rand.New(rand.NewSource(s.cfg.Seed + 131))
	n := s.cfg.ControlledSessions / 6
	if n < 30 {
		n = 30
	}
	correct, detected, problems, goodRight, goods := 0, 0, 0, 0, 0
	for i := 0; i < n; i++ {
		spec := faults.Spec{Fault: qoe.FaultNone}
		if rng.Float64() < 0.45 {
			spec = faults.Spec{
				Fault:     qoe.Faults[rng.Intn(len(qoe.Faults))],
				Intensity: 0.1 + 0.9*rng.Float64(),
			}
		}
		clip := video.Clip{
			ID: i, Duration: time.Duration(24+rng.Intn(50)) * time.Second,
			Bitrate: 1e6, FPS: 30, Quality: "ABR",
		}
		res, _ := testbed.RunAdaptiveSession(testbed.SessionConfig{
			Opts: testbed.Options{
				Seed:             s.cfg.Seed*77 + int64(i)*13,
				WAN:              testbed.WANDSL,
				BackgroundScale:  0.2 + 0.45*rng.Float64(),
				InstrumentRouter: true, InstrumentServer: true,
			},
			Spec: spec,
			Clip: clip,
		}, video.AdaptiveConfig{})
		pred := p.PredictVector(res.Combined(vps...))
		truth := testbed.ExactLabel(res)
		if truth == "" {
			continue
		}
		if truth == "good" {
			goods++
			if pred == "good" {
				goodRight++
			}
			continue
		}
		problems++
		if pred != "good" {
			detected++
		}
		if pred == truth {
			correct++
		}
	}
	t.AddRow("adaptive sessions evaluated", itoa(goods+problems))
	if goods > 0 {
		t.AddRow("good sessions recognized", pct(float64(goodRight)/float64(goods)))
	}
	if problems > 0 {
		t.AddRow("problems detected (any class)", pct(float64(detected)/float64(problems)))
		t.AddRow("exact class matched", pct(float64(correct)/float64(problems)))
	}
	t.AddNote("adaptation masks mild network faults by design (quality drops instead of stalls)")
	return t
}

// ExtFineSeverity evaluates the paper's Section 9 proposal of a finer
// severity scale: the same pipeline on five MOS bands instead of three,
// per vantage point.
func ExtFineSeverity(s *Suite) *Table {
	t := &Table{
		ID:     "ext-fine",
		Title:  "Extension: five-band severity classification (Sec 9 future work)",
		Header: []string{"vp", "3-band accuracy", "5-band accuracy", "5-band macro recall"},
	}
	for _, set := range VPSets {
		coarse := cvPipeline(dataset(s.Controlled(), set.VPs, testbed.SeverityLabel), s.cfg.Folds, s.cfg.Seed+51, s.cfg.TrainWorkers)
		fine := cvPipeline(dataset(s.Controlled(), set.VPs, testbed.FineSeverityLabel), s.cfg.Folds, s.cfg.Seed+51, s.cfg.TrainWorkers)
		t.AddRow(set.Name, pct(coarse.Accuracy()), pct(fine.Accuracy()), f3(fine.MacroRecall()))
	}
	t.AddNote("finer bands cost accuracy at the band edges; the paper anticipated needing more training data")
	return t
}

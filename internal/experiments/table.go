// Package experiments regenerates every table and figure of the paper's
// evaluation from freshly simulated datasets: the feature-selection
// table (Table 1), the detection/location/exact-problem results
// (Figures 3-4, Section 5.2), the feature rankings (Table 4), the
// feature-set comparison (Figure 5), the real-world evaluations
// (Figures 6-8), the server-side inference CDFs (Figure 9) and the wild
// root-cause table (Table 5), plus the ablations DESIGN.md calls out.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string // experiment identifier ("fig3", "table4", ...)
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-form footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table in aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }

// Markdown renders the table as a GitHub-flavored markdown table with
// the notes as a trailing blockquote.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", strings.ReplaceAll(n, "\n", "\n> "))
	}
	return b.String()
}

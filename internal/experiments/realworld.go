package experiments

import (
	"sort"

	"vqprobe/internal/ml"
	"vqprobe/internal/testbed"
)

// trainEval trains the full pipeline on the controlled dataset and
// evaluates it on an independent result set — the paper's
// train-in-the-lab, test-in-the-world protocol.
func trainEval(s *Suite, vps []string, label testbed.Labeler, eval []testbed.SessionResult) *ml.Confusion {
	train := dataset(s.Controlled(), vps, label)
	p := TrainPipeline(train)
	test := dataset(eval, vps, label)
	return p.Evaluate(test)
}

// Fig6RealWorldDetection reproduces Figure 6: severity detection in the
// semi-controlled real-world deployment, model trained on the lab data.
func Fig6RealWorldDetection(s *Suite) *Table {
	t := &Table{
		ID:     "fig6",
		Title:  "Real-world (induced faults) problem detection, trained on controlled data",
		Header: []string{"vp", "accuracy", "class", "precision", "recall"},
	}
	for _, set := range VPSets {
		conf := trainEval(s, set.VPs, testbed.SeverityLabel, s.RealWorld())
		for _, cls := range severityOrder {
			t.AddRow(set.Name, pct(conf.Accuracy()), cls, f3(conf.Precision(cls)), f3(conf.Recall(cls)))
		}
	}
	t.AddNote("paper accuracy: mobile 88%%, router 84%%, server 81%%, combined 88.1%%")
	return t
}

// Fig7RealWorldExact reproduces Figure 7: exact root-cause detection in
// the real-world deployment with the lab-trained model.
func Fig7RealWorldExact(s *Suite) *Table {
	t := &Table{
		ID:     "fig7",
		Title:  "Real-world (induced faults) exact problem detection, trained on controlled data",
		Header: []string{"vp", "accuracy", "class", "precision", "recall"},
	}
	for _, set := range VPSets {
		conf := trainEval(s, set.VPs, testbed.ExactLabel, s.RealWorld())
		classes := conf.Classes()
		sort.Strings(classes)
		for _, cls := range classes {
			t.AddRow(set.Name, pct(conf.Accuracy()), cls, f3(conf.Precision(cls)), f3(conf.Recall(cls)))
		}
	}
	t.AddNote("paper accuracy: mobile 81.1%%, router 80.5%%, server 79.3%%, combined 82.9%%")
	return t
}

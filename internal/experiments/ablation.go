package experiments

import (
	"math"
	"math/rand"
	"time"

	"vqprobe/internal/features"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/simnet"
	"vqprobe/internal/testbed"
	"vqprobe/internal/traffic"
)

// AblationFC separates the contributions of Feature Construction and
// Feature Selection (Figure 5 only shows them together): exact-problem
// CV accuracy with neither, FC only, FS only, and both.
func AblationFC(s *Suite) *Table {
	t := &Table{
		ID:     "ablate-fc",
		Title:  "Ablation: feature construction vs feature selection (combined VPs, exact labels)",
		Header: []string{"variant", "features", "accuracy", "macro precision", "macro recall"},
	}
	d := dataset(s.Controlled(), []string{"mobile", "router", "server"}, testbed.ExactLabel)
	constructed, _ := features.Construct(d)
	rng := func() *rand.Rand { return rand.New(rand.NewSource(s.cfg.Seed + 21)) }

	eval := func(name string, ds *ml.Dataset) {
		conf := ml.CrossValidate(c45.Default(), ds, s.cfg.Folds, rng())
		t.AddRow(name, itoa(len(ds.Features())), pct(conf.Accuracy()), f3(conf.MacroPrecision()), f3(conf.MacroRecall()))
	}
	eval("raw (no FC, no FS)", d)
	eval("FC only", constructed)
	rawSel := features.FCBF(d, fcbfDelta)
	eval("FS only", d.Project(features.Names(rawSel)))
	sel := features.FCBF(constructed, fcbfDelta)
	eval("FC + FS", constructed.Project(features.Names(sel)))
	return t
}

// AblationPruning measures how C4.5 pruning affects lab-to-wild
// generalization (the pruned tree should transfer at least as well with
// far fewer nodes).
func AblationPruning(s *Suite) *Table {
	t := &Table{
		ID:     "ablate-prune",
		Title:  "Ablation: C4.5 pruning and lab-to-real-world transfer (severity task, combined VPs)",
		Header: []string{"variant", "tree nodes", "cv accuracy", "transfer accuracy"},
	}
	train := dataset(s.Controlled(), []string{"mobile", "router", "server"}, testbed.SeverityLabel)
	test := dataset(s.RealWorld(), []string{"mobile", "router", "server"}, testbed.SeverityLabel)
	constructed, norm := features.Construct(train)
	sel := features.Names(features.FCBF(constructed, fcbfDelta))
	reduced := constructed.Project(sel)
	testReduced := norm.Apply(test).Project(sel)

	for _, v := range []struct {
		name string
		tr   *c45.Trainer
	}{
		{"pruned (CF 0.25)", c45.Default()},
		{"unpruned", c45.New(c45.Config{NoPrune: true})},
	} {
		tree := v.tr.TrainTree(reduced)
		cv := ml.CrossValidate(v.tr, reduced, s.cfg.Folds, rand.New(rand.NewSource(s.cfg.Seed+22)))
		transfer := ml.Evaluate(tree, testReduced)
		t.AddRow(v.name, itoa(tree.Size()), pct(cv.Accuracy()), pct(transfer.Accuracy()))
	}
	return t
}

// AblationVPPairs checks the Section 5.2 remark that vantage-point pairs
// bring no significant gain for location detection.
func AblationVPPairs(s *Suite) *Table {
	t := &Table{
		ID:     "ablate-pairs",
		Title:  "Ablation: VP pairs for location detection (10-fold CV)",
		Header: []string{"vps", "accuracy"},
	}
	sets := [][]string{
		{"mobile"}, {"router"}, {"server"},
		{"mobile", "router"}, {"mobile", "server"}, {"router", "server"},
		{"mobile", "router", "server"},
	}
	for _, vps := range sets {
		d := dataset(s.Controlled(), vps, testbed.LocationLabel)
		conf := cvPipeline(d, s.cfg.Folds, s.cfg.Seed+23, s.cfg.TrainWorkers)
		name := vps[0]
		for _, v := range vps[1:] {
			name += "+" + v
		}
		t.AddRow(name, pct(conf.Accuracy()))
	}
	return t
}

// AblationFluidBackground validates the fluid cross-traffic
// approximation: a TCP transfer competing with a fluid congestor should
// see throughput within a reasonable factor of one competing with a
// real packet-level UDP blaster at the same offered load.
func AblationFluidBackground(*Suite) *Table {
	t := &Table{
		ID:     "ablate-fluid",
		Title:  "Ablation: fluid vs packet-level cross traffic (8Mb/s link, 2MB transfer)",
		Header: []string{"cross traffic", "offered load", "transfer time", "throughput"},
	}
	run := func(kind string, load float64) (time.Duration, float64) {
		sim := simnet.New(99)
		a := sim.NewNode("sender", 1)
		b := sim.NewNode("receiver", 2)
		an, bn := a.AddNIC("0"), b.AddNIC("0")
		link := simnet.ConnectSym(sim, "l", an, bn,
			simnet.LinkConfig{Rate: 8e6, Delay: 20 * time.Millisecond, QueueBytes: 96 * 1024})
		switch kind {
		case "fluid":
			traffic.AttachCongestor(sim, link, simnet.AtoB, load, 0, time.Hour)
		case "packet":
			traffic.NewUDPSource(sim, a, an, 2, load*8e6, 1000, 0, time.Hour)
		}
		srv := newTCPSender(sim, a, an, b, bn, 2_000_000)
		sim.Run(10 * time.Minute)
		return srv.doneAt, srv.throughput()
	}
	dur, thr := run("none", 0)
	t.AddRow("none", "0.00", dur.Round(time.Millisecond).String(), f2(thr/1e6)+" Mb/s")
	for _, load := range []float64{0.3, 0.6, 0.85} {
		for _, kind := range []string{"fluid", "packet"} {
			dur, thr := run(kind, load)
			t.AddRow(kind, f2(load), dur.Round(time.Millisecond).String(), f2(thr/1e6)+" Mb/s")
		}
	}
	t.AddNote("fluid and packet rows at equal load should show same-ballpark throughput")
	return t
}

// AblationForest quantifies the paper's interpretability-vs-accuracy
// trade: the single C4.5 tree the paper chose against a bagged forest,
// on both in-domain CV and lab-to-real-world transfer.
func AblationForest(s *Suite) *Table {
	t := &Table{
		ID:     "ablate-forest",
		Title:  "Ablation: single C4.5 tree vs bagged forest (exact task, combined VPs)",
		Header: []string{"model", "cv accuracy", "transfer accuracy", "nodes"},
	}
	vps := []string{"mobile", "router", "server"}
	train := dataset(s.Controlled(), vps, testbed.ExactLabel)
	test := dataset(s.RealWorld(), vps, testbed.ExactLabel)
	constructed, norm := features.Construct(train)
	sel := features.Names(features.FCBF(constructed, fcbfDelta))
	reduced := constructed.Project(sel)
	testReduced := norm.Apply(test).Project(sel)

	tree := c45.Default().TrainTree(reduced)
	cvTree := ml.CrossValidate(c45.Default(), reduced, s.cfg.Folds, rand.New(rand.NewSource(s.cfg.Seed+31)))
	t.AddRow("single C4.5 (paper's choice)", pct(cvTree.Accuracy()),
		pct(ml.Evaluate(tree, testReduced).Accuracy()), itoa(tree.Size()))

	ft := c45.NewForest(c45.ForestConfig{Trees: 25, Seed: s.cfg.Seed})
	forest := ft.TrainForest(reduced)
	cvForest := ml.CrossValidate(ft, reduced, s.cfg.Folds, rand.New(rand.NewSource(s.cfg.Seed+31)))
	t.AddRow("bagged forest (25 trees)", pct(cvForest.Accuracy()),
		pct(ml.Evaluate(forest, testReduced).Accuracy()), itoa(forest.Size()))
	t.AddNote("the forest trades the paper's tree interpretability (Table 4) for ensemble accuracy")
	return t
}

// AblationMDL compares the two FCBF discretizers: the repo's default
// equal-frequency binning against Fayyad-Irani MDL (used by the original
// FCBF paper and Weka).
func AblationMDL(s *Suite) *Table {
	t := &Table{
		ID:     "ablate-mdl",
		Title:  "Ablation: FCBF discretization — equal-frequency vs Fayyad-Irani MDL (exact task)",
		Header: []string{"discretizer", "features selected", "cv accuracy", "macro recall"},
	}
	d := dataset(s.Controlled(), []string{"mobile", "router", "server"}, testbed.ExactLabel)
	constructed, _ := features.Construct(d)
	for _, v := range []struct {
		name string
		disc features.Discretizer
	}{
		{"equal-frequency (default)", features.EqualFrequency()},
		{"Fayyad-Irani MDL", features.MDL()},
	} {
		sel := features.FCBFWith(constructed, fcbfDelta, v.disc)
		reduced := constructed.Project(features.Names(sel))
		conf := ml.CrossValidate(c45.Default(), reduced, s.cfg.Folds, rand.New(rand.NewSource(s.cfg.Seed+41)))
		t.AddRow(v.name, itoa(len(sel)), pct(conf.Accuracy()), f3(conf.MacroRecall()))
	}
	return t
}

// AblationSeeds checks that the headline conclusion (per-VP detection
// accuracy ordering) is stable across simulation seeds, reporting
// mean +/- std of severity-task CV accuracy over three independent
// worlds.
func AblationSeeds(s *Suite) *Table {
	t := &Table{
		ID:     "ablate-seeds",
		Title:  "Ablation: seed sensitivity of per-VP detection accuracy (severity task)",
		Header: []string{"vp", "mean accuracy", "std", "runs"},
	}
	n := s.cfg.ControlledSessions
	if n > 600 {
		n = 600
	}
	seeds := []int64{s.cfg.Seed + 101, s.cfg.Seed + 202, s.cfg.Seed + 303}
	acc := map[string][]float64{}
	for _, seed := range seeds {
		res := testbed.GenerateControlled(testbed.GenConfig{Sessions: n, Seed: seed, Workers: s.cfg.Workers})
		for _, set := range VPSets {
			d := dataset(res, set.VPs, testbed.SeverityLabel)
			conf := cvPipeline(d, s.cfg.Folds, seed, s.cfg.TrainWorkers)
			acc[set.Name] = append(acc[set.Name], conf.Accuracy())
		}
	}
	for _, set := range VPSets {
		xs := acc[set.Name]
		var sum, sumsq float64
		for _, x := range xs {
			sum += x
			sumsq += x * x
		}
		mean := sum / float64(len(xs))
		std := math.Sqrt(maxf0(sumsq/float64(len(xs)) - mean*mean))
		t.AddRow(set.Name, pct(mean), pct(std), itoa(len(xs)))
	}
	t.AddNote("each run simulates %d fresh sessions with an independent seed", n)
	return t
}

func maxf0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

package experiments

import (
	"sync"

	"vqprobe/internal/testbed"
)

// Config sizes the experiment suite. The paper's datasets had 3919
// controlled, 2619 real-world-induced and 3495 in-the-wild instances;
// defaults are scaled down to keep a full report run in CPU-minutes.
type Config struct {
	ControlledSessions int // default 1200
	RealWorldSessions  int // default 800
	WildSessions       int // default 1000
	Seed               int64
	Folds              int // cross-validation folds; default 10
	Workers            int
	// TrainWorkers bounds the parallelism inside the learning stack
	// (concurrent CV folds, per-node split search, FCBF scoring); zero
	// selects GOMAXPROCS. Every worker count yields byte-identical
	// models and confusions, so this is purely a throughput knob.
	TrainWorkers int
}

func (c *Config) defaults() {
	if c.ControlledSessions == 0 {
		c.ControlledSessions = 1200
	}
	if c.RealWorldSessions == 0 {
		c.RealWorldSessions = 800
	}
	if c.WildSessions == 0 {
		c.WildSessions = 1000
	}
	if c.Folds == 0 {
		c.Folds = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// PaperScale returns a config matching the paper's dataset sizes.
func PaperScale() Config {
	return Config{ControlledSessions: 3919, RealWorldSessions: 2619, WildSessions: 3495, Seed: 1}
}

// Suite owns the three datasets and generates each lazily, exactly once.
type Suite struct {
	cfg Config

	onceC, onceR, onceW sync.Once
	controlled          []testbed.SessionResult
	realworld           []testbed.SessionResult
	wild                []testbed.SessionResult
}

// NewSuite creates a suite with the given config.
func NewSuite(cfg Config) *Suite {
	cfg.defaults()
	return &Suite{cfg: cfg}
}

// Config returns the effective configuration.
func (s *Suite) Config() Config { return s.cfg }

// Controlled returns (generating on first use) the Section 4 dataset.
func (s *Suite) Controlled() []testbed.SessionResult {
	s.onceC.Do(func() {
		s.controlled = testbed.GenerateControlled(testbed.GenConfig{
			Sessions: s.cfg.ControlledSessions, Seed: s.cfg.Seed, Workers: s.cfg.Workers,
		})
	})
	return s.controlled
}

// RealWorld returns the Section 6.1 induced-fault dataset.
func (s *Suite) RealWorld() []testbed.SessionResult {
	s.onceR.Do(func() {
		s.realworld = testbed.GenerateRealWorldInduced(testbed.GenConfig{
			Sessions: s.cfg.RealWorldSessions, Seed: s.cfg.Seed + 1_000_003, Workers: s.cfg.Workers,
		})
	})
	return s.realworld
}

// Wild returns the Section 6.2 in-the-wild dataset.
func (s *Suite) Wild() []testbed.SessionResult {
	s.onceW.Do(func() {
		s.wild = testbed.GenerateWild(testbed.GenConfig{
			Sessions: s.cfg.WildSessions, Seed: s.cfg.Seed + 2_000_003, Workers: s.cfg.Workers,
		})
	})
	return s.wild
}

package experiments

import (
	"sort"
	"strings"

	"vqprobe/internal/qoe"
	"vqprobe/internal/testbed"
)

// wildVPSets: the in-the-wild deployment removed the router probe, so
// only mobile, server and their combination exist (Figure 8).
var wildVPSets = []struct {
	Name string
	VPs  []string
}{
	{"mobile", []string{"mobile"}},
	{"server", []string{"server"}},
	{"combined", []string{"mobile", "server"}},
}

// Fig8InTheWild reproduces Figure 8: good/problematic detection in the
// wild (3G and WiFi, natural faults, missing VPs), with the lab-trained
// model.
func Fig8InTheWild(s *Suite) *Table {
	t := &Table{
		ID:     "fig8",
		Title:  "In-the-wild problem detection (good/problematic), trained on controlled data",
		Header: []string{"vp", "accuracy", "class", "precision", "recall"},
	}
	for _, set := range wildVPSets {
		conf := trainEval(s, set.VPs, testbed.BinaryLabel, s.Wild())
		for _, cls := range []string{"good", "problematic"} {
			t.AddRow(set.Name, pct(conf.Accuracy()), cls, f3(conf.Precision(cls)), f3(conf.Recall(cls)))
		}
	}
	t.AddNote("server rows cover only sessions served by the instrumented private service")
	return t
}

// Fig9ServerEstimates reproduces Figure 9: the server vantage point —
// with transport-layer metrics only — predicts "mobile load" and "low
// RSSI" for wild sessions; the table compares the ground-truth CPU and
// RSSI distributions of flagged vs unflagged sessions.
func Fig9ServerEstimates(s *Suite) *Table {
	t := &Table{
		ID:     "fig9",
		Title:  "Server-side inference of client-local state (wild problematic sessions)",
		Header: []string{"estimate", "group", "n", "p25", "median", "p75"},
	}

	// Train the exact-problem pipeline on the server VP only.
	train := dataset(s.Controlled(), []string{"server"}, testbed.ExactLabel)
	p := TrainPipeline(train)

	var cpuFlag, cpuRest, rssiFlag, rssiRest []float64
	for _, r := range s.Wild() {
		if r.Label.Severity == qoe.Good {
			continue
		}
		srv, ok := r.Records["server"]
		if !ok {
			continue // YouTube sessions have no server probe
		}
		_ = srv
		mob := r.Records["mobile"]
		pred := p.PredictVector(r.Combined("server"))

		cpu := mob["hw_cpu_pct_avg"]
		rssi := mob["wlan0_nic_rssi_dbm_avg"]
		if strings.HasPrefix(pred, "mobile_load") {
			cpuFlag = append(cpuFlag, cpu)
		} else {
			cpuRest = append(cpuRest, cpu)
		}
		if strings.HasPrefix(pred, "low_rssi") {
			rssiFlag = append(rssiFlag, rssi)
		} else {
			rssiRest = append(rssiRest, rssi)
		}
	}
	addDist := func(name, group string, xs []float64) {
		if len(xs) == 0 {
			t.AddRow(name, group, "0", "-", "-", "-")
			return
		}
		sort.Float64s(xs)
		q := func(f float64) string { return f1(xs[int(f*float64(len(xs)-1))]) }
		t.AddRow(name, group, itoa(len(xs)), q(0.25), q(0.5), q(0.75))
	}
	addDist("mobile CPU %", "predicted mobile_load", cpuFlag)
	addDist("mobile CPU %", "not predicted", cpuRest)
	addDist("RSSI dBm", "predicted low_rssi", rssiFlag)
	addDist("RSSI dBm", "not predicted", rssiRest)
	t.AddNote("paper: flagged sessions show clearly higher CPU / lower RSSI ground truth")
	t.AddNote("\n%s\n%s",
		renderCDF("CDF: ground-truth mobile CPU of wild problematic sessions", "CPU %",
			[]cdfSeries{{"predicted mobile_load", cpuFlag}, {"not predicted", cpuRest}}, 10, 56),
		renderCDF("CDF: ground-truth RSSI of wild problematic sessions", "RSSI dBm",
			[]cdfSeries{{"predicted low_rssi", rssiFlag}, {"not predicted", rssiRest}}, 10, 56))
	return t
}

// Table5WildRootCause reproduces Table 5: root-cause predictions over
// the wild dataset using the available VPs (mobile + server where
// present), with mild/severe counts per cause.
func Table5WildRootCause(s *Suite) *Table {
	t := &Table{
		ID:     "table5",
		Title:  "Root-cause predictions in the wild (lab-trained model, mobile+server VPs)",
		Header: []string{"prediction", "mild", "severe", "total"},
	}
	train := dataset(s.Controlled(), []string{"mobile", "server"}, testbed.ExactLabel)
	p := TrainPipeline(train)

	type ms struct{ mild, severe, total int }
	counts := map[string]*ms{}
	goodCount, correctGood, totalGood := 0, 0, 0
	for _, r := range s.Wild() {
		pred := p.PredictVector(r.Combined("mobile", "server"))
		if pred == "good" {
			goodCount++
			if r.Label.Severity == qoe.Good {
				correctGood++
			}
		}
		if r.Label.Severity == qoe.Good {
			totalGood++
		}
		base, sev := splitClass(pred)
		c := counts[base]
		if c == nil {
			c = &ms{}
			counts[base] = c
		}
		c.total++
		switch sev {
		case "mild":
			c.mild++
		case "severe":
			c.severe++
		}
	}
	order := []string{"good"}
	for _, f := range qoe.Faults {
		order = append(order, f.String())
	}
	for _, base := range order {
		c := counts[base]
		if c == nil {
			continue
		}
		t.AddRow(base, itoa(c.mild), itoa(c.severe), itoa(c.total))
	}
	if totalGood > 0 {
		t.AddNote("good sessions correctly identified: %s (paper: 85%%)",
			pct(float64(correctGood)/float64(totalGood)))
	}
	return t
}

// splitClass separates "<fault>_<severity>" into its parts; "good" has
// no severity.
func splitClass(cls string) (base, severity string) {
	for _, suffix := range []string{"_mild", "_severe"} {
		if strings.HasSuffix(cls, suffix) {
			return strings.TrimSuffix(cls, suffix), suffix[1:]
		}
	}
	return cls, ""
}

package experiments

import "fmt"

// Runner produces one experiment table from a suite.
type Runner func(*Suite) *Table

// Entry describes one reproducible experiment.
type Entry struct {
	ID    string
	What  string
	Run   Runner
	Needs string // which datasets the experiment generates on demand
}

// Registry lists every table/figure reproduction and ablation, in report
// order.
var Registry = []Entry{
	{"table1", "Table 1: features surviving FCBF", Table1FeatureSelection, "controlled"},
	{"fig3", "Figure 3 + Sec 5.1: problem detection per VP", Fig3ProblemDetection, "controlled"},
	{"loc", "Sec 5.2: problem location detection", LocationDetection, "controlled"},
	{"fig4", "Figure 4 + Sec 5.3: exact problem detection", Fig4ExactProblem, "controlled"},
	{"table4", "Table 4: per-problem feature ranking", Table4FeatureRanking, "controlled"},
	{"fig5", "Figure 5: detection quality by feature set", Fig5FeatureSets, "controlled"},
	{"algos", "Sec 3.2: C4.5 vs NaiveBayes vs SVM", AlgorithmComparison, "controlled"},
	{"fig6", "Figure 6: real-world severity detection", Fig6RealWorldDetection, "controlled+realworld"},
	{"fig7", "Figure 7: real-world exact detection", Fig7RealWorldExact, "controlled+realworld"},
	{"fig8", "Figure 8: in-the-wild detection", Fig8InTheWild, "controlled+wild"},
	{"fig9", "Figure 9: server-side CPU/RSSI inference", Fig9ServerEstimates, "controlled+wild"},
	{"table5", "Table 5: wild root-cause predictions", Table5WildRootCause, "controlled+wild"},
	{"ablate-fc", "Ablation: FC vs FS contributions", AblationFC, "controlled"},
	{"ablate-prune", "Ablation: pruning and transfer", AblationPruning, "controlled+realworld"},
	{"ablate-pairs", "Ablation: VP pairs for location", AblationVPPairs, "controlled"},
	{"ablate-fluid", "Ablation: fluid vs packet cross traffic", AblationFluidBackground, "-"},
	{"ablate-seeds", "Ablation: seed sensitivity of conclusions", AblationSeeds, "-"},
	{"ablate-mdl", "Ablation: FCBF discretization method", AblationMDL, "controlled"},
	{"ablate-forest", "Ablation: single tree vs bagged forest", AblationForest, "controlled+realworld"},
	{"ext-iterative", "Extension: iterative per-entity RCA (Sec 7)", ExtIterativeRCA, "controlled"},
	{"ext-continuous", "Extension: continuous training (Sec 7)", ExtContinuousTraining, "controlled+realworld"},
	{"ext-missingvp", "Extension: VPs missing at diagnosis time", ExtMissingVP, "controlled"},
	{"ext-multiproblem", "Extension: co-occurring faults (Sec 9)", ExtMultiProblem, "controlled"},
	{"ext-adaptive", "Extension: adaptive (DASH) delivery agnosticism", ExtAdaptiveDelivery, "controlled"},
	{"ext-fine", "Extension: five-band severity (Sec 9)", ExtFineSeverity, "controlled"},
}

// Find returns the registry entry with the given ID.
func Find(id string) (Entry, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("unknown experiment %q", id)
}

package experiments

import (
	"math/rand"

	"vqprobe/internal/metrics"

	"vqprobe/internal/features"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/testbed"
)

// VPSets enumerates the vantage-point combinations the paper evaluates.
var VPSets = []struct {
	Name string
	VPs  []string
}{
	{"mobile", []string{"mobile"}},
	{"router", []string{"router"}},
	{"server", []string{"server"}},
	{"combined", []string{"mobile", "router", "server"}},
}

// fcbfDelta is the SU threshold for feature selection throughout the
// experiments.
const fcbfDelta = 0.02

// Pipeline is the paper's full learning stack: feature construction
// (with train-set scale factors), FCBF selection, and a C4.5 tree.
type Pipeline struct {
	Norm     *features.Normalizer
	Selected []string
	Tree     *c45.Tree
}

// TrainPipeline fits the full FC+FS+C4.5 stack on a training dataset
// with the default (GOMAXPROCS) training parallelism.
func TrainPipeline(train *ml.Dataset) *Pipeline {
	return TrainPipelineWorkers(train, 0)
}

// TrainPipelineWorkers is TrainPipeline with an explicit bound on
// training workers (zero selects GOMAXPROCS, 1 forces a fully serial
// fit). FCBF selection and the C4.5 build are both deterministic for
// any worker count, so the fitted pipeline is byte-identical whatever
// the bound.
func TrainPipelineWorkers(train *ml.Dataset, workers int) *Pipeline {
	constructed, norm := features.Construct(train)
	scores := features.FCBFWorkers(constructed, fcbfDelta, workers)
	names := features.Names(scores)
	projected := constructed.Project(names)
	tree := c45.New(c45.Config{Workers: workers}).TrainTree(projected)
	return &Pipeline{Norm: norm, Selected: names, Tree: tree}
}

// Transform applies the train-set feature construction and selection to
// an evaluation dataset.
func (p *Pipeline) Transform(test *ml.Dataset) *ml.Dataset {
	return p.Norm.Apply(test).Project(p.Selected)
}

// Evaluate scores the pipeline on an independent dataset.
func (p *Pipeline) Evaluate(test *ml.Dataset) *ml.Confusion {
	return ml.Evaluate(p.Tree, p.Transform(test))
}

// cvPipeline runs the paper's 10-fold protocol: feature construction and
// selection are performed once on the corpus (as Weka workflows of the
// era did), then the classifier is cross-validated on the reduced
// dataset. workers bounds both the concurrent folds and, within each
// fold's tree build, the split-search fan-out (zero = GOMAXPROCS).
func cvPipeline(d *ml.Dataset, folds int, seed int64, workers int) *ml.Confusion {
	reduced, _, _ := features.Select(d, fcbfDelta)
	return ml.CrossValidateWorkers(c45.New(c45.Config{Workers: workers}), reduced, folds,
		rand.New(rand.NewSource(seed)), workers)
}

// dataset builds the labeled per-VP dataset from session results.
func dataset(results []testbed.SessionResult, vps []string, label testbed.Labeler) *ml.Dataset {
	return testbed.ToDataset(results, vps, label)
}

// PredictVector classifies one raw (un-normalized) feature vector
// through the pipeline's construction and tree.
func (p *Pipeline) PredictVector(fv metrics.Vector) string {
	return p.Tree.Predict(p.Norm.ApplyVector(fv))
}

package experiments

import (
	"fmt"
	"strings"
	"testing"

	"vqprobe/internal/testbed"
)

// tinySuite is shared across the package's tests; generating datasets is
// the expensive part, so do it once.
var tinySuite = NewSuite(Config{ControlledSessions: 150, RealWorldSessions: 70, WildSessions: 80, Seed: 5})

func TestRegistryIDsUniqueAndFindable(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		got, err := Find(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("Find(%q) failed: %v", e.ID, err)
		}
	}
	if _, err := Find("nonsense"); err == nil {
		t.Error("Find accepted an unknown id")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("n=%d", 3)
	s := tbl.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: n=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestTable1ProducesRanking(t *testing.T) {
	tbl := Table1FeatureSelection(tinySuite)
	if len(tbl.Rows) < 3 {
		t.Fatalf("only %d features selected", len(tbl.Rows))
	}
	// SU column must be non-increasing.
	prev := 2.0
	for _, row := range tbl.Rows {
		var su float64
		if _, err := sscan(row[2], &su); err != nil {
			t.Fatalf("bad SU cell %q", row[2])
		}
		if su > prev+1e-9 {
			t.Fatalf("SU ranking not sorted: %v after %v", su, prev)
		}
		prev = su
	}
}

func TestFig3CoversAllVPSets(t *testing.T) {
	tbl := Fig3ProblemDetection(tinySuite)
	vps := map[string]bool{}
	for _, row := range tbl.Rows {
		vps[row[0]] = true
	}
	for _, want := range []string{"mobile", "router", "server", "combined"} {
		if !vps[want] {
			t.Errorf("fig3 missing VP %s", want)
		}
	}
}

func TestFig3AccuraciesInPlausibleBand(t *testing.T) {
	tbl := Fig3ProblemDetection(tinySuite)
	for _, row := range tbl.Rows {
		var acc float64
		if _, err := sscan(strings.TrimSuffix(row[1], "%"), &acc); err != nil {
			t.Fatalf("bad accuracy cell %q", row[1])
		}
		if acc < 60 || acc > 100 {
			t.Errorf("%s accuracy %.1f%% outside the plausible band", row[0], acc)
		}
	}
}

func TestPipelineTransferNoLeakage(t *testing.T) {
	train := dataset(tinySuite.Controlled(), []string{"mobile"}, testbed.SeverityLabel)
	p := TrainPipeline(train)
	if len(p.Selected) == 0 {
		t.Fatal("pipeline selected no features")
	}
	test := dataset(tinySuite.RealWorld(), []string{"mobile"}, testbed.SeverityLabel)
	conf := p.Evaluate(test)
	if conf.Total() != test.Len() {
		t.Errorf("evaluated %d of %d test instances", conf.Total(), test.Len())
	}
	if conf.Accuracy() < 0.5 {
		t.Errorf("transfer accuracy %.2f implausibly low", conf.Accuracy())
	}
}

func TestPredictVectorHandlesMissingEverything(t *testing.T) {
	train := dataset(tinySuite.Controlled(), []string{"mobile"}, testbed.SeverityLabel)
	p := TrainPipeline(train)
	if got := p.PredictVector(nil); got == "" {
		t.Error("empty vector prediction returned nothing")
	}
}

func TestWildExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("wild experiments need dataset generation")
	}
	for _, id := range []string{"fig8", "fig9", "table5"} {
		e, _ := Find(id)
		tbl := e.Run(tinySuite)
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestAblationFluid(t *testing.T) {
	tbl := AblationFluidBackground(nil)
	if len(tbl.Rows) != 7 {
		t.Fatalf("fluid ablation rows = %d, want 7 (none + 3 loads x 2 kinds)", len(tbl.Rows))
	}
	// Loaded transfers must be slower than the unloaded one.
	base := tbl.Rows[0][2]
	for _, row := range tbl.Rows[1:] {
		if row[2] == base && row[1] != "0.00" {
			t.Errorf("loaded transfer time equals unloaded: %v", row)
		}
	}
}

// sscan parses a float cell.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestExtensionsRun(t *testing.T) {
	for _, id := range []string{"ext-iterative", "ext-missingvp"} {
		e, err := Find(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl := e.Run(tinySuite)
		if len(tbl.Rows) < 2 {
			t.Errorf("%s produced %d rows", id, len(tbl.Rows))
		}
	}
}

func TestExtMissingVPGracefulDegradation(t *testing.T) {
	tbl := ExtMissingVP(tinySuite)
	// First row is the full deployment; every reduced deployment must
	// stay within a plausible band (no collapse to zero).
	for _, row := range tbl.Rows {
		var acc float64
		if _, err := sscan(strings.TrimSuffix(row[1], "%"), &acc); err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		if acc < 50 {
			t.Errorf("deployment %s collapsed to %.1f%%", row[0], acc)
		}
	}
}

func TestExtContinuousTrainingRuns(t *testing.T) {
	tbl := ExtContinuousTraining(tinySuite)
	if len(tbl.Rows) != 4 {
		t.Fatalf("continuous training rows = %d, want 4", len(tbl.Rows))
	}
}

func TestExtMultiProblemRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-problem extension simulates extra sessions")
	}
	tbl := ExtMultiProblem(tinySuite)
	if len(tbl.Rows) != len(multiFaultPairs) {
		t.Fatalf("multi-problem rows = %d, want %d", len(tbl.Rows), len(multiFaultPairs))
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("hello")
	md := tbl.Markdown()
	for _, want := range []string{"### x: demo", "| a | b |", "| --- | --- |", "| 1 | 2 |", "> hello"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestSuiteGeneratesOnce(t *testing.T) {
	s := NewSuite(Config{ControlledSessions: 8, RealWorldSessions: 8, WildSessions: 8, Seed: 77})
	a := s.Controlled()
	b := s.Controlled()
	if &a[0] != &b[0] {
		t.Error("suite regenerated the controlled dataset")
	}
	if len(s.Wild()) != 8 || len(s.RealWorld()) != 8 {
		t.Error("wrong dataset sizes")
	}
}

package experiments

import (
	"strings"
	"testing"
)

func TestRenderCDFBasics(t *testing.T) {
	out := renderCDF("demo", "ms", []cdfSeries{
		{"low", []float64{1, 2, 3, 4, 5}},
		{"high", []float64{50, 60, 70}},
	}, 8, 40)
	for _, want := range []string{"demo", "legend:", "low (n=5)", "high (n=3)", "(ms)"} {
		if !strings.Contains(out, want) {
			t.Errorf("CDF output missing %q:\n%s", want, out)
		}
	}
	// 8 grid rows plus title, axis and legend lines.
	if lines := strings.Count(out, "\n"); lines < 11 {
		t.Errorf("unexpected line count %d:\n%s", lines, out)
	}
}

func TestRenderCDFEmptyAndConstant(t *testing.T) {
	if out := renderCDF("empty", "x", []cdfSeries{{"none", nil}}, 5, 20); !strings.Contains(out, "no data") {
		t.Errorf("empty series: %q", out)
	}
	out := renderCDF("const", "x", []cdfSeries{{"c", []float64{7, 7, 7}}}, 5, 20)
	if !strings.Contains(out, "legend") {
		t.Errorf("constant series failed to render:\n%s", out)
	}
}

func TestRenderCDFMonotone(t *testing.T) {
	// For a single series, the curve must be non-increasing in row index
	// across columns (CDF is monotone).
	out := renderCDF("m", "x", []cdfSeries{{"s", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}}, 12, 40)
	lines := strings.Split(out, "\n")
	lastRowForCol := map[int]int{}
	for r, line := range lines {
		if !strings.Contains(line, "|") {
			continue
		}
		start := strings.Index(line, "|") + 1
		for c, ch := range line[start:] {
			if ch == '*' {
				if prev, ok := lastRowForCol[c]; ok && r < prev {
					t.Fatalf("CDF not monotone at col %d", c)
				}
				lastRowForCol[c] = r
			}
		}
	}
}

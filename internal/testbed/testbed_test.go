package testbed

import (
	"testing"
	"time"

	"vqprobe/internal/faults"
	"vqprobe/internal/qoe"
	"vqprobe/internal/trace"
	"vqprobe/internal/video"
	"vqprobe/internal/wireless"
)

func sd(sec int) video.Clip {
	return video.Clip{ID: 1, Quality: video.SD, Bitrate: 1e6, Duration: time.Duration(sec) * time.Second, FPS: 30}
}

func run(t *testing.T, seed int64, spec faults.Spec, opts Options) SessionResult {
	t.Helper()
	opts.Seed = seed
	if opts.BackgroundScale == 0 {
		opts.BackgroundScale = 0.3
	}
	opts.InstrumentRouter = true
	opts.InstrumentServer = true
	return RunSession(SessionConfig{Opts: opts, Spec: spec, Clip: sd(25)})
}

func TestHealthySessionIsGood(t *testing.T) {
	r := run(t, 1, faults.Spec{Fault: qoe.FaultNone}, Options{})
	if r.Label.Severity != qoe.Good {
		t.Fatalf("healthy session labeled %v (MOS %.2f, %+v)", r.Label.Severity, r.MOS, r.Report)
	}
	for _, vp := range []string{"mobile", "router", "server"} {
		rec, ok := r.Records[vp]
		if !ok {
			t.Fatalf("missing %s record", vp)
		}
		if len(rec) < 80 {
			t.Errorf("%s record has only %d features", vp, len(rec))
		}
	}
}

func TestSevereFaultsDegradeSessions(t *testing.T) {
	for _, f := range qoe.Faults {
		bad := 0
		for _, seed := range []int64{2, 3, 4} {
			r := run(t, seed, faults.Spec{Fault: f, Intensity: 1.0}, Options{})
			if r.Label.Severity != qoe.Good {
				bad++
			}
		}
		if bad == 0 {
			t.Errorf("fault %v at full intensity never degraded QoE in 3 runs", f)
		}
	}
}

func TestSessionDeterminism(t *testing.T) {
	a := run(t, 42, faults.Spec{Fault: qoe.WANCongestion, Intensity: 0.7}, Options{})
	b := run(t, 42, faults.Spec{Fault: qoe.WANCongestion, Intensity: 0.7}, Options{})
	if a.MOS != b.MOS {
		t.Errorf("same seed, different MOS: %.4f vs %.4f", a.MOS, b.MOS)
	}
	am, bm := a.Records["mobile"], b.Records["mobile"]
	if len(am) != len(bm) {
		t.Fatalf("record sizes differ: %d vs %d", len(am), len(bm))
	}
	for k, v := range am {
		if bm[k] != v {
			t.Fatalf("feature %s differs: %v vs %v", k, v, bm[k])
		}
	}
}

func TestInstrumentationFlags(t *testing.T) {
	r := RunSession(SessionConfig{
		Opts: Options{Seed: 5, BackgroundScale: 0.3},
		Clip: sd(20),
	})
	if _, ok := r.Records["mobile"]; !ok {
		t.Error("mobile probe must always exist")
	}
	if _, ok := r.Records["router"]; ok {
		t.Error("router record present without instrumentation")
	}
	if _, ok := r.Records["server"]; ok {
		t.Error("server record present without instrumentation")
	}
}

func TestMobileLoadVisibleInMobileHWMetrics(t *testing.T) {
	healthy := run(t, 6, faults.Spec{Fault: qoe.FaultNone}, Options{})
	loaded := run(t, 6, faults.Spec{Fault: qoe.MobileLoad, Intensity: 0.9}, Options{})
	if loaded.Records["mobile"]["hw_cpu_pct_avg"] <= healthy.Records["mobile"]["hw_cpu_pct_avg"]+20 {
		t.Errorf("mobile load fault CPU %.1f not clearly above healthy %.1f",
			loaded.Records["mobile"]["hw_cpu_pct_avg"], healthy.Records["mobile"]["hw_cpu_pct_avg"])
	}
}

func TestLowRSSIVisibleInMobileLinkMetrics(t *testing.T) {
	healthy := run(t, 7, faults.Spec{Fault: qoe.FaultNone}, Options{})
	weak := run(t, 7, faults.Spec{Fault: qoe.LowRSSI, Intensity: 0.8}, Options{})
	if weak.Records["mobile"]["wlan0_nic_rssi_dbm_avg"] >= healthy.Records["mobile"]["wlan0_nic_rssi_dbm_avg"]-10 {
		t.Errorf("low-RSSI fault RSSI %.1f not clearly below healthy %.1f",
			weak.Records["mobile"]["wlan0_nic_rssi_dbm_avg"], healthy.Records["mobile"]["wlan0_nic_rssi_dbm_avg"])
	}
	// Router and server must NOT have RSSI features at all.
	for _, vp := range []string{"router", "server"} {
		for k := range weak.Records[vp] {
			if k == "wlan0_nic_rssi_dbm_avg" {
				t.Errorf("%s record leaks RSSI", vp)
			}
		}
	}
}

func TestWANCongestionInflatesServerRTT(t *testing.T) {
	healthy := run(t, 8, faults.Spec{Fault: qoe.FaultNone}, Options{})
	congested := run(t, 8, faults.Spec{Fault: qoe.WANCongestion, Intensity: 0.9}, Options{})
	h := healthy.Records["server"]["tcp_s2c_rtt_ms_avg"]
	c := congested.Records["server"]["tcp_s2c_rtt_ms_avg"]
	if c <= h {
		t.Errorf("WAN congestion did not inflate server-side RTT: %.1f vs %.1f", c, h)
	}
}

func TestGenerateControlledStructure(t *testing.T) {
	res := GenerateControlled(GenConfig{Sessions: 24, Seed: 9})
	if len(res) != 24 {
		t.Fatalf("got %d results", len(res))
	}
	goods := 0
	for _, r := range res {
		if r.Context["setting"] != "controlled" {
			t.Error("missing setting context")
		}
		if _, ok := r.Records["router"]; !ok {
			t.Error("controlled sessions must have a router record")
		}
		if _, ok := r.Records["server"]; !ok {
			t.Error("controlled sessions must have a server record")
		}
		if r.Label.Severity == qoe.Good {
			goods++
		}
	}
	if goods < 12 {
		t.Errorf("only %d/24 good sessions; calibration drifted", goods)
	}
}

func TestGenerateWildStructure(t *testing.T) {
	res := GenerateWild(GenConfig{Sessions: 30, Seed: 10})
	youtube, private := 0, 0
	for _, r := range res {
		if _, ok := r.Records["router"]; ok {
			t.Fatal("wild sessions must not have a router probe")
		}
		if _, ok := r.Records["server"]; ok {
			private++
		} else {
			youtube++
		}
		if r.Context["tech"] != string(wireless.Tech3G) && r.Context["tech"] != string(wireless.TechWiFi) {
			t.Errorf("unexpected tech %q", r.Context["tech"])
		}
	}
	if youtube == 0 || private == 0 {
		t.Errorf("expected a youtube/private mix, got %d/%d", youtube, private)
	}
	if youtube < private {
		t.Errorf("youtube sessions (%d) should dominate private (%d)", youtube, private)
	}
}

func TestGenerateRealWorldStructure(t *testing.T) {
	res := GenerateRealWorldInduced(GenConfig{Sessions: 24, Seed: 11})
	sawShaping := false
	for _, r := range res {
		if _, ok := r.Records["router"]; !ok {
			t.Fatal("real-world sessions keep the router probe")
		}
		if r.Spec.Fault == qoe.LANShaping || r.Spec.Fault == qoe.WANShaping {
			sawShaping = true
		}
	}
	if sawShaping {
		t.Error("shaping faults are lab-only; the 6.1 protocol induces five fault kinds")
	}
}

func TestToDatasetAndLabelers(t *testing.T) {
	res := GenerateControlled(GenConfig{Sessions: 16, Seed: 12})
	d := ToDataset(res, []string{"mobile"}, SeverityLabel)
	if d.Len() == 0 {
		t.Fatal("empty dataset")
	}
	for _, f := range d.Features() {
		if len(f) < 8 || f[:7] != "mobile." {
			t.Fatalf("unprefixed feature %q", f)
		}
	}
	// Binary labels are a coarsening of severity labels.
	b := ToDataset(res, []string{"mobile"}, BinaryLabel)
	counts := b.ClassCounts()
	if counts["good"]+counts["problematic"] != b.Len() {
		t.Error("binary labeler produced unexpected classes")
	}
}

func TestCombinedMergesOnlyPresentVPs(t *testing.T) {
	res := RunSession(SessionConfig{
		Opts: Options{Seed: 13, BackgroundScale: 0.3, InstrumentServer: true},
		Clip: sd(20),
	})
	fv := res.Combined("mobile", "router", "server")
	hasRouter := false
	for k := range fv {
		if len(k) > 7 && k[:7] == "router." {
			hasRouter = true
		}
	}
	if hasRouter {
		t.Error("combined vector contains router features without a router probe")
	}
}

func TestRadioOutageFailsSession(t *testing.T) {
	res := RunSession(SessionConfig{
		Opts:          Options{Seed: 44, BackgroundScale: 0.3, InstrumentServer: true},
		Clip:          sd(30),
		RadioOutageAt: 8 * time.Second,
	})
	if !res.Report.Failed {
		t.Fatalf("session with a permanent radio outage did not fail: %+v", res.Report)
	}
	if res.Label.Severity == qoe.Good {
		t.Error("outage session labeled good")
	}
	// The mobile probe saw the disconnection.
	if res.Records["mobile"]["wlan0_nic_disconnects"] == 0 {
		t.Error("mobile link probe recorded no disconnects")
	}
}

func TestRunAdaptiveSession(t *testing.T) {
	res, rep := RunAdaptiveSession(SessionConfig{
		Opts: Options{Seed: 50, BackgroundScale: 0.3, InstrumentRouter: true, InstrumentServer: true},
		Clip: sd(24),
	}, video.AdaptiveConfig{})
	if res.Context["delivery"] != "adaptive" {
		t.Error("missing adaptive delivery context")
	}
	if !rep.Completed {
		t.Fatalf("healthy adaptive session failed: %+v", rep)
	}
	if len(res.Records["mobile"]) < 80 {
		t.Errorf("mobile record has %d features", len(res.Records["mobile"]))
	}
	if rep.AvgBitrate <= 0 {
		t.Error("no bitrate recorded")
	}
}

func TestSessionTracing(t *testing.T) {
	res := RunSession(SessionConfig{
		Opts:     Options{Seed: 7, BackgroundScale: 0.3},
		Spec:     faults.Spec{Fault: qoe.LANCongestion, Intensity: 1.0},
		Clip:     sd(25),
		TraceBuf: 1 << 16,
	})
	tr := res.Trace
	if tr == nil {
		t.Fatal("TraceBuf set but SessionResult.Trace is nil")
	}
	if tr.Len() == 0 {
		t.Fatal("traced session recorded no events")
	}
	// Index the buffer: the player's session span must parent the
	// download span, and a congested session must show net activity.
	var sessionID, downloadParent trace.SpanID
	names := map[string]int{}
	tracks := map[string]int{}
	for _, ev := range tr.Events() {
		names[ev.Name]++
		tracks[ev.Track]++
		switch {
		case ev.Track == "player" && ev.Name == "session" && ev.Kind == trace.KindSpan:
			sessionID = ev.ID
		case ev.Track == "player" && ev.Name == "download" && ev.Kind == trace.KindSpan:
			downloadParent = ev.Parent
		}
	}
	if sessionID == 0 {
		t.Fatal("no player session span recorded")
	}
	if downloadParent != sessionID {
		t.Errorf("download span parent = %d, want session span %d", downloadParent, sessionID)
	}
	for _, want := range []string{"net", "player", "tcp", "testbed"} {
		if tracks[want] == 0 {
			t.Errorf("no events on track %q (tracks: %v)", want, tracks)
		}
	}
	if names["enqueue"] == 0 {
		t.Error("congested session recorded no enqueue events")
	}
	if names["established"] == 0 {
		t.Error("no TCP established event recorded")
	}

	// The same seed without TraceBuf must not trace (disabled default)
	// and must produce identical results: tracing cannot perturb the
	// simulation because it draws no randomness and schedules nothing.
	plain := RunSession(SessionConfig{
		Opts: Options{Seed: 7, BackgroundScale: 0.3},
		Spec: faults.Spec{Fault: qoe.LANCongestion, Intensity: 1.0},
		Clip: sd(25),
	})
	if plain.Trace != nil {
		t.Error("untraced session has non-nil Trace")
	}
	if plain.MOS != res.MOS {
		t.Errorf("tracing changed the simulation: MOS %.4f vs %.4f", plain.MOS, res.MOS)
	}
}

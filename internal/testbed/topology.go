// Package testbed orchestrates complete experiments: it builds the
// paper's testbed topology (Figure 2), layers background variation on
// it, injects faults (Table 2), runs video sessions, collects the
// per-vantage-point records, labels them with MOS-derived classes, and
// assembles ML datasets.
//
// Three generators mirror the paper's three evaluation settings:
// GenerateControlled (Section 4/5), GenerateRealWorldInduced (Section
// 6.1) and GenerateWild (Section 6.2).
package testbed

import (
	"time"

	"vqprobe/internal/faults"
	"vqprobe/internal/hardware"
	"vqprobe/internal/probe"
	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
	"vqprobe/internal/traffic"
	"vqprobe/internal/video"
	"vqprobe/internal/wireless"
)

// Node addresses in every topology.
const (
	AddrPhone  simnet.Addr = 1
	AddrServer simnet.Addr = 2
	AddrRouter simnet.Addr = 100
)

// WANProfile selects the emulated broadband link (Table 3).
type WANProfile int

// The two WAN emulations of the paper's testbed.
const (
	WANDSL WANProfile = iota
	WANMobile
)

func (p WANProfile) String() string {
	switch p {
	case WANMobile:
		return "mobile"
	case WANCDN:
		return "cdn"
	default:
		return "dsl"
	}
}

// wanConfig returns the Table 3 link settings. Delay and loss follow
// normal distributions within the indicated ranges: the jitter std is
// half the quoted +- range so ~95% of packets fall inside it.
func wanConfig(p WANProfile) simnet.LinkConfig {
	switch p {
	case WANCDN:
		return simnet.LinkConfig{
			Rate: 20e6, Delay: 22 * time.Millisecond,
			JitterStd: 4 * time.Millisecond, Loss: 0.001,
			QueueBytes: 256 * 1024,
		}
	case WANMobile:
		// Table 3 rate and delay. The quoted 1.4% loss is the WAN
		// *shaping-fault* setting (Table 2); a healthy cellular bearer
		// hides radio loss behind RLC-layer ARQ, so the baseline is
		// nearly loss-free (Reno at 0.3%+ random loss and 100ms RTT
		// would cap below every HD bitrate) and the full Table value is
		// applied by the WAN-shaping injector.
		return simnet.LinkConfig{
			Rate: 5.22e6, Delay: 100 * time.Millisecond,
			JitterStd: 15 * time.Millisecond, Loss: 0.0005,
			QueueBytes: 96 * 1024,
		}
	default:
		// Table 3 DSL rate/delay; see the loss note above (0.75% is the
		// shaping-fault value).
		return simnet.LinkConfig{
			Rate: 7.8e6, Delay: 50 * time.Millisecond,
			JitterStd: 10 * time.Millisecond, Loss: 0.0005,
			QueueBytes: 96 * 1024,
		}
	}
}

// Options parameterize one topology build.
type Options struct {
	Seed int64
	WAN  WANProfile
	// Tech selects the last hop: WiFi goes phone-AP-WAN-server; 3G
	// makes the middle node an uninstrumented cell tower.
	Tech wireless.Technology
	// Device is the phone's hardware profile; zero value selects a
	// Galaxy S II (the paper's main device).
	Device hardware.Profile
	// BaseRSSI of the radio link; zero selects a healthy -52 dBm.
	BaseRSSI float64
	// Mobility enables the RSSI random walk (in-the-wild users carry
	// the phone around).
	Mobility bool
	// Pacing enables YouTube-style server pacing.
	Pacing bool
	// BackgroundScale multiplies the D-ITG-style background mix on the
	// WAN; zero disables background (tests); the generators randomize
	// it per session.
	BackgroundScale float64
	// ServerLoadMean is the ApacheBench-style baseline utilization of
	// the content server.
	ServerLoadMean float64
	// InstrumentRouter/InstrumentServer control which probes exist
	// beyond the always-present mobile probe.
	InstrumentRouter bool
	InstrumentServer bool
	// WiFiRate is the nominal capacity of the radio link; zero selects
	// 70 Mbit/s (802.11n single stream ceiling).
	WiFiRate float64
	// disableVideoServer skips installing the progressive video server
	// (adaptive sessions install their own listener on the same port).
	disableVideoServer bool
}

// Topology is a fully built testbed world.
type Topology struct {
	Sim *simnet.Sim

	PhoneHost  *tcpsim.Host
	ServerHost *tcpsim.Host
	RouterNode *simnet.Node

	WiFi    *simnet.Link
	WAN     *simnet.Link
	Channel *wireless.Channel

	PhoneDev  *hardware.Device
	RouterDev *hardware.Device
	ServerDev *hardware.Device

	SrvLoad *traffic.ServerLoad
	Server  *video.Server

	Mobile *probe.VantagePoint
	Router *probe.VantagePoint // nil when not instrumented
	SrvVP  *probe.VantagePoint // nil when not instrumented

	opts Options
}

// Build constructs the Figure 2 testbed: content server - WAN link -
// router/AP - radio link - phone, with hardware models, probes and the
// video server application installed.
func Build(opts Options) *Topology {
	if opts.Device.MemTotalMB == 0 {
		opts.Device = hardware.ProfileGalaxyS2
	}
	if opts.BaseRSSI == 0 {
		opts.BaseRSSI = -52
	}
	if opts.Tech == "" {
		opts.Tech = wireless.TechWiFi
	}
	if opts.WiFiRate == 0 {
		opts.WiFiRate = 70e6
	}

	sim := simnet.New(opts.Seed)
	rng := sim.Rand()

	phone := sim.NewNode("phone", AddrPhone)
	router := sim.NewNode("router", AddrRouter)
	server := sim.NewNode("server", AddrServer)

	pNIC := phone.AddNIC("wlan0")
	rLan := router.AddNIC("wlan0")
	rWan := router.AddNIC("eth0")
	sNIC := server.AddNIC("eth0")

	radioCfg := simnet.LinkConfig{
		Rate: opts.WiFiRate, Delay: 2 * time.Millisecond,
		Retries: 7, RetryBackoff: 200 * time.Microsecond,
		QueueBytes: 256 * 1024,
	}
	if opts.Tech == wireless.Tech3G {
		radioCfg.Rate = 7.2e6
		radioCfg.Delay = 35 * time.Millisecond
		radioCfg.Retries = 5
	}
	wifi := simnet.ConnectSym(sim, "radio", pNIC, rLan, radioCfg)
	wan := simnet.ConnectSym(sim, "wan", rWan, sNIC, wanConfig(opts.WAN))

	rt := simnet.NewRouter(router)
	rt.AddRoute(AddrPhone, rLan)
	rt.SetDefault(rWan)

	walk := 0.0
	if opts.Mobility {
		walk = 2.0
	}
	chn := wireless.Attach(sim, wifi, wireless.ChannelConfig{
		Tech:     opts.Tech,
		BaseRSSI: opts.BaseRSSI + rng.NormFloat64()*2,
		RSSIStd:  2,
		Walk:     walk,
	})

	phoneHost := tcpsim.NewHost(phone, pNIC)
	phoneHost.DefaultMSS = 1380 // cellular-era handset MTU clamp
	serverHost := tcpsim.NewHost(server, sNIC)

	phoneDev := hardware.NewDevice(sim, opts.Device)
	routerDev := hardware.NewDevice(sim, hardware.ProfileRouter)
	serverDev := hardware.NewDevice(sim, hardware.ProfileServer)

	srvLoad := traffic.NewServerLoad(sim, opts.ServerLoadMean, 0.04)
	var vs *video.Server
	if !opts.disableVideoServer {
		vs = video.NewServer(serverHost, video.ServerConfig{
			Pacing: opts.Pacing,
			LoadFn: srvLoad.Level,
		})
	}

	t := &Topology{
		Sim: sim, PhoneHost: phoneHost, ServerHost: serverHost,
		RouterNode: router, WiFi: wifi, WAN: wan, Channel: chn,
		PhoneDev: phoneDev, RouterDev: routerDev, ServerDev: serverDev,
		SrvLoad: srvLoad, Server: vs, opts: opts,
	}

	// Probes. The mobile probe is the only one with radio visibility.
	t.Mobile = probe.NewVantagePoint("mobile", phone, phoneDev)
	t.Mobile.AddLink(sim, "wlan0", pNIC, chn)
	if opts.InstrumentRouter {
		t.Router = probe.NewVantagePoint("router", router, routerDev)
		t.Router.AddLink(sim, "wlan0", rLan, nil)
		t.Router.AddLink(sim, "eth0", rWan, nil)
	}
	if opts.InstrumentServer {
		t.SrvVP = probe.NewVantagePoint("server", server, serverDev)
		t.SrvVP.AddLink(sim, "eth0", sNIC, nil)
	}

	// Ever-present background variation (Section 4.2).
	if opts.BackgroundScale > 0 {
		traffic.AttachBackground(sim, wan, simnet.BtoA, traffic.BackgroundConfig{Scale: opts.BackgroundScale})
		traffic.AttachBackground(sim, wan, simnet.AtoB, traffic.BackgroundConfig{Scale: opts.BackgroundScale * 0.5})
		traffic.AttachBackground(sim, wifi, simnet.BtoA, traffic.BackgroundConfig{
			Scale: opts.BackgroundScale * 0.4,
			Apps:  []traffic.AppKind{traffic.AppWeb, traffic.AppVoIP},
		})
	}
	return t
}

// FaultTarget exposes the knobs fault injectors manipulate.
// Video data flows server->router (WAN BtoA) and router->phone (WiFi
// BtoA) given the Connect argument order above.
func (t *Topology) FaultTarget() faults.Target {
	return faults.Target{
		Rng:      t.Sim.Rand(),
		Sim:      t.Sim,
		WANLink:  t.WAN,
		WANDown:  simnet.BtoA,
		WiFi:     t.WiFi,
		WiFiDown: simnet.BtoA,
		Channel:  t.Channel,
		Device:   t.PhoneDev,
		SrvLoad:  t.SrvLoad,
	}
}

// WANCDN emulates the short, fat path to a nearby CDN edge node — the
// "YouTube" servers of the real-world experiments.
const WANCDN WANProfile = 2

package testbed

import (
	"time"

	"vqprobe/internal/faults"
	"vqprobe/internal/metrics"
	"vqprobe/internal/qoe"
	"vqprobe/internal/simnet"
	"vqprobe/internal/trace"
	"vqprobe/internal/video"
)

// SessionResult is everything one video session produced: the QoE ground
// truth, the label, and the per-vantage-point measurement records.
type SessionResult struct {
	Report video.Report
	MOS    float64
	Label  qoe.Label
	Spec   faults.Spec
	// Extra lists co-occurring faults beyond Spec (multi-problem
	// sessions).
	Extra []faults.Spec

	// Records maps vantage point name ("mobile", "router", "server")
	// to its feature vector; absent VPs are absent keys.
	Records map[string]metrics.Vector

	// Context carries non-feature attributes (wan profile, radio tech,
	// clip quality) used for slicing results, never for training.
	Context map[string]string

	// Timeline is the player's event log (state changes, stalls), for
	// inspection tools; never used for training.
	Timeline []video.Event

	// Trace is the session's event recorder, populated only when
	// SessionConfig.TraceBuf was positive. Timestamps are virtual
	// (simulator) time.
	Trace *trace.Tracer
}

// Combined merges the given vantage points' records into one prefixed
// vector ("mobile.tcp_...", ...). Missing VPs contribute nothing, which
// the ML layer treats as missing values.
func (r SessionResult) Combined(vps ...string) metrics.Vector {
	out := metrics.Vector{}
	for _, vp := range vps {
		if rec, ok := r.Records[vp]; ok {
			out.Merge(vp, rec)
		}
	}
	return out
}

// SessionConfig describes one scenario run.
type SessionConfig struct {
	Opts Options
	Spec faults.Spec
	// Extra holds additional co-occurring faults (the paper's stated
	// future work on multi-problem sessions); each is applied with the
	// same window as Spec.
	Extra []faults.Spec
	// FaultFrom/FaultDur bound time-windowed faults; zero FaultDur
	// means "the whole session" (controlled-testbed style).
	FaultFrom time.Duration
	FaultDur  time.Duration
	Clip      video.Clip
	// MaxWall caps the session's virtual wall time; zero derives a cap
	// from the clip duration.
	MaxWall time.Duration
	// RadioOutageAt, when positive, drops the radio association
	// permanently at that time — a roaming user leaving coverage
	// mid-session (wild-scenario mobility).
	RadioOutageAt time.Duration
	// TraceBuf, when positive, attaches a trace.Tracer with that ring
	// capacity to the session's simulator (virtual-clock timestamps);
	// it comes back in SessionResult.Trace. Zero disables tracing.
	TraceBuf int
}

// RunSession builds a fresh topology, injects the fault, streams one
// video and collects all records. Each session is its own simulation,
// so sessions are independent and parallelizable. Every returned
// buffer is freshly allocated; loops running many sessions should use
// a Runner, which reuses the result-assembly buffers between runs.
func RunSession(cfg SessionConfig) SessionResult {
	return runSession(cfg, nil)
}

// Runner runs sessions back to back, reusing the per-session
// result-assembly buffers (vantage-point record vectors, the records
// and context maps) between runs — the cheap path shared by
// `vqsim -sessions` and the vqfleet full-fidelity mode. The returned
// SessionResult aliases the Runner's buffers: consume or copy it
// before the next Run. The simulation world itself (topology, TCP
// state, player) is still rebuilt per session — sessions stay fully
// independent; the Runner only removes the result-path churn.
type Runner struct {
	records map[string]metrics.Vector
	context map[string]string
}

// NewRunner returns a Runner with empty reusable buffers.
func NewRunner() *Runner {
	return &Runner{
		records: make(map[string]metrics.Vector, 3),
		context: make(map[string]string, 4),
	}
}

// Run executes one session on the pooled path. See Runner for the
// aliasing contract.
func (r *Runner) Run(cfg SessionConfig) SessionResult {
	return runSession(cfg, r)
}

func runSession(cfg SessionConfig, pool *Runner) SessionResult {
	topo := Build(cfg.Opts)
	sim := topo.Sim

	var tracer *trace.Tracer
	if cfg.TraceBuf > 0 {
		tracer = trace.New(trace.Config{Capacity: cfg.TraceBuf, Clock: sim.Now})
		sim.SetTracer(tracer)
	}

	dur := cfg.FaultDur
	if dur == 0 {
		dur = cfg.Clip.Duration*6 + 10*time.Minute // effectively whole session
	}
	faults.Apply(topo.FaultTarget(), cfg.Spec, cfg.FaultFrom, dur)
	for _, extra := range cfg.Extra {
		faults.Apply(topo.FaultTarget(), extra, cfg.FaultFrom, dur)
	}

	if cfg.RadioOutageAt > 0 {
		sim.At(cfg.RadioOutageAt, func() { topo.Channel.Disconnect(24 * time.Hour) })
	}

	clip := cfg.Clip
	topo.Server.ClipFor = func(simnet.FlowKey) video.Clip { return clip }

	runSpan := tracer.StartSpan("testbed", "session", 0)
	player := video.Play(topo.PhoneHost, topo.PhoneDev, AddrServer, clip, video.PlayerConfig{})
	player.OnFinish = func(video.Report) { sim.Halt() }

	maxWall := cfg.MaxWall
	if maxWall == 0 {
		maxWall = cfg.Clip.Duration*4 + 90*time.Second
		if maxWall > 8*time.Minute {
			maxWall = 8 * time.Minute
		}
	}
	sim.Run(maxWall)
	if !player.Done() {
		player.ForceFinish()
	}
	runSpan.EndDetail("fault=" + cfg.Spec.Fault.String())

	rep := player.Report()
	mos := qoe.MOS(rep)
	res := SessionResult{
		Report: rep,
		MOS:    mos,
		Label:  qoe.Label{Fault: cfg.Spec.Fault, Severity: qoe.SeverityOf(mos)},
		Spec:   cfg.Spec,
		Extra:  cfg.Extra,
	}
	// Result assembly: fresh maps on the one-shot path, the Runner's
	// reused buffers on the pooled path.
	var mobileVec, routerVec, serverVec metrics.Vector
	if pool != nil {
		res.Records = pool.records
		for k := range res.Records {
			if k == "mobile" {
				mobileVec = res.Records[k]
			}
			if k == "router" {
				routerVec = res.Records[k]
			}
			if k == "server" {
				serverVec = res.Records[k]
			}
			delete(res.Records, k)
		}
		res.Context = pool.context
		for k := range res.Context {
			delete(res.Context, k)
		}
	} else {
		res.Records = map[string]metrics.Vector{}
		res.Context = map[string]string{}
	}
	res.Context["wan"] = cfg.Opts.WAN.String()
	res.Context["tech"] = string(cfg.Opts.Tech)
	res.Context["quality"] = string(clip.Quality)
	res.Timeline = player.Events()
	res.Trace = tracer
	flow := player.Flow()
	res.Records["mobile"] = topo.Mobile.RecordInto(flow, mobileVec)
	if topo.Router != nil {
		res.Records["router"] = topo.Router.RecordInto(flow, routerVec)
	}
	if topo.SrvVP != nil {
		res.Records["server"] = topo.SrvVP.RecordInto(flow, serverVec)
	}
	return res
}

package testbed

import (
	"math/rand"
	"time"

	"vqprobe/internal/faults"
	"vqprobe/internal/hardware"
	"vqprobe/internal/ml"
	"vqprobe/internal/parallel"
	"vqprobe/internal/qoe"
	"vqprobe/internal/video"
	"vqprobe/internal/wireless"
)

// GenConfig bounds a dataset generation run.
type GenConfig struct {
	Sessions int
	Seed     int64
	// FaultProb is the probability a session gets an induced fault.
	// Zero selects 0.45, which lands near the paper's label mix
	// (roughly 80% good / 11% mild / 9% severe).
	FaultProb float64
	// Workers caps the parallel session simulations; zero selects
	// GOMAXPROCS.
	Workers int
}

func (c *GenConfig) defaults() {
	if c.FaultProb == 0 {
		c.FaultProb = 0.45
	}
	if c.Sessions == 0 {
		c.Sessions = 400
	}
}

// runAll executes the per-index session closures on the shared bounded
// worker pool (internal/parallel, the same helper the training stack
// uses), which caps workers at the session count. Each session owns an
// independent simulation, so ordering does not affect results.
func runAll(n, workers int, run func(i int) SessionResult) []SessionResult {
	out := make([]SessionResult, n)
	parallel.For(n, workers, func(i int) { out[i] = run(i) })
	return out
}

// pickFault draws a fault spec: uniform over the Table 2 catalogue with
// intensity spread over the whole range so both mild and severe
// outcomes occur.
func pickFault(rng *rand.Rand, catalogue []qoe.Fault) faults.Spec {
	f := catalogue[rng.Intn(len(catalogue))]
	return faults.Spec{Fault: f, Intensity: 0.1 + 0.9*rng.Float64()}
}

// GenerateControlled produces the Section 4 training dataset: lab
// topology, DSL/mobile WAN emulation, always-on background variation,
// and the full seven-fault catalogue applied for entire sessions.
func GenerateControlled(cfg GenConfig) []SessionResult {
	cfg.defaults()
	master := rand.New(rand.NewSource(cfg.Seed))
	catalog := video.NewCatalog(master, video.CatalogConfig{})

	type plan struct {
		seed int64
		spec faults.Spec
		opts Options
		clip video.Clip
	}
	plans := make([]plan, cfg.Sessions)
	for i := range plans {
		spec := faults.Spec{Fault: qoe.FaultNone}
		if master.Float64() < cfg.FaultProb {
			spec = pickFault(master, qoe.Faults)
		}
		wan := WANDSL
		if master.Float64() < 0.5 {
			wan = WANMobile
		}
		opts := Options{
			Seed:             cfg.Seed + int64(i)*7919 + 13,
			WAN:              wan,
			Device:           randomPhone(master),
			Pacing:           master.Float64() < 0.5,
			BackgroundScale:  0.2 + 0.45*master.Float64(),
			ServerLoadMean:   0.05 + 0.15*master.Float64(),
			InstrumentRouter: true,
			InstrumentServer: true,
		}
		plans[i] = plan{seed: opts.Seed, spec: spec, opts: opts, clip: catalog[master.Intn(len(catalog))]}
	}
	return runAll(cfg.Sessions, cfg.Workers, func(i int) SessionResult {
		p := plans[i]
		res := RunSession(SessionConfig{Opts: p.opts, Spec: p.spec, Clip: p.clip})
		res.Context["setting"] = "controlled"
		return res
	})
}

// GenerateRealWorldInduced produces the Section 6.1 evaluation set: a
// corporate-WiFi-like environment with milder background noise, videos
// streamed 3:1 from "YouTube" (an uninstrumented CDN server behind a
// different WAN) versus the instrumented private server, and five
// induced fault types in time windows inside the session.
func GenerateRealWorldInduced(cfg GenConfig) []SessionResult {
	cfg.defaults()
	master := rand.New(rand.NewSource(cfg.Seed))
	catalog := video.NewCatalog(master, video.CatalogConfig{})
	induced := []qoe.Fault{qoe.LANCongestion, qoe.WANCongestion, qoe.MobileLoad, qoe.LowRSSI, qoe.WiFiInterference}

	type plan struct {
		cfg SessionConfig
		svc string
	}
	plans := make([]plan, cfg.Sessions)
	for i := range plans {
		spec := faults.Spec{Fault: qoe.FaultNone}
		if master.Float64() < cfg.FaultProb {
			spec = pickFault(master, induced)
			// Windowed faults need a higher floor to dent the session's
			// MOS; the paper's operators induced visibly disruptive
			// problems.
			if spec.Intensity < 0.35 {
				spec.Intensity += 0.25
			}
		}
		youtube := master.Float64() < 0.75
		clip := catalog[master.Intn(len(catalog))]
		opts := Options{
			Seed:             cfg.Seed + int64(i)*104729 + 29,
			WAN:              WANDSL,
			Device:           randomPhone(master),
			Pacing:           youtube, // YouTube paces; the lab Apache does not
			Mobility:         true,    // users carry the phones around the office
			BaseRSSI:         -50 - 12*master.Float64(),
			BackgroundScale:  0.2 + 0.3*master.Float64(), // quieter than the lab simulation
			ServerLoadMean:   0.05 + 0.1*master.Float64(),
			InstrumentRouter: true,
			InstrumentServer: !youtube, // no probe inside YouTube's CDN
		}
		if youtube {
			opts.WAN = WANCDN
		}
		// Fault window inside the session so the video loads cleanly
		// before and after (Section 6.1 protocol).
		from := time.Duration(float64(clip.Duration) * (0.05 + 0.15*master.Float64()))
		dur := time.Duration(float64(clip.Duration) * (0.6 + 0.35*master.Float64()))
		svc := "private"
		if youtube {
			svc = "youtube"
		}
		plans[i] = plan{cfg: SessionConfig{Opts: opts, Spec: spec, Clip: clip, FaultFrom: from, FaultDur: dur}, svc: svc}
	}
	return runAll(cfg.Sessions, cfg.Workers, func(i int) SessionResult {
		res := RunSession(plans[i].cfg)
		res.Context["setting"] = "realworld"
		res.Context["service"] = plans[i].svc
		return res
	})
}

// GenerateWild produces the Section 6.2 in-the-wild set: users roam
// across arbitrary 3G and WiFi networks for a month, no router probe
// anywhere, the server probe only behind the private service (1:3
// against YouTube), and faults occur naturally rather than by
// injection.
func GenerateWild(cfg GenConfig) []SessionResult {
	cfg.defaults()
	if cfg.FaultProb == 0.45 {
		cfg.FaultProb = 0.30 // spontaneous problems are rarer than induced ones
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	catalog := video.NewCatalog(master, video.CatalogConfig{})

	type plan struct {
		cfg  SessionConfig
		svc  string
		tech wireless.Technology
	}
	plans := make([]plan, cfg.Sessions)
	for i := range plans {
		tech := wireless.Tech3G
		if master.Float64() < 0.4 {
			tech = wireless.TechWiFi
		}
		// Natural faults: anything can happen in the wild, biased to
		// congestion and signal problems; shaping (an artificial lab
		// construct) does not occur.
		natural := []qoe.Fault{
			qoe.WANCongestion, qoe.WANCongestion, qoe.LANCongestion,
			qoe.MobileLoad, qoe.LowRSSI, qoe.LowRSSI, qoe.WiFiInterference,
		}
		spec := faults.Spec{Fault: qoe.FaultNone}
		if master.Float64() < cfg.FaultProb {
			spec = pickFault(master, natural)
		}
		youtube := master.Float64() < 0.75
		clip := catalog[master.Intn(len(catalog))]
		opts := Options{
			Seed:             cfg.Seed + int64(i)*15485863 + 41,
			WAN:              WANDSL,
			Tech:             tech,
			Device:           randomPhone(master),
			Pacing:           youtube,
			Mobility:         true,
			BaseRSSI:         -48 - 30*master.Float64(), // arbitrary networks, arbitrary quality
			BackgroundScale:  0.2 + 0.8*master.Float64(),
			ServerLoadMean:   0.05 + 0.2*master.Float64(),
			InstrumentRouter: false, // removed for 3G/WiFi comparability (Section 6.2)
			InstrumentServer: !youtube,
		}
		if youtube {
			opts.WAN = WANCDN
		}
		if tech == wireless.Tech3G {
			opts.WAN = WANMobile
			if opts.BaseRSSI < -72 {
				opts.BaseRSSI = -72 - 10*master.Float64() // cellular coverage floor
			}
		}
		svc := "private"
		if youtube {
			svc = "youtube"
		}
		sc := SessionConfig{Opts: opts, Spec: spec, Clip: clip}
		// Mobility: a few sessions lose connectivity for good when the
		// user roams out of coverage (Section 6.2's uncontrolled
		// real-world conditions).
		if master.Float64() < 0.05 {
			sc.RadioOutageAt = time.Duration(float64(clip.Duration) * (0.15 + 0.7*master.Float64()))
		}
		plans[i] = plan{cfg: sc, svc: svc, tech: tech}
	}
	return runAll(cfg.Sessions, cfg.Workers, func(i int) SessionResult {
		res := RunSession(plans[i].cfg)
		res.Context["setting"] = "wild"
		res.Context["service"] = plans[i].svc
		return res
	})
}

// randomPhone rotates the paper's three handset models.
func randomPhone(rng *rand.Rand) hardware.Profile {
	switch rng.Intn(3) {
	case 0:
		return hardware.ProfileGalaxyS2
	case 1:
		return hardware.ProfileNexusS
	default:
		return hardware.ProfileNexus5
	}
}

// ---- dataset assembly ----

// Labeler converts a session result into a class label; returning ""
// drops the instance.
type Labeler func(r SessionResult) string

// SeverityLabel is the 3-way good/mild/severe task (Section 5.1).
func SeverityLabel(r SessionResult) string { return r.Label.SeverityClass() }

// LocationLabel is the 7-way location task (Section 5.2). Degraded
// sessions with no induced fault have no attributable location and are
// dropped, as are fault-labeled-good conflations (labeled good).
func LocationLabel(r SessionResult) string {
	if r.Label.Severity != qoe.Good && r.Spec.Fault == qoe.FaultNone {
		return ""
	}
	return r.Label.LocationClass()
}

// ExactLabel is the 15-way exact-problem task (Section 5.3).
func ExactLabel(r SessionResult) string {
	if r.Label.Severity != qoe.Good && r.Spec.Fault == qoe.FaultNone {
		return ""
	}
	return r.Label.ExactClass()
}

// BinaryLabel is the good/problematic split used in the wild (Section
// 6.2), where fine-grained ground truth is unobtainable.
func BinaryLabel(r SessionResult) string {
	if r.Label.Severity == qoe.Good {
		return "good"
	}
	return "problematic"
}

// ToDataset assembles an ML dataset from session results using the given
// vantage points (prefixing features with the VP name) and labeler.
func ToDataset(results []SessionResult, vps []string, label Labeler) *ml.Dataset {
	var ins []ml.Instance
	for _, r := range results {
		c := label(r)
		if c == "" {
			continue
		}
		fv := r.Combined(vps...)
		if len(fv) == 0 {
			continue
		}
		ins = append(ins, ml.Instance{Features: fv, Class: c})
	}
	return ml.NewDataset(ins)
}

// FineSeverityLabel is the five-band severity task the paper proposes
// as future work (Section 9).
func FineSeverityLabel(r SessionResult) string {
	return qoe.FineSeverityOf(r.MOS).String()
}

package testbed

import (
	"time"

	"vqprobe/internal/faults"
	"vqprobe/internal/metrics"
	"vqprobe/internal/qoe"
	"vqprobe/internal/video"
)

// RunAdaptiveSession mirrors RunSession but streams via DASH-style
// segmented adaptive delivery instead of a progressive download. It
// exercises the paper's delivery-mechanism-agnosticism claim: the same
// probes measure the session; only the application behaviour differs.
//
// Note the listener replaces the progressive video server, so the
// returned records reflect a purely adaptive workload.
func RunAdaptiveSession(cfg SessionConfig, acfg video.AdaptiveConfig) (SessionResult, video.AdaptiveReport) {
	// The progressive server must not claim the port.
	cfg.Opts.disableVideoServer = true
	topo := Build(cfg.Opts)
	sim := topo.Sim

	dur := cfg.FaultDur
	if dur == 0 {
		dur = cfg.Clip.Duration*6 + 10*time.Minute
	}
	faults.Apply(topo.FaultTarget(), cfg.Spec, cfg.FaultFrom, dur)
	for _, extra := range cfg.Extra {
		faults.Apply(topo.FaultTarget(), extra, cfg.FaultFrom, dur)
	}

	session := video.NewAdaptiveSession(cfg.Clip.Duration, acfg)
	session.ServeAdaptive(topo.ServerHost)
	player := video.PlayAdaptive(topo.PhoneHost, topo.PhoneDev, AddrServer, session)
	player.OnFinish = func(video.AdaptiveReport) { sim.Halt() }

	maxWall := cfg.MaxWall
	if maxWall == 0 {
		maxWall = cfg.Clip.Duration*4 + 90*time.Second
		if maxWall > 8*time.Minute {
			maxWall = 8 * time.Minute
		}
	}
	sim.Run(maxWall)
	if !player.Done() {
		player.ForceFinish()
	}

	rep := player.Report()
	mos := qoe.MOS(rep.Report)
	res := SessionResult{
		Report:  rep.Report,
		MOS:     mos,
		Label:   qoe.Label{Fault: cfg.Spec.Fault, Severity: qoe.SeverityOf(mos)},
		Spec:    cfg.Spec,
		Extra:   cfg.Extra,
		Records: map[string]metrics.Vector{},
		Context: map[string]string{
			"wan":      cfg.Opts.WAN.String(),
			"tech":     string(cfg.Opts.Tech),
			"delivery": "adaptive",
		},
	}
	flow := player.Flow()
	res.Records["mobile"] = topo.Mobile.Record(flow)
	if topo.Router != nil {
		res.Records["router"] = topo.Router.Record(flow)
	}
	if topo.SrvVP != nil {
		res.Records["server"] = topo.SrvVP.Record(flow)
	}
	return res, rep
}

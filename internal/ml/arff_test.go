package ml

import (
	"bytes"
	"strings"
	"testing"

	"vqprobe/internal/metrics"
)

func arffSample() *Dataset {
	return NewDataset([]Instance{
		{Features: metrics.Vector{"rtt avg": 12.5, "pkts": 100}, Class: "good"},
		{Features: metrics.Vector{"pkts": 55}, Class: "lan_cong severe"}, // rtt missing
		{Features: metrics.Vector{"rtt avg": 300, "pkts": 20}, Class: "good"},
	})
}

func TestARFFRoundTrip(t *testing.T) {
	d := arffSample()
	var buf bytes.Buffer
	if err := d.WriteARFF(&buf, "vqprobe test"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadARFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip length %d != %d", back.Len(), d.Len())
	}
	for i := range d.Instances {
		if back.Instances[i].Class != d.Instances[i].Class {
			t.Errorf("instance %d class %q != %q", i, back.Instances[i].Class, d.Instances[i].Class)
		}
		for k, v := range d.Instances[i].Features {
			if back.Instances[i].Features[k] != v {
				t.Errorf("instance %d feature %s: %v != %v", i, k, back.Instances[i].Features[k], v)
			}
		}
	}
	// Missing value stayed missing.
	if _, ok := back.Instances[1].Features["rtt avg"]; ok {
		t.Error("missing value resurrected through ARFF")
	}
}

func TestARFFFormatDetails(t *testing.T) {
	var buf bytes.Buffer
	if err := arffSample().WriteARFF(&buf, "rel with space"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"@RELATION 'rel with space'",
		"@ATTRIBUTE 'rtt avg' NUMERIC",
		"@ATTRIBUTE pkts NUMERIC",
		"@ATTRIBUTE class {good,'lan_cong severe'}",
		"@DATA",
		"?", // missing marker
	} {
		if !strings.Contains(s, want) {
			t.Errorf("ARFF output missing %q:\n%s", want, s)
		}
	}
}

func TestARFFRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"no data":     "@RELATION x\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE class {p}\n",
		"no class":    "@RELATION x\n@ATTRIBUTE a NUMERIC\n@DATA\n1\n",
		"bad type":    "@RELATION x\n@ATTRIBUTE a STRING\n@ATTRIBUTE class {p}\n@DATA\nz,p\n",
		"wrong arity": "@RELATION x\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE class {p}\n@DATA\n1,2,p\n",
		"bad number":  "@RELATION x\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE class {p}\n@DATA\nzz,p\n",
	}
	for name, body := range cases {
		if _, err := ReadARFF(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestARFFCommentsAndBlankLines(t *testing.T) {
	body := "% comment\n@RELATION x\n\n@ATTRIBUTE a NUMERIC\n@ATTRIBUTE class {p,q}\n\n@DATA\n% another\n1.5,p\n2.5,q\n"
	d, err := ReadARFF(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Instances[1].Features["a"] != 2.5 {
		t.Errorf("parsed %d instances: %+v", d.Len(), d.Instances)
	}
}

// Package bayes implements Gaussian Naive Bayes, one of the two baseline
// learners the paper compared against C4.5 (Section 3.2) and found
// inferior for this task.
package bayes

import (
	"math"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// Trainer builds Gaussian NB models.
type Trainer struct{}

// New returns a trainer.
func New() *Trainer { return &Trainer{} }

// Train implements ml.Trainer.
func (t *Trainer) Train(d *ml.Dataset) ml.Classifier {
	x, y := d.Matrix()
	classes := d.Classes()
	cidx := map[string]int{}
	for i, c := range classes {
		cidx[c] = i
	}
	nf, nc := len(d.Features()), len(classes)

	m := &Model{
		features: append([]string{}, d.Features()...),
		classes:  classes,
		mean:     mat(nc, nf),
		variance: mat(nc, nf),
		prior:    make([]float64, nc),
	}
	count := mat(nc, nf)
	for i, row := range x {
		c := cidx[y[i]]
		m.prior[c]++
		for f, v := range row {
			if ml.IsMissing(v) {
				continue
			}
			count[c][f]++
			m.mean[c][f] += v
		}
	}
	for c := 0; c < nc; c++ {
		for f := 0; f < nf; f++ {
			if count[c][f] > 0 {
				m.mean[c][f] /= count[c][f]
			}
		}
	}
	for i, row := range x {
		c := cidx[y[i]]
		for f, v := range row {
			if ml.IsMissing(v) {
				continue
			}
			dlt := v - m.mean[c][f]
			m.variance[c][f] += dlt * dlt
		}
	}
	total := float64(len(x))
	for c := 0; c < nc; c++ {
		for f := 0; f < nf; f++ {
			if count[c][f] > 1 {
				m.variance[c][f] /= count[c][f] - 1
			}
			if m.variance[c][f] < 1e-9 {
				m.variance[c][f] = 1e-9 // variance floor, as Weka applies
			}
		}
		m.prior[c] = (m.prior[c] + 1) / (total + float64(nc)) // Laplace
	}
	return m
}

func mat(r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
	}
	return m
}

// Model is a trained Gaussian NB classifier.
type Model struct {
	features []string
	classes  []string
	mean     [][]float64
	variance [][]float64
	prior    []float64
}

// Predict implements ml.Classifier. Missing features are skipped, the
// standard NB treatment.
func (m *Model) Predict(fv metrics.Vector) string {
	best, bi := math.Inf(-1), 0
	for c := range m.classes {
		ll := math.Log(m.prior[c])
		for f, name := range m.features {
			v, ok := fv[name]
			if !ok || ml.IsMissing(v) {
				continue
			}
			va := m.variance[c][f]
			d := v - m.mean[c][f]
			ll += -0.5*math.Log(2*math.Pi*va) - d*d/(2*va)
		}
		if ll > best {
			best, bi = ll, c
		}
	}
	return m.classes[bi]
}

package bayes

import (
	"math/rand"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

func gaussians(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	var ins []ml.Instance
	for i := 0; i < n; i++ {
		ins = append(ins, ml.Instance{
			Features: metrics.Vector{"x": rng.NormFloat64(), "y": rng.NormFloat64()},
			Class:    "a",
		}, ml.Instance{
			Features: metrics.Vector{"x": 5 + rng.NormFloat64(), "y": 5 + rng.NormFloat64()},
			Class:    "b",
		})
	}
	return ml.NewDataset(ins)
}

func TestGaussianBlobs(t *testing.T) {
	d := gaussians(100, 1)
	conf := ml.CrossValidate(New(), d, 10, rand.New(rand.NewSource(2)))
	if conf.Accuracy() < 0.97 {
		t.Errorf("NB CV accuracy %.3f on separated gaussians", conf.Accuracy())
	}
}

func TestPriorsMatter(t *testing.T) {
	// 95:5 imbalance and a useless feature: NB should predict majority.
	rng := rand.New(rand.NewSource(3))
	var ins []ml.Instance
	for i := 0; i < 95; i++ {
		ins = append(ins, ml.Instance{Features: metrics.Vector{"u": rng.Float64()}, Class: "maj"})
	}
	for i := 0; i < 5; i++ {
		ins = append(ins, ml.Instance{Features: metrics.Vector{"u": rng.Float64()}, Class: "min"})
	}
	m := New().Train(ml.NewDataset(ins))
	if got := m.Predict(metrics.Vector{"u": 0.5}); got != "maj" {
		t.Errorf("predicted %q on a prior-dominated problem", got)
	}
}

func TestMissingValuesSkipped(t *testing.T) {
	d := gaussians(100, 4)
	m := New().Train(d)
	// Predicting with only one of two features must still work.
	if got := m.Predict(metrics.Vector{"x": 5.0}); got != "b" {
		t.Errorf("one-feature prediction = %q, want b", got)
	}
	if got := m.Predict(metrics.Vector{}); got == "" {
		t.Error("empty-vector prediction must still return a class")
	}
}

func TestZeroVarianceFeature(t *testing.T) {
	var ins []ml.Instance
	for i := 0; i < 20; i++ {
		cls := "a"
		x := 0.0
		if i%2 == 0 {
			cls, x = "b", 1.0
		}
		ins = append(ins, ml.Instance{Features: metrics.Vector{"const": 7, "x": x}, Class: cls})
	}
	m := New().Train(ml.NewDataset(ins))
	if got := m.Predict(metrics.Vector{"const": 7, "x": 1}); got != "b" {
		t.Errorf("constant feature broke prediction: %q", got)
	}
}

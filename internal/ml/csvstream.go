package ml

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"vqprobe/internal/metrics"
)

// CSVStream reads a WriteCSV-format dataset one row at a time without
// materializing the whole file — the ingest path of the serving tools,
// where session logs are far larger than memory.
type CSVStream struct {
	cr       *csv.Reader
	features []string
	line     int
}

// NewCSVStream validates the header and returns a row iterator.
func NewCSVStream(r io.Reader) (*CSVStream, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	if len(header) < 1 || header[len(header)-1] != "class" {
		return nil, fmt.Errorf("last column must be \"class\", got %q", header[len(header)-1])
	}
	return &CSVStream{cr: cr, features: header[:len(header)-1], line: 1}, nil
}

// Features returns the header's feature names in column order (do not
// mutate).
func (s *CSVStream) Features() []string { return s.features }

// Line returns the line number of the most recently read row.
func (s *CSVStream) Line() int { return s.line }

// Next returns the next row's feature vector and class label; empty
// cells are absent keys (missing values). It returns io.EOF after the
// last row.
func (s *CSVStream) Next() (metrics.Vector, string, error) {
	rec, err := s.cr.Read()
	if err == io.EOF {
		return nil, "", io.EOF
	}
	s.line++
	if err != nil {
		return nil, "", fmt.Errorf("line %d: %w", s.line, err)
	}
	fv := metrics.Vector{}
	for j, f := range s.features {
		if rec[j] == "" {
			continue
		}
		v, err := strconv.ParseFloat(rec[j], 64)
		if err != nil {
			return nil, "", fmt.Errorf("line %d, column %s: %w", s.line, f, err)
		}
		fv[f] = v
	}
	return fv, rec[len(rec)-1], nil
}

package ml

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ARFF import/export: the paper's analysis ran in Weka 3.6.10, whose
// native dataset format is ARFF. WriteARFF/ReadARFF let datasets
// generated here be loaded into Weka (to cross-check the reimplemented
// J48/FCBF against the original toolchain) and vice versa.

// WriteARFF serializes the dataset as a Weka ARFF file with numeric
// attributes and a nominal class. Missing values serialize as '?'.
func (d *Dataset) WriteARFF(w io.Writer, relation string) error {
	bw := bufio.NewWriter(w)
	if relation == "" {
		relation = "vqprobe"
	}
	fmt.Fprintf(bw, "@RELATION %s\n\n", arffQuote(relation))
	for _, f := range d.features {
		fmt.Fprintf(bw, "@ATTRIBUTE %s NUMERIC\n", arffQuote(f))
	}
	classes := d.Classes()
	quoted := make([]string, len(classes))
	for i, c := range classes {
		quoted[i] = arffQuote(c)
	}
	fmt.Fprintf(bw, "@ATTRIBUTE class {%s}\n\n@DATA\n", strings.Join(quoted, ","))
	for _, in := range d.Instances {
		for j, f := range d.features {
			if j > 0 {
				bw.WriteByte(',')
			}
			if v, ok := in.Features[f]; ok {
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				bw.WriteByte('?')
			}
		}
		bw.WriteByte(',')
		bw.WriteString(arffQuote(in.Class))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// arffQuote quotes names containing ARFF-significant characters.
func arffQuote(s string) string {
	if strings.ContainsAny(s, " ,{}%'\"\t") || s == "" {
		return "'" + strings.ReplaceAll(s, "'", "\\'") + "'"
	}
	return s
}

func arffUnquote(s string) string {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "\\'", "'")
	}
	return s
}

// ReadARFF parses an ARFF file written by WriteARFF (numeric attributes
// plus one nominal attribute named "class", in any position; Weka's own
// exports of such datasets parse too). Comments and blank lines are
// skipped; sparse ARFF is not supported.
func ReadARFF(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var features []string
	classIdx := -1
	nAttr := 0
	inData := false
	var instances []Instance
	line := 0

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		if !inData {
			upper := strings.ToUpper(text)
			switch {
			case strings.HasPrefix(upper, "@RELATION"):
				// name ignored
			case strings.HasPrefix(upper, "@ATTRIBUTE"):
				rest := strings.TrimSpace(text[len("@ATTRIBUTE"):])
				name, typ := splitAttr(rest)
				if strings.HasPrefix(typ, "{") || strings.EqualFold(name, "class") {
					if classIdx >= 0 {
						return nil, fmt.Errorf("arff line %d: multiple nominal/class attributes", line)
					}
					classIdx = nAttr
				} else if !strings.EqualFold(typ, "NUMERIC") && !strings.EqualFold(typ, "REAL") &&
					!strings.EqualFold(typ, "INTEGER") {
					return nil, fmt.Errorf("arff line %d: unsupported attribute type %q", line, typ)
				} else {
					features = append(features, arffUnquote(name))
				}
				nAttr++
			case strings.HasPrefix(upper, "@DATA"):
				if classIdx < 0 {
					return nil, fmt.Errorf("arff: no class attribute declared")
				}
				inData = true
			}
			continue
		}
		cells := splitARFFRow(text)
		if len(cells) != nAttr {
			return nil, fmt.Errorf("arff line %d: %d values for %d attributes", line, len(cells), nAttr)
		}
		fv := map[string]float64{}
		cls := ""
		fi := 0
		for i, cell := range cells {
			cell = strings.TrimSpace(cell)
			if i == classIdx {
				cls = arffUnquote(cell)
				continue
			}
			name := features[fi]
			fi++
			if cell == "?" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("arff line %d, attribute %s: %w", line, name, err)
			}
			fv[name] = v
		}
		instances = append(instances, Instance{Features: fv, Class: cls})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !inData {
		return nil, fmt.Errorf("arff: no @DATA section")
	}
	return NewDataset(instances), nil
}

// splitAttr separates an attribute declaration into name and type,
// honoring quoted names.
func splitAttr(s string) (name, typ string) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "'") {
		if end := strings.Index(s[1:], "'"); end >= 0 {
			return s[:end+2], strings.TrimSpace(s[end+2:])
		}
	}
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}

// splitARFFRow splits a data row on commas outside quotes.
func splitARFFRow(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'' && (i == 0 || s[i-1] != '\\'):
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	out = append(out, cur.String())
	return out
}

package c45

import (
	"encoding/json"
	"testing"

	"vqprobe/internal/metrics"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	d := blobs(120, 30)
	tree := Default().TrainTree(d)
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := -10; i <= 10; i++ {
		fv := metrics.Vector{"x": float64(i), "noise": 0.3}
		if got, want := back.Predict(fv), tree.Predict(fv); got != want {
			t.Fatalf("prediction diverged after round trip at x=%d: %q vs %q", i, got, want)
		}
	}
	if back.Size() != tree.Size() || back.Leaves() != tree.Leaves() {
		t.Errorf("structure changed: size %d/%d leaves %d/%d",
			back.Size(), tree.Size(), back.Leaves(), tree.Leaves())
	}
	// Distribution also survives.
	dist := back.Distribution(metrics.Vector{"noise": 0.5})
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("distribution broken after round trip: %v", dist)
	}
}

func TestTreeJSONRejectsGarbage(t *testing.T) {
	var tr Tree
	if err := json.Unmarshal([]byte("{}"), &tr); err == nil {
		t.Error("tree without root accepted")
	}
	if err := json.Unmarshal([]byte("not json"), &tr); err == nil {
		t.Error("non-JSON accepted")
	}
}

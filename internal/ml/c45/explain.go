package c45

import (
	"fmt"
	"strings"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// PathStep is one internal (split) node traversed while classifying a
// single instance. Steps appear in visit order: depth-first, left
// branch before right, exactly the order classify/classifyRow evaluate.
type PathStep struct {
	Feature   string  `json:"feature"`
	Threshold float64 `json:"threshold"`
	// Value is the observed feature value; zero and meaningless when
	// Missing is set (NaN is not representable in JSON).
	Value   float64 `json:"value"`
	Missing bool    `json:"missing,omitempty"`
	// Branch is "le" (value <= threshold), "gt", or "both" when the
	// value was missing and the instance fractionally followed both
	// subtrees.
	Branch string `json:"branch"`
	// Weight is the instance fraction that reached this node (1 unless
	// an ancestor split on a missing value).
	Weight float64 `json:"weight"`
	// Primary marks the steps on the heaviest root-to-leaf path — the
	// ones Rule renders. At a missing split the heavier subtree stays
	// primary.
	Primary bool `json:"primary,omitempty"`
}

// LeafStep is one leaf reached by the traversal, with the training
// class distribution that the prediction aggregates.
type LeafStep struct {
	Class  string  `json:"class"`
	Weight float64 `json:"weight"`
	// Dist holds the leaf's training distribution (instance weights per
	// class, indexed like Classes).
	Dist    []float64 `json:"dist"`
	Primary bool      `json:"primary,omitempty"`
}

// Explanation is the full decision path of one prediction, produced by
// Tree.PredictExplain and CompiledTree.PredictRowExplain. The two
// evaluators visit nodes in the same order and combine weights with the
// same float expressions, so their explanations for the same instance
// are identical — byte-identical once JSON-encoded.
type Explanation struct {
	Class   string     `json:"class"`
	Classes []string   `json:"classes"`
	Path    []PathStep `json:"path"`
	Leaves  []LeafStep `json:"leaves"`
}

// Rule renders the primary decision path as one human-readable line:
//
//	root cause = wifi_interf_severe because retrans_rate=0.031 > 0.012 ∧ phy_rate=6.5 <= 24
//
// Thresholds use the same %.4g rendering as Tree.String, so a rule is
// cross-checkable against the printed tree.
func (e *Explanation) Rule() string {
	var b strings.Builder
	b.WriteString("root cause = ")
	b.WriteString(e.Class)
	first := true
	for _, s := range e.Path {
		if !s.Primary {
			continue
		}
		if first {
			b.WriteString(" because ")
			first = false
		} else {
			b.WriteString(" ∧ ")
		}
		switch {
		case s.Missing:
			fmt.Fprintf(&b, "%s missing (split %.4g)", s.Feature, s.Threshold)
		case s.Branch == "le":
			fmt.Fprintf(&b, "%s=%.4g <= %.4g", s.Feature, s.Value, s.Threshold)
		default:
			fmt.Fprintf(&b, "%s=%.4g > %.4g", s.Feature, s.Value, s.Threshold)
		}
	}
	if first {
		b.WriteString(" (leaf-only tree)")
	}
	return b.String()
}

// PredictExplain classifies fv like Predict and additionally returns
// every traversed node. The prediction itself is unchanged: the class
// is computed from the same accumulated distribution.
func (t *Tree) PredictExplain(fv metrics.Vector) *Explanation {
	e := &Explanation{Classes: t.classes}
	acc := make([]float64, len(t.classes))
	t.explain(t.root, fv, 1, true, acc, e)
	e.Class = t.classes[majority(acc)]
	return e
}

// explain mirrors classify exactly — same visit order, same weight
// arithmetic — while appending the traversal to e.
func (t *Tree) explain(n *node, fv metrics.Vector, w float64, primary bool, acc []float64, e *Explanation) {
	if n.isLeaf() {
		total := 0.0
		for _, d := range n.dist {
			total += d
		}
		if total <= 0 {
			acc[n.class] += w
		} else {
			for c, d := range n.dist {
				acc[c] += w * d / total
			}
		}
		e.Leaves = append(e.Leaves, LeafStep{
			Class: t.classes[n.class], Weight: w,
			Dist: append([]float64(nil), n.dist...), Primary: primary,
		})
		return
	}
	feat := t.features[n.feature]
	v, ok := fv[feat]
	if !ok || ml.IsMissing(v) {
		e.Path = append(e.Path, PathStep{
			Feature: feat, Threshold: n.threshold, Missing: true,
			Branch: "both", Weight: w, Primary: primary,
		})
		leftPrimary := primary && n.leftFrac >= 0.5
		t.explain(n.left, fv, w*n.leftFrac, leftPrimary, acc, e)
		t.explain(n.right, fv, w*(1-n.leftFrac), primary && !leftPrimary, acc, e)
		return
	}
	if v <= n.threshold {
		e.Path = append(e.Path, PathStep{
			Feature: feat, Threshold: n.threshold, Value: v,
			Branch: "le", Weight: w, Primary: primary,
		})
		t.explain(n.left, fv, w, primary, acc, e)
	} else {
		e.Path = append(e.Path, PathStep{
			Feature: feat, Threshold: n.threshold, Value: v,
			Branch: "gt", Weight: w, Primary: primary,
		})
		t.explain(n.right, fv, w, primary, acc, e)
	}
}

// eframe is one pending branch of an explaining traversal.
type eframe struct {
	n       int32
	w       float64
	primary bool
}

// PredictRowExplain classifies a schema-ordered row like PredictRow and
// returns the traversed path. Node visit order and weight arithmetic
// match Tree.PredictExplain node for node (see classifyRow), so for a
// tree compiled with Compile the explanations are identical.
func (ct *CompiledTree) PredictRowExplain(row []float64) *Explanation {
	e := &Explanation{Classes: ct.classes}
	acc := make([]float64, len(ct.classes))
	var local [24]eframe
	stack := local[:0]
	nd := &ct.nodes
	n, w, primary := int32(0), 1.0, true
	for {
		f := nd.feature[n]
		if f < 0 {
			if nd.total[n] <= 0 {
				acc[nd.class[n]] += w
			} else {
				for c, d := range ct.dists[nd.distOff[n] : nd.distOff[n]+nd.distLen[n]] {
					acc[c] += w * d / nd.total[n]
				}
			}
			e.Leaves = append(e.Leaves, LeafStep{
				Class: ct.classes[nd.class[n]], Weight: w,
				Dist:    append([]float64(nil), ct.dists[nd.distOff[n]:nd.distOff[n]+nd.distLen[n]]...),
				Primary: primary,
			})
			if len(stack) == 0 {
				break
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n, w, primary = top.n, top.w, top.primary
			continue
		}
		v := row[f]
		if v != v { // NaN: missing at prediction time
			e.Path = append(e.Path, PathStep{
				Feature: ct.schema[f], Threshold: nd.threshold[n],
				Missing: true, Branch: "both", Weight: w, Primary: primary,
			})
			leftPrimary := primary && nd.leftFrac[n] >= 0.5
			stack = append(stack, eframe{nd.right[n], w * (1 - nd.leftFrac[n]), primary && !leftPrimary})
			n, w, primary = nd.left[n], w*nd.leftFrac[n], leftPrimary
			continue
		}
		if v <= nd.threshold[n] {
			e.Path = append(e.Path, PathStep{
				Feature: ct.schema[f], Threshold: nd.threshold[n],
				Value: v, Branch: "le", Weight: w, Primary: primary,
			})
			n = nd.left[n]
		} else {
			e.Path = append(e.Path, PathStep{
				Feature: ct.schema[f], Threshold: nd.threshold[n],
				Value: v, Branch: "gt", Weight: w, Primary: primary,
			})
			n = nd.right[n]
		}
	}
	e.Class = ct.classes[majority(acc)]
	return e
}

// PredictExplain mirrors Tree.PredictExplain on the compiled form for
// callers holding a named feature vector.
func (ct *CompiledTree) PredictExplain(fv metrics.Vector) *Explanation {
	return ct.PredictRowExplain(ct.RowFromVector(fv))
}

package c45

import (
	"bytes"
	"testing"
)

// Serving-side inference benchmarks, wired into scripts/bench.sh and
// reports/BENCH_PR8.json. Convention: for the prediction benchmarks one
// benchmark iteration is ONE prediction (batch benches advance i by the
// batch size), so ns/op is ns per predicted row and bench_report.py can
// derive predictions_per_sec = 1e9 / ns_op directly. Matrix fill is
// excluded: serving workers fill pooled matrices while draining their
// queues, so steady-state throughput is bounded by evaluation.

const benchBatchRows = 1024

func benchCompiledTree(b *testing.B) *CompiledTree {
	b.Helper()
	d := synthDataset(4000, 12, 77, 0.05)
	ct, err := Compile(New(Config{}).TrainTree(d))
	if err != nil {
		b.Fatal(err)
	}
	return ct
}

func benchFillMatrix(b *testing.B, bp BatchPredictor) *Matrix {
	b.Helper()
	d := synthDataset(benchBatchRows, 12, 78, 0.05)
	m := bp.NewMatrix(benchBatchRows)
	for i := range d.Instances {
		m.AppendVector(d.Instances[i].Features)
	}
	return m
}

// BenchmarkPredictRowScalar is the one-row-at-a-time baseline the batch
// engine is measured against.
func BenchmarkPredictRowScalar(b *testing.B) {
	ct := benchCompiledTree(b)
	m := benchFillMatrix(b, ct)
	rows := make([][]float64, m.Rows())
	for r := range rows {
		rows[r] = ct.NewRow()
		m.Row(r, rows[r])
	}
	acc := make([]float64, len(ct.Classes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct.PredictRowInto(rows[i%len(rows)], acc)
	}
}

// BenchmarkPredictBatch is the acceptance benchmark: single-tree batch
// prediction, ns/op = ns per row (target ≥ 5M predictions/sec/core).
func BenchmarkPredictBatch(b *testing.B) {
	ct := benchCompiledTree(b)
	m := benchFillMatrix(b, ct)
	var s BatchScratch
	idx := make([]int32, m.Rows())
	ct.PredictBatchIdx(m, &s, idx) // warm the scratch outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += m.Rows() {
		ct.PredictBatchIdx(m, &s, idx)
	}
}

func benchCompiledForest(b *testing.B, trees int) *CompiledForest {
	b.Helper()
	d := synthDataset(2000, 12, 79, 0.05)
	f := NewForest(ForestConfig{Trees: trees, Seed: 7, Tree: Config{NoPrune: true}}).TrainForest(d)
	cf, err := CompileForest(f)
	if err != nil {
		b.Fatal(err)
	}
	return cf
}

// BenchmarkForestPredictBatch pushes every row through a 15-tree
// ensemble serially (the shape inside an already-sharded serving
// worker); ns/op = ns per row, every tree visited.
func BenchmarkForestPredictBatch(b *testing.B) {
	cf := benchCompiledForest(b, 15)
	m := benchFillMatrix(b, cf)
	var s BatchScratch
	idx := make([]int32, m.Rows())
	cf.PredictBatchIdx(m, &s, idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += m.Rows() {
		cf.PredictBatchIdx(m, &s, idx)
	}
}

// BenchmarkForestPredictBatchParallel is the same ensemble fanned
// across all cores via internal/parallel — the vqfleet/-parallel shape.
func BenchmarkForestPredictBatchParallel(b *testing.B) {
	cf := benchCompiledForest(b, 15)
	m := benchFillMatrix(b, cf)
	s := BatchScratch{Workers: -1}
	idx := make([]int32, m.Rows())
	cf.PredictBatchIdx(m, &s, idx)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += m.Rows() {
		cf.PredictBatchIdx(m, &s, idx)
	}
}

// BenchmarkForestPredictVector measures the pointer-forest Predict hot
// path (vector resolved once per prediction, classifyMapped per tree).
func BenchmarkForestPredictVector(b *testing.B) {
	d := synthDataset(2000, 12, 79, 0.05)
	f := NewForest(ForestConfig{Trees: 15, Seed: 7, Tree: Config{NoPrune: true}}).TrainForest(d)
	fv := d.Instances[0].Features
	f.Predict(fv) // build the resolution maps outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(fv)
	}
}

// BenchmarkSnapshotLoad decodes a 25-tree forest snapshot from memory;
// ns/op is the full load cost (validation included) for a model of
// realistic serving size. bench_report.py records it as
// snapshot_load_ms.
func BenchmarkSnapshotLoad(b *testing.B) {
	cf := benchCompiledForest(b, 25)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, cf, []byte(`{"task":"bench"}`)); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadSnapshot(data); err != nil {
			b.Fatal(err)
		}
	}
}

package c45

import (
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// Matrix is a struct-of-arrays feature matrix: one contiguous
// column-major float64 buffer keyed by a compiled schema, so batch
// evaluation touches flat slices only — zero map lookups on the hot
// path. Column f's values for rows [0, Rows()) live at
// data[f*stride : f*stride+rows], meaning all rows' values for the
// feature a tree node splits on are adjacent in memory: PredictBatch
// loads one column per node visit and gathers rows from it.
//
// A Matrix is reusable: Reset keeps the buffer and drops the rows, so
// serving workers pool one Matrix per shard and refill it per drained
// batch without allocating. It is not safe for concurrent mutation;
// concurrent reads (e.g. parallel per-tree batch evaluation) are fine.
type Matrix struct {
	schema []string
	sindex map[string]int32
	data   []float64
	stride int // row capacity per column
	rows   int
}

// NewMatrix returns a matrix over the given schema with row capacity
// for at least capacity rows. The schema slice is aliased, not copied —
// pass CompiledTree.Schema()/CompiledForest.Schema() directly.
func NewMatrix(schema []string, capacity int) *Matrix {
	if capacity < 1 {
		capacity = 1
	}
	sidx := make(map[string]int32, len(schema))
	for i, f := range schema {
		sidx[f] = int32(i)
	}
	return &Matrix{
		schema: schema,
		sindex: sidx,
		data:   make([]float64, len(schema)*capacity),
		stride: capacity,
	}
}

// NewMatrix returns a pooled-fill matrix laid out for this tree's
// schema.
func (ct *CompiledTree) NewMatrix(capacity int) *Matrix {
	return NewMatrix(ct.schema, capacity)
}

// NewMatrix returns a pooled-fill matrix laid out for the forest's
// union schema.
func (cf *CompiledForest) NewMatrix(capacity int) *Matrix {
	return NewMatrix(cf.schema, capacity)
}

// Schema returns the column layout (do not mutate).
func (m *Matrix) Schema() []string { return m.schema }

// Rows returns the number of appended rows.
func (m *Matrix) Rows() int { return m.rows }

// Cap returns the row capacity before the next AppendRow reallocates.
func (m *Matrix) Cap() int { return m.stride }

// Reset drops all rows, keeping the buffer for reuse.
func (m *Matrix) Reset() { m.rows = 0 }

// grow doubles row capacity to fit at least capacity rows, preserving
// existing rows (column-major data must be re-strided).
func (m *Matrix) grow(capacity int) {
	stride := m.stride * 2
	if stride < capacity {
		stride = capacity
	}
	data := make([]float64, len(m.schema)*stride)
	for f := range m.schema {
		copy(data[f*stride:f*stride+m.rows], m.data[f*m.stride:f*m.stride+m.rows])
	}
	m.data, m.stride = data, stride
}

// AppendRow adds one row with every feature missing and returns its
// index; fill it with Set. Cells the caller will overwrite anyway are
// cheap: a strided NaN store per column.
func (m *Matrix) AppendRow() int {
	if m.rows == m.stride {
		m.grow(m.rows + 1)
	}
	r := m.rows
	m.rows++
	for f := range m.schema {
		m.data[f*m.stride+r] = ml.Missing
	}
	return r
}

// Set writes feature column f of row r. Both indices must be in range.
func (m *Matrix) Set(r int, f int, v float64) {
	m.data[f*m.stride+r] = v
}

// At reads feature column f of row r.
func (m *Matrix) At(r int, f int) float64 {
	return m.data[f*m.stride+r]
}

// AppendVector appends fv as one row (features absent from fv become
// missing values) and returns its row index.
func (m *Matrix) AppendVector(fv metrics.Vector) int {
	r := m.AppendRow()
	for name, v := range fv {
		if f, ok := m.sindex[name]; ok {
			m.data[int(f)*m.stride+r] = v
		}
	}
	return r
}

// AppendRowValues appends one schema-ordered row (len(row) must equal
// len(Schema())) and returns its row index.
func (m *Matrix) AppendRowValues(row []float64) int {
	if m.rows == m.stride {
		m.grow(m.rows + 1)
	}
	r := m.rows
	m.rows++
	for f := range row {
		m.data[f*m.stride+r] = row[f]
	}
	return r
}

// Row gathers row r into dst (len(dst) must equal len(Schema())) —
// the bridge to the scalar PredictRow path, used by the equivalence
// tests and the per-row fallback.
func (m *Matrix) Row(r int, dst []float64) {
	for f := range dst {
		dst[f] = m.data[f*m.stride+r]
	}
}

// col returns feature f's column restricted to the appended rows.
func (m *Matrix) col(f int32) []float64 {
	return m.data[int(f)*m.stride : int(f)*m.stride+m.rows]
}

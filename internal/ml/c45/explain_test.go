package c45

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// tinyTree builds a two-split tree by hand:
//
//	rtt <= 100 ? (loss <= 1 ? good : lan) : wan
func tinyTree() *Tree {
	leaf := func(class int, dist []float64) *node {
		return &node{feature: -1, class: class, dist: dist}
	}
	return &Tree{
		features: []string{"rtt", "loss"},
		classes:  []string{"good", "lan", "wan"},
		root: &node{
			feature: 0, threshold: 100, leftFrac: 0.75,
			left: &node{
				feature: 1, threshold: 1, leftFrac: 0.6,
				left:  leaf(0, []float64{9, 1, 0}),
				right: leaf(1, []float64{1, 5, 0}),
			},
			right: leaf(2, []float64{0, 1, 7}),
		},
	}
}

func TestPredictExplainPath(t *testing.T) {
	tree := tinyTree()
	e := tree.PredictExplain(metrics.Vector{"rtt": 150, "loss": 0.5})
	if e.Class != "wan" {
		t.Fatalf("class = %q, want wan", e.Class)
	}
	if len(e.Path) != 1 || len(e.Leaves) != 1 {
		t.Fatalf("path %d leaves %d, want 1/1", len(e.Path), len(e.Leaves))
	}
	s := e.Path[0]
	if s.Feature != "rtt" || s.Threshold != 100 || s.Value != 150 || s.Branch != "gt" || !s.Primary || s.Weight != 1 {
		t.Fatalf("step wrong: %+v", s)
	}
	if l := e.Leaves[0]; l.Class != "wan" || l.Weight != 1 || !l.Primary {
		t.Fatalf("leaf wrong: %+v", l)
	}

	e = tree.PredictExplain(metrics.Vector{"rtt": 80, "loss": 4})
	if e.Class != "lan" {
		t.Fatalf("class = %q, want lan", e.Class)
	}
	if len(e.Path) != 2 || e.Path[0].Branch != "le" || e.Path[1].Branch != "gt" {
		t.Fatalf("path wrong: %+v", e.Path)
	}
}

func TestPredictExplainMissing(t *testing.T) {
	tree := tinyTree()
	// rtt missing: both subtrees traversed, left (frac 0.75) primary.
	e := tree.PredictExplain(metrics.Vector{"loss": 4})
	if len(e.Path) != 2 {
		t.Fatalf("path len %d, want 2 (missing root + loss split)", len(e.Path))
	}
	root := e.Path[0]
	if !root.Missing || root.Branch != "both" || !root.Primary || root.Value != 0 {
		t.Fatalf("missing root step wrong: %+v", root)
	}
	if e.Path[1].Feature != "loss" || !e.Path[1].Primary || e.Path[1].Weight != 0.75 {
		t.Fatalf("left subtree step wrong: %+v", e.Path[1])
	}
	// Leaves: loss>1 leaf (weight .75, primary) then wan leaf (.25).
	if len(e.Leaves) != 2 {
		t.Fatalf("leaves %d, want 2", len(e.Leaves))
	}
	if !e.Leaves[0].Primary || e.Leaves[0].Weight != 0.75 || e.Leaves[1].Primary || e.Leaves[1].Weight != 0.25 {
		t.Fatalf("leaf weights wrong: %+v", e.Leaves)
	}
	if e.Class != tree.Predict(metrics.Vector{"loss": 4}) {
		t.Fatal("explain class diverges from Predict")
	}
}

func TestRuleRendering(t *testing.T) {
	tree := tinyTree()
	rule := tree.PredictExplain(metrics.Vector{"rtt": 80, "loss": 4}).Rule()
	want := "root cause = lan because rtt=80 <= 100 ∧ loss=4 > 1"
	if rule != want {
		t.Fatalf("rule = %q, want %q", rule, want)
	}
	rule = tree.PredictExplain(metrics.Vector{"loss": 0.2}).Rule()
	if !strings.Contains(rule, "rtt missing (split 100)") || !strings.Contains(rule, "loss=0.2 <= 1") {
		t.Fatalf("missing-value rule = %q", rule)
	}
}

// TestExplainByteIdentical is the PR's acceptance criterion: for a tree
// compiled with Compile, the compiled evaluator's explanation is
// byte-identical (as JSON) to the interpreted tree's, on complete and
// on degraded (missing-value) vectors, across the controlled dataset.
func TestExplainByteIdentical(t *testing.T) {
	tree, d := controlledTree(t)
	ct, err := Compile(tree)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for i, in := range d.Instances {
		for _, fv := range []metrics.Vector{in.Features, degrade(in.Features, rng)} {
			ei := tree.PredictExplain(fv)
			ec := ct.PredictExplain(fv)
			bi, err := json.Marshal(ei)
			if err != nil {
				t.Fatal(err)
			}
			bc, err := json.Marshal(ec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bi, bc) {
				t.Fatalf("instance %d: explanations diverge\ninterpreted: %s\ncompiled:    %s", i, bi, bc)
			}
			if ei.Class != tree.Predict(fv) {
				t.Fatalf("instance %d: explain class %q != Predict %q", i, ei.Class, tree.Predict(fv))
			}
			if ei.Rule() != ec.Rule() {
				t.Fatalf("instance %d: rules diverge", i)
			}
		}
	}
}

// TestExplainRowMatchesVector checks the row-based entry point against
// the vector-based one, including explicit NaN missing markers.
func TestExplainRowMatchesVector(t *testing.T) {
	tree, d := controlledTree(t)
	ct, err := Compile(tree)
	if err != nil {
		t.Fatal(err)
	}
	in := d.Instances[0].Features
	row := ct.NewRow()
	for i, f := range ct.Schema() {
		if v, ok := in[f]; ok && i%2 == 0 {
			row[i] = v
		} else {
			row[i] = ml.Missing
		}
	}
	fv := metrics.Vector{}
	for i, f := range ct.Schema() {
		if !ml.IsMissing(row[i]) {
			fv[f] = row[i]
		}
	}
	a, _ := json.Marshal(ct.PredictRowExplain(row))
	b, _ := json.Marshal(tree.PredictExplain(fv))
	if !bytes.Equal(a, b) {
		t.Fatalf("row explain diverges:\n%s\n%s", a, b)
	}
}

package c45

import (
	"fmt"

	"vqprobe/internal/metrics"
	"vqprobe/internal/parallel"
)

// Batch inference over the branch-free struct-of-arrays node layout.
//
// The scalar evaluator walks one row down the tree at a time: every
// step is a dependent load (node → feature → column value → child),
// so throughput is bounded by memory latency, not bandwidth. The batch
// evaluator inverts the loop — it processes N rows per node visit.
// Rows pending at each node are kept as per-node intrusive lists over
// a flat entry arena; a single ascending sweep over the node arrays
// drains every bucket, comparing all pending rows against one loaded
// (feature, threshold) pair and routing them to the children's
// buckets. Because nodes are emitted in preorder (children strictly
// after parents), the frontier sweep visits nodes in exactly the order
// the scalar go-left-stack-right traversal does, so each row's leaf
// contributions accumulate in the same order with the same float
// expressions: batch predictions are bit-identical to PredictRow's.
//
// Rows with a missing split value fork into fractional entries down
// both subtrees (C4.5 semantics), exactly mirroring the scalar stack.

// BatchScratch holds the reusable state of batch prediction calls:
// per-node frontier buckets, the entry arena, and per-row class
// accumulators. A zero value is ready to use; reusing one across calls
// makes the hot path allocation-free. Not safe for concurrent use —
// pool one per worker.
type BatchScratch struct {
	// Workers bounds the goroutines fanning per-tree evaluation of a
	// CompiledForest across internal/parallel. 0 or 1 evaluates trees
	// serially (the right choice inside an already-sharded serving
	// worker); negative selects GOMAXPROCS. Single-tree batches ignore
	// it. Any value produces bit-identical predictions: per-tree
	// contributions land in disjoint slots and are reduced serially in
	// tree order.
	Workers int

	head  []int32   // per node: first pending entry, -1 when empty
	erow  []int32   // per entry: matrix row
	enext []int32   // per entry: next entry pending at the same node
	ew    []float64 // per entry: fractional instance weight
	acc   []float64 // per row: class accumulator (rows × classes)

	f *forestScratch
}

// forestScratch extends a BatchScratch for ensemble evaluation.
type forestScratch struct {
	ws      []BatchScratch // per-worker tree scratch
	contrib []float64      // per tree: rows × classes vote contribution
	votes   []float64      // rows × classes reduced votes
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// predictBatchAcc runs the frontier sweep for every matrix row,
// leaving per-row class accumulators in s.acc (rows × len(classes),
// row-major). The accumulated sums are bit-identical to running
// classifyRow per row.
func (ct *CompiledTree) predictBatchAcc(m *Matrix, s *BatchScratch) {
	if len(m.schema) != len(ct.schema) {
		panic(fmt.Sprintf("c45: matrix has %d columns, tree schema has %d", len(m.schema), len(ct.schema)))
	}
	rows := m.rows
	nc := len(ct.classes)
	s.acc = growF64(s.acc, rows*nc)
	for i := range s.acc {
		s.acc[i] = 0
	}
	if rows == 0 {
		return
	}

	nn := ct.nodes.len()
	s.head = growI32(s.head, nn)
	for i := range s.head {
		s.head[i] = -1
	}
	// Seed the root bucket with one full-weight entry per row.
	s.erow = growI32(s.erow, rows)
	s.enext = growI32(s.enext, rows)
	s.ew = growF64(s.ew, rows)
	for r := 0; r < rows; r++ {
		s.erow[r] = int32(r)
		s.enext[r] = int32(r + 1)
		s.ew[r] = 1
	}
	s.enext[rows-1] = -1
	s.head[0] = 0

	nd := &ct.nodes
	for n := 0; n < nn; n++ {
		e := s.head[n]
		if e < 0 {
			continue
		}
		f := nd.feature[n]
		if f < 0 { // leaf: resolve every pending row
			total := nd.total[n]
			if total <= 0 {
				cls := int(nd.class[n])
				for ; e >= 0; e = s.enext[e] {
					s.acc[int(s.erow[e])*nc+cls] += s.ew[e]
				}
				continue
			}
			dist := ct.dists[nd.distOff[n] : nd.distOff[n]+nd.distLen[n]]
			for ; e >= 0; e = s.enext[e] {
				a := s.acc[int(s.erow[e])*nc : int(s.erow[e])*nc+nc]
				w := s.ew[e]
				for c, d := range dist {
					a[c] += w * d / total
				}
			}
			continue
		}
		// Internal: one loaded split, N pending rows gathered from the
		// feature's contiguous column.
		col := m.col(f)
		l, r := nd.left[n], nd.right[n]
		thr := nd.threshold[n]
		lf := nd.leftFrac[n]
		for e >= 0 {
			next := s.enext[e]
			v := col[s.erow[e]]
			switch {
			case v != v: // NaN: missing — fork fractionally down both subtrees
				w := s.ew[e]
				s.ew[e] = w * lf
				s.enext[e] = s.head[l]
				s.head[l] = e
				s.erow = append(s.erow, s.erow[e])
				s.ew = append(s.ew, w*(1-lf))
				s.enext = append(s.enext, s.head[r])
				s.head[r] = int32(len(s.erow) - 1)
			case v <= thr:
				s.enext[e] = s.head[l]
				s.head[l] = e
			default:
				s.enext[e] = s.head[r]
				s.head[r] = e
			}
			e = next
		}
	}
}

// PredictBatchIdx classifies every matrix row, writing class indices
// (into Classes()) to out, which must have at least m.Rows() slots.
// Reusing s across calls makes the path allocation-free.
func (ct *CompiledTree) PredictBatchIdx(m *Matrix, s *BatchScratch, out []int32) {
	ct.predictBatchAcc(m, s)
	nc := len(ct.classes)
	for r := 0; r < m.rows; r++ {
		out[r] = int32(majority(s.acc[r*nc : (r+1)*nc]))
	}
}

// PredictBatch classifies every matrix row, appending the predicted
// class labels to out and returning it. Predictions are bit-identical
// to calling PredictRow per row.
func (ct *CompiledTree) PredictBatch(m *Matrix, out []string) []string {
	var s BatchScratch
	idx := make([]int32, m.Rows())
	ct.PredictBatchIdx(m, &s, idx)
	for _, i := range idx {
		out = append(out, ct.classes[i])
	}
	return out
}

func (s *BatchScratch) forest(workers int) *forestScratch {
	if s.f == nil {
		s.f = &forestScratch{}
	}
	if len(s.f.ws) < workers {
		s.f.ws = make([]BatchScratch, workers)
	}
	return s.f
}

// PredictBatchIdx classifies every matrix row through the ensemble,
// writing forest class indices (into Classes()) to out, which must
// have at least m.Rows() slots. Per-tree batch evaluation fans out
// across s.Workers goroutines; votes are reduced serially in tree
// order, so predictions are bit-identical to PredictRow for any worker
// count.
func (cf *CompiledForest) PredictBatchIdx(m *Matrix, s *BatchScratch, out []int32) {
	rows := m.Rows()
	nc := len(cf.classes)
	trees := len(cf.trees)
	workers := s.Workers
	if workers == 0 {
		workers = 1
	} else if workers < 0 {
		workers = 0 // parallel.Workers: GOMAXPROCS
	}
	workers = parallel.Workers(workers, trees)
	fs := s.forest(workers)

	fs.contrib = growF64(fs.contrib, trees*rows*nc)
	for i := range fs.contrib {
		fs.contrib[i] = 0
	}
	parallel.ForWorker(trees, workers, func(w, t int) {
		ws := &fs.ws[w]
		ct := cf.trees[t]
		tnc := len(ct.classes)
		ct.predictBatchAcc(m, ws)
		contrib := fs.contrib[t*rows*nc : (t+1)*rows*nc]
		cmap := cf.classMap[t]
		for r := 0; r < rows; r++ {
			a := ws.acc[r*tnc : (r+1)*tnc]
			var sum float64
			for _, v := range a {
				sum += v
			}
			if sum <= 0 {
				continue // mirrors PredictRow: a no-mass tree casts no vote
			}
			row := contrib[r*nc : (r+1)*nc]
			for c, v := range a {
				row[cmap[c]] += v / sum
			}
		}
	})

	// Serial reduction in tree order: the same vote-accumulation order
	// as the scalar loop (classes untouched by a tree contribute an
	// exact +0.0, which cannot perturb the sum).
	fs.votes = growF64(fs.votes, rows*nc)
	for i := range fs.votes {
		fs.votes[i] = 0
	}
	for t := 0; t < trees; t++ {
		contrib := fs.contrib[t*rows*nc : (t+1)*rows*nc]
		for i, v := range contrib {
			fs.votes[i] += v
		}
	}
	for r := 0; r < rows; r++ {
		votes := fs.votes[r*nc : (r+1)*nc]
		best, bi := -1.0, 0
		for i, v := range votes {
			if v > best {
				best, bi = v, i
			}
		}
		out[r] = int32(bi)
	}
}

// PredictBatch classifies every matrix row through the ensemble,
// appending predicted class labels to out and returning it.
func (cf *CompiledForest) PredictBatch(m *Matrix, out []string) []string {
	var s BatchScratch
	idx := make([]int32, m.Rows())
	cf.PredictBatchIdx(m, &s, idx)
	for _, i := range idx {
		out = append(out, cf.classes[i])
	}
	return out
}

// BatchPredictor is the uniform serving surface of CompiledTree and
// CompiledForest: schema-keyed matrix construction, scalar row
// prediction, and allocation-free batch prediction. serve.Model holds
// one without caring which ensemble shape backs it.
type BatchPredictor interface {
	Schema() []string
	Classes() []string
	Nodes() int
	Trees() int
	NewMatrix(capacity int) *Matrix
	Predict(fv metrics.Vector) string
	PredictRow(row []float64) string
	PredictBatchIdx(m *Matrix, s *BatchScratch, out []int32)
	PredictBatch(m *Matrix, out []string) []string
}

var (
	_ BatchPredictor = (*CompiledTree)(nil)
	_ BatchPredictor = (*CompiledForest)(nil)
)

package c45

// Fuzz target for the compiled tree evaluator: any row — NaN, Inf,
// subnormals, huge magnitudes — must classify without panicking, the
// answer must be one of the training classes, and the allocation-free
// PredictRowInto fast path must agree exactly with PredictRow.

import (
	"bytes"
	"math"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

func fuzzTree(f *testing.F) *CompiledTree {
	f.Helper()
	var insts []ml.Instance
	for rtt := 10.0; rtt <= 200; rtt += 10 {
		for loss := 0.0; loss <= 10; loss++ {
			cls := "good"
			if rtt > 100 {
				if loss > 5 {
					cls = "severe"
				} else {
					cls = "mild"
				}
			}
			insts = append(insts, ml.Instance{
				Features: metrics.Vector{"rtt": rtt, "loss": loss},
				Class:    cls,
			})
		}
	}
	tree := Default().TrainTree(ml.NewDataset(insts))
	ct, err := Compile(tree)
	if err != nil {
		f.Fatal(err)
	}
	return ct
}

// FuzzPredictBatch pins batch ≡ scalar over arbitrary row sets: for any
// mix of finite, NaN, ±Inf, subnormal and huge values — NaN rides the
// missing-value fork in both evaluators, so parity covers it too — the
// frontier sweep must classify every row exactly as PredictRow does,
// and the single-tree forest wrapper must agree as well.
func FuzzPredictBatch(f *testing.F) {
	ct := fuzzTree(f)

	f.Add(uint8(3), 50.0, 0.0, 150.0)
	f.Add(uint8(9), math.NaN(), math.Inf(1), math.Inf(-1))
	f.Add(uint8(17), math.MaxFloat64, math.SmallestNonzeroFloat64, 100.0)
	f.Add(uint8(0), 0.0, 0.0, 0.0)

	var s BatchScratch
	m := ct.NewMatrix(4)
	row := ct.NewRow()
	f.Fuzz(func(t *testing.T, n uint8, a, b, c float64) {
		rows := int(n % 33)
		vals := []float64{a, b, c}
		m.Reset()
		for r := 0; r < rows; r++ {
			at := m.AppendRow()
			for fi := range ct.Schema() {
				m.Set(at, fi, vals[(r+fi)%len(vals)])
			}
		}
		idx := make([]int32, rows)
		ct.PredictBatchIdx(m, &s, idx)
		for r := 0; r < rows; r++ {
			m.Row(r, row)
			want := ct.PredictRow(row)
			if got := ct.Classes()[idx[r]]; got != want {
				t.Fatalf("row %d of %d (%v,%v,%v): batch %q, scalar %q", r, rows, a, b, c, got, want)
			}
		}
	})
}

// FuzzOpenSnapshot feeds arbitrary bytes — seeded with a valid snapshot
// so the fuzzer mutates real structure — through the snapshot reader.
// Contract: never panic; corrupt input errors; input that decodes must
// yield a model that classifies without panicking (the validators must
// leave no traversal hazard behind, whatever the bytes were).
func FuzzOpenSnapshot(f *testing.F) {
	ct := fuzzTree(f)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ct, []byte(`{"task":"fuzz"}`)); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte(snapMagic))
	for _, at := range []int{9, 17, 21, len(good) / 2, len(good) - 2} {
		mut := append([]byte(nil), good...)
		mut[at] ^= 0x10
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		model, _, err := ReadSnapshot(data)
		if err != nil {
			if model != nil {
				t.Fatal("error return carries a model")
			}
			return
		}
		row := make([]float64, len(model.Schema()))
		for i := range row {
			row[i] = float64(i) - 1.5
		}
		cls := model.PredictRow(row)
		found := false
		for _, c := range model.Classes() {
			if c == cls {
				found = true
			}
		}
		if !found {
			t.Fatalf("decoded model predicted unknown class %q", cls)
		}
	})
}

func FuzzPredictRow(f *testing.F) {
	ct := fuzzTree(f)
	classes := map[string]bool{}
	for _, c := range ct.Classes() {
		classes[c] = true
	}

	f.Add(50.0, 0.0)
	f.Add(150.0, 8.0)
	f.Add(math.NaN(), math.NaN())
	f.Add(math.Inf(1), math.Inf(-1))
	f.Add(math.MaxFloat64, -math.MaxFloat64)
	f.Add(math.SmallestNonzeroFloat64, 0.0)

	acc := make([]float64, len(ct.Classes()))
	f.Fuzz(func(t *testing.T, a, b float64) {
		row := make([]float64, len(ct.Schema()))
		vals := []float64{a, b}
		for i := range row {
			row[i] = vals[i%len(vals)]
		}
		got := ct.PredictRow(row)
		if !classes[got] {
			t.Fatalf("PredictRow(%v, %v) invented class %q", a, b, got)
		}
		if into := ct.PredictRowInto(row, acc); into != got {
			t.Fatalf("PredictRowInto disagrees with PredictRow on (%v, %v): %q vs %q", a, b, into, got)
		}
	})
}

package c45

// Fuzz target for the compiled tree evaluator: any row — NaN, Inf,
// subnormals, huge magnitudes — must classify without panicking, the
// answer must be one of the training classes, and the allocation-free
// PredictRowInto fast path must agree exactly with PredictRow.

import (
	"math"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

func fuzzTree(f *testing.F) *CompiledTree {
	f.Helper()
	var insts []ml.Instance
	for rtt := 10.0; rtt <= 200; rtt += 10 {
		for loss := 0.0; loss <= 10; loss++ {
			cls := "good"
			if rtt > 100 {
				if loss > 5 {
					cls = "severe"
				} else {
					cls = "mild"
				}
			}
			insts = append(insts, ml.Instance{
				Features: metrics.Vector{"rtt": rtt, "loss": loss},
				Class:    cls,
			})
		}
	}
	tree := Default().TrainTree(ml.NewDataset(insts))
	ct, err := Compile(tree)
	if err != nil {
		f.Fatal(err)
	}
	return ct
}

func FuzzPredictRow(f *testing.F) {
	ct := fuzzTree(f)
	classes := map[string]bool{}
	for _, c := range ct.Classes() {
		classes[c] = true
	}

	f.Add(50.0, 0.0)
	f.Add(150.0, 8.0)
	f.Add(math.NaN(), math.NaN())
	f.Add(math.Inf(1), math.Inf(-1))
	f.Add(math.MaxFloat64, -math.MaxFloat64)
	f.Add(math.SmallestNonzeroFloat64, 0.0)

	acc := make([]float64, len(ct.Classes()))
	f.Fuzz(func(t *testing.T, a, b float64) {
		row := make([]float64, len(ct.Schema()))
		vals := []float64{a, b}
		for i := range row {
			row[i] = vals[i%len(vals)]
		}
		got := ct.PredictRow(row)
		if !classes[got] {
			t.Fatalf("PredictRow(%v, %v) invented class %q", a, b, got)
		}
		if into := ct.PredictRowInto(row, acc); into != got {
			t.Fatalf("PredictRowInto disagrees with PredictRow on (%v, %v): %q vs %q", a, b, into, got)
		}
	})
}

package c45

import (
	"encoding/json"
	"fmt"
)

// nodeJSON is the serialized form of a tree node.
type nodeJSON struct {
	Feature   int       `json:"f"`
	Threshold float64   `json:"t,omitempty"`
	LeftFrac  float64   `json:"lf,omitempty"`
	Class     int       `json:"c"`
	Dist      []float64 `json:"d,omitempty"`
	Weight    float64   `json:"w"`
	Gain      float64   `json:"g,omitempty"`
	Left      *nodeJSON `json:"l,omitempty"`
	Right     *nodeJSON `json:"r,omitempty"`
}

type treeJSON struct {
	Features []string  `json:"features"`
	Classes  []string  `json:"classes"`
	Root     *nodeJSON `json:"root"`
}

func toJSON(n *node) *nodeJSON {
	if n == nil {
		return nil
	}
	return &nodeJSON{
		Feature: n.feature, Threshold: n.threshold, LeftFrac: n.leftFrac,
		Class: n.class, Dist: n.dist, Weight: n.weight, Gain: n.gain,
		Left: toJSON(n.left), Right: toJSON(n.right),
	}
}

func fromJSON(j *nodeJSON) *node {
	if j == nil {
		return nil
	}
	return &node{
		feature: j.Feature, threshold: j.Threshold, leftFrac: j.LeftFrac,
		class: j.Class, dist: j.Dist, weight: j.Weight, gain: j.Gain,
		left: fromJSON(j.Left), right: fromJSON(j.Right),
	}
}

// MarshalJSON serializes the trained tree.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(treeJSON{Features: t.features, Classes: t.classes, Root: toJSON(t.root)})
}

// UnmarshalJSON restores a tree serialized by MarshalJSON.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var j treeJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("c45: decoding tree: %w", err)
	}
	if j.Root == nil {
		return fmt.Errorf("c45: tree has no root")
	}
	t.features = j.Features
	t.classes = j.Classes
	t.root = fromJSON(j.Root)
	return nil
}

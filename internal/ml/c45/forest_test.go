package c45

import (
	"math/rand"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

func TestForestSeparable(t *testing.T) {
	d := blobs(100, 20)
	f := NewForest(ForestConfig{Trees: 11, Seed: 1}).TrainForest(d)
	if f.Trees() != 11 {
		t.Fatalf("trees = %d", f.Trees())
	}
	if acc := ml.Evaluate(f, d).Accuracy(); acc < 0.98 {
		t.Errorf("forest accuracy %.3f on separable blobs", acc)
	}
}

func TestForestAtLeastMatchesTreeOnNoisyData(t *testing.T) {
	// Overlapping classes: bagging should not be (much) worse than a
	// single tree under cross-validation.
	rng := rand.New(rand.NewSource(21))
	var ins []ml.Instance
	for i := 0; i < 400; i++ {
		cls, off := "a", 0.0
		if i%2 == 0 {
			cls, off = "b", 1.2 // heavy overlap
		}
		ins = append(ins, ml.Instance{Features: metrics.Vector{
			"x": rng.NormFloat64() + off,
			"y": rng.NormFloat64() + off/2,
			"n": rng.Float64(),
		}, Class: cls})
	}
	d := ml.NewDataset(ins)
	tree := ml.CrossValidate(Default(), d, 5, rand.New(rand.NewSource(3)))
	forest := ml.CrossValidate(NewForest(ForestConfig{Trees: 15, Seed: 4}), d, 5, rand.New(rand.NewSource(3)))
	if forest.Accuracy() < tree.Accuracy()-0.05 {
		t.Errorf("forest %.3f much worse than single tree %.3f", forest.Accuracy(), tree.Accuracy())
	}
}

func TestForestDeterministic(t *testing.T) {
	d := blobs(80, 22)
	f1 := NewForest(ForestConfig{Trees: 7, Seed: 9}).TrainForest(d)
	f2 := NewForest(ForestConfig{Trees: 7, Seed: 9}).TrainForest(d)
	for i := 0; i < 30; i++ {
		fv := metrics.Vector{"x": float64(i)/3 - 4, "noise": 0.5}
		if f1.Predict(fv) != f2.Predict(fv) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestForestHandlesMissing(t *testing.T) {
	d := blobs(80, 23)
	f := NewForest(ForestConfig{Trees: 7, Seed: 9}).TrainForest(d)
	if got := f.Predict(metrics.Vector{}); got != "lo" && got != "hi" {
		t.Errorf("empty-vector prediction %q", got)
	}
}

// TestForestPredictMatchesDistributionWalk pins the resolve-once hot
// path against the definitionally-correct slow path: summing every
// tree's Distribution and tie-breaking by class order. The two must
// agree on every instance, including heavily-missing vectors.
func TestForestPredictMatchesDistributionWalk(t *testing.T) {
	d := synthDataset(400, 7, 31, 0.3)
	f := NewForest(ForestConfig{Trees: 9, Seed: 5, Tree: Config{NoPrune: true}}).TrainForest(d)
	slow := func(fv metrics.Vector) string {
		votes := map[string]float64{}
		for _, tree := range f.trees {
			for cls, p := range tree.Distribution(fv) {
				votes[cls] += p
			}
		}
		best, bi := -1.0, ""
		for _, cls := range f.classes {
			if v := votes[cls]; v > best {
				best, bi = v, cls
			}
		}
		return bi
	}
	for i, inst := range d.Instances {
		if got, want := f.Predict(inst.Features), slow(inst.Features); got != want {
			t.Fatalf("instance %d: hot path %q, Distribution walk %q", i, got, want)
		}
	}
}

// leafTree builds a single-leaf tree voting its entire mass for one
// class — the minimal ensemble member for tie-break tests.
func leafTree(classes []string, class int) *Tree {
	dist := make([]float64, len(classes))
	dist[class] = 1
	return &Tree{
		features: nil,
		classes:  append([]string{}, classes...),
		root:     &node{feature: -1, class: class, dist: dist},
	}
}

// TestForestTieBreakDeterministic pins the majority-vote tie-break: with
// an exactly tied vote, the class earliest in the forest's class order
// wins — on Forest.Predict AND on the compiled forms, which must agree.
func TestForestTieBreakDeterministic(t *testing.T) {
	classes := []string{"alpha", "beta", "gamma"}
	// One full-confidence vote each for beta and gamma: a 1.0—1.0 tie
	// that the class order must break toward beta, never gamma, and
	// never the unvoted alpha.
	f := &Forest{
		classes: classes,
		trees:   []*Tree{leafTree(classes, 2), leafTree(classes, 1)},
	}
	for i := 0; i < 10; i++ { // stable across repeated calls
		if got := f.Predict(metrics.Vector{}); got != "beta" {
			t.Fatalf("tie broke to %q, want beta", got)
		}
	}

	cf, err := CompileForest(f)
	if err != nil {
		t.Fatal(err)
	}
	row := cf.RowFromVector(metrics.Vector{})
	if got := cf.PredictRow(row); got != "beta" {
		t.Fatalf("compiled tie broke to %q, want beta", got)
	}
	m := cf.NewMatrix(1)
	m.AppendVector(metrics.Vector{})
	if got := cf.PredictBatch(m, nil); got[0] != "beta" {
		t.Fatalf("batch tie broke to %q, want beta", got[0])
	}
}

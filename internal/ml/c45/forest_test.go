package c45

import (
	"math/rand"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

func TestForestSeparable(t *testing.T) {
	d := blobs(100, 20)
	f := NewForest(ForestConfig{Trees: 11, Seed: 1}).TrainForest(d)
	if f.Trees() != 11 {
		t.Fatalf("trees = %d", f.Trees())
	}
	if acc := ml.Evaluate(f, d).Accuracy(); acc < 0.98 {
		t.Errorf("forest accuracy %.3f on separable blobs", acc)
	}
}

func TestForestAtLeastMatchesTreeOnNoisyData(t *testing.T) {
	// Overlapping classes: bagging should not be (much) worse than a
	// single tree under cross-validation.
	rng := rand.New(rand.NewSource(21))
	var ins []ml.Instance
	for i := 0; i < 400; i++ {
		cls, off := "a", 0.0
		if i%2 == 0 {
			cls, off = "b", 1.2 // heavy overlap
		}
		ins = append(ins, ml.Instance{Features: metrics.Vector{
			"x": rng.NormFloat64() + off,
			"y": rng.NormFloat64() + off/2,
			"n": rng.Float64(),
		}, Class: cls})
	}
	d := ml.NewDataset(ins)
	tree := ml.CrossValidate(Default(), d, 5, rand.New(rand.NewSource(3)))
	forest := ml.CrossValidate(NewForest(ForestConfig{Trees: 15, Seed: 4}), d, 5, rand.New(rand.NewSource(3)))
	if forest.Accuracy() < tree.Accuracy()-0.05 {
		t.Errorf("forest %.3f much worse than single tree %.3f", forest.Accuracy(), tree.Accuracy())
	}
}

func TestForestDeterministic(t *testing.T) {
	d := blobs(80, 22)
	f1 := NewForest(ForestConfig{Trees: 7, Seed: 9}).TrainForest(d)
	f2 := NewForest(ForestConfig{Trees: 7, Seed: 9}).TrainForest(d)
	for i := 0; i < 30; i++ {
		fv := metrics.Vector{"x": float64(i)/3 - 4, "noise": 0.5}
		if f1.Predict(fv) != f2.Predict(fv) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestForestHandlesMissing(t *testing.T) {
	d := blobs(80, 23)
	f := NewForest(ForestConfig{Trees: 7, Seed: 9}).TrainForest(d)
	if got := f.Predict(metrics.Vector{}); got != "lo" && got != "hi" {
		t.Errorf("empty-vector prediction %q", got)
	}
}

package c45

import (
	"fmt"
	"sort"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// This file is the serving-side counterpart of the recursive *node
// tree: Compile flattens a trained tree into a contiguous
// struct-of-arrays form with feature indices pre-resolved against a
// fixed schema, so a prediction is a loop over flat slices — no map
// lookups and no pointer chasing on the hot path. The arithmetic
// mirrors Tree.classify operation for operation, so compiled
// predictions are bit-identical to the pointer tree's.

// nodeArrays is the branch-free struct-of-arrays node layout: one flat
// slice per field instead of a slice of node structs. Nodes are stored
// in preorder, so both children of an internal node always have a
// HIGHER index than their parent — the invariant that lets PredictBatch
// resolve a whole frontier in one ascending index sweep and lets the
// snapshot loader reject corrupt child pointers without reachability
// analysis. The arrays are also exactly what WriteSnapshot serializes:
// loading a snapshot is a single sequential decode back into this
// layout, with no per-node reconstruction.
type nodeArrays struct {
	feature []int32 // schema row index of the split feature; -1 for leaves
	left    []int32
	right   []int32
	class   []int32 // majority class (leaves)
	distOff []int32 // leaf class distribution, as a window into dists
	distLen []int32

	threshold []float64
	leftFrac  []float64
	total     []float64 // leaf distribution mass
}

func (na *nodeArrays) len() int { return len(na.feature) }

// push appends one zeroed leaf-shaped node and returns its index.
func (na *nodeArrays) push() int32 {
	at := int32(len(na.feature))
	na.feature = append(na.feature, -1)
	na.left = append(na.left, 0)
	na.right = append(na.right, 0)
	na.class = append(na.class, 0)
	na.distOff = append(na.distOff, 0)
	na.distLen = append(na.distLen, 0)
	na.threshold = append(na.threshold, 0)
	na.leftFrac = append(na.leftFrac, 0)
	na.total = append(na.total, 0)
	return at
}

// CompiledTree is the flat, immutable serving form of a Tree.
type CompiledTree struct {
	schema  []string
	classes []string
	nodes   nodeArrays
	dists   []float64
	sindex  map[string]int32
}

// Compile flattens a trained tree using the tree's own feature list as
// the row schema.
func Compile(t *Tree) (*CompiledTree, error) {
	return CompileWithSchema(t, t.features)
}

// CompileWithSchema flattens a trained tree against an external feature
// schema (e.g. the union schema of a forest). Every feature the tree
// splits on must appear in the schema.
func CompileWithSchema(t *Tree, schema []string) (*CompiledTree, error) {
	if t == nil || t.root == nil {
		return nil, fmt.Errorf("c45: compiling an untrained tree")
	}
	sidx := make(map[string]int32, len(schema))
	for i, f := range schema {
		if _, dup := sidx[f]; dup {
			return nil, fmt.Errorf("c45: duplicate feature %q in schema", f)
		}
		sidx[f] = int32(i)
	}
	ct := &CompiledTree{
		schema:  append([]string{}, schema...),
		classes: append([]string{}, t.classes...),
		sindex:  sidx,
	}
	if _, err := ct.emit(t, t.root); err != nil {
		return nil, err
	}
	return ct, nil
}

// emit appends n (and, preorder, its subtree) and returns its index.
func (ct *CompiledTree) emit(t *Tree, n *node) (int32, error) {
	at := ct.nodes.push()
	if n.isLeaf() {
		total := 0.0
		for _, d := range n.dist {
			total += d
		}
		ct.nodes.class[at] = int32(n.class)
		ct.nodes.total[at] = total
		ct.nodes.distOff[at] = int32(len(ct.dists))
		ct.nodes.distLen[at] = int32(len(n.dist))
		ct.dists = append(ct.dists, n.dist...)
		return at, nil
	}
	fidx, ok := ct.sindex[t.features[n.feature]]
	if !ok {
		return 0, fmt.Errorf("c45: split feature %q missing from schema", t.features[n.feature])
	}
	left, err := ct.emit(t, n.left)
	if err != nil {
		return 0, err
	}
	right, err := ct.emit(t, n.right)
	if err != nil {
		return 0, err
	}
	ct.nodes.feature[at] = fidx
	ct.nodes.threshold[at] = n.threshold
	ct.nodes.leftFrac[at] = n.leftFrac
	ct.nodes.left[at], ct.nodes.right[at] = left, right
	return at, nil
}

// Schema returns the row layout: feature name per row index (do not
// mutate).
func (ct *CompiledTree) Schema() []string { return ct.schema }

// Classes returns the class labels in index order (do not mutate).
func (ct *CompiledTree) Classes() []string { return ct.classes }

// Nodes returns the flattened node count.
func (ct *CompiledTree) Nodes() int { return ct.nodes.len() }

// Trees returns 1: a CompiledTree is a single-member ensemble to
// callers holding a BatchPredictor.
func (ct *CompiledTree) Trees() int { return 1 }

// FeatureIndex returns the row index of a feature, or -1.
func (ct *CompiledTree) FeatureIndex(name string) int {
	if i, ok := ct.sindex[name]; ok {
		return int(i)
	}
	return -1
}

// NewRow allocates a schema-sized row with every value missing.
func (ct *CompiledTree) NewRow() []float64 {
	row := make([]float64, len(ct.schema))
	for i := range row {
		row[i] = ml.Missing
	}
	return row
}

// FillRow writes fv into row (which must be schema-sized); features
// absent from fv become missing values.
func (ct *CompiledTree) FillRow(fv metrics.Vector, row []float64) {
	for i, f := range ct.schema {
		if v, ok := fv[f]; ok {
			row[i] = v
		} else {
			row[i] = ml.Missing
		}
	}
}

// RowFromVector converts a named feature vector into schema row form.
func (ct *CompiledTree) RowFromVector(fv metrics.Vector) []float64 {
	row := make([]float64, len(ct.schema))
	ct.FillRow(fv, row)
	return row
}

// cframe is one pending branch of a missing-value traversal.
type cframe struct {
	n int32
	w float64
}

// classifyRow accumulates the weighted leaf distributions for row into
// acc, visiting nodes in exactly the order Tree.classify recurses so
// float accumulation is bit-identical. Because nodes are stored in
// preorder, this go-left-stack-right traversal visits nodes in strictly
// ascending index order — the property PredictBatch exploits.
func (ct *CompiledTree) classifyRow(row []float64, acc []float64) {
	var local [24]cframe
	stack := local[:0]
	nd := &ct.nodes
	n, w := int32(0), 1.0
	for {
		f := nd.feature[n]
		if f < 0 {
			if nd.total[n] <= 0 {
				acc[nd.class[n]] += w
			} else {
				for c, d := range ct.dists[nd.distOff[n] : nd.distOff[n]+nd.distLen[n]] {
					acc[c] += w * d / nd.total[n]
				}
			}
			if len(stack) == 0 {
				return
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n, w = top.n, top.w
			continue
		}
		v := row[f]
		if v != v { // NaN: missing at prediction time
			stack = append(stack, cframe{nd.right[n], w * (1 - nd.leftFrac[n])})
			n, w = nd.left[n], w*nd.leftFrac[n]
			continue
		}
		if v <= nd.threshold[n] {
			n = nd.left[n]
		} else {
			n = nd.right[n]
		}
	}
}

// PredictRow classifies a schema-ordered row.
func (ct *CompiledTree) PredictRow(row []float64) string {
	acc := make([]float64, len(ct.classes))
	ct.classifyRow(row, acc)
	return ct.classes[majority(acc)]
}

// PredictRowInto classifies a row reusing a caller-owned accumulator
// (len == len(Classes())); the hot path of the serving engine.
func (ct *CompiledTree) PredictRowInto(row []float64, acc []float64) string {
	for i := range acc {
		acc[i] = 0
	}
	ct.classifyRow(row, acc)
	return ct.classes[majority(acc)]
}

// Predict implements ml.Classifier.
func (ct *CompiledTree) Predict(fv metrics.Vector) string {
	return ct.PredictRow(ct.RowFromVector(fv))
}

// Distribution mirrors Tree.Distribution for the compiled form.
func (ct *CompiledTree) Distribution(fv metrics.Vector) map[string]float64 {
	acc := make([]float64, len(ct.classes))
	ct.classifyRow(ct.RowFromVector(fv), acc)
	var sum float64
	for _, v := range acc {
		sum += v
	}
	out := map[string]float64{}
	for i, c := range ct.classes {
		if sum > 0 {
			out[c] = acc[i] / sum
		}
	}
	return out
}

// CompiledForest is the flat serving form of a bagged Forest: every
// tree compiled against the union feature schema, with tree-local class
// indices pre-mapped onto the forest's class list.
type CompiledForest struct {
	schema   []string
	classes  []string
	trees    []*CompiledTree
	classMap [][]int32
}

// CompileForest flattens a trained forest.
func CompileForest(f *Forest) (*CompiledForest, error) {
	if f == nil || len(f.trees) == 0 {
		return nil, fmt.Errorf("c45: compiling an untrained forest")
	}
	seen := map[string]bool{}
	for _, t := range f.trees {
		for _, feat := range t.features {
			seen[feat] = true
		}
	}
	schema := make([]string, 0, len(seen))
	for feat := range seen {
		schema = append(schema, feat)
	}
	sort.Strings(schema)

	fidx := make(map[string]int32, len(f.classes))
	for i, c := range f.classes {
		fidx[c] = int32(i)
	}
	cf := &CompiledForest{schema: schema, classes: append([]string{}, f.classes...)}
	for _, t := range f.trees {
		ct, err := CompileWithSchema(t, schema)
		if err != nil {
			return nil, err
		}
		cmap := make([]int32, len(t.classes))
		for i, c := range t.classes {
			gi, ok := fidx[c]
			if !ok {
				return nil, fmt.Errorf("c45: tree class %q unknown to forest", c)
			}
			cmap[i] = gi
		}
		cf.trees = append(cf.trees, ct)
		cf.classMap = append(cf.classMap, cmap)
	}
	return cf, nil
}

// Schema returns the union row layout (do not mutate).
func (cf *CompiledForest) Schema() []string { return cf.schema }

// Classes returns the forest's class labels in index order (do not
// mutate).
func (cf *CompiledForest) Classes() []string { return cf.classes }

// Trees returns the ensemble size.
func (cf *CompiledForest) Trees() int { return len(cf.trees) }

// Nodes returns the total flattened node count across the ensemble.
func (cf *CompiledForest) Nodes() int {
	n := 0
	for _, ct := range cf.trees {
		n += ct.Nodes()
	}
	return n
}

// RowFromVector converts a named feature vector into schema row form.
func (cf *CompiledForest) RowFromVector(fv metrics.Vector) []float64 {
	row := make([]float64, len(cf.schema))
	for i, f := range cf.schema {
		if v, ok := fv[f]; ok {
			row[i] = v
		} else {
			row[i] = ml.Missing
		}
	}
	return row
}

// PredictRow mirrors Forest.Predict: probability-weighted vote with
// deterministic tie-break by class order.
func (cf *CompiledForest) PredictRow(row []float64) string {
	votes := make([]float64, len(cf.classes))
	var acc []float64
	for ti, ct := range cf.trees {
		if cap(acc) < len(ct.classes) {
			acc = make([]float64, len(ct.classes))
		}
		acc = acc[:len(ct.classes)]
		for i := range acc {
			acc[i] = 0
		}
		ct.classifyRow(row, acc)
		var sum float64
		for _, v := range acc {
			sum += v
		}
		if sum <= 0 {
			continue
		}
		for c, v := range acc {
			votes[cf.classMap[ti][c]] += v / sum
		}
	}
	best, bi := -1.0, ""
	for i, cls := range cf.classes {
		if votes[i] > best {
			best, bi = votes[i], cls
		}
	}
	return bi
}

// Predict implements ml.Classifier.
func (cf *CompiledForest) Predict(fv metrics.Vector) string {
	return cf.PredictRow(cf.RowFromVector(fv))
}

package c45

import (
	"bytes"
	"math"
	"os"
	"reflect"
	"testing"
)

// roundTrip writes model to a buffer and reads it back, failing the
// test on either side.
func roundTrip(t *testing.T, model BatchPredictor, meta []byte) (BatchPredictor, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, model, meta); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	if !IsSnapshot(buf.Bytes()) {
		t.Fatal("written snapshot does not sniff as one")
	}
	got, gotMeta, err := ReadSnapshot(buf.Bytes())
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	return got, gotMeta
}

// TestSnapshotTreeRoundTrip pins that a tree survives the binary
// round-trip with bit-identical node arrays, and therefore bit-identical
// predictions.
func TestSnapshotTreeRoundTrip(t *testing.T) {
	d := synthDataset(400, 8, 21, 0.2)
	ct, err := Compile(New(Config{}).TrainTree(d))
	if err != nil {
		t.Fatal(err)
	}
	got, meta := roundTrip(t, ct, []byte(`{"task":"t"}`))
	if string(meta) != `{"task":"t"}` {
		t.Fatalf("meta round-trip = %q", meta)
	}
	lt, ok := got.(*CompiledTree)
	if !ok {
		t.Fatalf("loaded model is %T, want *CompiledTree", got)
	}
	if !reflect.DeepEqual(lt.schema, ct.schema) || !reflect.DeepEqual(lt.classes, ct.classes) {
		t.Fatal("schema or classes changed across the round-trip")
	}
	if !reflect.DeepEqual(lt.nodes, ct.nodes) || !reflect.DeepEqual(lt.dists, ct.dists) {
		t.Fatal("node arrays changed across the round-trip")
	}

	m := fillMatrix(ct, d)
	want := ct.PredictBatch(m, nil)
	gotPred := lt.PredictBatch(m, nil)
	if !reflect.DeepEqual(want, gotPred) {
		t.Fatal("loaded tree predictions diverge from the original")
	}
}

// TestSnapshotForestRoundTrip covers the ensemble kind, including the
// per-tree class maps.
func TestSnapshotForestRoundTrip(t *testing.T) {
	d := synthDataset(300, 6, 5, 0.15)
	f := NewForest(ForestConfig{Trees: 7, Seed: 2, Tree: Config{NoPrune: true}}).TrainForest(d)
	cf, err := CompileForest(f)
	if err != nil {
		t.Fatal(err)
	}
	got, meta := roundTrip(t, cf, nil)
	if len(meta) != 0 {
		t.Fatalf("meta round-trip = %q, want empty", meta)
	}
	lf, ok := got.(*CompiledForest)
	if !ok {
		t.Fatalf("loaded model is %T, want *CompiledForest", got)
	}
	if lf.Trees() != cf.Trees() || lf.Nodes() != cf.Nodes() {
		t.Fatalf("loaded forest %d trees/%d nodes, want %d/%d", lf.Trees(), lf.Nodes(), cf.Trees(), cf.Nodes())
	}
	if !reflect.DeepEqual(lf.classMap, cf.classMap) {
		t.Fatal("class maps changed across the round-trip")
	}

	m := fillMatrix(cf, d)
	want := cf.PredictBatch(m, nil)
	gotPred := lf.PredictBatch(m, nil)
	if !reflect.DeepEqual(want, gotPred) {
		t.Fatal("loaded forest predictions diverge from the original")
	}
}

// TestSnapshotRejectsCorruption flips, truncates, and rewrites bytes and
// requires an error (never a panic, never silent acceptance) for every
// mutation that the CRC or validators must catch.
func TestSnapshotRejectsCorruption(t *testing.T) {
	d := synthDataset(200, 5, 9, 0.1)
	ct, err := Compile(New(Config{}).TrainTree(d))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ct, []byte("m")); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(name string, data []byte) {
		t.Helper()
		if _, _, err := ReadSnapshot(data); err == nil {
			t.Fatalf("%s: corrupt snapshot accepted", name)
		}
	}
	check("empty", nil)
	check("magic only", good[:8])
	for _, cut := range []int{1, len(good) / 2, len(good) - 1} {
		check("truncated", good[:cut])
	}
	for _, at := range []int{8, 12, 16, 24, len(good) / 2, len(good) - 1} {
		mut := append([]byte(nil), good...)
		mut[at] ^= 0x40
		check("bit flip", mut)
	}
	check("appended garbage", append(append([]byte(nil), good...), 1, 2, 3))

	// A wrong version must be rejected even with a valid CRC.
	mut := append([]byte(nil), good...)
	mut[8] = 99
	check("future version", mut)
}

// TestSnapshotWriteErrors covers the writer-side guards.
func TestSnapshotWriteErrors(t *testing.T) {
	if err := WriteSnapshot(&bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("expected an error snapshotting a nil model")
	}
	d := synthDataset(100, 4, 3, 0)
	ct, err := Compile(New(Config{}).TrainTree(d))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&bytes.Buffer{}, ct, make([]byte, snapMaxMeta+1)); err == nil {
		t.Fatal("expected an error for an oversized meta blob")
	}
}

// TestOpenSnapshotFile covers the file path, including missing files.
func TestOpenSnapshotFile(t *testing.T) {
	d := synthDataset(150, 4, 13, 0.1)
	ct, err := Compile(New(Config{}).TrainTree(d))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.vqsnap"
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ct, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	model, _, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	row := ct.NewRow()
	row[0] = 1.5
	if got, want := model.PredictRow(row), ct.PredictRow(row); got != want {
		t.Fatalf("loaded prediction %q, want %q", got, want)
	}
	if _, _, err := OpenSnapshot(path + ".missing"); err == nil {
		t.Fatal("expected an error opening a missing snapshot")
	}
}

// TestSnapshotPreorderValidation hand-corrupts a child pointer to point
// backwards; the loader must reject it (a backward edge would make the
// scalar traversal loop forever).
func TestSnapshotPreorderValidation(t *testing.T) {
	d := synthDataset(200, 5, 9, 0)
	ct, err := Compile(New(Config{}).TrainTree(d))
	if err != nil {
		t.Fatal(err)
	}
	if ct.Nodes() < 3 {
		t.Skip("degenerate tree")
	}
	bad := &CompiledTree{
		schema:  ct.schema,
		classes: ct.classes,
		nodes:   ct.nodes,
		dists:   ct.dists,
		sindex:  ct.sindex,
	}
	bad.nodes.left = append([]int32(nil), ct.nodes.left...)
	// Find an internal node and aim its left child at the root.
	for i := 0; i < bad.nodes.len(); i++ {
		if bad.nodes.feature[i] >= 0 {
			bad.nodes.left[i] = 0
			break
		}
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, bad, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(buf.Bytes()); err == nil {
		t.Fatal("backward child pointer accepted")
	}
}

// TestSnapshotNaNDistSurvives pins exact float bit preservation through
// the format, including non-finite values.
func TestSnapshotNaNDistSurvives(t *testing.T) {
	d := synthDataset(100, 4, 3, 0)
	ct, err := Compile(New(Config{}).TrainTree(d))
	if err != nil {
		t.Fatal(err)
	}
	probe := &CompiledTree{
		schema:  ct.schema,
		classes: ct.classes,
		nodes:   ct.nodes,
		dists:   ct.dists,
		sindex:  ct.sindex,
	}
	probe.nodes.threshold = append([]float64(nil), ct.nodes.threshold...)
	probe.nodes.threshold[0] = math.Copysign(0, -1) // -0.0 must round-trip
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, probe, nil); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadSnapshot(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	b := math.Float64bits(got.(*CompiledTree).nodes.threshold[0])
	if b != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("threshold bits %#x, want negative zero", b)
	}
}

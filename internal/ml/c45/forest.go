package c45

import (
	"math/rand"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/parallel"
)

// Forest is a bagged ensemble of C4.5 trees with per-tree feature
// subsampling — a random-forest-style extension of the paper's single
// J48 model, evaluated by the ablate-forest experiment. The paper chose
// a single tree for interpretability; the forest quantifies how much
// accuracy that choice costs.
type Forest struct {
	trees   []*Tree
	classes []string
}

// ForestConfig tunes the ensemble.
type ForestConfig struct {
	// Trees is the ensemble size. Zero selects 25.
	Trees int
	// FeatureFraction of features offered to each tree. Zero selects
	// 0.7 (classic sqrt-style subsampling is too aggressive for the
	// post-FCBF feature counts this repo produces).
	FeatureFraction float64
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
	// Tree is the per-tree learner config (pruning usually off inside
	// a bagged ensemble).
	Tree Config
	// Workers bounds the goroutines training trees concurrently. Zero
	// selects GOMAXPROCS. The ensemble is byte-identical for any worker
	// count: every tree's bootstrap sample and feature subset are drawn
	// serially from the master RNG before training fans out.
	Workers int
}

// ForestTrainer builds forests.
type ForestTrainer struct {
	cfg ForestConfig
}

// NewForest returns a forest trainer.
func NewForest(cfg ForestConfig) *ForestTrainer {
	if cfg.Trees == 0 {
		cfg.Trees = 25
	}
	if cfg.FeatureFraction == 0 {
		cfg.FeatureFraction = 0.7
	}
	return &ForestTrainer{cfg: cfg}
}

// Train implements ml.Trainer.
func (t *ForestTrainer) Train(d *ml.Dataset) ml.Classifier { return t.TrainForest(d) }

// TrainForest builds the concrete ensemble. Per-tree randomness
// (bootstrap sample, feature subset) is drawn serially up front from
// the master RNG; training then fans out over the worker pool, so the
// ensemble is byte-identical to a serial build.
func (t *ForestTrainer) TrainForest(d *ml.Dataset) *Forest {
	rng := rand.New(rand.NewSource(t.cfg.Seed + 1))
	features := d.Features()
	nf := int(float64(len(features)) * t.cfg.FeatureFraction)
	if nf < 1 {
		nf = 1
	}
	type plan struct {
		boot []ml.Instance
		keep []string
	}
	plans := make([]plan, t.cfg.Trees)
	for i := range plans {
		// Bootstrap sample of instances.
		boot := make([]ml.Instance, d.Len())
		for j := range boot {
			boot[j] = d.Instances[rng.Intn(d.Len())]
		}
		// Feature subsample.
		perm := rng.Perm(len(features))
		keep := make([]string, nf)
		for j := 0; j < nf; j++ {
			keep[j] = features[perm[j]]
		}
		plans[i] = plan{boot: boot, keep: keep}
	}

	workers := parallel.Workers(t.cfg.Workers, t.cfg.Trees)
	treeCfg := t.cfg.Tree
	if workers > 1 {
		// Concurrent trees already saturate the pool; keep each build's
		// split search serial instead of oversubscribing.
		treeCfg.Workers = 1
	}
	f := &Forest{classes: d.Classes(), trees: make([]*Tree, t.cfg.Trees)}
	parallel.For(t.cfg.Trees, workers, func(i int) {
		sub := ml.NewDataset(plans[i].boot).Project(plans[i].keep)
		f.trees[i] = New(treeCfg).TrainTree(sub)
	})
	return f
}

// Predict implements ml.Classifier: probability-weighted vote over the
// ensemble.
func (f *Forest) Predict(fv metrics.Vector) string {
	votes := map[string]float64{}
	for _, tree := range f.trees {
		for cls, p := range tree.Distribution(fv) {
			votes[cls] += p
		}
	}
	best, bi := -1.0, ""
	for _, cls := range f.classes { // deterministic tie-break by class order
		if v := votes[cls]; v > best {
			best, bi = v, cls
		}
	}
	return bi
}

// Size returns the total node count across the ensemble.
func (f *Forest) Size() int {
	n := 0
	for _, t := range f.trees {
		n += t.Size()
	}
	return n
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

package c45

import (
	"math/rand"
	"sort"
	"sync"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/parallel"
)

// Forest is a bagged ensemble of C4.5 trees with per-tree feature
// subsampling — a random-forest-style extension of the paper's single
// J48 model, evaluated by the ablate-forest experiment. The paper chose
// a single tree for interpretability; the forest quantifies how much
// accuracy that choice costs.
type Forest struct {
	trees   []*Tree
	classes []string

	// once guards the lazily-built prediction-path resolution: the union
	// feature schema across the ensemble plus, per tree, the tree-local
	// feature → union row index and tree-local class → forest class index
	// maps. With them a prediction resolves the metrics.Vector into row
	// form once, instead of one map lookup per node per tree.
	once   sync.Once
	union  []string
	uindex map[string]int
	fmap   [][]int32
	cmap   [][]int32
}

// ForestConfig tunes the ensemble.
type ForestConfig struct {
	// Trees is the ensemble size. Zero selects 25.
	Trees int
	// FeatureFraction of features offered to each tree. Zero selects
	// 0.7 (classic sqrt-style subsampling is too aggressive for the
	// post-FCBF feature counts this repo produces).
	FeatureFraction float64
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64
	// Tree is the per-tree learner config (pruning usually off inside
	// a bagged ensemble).
	Tree Config
	// Workers bounds the goroutines training trees concurrently. Zero
	// selects GOMAXPROCS. The ensemble is byte-identical for any worker
	// count: every tree's bootstrap sample and feature subset are drawn
	// serially from the master RNG before training fans out.
	Workers int
}

// ForestTrainer builds forests.
type ForestTrainer struct {
	cfg ForestConfig
}

// NewForest returns a forest trainer.
func NewForest(cfg ForestConfig) *ForestTrainer {
	if cfg.Trees == 0 {
		cfg.Trees = 25
	}
	if cfg.FeatureFraction == 0 {
		cfg.FeatureFraction = 0.7
	}
	return &ForestTrainer{cfg: cfg}
}

// Train implements ml.Trainer.
func (t *ForestTrainer) Train(d *ml.Dataset) ml.Classifier { return t.TrainForest(d) }

// TrainForest builds the concrete ensemble. Per-tree randomness
// (bootstrap sample, feature subset) is drawn serially up front from
// the master RNG; training then fans out over the worker pool, so the
// ensemble is byte-identical to a serial build.
func (t *ForestTrainer) TrainForest(d *ml.Dataset) *Forest {
	rng := rand.New(rand.NewSource(t.cfg.Seed + 1))
	features := d.Features()
	nf := int(float64(len(features)) * t.cfg.FeatureFraction)
	if nf < 1 {
		nf = 1
	}
	type plan struct {
		boot []ml.Instance
		keep []string
	}
	plans := make([]plan, t.cfg.Trees)
	for i := range plans {
		// Bootstrap sample of instances.
		boot := make([]ml.Instance, d.Len())
		for j := range boot {
			boot[j] = d.Instances[rng.Intn(d.Len())]
		}
		// Feature subsample.
		perm := rng.Perm(len(features))
		keep := make([]string, nf)
		for j := 0; j < nf; j++ {
			keep[j] = features[perm[j]]
		}
		plans[i] = plan{boot: boot, keep: keep}
	}

	workers := parallel.Workers(t.cfg.Workers, t.cfg.Trees)
	treeCfg := t.cfg.Tree
	if workers > 1 {
		// Concurrent trees already saturate the pool; keep each build's
		// split search serial instead of oversubscribing.
		treeCfg.Workers = 1
	}
	f := &Forest{classes: d.Classes(), trees: make([]*Tree, t.cfg.Trees)}
	parallel.For(t.cfg.Trees, workers, func(i int) {
		sub := ml.NewDataset(plans[i].boot).Project(plans[i].keep)
		f.trees[i] = New(treeCfg).TrainTree(sub)
	})
	return f
}

// resolve builds the shared prediction-path state on first use. Sorted
// union order keeps the schema deterministic; the maps themselves never
// influence float arithmetic, only where a value is read from.
func (f *Forest) resolve() {
	f.once.Do(func() {
		seen := map[string]bool{}
		for _, t := range f.trees {
			for _, feat := range t.features {
				seen[feat] = true
			}
		}
		f.union = make([]string, 0, len(seen))
		for feat := range seen {
			f.union = append(f.union, feat)
		}
		sort.Strings(f.union)
		f.uindex = make(map[string]int, len(f.union))
		for i, feat := range f.union {
			f.uindex[feat] = i
		}
		cidx := make(map[string]int32, len(f.classes))
		for i, c := range f.classes {
			cidx[c] = int32(i)
		}
		f.fmap = make([][]int32, len(f.trees))
		f.cmap = make([][]int32, len(f.trees))
		for ti, t := range f.trees {
			fm := make([]int32, len(t.features))
			for i, feat := range t.features {
				fm[i] = int32(f.uindex[feat])
			}
			cm := make([]int32, len(t.classes))
			for i, c := range t.classes {
				cm[i] = cidx[c]
			}
			f.fmap[ti], f.cmap[ti] = fm, cm
		}
	})
}

// Predict implements ml.Classifier: probability-weighted vote over the
// ensemble with a deterministic tie-break by class order. The vector is
// resolved into union-schema row form once; every tree then reads its
// split values out of the flat row instead of doing one map lookup per
// node. The per-class vote sums — and therefore the prediction — are
// identical to the previous per-tree Distribution walk: classifyMapped
// mirrors classify's float expressions exactly.
func (f *Forest) Predict(fv metrics.Vector) string {
	f.resolve()
	row := make([]float64, len(f.union))
	for i, feat := range f.union {
		if v, ok := fv[feat]; ok {
			row[i] = v
		} else {
			row[i] = ml.Missing
		}
	}
	votes := make([]float64, len(f.classes))
	var acc []float64
	for ti, tree := range f.trees {
		if cap(acc) < len(tree.classes) {
			acc = make([]float64, len(tree.classes))
		}
		acc = acc[:len(tree.classes)]
		for i := range acc {
			acc[i] = 0
		}
		tree.classifyMapped(tree.root, row, f.fmap[ti], 1, acc)
		var sum float64
		for _, v := range acc {
			sum += v
		}
		if sum <= 0 {
			continue // a no-mass tree casts no vote
		}
		for c, v := range acc {
			votes[f.cmap[ti][c]] += v / sum
		}
	}
	best, bi := -1.0, 0
	for i, v := range votes { // strict > : first class in order wins ties
		if v > best {
			best, bi = v, i
		}
	}
	return f.classes[bi]
}

// Size returns the total node count across the ensemble.
func (f *Forest) Size() int {
	n := 0
	for _, t := range f.trees {
		n += t.Size()
	}
	return n
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

package c45

import (
	"encoding/json"
	"math/rand"
	"sync"
	"testing"

	"vqprobe/internal/features"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/testbed"
)

var (
	ctlOnce sync.Once
	ctlTree *Tree
	ctlData *ml.Dataset
)

// controlledTree trains a tree on a controlled-testbed dataset through
// the paper's feature construction + selection, the exact pipeline the
// serving engine compiles. The fixture is shared across tests; treat
// both returns as read-only.
func controlledTree(t testing.TB) (*Tree, *ml.Dataset) {
	t.Helper()
	ctlOnce.Do(func() {
		sessions := testbed.GenerateControlled(testbed.GenConfig{Sessions: 150, Seed: 7})
		d := testbed.ToDataset(sessions, []string{"mobile", "router", "server"}, testbed.ExactLabel)
		reduced, _, _ := features.Select(d, 0.02)
		ctlTree, ctlData = Default().TrainTree(reduced), reduced
	})
	return ctlTree, ctlData
}

// degrade returns a copy of fv with a deterministic subset of features
// removed, to exercise the missing-value (fractional) traversal.
func degrade(fv metrics.Vector, rng *rand.Rand) metrics.Vector {
	out := metrics.Vector{}
	for _, k := range fv.Names() {
		if rng.Intn(2) == 0 {
			out[k] = fv[k]
		}
	}
	return out
}

func sameDist(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// TestCompiledBitIdentical checks the acceptance criterion: compiled
// predictions (and full distributions) match the pointer tree exactly,
// on complete vectors and on vectors with missing features.
func TestCompiledBitIdentical(t *testing.T) {
	tree, d := controlledTree(t)
	ct, err := Compile(tree)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(ct.Schema()), len(tree.Features()); got != want {
		t.Fatalf("schema size %d, want %d", got, want)
	}
	rng := rand.New(rand.NewSource(42))
	for i, in := range d.Instances {
		for _, fv := range []metrics.Vector{in.Features, degrade(in.Features, rng)} {
			if got, want := ct.Predict(fv), tree.Predict(fv); got != want {
				t.Fatalf("instance %d: compiled=%q tree=%q", i, got, want)
			}
			if !sameDist(ct.Distribution(fv), tree.Distribution(fv)) {
				t.Fatalf("instance %d: distributions diverge", i)
			}
		}
	}
}

// TestCompiledRoundTripJSON is the serialize.go round trip: JSON ->
// pointer tree -> compiled evaluator must still be bit-identical to the
// original tree.
func TestCompiledRoundTripJSON(t *testing.T) {
	tree, d := controlledTree(t)
	blob, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Tree
	if err := json.Unmarshal(blob, &loaded); err != nil {
		t.Fatal(err)
	}
	ct, err := Compile(&loaded)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i, in := range d.Instances {
		for _, fv := range []metrics.Vector{in.Features, degrade(in.Features, rng)} {
			if got, want := ct.Predict(fv), tree.Predict(fv); got != want {
				t.Fatalf("instance %d: round-tripped compiled=%q original=%q", i, got, want)
			}
		}
	}
}

// TestCompiledRowReuse checks the allocation-free serving entry points
// agree with the allocating ones.
func TestCompiledRowReuse(t *testing.T) {
	tree, d := controlledTree(t)
	ct, err := Compile(tree)
	if err != nil {
		t.Fatal(err)
	}
	row := ct.NewRow()
	acc := make([]float64, len(ct.Classes()))
	for i, in := range d.Instances {
		ct.FillRow(in.Features, row)
		if got, want := ct.PredictRowInto(row, acc), tree.Predict(in.Features); got != want {
			t.Fatalf("instance %d: reused-row predict %q, want %q", i, got, want)
		}
	}
}

func TestCompileForest(t *testing.T) {
	_, d := controlledTree(t)
	forest := NewForest(ForestConfig{Trees: 7, Seed: 3, Tree: Config{NoPrune: true}}).TrainForest(d)
	cf, err := CompileForest(forest)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i, in := range d.Instances {
		for _, fv := range []metrics.Vector{in.Features, degrade(in.Features, rng)} {
			if got, want := cf.Predict(fv), forest.Predict(fv); got != want {
				t.Fatalf("instance %d: compiled forest=%q forest=%q", i, got, want)
			}
		}
	}
}

func TestCompileWithSchemaMissingFeature(t *testing.T) {
	tree, _ := controlledTree(t)
	if _, err := CompileWithSchema(tree, []string{"not_a_real_feature"}); err == nil {
		t.Fatal("expected an error compiling against a schema missing the split features")
	}
}

func TestCompileUntrained(t *testing.T) {
	if _, err := Compile(&Tree{}); err == nil {
		t.Fatal("expected an error compiling an untrained tree")
	}
}

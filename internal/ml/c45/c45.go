// Package c45 implements the C4.5 decision-tree learner (Quinlan 1993),
// the algorithm behind Weka's J48 that the paper uses for root cause
// analysis. It supports continuous attributes with binary threshold
// splits chosen by gain ratio, missing values via fractional instances,
// and pessimistic error-based pruning with the standard confidence
// factor. Trees are inspectable (String, FeatureImportance,
// PerClassImportance), which is what makes the paper's Table 4 feature
// rankings possible.
package c45

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// Config tunes the learner. The zero value is usable; defaults match
// J48's (-C 0.25 -M 2).
type Config struct {
	// MinLeaf is the minimum instance weight per leaf. Zero selects 2.
	MinLeaf float64
	// Confidence is the pruning confidence factor. Zero selects 0.25.
	Confidence float64
	// NoPrune disables pessimistic pruning (J48 -U).
	NoPrune bool
	// MaxDepth caps tree depth; zero means unlimited.
	MaxDepth int
}

// Trainer builds C4.5 trees.
type Trainer struct {
	cfg Config
}

// New returns a trainer with the given config.
func New(cfg Config) *Trainer {
	if cfg.MinLeaf == 0 {
		cfg.MinLeaf = 2
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.25
	}
	return &Trainer{cfg: cfg}
}

// Default returns a trainer with J48's default parameters.
func Default() *Trainer { return New(Config{}) }

// Train implements ml.Trainer.
func (t *Trainer) Train(d *ml.Dataset) ml.Classifier { return t.TrainTree(d) }

// TrainTree builds and returns the concrete tree.
func (t *Trainer) TrainTree(d *ml.Dataset) *Tree {
	x, yStr := d.Matrix()
	classes := d.Classes()
	cidx := map[string]int{}
	for i, c := range classes {
		cidx[c] = i
	}
	y := make([]int, len(yStr))
	for i, s := range yStr {
		y[i] = cidx[s]
	}
	tr := &Tree{features: append([]string{}, d.Features()...), classes: classes}
	b := &builder{cfg: t.cfg, x: x, y: y, nClass: len(classes)}
	ents := make([]entry, len(x))
	for i := range x {
		ents[i] = entry{idx: i, w: 1}
	}
	tr.root = b.build(ents, 0)
	if !t.cfg.NoPrune {
		prune(tr.root, t.cfg.Confidence)
	}
	return tr
}

type entry struct {
	idx int
	w   float64
}

type builder struct {
	cfg    Config
	x      [][]float64
	y      []int
	nClass int
}

// node is one tree node. Leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      *node // value <= threshold
	right     *node // value > threshold
	leftFrac  float64

	class  int
	dist   []float64
	weight float64
	gain   float64
}

func (n *node) isLeaf() bool { return n.feature < 0 }

// Tree is a trained C4.5 model.
type Tree struct {
	features []string
	classes  []string
	root     *node
}

func (b *builder) dist(ents []entry) ([]float64, float64) {
	d := make([]float64, b.nClass)
	var total float64
	for _, e := range ents {
		d[b.y[e.idx]] += e.w
		total += e.w
	}
	return d, total
}

func entropy(dist []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range dist {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

func majority(dist []float64) int {
	best, bi := -1.0, 0
	for i, c := range dist {
		if c > best {
			best, bi = c, i
		}
	}
	return bi
}

type candidate struct {
	feature   int
	threshold float64
	gain      float64
	ratio     float64
}

func (b *builder) build(ents []entry, depth int) *node {
	dist, total := b.dist(ents)
	n := &node{feature: -1, class: majority(dist), dist: dist, weight: total}
	if total < 2*b.cfg.MinLeaf || entropy(dist, total) == 0 ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return n
	}

	cands := b.candidates(ents, dist, total)
	if len(cands) == 0 {
		return n
	}
	// C4.5 heuristic: among candidates with at least average gain, pick
	// the best gain ratio.
	var avg float64
	for _, c := range cands {
		avg += c.gain
	}
	avg /= float64(len(cands))
	best := candidate{ratio: -1}
	for _, c := range cands {
		if c.gain >= avg-1e-12 && c.ratio > best.ratio {
			best = c
		}
	}
	if best.ratio < 0 {
		return n
	}

	left, right, lw, rw := b.split(ents, best.feature, best.threshold)
	if lw < b.cfg.MinLeaf || rw < b.cfg.MinLeaf {
		return n
	}
	n.feature = best.feature
	n.threshold = best.threshold
	n.gain = best.gain
	n.leftFrac = lw / (lw + rw)
	n.left = b.build(left, depth+1)
	n.right = b.build(right, depth+1)
	return n
}

// candidates evaluates the best threshold per feature.
func (b *builder) candidates(ents []entry, dist []float64, total float64) []candidate {
	type vw struct {
		v float64
		y int
		w float64
	}
	var out []candidate
	baseH := entropy(dist, total)
	buf := make([]vw, 0, len(ents))

	for f := 0; f < len(b.x[0]); f++ {
		buf = buf[:0]
		var knownW, missW float64
		knownDist := make([]float64, b.nClass)
		for _, e := range ents {
			v := b.x[e.idx][f]
			if ml.IsMissing(v) {
				missW += e.w
				continue
			}
			buf = append(buf, vw{v: v, y: b.y[e.idx], w: e.w})
			knownW += e.w
			knownDist[b.y[e.idx]] += e.w
		}
		if knownW < 2*b.cfg.MinLeaf || len(buf) < 2 {
			continue
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i].v < buf[j].v })
		if buf[0].v == buf[len(buf)-1].v {
			continue
		}
		knownH := entropy(knownDist, knownW)
		knownFrac := knownW / total

		leftDist := make([]float64, b.nClass)
		var leftW float64
		bestGain, bestThr, splits := -1.0, 0.0, 0
		for i := 0; i < len(buf)-1; i++ {
			leftDist[buf[i].y] += buf[i].w
			leftW += buf[i].w
			if buf[i].v == buf[i+1].v {
				continue
			}
			splits++
			if leftW < b.cfg.MinLeaf || knownW-leftW < b.cfg.MinLeaf {
				continue
			}
			rightW := knownW - leftW
			rH := 0.0
			// right dist = knownDist - leftDist
			var h float64
			for c := 0; c < b.nClass; c++ {
				l := leftDist[c]
				r := knownDist[c] - l
				if l > 0 {
					h -= l * math.Log2(l/leftW)
				}
				if r > 0 {
					rH -= r * math.Log2(r/rightW)
				}
			}
			condH := (h + rH) / knownW
			g := knownH - condH
			if g > bestGain {
				bestGain = g
				bestThr = (buf[i].v + buf[i+1].v) / 2
			}
		}
		if bestGain <= 0 || splits == 0 {
			continue
		}
		// C4.5 release 8 MDL correction for continuous splits.
		gain := knownFrac * (bestGain - math.Log2(float64(splits))/knownW)
		if gain <= 1e-9 {
			continue
		}
		_ = baseH
		// Split info over left/right/missing shares of the node.
		lw, rw := 0.0, 0.0
		for _, e := range buf {
			if e.v <= bestThr {
				lw += e.w
			} else {
				rw += e.w
			}
		}
		si := splitInfo([]float64{lw, rw, missW}, total)
		if si <= 1e-9 {
			continue
		}
		out = append(out, candidate{feature: f, threshold: bestThr, gain: gain, ratio: gain / si})
	}
	return out
}

func splitInfo(parts []float64, total float64) float64 {
	h := 0.0
	for _, p := range parts {
		if p > 0 {
			f := p / total
			h -= f * math.Log2(f)
		}
	}
	return h
}

// split partitions entries; instances with a missing split value go to
// both sides with fractional weight (C4.5's fractional instances).
func (b *builder) split(ents []entry, f int, thr float64) (left, right []entry, lw, rw float64) {
	var missing []entry
	for _, e := range ents {
		v := b.x[e.idx][f]
		switch {
		case ml.IsMissing(v):
			missing = append(missing, e)
		case v <= thr:
			left = append(left, e)
			lw += e.w
		default:
			right = append(right, e)
			rw += e.w
		}
	}
	if lw+rw > 0 {
		lf := lw / (lw + rw)
		for _, e := range missing {
			if wl := e.w * lf; wl > 1e-6 {
				left = append(left, entry{idx: e.idx, w: wl})
				lw += wl
			}
			if wr := e.w * (1 - lf); wr > 1e-6 {
				right = append(right, entry{idx: e.idx, w: wr})
				rw += wr
			}
		}
	}
	return left, right, lw, rw
}

// ---- prediction ----

// Predict implements ml.Classifier.
func (t *Tree) Predict(fv metrics.Vector) string {
	dist := make([]float64, len(t.classes))
	t.classify(t.root, fv, 1, dist)
	return t.classes[majority(dist)]
}

// Distribution returns the class probability estimate for a vector.
func (t *Tree) Distribution(fv metrics.Vector) map[string]float64 {
	dist := make([]float64, len(t.classes))
	t.classify(t.root, fv, 1, dist)
	var sum float64
	for _, v := range dist {
		sum += v
	}
	out := map[string]float64{}
	for i, c := range t.classes {
		if sum > 0 {
			out[c] = dist[i] / sum
		}
	}
	return out
}

func (t *Tree) classify(n *node, fv metrics.Vector, w float64, acc []float64) {
	if n.isLeaf() {
		total := 0.0
		for _, d := range n.dist {
			total += d
		}
		if total <= 0 {
			acc[n.class] += w
			return
		}
		for c, d := range n.dist {
			acc[c] += w * d / total
		}
		return
	}
	v, ok := fv[t.features[n.feature]]
	if !ok || ml.IsMissing(v) {
		// Missing at prediction time: follow both branches weighted by
		// the training split proportions.
		t.classify(n.left, fv, w*n.leftFrac, acc)
		t.classify(n.right, fv, w*(1-n.leftFrac), acc)
		return
	}
	if v <= n.threshold {
		t.classify(n.left, fv, w, acc)
	} else {
		t.classify(n.right, fv, w, acc)
	}
}

// ---- pruning ----

// zScore for CF=0.25 and friends: inverse standard normal of (1-cf).
func zScore(cf float64) float64 {
	// Rational approximation (Abramowitz & Stegun 26.2.23); fine for
	// the cf range pruning uses.
	p := cf
	if p <= 0 {
		p = 1e-9
	}
	if p >= 1 {
		p = 1 - 1e-9
	}
	t := math.Sqrt(-2 * math.Log(p))
	return t - (2.30753+0.27061*t)/(1+0.99229*t+0.04481*t*t)
}

// addErrs is C4.5's pessimistic error add-on: the extra errors implied
// by the upper confidence bound of the observed error rate.
func addErrs(n, e, cf float64) float64 {
	if n <= 0 {
		return 0
	}
	if e < 1e-9 {
		return n * (1 - math.Pow(cf, 1/n))
	}
	if e+0.5 >= n {
		return math.Max(n-e, 0)
	}
	z := zScore(cf)
	f := (e + 0.5) / n
	est := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return est*n - e
}

func nodeErrors(n *node) float64 {
	total, best := 0.0, 0.0
	for _, d := range n.dist {
		total += d
		if d > best {
			best = d
		}
	}
	return total - best
}

// prune applies bottom-up pessimistic pruning and returns the subtree's
// estimated error.
func prune(n *node, cf float64) float64 {
	asLeaf := nodeErrors(n) + addErrs(n.weight, nodeErrors(n), cf)
	if n.isLeaf() {
		return asLeaf
	}
	sub := prune(n.left, cf) + prune(n.right, cf)
	if asLeaf <= sub+0.1 {
		n.feature = -1
		n.left, n.right = nil, nil
		return asLeaf
	}
	return sub
}

// ---- introspection ----

// Features returns the feature schema the tree was trained against, in
// canonical (sorted) order; do not mutate.
func (t *Tree) Features() []string { return t.features }

// Classes returns the class labels in index order; do not mutate.
func (t *Tree) Classes() []string { return t.classes }

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return count(t.root) }

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return countLeaves(t.root) }

func count(n *node) int {
	if n == nil {
		return 0
	}
	return 1 + count(n.left) + count(n.right)
}

func countLeaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

// FeatureScore pairs a feature with an importance weight.
type FeatureScore struct {
	Feature string
	Score   float64
}

// FeatureImportance ranks features by total weighted information gain
// at their split nodes.
func (t *Tree) FeatureImportance() []FeatureScore {
	acc := map[int]float64{}
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.isLeaf() {
			return
		}
		acc[n.feature] += n.weight * n.gain
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return t.rank(acc)
}

// PerClassImportance ranks, for each class, the features appearing on
// root-to-leaf paths of leaves predicting that class, weighted by leaf
// coverage — the basis of the paper's Table 4.
func (t *Tree) PerClassImportance() map[string][]FeatureScore {
	per := make(map[string]map[int]float64)
	var walk func(n *node, path []int)
	walk = func(n *node, path []int) {
		if n == nil {
			return
		}
		if n.isLeaf() {
			cls := t.classes[n.class]
			m := per[cls]
			if m == nil {
				m = map[int]float64{}
				per[cls] = m
			}
			seen := map[int]bool{}
			for _, f := range path {
				if !seen[f] {
					m[f] += n.weight
					seen[f] = true
				}
			}
			return
		}
		walk(n.left, append(path, n.feature))
		walk(n.right, append(path, n.feature))
	}
	walk(t.root, nil)
	out := map[string][]FeatureScore{}
	for cls, m := range per {
		out[cls] = t.rank(m)
	}
	return out
}

func (t *Tree) rank(acc map[int]float64) []FeatureScore {
	out := make([]FeatureScore, 0, len(acc))
	for f, s := range acc {
		out = append(out, FeatureScore{Feature: t.features[f], Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Feature < out[j].Feature
	})
	return out
}

// String renders the tree in J48's indented text form.
func (t *Tree) String() string {
	var b strings.Builder
	t.render(&b, t.root, 0)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, n *node, depth int) {
	ind := strings.Repeat("|   ", depth)
	if n.isLeaf() {
		fmt.Fprintf(b, "%s=> %s (%.1f/%.1f)\n", ind, t.classes[n.class], n.weight, nodeErrors(n))
		return
	}
	fmt.Fprintf(b, "%s%s <= %.4g\n", ind, t.features[n.feature], n.threshold)
	t.render(b, n.left, depth+1)
	fmt.Fprintf(b, "%s%s > %.4g\n", ind, t.features[n.feature], n.threshold)
	t.render(b, n.right, depth+1)
}

// Package c45 implements the C4.5 decision-tree learner (Quinlan 1993),
// the algorithm behind Weka's J48 that the paper uses for root cause
// analysis. It supports continuous attributes with binary threshold
// splits chosen by gain ratio, missing values via fractional instances,
// and pessimistic error-based pruning with the standard confidence
// factor. Trees are inspectable (String, FeatureImportance,
// PerClassImportance), which is what makes the paper's Table 4 feature
// rankings possible.
package c45

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/parallel"
)

// Config tunes the learner. The zero value is usable; defaults match
// J48's (-C 0.25 -M 2).
type Config struct {
	// MinLeaf is the minimum instance weight per leaf. Zero selects 2.
	MinLeaf float64
	// Confidence is the pruning confidence factor. Zero selects 0.25.
	Confidence float64
	// NoPrune disables pessimistic pruning (J48 -U).
	NoPrune bool
	// MaxDepth caps tree depth; zero means unlimited.
	MaxDepth int
	// Workers bounds the goroutines used for split search across
	// attributes within a node. Zero selects GOMAXPROCS; 1 forces a
	// fully serial build. Every worker count produces byte-identical
	// trees: per-attribute scans write to disjoint candidate slots and
	// the winning split is selected serially in attribute order
	// (gain, then attribute index, then threshold).
	Workers int
}

// Trainer builds C4.5 trees.
type Trainer struct {
	cfg Config
}

// New returns a trainer with the given config.
func New(cfg Config) *Trainer {
	if cfg.MinLeaf == 0 {
		cfg.MinLeaf = 2
	}
	if cfg.Confidence == 0 {
		cfg.Confidence = 0.25
	}
	return &Trainer{cfg: cfg}
}

// Default returns a trainer with J48's default parameters.
func Default() *Trainer { return New(Config{}) }

// Train implements ml.Trainer.
func (t *Trainer) Train(d *ml.Dataset) ml.Classifier { return t.TrainTree(d) }

// TrainTree builds and returns the concrete tree.
//
// The builder uses a presorted column-index design (CART/XGBoost
// style): each attribute's value order is sorted exactly once per call,
// and stable index partitions are threaded down the tree, so per-node
// split search is a linear scan instead of an O(n log n) sort per
// attribute per node. Scratch memory (index partitions, entry lists,
// class-distribution buffers) lives in reusable stack-discipline arenas
// instead of being allocated per node.
func (t *Trainer) TrainTree(d *ml.Dataset) *Tree {
	classes := d.Classes()
	feats := d.Features()
	nInst, nF := d.Len(), len(feats)
	tr := &Tree{features: append([]string{}, feats...), classes: classes}
	cidx := make(map[string]int, len(classes))
	for i, c := range classes {
		cidx[c] = i
	}

	// Column-major value matrix: vals[f*nInst+i] is instance i's value
	// for feature f, NaN when absent. Filling by iterating each
	// instance's map once avoids the per-(instance,feature) lookups of
	// Dataset.Matrix.
	y := make([]int, nInst)
	vals := make([]float64, nF*nInst)
	for i := range vals {
		vals[i] = ml.Missing
	}
	for i := range d.Instances {
		in := &d.Instances[i]
		y[i] = cidx[in.Class]
		for name, v := range in.Features {
			if f := d.FeatureIndex(name); f >= 0 {
				vals[f*nInst+i] = v
			}
		}
	}

	b := &builder{
		cfg: t.cfg, y: y, nClass: len(classes),
		nF: nF, nInst: nInst, vals: vals,
		weight:  make([]float64, nInst),
		side:    make([]uint8, nInst),
		cands:   make([]candidate, nF),
		workers: parallel.Workers(t.cfg.Workers, nF),
	}
	b.entArena.blockLen = max(512, 2*nInst)
	b.idxArena.blockLen = max(1024, nF*nInst)
	b.listArena.blockLen = max(64, 8*nF)
	b.scratch = make([]splitScratch, b.workers)
	for w := range b.scratch {
		b.scratch[w] = splitScratch{
			knownDist: make([]float64, b.nClass),
			leftDist:  make([]float64, b.nClass),
		}
	}

	// Presort: one (value, index) order per attribute, missing values
	// excluded. Index partitions threaded down the tree stay stable, so
	// this order is established exactly once.
	rootSorted := make([][]int32, nF)
	parallel.For(nF, b.workers, func(f int) {
		col := vals[f*nInst : (f+1)*nInst]
		ids := make([]int32, 0, nInst)
		for i, v := range col {
			if !ml.IsMissing(v) {
				ids = append(ids, int32(i))
			}
		}
		sort.Slice(ids, func(a, c int) bool {
			va, vc := col[ids[a]], col[ids[c]]
			if va != vc {
				return va < vc
			}
			return ids[a] < ids[c]
		})
		rootSorted[f] = ids
	})

	ents := make([]entry, nInst)
	for i := range ents {
		ents[i] = entry{idx: i, w: 1}
	}
	tr.root = b.build(ents, rootSorted, 0)
	if !t.cfg.NoPrune {
		prune(tr.root, t.cfg.Confidence)
	}
	return tr
}

type entry struct {
	idx int
	w   float64
}

// arena is a stack-discipline bump allocator: build marks it before
// allocating a node's child partitions and releases back to the mark
// once the subtree is complete, so one tree's worth of scratch is
// reused across every node instead of allocated per node. blockLen is
// sized by the builder to roughly one tree level's worth of demand, so
// small trees don't pay for huge blocks.
type arena[T any] struct {
	blockLen int
	blocks   [][]T
	bi, off  int
}

type arenaMark struct{ bi, off int }

func (a *arena[T]) mark() arenaMark { return arenaMark{a.bi, a.off} }

func (a *arena[T]) release(m arenaMark) { a.bi, a.off = m.bi, m.off }

func (a *arena[T]) alloc(n int) []T {
	for a.bi < len(a.blocks) {
		if blk := a.blocks[a.bi]; a.off+n <= len(blk) {
			s := blk[a.off : a.off+n : a.off+n]
			a.off += n
			return s
		}
		a.bi++
		a.off = 0
	}
	size := a.blockLen
	if n > size {
		size = n
	}
	a.blocks = append(a.blocks, make([]T, size))
	a.bi = len(a.blocks) - 1
	a.off = n
	return a.blocks[a.bi][0:n:n]
}

// splitScratch is one worker's reusable class-distribution buffers for
// candidate split search.
type splitScratch struct {
	knownDist []float64
	leftDist  []float64
}

// side bit flags for partitioning the presorted index lists.
const (
	sideLeft  = 1
	sideRight = 2
)

// parallelSplitWork is the minimum node work (entries x attributes)
// before split search fans out to the worker pool; smaller nodes scan
// serially to avoid goroutine overhead. The threshold only affects
// scheduling, never results.
const parallelSplitWork = 8192

type builder struct {
	cfg    Config
	y      []int
	nClass int
	nF     int
	nInst  int
	// vals is the column-major value matrix (see TrainTree).
	vals []float64
	// weight holds, for every instance in the node currently being
	// processed, its (possibly fractional) weight at that node; entries
	// are overwritten on node entry, so the array is valid only for the
	// instances of the current node.
	weight []float64
	// side records, during a split, which child(ren) an instance goes
	// to; read only for the node's own instances.
	side    []uint8
	miss    []entry
	cands   []candidate
	scratch []splitScratch
	workers int

	entArena  arena[entry]
	idxArena  arena[int32]
	listArena arena[[]int32]
}

// node is one tree node. Leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      *node // value <= threshold
	right     *node // value > threshold
	leftFrac  float64

	class  int
	dist   []float64
	weight float64
	gain   float64
}

func (n *node) isLeaf() bool { return n.feature < 0 }

// Tree is a trained C4.5 model.
type Tree struct {
	features []string
	classes  []string
	root     *node
}

func (b *builder) dist(ents []entry) ([]float64, float64) {
	d := make([]float64, b.nClass)
	var total float64
	for _, e := range ents {
		d[b.y[e.idx]] += e.w
		total += e.w
	}
	return d, total
}

func entropy(dist []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range dist {
		if c > 0 {
			p := c / total
			h -= p * math.Log2(p)
		}
	}
	return h
}

func majority(dist []float64) int {
	best, bi := -1.0, 0
	for i, c := range dist {
		if c > best {
			best, bi = c, i
		}
	}
	return bi
}

type candidate struct {
	feature   int
	threshold float64
	gain      float64
	ratio     float64
}

// build grows the subtree for ents. sorted holds, per attribute, the
// node's instances with known values in presorted (value, index) order;
// children receive stable partitions of these lists, so the order
// established once in TrainTree is never re-sorted.
func (b *builder) build(ents []entry, sorted [][]int32, depth int) *node {
	for _, e := range ents {
		b.weight[e.idx] = e.w
	}
	dist, total := b.dist(ents)
	n := &node{feature: -1, class: majority(dist), dist: dist, weight: total}
	if total < 2*b.cfg.MinLeaf || entropy(dist, total) == 0 ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return n
	}

	best := b.bestCandidate(ents, sorted, total)
	if best.feature < 0 {
		return n
	}

	entMark := b.entArena.mark()
	idxMark := b.idxArena.mark()
	listMark := b.listArena.mark()
	left, right, lw, rw := b.split(ents, best.feature, best.threshold)
	if lw < b.cfg.MinLeaf || rw < b.cfg.MinLeaf {
		b.entArena.release(entMark)
		return n
	}
	leftSorted, rightSorted := b.partitionSorted(sorted)
	n.feature = best.feature
	n.threshold = best.threshold
	n.gain = best.gain
	n.leftFrac = lw / (lw + rw)
	n.left = b.build(left, leftSorted, depth+1)
	n.right = b.build(right, rightSorted, depth+1)
	b.entArena.release(entMark)
	b.idxArena.release(idxMark)
	b.listArena.release(listMark)
	return n
}

// bestCandidate evaluates the best threshold per attribute (in parallel
// for large nodes) and applies the C4.5 selection heuristic: among
// candidates with at least average gain, pick the best gain ratio. Ties
// break to the lowest attribute index, then the lowest threshold —
// fixed ordering that keeps the choice identical for any worker count.
func (b *builder) bestCandidate(ents []entry, sorted [][]int32, total float64) candidate {
	workers := b.workers
	if len(ents)*b.nF < parallelSplitWork {
		workers = 1
	}
	cands := b.cands
	parallel.ForWorker(b.nF, workers, func(w, f int) {
		cands[f] = b.scanAttribute(f, sorted[f], total, &b.scratch[w])
	})

	var avg float64
	valid := 0
	for f := range cands {
		if cands[f].feature >= 0 {
			avg += cands[f].gain
			valid++
		}
	}
	none := candidate{feature: -1, ratio: -1}
	if valid == 0 {
		return none
	}
	avg /= float64(valid)
	best := none
	for f := range cands {
		if c := cands[f]; c.feature >= 0 && c.gain >= avg-1e-12 && c.ratio > best.ratio {
			best = c
		}
	}
	return best
}

// scanAttribute finds the best threshold for one attribute with two
// linear passes over the node's presorted index list: one accumulating
// the known-value class distribution, one sweeping split points.
func (b *builder) scanAttribute(f int, known []int32, total float64, sc *splitScratch) candidate {
	none := candidate{feature: -1}
	if len(known) < 2 {
		return none
	}
	col := b.vals[f*b.nInst : (f+1)*b.nInst]
	if col[known[0]] == col[known[len(known)-1]] {
		return none
	}
	knownDist := sc.knownDist
	for c := range knownDist {
		knownDist[c] = 0
	}
	var knownW float64
	for _, id := range known {
		w := b.weight[id]
		knownDist[b.y[id]] += w
		knownW += w
	}
	if knownW < 2*b.cfg.MinLeaf {
		return none
	}
	knownH := entropy(knownDist, knownW)
	knownFrac := knownW / total
	missW := total - knownW

	// Threshold sweep with incremental entropy: maintain
	// fLeft = sum_c l_c*log2(l_c) and fRight = sum_c r_c*log2(r_c), so
	// moving one instance across the boundary costs O(1) log calls and
	// the split entropy at a boundary is
	//   h + rH = xlogx(leftW) - fLeft + xlogx(rightW) - fRight
	// instead of an O(nClass) recompute per candidate threshold.
	leftDist := sc.leftDist
	for c := range leftDist {
		leftDist[c] = 0
	}
	var leftW, fLeft, fRight float64
	for c := 0; c < b.nClass; c++ {
		fRight += xlogx(knownDist[c])
	}
	bestGain, bestThr, splits := -1.0, 0.0, 0
	for i := 0; i < len(known)-1; i++ {
		id := known[i]
		w := b.weight[id]
		c := b.y[id]
		l := leftDist[c]
		r := knownDist[c] - l
		fLeft += xlogx(l+w) - xlogx(l)
		fRight += xlogx(r-w) - xlogx(r)
		leftDist[c] = l + w
		leftW += w
		v := col[id]
		vNext := col[known[i+1]]
		if v == vNext {
			continue
		}
		splits++
		if leftW < b.cfg.MinLeaf || knownW-leftW < b.cfg.MinLeaf {
			continue
		}
		rightW := knownW - leftW
		condH := (xlogx(leftW) - fLeft + xlogx(rightW) - fRight) / knownW
		if g := knownH - condH; g > bestGain {
			bestGain = g
			bestThr = (v + vNext) / 2
		}
	}
	if bestGain <= 0 || splits == 0 {
		return none
	}
	// C4.5 release 8 MDL correction for continuous splits.
	gain := knownFrac * (bestGain - math.Log2(float64(splits))/knownW)
	if gain <= 1e-9 {
		return none
	}
	// Split info over left/right/missing shares of the node.
	var lw, rw float64
	for _, id := range known {
		if col[id] <= bestThr {
			lw += b.weight[id]
		} else {
			rw += b.weight[id]
		}
	}
	si := splitInfo(lw, rw, missW, total)
	if si <= 1e-9 {
		return none
	}
	return candidate{feature: f, threshold: bestThr, gain: gain, ratio: gain / si}
}

// xlogx returns v*log2(v), continuously extended to 0 at v <= 0.
func xlogx(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return v * math.Log2(v)
}

func splitInfo(lw, rw, missW, total float64) float64 {
	h := 0.0
	for _, p := range [3]float64{lw, rw, missW} {
		if p > 0 {
			f := p / total
			h -= f * math.Log2(f)
		}
	}
	return h
}

// split partitions entries; instances with a missing split value go to
// both sides with fractional weight (C4.5's fractional instances). It
// also records each instance's destination in b.side for
// partitionSorted. Child entry lists come from the entry arena.
func (b *builder) split(ents []entry, f int, thr float64) (left, right []entry, lw, rw float64) {
	col := b.vals[f*b.nInst : (f+1)*b.nInst]
	var nL, nR, nM int
	for _, e := range ents {
		v := col[e.idx]
		switch {
		case ml.IsMissing(v):
			nM++
		case v <= thr:
			nL++
		default:
			nR++
		}
	}
	left = b.entArena.alloc(nL + nM)[:0]
	right = b.entArena.alloc(nR + nM)[:0]
	b.miss = b.miss[:0]
	for _, e := range ents {
		v := col[e.idx]
		switch {
		case ml.IsMissing(v):
			b.miss = append(b.miss, e)
		case v <= thr:
			left = append(left, e)
			lw += e.w
			b.side[e.idx] = sideLeft
		default:
			right = append(right, e)
			rw += e.w
			b.side[e.idx] = sideRight
		}
	}
	if lw+rw > 0 {
		lf := lw / (lw + rw)
		for _, e := range b.miss {
			var s uint8
			if wl := e.w * lf; wl > 1e-6 {
				left = append(left, entry{idx: e.idx, w: wl})
				lw += wl
				s |= sideLeft
			}
			if wr := e.w * (1 - lf); wr > 1e-6 {
				right = append(right, entry{idx: e.idx, w: wr})
				rw += wr
				s |= sideRight
			}
			b.side[e.idx] = s
		}
	} else {
		for _, e := range b.miss {
			b.side[e.idx] = 0
		}
	}
	return left, right, lw, rw
}

// partitionSorted stably partitions every attribute's presorted index
// list into the two children using the side flags set by split, keeping
// each child's lists in (value, index) order without re-sorting.
// Instances missing the split value appear in both children.
func (b *builder) partitionSorted(sorted [][]int32) (ls, rs [][]int32) {
	ls = b.listArena.alloc(b.nF)
	rs = b.listArena.alloc(b.nF)
	for f, src := range sorted {
		var nL, nR int
		for _, id := range src {
			s := b.side[id]
			nL += int(s & 1)
			nR += int(s >> 1)
		}
		l := b.idxArena.alloc(nL)
		r := b.idxArena.alloc(nR)
		li, ri := 0, 0
		for _, id := range src {
			s := b.side[id]
			if s&sideLeft != 0 {
				l[li] = id
				li++
			}
			if s&sideRight != 0 {
				r[ri] = id
				ri++
			}
		}
		ls[f], rs[f] = l, r
	}
	return ls, rs
}

// ---- prediction ----

// Predict implements ml.Classifier.
func (t *Tree) Predict(fv metrics.Vector) string {
	dist := make([]float64, len(t.classes))
	t.classify(t.root, fv, 1, dist)
	return t.classes[majority(dist)]
}

// Distribution returns the class probability estimate for a vector.
func (t *Tree) Distribution(fv metrics.Vector) map[string]float64 {
	dist := make([]float64, len(t.classes))
	t.classify(t.root, fv, 1, dist)
	var sum float64
	for _, v := range dist {
		sum += v
	}
	out := map[string]float64{}
	for i, c := range t.classes {
		if sum > 0 {
			out[c] = dist[i] / sum
		}
	}
	return out
}

func (t *Tree) classify(n *node, fv metrics.Vector, w float64, acc []float64) {
	if n.isLeaf() {
		total := 0.0
		for _, d := range n.dist {
			total += d
		}
		if total <= 0 {
			acc[n.class] += w
			return
		}
		for c, d := range n.dist {
			acc[c] += w * d / total
		}
		return
	}
	v, ok := fv[t.features[n.feature]]
	if !ok || ml.IsMissing(v) {
		// Missing at prediction time: follow both branches weighted by
		// the training split proportions.
		t.classify(n.left, fv, w*n.leftFrac, acc)
		t.classify(n.right, fv, w*(1-n.leftFrac), acc)
		return
	}
	if v <= n.threshold {
		t.classify(n.left, fv, w, acc)
	} else {
		t.classify(n.right, fv, w, acc)
	}
}

// classifyMapped is classify over a pre-resolved row: fmap translates
// the tree-local feature index of each split into the caller's row
// index, and a missing feature is a NaN cell rather than an absent map
// key. Visit order and weight arithmetic mirror classify expression for
// expression, so the accumulated distribution is bit-identical to a
// classify call with an equivalent vector. Forest.Predict uses it to
// resolve the input vector once for the whole ensemble.
func (t *Tree) classifyMapped(n *node, row []float64, fmap []int32, w float64, acc []float64) {
	if n.isLeaf() {
		total := 0.0
		for _, d := range n.dist {
			total += d
		}
		if total <= 0 {
			acc[n.class] += w
			return
		}
		for c, d := range n.dist {
			acc[c] += w * d / total
		}
		return
	}
	v := row[fmap[n.feature]]
	if ml.IsMissing(v) {
		t.classifyMapped(n.left, row, fmap, w*n.leftFrac, acc)
		t.classifyMapped(n.right, row, fmap, w*(1-n.leftFrac), acc)
		return
	}
	if v <= n.threshold {
		t.classifyMapped(n.left, row, fmap, w, acc)
	} else {
		t.classifyMapped(n.right, row, fmap, w, acc)
	}
}

// ---- pruning ----

// zScore for CF=0.25 and friends: inverse standard normal of (1-cf).
func zScore(cf float64) float64 {
	// Rational approximation (Abramowitz & Stegun 26.2.23); fine for
	// the cf range pruning uses.
	p := cf
	if p <= 0 {
		p = 1e-9
	}
	if p >= 1 {
		p = 1 - 1e-9
	}
	t := math.Sqrt(-2 * math.Log(p))
	return t - (2.30753+0.27061*t)/(1+0.99229*t+0.04481*t*t)
}

// addErrs is C4.5's pessimistic error add-on: the extra errors implied
// by the upper confidence bound of the observed error rate.
func addErrs(n, e, cf float64) float64 {
	if n <= 0 {
		return 0
	}
	if e < 1e-9 {
		return n * (1 - math.Pow(cf, 1/n))
	}
	if e+0.5 >= n {
		return math.Max(n-e, 0)
	}
	z := zScore(cf)
	f := (e + 0.5) / n
	est := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return est*n - e
}

func nodeErrors(n *node) float64 {
	total, best := 0.0, 0.0
	for _, d := range n.dist {
		total += d
		if d > best {
			best = d
		}
	}
	return total - best
}

// prune applies bottom-up pessimistic pruning and returns the subtree's
// estimated error.
func prune(n *node, cf float64) float64 {
	asLeaf := nodeErrors(n) + addErrs(n.weight, nodeErrors(n), cf)
	if n.isLeaf() {
		return asLeaf
	}
	sub := prune(n.left, cf) + prune(n.right, cf)
	if asLeaf <= sub+0.1 {
		n.feature = -1
		n.left, n.right = nil, nil
		return asLeaf
	}
	return sub
}

// ---- introspection ----

// Features returns the feature schema the tree was trained against, in
// canonical (sorted) order; do not mutate.
func (t *Tree) Features() []string { return t.features }

// Classes returns the class labels in index order; do not mutate.
func (t *Tree) Classes() []string { return t.classes }

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return count(t.root) }

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return countLeaves(t.root) }

func count(n *node) int {
	if n == nil {
		return 0
	}
	return 1 + count(n.left) + count(n.right)
}

func countLeaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

// FeatureScore pairs a feature with an importance weight.
type FeatureScore struct {
	Feature string
	Score   float64
}

// FeatureImportance ranks features by total weighted information gain
// at their split nodes.
func (t *Tree) FeatureImportance() []FeatureScore {
	acc := map[int]float64{}
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.isLeaf() {
			return
		}
		acc[n.feature] += n.weight * n.gain
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return t.rank(acc)
}

// PerClassImportance ranks, for each class, the features appearing on
// root-to-leaf paths of leaves predicting that class, weighted by leaf
// coverage — the basis of the paper's Table 4.
func (t *Tree) PerClassImportance() map[string][]FeatureScore {
	per := make(map[string]map[int]float64)
	var walk func(n *node, path []int)
	walk = func(n *node, path []int) {
		if n == nil {
			return
		}
		if n.isLeaf() {
			cls := t.classes[n.class]
			m := per[cls]
			if m == nil {
				m = map[int]float64{}
				per[cls] = m
			}
			seen := map[int]bool{}
			for _, f := range path {
				if !seen[f] {
					m[f] += n.weight
					seen[f] = true
				}
			}
			return
		}
		walk(n.left, append(path, n.feature))
		walk(n.right, append(path, n.feature))
	}
	walk(t.root, nil)
	out := map[string][]FeatureScore{}
	for cls, m := range per {
		out[cls] = t.rank(m)
	}
	return out
}

func (t *Tree) rank(acc map[int]float64) []FeatureScore {
	out := make([]FeatureScore, 0, len(acc))
	for f, s := range acc {
		out = append(out, FeatureScore{Feature: t.features[f], Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Feature < out[j].Feature
	})
	return out
}

// String renders the tree in J48's indented text form.
func (t *Tree) String() string {
	var b strings.Builder
	t.render(&b, t.root, 0)
	return b.String()
}

func (t *Tree) render(b *strings.Builder, n *node, depth int) {
	ind := strings.Repeat("|   ", depth)
	if n.isLeaf() {
		fmt.Fprintf(b, "%s=> %s (%.1f/%.1f)\n", ind, t.classes[n.class], n.weight, nodeErrors(n))
		return
	}
	fmt.Fprintf(b, "%s%s <= %.4g\n", ind, t.features[n.feature], n.threshold)
	t.render(b, n.left, depth+1)
	fmt.Fprintf(b, "%s%s > %.4g\n", ind, t.features[n.feature], n.threshold)
	t.render(b, n.right, depth+1)
}

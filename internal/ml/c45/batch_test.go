package c45

import (
	"math"
	"math/rand"
	"testing"

	"vqprobe/internal/ml"
)

// fillMatrix appends every dataset instance to a fresh matrix sized for
// roughly half the rows, so the append path exercises grow().
func fillMatrix(bp BatchPredictor, d *ml.Dataset) *Matrix {
	m := bp.NewMatrix(len(d.Instances)/2 + 1)
	for i := range d.Instances {
		m.AppendVector(d.Instances[i].Features)
	}
	return m
}

// TestPredictBatchBitIdentical pins the tentpole guarantee: the batch
// frontier sweep accumulates every row's class distribution in exactly
// the scalar DFS order, so the per-row accumulators — not just the
// argmax — are bit-identical to classifyRow's.
func TestPredictBatchBitIdentical(t *testing.T) {
	for _, miss := range []float64{0, 0.25} {
		d := synthDataset(500, 8, 42, miss)
		tr := New(Config{}).TrainTree(d)
		ct, err := Compile(tr)
		if err != nil {
			t.Fatal(err)
		}
		m := fillMatrix(ct, d)

		var s BatchScratch
		ct.predictBatchAcc(m, &s)

		nc := len(ct.Classes())
		row := ct.NewRow()
		acc := make([]float64, nc)
		for r := 0; r < m.Rows(); r++ {
			m.Row(r, row)
			for i := range acc {
				acc[i] = 0
			}
			ct.classifyRow(row, acc)
			for c := 0; c < nc; c++ {
				got, want := s.acc[r*nc+c], acc[c]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("miss=%v row %d class %d: batch acc %x, scalar %x", miss, r, c, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}

		preds := ct.PredictBatch(m, nil)
		for r := 0; r < m.Rows(); r++ {
			m.Row(r, row)
			if want := ct.PredictRow(row); preds[r] != want {
				t.Fatalf("miss=%v row %d: batch %q, scalar %q", miss, r, preds[r], want)
			}
		}
	}
}

// TestForestPredictBatchMatchesScalar checks ensemble batch prediction
// against both the compiled scalar path and the pointer-tree
// Forest.Predict, for every fan-out setting.
func TestForestPredictBatchMatchesScalar(t *testing.T) {
	d := synthDataset(400, 6, 7, 0.2)
	f := NewForest(ForestConfig{Trees: 9, Seed: 3, Tree: Config{NoPrune: true}}).TrainForest(d)
	cf, err := CompileForest(f)
	if err != nil {
		t.Fatal(err)
	}
	m := fillMatrix(cf, d)

	row := make([]float64, len(cf.Schema()))
	for _, workers := range []int{0, 1, 2, 16, -1} {
		s := BatchScratch{Workers: workers}
		idx := make([]int32, m.Rows())
		cf.PredictBatchIdx(m, &s, idx)
		for r := 0; r < m.Rows(); r++ {
			m.Row(r, row)
			want := cf.PredictRow(row)
			if got := cf.Classes()[idx[r]]; got != want {
				t.Fatalf("workers=%d row %d: batch %q, scalar %q", workers, r, got, want)
			}
			if fw := f.Predict(d.Instances[r].Features); fw != want {
				t.Fatalf("row %d: compiled %q, Forest.Predict %q", r, want, fw)
			}
		}
	}
}

// TestPredictBatchScratchReuse runs batches of shrinking and growing
// sizes through one scratch + one matrix, verifying reuse never leaks
// state between calls.
func TestPredictBatchScratchReuse(t *testing.T) {
	d := synthDataset(300, 5, 11, 0.1)
	tr := New(Config{}).TrainTree(d)
	ct, err := Compile(tr)
	if err != nil {
		t.Fatal(err)
	}
	var s BatchScratch
	m := ct.NewMatrix(4)
	row := ct.NewRow()
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{64, 3, 0, 128, 1, 17} {
		m.Reset()
		for i := 0; i < n; i++ {
			m.AppendVector(d.Instances[rng.Intn(len(d.Instances))].Features)
		}
		idx := make([]int32, m.Rows())
		ct.PredictBatchIdx(m, &s, idx)
		for r := 0; r < m.Rows(); r++ {
			m.Row(r, row)
			if got, want := ct.Classes()[idx[r]], ct.PredictRow(row); got != want {
				t.Fatalf("batch size %d row %d: got %q, want %q", n, r, got, want)
			}
		}
	}
}

// TestMatrixGrowPreservesRows pins the column-major re-stride: rows
// appended before a grow keep their values (including NaN holes).
func TestMatrixGrowPreservesRows(t *testing.T) {
	schema := []string{"a", "b", "c"}
	m := NewMatrix(schema, 2)
	vals := [][]float64{
		{1, 2, 3},
		{4, ml.Missing, 6},
		{7, 8, ml.Missing}, // triggers grow
		{10, 11, 12},
	}
	for _, v := range vals {
		m.AppendRowValues(v)
	}
	if m.Rows() != len(vals) {
		t.Fatalf("rows = %d, want %d", m.Rows(), len(vals))
	}
	for r, v := range vals {
		for f := range schema {
			got := m.At(r, f)
			if ml.IsMissing(v[f]) {
				if !ml.IsMissing(got) {
					t.Fatalf("row %d col %d: got %v, want missing", r, f, got)
				}
				continue
			}
			if got != v[f] {
				t.Fatalf("row %d col %d: got %v, want %v", r, f, got, v[f])
			}
		}
	}
}

// TestMatrixAppendVectorUnknownFeature checks features outside the
// schema are dropped and absent ones become missing.
func TestMatrixAppendVectorUnknownFeature(t *testing.T) {
	m := NewMatrix([]string{"rtt", "loss"}, 2)
	r := m.AppendVector(map[string]float64{"rtt": 30, "bogus": 99})
	if got := m.At(r, 0); got != 30 {
		t.Fatalf("rtt = %v, want 30", got)
	}
	if got := m.At(r, 1); !ml.IsMissing(got) {
		t.Fatalf("loss = %v, want missing", got)
	}
}

package c45

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// ---- naive reference implementation ----
//
// refBuilder is an independent per-node C4.5 builder: it extracts and
// re-sorts every attribute at every node, exactly the work the
// presorted-index design avoids. It shares only the cold helpers
// (entropy, splitInfo, majority, prune) with the production builder;
// the split search and partitioning are written from the algorithm
// definition. Byte-identical serialized trees from both builders are
// the correctness proof for the presorted fast path.

type refBuilder struct {
	cfg    Config
	y      []int
	nClass int
	nF     int
	nInst  int
	vals   []float64 // column-major, ml.Missing when absent
	weight []float64 // per-node instance weights, overwritten on entry
}

func naiveTrainTree(cfg Config, d *ml.Dataset) *Tree {
	cfg = New(cfg).cfg // apply the trainer defaults
	classes := d.Classes()
	feats := d.Features()
	nInst, nF := d.Len(), len(feats)
	cidx := make(map[string]int, len(classes))
	for i, c := range classes {
		cidx[c] = i
	}
	y := make([]int, nInst)
	vals := make([]float64, nF*nInst)
	for i := range vals {
		vals[i] = ml.Missing
	}
	for i := range d.Instances {
		in := &d.Instances[i]
		y[i] = cidx[in.Class]
		for name, v := range in.Features {
			if f := d.FeatureIndex(name); f >= 0 {
				vals[f*nInst+i] = v
			}
		}
	}
	rb := &refBuilder{
		cfg: cfg, y: y, nClass: len(classes), nF: nF, nInst: nInst,
		vals: vals, weight: make([]float64, nInst),
	}
	ents := make([]entry, nInst)
	for i := range ents {
		ents[i] = entry{idx: i, w: 1}
	}
	tr := &Tree{features: append([]string{}, feats...), classes: classes}
	tr.root = rb.build(ents, 0)
	if !cfg.NoPrune {
		prune(tr.root, cfg.Confidence)
	}
	return tr
}

func (b *refBuilder) build(ents []entry, depth int) *node {
	for _, e := range ents {
		b.weight[e.idx] = e.w
	}
	dist := make([]float64, b.nClass)
	var total float64
	for _, e := range ents {
		dist[b.y[e.idx]] += e.w
		total += e.w
	}
	n := &node{feature: -1, class: majority(dist), dist: dist, weight: total}
	if total < 2*b.cfg.MinLeaf || entropy(dist, total) == 0 ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		return n
	}

	// Candidate per attribute, evaluated serially with a fresh sort of
	// the node's known values each time.
	cands := make([]candidate, b.nF)
	for f := 0; f < b.nF; f++ {
		cands[f] = b.scan(f, ents, total)
	}
	var avg float64
	valid := 0
	for f := range cands {
		if cands[f].feature >= 0 {
			avg += cands[f].gain
			valid++
		}
	}
	if valid == 0 {
		return n
	}
	avg /= float64(valid)
	best := candidate{feature: -1, ratio: -1}
	for f := range cands {
		if c := cands[f]; c.feature >= 0 && c.gain >= avg-1e-12 && c.ratio > best.ratio {
			best = c
		}
	}
	if best.feature < 0 {
		return n
	}

	left, right, lw, rw := b.split(ents, best.feature, best.threshold)
	if lw < b.cfg.MinLeaf || rw < b.cfg.MinLeaf {
		return n
	}
	n.feature = best.feature
	n.threshold = best.threshold
	n.gain = best.gain
	n.leftFrac = lw / (lw + rw)
	n.left = b.build(left, depth+1)
	n.right = b.build(right, depth+1)
	return n
}

func (b *refBuilder) scan(f int, ents []entry, total float64) candidate {
	none := candidate{feature: -1}
	col := b.vals[f*b.nInst : (f+1)*b.nInst]
	known := make([]int32, 0, len(ents))
	for _, e := range ents {
		if !ml.IsMissing(col[e.idx]) {
			known = append(known, int32(e.idx))
		}
	}
	sort.Slice(known, func(a, c int) bool {
		va, vc := col[known[a]], col[known[c]]
		if va != vc {
			return va < vc
		}
		return known[a] < known[c]
	})
	if len(known) < 2 || col[known[0]] == col[known[len(known)-1]] {
		return none
	}
	knownDist := make([]float64, b.nClass)
	var knownW float64
	for _, id := range known {
		w := b.weight[id]
		knownDist[b.y[id]] += w
		knownW += w
	}
	if knownW < 2*b.cfg.MinLeaf {
		return none
	}
	knownH := entropy(knownDist, knownW)
	knownFrac := knownW / total
	missW := total - knownW

	// Same incremental-entropy formulation as the production scan (the
	// reference's independence is structural — per-node re-sorting, no
	// arenas, no parallelism — while the floating-point arithmetic must
	// match exactly for byte-identical trees).
	leftDist := make([]float64, b.nClass)
	var leftW, fLeft, fRight float64
	for c := 0; c < b.nClass; c++ {
		fRight += xlogx(knownDist[c])
	}
	bestGain, bestThr, splits := -1.0, 0.0, 0
	for i := 0; i < len(known)-1; i++ {
		id := known[i]
		w := b.weight[id]
		c := b.y[id]
		l := leftDist[c]
		r := knownDist[c] - l
		fLeft += xlogx(l+w) - xlogx(l)
		fRight += xlogx(r-w) - xlogx(r)
		leftDist[c] = l + w
		leftW += w
		v := col[id]
		vNext := col[known[i+1]]
		if v == vNext {
			continue
		}
		splits++
		if leftW < b.cfg.MinLeaf || knownW-leftW < b.cfg.MinLeaf {
			continue
		}
		rightW := knownW - leftW
		condH := (xlogx(leftW) - fLeft + xlogx(rightW) - fRight) / knownW
		if g := knownH - condH; g > bestGain {
			bestGain = g
			bestThr = (v + vNext) / 2
		}
	}
	if bestGain <= 0 || splits == 0 {
		return none
	}
	gain := knownFrac * (bestGain - math.Log2(float64(splits))/knownW)
	if gain <= 1e-9 {
		return none
	}
	var lw, rw float64
	for _, id := range known {
		if col[id] <= bestThr {
			lw += b.weight[id]
		} else {
			rw += b.weight[id]
		}
	}
	si := splitInfo(lw, rw, missW, total)
	if si <= 1e-9 {
		return none
	}
	return candidate{feature: f, threshold: bestThr, gain: gain, ratio: gain / si}
}

func (b *refBuilder) split(ents []entry, f int, thr float64) (left, right []entry, lw, rw float64) {
	col := b.vals[f*b.nInst : (f+1)*b.nInst]
	var miss []entry
	for _, e := range ents {
		v := col[e.idx]
		switch {
		case ml.IsMissing(v):
			miss = append(miss, e)
		case v <= thr:
			left = append(left, e)
			lw += e.w
		default:
			right = append(right, e)
			rw += e.w
		}
	}
	if lw+rw > 0 {
		lf := lw / (lw + rw)
		for _, e := range miss {
			if wl := e.w * lf; wl > 1e-6 {
				left = append(left, entry{idx: e.idx, w: wl})
				lw += wl
			}
			if wr := e.w * (1 - lf); wr > 1e-6 {
				right = append(right, entry{idx: e.idx, w: wr})
				rw += wr
			}
		}
	}
	return left, right, lw, rw
}

// ---- test corpus ----

// synthDataset builds a labeled numeric dataset with informative
// features, pure-noise features, integer-valued features (consecutive
// equal values in the sorted order), and optionally missing values —
// everything the split search has code paths for.
func synthDataset(n, nf int, seed int64, missProb float64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ins := make([]ml.Instance, n)
	for i := range ins {
		fv := metrics.Vector{}
		var score float64
		for f := 0; f < nf; f++ {
			v := rng.NormFloat64()*2 + float64(f%3)
			if f%4 == 3 {
				v = math.Round(v) // discrete-ish: exercises equal-value runs
			}
			if f < 4 {
				score += v * float64(f+1)
			}
			if rng.Float64() >= missProb {
				fv[fmt.Sprintf("f%02d", f)] = v
			}
		}
		score += rng.NormFloat64()
		cls := "low"
		switch {
		case score > 6:
			cls = "high"
		case score > 0:
			cls = "mid"
		}
		ins[i] = ml.Instance{Features: fv, Class: cls}
	}
	return ml.NewDataset(ins)
}

func marshalTree(t *testing.T, tr *Tree) string {
	t.Helper()
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("marshal tree: %v", err)
	}
	return string(b)
}

// ---- tests ----

func TestPresortedBuilderMatchesNaiveReference(t *testing.T) {
	datasets := map[string]*ml.Dataset{
		"complete": synthDataset(300, 10, 11, 0),
		"missing":  synthDataset(300, 10, 12, 0.15),
	}
	configs := map[string]Config{
		"default":  {},
		"noprune":  {NoPrune: true},
		"depth3":   {MaxDepth: 3},
		"minleaf5": {MinLeaf: 5},
	}
	for dn, d := range datasets {
		for cn, cfg := range configs {
			t.Run(dn+"/"+cn, func(t *testing.T) {
				want := marshalTree(t, naiveTrainTree(cfg, d))
				for _, workers := range []int{1, 8} {
					c := cfg
					c.Workers = workers
					got := marshalTree(t, New(c).TrainTree(d))
					if got != want {
						t.Errorf("workers=%d: presorted tree differs from naive reference", workers)
					}
				}
			})
		}
	}
}

func TestTrainTreeWorkerInvariance(t *testing.T) {
	// Large enough that len(ents)*nF exceeds the parallelSplitWork gate
	// at the root, so the parallel scan path actually runs.
	d := synthDataset(700, 14, 21, 0.1)
	if 700*14 < parallelSplitWork {
		t.Fatal("corpus too small to exercise the parallel split path")
	}
	want := marshalTree(t, New(Config{Workers: 1}).TrainTree(d))
	for _, workers := range []int{2, 3, 8} {
		got := marshalTree(t, New(Config{Workers: workers}).TrainTree(d))
		if got != want {
			t.Errorf("workers=%d tree differs from serial build", workers)
		}
	}
}

func TestForestWorkerInvariance(t *testing.T) {
	d := synthDataset(200, 8, 31, 0.1)
	serial := NewForest(ForestConfig{Trees: 8, Seed: 5, Workers: 1, Tree: Config{NoPrune: true}}).TrainForest(d)
	parallel := NewForest(ForestConfig{Trees: 8, Seed: 5, Workers: 8, Tree: Config{NoPrune: true}}).TrainForest(d)
	if serial.Trees() != parallel.Trees() {
		t.Fatalf("tree counts differ: %d vs %d", serial.Trees(), parallel.Trees())
	}
	for i := range serial.trees {
		if a, b := marshalTree(t, serial.trees[i]), marshalTree(t, parallel.trees[i]); a != b {
			t.Errorf("forest tree %d differs between worker counts", i)
		}
	}
}

package c45

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
)

// Versioned binary snapshot format for compiled models.
//
// The JSON model file (vqtrain's output) re-parses and re-compiles the
// whole tree on every load, so vqserve's reload cost grows with model
// size. A snapshot instead stores the struct-of-arrays node layout
// verbatim: loading is one sequential read plus a bounds-checked
// little-endian decode straight back into nodeArrays — no parsing, no
// recursion, no unsafe.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "VQC45SNP"
//	8       4     version (currently 1)
//	12      4     endianness marker 0x0A0B0C0D — reads back wrong on a
//	              big-endian writer/reader mismatch
//	16      1     kind: 1 = CompiledTree, 2 = CompiledForest
//	17      3     reserved (zero)
//	20      4     meta length, then meta bytes (opaque caller blob,
//	              e.g. vqprobe's task/normalization JSON)
//	...     8     payload length
//	...     8     CRC-64/ECMA of every other byte in the file: the
//	              header bytes before this field (magic through meta)
//	              concatenated with the payload, so a flip anywhere —
//	              including the meta blob — fails the checksum
//	...     —     payload
//
// Payload: schema strings, global class strings, tree count, then per
// tree its class table (indices into the global classes — this doubles
// as the forest vote classMap), the six int32 node arrays, the three
// float64 node arrays, and the leaf distribution pool. Strings are
// uint32-length-prefixed UTF-8.
//
// Compatibility rule: the version bumps on any layout change; readers
// reject versions they don't know. The CRC covers the whole file
// (header, meta and payload), so a truncated or bit-flipped file fails
// before any array is trusted; after that, every index is still
// bounds-checked (child pointers must point strictly forward — the
// preorder invariant — so a traversal of a decoded tree always
// terminates).

const (
	snapMagic   = "VQC45SNP"
	snapVersion = 1
	snapEndian  = 0x0A0B0C0D

	snapKindTree   = 1
	snapKindForest = 2

	// snapMaxMeta bounds the opaque meta blob so a corrupt length field
	// can't drive a huge allocation before the CRC is checked.
	snapMaxMeta = 1 << 20
)

var snapCRC = crc64.MakeTable(crc64.ECMA)

// IsSnapshot reports whether data begins with the snapshot magic —
// the sniff loaders use to pick between snapshot and JSON model files.
func IsSnapshot(data []byte) bool {
	return len(data) >= len(snapMagic) && string(data[:len(snapMagic)]) == snapMagic
}

// ---- encoding ----

type senc struct {
	b []byte
}

func (e *senc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *senc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *senc) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *senc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *senc) strs(ss []string) {
	e.u32(uint32(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func (e *senc) i32s(vs []int32) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.u32(uint32(v))
	}
}

func (e *senc) f64s(vs []float64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}

func (e *senc) tree(ct *CompiledTree, classIdx []int32) {
	e.i32s(classIdx)
	nd := &ct.nodes
	e.i32s(nd.feature)
	e.i32s(nd.left)
	e.i32s(nd.right)
	e.i32s(nd.class)
	e.i32s(nd.distOff)
	e.i32s(nd.distLen)
	e.f64s(nd.threshold)
	e.f64s(nd.leftFrac)
	e.f64s(nd.total)
	e.f64s(ct.dists)
}

// WriteSnapshot serializes a compiled model (a *CompiledTree or
// *CompiledForest) plus an opaque caller meta blob. The written bytes
// round-trip through ReadSnapshot to a model whose predictions are
// bit-identical to the original's.
//
//lint:deterministic snapshot bytes are content-addressed; identical models must write identical bytes
func WriteSnapshot(w io.Writer, model BatchPredictor, meta []byte) error {
	if len(meta) > snapMaxMeta {
		return fmt.Errorf("c45: snapshot meta %d bytes exceeds the %d limit", len(meta), snapMaxMeta)
	}
	var kind byte
	var payload senc
	switch m := model.(type) {
	case *CompiledTree:
		kind = snapKindTree
		payload.strs(m.schema)
		payload.strs(m.classes)
		payload.u32(1)
		classIdx := make([]int32, len(m.classes))
		for i := range classIdx {
			classIdx[i] = int32(i)
		}
		payload.tree(m, classIdx)
	case *CompiledForest:
		kind = snapKindForest
		payload.strs(m.schema)
		payload.strs(m.classes)
		payload.u32(uint32(len(m.trees)))
		for ti, ct := range m.trees {
			payload.tree(ct, m.classMap[ti])
		}
	default:
		return fmt.Errorf("c45: cannot snapshot model type %T", model)
	}

	var hdr senc
	hdr.b = append(hdr.b, snapMagic...)
	hdr.u32(snapVersion)
	hdr.u32(snapEndian)
	hdr.b = append(hdr.b, kind, 0, 0, 0)
	hdr.u32(uint32(len(meta)))
	hdr.b = append(hdr.b, meta...)
	hdr.u64(uint64(len(payload.b)))
	// The CRC covers every byte it does not itself occupy: the header
	// written so far plus the payload. A flip anywhere in the file —
	// version, kind, meta, node arrays — fails the check.
	crc := crc64.Update(crc64.Checksum(hdr.b, snapCRC), snapCRC, payload.b)
	hdr.u64(crc)
	if _, err := w.Write(hdr.b); err != nil {
		return err
	}
	_, err := w.Write(payload.b)
	return err
}

// ---- decoding ----

// sdec is a bounds-checked sequential decoder: every read validates the
// remaining byte count first and latches the first error, so corrupt
// lengths surface as errors, never slice panics or huge allocations.
type sdec struct {
	b   []byte
	off int
	err error
}

func (d *sdec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("c45: corrupt snapshot: "+format, args...)
	}
}

func (d *sdec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("need %d bytes at offset %d, have %d", n, d.off, len(d.b)-d.off)
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

func (d *sdec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *sdec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// count reads a length prefix for elements of elemSize bytes, checking
// it against the remaining payload so a corrupt count can't allocate
// more than the file could possibly hold.
func (d *sdec) count(elemSize int) int {
	n := d.u32()
	if d.err == nil && int64(n)*int64(elemSize) > int64(len(d.b)-d.off) {
		d.fail("count %d exceeds remaining %d bytes", n, len(d.b)-d.off)
	}
	if d.err != nil {
		return 0
	}
	return int(n)
}

func (d *sdec) str() string {
	n := d.count(1)
	return string(d.take(n))
}

func (d *sdec) strs() []string {
	n := d.count(4) // ≥4 bytes per entry (the length prefix)
	if d.err != nil {
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = d.str()
	}
	return ss
}

func (d *sdec) i32s() []int32 {
	n := d.count(4)
	if d.err != nil {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(d.u32())
	}
	return vs
}

func (d *sdec) f64s() []float64 {
	n := d.count(8)
	if d.err != nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = math.Float64frombits(d.u64())
	}
	return vs
}

// tree decodes and validates one compiled tree against the shared
// schema and global class table, returning the tree and its class map.
func (d *sdec) tree(schema []string, classes []string, sindex map[string]int32) (*CompiledTree, []int32) {
	classIdx := d.i32s()
	nd := nodeArrays{
		feature:   d.i32s(),
		left:      d.i32s(),
		right:     d.i32s(),
		class:     d.i32s(),
		distOff:   d.i32s(),
		distLen:   d.i32s(),
		threshold: d.f64s(),
		leftFrac:  d.f64s(),
		total:     d.f64s(),
	}
	dists := d.f64s()
	if d.err != nil {
		return nil, nil
	}

	for i, gi := range classIdx {
		if gi < 0 || int(gi) >= len(classes) {
			d.fail("tree class %d maps to global class %d of %d", i, gi, len(classes))
			return nil, nil
		}
	}
	nn := len(nd.feature)
	if len(nd.left) != nn || len(nd.right) != nn || len(nd.class) != nn ||
		len(nd.distOff) != nn || len(nd.distLen) != nn ||
		len(nd.threshold) != nn || len(nd.leftFrac) != nn || len(nd.total) != nn {
		d.fail("node array lengths disagree")
		return nil, nil
	}
	if nn == 0 {
		d.fail("tree has no nodes")
		return nil, nil
	}
	nc := len(classIdx)
	for i := 0; i < nn; i++ {
		if f := nd.feature[i]; f < 0 { // leaf
			if c := nd.class[i]; c < 0 || int(c) >= nc {
				d.fail("node %d: class %d of %d", i, c, nc)
				return nil, nil
			}
			off, ln := nd.distOff[i], nd.distLen[i]
			if off < 0 || ln < 0 || int(ln) > nc || int64(off)+int64(ln) > int64(len(dists)) {
				d.fail("node %d: dist window [%d,%d) of %d", i, off, off+ln, len(dists))
				return nil, nil
			}
		} else { // internal: children must point strictly forward (preorder)
			if int(f) >= len(schema) {
				d.fail("node %d: feature %d of %d", i, f, len(schema))
				return nil, nil
			}
			l, r := nd.left[i], nd.right[i]
			if l <= int32(i) || r <= int32(i) || int(l) >= nn || int(r) >= nn {
				d.fail("node %d: children %d,%d violate preorder in %d nodes", i, l, r, nn)
				return nil, nil
			}
		}
	}

	treeClasses := make([]string, nc)
	for i, gi := range classIdx {
		treeClasses[i] = classes[gi]
	}
	return &CompiledTree{
		schema:  schema,
		classes: treeClasses,
		nodes:   nd,
		dists:   dists,
		sindex:  sindex,
	}, classIdx
}

// ReadSnapshot decodes snapshot bytes into a compiled model plus the
// caller meta blob written alongside it. Corrupt, truncated, or
// version-mismatched input returns an error; it never panics.
func ReadSnapshot(data []byte) (BatchPredictor, []byte, error) {
	d := &sdec{b: data}
	if magic := d.take(len(snapMagic)); d.err != nil || string(magic) != snapMagic {
		return nil, nil, fmt.Errorf("c45: not a model snapshot (bad magic)")
	}
	if v := d.u32(); d.err == nil && v != snapVersion {
		return nil, nil, fmt.Errorf("c45: snapshot version %d, this build reads %d", v, snapVersion)
	}
	if e := d.u32(); d.err == nil && e != snapEndian {
		return nil, nil, fmt.Errorf("c45: snapshot endianness marker %#x, want %#x", e, snapEndian)
	}
	kb := d.take(4)
	if d.err != nil {
		return nil, nil, d.err
	}
	kind := kb[0]
	if kb[1] != 0 || kb[2] != 0 || kb[3] != 0 {
		return nil, nil, fmt.Errorf("c45: corrupt snapshot: reserved header bytes are not zero")
	}
	metaLen := d.count(1)
	if d.err == nil && metaLen > snapMaxMeta {
		d.fail("meta %d bytes exceeds the %d limit", metaLen, snapMaxMeta)
	}
	meta := append([]byte(nil), d.take(metaLen)...)
	payloadLen := d.u64()
	crcOff := d.off // the CRC field itself is excluded from the checksum
	wantCRC := d.u64()
	if d.err != nil {
		return nil, nil, d.err
	}
	if payloadLen != uint64(len(data)-d.off) {
		return nil, nil, fmt.Errorf("c45: corrupt snapshot: payload length %d, file holds %d", payloadLen, len(data)-d.off)
	}
	payload := data[d.off:]
	if got := crc64.Update(crc64.Checksum(data[:crcOff], snapCRC), snapCRC, payload); got != wantCRC {
		return nil, nil, fmt.Errorf("c45: corrupt snapshot: checksum %#x, want %#x", got, wantCRC)
	}

	p := &sdec{b: payload}
	schema := p.strs()
	classes := p.strs()
	ntrees := p.count(1)
	if p.err != nil {
		return nil, nil, p.err
	}
	sindex := make(map[string]int32, len(schema))
	for i, f := range schema {
		if _, dup := sindex[f]; dup {
			return nil, nil, fmt.Errorf("c45: corrupt snapshot: duplicate schema feature %q", f)
		}
		sindex[f] = int32(i)
	}

	switch kind {
	case snapKindTree:
		if ntrees != 1 {
			return nil, nil, fmt.Errorf("c45: corrupt snapshot: tree snapshot holds %d trees", ntrees)
		}
		ct, classIdx := p.tree(schema, classes, sindex)
		if p.err != nil {
			return nil, nil, p.err
		}
		for i, gi := range classIdx {
			if int(gi) != i {
				return nil, nil, fmt.Errorf("c45: corrupt snapshot: tree snapshot class map is not the identity")
			}
		}
		if p.off != len(payload) {
			return nil, nil, fmt.Errorf("c45: corrupt snapshot: %d trailing payload bytes", len(payload)-p.off)
		}
		return ct, meta, nil
	case snapKindForest:
		if ntrees < 1 {
			return nil, nil, fmt.Errorf("c45: corrupt snapshot: forest snapshot holds no trees")
		}
		cf := &CompiledForest{schema: schema, classes: classes}
		for t := 0; t < ntrees; t++ {
			ct, classIdx := p.tree(schema, classes, sindex)
			if p.err != nil {
				return nil, nil, p.err
			}
			cf.trees = append(cf.trees, ct)
			cf.classMap = append(cf.classMap, classIdx)
		}
		if p.off != len(payload) {
			return nil, nil, fmt.Errorf("c45: corrupt snapshot: %d trailing payload bytes", len(payload)-p.off)
		}
		return cf, meta, nil
	default:
		return nil, nil, fmt.Errorf("c45: corrupt snapshot: unknown model kind %d", kind)
	}
}

// OpenSnapshot reads a snapshot file in one sequential read and decodes
// it. See ReadSnapshot.
func OpenSnapshot(path string) (BatchPredictor, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	model, meta, err := ReadSnapshot(data)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return model, meta, nil
}

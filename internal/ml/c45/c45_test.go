package c45

import (
	"math/rand"
	"strings"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// blobs generates two well-separated Gaussian classes on feature "x"
// plus a pure-noise feature "noise".
func blobs(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	var ins []ml.Instance
	for i := 0; i < n; i++ {
		ins = append(ins, ml.Instance{
			Features: metrics.Vector{"x": rng.NormFloat64(), "noise": rng.Float64()},
			Class:    "lo",
		})
		ins = append(ins, ml.Instance{
			Features: metrics.Vector{"x": 8 + rng.NormFloat64(), "noise": rng.Float64()},
			Class:    "hi",
		})
	}
	return ml.NewDataset(ins)
}

func TestSeparableData(t *testing.T) {
	d := blobs(100, 1)
	tree := Default().TrainTree(d)
	conf := ml.Evaluate(tree, d)
	if conf.Accuracy() < 0.99 {
		t.Errorf("training accuracy %.3f on separable blobs", conf.Accuracy())
	}
	if tree.Size() > 7 {
		t.Errorf("tree size %d for a 1-split problem", tree.Size())
	}
}

func TestConjunctionNeedsDepth(t *testing.T) {
	// class = (a > 0.5 AND b > 0.5): a single split cannot express it,
	// but each feature carries marginal signal, so a greedy tree of
	// depth 2 solves it. (Pure XOR has zero marginal gain and defeats
	// greedy trees — including C4.5 — by design.)
	rng := rand.New(rand.NewSource(2))
	var ins []ml.Instance
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		cls := "zero"
		if a > 0.5 && b > 0.5 {
			cls = "one"
		}
		ins = append(ins, ml.Instance{Features: metrics.Vector{"a": a, "b": b}, Class: cls})
	}
	d := ml.NewDataset(ins)
	tree := Default().TrainTree(d)
	if acc := ml.Evaluate(tree, d).Accuracy(); acc < 0.95 {
		t.Errorf("conjunction training accuracy %.3f; depth-2 splits should nail this", acc)
	}
	if tree.Size() < 5 {
		t.Errorf("tree size %d; conjunction needs at least two splits", tree.Size())
	}
}

func TestCrossValidationGeneralizes(t *testing.T) {
	d := blobs(150, 3)
	conf := ml.CrossValidate(Default(), d, 10, rand.New(rand.NewSource(4)))
	if conf.Accuracy() < 0.97 {
		t.Errorf("CV accuracy %.3f on separable blobs", conf.Accuracy())
	}
}

func TestMissingValuesAtTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var ins []ml.Instance
	for i := 0; i < 300; i++ {
		v := rng.NormFloat64()
		cls := "lo"
		if v > 0 {
			cls = "hi"
			v += 4
		} else {
			v -= 4
		}
		fv := metrics.Vector{"x": v}
		if rng.Float64() < 0.3 { // 30% missing
			delete(fv, "x")
		}
		fv["filler"] = rng.Float64()
		ins = append(ins, ml.Instance{Features: fv, Class: cls})
	}
	d := ml.NewDataset(ins)
	tree := Default().TrainTree(d)
	// Predict fully observed vectors.
	if tree.Predict(metrics.Vector{"x": -4, "filler": 0.5}) != "lo" {
		t.Error("prediction with value present failed")
	}
	if tree.Predict(metrics.Vector{"x": 4, "filler": 0.5}) != "hi" {
		t.Error("prediction with value present failed")
	}
}

func TestMissingValueAtPredictionFollowsBothBranches(t *testing.T) {
	d := blobs(100, 6)
	tree := Default().TrainTree(d)
	// With x missing, the prediction must still return one of the
	// classes (weighted vote), not panic.
	got := tree.Predict(metrics.Vector{"noise": 0.5})
	if got != "lo" && got != "hi" {
		t.Errorf("prediction with missing split value = %q", got)
	}
	dist := tree.Distribution(metrics.Vector{"noise": 0.5})
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("distribution does not sum to 1: %v", dist)
	}
}

func TestPruningShrinksNoisyTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ins []ml.Instance
	for i := 0; i < 400; i++ {
		// Pure label noise: no feature carries signal.
		ins = append(ins, ml.Instance{
			Features: metrics.Vector{"a": rng.Float64(), "b": rng.Float64(), "c": rng.Float64()},
			Class:    []string{"x", "y"}[rng.Intn(2)],
		})
	}
	d := ml.NewDataset(ins)
	unpruned := New(Config{NoPrune: true}).TrainTree(d)
	pruned := Default().TrainTree(d)
	if pruned.Size() > unpruned.Size() {
		t.Errorf("pruned size %d > unpruned %d", pruned.Size(), unpruned.Size())
	}
	// The MDL split penalty already keeps chance splits rare; with
	// pruning on top, a pure-noise tree must stay trivial.
	if pruned.Size() > 9 {
		t.Errorf("pure-noise pruned tree still has %d nodes", pruned.Size())
	}
}

func TestFeatureImportanceFindsSignal(t *testing.T) {
	d := blobs(150, 8)
	tree := Default().TrainTree(d)
	imp := tree.FeatureImportance()
	if len(imp) == 0 || imp[0].Feature != "x" {
		t.Errorf("top feature = %+v, want x", imp)
	}
}

func TestPerClassImportance(t *testing.T) {
	d := blobs(150, 9)
	tree := Default().TrainTree(d)
	per := tree.PerClassImportance()
	for _, cls := range []string{"lo", "hi"} {
		scores := per[cls]
		if len(scores) == 0 || scores[0].Feature != "x" {
			t.Errorf("class %s importance = %+v, want x on top", cls, scores)
		}
	}
}

func TestTreeRendering(t *testing.T) {
	d := blobs(50, 10)
	s := Default().TrainTree(d).String()
	if !strings.Contains(s, "x <=") || !strings.Contains(s, "=>") {
		t.Errorf("render missing split/leaf markers:\n%s", s)
	}
}

func TestMaxDepth(t *testing.T) {
	d := blobs(100, 11)
	tree := New(Config{MaxDepth: 1, NoPrune: true}).TrainTree(d)
	if tree.Size() > 3 {
		t.Errorf("depth-1 tree has %d nodes", tree.Size())
	}
}

func TestSingleClassDataset(t *testing.T) {
	var ins []ml.Instance
	for i := 0; i < 10; i++ {
		ins = append(ins, ml.Instance{Features: metrics.Vector{"a": float64(i)}, Class: "only"})
	}
	tree := Default().TrainTree(ml.NewDataset(ins))
	if tree.Predict(metrics.Vector{"a": 3}) != "only" {
		t.Error("single-class prediction")
	}
	if tree.Size() != 1 {
		t.Errorf("single-class tree size %d, want 1", tree.Size())
	}
}

func TestAddErrsProperties(t *testing.T) {
	// Zero observed errors still yields a positive pessimistic add-on.
	if a := addErrs(10, 0, 0.25); a <= 0 {
		t.Errorf("addErrs(10,0) = %v, want > 0", a)
	}
	// More errors means a larger estimate base; the add-on stays
	// non-negative and finite.
	for e := 0.0; e <= 10; e++ {
		a := addErrs(20, e, 0.25)
		if a < 0 || a > 20 {
			t.Errorf("addErrs(20,%v) = %v out of range", e, a)
		}
	}
	// Tighter confidence (larger cf) gives smaller add-on.
	if addErrs(50, 5, 0.5) >= addErrs(50, 5, 0.1) {
		t.Error("add-on should shrink as cf grows")
	}
}

// Package svm implements a linear support vector machine trained with
// the Pegasos stochastic sub-gradient method, in a one-vs-rest ensemble
// for multi-class problems. It is the second baseline the paper compared
// against C4.5 (Section 3.2).
//
// Features are z-score standardized and missing values mean-imputed
// (i.e. set to zero after standardization), the conventional treatment
// for margin classifiers.
package svm

import (
	"math"
	"math/rand"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// Config tunes the learner.
type Config struct {
	// Lambda is the regularization strength. Zero selects 1e-4.
	Lambda float64
	// Epochs is the number of passes over the data. Zero selects 20.
	Epochs int
	// Seed drives the sampling order.
	Seed int64
}

// Trainer builds one-vs-rest linear SVMs.
type Trainer struct {
	cfg Config
}

// New returns a trainer with the given config.
func New(cfg Config) *Trainer {
	if cfg.Lambda == 0 {
		cfg.Lambda = 1e-4
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 30
	}
	return &Trainer{cfg: cfg}
}

// Train implements ml.Trainer.
func (t *Trainer) Train(d *ml.Dataset) ml.Classifier {
	x, yStr := d.Matrix()
	classes := d.Classes()
	nf := len(d.Features())

	m := &Model{
		features: append([]string{}, d.Features()...),
		classes:  classes,
		mean:     make([]float64, nf),
		std:      make([]float64, nf),
		w:        make([][]float64, len(classes)),
		b:        make([]float64, len(classes)),
	}

	// Standardization statistics over present values.
	count := make([]float64, nf)
	for _, row := range x {
		for f, v := range row {
			if !ml.IsMissing(v) {
				m.mean[f] += v
				count[f]++
			}
		}
	}
	for f := range m.mean {
		if count[f] > 0 {
			m.mean[f] /= count[f]
		}
	}
	for _, row := range x {
		for f, v := range row {
			if !ml.IsMissing(v) {
				d := v - m.mean[f]
				m.std[f] += d * d
			}
		}
	}
	for f := range m.std {
		if count[f] > 1 {
			m.std[f] = math.Sqrt(m.std[f] / (count[f] - 1))
		}
		if m.std[f] < 1e-9 {
			m.std[f] = 1
		}
	}

	// Pre-standardize the training matrix (missing -> 0 == mean).
	z := make([][]float64, len(x))
	for i, row := range x {
		zr := make([]float64, nf)
		for f, v := range row {
			if !ml.IsMissing(v) {
				zr[f] = (v - m.mean[f]) / m.std[f]
			}
		}
		z[i] = zr
	}

	rng := rand.New(rand.NewSource(t.cfg.Seed + 1))
	for c, cls := range classes {
		y := make([]float64, len(x))
		for i, s := range yStr {
			if s == cls {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		m.w[c], m.b[c] = pegasos(z, y, t.cfg.Lambda, t.cfg.Epochs, rng)
	}
	return m
}

// pegasos runs the primal sub-gradient solver for one binary problem.
func pegasos(x [][]float64, y []float64, lambda float64, epochs int, rng *rand.Rand) ([]float64, float64) {
	nf := len(x[0])
	w := make([]float64, nf)
	b := 0.0
	n := len(x)
	// Offset the step-size schedule by one epoch's worth of steps so the
	// first updates are not wildly large (standard Pegasos stabilizer).
	t := n
	for e := 0; e < epochs; e++ {
		for k := 0; k < n; k++ {
			t++
			i := rng.Intn(n)
			eta := 1 / (lambda * float64(t))
			dot := b
			for f, v := range x[i] {
				dot += w[f] * v
			}
			scale := 1 - eta*lambda
			if scale < 0 {
				scale = 0
			}
			if y[i]*dot < 1 {
				for f := range w {
					w[f] = scale*w[f] + eta*y[i]*x[i][f]
				}
				b += eta * y[i]
			} else {
				for f := range w {
					w[f] *= scale
				}
			}
		}
	}
	return w, b
}

// Model is a trained one-vs-rest linear SVM.
type Model struct {
	features []string
	classes  []string
	mean     []float64
	std      []float64
	w        [][]float64
	b        []float64
}

// Predict implements ml.Classifier: argmax over per-class margins.
func (m *Model) Predict(fv metrics.Vector) string {
	best, bi := math.Inf(-1), 0
	for c := range m.classes {
		margin := m.b[c]
		for f, name := range m.features {
			v, ok := fv[name]
			if !ok || ml.IsMissing(v) {
				continue // standardized missing value is 0
			}
			margin += m.w[c][f] * (v - m.mean[f]) / m.std[f]
		}
		if margin > best {
			best, bi = margin, c
		}
	}
	return m.classes[bi]
}

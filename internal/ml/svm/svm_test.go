package svm

import (
	"math/rand"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

func linsep(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	var ins []ml.Instance
	for i := 0; i < n; i++ {
		x, y := rng.NormFloat64(), rng.NormFloat64()
		cls := "neg"
		if x+y > 1 {
			cls = "pos"
			x += 2
			y += 2
		} else {
			x -= 2
			y -= 2
		}
		ins = append(ins, ml.Instance{Features: metrics.Vector{"x": x, "y": y}, Class: cls})
	}
	return ml.NewDataset(ins)
}

func TestLinearlySeparable(t *testing.T) {
	d := linsep(300, 1)
	conf := ml.CrossValidate(New(Config{Seed: 1}), d, 5, rand.New(rand.NewSource(2)))
	if conf.Accuracy() < 0.95 {
		t.Errorf("SVM CV accuracy %.3f on separable data", conf.Accuracy())
	}
}

func TestMultiClassOneVsRest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ins []ml.Instance
	centers := map[string][2]float64{"a": {0, 0}, "b": {8, 0}, "c": {0, 8}}
	for cls, c := range centers {
		for i := 0; i < 80; i++ {
			ins = append(ins, ml.Instance{
				Features: metrics.Vector{"x": c[0] + rng.NormFloat64(), "y": c[1] + rng.NormFloat64()},
				Class:    cls,
			})
		}
	}
	d := ml.NewDataset(ins)
	m := New(Config{Seed: 4}).Train(d)
	correct := 0
	for _, in := range d.Instances {
		if m.Predict(in.Features) == in.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc < 0.95 {
		t.Errorf("3-class accuracy %.3f", acc)
	}
}

func TestScaleInvariance(t *testing.T) {
	// A feature on a huge scale must not drown the informative one,
	// thanks to standardization.
	rng := rand.New(rand.NewSource(5))
	var ins []ml.Instance
	for i := 0; i < 200; i++ {
		v := rng.NormFloat64()
		cls := "lo"
		if i%2 == 0 {
			cls = "hi"
			v += 6
		}
		ins = append(ins, ml.Instance{
			Features: metrics.Vector{"signal": v, "huge": rng.Float64() * 1e9},
			Class:    cls,
		})
	}
	d := ml.NewDataset(ins)
	m := New(Config{Seed: 6}).Train(d)
	correct := 0
	for _, in := range d.Instances {
		if m.Predict(in.Features) == in.Class {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc < 0.95 {
		t.Errorf("accuracy %.3f with a large-scale nuisance feature", acc)
	}
}

func TestMissingValuePrediction(t *testing.T) {
	d := linsep(200, 7)
	m := New(Config{Seed: 8}).Train(d)
	if got := m.Predict(metrics.Vector{}); got != "neg" && got != "pos" {
		t.Errorf("empty-vector prediction = %q", got)
	}
}

func TestDeterministicTraining(t *testing.T) {
	d := linsep(100, 9)
	m1 := New(Config{Seed: 10}).Train(d)
	m2 := New(Config{Seed: 10}).Train(d)
	for i := 0; i < 20; i++ {
		fv := metrics.Vector{"x": float64(i) - 10, "y": float64(i%5) - 2}
		if m1.Predict(fv) != m2.Predict(fv) {
			t.Fatal("same-seed training diverged")
		}
	}
}

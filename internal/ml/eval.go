package ml

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"vqprobe/internal/parallel"
)

// Confusion is a multi-class confusion matrix.
type Confusion struct {
	classes []string
	index   map[string]int
	counts  [][]int // counts[actual][predicted]
	total   int
}

// NewConfusion creates a matrix over the given classes; labels outside
// the set are added lazily.
func NewConfusion(classes []string) *Confusion {
	c := &Confusion{index: map[string]int{}}
	for _, cl := range classes {
		c.class(cl)
	}
	return c
}

func (c *Confusion) class(name string) int {
	if i, ok := c.index[name]; ok {
		return i
	}
	i := len(c.classes)
	c.index[name] = i
	c.classes = append(c.classes, name)
	for j := range c.counts {
		c.counts[j] = append(c.counts[j], 0)
	}
	c.counts = append(c.counts, make([]int, len(c.classes)))
	return i
}

// Add records one prediction.
func (c *Confusion) Add(actual, predicted string) {
	a, p := c.class(actual), c.class(predicted)
	c.counts[a][p]++
	c.total++
}

// Total returns the number of recorded predictions.
func (c *Confusion) Total() int { return c.total }

// Classes returns the classes seen, in insertion order.
func (c *Confusion) Classes() []string { return c.classes }

// Count returns the number of instances of class actual predicted as
// predicted.
func (c *Confusion) Count(actual, predicted string) int {
	a, okA := c.index[actual]
	p, okP := c.index[predicted]
	if !okA || !okP {
		return 0
	}
	return c.counts[a][p]
}

// Accuracy is the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	if c.total == 0 {
		return 0
	}
	correct := 0
	for i := range c.classes {
		correct += c.counts[i][i]
	}
	return float64(correct) / float64(c.total)
}

// Precision returns TP/(TP+FP) for a class (0 when never predicted).
func (c *Confusion) Precision(class string) float64 {
	i, ok := c.index[class]
	if !ok {
		return 0
	}
	tp := c.counts[i][i]
	pred := 0
	for a := range c.classes {
		pred += c.counts[a][i]
	}
	if pred == 0 {
		return 0
	}
	return float64(tp) / float64(pred)
}

// Recall returns TP/(TP+FN) for a class (0 when the class has no
// instances).
func (c *Confusion) Recall(class string) float64 {
	i, ok := c.index[class]
	if !ok {
		return 0
	}
	tp := c.counts[i][i]
	actual := 0
	for p := range c.classes {
		actual += c.counts[i][p]
	}
	if actual == 0 {
		return 0
	}
	return float64(tp) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for a class.
func (c *Confusion) F1(class string) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroPrecision averages precision over classes that actually occur.
func (c *Confusion) MacroPrecision() float64 { return c.macro(c.Precision) }

// MacroRecall averages recall over classes that actually occur.
func (c *Confusion) MacroRecall() float64 { return c.macro(c.Recall) }

func (c *Confusion) macro(f func(string) float64) float64 {
	sum, n := 0.0, 0
	for i, cl := range c.classes {
		actual := 0
		for p := range c.classes {
			actual += c.counts[i][p]
		}
		if actual == 0 {
			continue
		}
		sum += f(cl)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the matrix with per-class precision/recall, Weka-style.
func (c *Confusion) String() string {
	var b strings.Builder
	order := append([]string{}, c.classes...)
	sort.Strings(order)
	fmt.Fprintf(&b, "accuracy %.4f over %d instances\n", c.Accuracy(), c.total)
	for _, cl := range order {
		fmt.Fprintf(&b, "  %-24s precision %.3f recall %.3f\n", cl, c.Precision(cl), c.Recall(cl))
	}
	return b.String()
}

// Evaluate runs a trained classifier over a dataset.
func Evaluate(cl Classifier, test *Dataset) *Confusion {
	conf := NewConfusion(test.Classes())
	for _, in := range test.Instances {
		conf.Add(in.Class, cl.Predict(in.Features))
	}
	return conf
}

// CrossValidate performs stratified k-fold cross-validation, the
// protocol the paper uses throughout (k=10). The returned confusion
// matrix pools predictions from every fold. Folds train concurrently on
// up to GOMAXPROCS workers; see CrossValidateWorkers for the
// determinism contract.
func CrossValidate(t Trainer, d *Dataset, k int, rng *rand.Rand) *Confusion {
	return CrossValidateWorkers(t, d, k, rng, 0)
}

// CrossValidateWorkers is CrossValidate with an explicit bound on
// concurrent folds (zero selects GOMAXPROCS, 1 forces serial). The
// fold assignment is drawn from rng before any training starts, each
// fold records its predictions in instance order, and the pooled
// confusion matrix is assembled serially in fold order — so the result
// is byte-identical for any worker count. The Trainer must be safe for
// concurrent Train calls (all trainers in this repo are: they keep
// configuration only and derive per-call state from it).
func CrossValidateWorkers(t Trainer, d *Dataset, k int, rng *rand.Rand, workers int) *Confusion {
	if k < 2 {
		panic("ml: cross-validation needs k >= 2")
	}
	folds := stratifiedFolds(d, k, rng)
	type pred struct{ actual, predicted string }
	results := make([][]pred, k)
	parallel.For(k, workers, func(f int) {
		var train, test []Instance
		for i, in := range d.Instances {
			if folds[i] == f {
				test = append(test, in)
			} else {
				train = append(train, in)
			}
		}
		if len(test) == 0 || len(train) == 0 {
			return
		}
		cl := t.Train(NewDataset(train))
		ps := make([]pred, len(test))
		for i, in := range test {
			ps[i] = pred{actual: in.Class, predicted: cl.Predict(in.Features)}
		}
		results[f] = ps
	})
	conf := NewConfusion(d.Classes())
	for f := range results {
		for _, p := range results[f] {
			conf.Add(p.actual, p.predicted)
		}
	}
	return conf
}

// stratifiedFolds assigns each instance a fold, preserving class
// proportions.
func stratifiedFolds(d *Dataset, k int, rng *rand.Rand) []int {
	byClass := map[string][]int{}
	for i, in := range d.Instances {
		byClass[in.Class] = append(byClass[in.Class], i)
	}
	folds := make([]int, d.Len())
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Strings(classes) // deterministic iteration
	next := 0
	for _, c := range classes {
		idx := byClass[c]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			folds[i] = next % k
			next++
		}
	}
	return folds
}

// Package ml provides the learning substrate of the reproduction:
// datasets of named-feature instances, classifier interfaces, stratified
// cross-validation and the confusion-matrix metrics (accuracy, precision,
// recall) the paper reports.
//
// It plays the role Weka 3.6.10 played for the authors; the concrete
// algorithms live in the subpackages ml/c45 (J48 equivalent), ml/bayes
// and ml/svm.
package ml

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"vqprobe/internal/metrics"
)

// Missing is the sentinel for absent feature values in matrix form.
var Missing = math.NaN()

// IsMissing reports whether v is the missing-value sentinel.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Instance is one labeled example.
type Instance struct {
	Features metrics.Vector
	Class    string
}

// Dataset is an immutable-by-convention collection of instances with a
// canonical feature ordering (sorted union of all feature names).
type Dataset struct {
	Instances []Instance
	features  []string
	findex    map[string]int
}

// NewDataset builds a dataset and computes the canonical feature list.
func NewDataset(instances []Instance) *Dataset {
	seen := map[string]bool{}
	for _, in := range instances {
		for k := range in.Features {
			seen[k] = true
		}
	}
	features := make([]string, 0, len(seen))
	for k := range seen {
		features = append(features, k)
	}
	sort.Strings(features)
	idx := make(map[string]int, len(features))
	for i, f := range features {
		idx[f] = i
	}
	return &Dataset{Instances: instances, features: features, findex: idx}
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Instances) }

// Features returns the canonical feature names (do not mutate).
func (d *Dataset) Features() []string { return d.features }

// FeatureIndex returns the column of a feature, or -1.
func (d *Dataset) FeatureIndex(name string) int {
	if i, ok := d.findex[name]; ok {
		return i
	}
	return -1
}

// Classes returns the distinct class labels, sorted.
func (d *Dataset) Classes() []string {
	seen := map[string]bool{}
	for _, in := range d.Instances {
		seen[in.Class] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ClassCounts returns instance counts per class.
func (d *Dataset) ClassCounts() map[string]int {
	out := map[string]int{}
	for _, in := range d.Instances {
		out[in.Class]++
	}
	return out
}

// Row returns the instance's features in canonical order with Missing
// for absent values.
func (d *Dataset) Row(i int) []float64 {
	row := make([]float64, len(d.features))
	in := d.Instances[i]
	for j, f := range d.features {
		if v, ok := in.Features[f]; ok {
			row[j] = v
		} else {
			row[j] = Missing
		}
	}
	return row
}

// Matrix materializes the full numeric matrix plus class labels; the
// concrete learners consume this form.
func (d *Dataset) Matrix() ([][]float64, []string) {
	x := make([][]float64, d.Len())
	y := make([]string, d.Len())
	for i := range d.Instances {
		x[i] = d.Row(i)
		y[i] = d.Instances[i].Class
	}
	return x, y
}

// Project returns a dataset restricted to the named features (features
// absent from an instance stay absent).
func (d *Dataset) Project(names []string) *Dataset {
	keep := map[string]bool{}
	for _, n := range names {
		keep[n] = true
	}
	out := make([]Instance, d.Len())
	for i, in := range d.Instances {
		fv := metrics.Vector{}
		for k, v := range in.Features {
			if keep[k] {
				fv[k] = v
			}
		}
		out[i] = Instance{Features: fv, Class: in.Class}
	}
	return NewDataset(out)
}

// Relabel returns a dataset with classes rewritten by fn; instances for
// which fn returns "" are dropped.
func (d *Dataset) Relabel(fn func(in Instance) string) *Dataset {
	out := make([]Instance, 0, d.Len())
	for _, in := range d.Instances {
		c := fn(in)
		if c == "" {
			continue
		}
		out = append(out, Instance{Features: in.Features, Class: c})
	}
	return NewDataset(out)
}

// Classifier predicts a class label from a feature vector.
type Classifier interface {
	Predict(fv metrics.Vector) string
}

// Trainer builds a classifier from a dataset.
type Trainer interface {
	Train(d *Dataset) Classifier
}

// TrainerFunc adapts a function to the Trainer interface.
type TrainerFunc func(d *Dataset) Classifier

// Train implements Trainer.
func (f TrainerFunc) Train(d *Dataset) Classifier { return f(d) }

// WriteCSV serializes the dataset with a header row; the class goes in
// the final "class" column. Missing values serialize as empty cells.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, d.features...), "class")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(d.features)+1)
	for i, in := range d.Instances {
		for j, f := range d.features {
			if v, ok := in.Features[f]; ok {
				row[j] = strconv.FormatFloat(v, 'g', -1, 64)
			} else {
				row[j] = ""
			}
		}
		row[len(row)-1] = in.Class
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("instance %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset produced by WriteCSV, materializing every
// row. For larger-than-memory inputs use CSVStream instead.
func ReadCSV(r io.Reader) (*Dataset, error) {
	s, err := NewCSVStream(r)
	if err != nil {
		return nil, err
	}
	var instances []Instance
	for {
		fv, class, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		instances = append(instances, Instance{Features: fv, Class: class})
	}
	return NewDataset(instances), nil
}

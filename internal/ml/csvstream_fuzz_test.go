package ml

// Fuzz target for the streaming CSV ingest decoder: arbitrary bytes
// must never panic the reader, and every successfully decoded row must
// be consistent with the header schema.

import (
	"io"
	"strings"
	"testing"
)

func FuzzCSVStream(f *testing.F) {
	f.Add("a,b,class\n1,2,good\n")
	f.Add("a,b,class\n,,x\n1,,y\n")
	f.Add("class\ngood\n")
	f.Add("a,class\nNaN,good\n+Inf,bad\n")
	f.Add("a,b,class\n1,2\n")             // short row
	f.Add("a,b,class\n1,2,3,extra\n")     // long row
	f.Add("\"a\nb\",class\n\"1\",good\n") // quoted header with newline
	f.Add("a,b,class\r\n1,2,good\r\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		s, err := NewCSVStream(strings.NewReader(data))
		if err != nil {
			return
		}
		nfeat := len(s.Features())
		for rows := 0; rows < 10000; rows++ {
			fv, _, err := s.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // per-row errors are the contract; panics are not
			}
			if len(fv) > nfeat {
				t.Fatalf("row decoded %d features for a %d-column schema", len(fv), nfeat)
			}
			for k := range fv {
				found := false
				for _, h := range s.Features() {
					if h == k {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("row invented feature %q not in header", k)
				}
			}
		}
	})
}

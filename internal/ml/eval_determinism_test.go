package ml_test

import (
	"fmt"
	"math/rand"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
)

// cvDataset is a small labeled corpus with enough signal that CV folds
// grow non-trivial trees (and with missing values so fractional
// instances are in play).
func cvDataset(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ins := make([]ml.Instance, n)
	for i := range ins {
		fv := metrics.Vector{}
		var score float64
		for f := 0; f < 8; f++ {
			v := rng.NormFloat64() + float64(f%2)
			if f < 3 {
				score += v
			}
			if rng.Float64() >= 0.1 {
				fv[fmt.Sprintf("x%d", f)] = v
			}
		}
		cls := "neg"
		if score > 0.5 {
			cls = "pos"
		}
		ins[i] = ml.Instance{Features: fv, Class: cls}
	}
	return ml.NewDataset(ins)
}

// TestCrossValidateWorkerInvariance proves the determinism contract:
// for a fixed fold-assignment RNG seed, the pooled confusion matrix is
// byte-identical whether folds run serially or on 8 workers.
func TestCrossValidateWorkerInvariance(t *testing.T) {
	d := cvDataset(240, 9)
	run := func(workers int) string {
		rng := rand.New(rand.NewSource(7))
		return ml.CrossValidateWorkers(c45.New(c45.Config{Workers: 1}), d, 10, rng, workers).String()
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d confusion differs from serial run:\n%s\nvs\n%s", workers, got, want)
		}
	}
	// Nested parallelism (concurrent folds, each tree build itself
	// fanning out) must not change anything either.
	rng := rand.New(rand.NewSource(7))
	if got := ml.CrossValidateWorkers(c45.New(c45.Config{Workers: 4}), d, 10, rng, 4).String(); got != want {
		t.Errorf("nested workers confusion differs from serial run")
	}
}

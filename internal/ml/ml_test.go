package ml

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"vqprobe/internal/metrics"
)

func inst(class string, kv ...float64) Instance {
	fv := metrics.Vector{}
	names := []string{"a", "b", "c", "d"}
	for i, v := range kv {
		fv[names[i]] = v
	}
	return Instance{Features: fv, Class: class}
}

func TestDatasetBasics(t *testing.T) {
	d := NewDataset([]Instance{inst("x", 1, 2), inst("y", 3, 4), inst("x", 5, 6)})
	if d.Len() != 3 {
		t.Fatal("len")
	}
	if got := d.Classes(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("classes = %v", got)
	}
	if d.ClassCounts()["x"] != 2 {
		t.Error("class counts")
	}
	if d.FeatureIndex("a") != 0 || d.FeatureIndex("zz") != -1 {
		t.Error("feature index")
	}
}

func TestRowMissingValues(t *testing.T) {
	d := NewDataset([]Instance{
		{Features: metrics.Vector{"a": 1}, Class: "x"},
		{Features: metrics.Vector{"b": 2}, Class: "y"},
	})
	r0 := d.Row(0)
	if IsMissing(r0[0]) || !IsMissing(r0[1]) {
		t.Errorf("row 0 = %v, want [1, missing]", r0)
	}
}

func TestProjectAndRelabel(t *testing.T) {
	d := NewDataset([]Instance{inst("x", 1, 2, 3), inst("y", 4, 5, 6)})
	p := d.Project([]string{"a"})
	if len(p.Features()) != 1 || p.Features()[0] != "a" {
		t.Errorf("projected features = %v", p.Features())
	}
	r := d.Relabel(func(in Instance) string {
		if in.Class == "y" {
			return ""
		}
		return "kept"
	})
	if r.Len() != 1 || r.Instances[0].Class != "kept" {
		t.Errorf("relabel: %+v", r.Instances)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset([]Instance{
		{Features: metrics.Vector{"a": 1.5, "b": -2}, Class: "x"},
		{Features: metrics.Vector{"a": 3}, Class: "y"}, // b missing
	})
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatal("round trip length")
	}
	if back.Instances[0].Features["a"] != 1.5 || back.Instances[0].Class != "x" {
		t.Error("values lost")
	}
	if _, ok := back.Instances[1].Features["b"]; ok {
		t.Error("missing value resurrected")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("missing class column accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,class\nnotanumber,x\n")); err == nil {
		t.Error("non-numeric value accepted")
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := NewConfusion([]string{"g", "b"})
	// 3 correct g, 1 g predicted b, 2 correct b, 1 b predicted g.
	for i := 0; i < 3; i++ {
		c.Add("g", "g")
	}
	c.Add("g", "b")
	c.Add("b", "b")
	c.Add("b", "b")
	c.Add("b", "g")
	if got := c.Accuracy(); got < 0.713 || got > 0.715 {
		t.Errorf("accuracy = %v, want 5/7", got)
	}
	if got := c.Precision("g"); got != 0.75 {
		t.Errorf("precision(g) = %v, want 0.75", got)
	}
	if got := c.Recall("g"); got != 0.75 {
		t.Errorf("recall(g) = %v, want 0.75", got)
	}
	if got := c.Recall("b"); got < 0.66 || got > 0.67 {
		t.Errorf("recall(b) = %v, want 2/3", got)
	}
	if c.Count("g", "b") != 1 {
		t.Error("count")
	}
	if c.F1("g") != 0.75 {
		t.Errorf("f1 = %v", c.F1("g"))
	}
	if !strings.Contains(c.String(), "precision") {
		t.Error("String() rendering")
	}
}

func TestConfusionUnknownClass(t *testing.T) {
	c := NewConfusion(nil)
	c.Add("new", "other")
	if c.Total() != 1 {
		t.Error("lazy class registration failed")
	}
	if c.Precision("nonexistent") != 0 || c.Recall("nonexistent") != 0 {
		t.Error("unknown class metrics should be 0")
	}
}

// thresholdTrainer is a trivial trainer for CV tests: predicts by
// thresholding feature "a" at the training-set midpoint between class
// means.
type thresholdTrainer struct{}

func (thresholdTrainer) Train(d *Dataset) Classifier {
	var sum0, sum1, n0, n1 float64
	classes := d.Classes()
	for _, in := range d.Instances {
		if in.Class == classes[0] {
			sum0 += in.Features["a"]
			n0++
		} else {
			sum1 += in.Features["a"]
			n1++
		}
	}
	thr := (sum0/n0 + sum1/n1) / 2
	lowIsFirst := sum0/n0 < sum1/n1
	return thresholdClassifier{thr: thr, classes: classes, lowFirst: lowIsFirst}
}

type thresholdClassifier struct {
	thr      float64
	classes  []string
	lowFirst bool
}

func (c thresholdClassifier) Predict(fv metrics.Vector) string {
	low := fv["a"] <= c.thr
	if low == c.lowFirst {
		return c.classes[0]
	}
	return c.classes[1]
}

func TestCrossValidateStratified(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ins []Instance
	for i := 0; i < 50; i++ {
		ins = append(ins, Instance{Features: metrics.Vector{"a": rng.NormFloat64()}, Class: "lo"})
		ins = append(ins, Instance{Features: metrics.Vector{"a": 10 + rng.NormFloat64()}, Class: "hi"})
	}
	d := NewDataset(ins)
	conf := CrossValidate(thresholdTrainer{}, d, 10, rand.New(rand.NewSource(2)))
	if conf.Total() != 100 {
		t.Fatalf("CV predicted %d instances, want all 100", conf.Total())
	}
	if conf.Accuracy() < 0.98 {
		t.Errorf("separable data CV accuracy %.3f", conf.Accuracy())
	}
}

func TestStratifiedFoldsBalanced(t *testing.T) {
	var ins []Instance
	for i := 0; i < 40; i++ {
		ins = append(ins, Instance{Features: metrics.Vector{"a": float64(i)}, Class: "maj"})
	}
	for i := 0; i < 10; i++ {
		ins = append(ins, Instance{Features: metrics.Vector{"a": float64(i)}, Class: "min"})
	}
	d := NewDataset(ins)
	folds := stratifiedFolds(d, 5, rand.New(rand.NewSource(3)))
	perFoldMin := make([]int, 5)
	for i, in := range d.Instances {
		if in.Class == "min" {
			perFoldMin[folds[i]]++
		}
	}
	for f, n := range perFoldMin {
		if n != 2 {
			t.Errorf("fold %d has %d minority instances, want 2", f, n)
		}
	}
}

package traffic

import (
	"testing"
	"time"

	"vqprobe/internal/simnet"
)

func pair(seed int64, cfg simnet.LinkConfig) (*simnet.Sim, *simnet.Link, *simnet.Node, *simnet.Node) {
	s := simnet.New(seed)
	a := s.NewNode("a", 1)
	b := s.NewNode("b", 2)
	l := simnet.ConnectSym(s, "l", a.AddNIC("0"), b.AddNIC("0"), cfg)
	return s, l, a, b
}

func TestBackgroundLevelsVaryAndStayBounded(t *testing.T) {
	s, l, _, _ := pair(1, simnet.LinkConfig{Rate: 10e6})
	b := AttachBackground(s, l, simnet.AtoB, BackgroundConfig{})
	seen := map[int]bool{}
	lo, hi := 1.0, 0.0
	for i := 0; i < 600; i++ {
		s.Run(time.Duration(i+1) * 500 * time.Millisecond)
		v := b.Level()
		if v < 0 || v > 0.85 {
			t.Fatalf("background level %v out of [0,0.85]", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		seen[int(v*100)] = true
	}
	if len(seen) < 5 {
		t.Errorf("background load barely varies: %d distinct levels in 5min", len(seen))
	}
	if hi == lo {
		t.Error("background load is flat")
	}
}

func TestBackgroundScale(t *testing.T) {
	mean := func(scale float64) float64 {
		s, l, _, _ := pair(2, simnet.LinkConfig{Rate: 10e6})
		b := AttachBackground(s, l, simnet.AtoB, BackgroundConfig{Scale: scale})
		var sum float64
		n := 0
		for i := 0; i < 600; i++ {
			s.Run(time.Duration(i+1) * 500 * time.Millisecond)
			sum += b.Level()
			n++
		}
		return sum / float64(n)
	}
	if m1, m2 := mean(0.5), mean(2.0); m2 <= m1 {
		t.Errorf("scaled background mean %.3f not above %.3f", m2, m1)
	}
}

func TestCongestorWindowed(t *testing.T) {
	s, l, _, _ := pair(3, simnet.LinkConfig{Rate: 10e6})
	c := AttachCongestor(s, l, simnet.AtoB, 0.8, 10*time.Second, 20*time.Second)
	if got := c.level(5 * time.Second); got != 0 {
		t.Errorf("congestor active before window: %v", got)
	}
	if got := c.level(15 * time.Second); got < 0.7 {
		t.Errorf("congestor level %v inside window, want ~0.8", got)
	}
	if got := c.level(35 * time.Second); got != 0 {
		t.Errorf("congestor active after window: %v", got)
	}
}

func TestCongestorClampsIntensity(t *testing.T) {
	s, l, _, _ := pair(4, simnet.LinkConfig{Rate: 10e6})
	c := AttachCongestor(s, l, simnet.AtoB, 5.0, 0, time.Minute)
	if got := c.level(time.Second); got > 0.97 {
		t.Errorf("congestor level %v exceeds clamp", got)
	}
}

func TestServerLoadProcess(t *testing.T) {
	s, _, _, _ := pair(5, simnet.LinkConfig{Rate: 10e6})
	sl := NewServerLoad(s, 0.3, 0.05)
	var sum float64
	n := 0
	for i := 0; i < 300; i++ {
		s.Run(time.Duration(i+1) * time.Second)
		v := sl.Level(s.Now())
		if v < 0 || v > 1 {
			t.Fatalf("server load %v out of [0,1]", v)
		}
		sum += v
		n++
	}
	if m := sum / float64(n); m < 0.15 || m > 0.45 {
		t.Errorf("server load mean %.3f far from 0.3", m)
	}
}

func TestServerLoadBoost(t *testing.T) {
	s, _, _, _ := pair(6, simnet.LinkConfig{Rate: 10e6})
	sl := NewServerLoad(s, 0.1, 0.01)
	sl.Boost(0.7, 10*time.Second, 10*time.Second)
	s.Run(15 * time.Second)
	boosted := sl.Level(15 * time.Second)
	after := sl.Level(25 * time.Second)
	if boosted < after+0.5 {
		t.Errorf("boosted level %.2f not clearly above un-boosted %.2f", boosted, after)
	}
}

func TestUDPSourceSendsAtRate(t *testing.T) {
	s, l, a, _ := pair(7, simnet.LinkConfig{Rate: 100e6, QueueBytes: 1 << 20})
	NewUDPSource(s, a, a.NICs()[0], 2, 8e6, 1000, 0, 10*time.Second)
	s.Run(11 * time.Second)
	// 8 Mbit/s for 10s at 1000B/pkt = ~10000 packets.
	sent := l.Stats(simnet.AtoB).Enqueued
	if sent < 9000 || sent > 11000 {
		t.Errorf("UDP source enqueued %d packets, want ~10000", sent)
	}
}

func TestFluidCongestionSlowsRealTraffic(t *testing.T) {
	// Sanity link between fluid model and foreground traffic: drain time
	// for a fixed packet train should grow under a congestor.
	drain := func(intensity float64) time.Duration {
		s, l, a, b := pair(8, simnet.LinkConfig{Rate: 8e6, QueueBytes: 1 << 20})
		if intensity > 0 {
			AttachCongestor(s, l, simnet.AtoB, intensity, 0, time.Hour)
		}
		var last time.Duration
		b.SetHandler(simnet.HandlerFunc(func(*simnet.NIC, *simnet.Packet) { last = s.Now() }))
		for i := 0; i < 100; i++ {
			a.Send(a.NICs()[0], s.NewPacket(simnet.FlowKey{Proto: simnet.ProtoUDP, Src: 1, Dst: 2}, 1000, nil))
		}
		s.Run(time.Minute)
		return last
	}
	free, congested := drain(0), drain(0.85)
	if congested < 3*free {
		t.Errorf("drain under 85%% congestion (%v) not well above free link (%v)", congested, free)
	}
}

func TestBackgroundCustomApps(t *testing.T) {
	// Only tiny constant-rate apps: the load must stay far below what
	// the FTP-containing default mix reaches.
	s, l, _, _ := pair(9, simnet.LinkConfig{Rate: 10e6})
	b := AttachBackground(s, l, simnet.AtoB, BackgroundConfig{
		Apps:  []AppKind{AppVoIP, AppTelnet},
		Scale: 1,
	})
	maxSeen := 0.0
	for i := 0; i < 600; i++ {
		s.Run(time.Duration(i+1) * 500 * time.Millisecond)
		if v := b.Level(); v > maxSeen {
			maxSeen = v
		}
	}
	if maxSeen > 0.1 {
		t.Errorf("VoIP+Telnet mix peaked at %.3f of capacity; too heavy", maxSeen)
	}
}

func TestBackgroundUnknownAppIgnored(t *testing.T) {
	s, l, _, _ := pair(10, simnet.LinkConfig{Rate: 10e6})
	b := AttachBackground(s, l, simnet.AtoB, BackgroundConfig{Apps: []AppKind{"nonsense"}})
	s.Run(10 * time.Second)
	if b.Level() != 0 {
		t.Errorf("unknown app produced load %.3f", b.Level())
	}
}

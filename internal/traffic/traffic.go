// Package traffic generates the synthetic competing workloads of the
// testbed: D-ITG-style application mixes (VoIP, FTP, web, gaming) that
// provide ever-present background variation, iperf-style UDP congestors
// used as induced faults, and an ApacheBench-style server load process.
//
// Application mixes and congestors are fluid: they occupy a fraction of a
// link's capacity through simnet's busy-fraction hook instead of sending
// real packets. The foreground TCP flow still experiences the queueing
// delay, loss and bandwidth starvation a packet-level competitor would
// cause, at a tiny fraction of the event cost (see DESIGN.md; the
// fluid-vs-packet ablation benchmark validates the equivalence). A
// packet-level UDP source is also provided for that ablation and for
// tests.
package traffic

import (
	"time"

	"vqprobe/internal/simnet"
)

// AppKind labels one D-ITG-style application profile.
type AppKind string

// Application profiles, mirroring the generators the paper lists.
const (
	AppVoIP   AppKind = "voip"
	AppFTP    AppKind = "ftp"
	AppWeb    AppKind = "web"
	AppGaming AppKind = "gaming"
	AppTelnet AppKind = "telnet"
)

// appProfile holds the on/off dynamics of one application type, as a
// fraction of link capacity while on.
type appProfile struct {
	share   float64 // capacity fraction while active
	onMean  time.Duration
	offMean time.Duration
}

var profiles = map[AppKind]appProfile{
	AppVoIP:   {share: 0.02, onMean: 60 * time.Second, offMean: 90 * time.Second},
	AppFTP:    {share: 0.35, onMean: 8 * time.Second, offMean: 45 * time.Second},
	AppWeb:    {share: 0.12, onMean: 2 * time.Second, offMean: 10 * time.Second},
	AppGaming: {share: 0.04, onMean: 120 * time.Second, offMean: 60 * time.Second},
	AppTelnet: {share: 0.005, onMean: 30 * time.Second, offMean: 30 * time.Second},
}

type appFlow struct {
	profile appProfile
	on      bool
	until   time.Duration
}

// Background is a D-ITG-style application mix occupying a link direction.
type Background struct {
	sim    *simnet.Sim
	flows  []appFlow
	scale  float64
	level  float64
	ticker *simnet.Ticker
}

// BackgroundConfig selects the composition of the mix.
type BackgroundConfig struct {
	// Apps lists the active application flows; empty selects a default
	// mix of one of each kind.
	Apps []AppKind
	// Scale multiplies every flow's capacity share; zero selects 1.
	// The testbed randomizes it per scenario so no two sessions see the
	// same background.
	Scale float64
}

// AttachBackground starts an application mix on one direction of a link.
func AttachBackground(sim *simnet.Sim, link *simnet.Link, dir simnet.Direction, cfg BackgroundConfig) *Background {
	if len(cfg.Apps) == 0 {
		cfg.Apps = []AppKind{AppVoIP, AppFTP, AppWeb, AppGaming, AppTelnet}
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	b := &Background{sim: sim, scale: cfg.Scale}
	for _, k := range cfg.Apps {
		p, ok := profiles[k]
		if !ok {
			continue
		}
		b.flows = append(b.flows, appFlow{profile: p})
	}
	b.step(0)
	b.ticker = simnet.NewTicker(sim, 500*time.Millisecond, b.step)
	link.AddBusyFn(dir, func(time.Duration) float64 { return b.level })
	return b
}

// Level returns the current occupied capacity fraction.
func (b *Background) Level() float64 { return b.level }

// Stop halts the mix (its last level persists; callers typically stop it
// only at teardown).
func (b *Background) Stop() { b.ticker.Stop() }

func (b *Background) step(now time.Duration) {
	rng := b.sim.Rand()
	var sum float64
	for i := range b.flows {
		f := &b.flows[i]
		if now >= f.until {
			f.on = !f.on
			mean := f.profile.offMean
			if f.on {
				mean = f.profile.onMean
			}
			f.until = now + time.Duration(rng.ExpFloat64()*float64(mean))
		}
		if f.on {
			sum += f.profile.share * (0.7 + 0.6*rng.Float64())
		}
	}
	b.level = clamp(sum*b.scale, 0, 0.85)
}

// Congestor is an iperf-style constant-rate UDP load on a link
// direction, used to induce LAN/WAN congestion faults.
type Congestor struct {
	intensity float64
	jitter    float64
	sim       *simnet.Sim
	active    bool
	from, to  time.Duration
}

// AttachCongestor occupies `intensity` (0..1) of the link direction's
// capacity during [from, from+dur). A small multiplicative jitter makes
// the load realistic rather than perfectly flat.
func AttachCongestor(sim *simnet.Sim, link *simnet.Link, dir simnet.Direction, intensity float64, from, dur time.Duration) *Congestor {
	c := &Congestor{intensity: clamp(intensity, 0, 0.97), jitter: 0.05, sim: sim, from: from, to: from + dur}
	link.AddBusyFn(dir, c.level)
	return c
}

func (c *Congestor) level(now time.Duration) float64 {
	if now < c.from || now >= c.to {
		return 0
	}
	j := 1 + c.jitter*(c.sim.Rand().Float64()*2-1)
	return clamp(c.intensity*j, 0, 0.97)
}

// ServerLoad is an ApacheBench-style request load on the content server:
// an autoregressive utilization process in [0,1].
type ServerLoad struct {
	level  float64
	mean   float64
	std    float64
	boost  float64
	bFrom  time.Duration
	bTo    time.Duration
	sim    *simnet.Sim
	ticker *simnet.Ticker
}

// NewServerLoad starts a server-utilization process with the given mean
// and variability.
func NewServerLoad(sim *simnet.Sim, mean, std float64) *ServerLoad {
	l := &ServerLoad{mean: mean, std: std, sim: sim, level: mean}
	l.ticker = simnet.NewTicker(sim, time.Second, l.step)
	return l
}

// Boost adds extra load during [from, from+dur) — the induced
// "server overload" component of WAN-side faults.
func (l *ServerLoad) Boost(amount float64, from, dur time.Duration) {
	l.boost, l.bFrom, l.bTo = amount, from, from+dur
}

// Level returns the current utilization in [0,1]; plug it into
// video.ServerConfig.LoadFn.
func (l *ServerLoad) Level(now time.Duration) float64 {
	v := l.level
	if now >= l.bFrom && now < l.bTo {
		v += l.boost
	}
	return clamp(v, 0, 1)
}

// Stop halts the process.
func (l *ServerLoad) Stop() { l.ticker.Stop() }

func (l *ServerLoad) step(time.Duration) {
	rng := l.sim.Rand()
	l.level = clamp(0.8*l.level+0.2*l.mean+rng.NormFloat64()*l.std, 0, 1)
}

// UDPSource sends real packets at a constant rate; used by the
// fluid-vs-packet ablation and by tests that need genuine cross traffic.
type UDPSource struct {
	ticker *simnet.Ticker
}

// NewUDPSource emits pktSize-byte UDP packets from node via nic toward
// dst at rateBps during [from, from+dur).
func NewUDPSource(sim *simnet.Sim, node *simnet.Node, nic *simnet.NIC, dst simnet.Addr, rateBps float64, pktSize int, from, dur time.Duration) *UDPSource {
	interval := time.Duration(float64(pktSize*8) / rateBps * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	u := &UDPSource{}
	flow := simnet.FlowKey{Proto: simnet.ProtoUDP, Src: node.Addr, Dst: dst, SrcPort: 5001, DstPort: 5001}
	sim.At(from, func() {
		u.ticker = simnet.NewTicker(sim, interval, func(now time.Duration) {
			if now >= from+dur {
				u.ticker.Stop()
				return
			}
			node.Send(nic, sim.NewPacket(flow, pktSize-simnet.HeaderBytes, nil))
		})
	})
	return u
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

package serve

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestHealthzAlertsField pins the /healthz alert surface: with an
// AlertsFunc configured the body carries its result verbatim under
// "alerts" (empty list when nothing fires), and without one the field
// is absent — so existing healthz consumers see no change.
func TestHealthzAlertsField(t *testing.T) {
	type alert struct {
		SLO   string `json:"slo"`
		State string `json:"state"`
	}
	firing := []alert{}
	e := NewEngine(testModel(t, "lan_cong_severe"), Config{
		Shards:     1,
		AlertsFunc: func() any { return firing },
	})
	defer e.Close()

	get := func() map[string]json.RawMessage {
		rr := httptest.NewRecorder()
		e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
		if rr.Code != 200 {
			t.Fatalf("healthz = %d: %s", rr.Code, rr.Body.String())
		}
		var body map[string]json.RawMessage
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return body
	}

	if got := string(get()["alerts"]); got != "[]" {
		t.Fatalf("quiet alerts field = %s, want []", got)
	}

	firing = []alert{{SLO: "latency", State: "firing"}}
	var alerts []alert
	if err := json.Unmarshal(get()["alerts"], &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].SLO != "latency" || alerts[0].State != "firing" {
		t.Fatalf("alerts = %+v, want the firing latency alert", alerts)
	}

	plain := NewEngine(testModel(t, "lan_cong_severe"), Config{Shards: 1})
	defer plain.Close()
	rr := httptest.NewRecorder()
	plain.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	var body map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if _, present := body["alerts"]; present {
		t.Fatal("alerts field present without an AlertsFunc")
	}
}

// Package serve is the online diagnosis engine: the deployable,
// always-on form of the paper's diagnostic tool. It classifies live
// session records through an immutable compiled-model snapshot behind a
// sharded, batching ingest pipeline with backpressure, supports hot
// model reload without dropping in-flight requests, and exposes
// stdlib-only observability (Prometheus-text /metrics, /healthz, and an
// NDJSON /diagnose endpoint). cmd/vqserve is a thin daemon over this
// package; vqprobe.NewEngine is the public entry point.
package serve

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vqprobe/internal/features"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/trace"
)

// Model is an immutable serving snapshot: the trained feature-
// construction scales plus a compiled predictor — a single decision
// tree or a bagged forest. Engines swap whole snapshots atomically on
// reload, so a request sees exactly one consistent model.
type Model struct {
	task string
	norm *features.Normalizer
	bp   c45.BatchPredictor
	// tree is the compiled tree when the predictor is a single one: the
	// explain path needs the recorded traversal, which an ensemble vote
	// does not have. Nil for forest models.
	tree *c45.CompiledTree
	// plan holds, per schema row, the feature name and its construction
	// transform, so normalization touches only the features the model
	// consults instead of scanning the full raw vector.
	plan []rowPlan
	info ModelInfo
}

// ModelInfo describes the serving snapshot for /healthz and the
// vqserve_model_* gauges.
type ModelInfo struct {
	// Kind is "tree" or "forest".
	Kind string `json:"kind"`
	// Trees is the ensemble size (1 for a single tree).
	Trees int `json:"trees"`
	// Nodes is the total compiled node count across the ensemble.
	Nodes int `json:"nodes"`
	// SnapshotHash is the content hash of the model file the snapshot
	// was loaded from; empty when the model was built in-process.
	SnapshotHash string `json:"snapshot_hash,omitempty"`
	// LoadMillis is how long loading + compiling the model took.
	LoadMillis float64 `json:"load_ms,omitempty"`
}

// rowPlan is the precomputed normalization of one schema row.
type rowPlan struct {
	name    string
	divisor string // per-instance divisor feature, "" for none
	scale   float64
	dropped bool
}

// NewModel assembles a serving snapshot from a compiled single tree.
func NewModel(task string, norm *features.Normalizer, tree *c45.CompiledTree) *Model {
	return NewBatchModel(task, norm, tree)
}

// NewBatchModel assembles a serving snapshot around any compiled
// predictor — a *c45.CompiledTree or a *c45.CompiledForest. Forest
// models serve Diagnose and the batched pipeline identically to trees;
// only the explain path is tree-only.
func NewBatchModel(task string, norm *features.Normalizer, bp c45.BatchPredictor) *Model {
	if norm == nil {
		norm = features.NormalizerFromScales(nil)
	}
	m := &Model{task: task, norm: norm, bp: bp}
	m.tree, _ = bp.(*c45.CompiledTree)
	kind := "forest"
	if m.tree != nil {
		kind = "tree"
	}
	m.info = ModelInfo{Kind: kind, Trees: bp.Trees(), Nodes: bp.Nodes()}
	for _, f := range bp.Schema() {
		p := norm.Plan(f)
		m.plan = append(m.plan, rowPlan{name: f, divisor: p.Divisor, scale: p.Scale, dropped: p.Dropped})
	}
	return m
}

// SetProvenance records where the snapshot came from: the content hash
// of the model file and the measured load+compile duration. Call it
// before handing the model to an engine — a Model is immutable once
// serving.
func (m *Model) SetProvenance(hash string, load time.Duration) {
	m.info.SnapshotHash = hash
	m.info.LoadMillis = float64(load.Nanoseconds()) / 1e6
}

// Info returns the snapshot's descriptive summary.
func (m *Model) Info() ModelInfo { return m.info }

// fillRow normalizes the raw vector directly into schema row form,
// bit-identical to Normalizer.ApplyVector followed by
// CompiledTree.FillRow but touching only schema features. Reading
// divisors from the raw vector is safe because divisor features
// (tcp_total_*, tcp_duration_s) are never themselves scaled, dropped
// or ratio-normalized by construction.
func (m *Model) fillRow(raw metrics.Vector, row []float64) {
	for i := range m.plan {
		p := &m.plan[i]
		v, ok := raw[p.name]
		if !ok || p.dropped {
			row[i] = ml.Missing
			continue
		}
		if p.scale > 0 {
			v = v / p.scale
		}
		if p.divisor != "" {
			if tot := raw[p.divisor]; tot > 0 {
				v = v / tot
			}
		}
		row[i] = v
	}
}

// Task returns the diagnosis task the model was trained for.
func (m *Model) Task() string { return m.task }

// Schema returns the feature names the model consults (do not mutate).
func (m *Model) Schema() []string { return m.bp.Schema() }

// Classes returns the class labels the model can emit (do not mutate).
func (m *Model) Classes() []string { return m.bp.Classes() }

// Predictor returns the compiled predictor behind the snapshot.
func (m *Model) Predictor() c45.BatchPredictor { return m.bp }

// Diagnose classifies one raw (un-normalized) feature vector
// synchronously, bypassing the ingest pipeline.
func (m *Model) Diagnose(fv metrics.Vector) Result {
	row := make([]float64, len(m.plan))
	m.fillRow(fv, row)
	cls := m.bp.PredictRow(row)
	sev, cause := ParseClass(cls)
	return Result{Class: cls, Severity: sev, Cause: cause}
}

// errExplainForest is the per-request answer when an explanation is
// requested from an ensemble: a forest vote has no single decision
// path to narrate.
const errExplainForest = "explain is not supported for forest models"

// DiagnoseExplain is Diagnose plus the traversed decision path and its
// human-readable rule rendering. The class is identical to Diagnose's:
// the explanation is recorded on the same traversal. Forest models
// answer with an error — an ensemble vote has no single decision path.
func (m *Model) DiagnoseExplain(fv metrics.Vector) Result {
	if m.tree == nil {
		return Result{Err: errExplainForest}
	}
	row := make([]float64, len(m.plan))
	m.fillRow(fv, row)
	exp := m.tree.PredictRowExplain(row)
	sev, cause := ParseClass(exp.Class)
	return Result{Class: exp.Class, Severity: sev, Cause: cause, Explain: exp, Rule: exp.Rule()}
}

// ParseClass splits a predicted class label into its severity and
// cause/location components, mirroring vqprobe.Diagnosis.
func ParseClass(cls string) (severity, cause string) {
	switch cls {
	case "good":
		return "good", "good"
	case "problematic":
		return "problematic", "unknown"
	}
	for _, suffix := range []string{"_mild", "_severe"} {
		if len(cls) > len(suffix) && strings.HasSuffix(cls, suffix) {
			return suffix[1:], strings.TrimSuffix(cls, suffix)
		}
	}
	return "", cls
}

// Policy selects the engine's behavior when a shard queue is full.
type Policy int

const (
	// Block applies backpressure: Submit waits for queue space.
	Block Policy = iota
	// Shed rejects the request immediately and counts it in
	// vqserve_shed_total.
	Shed
)

// Config tunes the engine. The zero value is usable.
type Config struct {
	// Shards is the worker/queue count; sessions hash to a shard by ID.
	// Zero selects runtime.NumCPU().
	Shards int
	// QueueDepth is the per-shard bounded queue size. Zero selects 256.
	QueueDepth int
	// MaxBatch caps how many queued requests a worker drains per model
	// snapshot load. Zero selects 32.
	MaxBatch int
	// Policy is the full-queue behavior (default Block).
	Policy Policy
	// Registry receives the engine's metrics; one is created if nil.
	Registry *metrics.Registry
	// ReloadFunc, when set, backs the POST /-/reload endpoint: it
	// produces a fresh model snapshot (e.g. re-reading the model file).
	ReloadFunc func() (*Model, error)
	// Tracer, when set, records a span per request (parenting queue/
	// normalize/predict stage spans), attaches exemplar trace IDs to the
	// stage latency histograms, and enables the /debug/trace endpoint.
	// Nil (the default) disables all of it at zero per-request cost.
	Tracer *trace.Tracer
	// AlertsFunc, when set, supplies the "alerts" field on /healthz —
	// typically an obs plane's FiringAlerts. The engine treats the
	// result as opaque JSON so serve carries no dependency on the
	// telemetry plane.
	AlertsFunc func() any
	// RequestTimeout, when positive, bounds how long a request may sit
	// in a shard queue: a job dequeued after its deadline is answered
	// with a timeout error instead of being classified against a stale
	// world. Zero disables the check.
	RequestTimeout time.Duration
	// RetryMax bounds how many times DiagnoseBatch re-submits one
	// request shed by a full queue before giving up and surfacing
	// ErrOverloaded. Zero disables retries (every shed is final).
	RetryMax int
	// RetryBackoff is the base pause before a re-submission. The
	// backoff window doubles per attempt up to RetryBackoffMax, and the
	// actual delay is drawn from the upper half of the window by a
	// seeded jitter stream (see retryDelay). Zero with RetryMax > 0
	// selects 1ms.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the doubling backoff window so a long retry
	// budget cannot balloon into multi-second stalls. Zero with
	// RetryMax > 0 selects 16× RetryBackoff.
	RetryBackoffMax time.Duration
	// RetrySeed seeds the deterministic retry-jitter stream. Zero (the
	// default) draws a process-unique per-engine seed so concurrent
	// engines — and the router tier fronting many of them — never sleep
	// on identical schedules; set it explicitly to reproduce one
	// engine's exact schedule in a test.
	RetrySeed uint64
	// InjectFault, when set, runs inside the worker just before
	// classification. A non-nil return fails the request with that
	// error; a panic exercises the worker's recovery path. This is the
	// chaos-testing seam (internal/chaos) — leave nil in production.
	InjectFault func(*Request) error
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.RetryMax > 0 && c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	if c.RetryMax > 0 && c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 16 * c.RetryBackoff
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// Request is one session to classify.
type Request struct {
	// ID identifies the session; requests with equal IDs are processed
	// on the same shard, in submission order.
	ID string `json:"id"`
	// Features is the raw (un-normalized) merged feature vector, keys
	// as produced by the probes / CSV header.
	Features map[string]float64 `json:"features"`
	// Explain requests the traversed decision path in the result.
	Explain bool `json:"explain,omitempty"`
}

// Result is the engine's answer for one request.
type Result struct {
	ID       string `json:"id,omitempty"`
	Class    string `json:"class,omitempty"`
	Severity string `json:"severity,omitempty"`
	Cause    string `json:"cause,omitempty"`
	// Explain and Rule are populated only when the request asked for
	// them: the exact node path of the classification and its one-line
	// human-readable rendering.
	Explain *c45.Explanation `json:"explain,omitempty"`
	Rule    string           `json:"rule,omitempty"`
	// TraceID links the result to its span in the engine tracer (and to
	// histogram exemplars); empty when tracing is disabled.
	TraceID string `json:"trace_id,omitempty"`
	Err     string `json:"error,omitempty"`
}

// Engine errors.
var (
	ErrClosed     = errors.New("serve: engine is closed")
	ErrOverloaded = errors.New("serve: queue full, request shed")
)

// Engine is the online diagnosis engine. Create with NewEngine, feed
// with Submit/DiagnoseBatch or the HTTP Handler, swap models with
// Reload, and drain with Close.
type Engine struct {
	cfg    Config
	model  atomic.Pointer[Model]
	shards []*shard
	next   atomic.Uint64 // round-robin for requests without an ID

	mu      sync.RWMutex // guards closed against in-flight submits
	closed  bool
	workers sync.WaitGroup

	// reloadErr holds the last failed reload's error message; nil when
	// the engine is healthy. A failed reload never replaces the served
	// model — the engine degrades gracefully, answering from the
	// last-good snapshot while /healthz surfaces the condition.
	reloadErr atomic.Pointer[string]

	// infoMu serializes the vqserve_model_* gauge updates across
	// concurrent reloads; infoGauge is the currently-lit identity series.
	infoMu    sync.Mutex
	infoGauge *metrics.Gauge

	// retrySeed is the engine's jitter-stream identity; retrySeq
	// sub-seeds each retrying call so concurrent batches on one engine
	// desynchronize too. sleep is the backoff pause — a seam so retry
	// tests can record the schedule instead of waiting it out.
	retrySeed uint64
	retrySeq  atomic.Uint64
	sleep     func(time.Duration)

	reg   *metrics.Registry
	obs   *obs
	start time.Time
}

// engineSeq numbers engines process-wide: the default retry-jitter
// seed must differ between engines created in the same process, or
// identical shed pressure would produce identical (lockstep) backoff
// schedules — the retry-storm pattern the jitter exists to break.
var engineSeq atomic.Uint64

// NewEngine starts the shard workers and returns a ready engine
// serving the given snapshot.
func NewEngine(m *Model, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	//lint:ignore virtclock process start time for /healthz uptime is wall time by design
	e := &Engine{cfg: cfg, reg: cfg.Registry, start: time.Now()}
	e.retrySeed = cfg.RetrySeed
	if e.retrySeed == 0 {
		e.retrySeed = splitmix64(engineSeq.Add(1))
	}
	// The pause is wall time by design (serving has no virtual clock);
	// keeping it behind a func field lets tests capture the schedule.
	e.sleep = time.Sleep
	e.model.Store(m)
	e.obs = newObs(e.reg)
	e.setModelGauges(m)
	for i := 0; i < cfg.Shards; i++ {
		sh := newShard(i, cfg.QueueDepth, e.reg)
		e.shards = append(e.shards, sh)
		e.workers.Add(1)
		go e.runWorker(sh)
	}
	return e
}

// Model returns the current snapshot.
func (e *Engine) Model() *Model { return e.model.Load() }

// Registry returns the engine's metrics registry.
func (e *Engine) Registry() *metrics.Registry { return e.reg }

// Reload atomically swaps in a new model snapshot. In-flight requests
// finish against whichever snapshot their batch loaded; nothing is
// dropped. A successful reload clears any degraded state left by a
// previously failed one.
func (e *Engine) Reload(m *Model) {
	e.model.Store(m)
	e.reloadErr.Store(nil)
	e.obs.reloads.Inc()
	e.setModelGauges(m)
}

// setModelGauges publishes the snapshot's identity and size on the
// vqserve_model_* series: numeric gauges for node/tree counts and load
// time, plus an info-style gauge whose labels carry the kind and
// snapshot hash (the currently-served identity is the series at 1; a
// reload drops the previous identity to 0).
func (e *Engine) setModelGauges(m *Model) {
	if m == nil {
		return
	}
	info := m.Info()
	e.infoMu.Lock()
	defer e.infoMu.Unlock()
	e.obs.modelNodes.Set(float64(info.Nodes))
	e.obs.modelTrees.Set(float64(info.Trees))
	e.obs.modelLoad.Set(info.LoadMillis / 1e3)
	g := e.reg.Gauge(fmt.Sprintf("vqserve_model_info{kind=%q,snapshot=%q}", info.Kind, info.SnapshotHash),
		"serving model identity (1 = currently served)")
	if prev := e.infoGauge; prev != nil && prev != g {
		prev.Set(0)
	}
	e.infoGauge = g
	g.Set(1)
}

// NoteReloadError records a failed reload attempt. The served model is
// untouched — the engine keeps answering from the last-good snapshot —
// but /healthz reports status "degraded" with the error until a reload
// succeeds.
func (e *Engine) NoteReloadError(err error) {
	if err == nil {
		return
	}
	msg := err.Error()
	e.reloadErr.Store(&msg)
	e.obs.reloadFails.Inc()
}

// LastReloadError returns the message of the most recent failed reload,
// or "" when the engine is healthy.
func (e *Engine) LastReloadError() string {
	if p := e.reloadErr.Load(); p != nil {
		return *p
	}
	return ""
}

// Submit enqueues one request. res is written and done invoked exactly
// once when the request completes; on a non-nil error neither happens.
func (e *Engine) Submit(req Request, res *Result, done func()) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	sh := e.shards[e.shardFor(req.ID)]
	//lint:ignore virtclock queue-wait timing measures real enqueue latency; serving has no virtual clock
	j := job{req: req, res: res, done: done, enq: time.Now()}
	if e.cfg.Policy == Shed {
		select {
		case sh.ch <- j:
		default:
			e.obs.shed.Inc()
			return ErrOverloaded
		}
	} else {
		sh.ch <- j
	}
	e.obs.submitted.Inc()
	sh.depth.Set(float64(len(sh.ch)))
	return nil
}

// splitmix64 is the SplitMix64 mixer (Steele et al.): a bijective
// avalanche over 64 bits, so consecutive engine/call sequence numbers
// spread into decorrelated jitter seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// retryDelay is attempt's jittered backoff: the window doubles from
// base, saturating at max, and the delay is drawn uniformly from
// [window/2, window] by a SplitMix64 hash of (seed, attempt). The
// draw is a pure function — same seed, same schedule — but distinct
// seeds decorrelate, so a fleet of clients shedding off the same
// saturated queue spreads its retries across the window instead of
// re-arriving in lockstep waves.
func retryDelay(seed uint64, attempt int, base, max time.Duration) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	window := base
	for i := 0; i < attempt && window < max; i++ {
		window *= 2
	}
	if window > max || window <= 0 { // beyond the cap, or doubled past overflow
		window = max
	}
	half := window - window/2
	r := splitmix64(seed ^ splitmix64(uint64(attempt)+1))
	return window/2 + time.Duration(r%uint64(half+1))
}

// nextRetrySeed sub-seeds one retrying call's jitter stream, so two
// concurrent DiagnoseBatch calls on the same engine also diverge.
func (e *Engine) nextRetrySeed() uint64 {
	return splitmix64(e.retrySeed ^ splitmix64(e.retrySeq.Add(1)))
}

// submitRetry is Submit plus bounded retry on shed (ErrOverloaded)
// responses — transient overload smooths out, sustained overload still
// surfaces after RetryMax attempts. Each pause comes from retryDelay:
// capped doubling with seeded jitter, never a lockstep schedule.
func (e *Engine) submitRetry(req Request, res *Result, done func()) error {
	err := e.Submit(req, res, done)
	if e.cfg.RetryMax <= 0 || !errors.Is(err, ErrOverloaded) {
		return err
	}
	seed := e.nextRetrySeed()
	for attempt := 0; attempt < e.cfg.RetryMax && errors.Is(err, ErrOverloaded); attempt++ {
		e.obs.retries.Inc()
		e.sleep(retryDelay(seed, attempt, e.cfg.RetryBackoff, e.cfg.RetryBackoffMax))
		err = e.Submit(req, res, done)
	}
	return err
}

// ValidateFeatures rejects feature vectors carrying NaN or ±Inf
// values. NaN is the pipeline's internal missing-value sentinel: letting
// it in from a client would silently classify the record down the
// missing-value path of every split instead of failing loudly. The
// offending feature named is the lexicographically smallest one, so the
// error is deterministic regardless of map iteration order.
func ValidateFeatures(fv map[string]float64) error {
	bad := ""
	for k, v := range fv {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			if bad == "" || k < bad {
				bad = k
			}
		}
	}
	if bad != "" {
		return fmt.Errorf("feature %q: non-finite value (NaN/Inf not allowed)", bad)
	}
	return nil
}

// DiagnoseBatch classifies a batch through the pipeline and returns
// results in request order. Requests rejected by the shed policy (or a
// closed engine) come back with Err set.
//
// Shed handling is two-phase so one saturated shard cannot
// head-of-line-block the rest of the batch: every row is submitted
// first, then only the shed rows are re-submitted, one shared jittered
// backoff per retry round. A batch with a single shed row therefore
// completes in roughly one backoff, not N of them.
func (e *Engine) DiagnoseBatch(reqs []Request) []Result {
	res := make([]Result, len(reqs))
	e.obs.inflight.Add(float64(len(reqs)))
	defer e.obs.inflight.Add(-float64(len(reqs)))
	var wg sync.WaitGroup
	var shed []int // indices still waiting on queue space
	for i := range reqs {
		wg.Add(1)
		err := e.Submit(reqs[i], &res[i], wg.Done)
		switch {
		case err == nil:
		case errors.Is(err, ErrOverloaded) && e.cfg.RetryMax > 0:
			shed = append(shed, i)
		default:
			res[i] = Result{ID: reqs[i].ID, Err: err.Error()}
			wg.Done()
		}
	}
	seed := e.nextRetrySeed()
	for attempt := 0; attempt < e.cfg.RetryMax && len(shed) > 0; attempt++ {
		e.sleep(retryDelay(seed, attempt, e.cfg.RetryBackoff, e.cfg.RetryBackoffMax))
		remaining := shed[:0]
		for _, i := range shed {
			e.obs.retries.Inc()
			err := e.Submit(reqs[i], &res[i], wg.Done)
			switch {
			case err == nil:
			case errors.Is(err, ErrOverloaded):
				remaining = append(remaining, i)
			default:
				res[i] = Result{ID: reqs[i].ID, Err: err.Error()}
				wg.Done()
			}
		}
		shed = remaining
	}
	for _, i := range shed {
		res[i] = Result{ID: reqs[i].ID, Err: ErrOverloaded.Error()}
		wg.Done()
	}
	wg.Wait()
	return res
}

// Counters returns the engine's request accounting. After Close has
// drained the pipeline the invariant submitted == requests + errors
// must hold: every request accepted into a queue is answered exactly
// once, classified or failed. Shed requests never enter the pipeline
// and appear only in shed.
func (e *Engine) Counters() (submitted, requests, errors, shed uint64) {
	return e.obs.submitted.Value(), e.obs.requests.Value(), e.obs.errs.Value(), e.obs.shed.Value()
}

// Close stops intake, drains every queued request, and waits for the
// workers to exit. Safe to call more than once.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	for _, sh := range e.shards {
		close(sh.ch)
	}
	e.workers.Wait()
	return nil
}

package serve

// Regression tests for the robustness sweep (docs/ROBUSTNESS.md): every
// fault class the chaos harness surfaced in the serving layer is pinned
// here — worker panics, non-finite features, queue timeouts, shed
// retry, graceful degradation on failed reloads, and the request
// accounting invariant.

import (
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWorkerPanicRecovered pins the tentpole serving bug: a panic while
// classifying one request used to kill the shard worker goroutine,
// permanently deadlocking every later request hashed to that shard (and
// Close). It must instead surface as a per-request error.
func TestWorkerPanicRecovered(t *testing.T) {
	m := testModel(t, "lan_cong_severe")
	e := NewEngine(m, Config{
		Shards: 2,
		InjectFault: func(r *Request) error {
			if strings.HasPrefix(r.ID, "boom") {
				panic("injected: poisoned request " + r.ID)
			}
			return nil
		},
	})

	var reqs []Request
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("ok-%d", i)
		if i%4 == 0 {
			id = fmt.Sprintf("boom-%d", i)
		}
		reqs = append(reqs, Request{ID: id, Features: fv(50, 0)})
	}
	res := e.DiagnoseBatch(reqs)
	for i, r := range res {
		if strings.HasPrefix(reqs[i].ID, "boom") {
			if !strings.Contains(r.Err, "recovered panic") {
				t.Fatalf("poisoned request %s: Err=%q, want recovered panic", reqs[i].ID, r.Err)
			}
		} else if r.Err != "" || r.Class != "good" {
			t.Fatalf("healthy request %s after panics: class=%q err=%q", reqs[i].ID, r.Class, r.Err)
		}
	}

	// The engine must still work and still drain: a dead worker would
	// hang either of these.
	after := e.DiagnoseBatch([]Request{{ID: "after", Features: fv(50, 0)}})
	if after[0].Class != "good" {
		t.Fatalf("engine degraded after panics: %+v", after[0])
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	submitted, requests, errs, _ := e.Counters()
	if submitted != requests+errs {
		t.Errorf("accounting imbalance after panics: submitted=%d classified=%d errors=%d",
			submitted, requests, errs)
	}
	if v := e.obs.panics.Value(); v != 10 {
		t.Errorf("panics counter = %d, want 10", v)
	}
}

// TestDonePanicDoesNotKillWorker covers the second panic path: a
// caller-supplied done callback that panics after the job completed.
func TestDonePanicDoesNotKillWorker(t *testing.T) {
	m := testModel(t, "lan_cong_severe")
	e := NewEngine(m, Config{Shards: 1})
	defer e.Close()

	var res Result
	var wg sync.WaitGroup
	wg.Add(1)
	if err := e.Submit(Request{ID: "a", Features: fv(50, 0)}, &res, func() {
		wg.Done()
		panic("done callback exploded")
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// The worker survived: a follow-up request on the same shard works.
	after := e.DiagnoseBatch([]Request{{ID: "b", Features: fv(50, 0)}})
	if after[0].Err != "" || after[0].Class != "good" {
		t.Fatalf("worker died with its done callback: %+v", after[0])
	}
}

// TestNonFiniteFeaturesRejected pins the silent-NaN inference bug: NaN
// is the missing-value sentinel, so a client-supplied NaN used to
// traverse the tree's missing-value path and return a confident class.
// It must instead fail the record, deterministically naming the
// lexicographically smallest offending feature.
func TestNonFiniteFeaturesRejected(t *testing.T) {
	m := testModel(t, "lan_cong_severe")
	e := NewEngine(m, Config{Shards: 1})
	defer e.Close()

	nan := func() float64 { var z float64; return 0 / z }
	inf := func() float64 { var z float64; return 1 / z }

	for i := 0; i < 20; i++ { // map iteration order must not leak into the error
		res := e.DiagnoseBatch([]Request{
			{ID: "n", Features: map[string]float64{"mobile.rtt": nan(), "mobile.loss": 2, "aaa": nan()}},
			{ID: "i", Features: map[string]float64{"mobile.rtt": 50, "mobile.loss": inf()}},
		})
		if !strings.Contains(res[0].Err, `"aaa"`) {
			t.Fatalf("NaN rejection named %q, want smallest key aaa", res[0].Err)
		}
		if !strings.Contains(res[1].Err, `"mobile.loss"`) || res[1].Class != "" {
			t.Fatalf("Inf feature not rejected: %+v", res[1])
		}
	}
	if v := e.obs.invalid.Value(); v != 40 {
		t.Errorf("invalid counter = %d, want 40", v)
	}
}

// TestRequestTimeout: with RequestTimeout set, a request that waited in
// queue past the deadline is answered with a timeout error instead of
// being classified against a stale world.
func TestRequestTimeout(t *testing.T) {
	m := testModel(t, "lan_cong_severe")
	e := NewEngine(m, Config{Shards: 1, RequestTimeout: time.Nanosecond})
	res := e.DiagnoseBatch([]Request{{ID: "x", Features: fv(50, 0)}})
	if !strings.Contains(res[0].Err, "timed out") {
		t.Fatalf("queue wait always exceeds 1ns, but Err=%q", res[0].Err)
	}
	e.Close()
	if v := e.obs.timeouts.Value(); v == 0 {
		t.Error("timeouts counter not incremented")
	}
	submitted, requests, errs, _ := e.Counters()
	if submitted != requests+errs {
		t.Errorf("accounting imbalance: submitted=%d classified=%d errors=%d", submitted, requests, errs)
	}
}

// TestShedRetryBackoff: DiagnoseBatch re-submits shed requests with
// backoff, smoothing transient overload.
func TestShedRetryBackoff(t *testing.T) {
	m := testModel(t, "lan_cong_severe")
	block := make(chan struct{})
	var once sync.Once
	e := NewEngine(m, Config{
		Shards: 1, QueueDepth: 1, Policy: Shed,
		RetryMax: 50, RetryBackoff: time.Millisecond,
		InjectFault: func(r *Request) error {
			once.Do(func() { <-block }) // first job wedges the worker briefly
			return nil
		},
	})
	var reqs []Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, Request{ID: fmt.Sprint(i), Features: fv(50, 0)})
	}
	done := make(chan []Result, 1)
	go func() { done <- e.DiagnoseBatch(reqs) }()
	time.Sleep(20 * time.Millisecond) // let the batch hit the full queue and start retrying
	close(block)
	res := <-done
	okCount := 0
	for _, r := range res {
		switch {
		case r.Err == "":
			okCount++
		case !strings.Contains(r.Err, ErrOverloaded.Error()):
			t.Fatalf("unexpected error: %q", r.Err)
		}
	}
	e.Close()
	if okCount < 2 {
		t.Errorf("only %d of %d requests survived transient overload with retries", okCount, len(reqs))
	}
	if e.obs.retries.Value() == 0 {
		t.Error("retries counter not incremented")
	}
	submitted, requests, errs, _ := e.Counters()
	if submitted != requests+errs {
		t.Errorf("accounting imbalance: submitted=%d classified=%d errors=%d", submitted, requests, errs)
	}
}

// TestDegradedReload pins graceful degradation: a failing ReloadFunc
// keeps the last-good model serving, flips /healthz to "degraded" with
// the error, and a subsequent successful reload clears the state.
func TestDegradedReload(t *testing.T) {
	m := testModel(t, "lan_cong_severe")
	fail := true
	e := NewEngine(m, Config{
		Shards: 1,
		ReloadFunc: func() (*Model, error) {
			if fail {
				return nil, errors.New("model file corrupted")
			}
			return testModel(t, "wan_cong_severe"), nil
		},
	})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(b)
	}
	post := func(path string) int {
		resp, err := srv.Client().Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := post("/-/reload"); code != 500 {
		t.Fatalf("failing reload returned %d, want 500", code)
	}
	code, body := get("/healthz")
	if code != 200 || !strings.Contains(body, `"degraded"`) || !strings.Contains(body, "model file corrupted") {
		t.Fatalf("degraded healthz = %d %s", code, body)
	}
	// Still serving from the last-good snapshot.
	res := e.DiagnoseBatch([]Request{{ID: "x", Features: fv(150, 8)}})
	if res[0].Class != "lan_cong_severe" {
		t.Fatalf("degraded engine stopped serving last-good model: %+v", res[0])
	}

	fail = false
	if code := post("/-/reload"); code != 200 {
		t.Fatalf("recovering reload returned %d", code)
	}
	code, body = get("/healthz")
	if code != 200 || !strings.Contains(body, `"ok"`) || strings.Contains(body, "degraded") {
		t.Fatalf("healthz after recovery = %d %s", code, body)
	}
	res = e.DiagnoseBatch([]Request{{ID: "x", Features: fv(150, 8)}})
	if res[0].Class != "wan_cong_severe" {
		t.Fatalf("reload did not swap the model: %+v", res[0])
	}
}

// TestDiagnoseTrueLineNumbers: per-line errors must report the line's
// position in the input, counting blank and malformed lines.
func TestDiagnoseTrueLineNumbers(t *testing.T) {
	m := testModel(t, "lan_cong_severe")
	e := NewEngine(m, Config{Shards: 1})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	body := "{\"id\":\"a\",\"features\":{\"mobile.rtt\":50,\"mobile.loss\":0}}\n" +
		"\n" + // blank line 2
		"{not json\n" + // malformed line 3
		"{\"id\":\"b\",\"features\":{\"mobile.rtt\":50,\"mobile.loss\":0}}\n"
	resp, err := srv.Client().Post(srv.URL+"/diagnose", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(out), "line 3:") {
		t.Fatalf("malformed line reported with wrong number:\n%s", out)
	}
}

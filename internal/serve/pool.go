package serve

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml/c45"
)

// job is one queued classification.
type job struct {
	req  Request
	res  *Result
	done func()
	enq  time.Time
}

// shard is one bounded queue + worker pair.
type shard struct {
	id    int
	ch    chan job
	depth *metrics.Gauge
}

func newShard(id, depth int, reg *metrics.Registry) *shard {
	return &shard{
		id:    id,
		ch:    make(chan job, depth),
		depth: reg.Gauge(fmt.Sprintf("vqserve_queue_depth{shard=%q}", fmt.Sprint(id)), "queued requests per shard"),
	}
}

// shardFor hashes a session ID onto a shard so per-session order is
// preserved; requests without an ID round-robin across shards.
func (e *Engine) shardFor(id string) int {
	if id == "" {
		return int(e.next.Add(1) % uint64(len(e.shards)))
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(e.shards)))
}

// runWorker drains one shard: it batches up to MaxBatch queued jobs,
// loads the model snapshot once per batch, and classifies each job
// recording per-stage latencies.
func (e *Engine) runWorker(sh *shard) {
	defer e.workers.Done()
	batch := make([]job, 0, e.cfg.MaxBatch)
	var row, acc []float64
	for {
		j, ok := <-sh.ch
		if !ok {
			return
		}
		batch = append(batch[:0], j)
	drain:
		for len(batch) < cap(batch) {
			select {
			case j2, ok := <-sh.ch:
				if !ok {
					break drain
				}
				batch = append(batch, j2)
			default:
				break drain
			}
		}
		sh.depth.Set(float64(len(sh.ch)))
		e.obs.batchSize.Observe(float64(len(batch)))
		m := e.model.Load()
		//lint:ignore virtclock serving measures real request latency; there is no virtual clock here
		dequeued := time.Now()
		for i := range batch {
			e.process(m, &batch[i], &row, &acc, dequeued)
		}
	}
}

// process classifies one job against the snapshot m, reusing the
// worker-local row and accumulator scratch. dequeued is when the
// worker pulled the job's batch off the shard queue.
//
// A panic anywhere in classification (or in the caller's done callback)
// is recovered here and surfaced as a per-request error: one poisoned
// request must never kill a shard worker, which would strand every
// later job hashed to that shard and hang Close.
func (e *Engine) process(m *Model, j *job, row, acc *[]float64, dequeued time.Time) {
	counted := false // whether requests/errs already accounts for this job
	defer func() {
		if r := recover(); r != nil {
			// Panic escaped from j.done() after the job itself completed:
			// swallow it so the worker lives; the job's accounting stands.
			e.obs.panics.Inc()
		}
	}()
	defer j.done()
	defer func() {
		if r := recover(); r != nil {
			j.res.ID = j.req.ID
			j.res.Err = fmt.Sprintf("internal error: recovered panic: %v", r)
			e.obs.panics.Inc()
			if !counted {
				e.obs.errs.Inc()
			}
		}
	}()
	queueD := dequeued.Sub(j.enq)
	fail := func(msg string) {
		e.obs.queueHist.Observe(queueD.Seconds())
		j.res.ID = j.req.ID
		j.res.Err = msg
		e.obs.errs.Inc()
		counted = true
	}
	if m == nil {
		fail("no model loaded")
		return
	}
	if d := e.cfg.RequestTimeout; d > 0 && queueD > d {
		e.obs.timeouts.Inc()
		fail(fmt.Sprintf("request timed out after %v in queue (limit %v)", queueD, d))
		return
	}
	if err := ValidateFeatures(j.req.Features); err != nil {
		e.obs.invalid.Inc()
		fail(err.Error())
		return
	}
	if f := e.cfg.InjectFault; f != nil {
		if err := f(&j.req); err != nil {
			fail(err.Error())
			return
		}
	}
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	t0 := time.Now()
	if len(*row) != len(m.plan) {
		*row = make([]float64, len(m.plan))
	}
	if len(*acc) != len(m.tree.Classes()) {
		*acc = make([]float64, len(m.tree.Classes()))
	}
	m.fillRow(metrics.Vector(j.req.Features), *row)
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	t1 := time.Now()
	normD := t1.Sub(t0)

	var cls string
	var exp *c45.Explanation
	if j.req.Explain {
		exp = m.tree.PredictRowExplain(*row)
		cls = exp.Class
	} else {
		cls = m.tree.PredictRowInto(*row, *acc)
	}
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	t2 := time.Now()
	predD := t2.Sub(t1)
	totalD := t2.Sub(j.enq)

	sev, cause := ParseClass(cls)
	*j.res = Result{ID: j.req.ID, Class: cls, Severity: sev, Cause: cause, Explain: exp}
	if exp != nil {
		j.res.Rule = exp.Rule()
	}

	if tr := e.cfg.Tracer; tr.Enabled() {
		// The engine measures stages with its own monotonic stopwatch;
		// anchor the spans on the tracer clock ending now.
		end := tr.Now()
		reqID := tr.RecordSpan("serve", "request", "id="+j.req.ID+" class="+cls, 0, end-totalD, totalD)
		tr.RecordSpan("serve", "queue", "", reqID, end-totalD, queueD)
		tr.RecordSpan("serve", "normalize", "", reqID, end-normD-predD, normD)
		tr.RecordSpan("serve", "predict", "", reqID, end-predD, predD)
		tid := strconv.FormatUint(uint64(reqID), 16)
		j.res.TraceID = tid
		e.obs.queueHist.ObserveExemplar(queueD.Seconds(), tid)
		e.obs.normHist.ObserveExemplar(normD.Seconds(), tid)
		e.obs.predHist.ObserveExemplar(predD.Seconds(), tid)
		e.obs.totalHist.ObserveExemplar(totalD.Seconds(), tid)
	} else {
		e.obs.queueHist.Observe(queueD.Seconds())
		e.obs.normHist.Observe(normD.Seconds())
		e.obs.predHist.Observe(predD.Seconds())
		e.obs.totalHist.Observe(totalD.Seconds())
	}
	e.obs.requests.Inc()
	counted = true
}

// obs bundles the engine's metric handles; names are documented in
// docs/SERVING.md.
//
// Accounting invariant (checked by internal/chaos and vqserve's drain):
// once the engine is drained, submitted == requests + errs. Shed
// requests never enter the pipeline and are counted only in shed.
type obs struct {
	requests, shed, errs, reloads *metrics.Counter
	submitted, panics, timeouts   *metrics.Counter
	invalid, retries, reloadFails *metrics.Counter
	inflight                      *metrics.Gauge
	queueHist, normHist, predHist *metrics.Histogram
	totalHist, batchSize          *metrics.Histogram
}

func newObs(reg *metrics.Registry) *obs {
	stage := func(s string) *metrics.Histogram {
		return reg.Histogram(fmt.Sprintf("vqserve_stage_latency_seconds{stage=%q}", s),
			"per-stage request latency", metrics.LatencyBuckets)
	}
	return &obs{
		requests:    reg.Counter("vqserve_requests_total", "requests classified"),
		shed:        reg.Counter("vqserve_shed_total", "requests rejected by the shed policy"),
		errs:        reg.Counter("vqserve_errors_total", "requests that failed to classify"),
		reloads:     reg.Counter("vqserve_model_reloads_total", "model hot reloads"),
		submitted:   reg.Counter("vqserve_submitted_total", "requests accepted into a shard queue"),
		panics:      reg.Counter("vqserve_panics_recovered_total", "worker panics recovered"),
		timeouts:    reg.Counter("vqserve_timeouts_total", "requests expired in queue past RequestTimeout"),
		invalid:     reg.Counter("vqserve_invalid_total", "requests rejected for non-finite feature values"),
		retries:     reg.Counter("vqserve_retries_total", "shed requests re-submitted with backoff"),
		reloadFails: reg.Counter("vqserve_reload_failures_total", "model reload attempts that failed (engine degraded)"),
		inflight:    reg.Gauge("vqserve_inflight", "requests currently in the pipeline"),
		queueHist:   stage("queue"),
		normHist:    stage("normalize"),
		predHist:    stage("predict"),
		totalHist:   stage("total"),
		batchSize: reg.Histogram("vqserve_batch_size", "jobs drained per worker wakeup",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
	}
}

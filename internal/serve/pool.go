package serve

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml/c45"
)

// job is one queued classification.
type job struct {
	req  Request
	res  *Result
	done func()
	enq  time.Time
}

// shard is one bounded queue + worker pair.
type shard struct {
	id    int
	ch    chan job
	depth *metrics.Gauge
}

func newShard(id, depth int, reg *metrics.Registry) *shard {
	return &shard{
		id:    id,
		ch:    make(chan job, depth),
		depth: reg.Gauge(fmt.Sprintf("vqserve_queue_depth{shard=%q}", fmt.Sprint(id)), "queued requests per shard"),
	}
}

// shardFor hashes a session ID onto a shard so per-session order is
// preserved; requests without an ID round-robin across shards.
func (e *Engine) shardFor(id string) int {
	if id == "" {
		return int(e.next.Add(1) % uint64(len(e.shards)))
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(e.shards)))
}

// batchScratch is one worker's pooled batch-classification state. The
// matrix is laid out for a specific model snapshot and rebuilt only
// when the worker first sees a new snapshot, so steady-state serving
// allocates nothing per batch.
type batchScratch struct {
	model *Model // snapshot the matrix layout belongs to
	mat   *c45.Matrix
	bs    c45.BatchScratch
	idx   []int32
	fill  []float64 // schema-row staging buffer for prep
	row   []float64 // scalar-path scratch (explain / no-model jobs)
	acc   []float64

	// Per batched job, parallel to the matrix rows.
	jobs   []*job
	queueD []time.Duration
	normD  []time.Duration
}

// runWorker drains one shard: it batches up to MaxBatch queued jobs,
// loads the model snapshot once per batch, and classifies the whole
// drain through one PredictBatch frontier sweep over a pooled matrix,
// recording per-stage latencies per request.
func (e *Engine) runWorker(sh *shard) {
	defer e.workers.Done()
	batch := make([]job, 0, e.cfg.MaxBatch)
	ws := &batchScratch{}
	for {
		j, ok := <-sh.ch
		if !ok {
			return
		}
		batch = append(batch[:0], j)
	drain:
		for len(batch) < cap(batch) {
			select {
			case j2, ok := <-sh.ch:
				if !ok {
					break drain
				}
				batch = append(batch, j2)
			default:
				break drain
			}
		}
		sh.depth.Set(float64(len(sh.ch)))
		e.obs.batchSize.Observe(float64(len(batch)))
		m := e.model.Load()
		//lint:ignore virtclock serving measures real request latency; there is no virtual clock here
		dequeued := time.Now()
		e.processBatch(m, batch, ws, dequeued)
	}
}

// processBatch classifies one drained batch. Explain requests and the
// no-model case take the scalar path (process); everything else is
// normalized into the worker's pooled matrix and classified in a
// single batch sweep, whose cost is attributed evenly across the
// batched requests' predict-stage latencies.
func (e *Engine) processBatch(m *Model, batch []job, ws *batchScratch, dequeued time.Time) {
	if m == nil {
		for i := range batch {
			e.process(m, &batch[i], &ws.row, &ws.acc, dequeued)
		}
		return
	}
	if ws.model != m {
		// First batch against a fresh snapshot: rebuild the pooled matrix
		// for its schema. Happens once per reload per worker.
		ws.model = m
		ws.mat = m.bp.NewMatrix(cap(batch))
		ws.fill = make([]float64, len(m.plan))
	}
	ws.mat.Reset()
	ws.jobs, ws.queueD, ws.normD = ws.jobs[:0], ws.queueD[:0], ws.normD[:0]
	for i := range batch {
		e.prep(m, &batch[i], ws, dequeued)
	}
	n := len(ws.jobs)
	if n == 0 {
		return
	}
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	t0 := time.Now()
	errMsg := e.predictBatch(m, ws)
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	predD := time.Since(t0)
	if errMsg != "" {
		for bi, j := range ws.jobs {
			e.failBatched(j, ws.queueD[bi], errMsg)
		}
		return
	}
	share := predD / time.Duration(n)
	for bi, j := range ws.jobs {
		e.finish(m, j, int(ws.idx[bi]), ws.queueD[bi], ws.normD[bi], share)
	}
}

// prep runs one job's pre-classification stages — timeout and validity
// checks, fault injection, normalization — and appends the normalized
// row to the worker's pooled matrix. Jobs that fail a check are
// answered immediately; jobs that ask for an explanation fall back to
// the scalar path, which records the traversal. A panic (e.g. from
// InjectFault) is recovered per-job exactly as on the scalar path.
func (e *Engine) prep(m *Model, j *job, ws *batchScratch, dequeued time.Time) {
	if j.req.Explain {
		e.process(m, j, &ws.row, &ws.acc, dequeued)
		return
	}
	defer func() {
		if r := recover(); r != nil {
			j.res.ID = j.req.ID
			j.res.Err = fmt.Sprintf("internal error: recovered panic: %v", r)
			e.obs.panics.Inc()
			e.obs.errs.Inc()
			e.complete(j)
		}
	}()
	queueD := dequeued.Sub(j.enq)
	fail := func(msg string) {
		e.obs.queueHist.Observe(queueD.Seconds())
		j.res.ID = j.req.ID
		j.res.Err = msg
		e.obs.errs.Inc()
		e.complete(j)
	}
	if d := e.cfg.RequestTimeout; d > 0 && queueD > d {
		e.obs.timeouts.Inc()
		fail(fmt.Sprintf("request timed out after %v in queue (limit %v)", queueD, d))
		return
	}
	if err := ValidateFeatures(j.req.Features); err != nil {
		e.obs.invalid.Inc()
		fail(err.Error())
		return
	}
	if f := e.cfg.InjectFault; f != nil {
		if err := f(&j.req); err != nil {
			fail(err.Error())
			return
		}
	}
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	t0 := time.Now()
	m.fillRow(metrics.Vector(j.req.Features), ws.fill)
	ws.mat.AppendRowValues(ws.fill)
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	ws.normD = append(ws.normD, time.Since(t0))
	ws.queueD = append(ws.queueD, queueD)
	ws.jobs = append(ws.jobs, j)
}

// predictBatch runs the frontier sweep over the pooled matrix. A panic
// is recovered here so a poisoned batch fails its requests instead of
// killing the shard worker; the returned message is empty on success.
func (e *Engine) predictBatch(m *Model, ws *batchScratch) (errMsg string) {
	defer func() {
		if r := recover(); r != nil {
			e.obs.panics.Inc()
			errMsg = fmt.Sprintf("internal error: recovered panic: %v", r)
		}
	}()
	rows := ws.mat.Rows()
	if cap(ws.idx) < rows {
		ws.idx = make([]int32, rows)
	}
	ws.idx = ws.idx[:rows]
	m.bp.PredictBatchIdx(ws.mat, &ws.bs, ws.idx)
	return ""
}

// failBatched answers one batched job after the batch sweep failed.
func (e *Engine) failBatched(j *job, queueD time.Duration, msg string) {
	e.obs.queueHist.Observe(queueD.Seconds())
	j.res.ID = j.req.ID
	j.res.Err = msg
	e.obs.errs.Inc()
	e.complete(j)
}

// finish writes one batched job's successful result and records its
// stage latencies and trace spans, mirroring the scalar path. predD is
// this request's even share of the batch sweep's duration.
func (e *Engine) finish(m *Model, j *job, cls int, queueD, normD, predD time.Duration) {
	label := m.bp.Classes()[cls]
	sev, cause := ParseClass(label)
	*j.res = Result{ID: j.req.ID, Class: label, Severity: sev, Cause: cause}
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	totalD := time.Since(j.enq)

	if tr := e.cfg.Tracer; tr.Enabled() {
		end := tr.Now()
		reqID := tr.RecordSpan("serve", "request", "id="+j.req.ID+" class="+label, 0, end-totalD, totalD)
		tr.RecordSpan("serve", "queue", "", reqID, end-totalD, queueD)
		tr.RecordSpan("serve", "normalize", "", reqID, end-normD-predD, normD)
		tr.RecordSpan("serve", "predict", "", reqID, end-predD, predD)
		tid := strconv.FormatUint(uint64(reqID), 16)
		j.res.TraceID = tid
		e.obs.queueHist.ObserveExemplar(queueD.Seconds(), tid)
		e.obs.normHist.ObserveExemplar(normD.Seconds(), tid)
		e.obs.predHist.ObserveExemplar(predD.Seconds(), tid)
		e.obs.totalHist.ObserveExemplar(totalD.Seconds(), tid)
	} else {
		e.obs.queueHist.Observe(queueD.Seconds())
		e.obs.normHist.Observe(normD.Seconds())
		e.obs.predHist.Observe(predD.Seconds())
		e.obs.totalHist.Observe(totalD.Seconds())
	}
	e.obs.requests.Inc()
	e.complete(j)
}

// complete invokes the job's done callback, swallowing a panic from
// the caller's code: the job's accounting already stands, and the
// worker must survive.
func (e *Engine) complete(j *job) {
	defer func() {
		if r := recover(); r != nil {
			e.obs.panics.Inc()
		}
	}()
	j.done()
}

// process classifies one job against the snapshot m, reusing the
// worker-local row and accumulator scratch. dequeued is when the
// worker pulled the job's batch off the shard queue.
//
// A panic anywhere in classification (or in the caller's done callback)
// is recovered here and surfaced as a per-request error: one poisoned
// request must never kill a shard worker, which would strand every
// later job hashed to that shard and hang Close.
func (e *Engine) process(m *Model, j *job, row, acc *[]float64, dequeued time.Time) {
	counted := false // whether requests/errs already accounts for this job
	defer func() {
		if r := recover(); r != nil {
			// Panic escaped from j.done() after the job itself completed:
			// swallow it so the worker lives; the job's accounting stands.
			e.obs.panics.Inc()
		}
	}()
	defer j.done()
	defer func() {
		if r := recover(); r != nil {
			j.res.ID = j.req.ID
			j.res.Err = fmt.Sprintf("internal error: recovered panic: %v", r)
			e.obs.panics.Inc()
			if !counted {
				e.obs.errs.Inc()
			}
		}
	}()
	queueD := dequeued.Sub(j.enq)
	fail := func(msg string) {
		e.obs.queueHist.Observe(queueD.Seconds())
		j.res.ID = j.req.ID
		j.res.Err = msg
		e.obs.errs.Inc()
		counted = true
	}
	if m == nil {
		fail("no model loaded")
		return
	}
	if d := e.cfg.RequestTimeout; d > 0 && queueD > d {
		e.obs.timeouts.Inc()
		fail(fmt.Sprintf("request timed out after %v in queue (limit %v)", queueD, d))
		return
	}
	if err := ValidateFeatures(j.req.Features); err != nil {
		e.obs.invalid.Inc()
		fail(err.Error())
		return
	}
	if f := e.cfg.InjectFault; f != nil {
		if err := f(&j.req); err != nil {
			fail(err.Error())
			return
		}
	}
	if j.req.Explain && m.tree == nil {
		fail(errExplainForest)
		return
	}
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	t0 := time.Now()
	if len(*row) != len(m.plan) {
		*row = make([]float64, len(m.plan))
	}
	if len(*acc) != len(m.bp.Classes()) {
		*acc = make([]float64, len(m.bp.Classes()))
	}
	m.fillRow(metrics.Vector(j.req.Features), *row)
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	t1 := time.Now()
	normD := t1.Sub(t0)

	var cls string
	var exp *c45.Explanation
	switch {
	case j.req.Explain:
		exp = m.tree.PredictRowExplain(*row)
		cls = exp.Class
	case m.tree != nil:
		cls = m.tree.PredictRowInto(*row, *acc)
	default:
		cls = m.bp.PredictRow(*row)
	}
	//lint:ignore virtclock stage timings for /metrics histograms are wall time by design
	t2 := time.Now()
	predD := t2.Sub(t1)
	totalD := t2.Sub(j.enq)

	sev, cause := ParseClass(cls)
	*j.res = Result{ID: j.req.ID, Class: cls, Severity: sev, Cause: cause, Explain: exp}
	if exp != nil {
		j.res.Rule = exp.Rule()
	}

	if tr := e.cfg.Tracer; tr.Enabled() {
		// The engine measures stages with its own monotonic stopwatch;
		// anchor the spans on the tracer clock ending now.
		end := tr.Now()
		reqID := tr.RecordSpan("serve", "request", "id="+j.req.ID+" class="+cls, 0, end-totalD, totalD)
		tr.RecordSpan("serve", "queue", "", reqID, end-totalD, queueD)
		tr.RecordSpan("serve", "normalize", "", reqID, end-normD-predD, normD)
		tr.RecordSpan("serve", "predict", "", reqID, end-predD, predD)
		tid := strconv.FormatUint(uint64(reqID), 16)
		j.res.TraceID = tid
		e.obs.queueHist.ObserveExemplar(queueD.Seconds(), tid)
		e.obs.normHist.ObserveExemplar(normD.Seconds(), tid)
		e.obs.predHist.ObserveExemplar(predD.Seconds(), tid)
		e.obs.totalHist.ObserveExemplar(totalD.Seconds(), tid)
	} else {
		e.obs.queueHist.Observe(queueD.Seconds())
		e.obs.normHist.Observe(normD.Seconds())
		e.obs.predHist.Observe(predD.Seconds())
		e.obs.totalHist.Observe(totalD.Seconds())
	}
	e.obs.requests.Inc()
	counted = true
}

// obs bundles the engine's metric handles; names are documented in
// docs/SERVING.md.
//
// Accounting invariant (checked by internal/chaos and vqserve's drain):
// once the engine is drained, submitted == requests + errs. Shed
// requests never enter the pipeline and are counted only in shed.
type obs struct {
	requests, shed, errs, reloads *metrics.Counter
	submitted, panics, timeouts   *metrics.Counter
	invalid, retries, reloadFails *metrics.Counter
	inflight                      *metrics.Gauge
	modelNodes, modelTrees        *metrics.Gauge
	modelLoad                     *metrics.Gauge
	queueHist, normHist, predHist *metrics.Histogram
	totalHist, batchSize          *metrics.Histogram
}

func newObs(reg *metrics.Registry) *obs {
	stage := func(s string) *metrics.Histogram {
		return reg.Histogram(fmt.Sprintf("vqserve_stage_latency_seconds{stage=%q}", s),
			"per-stage request latency", metrics.LatencyBuckets)
	}
	return &obs{
		requests:    reg.Counter("vqserve_requests_total", "requests classified"),
		shed:        reg.Counter("vqserve_shed_total", "requests rejected by the shed policy"),
		errs:        reg.Counter("vqserve_errors_total", "requests that failed to classify"),
		reloads:     reg.Counter("vqserve_model_reloads_total", "model hot reloads"),
		submitted:   reg.Counter("vqserve_submitted_total", "requests accepted into a shard queue"),
		panics:      reg.Counter("vqserve_panics_recovered_total", "worker panics recovered"),
		timeouts:    reg.Counter("vqserve_timeouts_total", "requests expired in queue past RequestTimeout"),
		invalid:     reg.Counter("vqserve_invalid_total", "requests rejected for non-finite feature values"),
		retries:     reg.Counter("vqserve_retries_total", "shed requests re-submitted with backoff"),
		reloadFails: reg.Counter("vqserve_reload_failures_total", "model reload attempts that failed (engine degraded)"),
		inflight:    reg.Gauge("vqserve_inflight", "requests currently in the pipeline"),
		modelNodes:  reg.Gauge("vqserve_model_nodes", "compiled nodes in the serving model"),
		modelTrees:  reg.Gauge("vqserve_model_trees", "trees in the serving model (1 = single tree)"),
		modelLoad:   reg.Gauge("vqserve_model_load_seconds", "how long loading the serving model took"),
		queueHist:   stage("queue"),
		normHist:    stage("normalize"),
		predHist:    stage("predict"),
		totalHist:   stage("total"),
		batchSize: reg.Histogram("vqserve_batch_size", "jobs drained per worker wakeup",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
	}
}

package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vqprobe/internal/features"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/trace"
)

// testModelWithTree is testModel keeping the interpreted tree and the
// normalizer, so explain output can be cross-checked against the
// reference evaluator.
func testModelWithTree(t testing.TB) (*Model, *c45.Tree, *features.Normalizer) {
	t.Helper()
	var insts []ml.Instance
	for rtt := 10.0; rtt <= 200; rtt += 10 {
		for loss := 0.0; loss <= 10; loss++ {
			cls := "good"
			if rtt > 100 {
				if loss > 5 {
					cls = "lan_cong_severe"
				} else {
					cls = "lan_cong_mild"
				}
			}
			insts = append(insts, ml.Instance{
				Features: metrics.Vector{"mobile.rtt": rtt, "mobile.loss": loss},
				Class:    cls,
			})
		}
	}
	d := ml.NewDataset(insts)
	constructed, norm := features.Construct(d)
	tree := c45.Default().TrainTree(constructed)
	ct, err := c45.Compile(tree)
	if err != nil {
		t.Fatal(err)
	}
	return NewModel("exact", norm, ct), tree, norm
}

// TestHTTPDiagnoseExplain pins the acceptance criterion at the HTTP
// surface: a /diagnose request with "explain":true returns the node
// path, and that path is byte-identical to what the interpreted tree
// produces for the same (normalized) vector. Lines without the flag
// stay explain-free, so the default response shape is unchanged.
func TestHTTPDiagnoseExplain(t *testing.T) {
	m, tree, norm := testModelWithTree(t)
	eng := NewEngine(m, Config{Shards: 2})
	defer eng.Close()
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	body := `{"id":"s1","features":{"mobile.rtt":150,"mobile.loss":7},"explain":true}` + "\n" +
		`{"id":"s2","features":{"mobile.rtt":50,"mobile.loss":0}}` + "\n"
	resp, err := http.Post(srv.URL+"/diagnose", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var results []Result
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	r1, r2 := results[0], results[1]
	if r1.Class != "lan_cong_severe" || r1.Explain == nil || r1.Rule == "" {
		t.Fatalf("explain result incomplete: %+v", r1)
	}
	if len(r1.Explain.Path) == 0 {
		t.Fatal("explain path empty")
	}
	if r1.Explain.Class != r1.Class {
		t.Fatalf("explain class %q != result class %q", r1.Explain.Class, r1.Class)
	}
	if !strings.HasPrefix(r1.Rule, "root cause = lan_cong_severe because ") {
		t.Fatalf("rule rendering wrong: %q", r1.Rule)
	}
	if r2.Explain != nil || r2.Rule != "" {
		t.Fatalf("explain leaked into a request that did not ask: %+v", r2)
	}

	// Byte-identity against the interpreted tree: normalize the raw
	// vector the same way the model does, explain with the pointer
	// tree, compare JSON.
	want := tree.PredictExplain(norm.ApplyVector(metrics.Vector(fv(150, 7))))
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(r1.Explain)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("served explain diverges from interpreted tree\nserved:      %s\ninterpreted: %s", gb, wb)
	}
}

// TestServeTracing covers the request-span pipeline: span per request
// with queue/normalize/predict children, trace IDs on results, the
// /debug/trace dump endpoint, and exemplar attachment on the stage
// histograms (OpenMetrics only).
func TestServeTracing(t *testing.T) {
	tr := trace.New(trace.Config{Capacity: 1024})
	eng := NewEngine(testModel(t, "lan_cong_severe"), Config{Shards: 2, Tracer: tr})
	defer eng.Close()
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	res := eng.DiagnoseBatch([]Request{
		{ID: "a", Features: fv(150, 7)},
		{ID: "b", Features: fv(30, 0)},
	})
	for _, r := range res {
		if r.Err != "" {
			t.Fatalf("request failed: %+v", r)
		}
		if r.TraceID == "" {
			t.Fatalf("traced engine returned no trace ID: %+v", r)
		}
	}

	// Every request must have recorded a request span plus the three
	// stage children, parented correctly.
	spans := map[trace.SpanID]trace.Event{}
	children := map[trace.SpanID][]string{}
	var requests int
	for _, ev := range tr.Events() {
		spans[ev.ID] = ev
		if ev.Name == "request" {
			requests++
		}
		if ev.Parent != 0 {
			children[ev.Parent] = append(children[ev.Parent], ev.Name)
		}
	}
	if requests != 2 {
		t.Fatalf("recorded %d request spans, want 2", requests)
	}
	for id, ev := range spans {
		if ev.Name != "request" {
			continue
		}
		got := strings.Join(children[id], ",")
		for _, stage := range []string{"queue", "normalize", "predict"} {
			if !strings.Contains(got, stage) {
				t.Errorf("request span %d missing %s child (has %q)", id, stage, got)
			}
		}
	}

	// /debug/trace default output is Chrome trace JSON.
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("/debug/trace not valid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/debug/trace returned no events")
	}

	// NDJSON variant.
	resp, err = http.Get(srv.URL + "/debug/trace?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(raw, []byte(`"name":"request"`)) {
		t.Fatalf("NDJSON dump missing request spans: %.200s", raw)
	}

	// Exemplars: OpenMetrics output carries trace IDs, the default
	// 0.0.4 output stays exemplar-free.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(resp.Header.Get("Content-Type"), "openmetrics") {
		t.Errorf("OpenMetrics content type not negotiated: %q", resp.Header.Get("Content-Type"))
	}
	if !bytes.Contains(om, []byte(`# {trace_id="`)) {
		t.Error("OpenMetrics exposition has no exemplars")
	}
	if !bytes.HasSuffix(bytes.TrimRight(om, "\n"), []byte("# EOF")) {
		t.Error("OpenMetrics exposition missing # EOF")
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if bytes.Contains(plain, []byte("trace_id")) {
		t.Error("default 0.0.4 exposition leaked exemplars")
	}
}

// TestUntracedEngineHasNoTraceSurface pins the disabled default: no
// trace IDs on results and no /debug/trace endpoint.
func TestUntracedEngineHasNoTraceSurface(t *testing.T) {
	eng := NewEngine(testModel(t, "lan_cong_severe"), Config{Shards: 1})
	defer eng.Close()
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	res := eng.DiagnoseBatch([]Request{{ID: "a", Features: fv(150, 7)}})
	if res[0].TraceID != "" {
		t.Fatalf("untraced engine set a trace ID: %+v", res[0])
	}
	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/trace = %d without a tracer, want 404", resp.StatusCode)
	}
}

// TestMetricsConcurrentScrapeReload hammers /metrics (both formats)
// while requests flow and the model hot-reloads, under -race in CI.
// Afterwards the exposition must still parse and count every request.
func TestMetricsConcurrentScrapeReload(t *testing.T) {
	tr := trace.New(trace.Config{Capacity: 4096})
	eng := NewEngine(testModel(t, "lan_cong_severe"), Config{Shards: 4, Tracer: tr})
	defer eng.Close()
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	const (
		writers  = 4
		scrapers = 4
		rounds   = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				eng.DiagnoseBatch([]Request{
					{ID: "w", Features: fv(150, 7), Explain: i%2 == 0},
				})
				if i%10 == 0 {
					eng.Reload(testModel(t, "lan_cong_severe"))
				}
			}
		}(g)
	}
	for g := 0; g < scrapers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				url := srv.URL + "/metrics"
				req, _ := http.NewRequest(http.MethodGet, url, nil)
				if g%2 == 0 {
					req.Header.Set("Accept", "application/openmetrics-text")
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("scrape failed: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := metricValue(t, string(body), "vqserve_requests_total"); got != writers*rounds {
		t.Fatalf("vqserve_requests_total = %v, want %d", got, writers*rounds)
	}
}

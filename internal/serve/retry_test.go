package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRetryDelayBounds pins the jitter contract: every delay lands in
// the upper half of the attempt's window, the window doubles from the
// base, and it saturates at the cap no matter how many attempts run.
func TestRetryDelayBounds(t *testing.T) {
	const base, cap = time.Millisecond, 16 * time.Millisecond
	for seed := uint64(1); seed < 50; seed++ {
		window := base
		for attempt := 0; attempt < 30; attempt++ {
			d := retryDelay(seed, attempt, base, cap)
			if d < window/2 || d > window {
				t.Fatalf("seed=%d attempt=%d: delay %v outside [%v, %v]", seed, attempt, d, window/2, window)
			}
			if d > cap {
				t.Fatalf("seed=%d attempt=%d: delay %v exceeds cap %v", seed, attempt, d, cap)
			}
			if window < cap {
				window *= 2
			}
			if window > cap {
				window = cap
			}
		}
	}
}

// TestRetryDelayDeterministic: the delay is a pure function of
// (seed, attempt) — same inputs, same schedule, so a failing retry
// interleaving replays exactly from its seed.
func TestRetryDelayDeterministic(t *testing.T) {
	for attempt := 0; attempt < 10; attempt++ {
		a := retryDelay(42, attempt, time.Millisecond, 16*time.Millisecond)
		b := retryDelay(42, attempt, time.Millisecond, 16*time.Millisecond)
		if a != b {
			t.Fatalf("attempt %d: same seed gave %v then %v", attempt, a, b)
		}
	}
}

// TestRetryDelayDegenerateInputs: zero or inverted base/cap inputs
// must still produce a positive, bounded delay, never a panic or a
// zero-length busy loop.
func TestRetryDelayDegenerateInputs(t *testing.T) {
	cases := []struct{ base, max time.Duration }{
		{0, 0},
		{0, time.Millisecond},
		{time.Millisecond, 0}, // cap below base: clamps up to base
		{time.Second, time.Millisecond},
	}
	for _, c := range cases {
		for attempt := 0; attempt < 5; attempt++ {
			d := retryDelay(9, attempt, c.base, c.max)
			if d <= 0 {
				t.Fatalf("base=%v max=%v attempt=%d: non-positive delay %v", c.base, c.max, attempt, d)
			}
			if d > time.Second {
				t.Fatalf("base=%v max=%v attempt=%d: delay %v above every input", c.base, c.max, attempt, d)
			}
		}
	}
}

// wedgedEngine builds an engine whose single shard is saturated: the
// worker is wedged on the gate channel and both queue slots are full,
// so every further Submit sheds deterministically until the gate opens.
// The returned WaitGroup is done when both filler jobs complete.
func wedgedEngine(t *testing.T, cfg Config) (e *Engine, gate chan struct{}, fillers *sync.WaitGroup) {
	t.Helper()
	gate = make(chan struct{})
	wedged := make(chan struct{}, 2)
	cfg.Shards, cfg.QueueDepth, cfg.MaxBatch, cfg.Policy = 1, 1, 1, Shed
	cfg.InjectFault = func(r *Request) error {
		if strings.HasPrefix(r.ID, "filler") {
			wedged <- struct{}{}
			<-gate
		}
		return nil
	}
	e = NewEngine(testModel(t, "lan_cong_severe"), cfg)
	fillers = &sync.WaitGroup{}
	var res [2]Result
	for i := 0; i < 2; i++ {
		fillers.Add(1)
		if err := e.Submit(Request{ID: fmt.Sprintf("filler%d", i), Features: fv(50, 0)}, &res[i], fillers.Done); err != nil {
			t.Fatalf("filler %d rejected: %v", i, err)
		}
		if i == 0 {
			<-wedged // the worker holds filler0; the queue slot is free again
		}
	}
	return e, gate, fillers
}

// recordSleeps replaces the engine's backoff pause with a recorder, so
// a test can assert the exact schedule without waiting it out.
func recordSleeps(e *Engine) (schedule *[]time.Duration, mu *sync.Mutex) {
	var s []time.Duration
	var m sync.Mutex
	e.sleep = func(d time.Duration) {
		m.Lock()
		s = append(s, d)
		m.Unlock()
	}
	return &s, &m
}

// TestRetrySchedulesDesynchronized is the retry-storm regression: two
// engines under identical shed pressure must not sleep on identical
// schedules. Before the seeded jitter, both slept exactly
// 1ms, 2ms, 4ms, ... — so every client that shed together retried
// together, re-saturating the queue in synchronized waves.
func TestRetrySchedulesDesynchronized(t *testing.T) {
	run := func() []time.Duration {
		e, gate, fillers := wedgedEngine(t, Config{RetryMax: 6, RetryBackoff: time.Millisecond})
		sched, mu := recordSleeps(e)
		res := e.DiagnoseBatch([]Request{{ID: "victim", Features: fv(50, 0)}})
		if !strings.Contains(res[0].Err, ErrOverloaded.Error()) {
			t.Fatalf("saturated engine answered %+v, want shed", res[0])
		}
		close(gate)
		fillers.Wait()
		e.Close()
		mu.Lock()
		defer mu.Unlock()
		return append([]time.Duration(nil), (*sched)...)
	}
	a, b := run(), run()
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("want 6 backoff pauses per engine, got %d and %d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("two engines slept on the identical schedule %v — retries are in lockstep", a)
	}
}

// TestRetryScheduleReproducible: pinning RetrySeed makes one engine's
// schedule replayable — the desynchronization is seeded, not random.
func TestRetryScheduleReproducible(t *testing.T) {
	run := func() []time.Duration {
		e, gate, fillers := wedgedEngine(t, Config{RetryMax: 4, RetryBackoff: time.Millisecond, RetrySeed: 99})
		sched, mu := recordSleeps(e)
		e.DiagnoseBatch([]Request{{ID: "victim", Features: fv(50, 0)}})
		close(gate)
		fillers.Wait()
		e.Close()
		mu.Lock()
		defer mu.Unlock()
		return append([]time.Duration(nil), (*sched)...)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no backoff pauses recorded")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same RetrySeed produced different schedules:\n%v\n%v", a, b)
	}
}

// TestRetryBackoffCapped: the recorded schedule never exceeds
// RetryBackoffMax even when the doubling would overshoot it.
func TestRetryBackoffCapped(t *testing.T) {
	const cap = 4 * time.Millisecond
	e, gate, fillers := wedgedEngine(t, Config{RetryMax: 12, RetryBackoff: time.Millisecond, RetryBackoffMax: cap})
	sched, mu := recordSleeps(e)
	e.DiagnoseBatch([]Request{{ID: "victim", Features: fv(50, 0)}})
	close(gate)
	fillers.Wait()
	e.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(*sched) != 12 {
		t.Fatalf("want 12 pauses, got %d", len(*sched))
	}
	for i, d := range *sched {
		if d > cap {
			t.Fatalf("pause %d = %v exceeds RetryBackoffMax %v", i, d, cap)
		}
	}
}

// TestBatchRetryNonBlocking is the head-of-line-blocking regression:
// DiagnoseBatch must submit every row before retrying the shed ones,
// with one shared backoff per retry round. A batch of N shed rows
// therefore pauses at most RetryMax times — the old per-row
// synchronous retry slept up to N×RetryMax times, serially, on the
// submission loop.
func TestBatchRetryNonBlocking(t *testing.T) {
	const rows, retryMax = 10, 3
	e, gate, fillers := wedgedEngine(t, Config{RetryMax: retryMax, RetryBackoff: time.Millisecond})
	sched, mu := recordSleeps(e)
	var reqs []Request
	for i := 0; i < rows; i++ {
		reqs = append(reqs, Request{ID: fmt.Sprintf("r%d", i), Features: fv(50, 0)})
	}
	res := e.DiagnoseBatch(reqs)
	for i, r := range res {
		if !strings.Contains(r.Err, ErrOverloaded.Error()) {
			t.Fatalf("row %d on a saturated engine answered %+v, want shed", i, r)
		}
	}
	close(gate)
	fillers.Wait()
	e.Close()
	mu.Lock()
	pauses := len(*sched)
	mu.Unlock()
	if pauses != retryMax {
		t.Fatalf("%d-row shed batch paused %d times, want one per retry round (%d)", rows, pauses, retryMax)
	}
	if got := e.obs.retries.Value(); got != rows*retryMax {
		t.Errorf("retries counter %d, want %d (every shed row re-submitted each round)", got, rows*retryMax)
	}
	submitted, requests, errs, _ := e.Counters()
	if submitted != requests+errs {
		t.Errorf("accounting imbalance: submitted=%d classified=%d errors=%d", submitted, requests, errs)
	}
}

// TestBatchOneShedRowOneBackoff pins the satellite case end to end: a
// batch with one shed row completes after ~one backoff. The recorder
// doubles as the recovery trigger — the first pause opens the gate and
// waits for the queue to drain, so the single retry deterministically
// succeeds.
func TestBatchOneShedRowOneBackoff(t *testing.T) {
	e, gate, fillers := wedgedEngine(t, Config{RetryMax: 5, RetryBackoff: time.Millisecond})
	var pauses int
	e.sleep = func(time.Duration) {
		pauses++
		if pauses == 1 {
			close(gate)
			fillers.Wait() // queue drained: the retry must now land
		}
	}
	res := e.DiagnoseBatch([]Request{{ID: "victim", Features: fv(50, 0)}})
	if res[0].Err != "" || res[0].Class == "" {
		t.Fatalf("shed row did not classify after recovery: %+v", res[0])
	}
	if pauses != 1 {
		t.Fatalf("one recoverable shed row took %d backoffs, want 1", pauses)
	}
	e.Close()
	submitted, requests, errs, _ := e.Counters()
	if submitted != requests+errs {
		t.Errorf("accounting imbalance: submitted=%d classified=%d errors=%d", submitted, requests, errs)
	}
}

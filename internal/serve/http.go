package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// maxLine bounds one NDJSON request line (1 MiB).
const maxLine = 1 << 20

// Handler returns the engine's HTTP surface:
//
//	GET  /healthz   liveness + model summary (503 until a model is loaded)
//	GET  /metrics   Prometheus text exposition
//	POST /diagnose  NDJSON batch: one {"id","features"} object per line
//	                (add "explain":true for the decision path), one
//	                result object per line, input order preserved
//	POST /-/reload  re-run Config.ReloadFunc and hot-swap the model
//
// When Config.Tracer is set, GET /debug/trace dumps the span ring
// buffer — Chrome trace_event JSON by default (load it in Perfetto),
// NDJSON with ?format=ndjson.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", e.reg.Handler())
	mux.HandleFunc("/healthz", e.handleHealthz)
	mux.HandleFunc("/diagnose", e.handleDiagnose)
	mux.HandleFunc("/-/reload", e.handleReload)
	if e.cfg.Tracer != nil {
		mux.HandleFunc("/debug/trace", e.handleTrace)
	}
	return mux
}

func (e *Engine) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := e.cfg.Tracer
	if r.URL.Query().Get("format") == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		// Mid-response write errors mean the client hung up; the status
		// line is already gone, so there is nothing useful to send back.
		_ = tr.WriteNDJSON(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = tr.WriteChromeTrace(w)
}

func (e *Engine) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m := e.model.Load()
	w.Header().Set("Content-Type", "application/json")
	if m == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "no model"})
		return
	}
	body := map[string]any{
		"status":   "ok",
		"task":     m.Task(),
		"features": len(m.Schema()),
		"classes":  len(m.Classes()),
		"model":    m.Info(),
		"shards":   len(e.shards),
		//lint:ignore virtclock daemon uptime for /healthz is wall time by design
		"uptime_seconds": int64(time.Since(e.start).Seconds()),
	}
	// A failed reload leaves the engine answering from the last-good
	// snapshot: alive (200) but degraded, and /healthz says why.
	if msg := e.LastReloadError(); msg != "" {
		body["status"] = "degraded"
		body["last_reload_error"] = msg
	}
	if f := e.cfg.AlertsFunc; f != nil {
		body["alerts"] = f()
	}
	json.NewEncoder(w).Encode(body)
}

func (e *Engine) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST NDJSON to /diagnose", http.StatusMethodNotAllowed)
		return
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), maxLine)

	// Decode every line first so one malformed line fails fast with a
	// per-line error instead of poisoning the whole batch.
	var (
		results []Result
		reqs    []Request
		slots   []int // result index per submitted request
		lineno  int   // true input line number, blank lines included
	)
	for sc.Scan() {
		lineno++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			results = append(results, Result{Err: fmt.Sprintf("line %d: %v", lineno, err)})
			continue
		}
		slots = append(slots, len(results))
		results = append(results, Result{})
		reqs = append(reqs, req)
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(results) == 0 {
		http.Error(w, "empty request body", http.StatusBadRequest)
		return
	}
	for i, res := range e.DiagnoseBatch(reqs) {
		results[slots[i]] = res
	}
	// The client may have hung up while the batch was in flight (the
	// server cancels the request context on disconnect). The engine
	// work is already done and accounted — results are simply not worth
	// serializing to a dead socket.
	if r.Context().Err() != nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := range results {
		// A write error means the client went away; stop encoding the
		// rest of the batch instead of churning through a dead socket.
		if err := enc.Encode(&results[i]); err != nil {
			return
		}
	}
}

func (e *Engine) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST to /-/reload", http.StatusMethodNotAllowed)
		return
	}
	if e.cfg.ReloadFunc == nil {
		http.Error(w, "no reload source configured", http.StatusNotImplemented)
		return
	}
	m, err := e.cfg.ReloadFunc()
	if err != nil {
		// Keep serving the last-good snapshot; /healthz turns degraded.
		e.NoteReloadError(err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	e.Reload(m)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"status": "reloaded", "features": len(m.Schema())})
}

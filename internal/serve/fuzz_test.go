package serve

// Fuzz target for the NDJSON ingest surface: arbitrary request bodies
// must never panic the handler or the engine behind it, and the
// response must stay well-formed NDJSON with one result per non-blank
// input line.

import (
	"bufio"
	"bytes"
	"net/http/httptest"
	"testing"
)

func FuzzDiagnoseNDJSON(f *testing.F) {
	m := testModel(f, "lan_cong_severe")
	e := NewEngine(m, Config{Shards: 2})
	f.Cleanup(func() { e.Close() })
	handler := e.Handler()

	f.Add([]byte(`{"id":"a","features":{"mobile.rtt":50,"mobile.loss":0}}` + "\n"))
	f.Add([]byte(`{"id":"a","features":{"mobile.rtt":1e999}}` + "\n"))
	f.Add([]byte("{}\n\n{}\n"))
	f.Add([]byte(`{"id":"a","features":{"mobile.rtt":"NaN"}}` + "\n"))
	f.Add([]byte(`{"id":"a","explain":true,"features":{}}` + "\n"))
	f.Add([]byte("\x00\xff\xfe\n{broken\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest("POST", "/diagnose", bytes.NewReader(body))
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)

		if rr.Code != 200 {
			return // rejected whole (empty body, oversized line, …) — fine
		}
		nonBlank := 0
		for _, line := range bytes.Split(body, []byte("\n")) {
			if len(line) > 0 {
				nonBlank++
			}
		}
		results := 0
		sc := bufio.NewScanner(bytes.NewReader(rr.Body.Bytes()))
		sc.Buffer(make([]byte, 64*1024), 1<<20)
		for sc.Scan() {
			results++
		}
		if results != nonBlank {
			t.Fatalf("%d result lines for %d non-blank input lines", results, nonBlank)
		}
	})
}

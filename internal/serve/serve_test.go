package serve

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vqprobe/internal/features"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
)

// testModel trains a small, fully separable model: good (rtt <= 100),
// lan_cong_mild (rtt > 100, loss <= 5), severeClass (rtt > 100,
// loss > 5). severeClass parameterizes the label so reload tests can
// tell two snapshots apart.
func testModel(t testing.TB, severeClass string) *Model {
	t.Helper()
	var insts []ml.Instance
	for rtt := 10.0; rtt <= 200; rtt += 10 {
		for loss := 0.0; loss <= 10; loss++ {
			cls := "good"
			if rtt > 100 {
				if loss > 5 {
					cls = severeClass
				} else {
					cls = "lan_cong_mild"
				}
			}
			insts = append(insts, ml.Instance{
				Features: metrics.Vector{"mobile.rtt": rtt, "mobile.loss": loss},
				Class:    cls,
			})
		}
	}
	d := ml.NewDataset(insts)
	constructed, norm := features.Construct(d)
	tree := c45.Default().TrainTree(constructed)
	ct, err := c45.Compile(tree)
	if err != nil {
		t.Fatal(err)
	}
	return NewModel("exact", norm, ct)
}

func fv(rtt, loss float64) map[string]float64 {
	return map[string]float64{"mobile.rtt": rtt, "mobile.loss": loss}
}

// TestFillRowMatchesApplyVector pins the serving fast path: the sparse
// per-plan normalization must be bit-identical to running the full
// Normalizer.ApplyVector and then predicting, across max-scaled
// features, ratio-normalized tcp counters, and missing values.
func TestFillRowMatchesApplyVector(t *testing.T) {
	var insts []ml.Instance
	rng := rand.New(rand.NewSource(5))
	mk := func() metrics.Vector {
		return metrics.Vector{
			"mobile.throughput_bps_avg":   rng.Float64() * 5e6,
			"mobile.tcp_c2s_retrans_pkts": float64(rng.Intn(50)),
			"mobile.tcp_total_pkts":       float64(100 + rng.Intn(900)),
			"mobile.rtt":                  rng.Float64() * 300,
		}
	}
	for i := 0; i < 300; i++ {
		fv := mk()
		cls := "good"
		if fv["mobile.tcp_c2s_retrans_pkts"]/fv["mobile.tcp_total_pkts"] > 0.03 {
			cls = "lan_cong_severe"
		} else if fv["mobile.rtt"] > 150 {
			cls = "wan_mild"
		}
		insts = append(insts, ml.Instance{Features: fv, Class: cls})
	}
	d := ml.NewDataset(insts)
	constructed, norm := features.Construct(d)
	tree := c45.Default().TrainTree(constructed)
	ct, err := c45.Compile(tree)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel("exact", norm, ct)
	for i := 0; i < 500; i++ {
		fv := mk()
		// Randomly drop keys to exercise missing values (including the
		// ratio divisor).
		for _, k := range fv.Names() {
			if rng.Intn(5) == 0 {
				delete(fv, k)
			}
		}
		want := ct.Predict(norm.ApplyVector(fv))
		if got := m.Diagnose(fv).Class; got != want {
			t.Fatalf("vector %d: fast path %q, full path %q (fv=%v)", i, got, want, fv)
		}
	}
}

func TestParseClass(t *testing.T) {
	cases := []struct{ cls, sev, cause string }{
		{"good", "good", "good"},
		{"problematic", "problematic", "unknown"},
		{"lan_cong_severe", "severe", "lan_cong"},
		{"wan_mild", "mild", "wan"},
		{"odd", "", "odd"},
	}
	for _, c := range cases {
		sev, cause := ParseClass(c.cls)
		if sev != c.sev || cause != c.cause {
			t.Errorf("ParseClass(%q) = (%q, %q), want (%q, %q)", c.cls, sev, cause, c.sev, c.cause)
		}
	}
}

func TestModelDiagnose(t *testing.T) {
	m := testModel(t, "lan_cong_severe")
	cases := []struct {
		rtt, loss float64
		class     string
	}{
		{20, 0, "good"},
		{180, 2, "lan_cong_mild"},
		{180, 9, "lan_cong_severe"},
	}
	for _, c := range cases {
		res := m.Diagnose(metrics.Vector(fv(c.rtt, c.loss)))
		if res.Class != c.class {
			t.Errorf("Diagnose(rtt=%g, loss=%g) = %q, want %q", c.rtt, c.loss, res.Class, c.class)
		}
	}
	if res := m.Diagnose(metrics.Vector(fv(180, 9))); res.Severity != "severe" || res.Cause != "lan_cong" {
		t.Errorf("severity/cause = %q/%q, want severe/lan_cong", res.Severity, res.Cause)
	}
}

func TestEngineDiagnoseBatch(t *testing.T) {
	e := NewEngine(testModel(t, "lan_cong_severe"), Config{Shards: 4, QueueDepth: 8})
	defer e.Close()
	var reqs []Request
	for i := 0; i < 100; i++ {
		rtt := float64(10 + (i%20)*10)
		reqs = append(reqs, Request{ID: fmt.Sprintf("s-%d", i), Features: fv(rtt, 0)})
	}
	res := e.DiagnoseBatch(reqs)
	if len(res) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(res), len(reqs))
	}
	for i, r := range res {
		if r.ID != reqs[i].ID {
			t.Fatalf("result %d has ID %q, want %q (order not preserved)", i, r.ID, reqs[i].ID)
		}
		want := "good"
		if reqs[i].Features["mobile.rtt"] > 100 {
			want = "lan_cong_mild"
		}
		if r.Class != want {
			t.Fatalf("result %d class %q, want %q", i, r.Class, want)
		}
	}
}

func TestEngineDrainOnClose(t *testing.T) {
	e := NewEngine(testModel(t, "lan_cong_severe"), Config{Shards: 2, QueueDepth: 512})
	const n = 500
	res := make([]Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		if err := e.Submit(Request{ID: fmt.Sprint(i), Features: fv(180, 9)}, &res[i], wg.Done); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i := range res {
		if res[i].Class != "lan_cong_severe" {
			t.Fatalf("request %d dropped on close: %+v", i, res[i])
		}
	}
	if _, err := e.Close(), e.Submit(Request{}, &Result{}, func() {}); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestEngineShedPolicy(t *testing.T) {
	e := NewEngine(testModel(t, "lan_cong_severe"), Config{
		Shards: 1, QueueDepth: 1, MaxBatch: 1, Policy: Shed,
	})
	defer e.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	var r1, r2 Result
	// Job 1 stalls the worker inside its completion callback.
	if err := e.Submit(Request{ID: "a", Features: fv(20, 0)}, &r1, func() {
		close(started)
		<-release
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	// Worker is stalled: job 2 fills the depth-1 queue, job 3 sheds.
	if err := e.Submit(Request{ID: "b", Features: fv(20, 0)}, &r2, wg.Done); err != nil {
		t.Fatal(err)
	}
	if err := e.Submit(Request{ID: "c", Features: fv(20, 0)}, &Result{}, func() {}); err != ErrOverloaded {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if got := e.Registry().Counter("vqserve_shed_total", "").Value(); got != 1 {
		t.Fatalf("vqserve_shed_total = %d, want 1", got)
	}
	close(release)
	wg.Wait()
	if r1.Class != "good" || r2.Class != "good" {
		t.Fatalf("queued jobs not processed: %+v %+v", r1, r2)
	}
}

func ndjson(reqs []Request) string {
	var b strings.Builder
	for _, r := range reqs {
		b.WriteString(fmt.Sprintf(`{"id":%q,"features":{"mobile.rtt":%g,"mobile.loss":%g}}`,
			r.ID, r.Features["mobile.rtt"], r.Features["mobile.loss"]))
		b.WriteByte('\n')
	}
	return b.String()
}

func TestHTTPDiagnose(t *testing.T) {
	e := NewEngine(testModel(t, "lan_cong_severe"), Config{Shards: 2})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	body := ndjson([]Request{
		{ID: "s1", Features: fv(20, 0)},
		{ID: "s2", Features: fv(180, 9)},
	}) + "not json\n"
	resp, err := http.Post(srv.URL+"/diagnose", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d response lines, want 3:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], `"class":"good"`) {
		t.Errorf("line 1 = %s, want class good", lines[0])
	}
	if !strings.Contains(lines[1], `"class":"lan_cong_severe"`) {
		t.Errorf("line 2 = %s, want class lan_cong_severe", lines[1])
	}
	if !strings.Contains(lines[2], `"error"`) {
		t.Errorf("line 3 = %s, want a per-line error", lines[2])
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", hz.StatusCode)
	}
}

// metricValue extracts the first sample value of a metric line matching
// the given prefix from a Prometheus exposition body.
func metricValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(prefix) + `\S*\s+(\S+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		t.Fatalf("metric %q not found in:\n%s", prefix, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestHotReloadRace is the acceptance stress test: concurrent /diagnose
// traffic while the model is hot-swapped must drop zero in-flight
// requests, and the per-stage histograms must be non-zero afterwards.
// Run with -race.
func TestHotReloadRace(t *testing.T) {
	modelA := testModel(t, "lan_cong_severe")
	modelB := testModel(t, "wan_severe")
	e := NewEngine(modelA, Config{Shards: 4, QueueDepth: 64})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	const (
		clients  = 6
		rounds   = 25
		perBatch = 20
	)
	stop := make(chan struct{})
	var reloader sync.WaitGroup
	reloader.Add(1)
	go func() {
		defer reloader.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				e.Reload(modelB)
			} else {
				e.Reload(modelA)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	var clientsWG sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		clientsWG.Add(1)
		go func(c int) {
			defer clientsWG.Done()
			var reqs []Request
			for i := 0; i < perBatch; i++ {
				reqs = append(reqs, Request{ID: fmt.Sprintf("c%d-%d", c, i), Features: fv(180, 9)})
			}
			body := ndjson(reqs)
			for r := 0; r < rounds; r++ {
				resp, err := http.Post(srv.URL+"/diagnose", "application/x-ndjson", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				lines := strings.Split(strings.TrimSpace(string(out)), "\n")
				if len(lines) != perBatch {
					errs <- fmt.Errorf("client %d round %d: %d lines, want %d", c, r, len(lines), perBatch)
					return
				}
				for _, l := range lines {
					// Either snapshot's answer is acceptable; a drop or error is not.
					if !strings.Contains(l, `"class":"lan_cong_severe"`) && !strings.Contains(l, `"class":"wan_severe"`) {
						errs <- fmt.Errorf("client %d round %d: unexpected line %s", c, r, l)
						return
					}
				}
			}
		}(c)
	}
	clientsWG.Wait()
	close(stop)
	reloader.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if got, want := metricValue(t, body, "vqserve_requests_total"), float64(clients*rounds*perBatch); got != want {
		t.Fatalf("vqserve_requests_total = %g, want %g (dropped requests)", got, want)
	}
	for _, stage := range []string{"queue", "normalize", "predict", "total"} {
		if v := metricValue(t, body, fmt.Sprintf(`vqserve_stage_latency_seconds_count{stage="%s"}`, stage)); v <= 0 {
			t.Errorf("stage %s histogram is empty", stage)
		}
	}
	if v := metricValue(t, body, "vqserve_model_reloads_total"); v <= 0 {
		t.Error("no reloads recorded")
	}
}

package serve

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"vqprobe/internal/features"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
)

// refResult computes the scalar-path reference answer for one request:
// what the engine must return regardless of sharding or batching.
func refResult(m *Model, req Request) Result {
	if err := ValidateFeatures(req.Features); err != nil {
		return Result{ID: req.ID, Err: err.Error()}
	}
	var r Result
	if req.Explain {
		r = m.DiagnoseExplain(metrics.Vector(req.Features))
	} else {
		r = m.Diagnose(metrics.Vector(req.Features))
	}
	r.ID = req.ID
	return r
}

// TestDiagnoseBatchWorkerInvariance pins the batched pipeline against
// the scalar reference across shard counts and batch sizes: every
// request — plain, explain, missing-feature, invalid — must come back
// identical whether it was classified alone or as one row of a pooled
// matrix sweep. Run with -race.
func TestDiagnoseBatchWorkerInvariance(t *testing.T) {
	m := testModel(t, "lan_cong_severe")

	var reqs []Request
	for i := 0; i < 64; i++ {
		reqs = append(reqs, Request{
			ID:       "s" + string(rune('a'+i%26)),
			Features: fv(float64(10+i*3), float64(i%11)),
			Explain:  i%7 == 0,
		})
	}
	reqs = append(reqs,
		Request{ID: "missing", Features: map[string]float64{"mobile.rtt": 150}},
		Request{ID: "empty", Features: map[string]float64{}},
		Request{ID: "nan", Features: map[string]float64{"mobile.rtt": math.NaN()}},
		Request{ID: "inf", Features: map[string]float64{"mobile.loss": math.Inf(1)}},
	)
	want := make([]Result, len(reqs))
	for i, req := range reqs {
		want[i] = refResult(m, req)
	}

	for _, cfg := range []Config{
		{Shards: 1, MaxBatch: 1},
		{Shards: 3, MaxBatch: 4},
		{Shards: 8, MaxBatch: 32},
	} {
		e := NewEngine(m, cfg)
		got := e.DiagnoseBatch(reqs)
		e.Close()
		for i := range got {
			gb, _ := json.Marshal(got[i])
			wb, _ := json.Marshal(want[i])
			if string(gb) != string(wb) {
				t.Fatalf("shards=%d maxbatch=%d request %d diverged from scalar reference\ngot:  %s\nwant: %s",
					cfg.Shards, cfg.MaxBatch, i, gb, wb)
			}
		}
		sub, reqd, errs, _ := e.Counters()
		if sub != reqd+errs {
			t.Fatalf("shards=%d maxbatch=%d accounting broken: submitted=%d requests=%d errs=%d",
				cfg.Shards, cfg.MaxBatch, sub, reqd, errs)
		}
	}
}

// panicPredictor poisons the batch sweep itself: prep succeeds, then
// PredictBatchIdx panics. The scalar entry points stay healthy so only
// the worker's batch-path recovery is on trial.
type panicPredictor struct {
	sweeps atomic.Int64
}

func (p *panicPredictor) Schema() []string              { return []string{"mobile.rtt"} }
func (p *panicPredictor) Classes() []string             { return []string{"good"} }
func (p *panicPredictor) Nodes() int                    { return 1 }
func (p *panicPredictor) Trees() int                    { return 1 }
func (p *panicPredictor) Predict(metrics.Vector) string { return "good" }
func (p *panicPredictor) PredictRow([]float64) string   { return "good" }
func (p *panicPredictor) NewMatrix(capacity int) *c45.Matrix {
	return c45.NewMatrix([]string{"mobile.rtt"}, capacity)
}
func (p *panicPredictor) PredictBatchIdx(*c45.Matrix, *c45.BatchScratch, []int32) {
	p.sweeps.Add(1)
	panic("poisoned batch sweep")
}
func (p *panicPredictor) PredictBatch(*c45.Matrix, []string) []string {
	panic("poisoned batch sweep")
}

// TestBatchSweepPanicRecovered pins the batch-path recovery added with
// the pooled-matrix pipeline: a panic inside PredictBatchIdx must fail
// every request of that sweep with a recovered-panic error, trip the
// PR-5 panic counter, keep the accounting invariant, and leave the
// shard workers alive to serve the next (healthy) model.
func TestBatchSweepPanicRecovered(t *testing.T) {
	stub := &panicPredictor{}
	bad := NewBatchModel("exact", nil, stub)
	e := NewEngine(bad, Config{Shards: 2, MaxBatch: 8})
	defer e.Close()

	var reqs []Request
	for i := 0; i < 12; i++ {
		reqs = append(reqs, Request{ID: "p", Features: fv(50, 1)})
	}
	res := e.DiagnoseBatch(reqs)
	for i, r := range res {
		if !strings.Contains(r.Err, "recovered panic") {
			t.Fatalf("result %d not failed by sweep panic: %+v", i, r)
		}
	}
	if got := stub.sweeps.Load(); got == 0 {
		t.Fatal("batch sweep never ran")
	}
	if got := e.obs.panics.Value(); got == 0 {
		t.Fatal("panic counter untouched by sweep panic")
	}
	sub, reqd, errs, _ := e.Counters()
	if reqd != 0 || sub != errs || sub != uint64(len(reqs)) {
		t.Fatalf("accounting broken after sweep panics: submitted=%d requests=%d errs=%d", sub, reqd, errs)
	}

	// The workers must have survived: a hot reload to a healthy model
	// serves the next batch normally.
	e.Reload(testModel(t, "lan_cong_severe"))
	res = e.DiagnoseBatch([]Request{{ID: "ok", Features: fv(150, 7)}})
	if res[0].Err != "" || res[0].Class != "lan_cong_severe" {
		t.Fatalf("engine did not recover after sweep panic: %+v", res[0])
	}
}

// forestModel trains a small bagged forest on the testModel dataset and
// wraps it as a serving snapshot.
func forestModel(t testing.TB) *Model {
	t.Helper()
	var insts []ml.Instance
	for rtt := 10.0; rtt <= 200; rtt += 10 {
		for loss := 0.0; loss <= 10; loss++ {
			cls := "good"
			if rtt > 100 {
				if loss > 5 {
					cls = "lan_cong_severe"
				} else {
					cls = "lan_cong_mild"
				}
			}
			insts = append(insts, ml.Instance{
				Features: metrics.Vector{"mobile.rtt": rtt, "mobile.loss": loss},
				Class:    cls,
			})
		}
	}
	d := ml.NewDataset(insts)
	constructed, norm := features.Construct(d)
	f := c45.NewForest(c45.ForestConfig{Trees: 7, Seed: 3}).TrainForest(constructed)
	cf, err := c45.CompileForest(f)
	if err != nil {
		t.Fatal(err)
	}
	return NewBatchModel("exact", norm, cf)
}

// TestForestModelServing runs an ensemble snapshot through the full
// engine: batched classification must match the scalar reference,
// explain requests answer with a per-request error (a vote has no
// single path), and /healthz + /metrics expose the forest's identity.
func TestForestModelServing(t *testing.T) {
	m := forestModel(t)
	if info := m.Info(); info.Kind != "forest" || info.Trees != 7 || info.Nodes <= 0 {
		t.Fatalf("forest ModelInfo wrong: %+v", info)
	}

	e := NewEngine(m, Config{Shards: 2, MaxBatch: 8})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	var reqs []Request
	for i := 0; i < 20; i++ {
		reqs = append(reqs, Request{ID: "f", Features: fv(float64(10+i*10), float64(i%11))})
	}
	res := e.DiagnoseBatch(reqs)
	for i, r := range res {
		want := refResult(m, reqs[i])
		if r.Err != "" || r.Class != want.Class || r.Severity != want.Severity || r.Cause != want.Cause {
			t.Fatalf("forest request %d: got %+v, want %+v", i, r, want)
		}
	}

	exp := e.DiagnoseBatch([]Request{{ID: "e", Features: fv(150, 7), Explain: true}})
	if exp[0].Err != errExplainForest {
		t.Fatalf("explain on forest: got %+v, want error %q", exp[0], errExplainForest)
	}

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Model ModelInfo `json:"model"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Model.Kind != "forest" || health.Model.Trees != 7 || health.Model.Nodes != m.Info().Nodes {
		t.Fatalf("/healthz model section wrong: %+v", health.Model)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if got := metricValue(t, body, "vqserve_model_trees"); got != 7 {
		t.Fatalf("vqserve_model_trees = %v, want 7", got)
	}
	if got := metricValue(t, body, "vqserve_model_nodes"); got != float64(m.Info().Nodes) {
		t.Fatalf("vqserve_model_nodes = %v, want %d", got, m.Info().Nodes)
	}
	if !strings.Contains(body, `vqserve_model_info{kind="forest"`) {
		t.Fatalf("vqserve_model_info identity series missing:\n%.400s", body)
	}
}

// TestModelInfoGaugeFollowsReload pins the identity-series handover: a
// reload lights the new model's vqserve_model_info series and drops the
// previous one to 0.
func TestModelInfoGaugeFollowsReload(t *testing.T) {
	tree := testModel(t, "lan_cong_severe")
	e := NewEngine(tree, Config{Shards: 1})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	e.Reload(forestModel(t))
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	if !strings.Contains(body, `vqserve_model_info{kind="tree",snapshot=""} 0`) {
		t.Fatalf("stale tree identity not dropped to 0:\n%s", grepLines(body, "vqserve_model_info"))
	}
	if !strings.Contains(body, `vqserve_model_info{kind="forest",snapshot=""} 1`) {
		t.Fatalf("forest identity not lit:\n%s", grepLines(body, "vqserve_model_info"))
	}
	if got := metricValue(t, body, "vqserve_model_trees"); got != 7 {
		t.Fatalf("vqserve_model_trees = %v after reload, want 7", got)
	}
}

func grepLines(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

package tcpsim

// Regression tests for callback reentrancy: an application that calls
// Abort from inside OnData (or any other connection callback) tears the
// connection down while handleSegment is still on the stack. The
// aborted connection must not keep emitting ACKs, and OnPeerClose must
// never fire after OnAbort.

import (
	"testing"
	"time"

	"vqprobe/internal/simnet"
)

// TestAbortFromOnDataStopsEmission pins that a connection aborted from
// its own OnData callback emits no further segments: before the fix,
// the in-order data path continued into ackInOrder/checkPeerFin after
// the callback returned, ACKing from a dead connection.
func TestAbortFromOnDataStopsEmission(t *testing.T) {
	n := newTestNet(t, 21, simnet.LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond})
	n.server.Listen(80, func(c *Conn) {
		c.OnEstablished = func() {
			c.Write(200_000)
			c.Close()
		}
		c.OnData = func(int) {}
	})
	cc := n.client.Dial(2, 80)
	cc.SetAutoRead(true)
	var aborted bool
	var segsAtAbort int64
	peerCloseAfterAbort := false
	cc.OnEstablished = func() { cc.Write(300) }
	cc.OnData = func(int) {
		if !aborted {
			aborted = true
			cc.Abort("app rejected stream")
			segsAtAbort = cc.Stats().SegsSent
		}
	}
	cc.OnPeerClose = func() {
		if aborted {
			peerCloseAfterAbort = true
		}
	}
	n.sim.Run(time.Minute)

	if !aborted {
		t.Fatal("OnData never fired; transfer did not start")
	}
	if got := cc.Stats().SegsSent; got != segsAtAbort {
		t.Errorf("aborted connection kept sending: %d segments at abort, %d at end", segsAtAbort, got)
	}
	if peerCloseAfterAbort {
		t.Error("OnPeerClose fired after OnAbort")
	}
	if cc.State() != StateAborted {
		t.Errorf("state %v, want aborted", cc.State())
	}
}

// TestAbortFromOnDataWithFin covers the tighter race: the final data
// segment carries the peer's FIN, so checkPeerFin runs in the same
// handleSegment invocation as the aborting OnData callback. Before the
// fix OnPeerClose fired on the already-aborted connection.
func TestAbortFromOnDataWithFin(t *testing.T) {
	n := newTestNet(t, 22, simnet.LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond})
	n.server.Listen(80, func(c *Conn) {
		c.OnEstablished = func() {
			c.Write(400) // single segment, FIN rides right behind
			c.Close()
		}
		c.OnData = func(int) {}
	})
	cc := n.client.Dial(2, 80)
	cc.SetAutoRead(true)
	peerClosed := false
	cc.OnEstablished = func() { cc.Write(300) }
	cc.OnData = func(int) { cc.Abort("reject on first byte") }
	cc.OnPeerClose = func() { peerClosed = true }
	n.sim.Run(time.Minute)

	if cc.State() != StateAborted {
		t.Fatalf("state %v, want aborted", cc.State())
	}
	if peerClosed {
		t.Error("OnPeerClose fired on a connection aborted from OnData")
	}
}

// Package tcpsim implements a TCP Reno/NewReno endpoint on top of the
// simnet discrete-event simulator.
//
// The implementation covers the mechanisms whose on-the-wire footprint a
// tstat-style passive flow meter measures: three-way handshake with MSS
// negotiation, slow start and congestion avoidance, duplicate-ACK fast
// retransmit with NewReno partial-ACK recovery, RTO with Jacobson/Karels
// estimation and exponential backoff, receiver-window flow control with
// zero-window persistence, and FIN teardown. Payload bytes are modelled
// by count only — no actual data buffers are moved — which keeps the
// simulation cheap while leaving every header field a probe inspects
// (seq, ack, flags, window, MSS) faithful.
//
// Simplifications (documented in DESIGN.md): receivers ACK every data
// segment (no delayed ACK), there is no SACK, and sequence numbers are
// relative (no random ISN) since tstat reports relative offsets anyway.
package tcpsim

import (
	"fmt"

	"vqprobe/internal/simnet"
)

// AcceptFunc is called when a listener receives a new connection. The
// connection is already usable: writes are queued until the handshake
// completes.
type AcceptFunc func(c *Conn)

// Host is the transport layer of a simulated end host. It demultiplexes
// incoming packets to connections and hands out ephemeral ports.
type Host struct {
	node *simnet.Node
	nic  *simnet.NIC

	conns     map[simnet.FlowKey]*Conn // keyed by the conn's outgoing flow
	listeners map[int]AcceptFunc
	nextPort  int

	// DefaultRcvBuf is the receive buffer size for new connections
	// (advertised window ceiling). Defaults to 256 KiB.
	DefaultRcvBuf int
	// DefaultMSS is the MSS this host advertises on SYN. Defaults to
	// 1460.
	DefaultMSS int
}

// NewHost attaches a transport layer to node, sending and receiving
// through nic. It installs itself as the node's packet handler.
func NewHost(node *simnet.Node, nic *simnet.NIC) *Host {
	h := &Host{
		node:          node,
		nic:           nic,
		conns:         make(map[simnet.FlowKey]*Conn),
		listeners:     make(map[int]AcceptFunc),
		nextPort:      40000,
		DefaultRcvBuf: 256 * 1024,
		DefaultMSS:    1460,
	}
	node.SetHandler(h)
	return h
}

// Node returns the underlying simnet node.
func (h *Host) Node() *simnet.Node { return h.node }

// Sim returns the simulator the host runs on.
func (h *Host) Sim() *simnet.Sim { return h.node.Sim() }

// Listen registers an accept callback for a local port.
func (h *Host) Listen(port int, accept AcceptFunc) {
	if _, dup := h.listeners[port]; dup {
		panic(fmt.Sprintf("tcpsim: duplicate listener on port %d", port))
	}
	h.listeners[port] = accept
}

// Dial opens a connection to dst:dstPort and starts the handshake. The
// returned Conn can be written to immediately; data flows once the
// handshake completes.
func (h *Host) Dial(dst simnet.Addr, dstPort int) *Conn {
	h.nextPort++
	flow := simnet.FlowKey{
		Proto:   simnet.ProtoTCP,
		Src:     h.node.Addr,
		Dst:     dst,
		SrcPort: h.nextPort,
		DstPort: dstPort,
	}
	c := newConn(h, flow, false)
	h.conns[flow] = c
	c.startConnect()
	return c
}

// HandlePacket implements simnet.Handler.
func (h *Host) HandlePacket(nic *simnet.NIC, pkt *simnet.Packet) {
	if !pkt.IsTCP() {
		return // UDP background traffic is not demultiplexed
	}
	key := pkt.Flow.Reverse() // our outgoing flow for this conversation
	if c, ok := h.conns[key]; ok {
		c.handleSegment(pkt)
		return
	}
	// New connection? Only a SYN to a listening port creates state.
	if pkt.TCP.Flags.Has(simnet.FlagSYN) && !pkt.TCP.Flags.Has(simnet.FlagACK) {
		accept, ok := h.listeners[pkt.Flow.DstPort]
		if !ok {
			return // no RST modelling; the client will time out
		}
		c := newConn(h, key, true)
		h.conns[key] = c
		c.handleSegment(pkt)
		accept(c)
	}
}

// forget removes a closed connection from the demux table.
func (h *Host) forget(c *Conn) { delete(h.conns, c.flow) }

// send emits a packet through the host's NIC.
func (h *Host) send(pkt *simnet.Packet) { h.node.Send(h.nic, pkt) }

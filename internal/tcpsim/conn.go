package tcpsim

import (
	"fmt"
	"time"

	"vqprobe/internal/simnet"
)

// State is the lifecycle state of a connection.
type State int

// Connection states. The set is smaller than the full RFC 793 diagram
// because the simulator does not model simultaneous open or TIME_WAIT.
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait // FIN sent, waiting for it to be acknowledged
	StateDone    // everything sent and acknowledged / peer closed
	StateAborted
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateSynSent:
		return "syn-sent"
	case StateSynRcvd:
		return "syn-rcvd"
	case StateEstablished:
		return "established"
	case StateFinWait:
		return "fin-wait"
	case StateDone:
		return "done"
	case StateAborted:
		return "aborted"
	default:
		return "unknown"
	}
}

// Timing and retry constants. RTOMin is deliberately below the RFC 6298
// 1s floor so testbed dynamics stay lively at simulated RTTs of tens of
// milliseconds; Linux uses 200ms, we use 300ms.
const (
	RTOMin        = 300 * time.Millisecond
	RTOMax        = 60 * time.Second
	RTOInitial    = time.Second
	initialCwnd   = 10 // segments (IW10)
	maxSynRetries = 6
	maxRTORetries = 10
	persistDelay  = 500 * time.Millisecond
)

// Stats counts connection-level events, for tests and ground truth. The
// passive probes do not read these; they re-derive everything from
// packets at their tap.
type Stats struct {
	SegsSent        int64
	SegsRcvd        int64
	PayloadSent     int64 // payload bytes sent, excluding retransmissions
	PayloadRetrans  int64 // payload bytes retransmitted
	Retransmits     int64 // data segments retransmitted (fast + RTO)
	FastRetransmits int64
	Timeouts        int64 // RTO firings
	RTTSamples      int64
}

// Conn is one endpoint of a simulated TCP connection. All methods must
// be called from simulator context (inside events); the simulator is
// single-threaded so no locking is needed.
type Conn struct {
	host   *Host
	flow   simnet.FlowKey // our outgoing flow
	server bool
	state  State

	// Negotiated parameters.
	mss     int // effective MSS after negotiation
	peerMSS int

	// Send state. Sequence offsets: SYN occupies [0,1), data occupies
	// [1, 1+appBytes), FIN occupies one more.
	sndUna        int64
	sndNxt        int64
	appBytes      int64 // bytes the application has queued in total
	sendClosed    bool
	finSent       bool
	sendDoneFired bool
	cwnd          float64 // bytes
	ssthresh      float64
	peerWnd       int
	dupAcks       int
	inRecovery    bool
	recover       int64

	// RTT estimation (single in-flight timing sample, Karn's rule).
	srtt, rttvar time.Duration
	rto          time.Duration
	timedSeq     int64
	timedAt      time.Duration
	timedValid   bool

	// Timers are invalidated by bumping the generation counter.
	rtoGen        uint64
	persistGen    uint64
	synRetries    int
	rtoConsecutiv int

	// Receive state.
	rcvNxt int64
	rcvBuf int // receive buffer capacity (advertised window ceiling)
	// Delayed-ACK state (enabled via SetDelayedAck): in-order segments
	// are acknowledged every second segment or after delayedAckTimeout.
	delayedAck    bool
	unackedSegs   int
	delayedAckGen uint64
	buffered      int64 // delivered to app but not yet consumed
	ooo           []span
	finSeq        int64 // sequence of peer FIN, -1 if none seen
	peerDone      bool
	autoRead      bool
	lowWnd        bool // window dropped below an MSS since last update ACK
	handshake     time.Duration

	// Application callbacks; any may be nil.
	OnEstablished func()
	OnData        func(n int) // n in-order payload bytes newly available
	OnPeerClose   func()      // peer FIN fully delivered
	OnSendDone    func()      // our FIN acknowledged
	OnAbort       func(reason string)

	stats Stats
}

type span struct{ start, end int64 }

func newConn(h *Host, flow simnet.FlowKey, server bool) *Conn {
	c := &Conn{
		host:     h,
		flow:     flow,
		server:   server,
		mss:      h.DefaultMSS,
		rcvBuf:   h.DefaultRcvBuf,
		rto:      RTOInitial,
		finSeq:   -1,
		autoRead: true,
		peerWnd:  h.DefaultRcvBuf,
	}
	c.cwnd = float64(initialCwnd * h.DefaultMSS)
	c.ssthresh = 1 << 30
	return c
}

// Flow returns the connection's outgoing flow key.
func (c *Conn) Flow() simnet.FlowKey { return c.flow }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Stats returns a copy of the connection counters.
func (c *Conn) Stats() Stats { return c.stats }

// MSS returns the effective (negotiated) maximum segment size.
func (c *Conn) MSS() int { return c.mss }

// RTO returns the current retransmission timeout.
func (c *Conn) RTO() time.Duration { return c.rto }

// SRTT returns the smoothed RTT estimate (zero before the first sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// SetRcvBuf overrides the receive buffer capacity (and therefore the
// advertised-window ceiling). Must be called before data flows.
func (c *Conn) SetRcvBuf(n int) { c.rcvBuf = n }

// SetDelayedAck enables RFC 1122 delayed acknowledgements: in-order
// data is ACKed every second segment or after 100ms, whichever comes
// first. Out-of-order arrivals still trigger immediate duplicate ACKs
// (required for fast retransmit). Off by default: the testbed was
// calibrated with per-segment ACKs, and probes count pure ACKs either
// way.
func (c *Conn) SetDelayedAck(v bool) { c.delayedAck = v }

// SetAutoRead controls whether delivered bytes are consumed immediately
// (the default) or held in the receive buffer until Consume is called.
// Applications that model slow readers — the video player under CPU
// load — disable auto-read so the advertised window genuinely shrinks.
func (c *Conn) SetAutoRead(v bool) { c.autoRead = v }

// Buffered returns bytes delivered in order but not yet consumed.
func (c *Conn) Buffered() int64 { return c.buffered }

// Consume removes n bytes from the receive buffer, opening the
// advertised window. If the window was nearly closed, a window-update
// ACK is emitted so the sender resumes promptly.
func (c *Conn) Consume(n int64) {
	if n > c.buffered {
		n = c.buffered
	}
	c.buffered -= n
	if c.lowWnd && c.advertiseWnd() >= c.mss {
		c.lowWnd = false
		c.sendPure(simnet.FlagACK) // window update
	}
}

// Write queues n application bytes for transmission.
func (c *Conn) Write(n int64) {
	if n <= 0 || c.state == StateAborted || c.state == StateDone {
		return
	}
	c.appBytes += n
	c.trySend()
}

// Close marks the end of the application's data; a FIN is emitted once
// all queued bytes have been transmitted.
func (c *Conn) Close() {
	if c.sendClosed {
		return
	}
	c.sendClosed = true
	c.trySend()
}

// Abort tears the connection down immediately, firing OnAbort.
func (c *Conn) Abort(reason string) {
	if c.state == StateAborted || c.state == StateDone {
		return
	}
	c.state = StateAborted
	c.tracef("abort", "%s", reason)
	c.rtoGen++
	c.persistGen++
	c.host.forget(c)
	if c.OnAbort != nil {
		c.OnAbort(reason)
	}
}

// ---- connection establishment ----

func (c *Conn) startConnect() {
	c.state = StateSynSent
	c.handshake = c.sim().Now()
	c.sendSyn()
}

func (c *Conn) sendSyn() {
	hdr := &simnet.TCPHeader{Seq: 0, Flags: simnet.FlagSYN, Window: c.advertiseWnd(), MSS: c.host.DefaultMSS}
	c.emit(0, hdr)
	c.scheduleRTO()
}

func (c *Conn) sendSynAck() {
	hdr := &simnet.TCPHeader{Seq: 0, Ack: c.rcvNxt, Flags: simnet.FlagSYN | simnet.FlagACK,
		Window: c.advertiseWnd(), MSS: c.host.DefaultMSS}
	c.emit(0, hdr)
	c.scheduleRTO()
}

// HandshakeRTT returns how long establishment took (zero until
// established).
func (c *Conn) HandshakeRTT() time.Duration { return c.handshake }

func (c *Conn) establish() {
	c.state = StateEstablished
	c.handshake = c.sim().Now() - c.handshake
	c.sndUna, c.sndNxt = 1, 1
	c.synRetries = 0
	c.rtoGen++ // cancel handshake timer
	c.tracef("established", "handshake=%v", c.handshake)
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
	c.trySend()
}

// ---- segment handling ----

func (c *Conn) handleSegment(pkt *simnet.Packet) {
	if c.state == StateAborted || c.state == StateDone {
		return
	}
	c.stats.SegsRcvd++
	hdr := pkt.TCP

	if hdr.Flags.Has(simnet.FlagRST) {
		c.Abort("peer reset")
		return
	}

	switch c.state {
	case StateClosed: // fresh server conn receiving the first SYN
		if hdr.Flags.Has(simnet.FlagSYN) && !hdr.Flags.Has(simnet.FlagACK) {
			c.state = StateSynRcvd
			c.handshake = c.sim().Now()
			c.rcvNxt = 1
			c.negotiateMSS(hdr.MSS)
			c.peerWnd = hdr.Window
			c.sendSynAck()
		}
		return
	case StateSynSent:
		if hdr.Flags.Has(simnet.FlagSYN | simnet.FlagACK) {
			c.rcvNxt = 1
			c.negotiateMSS(hdr.MSS)
			c.peerWnd = hdr.Window
			c.sndUna, c.sndNxt = 1, 1 // our SYN is acknowledged
			c.sendPure(simnet.FlagACK)
			c.establish()
		}
		return
	case StateSynRcvd:
		if hdr.Flags.Has(simnet.FlagSYN) && !hdr.Flags.Has(simnet.FlagACK) {
			c.sendSynAck() // duplicate SYN: client missed our SYN-ACK
			return
		}
		if hdr.Flags.Has(simnet.FlagACK) && hdr.Ack >= 1 {
			c.establish()
			// fall through: the segment may carry data too
		} else {
			return
		}
	}

	if hdr.Flags.Has(simnet.FlagSYN) {
		// Duplicate SYN or SYN-ACK after establishment: our handshake
		// ACK was lost. Re-acknowledge so the peer leaves SYN-RCVD.
		c.ackNow()
		return
	}

	// Application callbacks (OnData, OnSendDone, OnPeerClose) may call
	// Abort or Close reentrantly; re-check liveness after every step that
	// can run one, or an aborted connection keeps emitting ACKs and can
	// fire OnPeerClose after OnAbort.
	if hdr.Flags.Has(simnet.FlagACK) {
		c.processAck(hdr.Ack, hdr.Window, pkt.Payload == 0 && !hdr.Flags.Has(simnet.FlagFIN))
		if c.dead() {
			return
		}
	}
	if pkt.Payload > 0 {
		c.processData(hdr.Seq, int64(pkt.Payload))
		if c.dead() {
			return
		}
	}
	if hdr.Flags.Has(simnet.FlagFIN) {
		c.finSeq = hdr.Seq + int64(pkt.Payload)
		c.checkPeerFin()
		// Acknowledge the FIN (processData already ACKed any payload,
		// but a bare FIN needs its own ACK).
		if pkt.Payload == 0 {
			c.ackNow()
		}
	}
}

func (c *Conn) negotiateMSS(peer int) {
	c.peerMSS = peer
	if peer > 0 && peer < c.mss {
		c.mss = peer
	}
	c.cwnd = float64(initialCwnd * c.mss)
}

// processAck handles acknowledgement and window information.
func (c *Conn) processAck(ack int64, wnd int, pure bool) {
	prevWnd := c.peerWnd
	c.peerWnd = wnd

	switch {
	case ack > c.sndUna:
		acked := ack - c.sndUna
		c.sndUna = ack
		c.rtoConsecutiv = 0
		c.sampleRTT(ack)

		if c.inRecovery {
			if ack >= c.recover {
				c.cwnd = c.ssthresh
				c.inRecovery = false
				c.dupAcks = 0
			} else {
				// NewReno partial ACK: retransmit the next hole,
				// stay in recovery.
				c.retransmitUna()
			}
		} else {
			c.dupAcks = 0
			c.growCwnd(acked)
		}

		if c.flight() > 0 {
			c.scheduleRTO()
		} else {
			c.rtoGen++ // nothing outstanding; stop the timer
		}
		c.checkSendDone()
		c.trySend()

	// Duplicate ACK: same cumulative ack with data outstanding. The
	// advertised window is deliberately NOT compared — receivers whose
	// application drains the buffer between ACKs (the video player)
	// change the window on nearly every segment, and requiring an
	// unchanged window would disable fast retransmit entirely.
	case ack == c.sndUna && pure && c.flight() > 0:
		c.dupAcks++
		if c.inRecovery {
			c.cwnd += float64(c.mss) // inflate per extra dup ACK
			c.trySend()
		} else if c.dupAcks == 3 {
			c.enterFastRecovery()
		}

	default:
		// Old ACK; a growing window may still unblock us.
		if wnd > prevWnd {
			c.trySend()
		}
	}
	if wnd > prevWnd {
		c.trySend()
	}
}

func (c *Conn) enterFastRecovery() {
	c.ssthresh = maxf(float64(c.flight())/2, float64(2*c.mss))
	c.recover = c.sndNxt
	c.inRecovery = true
	c.cwnd = c.ssthresh + 3*float64(c.mss)
	c.stats.FastRetransmits++
	c.tracef("fast_retransmit", "una=%d ssthresh=%.0f", c.sndUna, c.ssthresh)
	c.retransmitUna()
}

func (c *Conn) growCwnd(acked int64) {
	if c.cwnd < c.ssthresh { // slow start
		inc := float64(acked)
		if inc > float64(c.mss) {
			inc = float64(c.mss)
		}
		c.cwnd += inc
		if c.cwnd >= c.ssthresh {
			c.tracef("aimd", "slow start -> congestion avoidance cwnd=%.0f ssthresh=%.0f", c.cwnd, c.ssthresh)
		}
	} else { // congestion avoidance
		c.cwnd += float64(c.mss) * float64(c.mss) / c.cwnd
	}
	if max := float64(64 * 1024 * 1024); c.cwnd > max {
		c.cwnd = max
	}
}

// processData handles an incoming payload-bearing segment.
func (c *Conn) processData(seq, n int64) {
	end := seq + n
	switch {
	case end <= c.rcvNxt:
		// Complete duplicate (a retransmission we already have):
		// re-ACK so the sender can move on.
		c.ackNow()
		return
	case seq <= c.rcvNxt:
		// In order (possibly partially duplicate).
		delivered := end - c.rcvNxt
		c.rcvNxt = end
		delivered += c.drainOOO()
		c.deliver(delivered)
		if c.dead() {
			return // the app aborted the connection from OnData
		}
		c.ackInOrder()
		c.checkPeerFin()
	default:
		// Out of order: stash and emit a duplicate ACK.
		c.addOOO(seq, end)
		c.ackNow()
	}
}

func (c *Conn) addOOO(start, end int64) {
	for _, s := range c.ooo {
		if start >= s.start && end <= s.end {
			return // fully contained
		}
	}
	c.ooo = append(c.ooo, span{start, end})
}

// drainOOO advances rcvNxt over any stored segments now contiguous and
// returns the number of bytes released.
func (c *Conn) drainOOO() int64 {
	var released int64
	for {
		advanced := false
		keep := c.ooo[:0]
		for _, s := range c.ooo {
			if s.start <= c.rcvNxt && s.end > c.rcvNxt {
				released += s.end - c.rcvNxt
				c.rcvNxt = s.end
				advanced = true
			} else if s.end > c.rcvNxt {
				keep = append(keep, s)
			}
		}
		c.ooo = keep
		if !advanced {
			return released
		}
	}
}

func (c *Conn) deliver(n int64) {
	if n <= 0 {
		return
	}
	if c.autoRead {
		if c.OnData != nil {
			c.OnData(int(n))
		}
		return
	}
	c.buffered += n
	if c.advertiseWnd() < c.mss {
		c.lowWnd = true
	}
	if c.OnData != nil {
		c.OnData(int(n))
	}
}

func (c *Conn) checkPeerFin() {
	if c.dead() || c.peerDone || c.finSeq < 0 || c.rcvNxt < c.finSeq {
		return
	}
	c.rcvNxt = c.finSeq + 1 // FIN consumes one sequence number
	c.peerDone = true
	c.ackNow()
	if c.OnPeerClose != nil {
		c.OnPeerClose()
	}
	c.maybeDone()
}

func (c *Conn) checkSendDone() {
	if c.finSent && c.sndUna == c.dataEnd()+1 && !c.sendDoneFired {
		c.sendDoneFired = true
		if c.OnSendDone != nil {
			c.OnSendDone()
		}
		c.maybeDone()
	}
}

// maybeDone closes the connection once both directions are finished. A
// side that never sends a FIN (the video client keeps its request side
// open) still completes when the peer's FIN is consumed and it has
// nothing outstanding.
func (c *Conn) maybeDone() {
	ourSideDone := !c.sendClosed || (c.finSent && c.sndUna == c.dataEnd()+1)
	if c.peerDone && ourSideDone && c.flight() == 0 {
		c.state = StateDone
		c.rtoGen++
		c.persistGen++
		c.host.forget(c)
	}
}

// ---- sending ----

// dead reports whether the connection has been torn down (aborted or
// fully closed) and must neither emit segments nor fire callbacks.
func (c *Conn) dead() bool { return c.state == StateAborted || c.state == StateDone }

func (c *Conn) dataEnd() int64 { return 1 + c.appBytes }

func (c *Conn) flight() int64 { return c.sndNxt - c.sndUna }

func (c *Conn) advertiseWnd() int {
	w := int64(c.rcvBuf) - c.buffered
	if w < 0 {
		w = 0
	}
	return int(w)
}

func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateFinWait {
		return
	}
	limit := int64(c.cwnd)
	if pw := int64(c.peerWnd); pw < limit {
		limit = pw
	}
	sent := false
	for c.sndNxt < c.dataEnd() {
		allowed := c.sndUna + limit - c.sndNxt
		if allowed <= 0 {
			break
		}
		n := int64(c.mss)
		if rem := c.dataEnd() - c.sndNxt; rem < n {
			n = rem
		}
		if n > allowed {
			n = allowed
		}
		c.sendData(c.sndNxt, n, false)
		c.sndNxt += n
		sent = true
	}
	// Emit FIN once all data is out (FIN rides the window for free).
	if c.sendClosed && !c.finSent && c.sndNxt == c.dataEnd() {
		c.finSent = true
		c.state = StateFinWait
		hdr := &simnet.TCPHeader{Seq: c.sndNxt, Ack: c.rcvNxt,
			Flags: simnet.FlagFIN | simnet.FlagACK, Window: c.advertiseWnd()}
		c.emit(0, hdr)
		c.sndNxt++
		c.scheduleRTO()
		sent = true
	}
	if sent {
		return
	}
	// Zero-window deadlock? Arm the persist timer.
	if c.peerWnd == 0 && c.flight() == 0 && c.sndNxt < c.dataEnd() {
		c.schedulePersist()
	}
}

func (c *Conn) sendData(seq, n int64, rtx bool) {
	flags := simnet.FlagACK
	if seq+n == c.dataEnd() {
		flags |= simnet.FlagPSH
	}
	hdr := &simnet.TCPHeader{Seq: seq, Ack: c.rcvNxt, Flags: flags, Window: c.advertiseWnd()}
	c.emit(int(n), hdr)
	if rtx {
		c.stats.Retransmits++
		c.stats.PayloadRetrans += n
		if seq <= c.timedSeq {
			c.timedValid = false // Karn: never time retransmitted data
		}
	} else {
		c.stats.PayloadSent += n
		if !c.timedValid {
			c.timedSeq = seq + n
			c.timedAt = c.sim().Now()
			c.timedValid = true
		}
	}
	c.scheduleRTO()
}

func (c *Conn) retransmitUna() {
	n := int64(c.mss)
	if rem := c.dataEnd() - c.sndUna; rem < n {
		n = rem
	}
	if n <= 0 {
		if c.sendClosed && !c.finSent {
			c.trySend() // go-back-N reset the FIN flag; re-emit it
			return
		}
		// Only the FIN is outstanding: resend it.
		if c.finSent {
			hdr := &simnet.TCPHeader{Seq: c.dataEnd(), Ack: c.rcvNxt,
				Flags: simnet.FlagFIN | simnet.FlagACK, Window: c.advertiseWnd()}
			c.emit(0, hdr)
			c.scheduleRTO()
		}
		return
	}
	c.sendData(c.sndUna, n, true)
	if c.sndNxt < c.sndUna+n {
		c.sndNxt = c.sndUna + n // after go-back-N the edge follows the retransmission
	}
}

func (c *Conn) ackNow() {
	c.unackedSegs = 0
	c.delayedAckGen++ // cancel any pending delayed ACK
	c.sendPure(simnet.FlagACK)
}

// delayedAckTimeout bounds how long an in-order segment may wait for a
// companion before being acknowledged.
const delayedAckTimeout = 100 * time.Millisecond

// ackInOrder acknowledges in-order data, coalescing every second
// segment when delayed ACKs are enabled.
func (c *Conn) ackInOrder() {
	if !c.delayedAck {
		c.ackNow()
		return
	}
	c.unackedSegs++
	if c.unackedSegs >= 2 {
		c.ackNow()
		return
	}
	c.delayedAckGen++
	gen := c.delayedAckGen
	c.sim().After(delayedAckTimeout, func() {
		if c.delayedAckGen == gen && c.unackedSegs > 0 &&
			c.state != StateAborted && c.state != StateDone {
			c.ackNow()
		}
	})
}

func (c *Conn) sendPure(flags simnet.TCPFlags) {
	if c.dead() {
		return // never emit from a torn-down connection
	}
	hdr := &simnet.TCPHeader{Seq: c.sndNxt, Ack: c.rcvNxt, Flags: flags, Window: c.advertiseWnd()}
	c.emit(0, hdr)
}

func (c *Conn) emit(payload int, hdr *simnet.TCPHeader) {
	c.stats.SegsSent++
	pkt := c.sim().NewPacket(c.flow, payload, hdr)
	c.host.send(pkt)
}

func (c *Conn) sim() *simnet.Sim { return c.host.Sim() }

// tracef records a connection-level instant event ("tcp" track) on the
// simulation's tracer, tagged with the connection's flow key. The format
// arguments are only rendered when a tracer is attached.
func (c *Conn) tracef(name, format string, args ...any) {
	tr := c.sim().Tracer()
	if !tr.Enabled() {
		return
	}
	tr.Instant("tcp", name, fmt.Sprintf(format, args...)+" ["+c.flow.String()+"]", 0)
}

// ---- timers ----

func (c *Conn) sampleRTT(ack int64) {
	if !c.timedValid || ack < c.timedSeq {
		return
	}
	r := c.sim().Now() - c.timedAt
	c.timedValid = false
	c.stats.RTTSamples++
	if c.srtt == 0 {
		c.srtt = r
		c.rttvar = r / 2
	} else {
		d := c.srtt - r
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + r) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < RTOMin {
		c.rto = RTOMin
	}
	if c.rto > RTOMax {
		c.rto = RTOMax
	}
}

func (c *Conn) scheduleRTO() {
	c.rtoGen++
	gen := c.rtoGen
	c.sim().After(c.rto, func() {
		if c.rtoGen == gen {
			c.onRTO()
		}
	})
}

func (c *Conn) onRTO() {
	switch c.state {
	case StateSynSent:
		c.synRetries++
		if c.synRetries > maxSynRetries {
			c.Abort("connect timeout")
			return
		}
		c.rto = minDur(c.rto*2, RTOMax)
		c.sendSyn()
	case StateSynRcvd:
		c.synRetries++
		if c.synRetries > maxSynRetries {
			c.Abort("handshake timeout")
			return
		}
		c.rto = minDur(c.rto*2, RTOMax)
		c.sendSynAck()
	case StateEstablished, StateFinWait:
		if c.flight() == 0 {
			return
		}
		c.stats.Timeouts++
		c.rtoConsecutiv++
		c.tracef("rto", "rto=%v consecutive=%d una=%d", c.rto, c.rtoConsecutiv, c.sndUna)
		if c.rtoConsecutiv > maxRTORetries {
			c.Abort("retransmission limit exceeded")
			return
		}
		c.ssthresh = maxf(float64(c.flight())/2, float64(2*c.mss))
		c.cwnd = float64(c.mss)
		c.inRecovery = false
		c.dupAcks = 0
		c.rto = minDur(c.rto*2, RTOMax)
		// Go-back-N: pull the send edge back so slow start refills the
		// window from the loss point; the receiver re-ACKs anything it
		// already holds out of order.
		if c.finSent && c.sndNxt > c.dataEnd() {
			c.finSent = false // the FIN will be re-emitted after the data
		}
		c.sndNxt = c.sndUna
		c.timedValid = false
		c.retransmitUna()
	}
}

func (c *Conn) schedulePersist() {
	c.persistGen++
	gen := c.persistGen
	c.sim().After(persistDelay, func() {
		if c.persistGen != gen || c.state != StateEstablished {
			return
		}
		if c.peerWnd == 0 && c.flight() == 0 && c.sndNxt < c.dataEnd() {
			// Window probe: one byte beyond the edge.
			c.sendData(c.sndNxt, 1, false)
			c.sndNxt++
			c.schedulePersist()
		}
	})
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

package tcpsim

import (
	"testing"
	"time"

	"vqprobe/internal/simnet"
)

// testNet wires client <-> server through a single configurable link and
// returns everything a test needs.
type testNet struct {
	sim            *simnet.Sim
	client, server *Host
	link           *simnet.Link
}

func newTestNet(t *testing.T, seed int64, cfg simnet.LinkConfig) *testNet {
	t.Helper()
	s := simnet.New(seed)
	cn := s.NewNode("client", 1)
	sn := s.NewNode("server", 2)
	cnic := cn.AddNIC("eth0")
	snic := sn.AddNIC("eth0")
	link := simnet.ConnectSym(s, "c-s", cnic, snic, cfg)
	return &testNet{
		sim:    s,
		client: NewHost(cn, cnic),
		server: NewHost(sn, snic),
		link:   link,
	}
}

// transfer runs a request/response exchange: the client connects, sends a
// small request, the server replies with respBytes and closes. It returns
// the client-side received byte count and the virtual time at which the
// transfer completed (zero if it never did).
func (n *testNet) transfer(t *testing.T, respBytes int64, until time.Duration) (got int64, doneAt time.Duration) {
	t.Helper()
	n.server.Listen(80, func(c *Conn) {
		c.OnData = func(int) {} // consume request
		c.OnEstablished = func() {
			c.Write(respBytes)
			c.Close()
		}
	})
	cc := n.client.Dial(2, 80)
	cc.OnEstablished = func() { cc.Write(300) }
	cc.OnData = func(k int) { got += int64(k) }
	cc.OnPeerClose = func() {
		doneAt = n.sim.Now()
		cc.Close()
	}
	n.sim.Run(until)
	return got, doneAt
}

func TestHandshakeAndTransfer(t *testing.T) {
	n := newTestNet(t, 1, simnet.LinkConfig{Rate: 10e6, Delay: 10 * time.Millisecond})
	got, doneAt := n.transfer(t, 100_000, 30*time.Second)
	if doneAt == 0 {
		t.Fatal("transfer did not complete")
	}
	if got != 100_000 {
		t.Fatalf("client received %d bytes, want 100000", got)
	}
}

func TestTransferUnderLoss(t *testing.T) {
	n := newTestNet(t, 3, simnet.LinkConfig{Rate: 10e6, Delay: 20 * time.Millisecond, Loss: 0.03})
	got, doneAt := n.transfer(t, 500_000, 5*time.Minute)
	if doneAt == 0 || got != 500_000 {
		t.Fatalf("lossy transfer incomplete: got=%d doneAt=%v", got, doneAt)
	}
}

func TestTransferUnderHeavyLoss(t *testing.T) {
	n := newTestNet(t, 4, simnet.LinkConfig{Rate: 5e6, Delay: 30 * time.Millisecond, Loss: 0.10})
	got, doneAt := n.transfer(t, 200_000, 10*time.Minute)
	if doneAt == 0 || got != 200_000 {
		t.Fatalf("heavy-loss transfer incomplete: got=%d doneAt=%v", got, doneAt)
	}
}

func TestRetransmissionsCounted(t *testing.T) {
	n := newTestNet(t, 5, simnet.LinkConfig{Rate: 10e6, Delay: 20 * time.Millisecond, Loss: 0.05})
	var serverConn *Conn
	n.server.Listen(80, func(c *Conn) {
		serverConn = c
		c.OnEstablished = func() { c.Write(300_000); c.Close() }
	})
	cc := n.client.Dial(2, 80)
	done := false
	cc.OnPeerClose = func() { done = true; cc.Close() }
	n.sim.Run(5 * time.Minute)
	if !done {
		t.Fatal("transfer incomplete")
	}
	if serverConn.Stats().Retransmits == 0 {
		t.Error("expected retransmissions at 5% loss")
	}
}

func TestFastRetransmitUsedBeforeRTO(t *testing.T) {
	// Big enough pipe and mild loss: recovery should mostly happen via
	// dup ACKs, not timeouts.
	n := newTestNet(t, 6, simnet.LinkConfig{Rate: 50e6, Delay: 25 * time.Millisecond, Loss: 0.01, QueueBytes: 1 << 20})
	var sc *Conn
	n.server.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.Write(2_000_000); c.Close() }
	})
	cc := n.client.Dial(2, 80)
	done := false
	cc.OnPeerClose = func() { done = true; cc.Close() }
	n.sim.Run(5 * time.Minute)
	if !done {
		t.Fatal("transfer incomplete")
	}
	st := sc.Stats()
	if st.FastRetransmits == 0 {
		t.Error("expected fast retransmits on a fat lossy pipe")
	}
	if st.Timeouts > st.FastRetransmits {
		t.Errorf("timeouts (%d) dominate fast retransmits (%d); recovery path broken",
			st.Timeouts, st.FastRetransmits)
	}
}

func TestThroughputRespectsLinkRate(t *testing.T) {
	// 2 Mbit/s link, 1 MB transfer => at least 4 seconds.
	n := newTestNet(t, 7, simnet.LinkConfig{Rate: 2e6, Delay: 10 * time.Millisecond, QueueBytes: 128 * 1024})
	got, doneAt := n.transfer(t, 1_000_000, 2*time.Minute)
	if doneAt == 0 || got != 1_000_000 {
		t.Fatalf("transfer incomplete: %d", got)
	}
	elapsed := doneAt
	if elapsed < 3900*time.Millisecond {
		t.Errorf("1MB over 2Mbit/s finished in %v; faster than the wire allows", elapsed)
	}
	if elapsed > 30*time.Second {
		t.Errorf("1MB over 2Mbit/s took %v; utilization is pathologically low", elapsed)
	}
}

func TestMSSNegotiation(t *testing.T) {
	n := newTestNet(t, 8, simnet.LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond})
	n.client.DefaultMSS = 1380
	var sc *Conn
	n.server.Listen(80, func(c *Conn) { sc = c })
	cc := n.client.Dial(2, 80)
	n.sim.Run(time.Second)
	if cc.MSS() != 1380 || sc.MSS() != 1380 {
		t.Errorf("negotiated MSS client=%d server=%d, want 1380/1380", cc.MSS(), sc.MSS())
	}
}

func TestReceiverWindowThrottlesSender(t *testing.T) {
	// The client never consumes: the server must stall once the 32 KiB
	// receive buffer fills, even though it has 1 MB to send.
	n := newTestNet(t, 9, simnet.LinkConfig{Rate: 100e6, Delay: 2 * time.Millisecond})
	var sc *Conn
	n.server.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.Write(1_000_000) }
	})
	cc := n.client.Dial(2, 80)
	cc.SetRcvBuf(32 * 1024)
	cc.SetAutoRead(false)
	var got int64
	cc.OnData = func(k int) { got += int64(k) }
	n.sim.Run(5 * time.Second)
	if got > 40*1024 {
		t.Errorf("receiver got %d bytes with a closed 32KiB window", got)
	}
	if sc == nil {
		t.Fatal("no server conn")
	}
	// Now consume: transfer must resume.
	n.sim.After(0, func() { cc.Consume(cc.Buffered()) })
	n.sim.Run(10 * time.Second)
	if got <= 40*1024 {
		t.Errorf("transfer did not resume after Consume: got=%d", got)
	}
}

func TestZeroWindowPersist(t *testing.T) {
	// Tiny receive buffer that is consumed late: the persist machinery
	// must keep the connection alive until the window opens.
	n := newTestNet(t, 10, simnet.LinkConfig{Rate: 10e6, Delay: 2 * time.Millisecond})
	n.server.Listen(80, func(c *Conn) {
		c.OnEstablished = func() { c.Write(50_000); c.Close() }
	})
	cc := n.client.Dial(2, 80)
	cc.SetRcvBuf(4 * 1024)
	cc.SetAutoRead(false)
	var got int64
	cc.OnData = func(int) {}
	done := false
	cc.OnPeerClose = func() { done = true; cc.Close() }
	// Drain the buffer every 300ms.
	simnet.NewTicker(n.sim, 300*time.Millisecond, func(time.Duration) {
		got += cc.Buffered()
		cc.Consume(cc.Buffered())
	})
	n.sim.Run(2 * time.Minute)
	if !done {
		t.Fatalf("transfer with slow reader never completed (got %d bytes)", got)
	}
}

func TestConnectTimeoutToDeadHost(t *testing.T) {
	n := newTestNet(t, 11, simnet.LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond})
	n.link.SetDown(true)
	cc := n.client.Dial(2, 80)
	var aborted string
	cc.OnAbort = func(reason string) { aborted = reason }
	n.sim.Run(10 * time.Minute)
	if aborted == "" {
		t.Fatal("Dial over a dead link never aborted")
	}
	if cc.State() != StateAborted {
		t.Errorf("state = %v, want aborted", cc.State())
	}
}

func TestConnectToNonListeningPort(t *testing.T) {
	n := newTestNet(t, 12, simnet.LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond})
	cc := n.client.Dial(2, 9999)
	aborted := false
	cc.OnAbort = func(string) { aborted = true }
	n.sim.Run(10 * time.Minute)
	if !aborted {
		t.Error("connection to closed port should eventually abort")
	}
}

func TestMidTransferLinkDownAborts(t *testing.T) {
	n := newTestNet(t, 13, simnet.LinkConfig{Rate: 5e6, Delay: 10 * time.Millisecond})
	var sc *Conn
	n.server.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.Write(10_000_000); c.Close() }
	})
	cc := n.client.Dial(2, 80)
	_ = cc
	n.sim.Run(2 * time.Second) // let some data flow
	n.link.SetDown(true)
	aborted := false
	sc.OnAbort = func(string) { aborted = true }
	n.sim.Run(30 * time.Minute)
	if !aborted {
		t.Error("sender should abort after exhausting retransmissions on a dead link")
	}
}

func TestRTTEstimate(t *testing.T) {
	n := newTestNet(t, 14, simnet.LinkConfig{Rate: 10e6, Delay: 25 * time.Millisecond})
	var sc *Conn
	n.server.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.Write(200_000); c.Close() }
	})
	cc := n.client.Dial(2, 80)
	cc.OnPeerClose = func() { cc.Close() }
	n.sim.Run(time.Minute)
	srtt := sc.SRTT()
	// True RTT is ~50ms prop + serialization.
	if srtt < 45*time.Millisecond || srtt > 250*time.Millisecond {
		t.Errorf("SRTT = %v, want around 50-250ms", srtt)
	}
	if sc.Stats().RTTSamples == 0 {
		t.Error("no RTT samples collected")
	}
}

func TestBothSidesClose(t *testing.T) {
	n := newTestNet(t, 15, simnet.LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond})
	var sc *Conn
	n.server.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.Write(10_000); c.Close() }
	})
	cc := n.client.Dial(2, 80)
	cc.OnPeerClose = func() { cc.Close() }
	n.sim.Run(time.Minute)
	if sc.State() != StateDone {
		t.Errorf("server state = %v, want done", sc.State())
	}
	if cc.State() != StateDone {
		t.Errorf("client state = %v, want done", cc.State())
	}
	if len(n.client.conns) != 0 || len(n.server.conns) != 0 {
		t.Errorf("connection state leaked: client=%d server=%d",
			len(n.client.conns), len(n.server.conns))
	}
}

func TestDeterministicTransfer(t *testing.T) {
	run := func() (time.Duration, int64) {
		n := newTestNet(t, 77, simnet.LinkConfig{Rate: 5e6, Delay: 20 * time.Millisecond, Loss: 0.02, JitterStd: 2 * time.Millisecond})
		var sc *Conn
		n.server.Listen(80, func(c *Conn) {
			sc = c
			c.OnEstablished = func() { c.Write(300_000); c.Close() }
		})
		cc := n.client.Dial(2, 80)
		var doneAt time.Duration
		cc.OnPeerClose = func() { doneAt = n.sim.Now(); cc.Close() }
		n.sim.Run(5 * time.Minute)
		return doneAt, sc.Stats().Retransmits
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Errorf("same seed diverged: (%v,%d) vs (%v,%d)", d1, r1, d2, r2)
	}
	if d1 == 0 {
		t.Fatal("transfer never finished")
	}
}

func TestSequentialConnectionsSameHosts(t *testing.T) {
	n := newTestNet(t, 16, simnet.LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond})
	completed := 0
	n.server.Listen(80, func(c *Conn) {
		c.OnEstablished = func() { c.Write(20_000); c.Close() }
	})
	var dial func()
	dial = func() {
		cc := n.client.Dial(2, 80)
		cc.OnPeerClose = func() {
			completed++
			cc.Close()
			if completed < 3 {
				dial()
			}
		}
	}
	n.sim.After(0, dial)
	n.sim.Run(time.Minute)
	if completed != 3 {
		t.Errorf("completed %d sequential connections, want 3", completed)
	}
}

func TestAbortFiresOnce(t *testing.T) {
	n := newTestNet(t, 20, simnet.LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond})
	n.link.SetDown(true)
	cc := n.client.Dial(2, 80)
	fires := 0
	cc.OnAbort = func(string) { fires++; cc.Abort("again") }
	n.sim.Run(20 * time.Minute)
	if fires != 1 {
		t.Errorf("OnAbort fired %d times", fires)
	}
}

func TestWriteAfterDoneIgnored(t *testing.T) {
	n := newTestNet(t, 21, simnet.LinkConfig{Rate: 10e6, Delay: 5 * time.Millisecond})
	var sc *Conn
	n.server.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.Write(1000); c.Close() }
	})
	cc := n.client.Dial(2, 80)
	cc.OnPeerClose = func() { cc.Close() }
	n.sim.Run(time.Minute)
	if sc.State() != StateDone {
		t.Fatalf("state %v", sc.State())
	}
	sc.Write(5000) // must be a no-op, not a panic or resurrection
	n.sim.Run(2 * time.Minute)
	if sc.State() != StateDone {
		t.Errorf("write after done changed state to %v", sc.State())
	}
}

func TestRTOBackoffAndRecovery(t *testing.T) {
	// Take the link down mid-transfer, observe RTO growth, then bring it
	// back before the retry budget is exhausted: the transfer completes.
	n := newTestNet(t, 22, simnet.LinkConfig{Rate: 5e6, Delay: 10 * time.Millisecond})
	var sc *Conn
	n.server.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.Write(2_000_000); c.Close() }
	})
	cc := n.client.Dial(2, 80)
	var doneAt time.Duration
	cc.OnPeerClose = func() { doneAt = n.sim.Now(); cc.Close() }
	n.sim.Run(1 * time.Second)
	rtoBefore := sc.RTO()
	n.link.SetDown(true)
	n.sim.Run(8 * time.Second) // a few RTOs fire
	if sc.RTO() <= rtoBefore {
		t.Errorf("RTO did not back off: %v -> %v", rtoBefore, sc.RTO())
	}
	n.link.SetDown(false)
	n.sim.Run(3 * time.Minute)
	if doneAt == 0 {
		t.Error("transfer did not recover after outage")
	}
	if sc.Stats().Timeouts == 0 {
		t.Error("no timeouts counted during outage")
	}
}

func TestKarnNoSamplesFromRetransmits(t *testing.T) {
	// 30% loss: many retransmissions; SRTT must stay near the true RTT
	// rather than absorbing retransmission-inflated samples.
	n := newTestNet(t, 23, simnet.LinkConfig{Rate: 10e6, Delay: 25 * time.Millisecond, Loss: 0.3})
	var sc *Conn
	n.server.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.Write(100_000); c.Close() }
	})
	cc := n.client.Dial(2, 80)
	cc.OnPeerClose = func() { cc.Close() }
	n.sim.Run(10 * time.Minute)
	if sc.Stats().RTTSamples == 0 {
		t.Fatal("no clean RTT samples at all")
	}
	if srtt := sc.SRTT(); srtt > 2*time.Second {
		t.Errorf("SRTT %v inflated by retransmitted samples", srtt)
	}
}

func TestDelayedAckHalvesAckCount(t *testing.T) {
	ackCount := func(delayed bool) int64 {
		n := newTestNet(t, 25, simnet.LinkConfig{Rate: 20e6, Delay: 10 * time.Millisecond, QueueBytes: 256 * 1024})
		var sc *Conn
		n.server.Listen(80, func(c *Conn) {
			sc = c
			c.OnEstablished = func() { c.Write(500_000); c.Close() }
		})
		cc := n.client.Dial(2, 80)
		cc.SetDelayedAck(delayed)
		cc.OnPeerClose = func() { cc.Close() }
		n.sim.Run(time.Minute)
		if sc.State() != StateDone {
			t.Fatalf("transfer incomplete (delayed=%v)", delayed)
		}
		return sc.Stats().SegsRcvd
	}
	every, every2nd := ackCount(false), ackCount(true)
	if every2nd > every*2/3 {
		t.Errorf("delayed ACKs barely reduced ACK traffic: %d vs %d", every2nd, every)
	}
}

func TestDelayedAckStillFastRetransmits(t *testing.T) {
	// Loss recovery must keep working: OOO arrivals ACK immediately.
	n := newTestNet(t, 26, simnet.LinkConfig{Rate: 20e6, Delay: 20 * time.Millisecond, Loss: 0.02, QueueBytes: 256 * 1024})
	var sc *Conn
	n.server.Listen(80, func(c *Conn) {
		sc = c
		c.OnEstablished = func() { c.Write(800_000); c.Close() }
	})
	cc := n.client.Dial(2, 80)
	cc.SetDelayedAck(true)
	done := false
	cc.OnPeerClose = func() { done = true; cc.Close() }
	n.sim.Run(5 * time.Minute)
	if !done {
		t.Fatal("lossy transfer with delayed ACKs never completed")
	}
	if sc.Stats().FastRetransmits == 0 {
		t.Error("no fast retransmits despite loss; dup-ACK path broken under delayed ACKs")
	}
}

func TestDuplicateListenPanics(t *testing.T) {
	n := newTestNet(t, 27, simnet.LinkConfig{Rate: 10e6})
	n.server.Listen(8080, func(*Conn) {})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Listen did not panic")
		}
	}()
	n.server.Listen(8080, func(*Conn) {})
}

func TestEphemeralPortsUnique(t *testing.T) {
	n := newTestNet(t, 28, simnet.LinkConfig{Rate: 10e6})
	n.server.Listen(80, func(*Conn) {})
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		c := n.client.Dial(2, 80)
		if seen[c.Flow().SrcPort] {
			t.Fatalf("ephemeral port %d reused", c.Flow().SrcPort)
		}
		seen[c.Flow().SrcPort] = true
	}
}

func TestNonTCPIgnoredByHost(t *testing.T) {
	n := newTestNet(t, 29, simnet.LinkConfig{Rate: 10e6})
	// A UDP packet to a listening host must not create connection state.
	n.server.Listen(80, func(*Conn) { t.Error("UDP packet accepted as a connection") })
	cliNode := n.client.Node()
	cliNode.Send(cliNode.NICs()[0], n.sim.NewPacket(
		simnet.FlowKey{Proto: simnet.ProtoUDP, Src: 1, Dst: 2, SrcPort: 9, DstPort: 80}, 100, nil))
	n.sim.Run(time.Second)
	if len(n.server.conns) != 0 {
		t.Error("UDP created TCP connection state")
	}
}

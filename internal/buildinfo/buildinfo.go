// Package buildinfo renders the uniform -version output every vqprobe
// binary prints: module version and VCS state straight from the build
// metadata the Go toolchain embeds, so release builds need no ldflags
// plumbing.
package buildinfo

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
)

// Print writes the version block for one named binary.
func Print(w io.Writer, name string) {
	fmt.Fprintf(w, "%s %s\n", name, Version())
	fmt.Fprintf(w, "  go: %s %s/%s\n", runtime.Version(), runtime.GOOS, runtime.GOARCH)
}

// Version summarizes the embedded build metadata: the module version
// when the binary was built from a tagged module, otherwise the VCS
// revision (with a +dirty marker for modified trees), otherwise
// "devel".
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return "devel"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// Package trace is a stdlib-only, allocation-light span and event
// recorder for the vqprobe pipeline. One Tracer instance covers one
// timeline — a simulated session (clocked by simnet's virtual clock) or
// a serving process (clocked by wall time) — and stores events in a
// bounded ring buffer, so a long-running daemon keeps the most recent
// window instead of growing without bound.
//
// The design goals, in order:
//
//  1. Zero cost when disabled. Every method is safe on a nil *Tracer
//     and returns immediately, so call sites need no guards and the
//     disabled path performs no allocation.
//  2. Explicit structure. Spans carry explicit parent IDs rather than
//     goroutine- or context-implicit nesting; the simulator is
//     single-threaded over virtual time and the serving engine is
//     sharded, so implicit nesting would be wrong in both.
//  3. Portable output. Events export as NDJSON (one JSON object per
//     line, for grep/jq) or as Chrome trace_event JSON loadable in
//     Perfetto (https://ui.perfetto.dev). See export.go.
//
// Timestamps are time.Durations from an arbitrary epoch supplied by the
// Clock function: simnet.Sim.Now for simulations (virtual time), or
// wall time since tracer creation by default. Both are monotonic, which
// is all the exporters require.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span or instant event within one Tracer. IDs are
// dense and start at 1; 0 means "no parent" / "no span".
type SpanID uint64

// Event kinds, chosen to match the Chrome trace_event phase letters.
const (
	KindSpan    byte = 'X' // complete span with a duration
	KindInstant byte = 'i' // point-in-time event
)

// Event is one recorded span or instant. Events are plain values; the
// ring buffer stores them inline.
type Event struct {
	ID     SpanID
	Parent SpanID        // 0 = root
	Start  time.Duration // offset from the tracer's clock epoch
	Dur    time.Duration // 0 for instants
	Track  string        // timeline row: "net", "tcp", "player", "serve", ...
	Name   string        // event name: "stall", "rto", "predict", ...
	Detail string        // free-form annotation, may be empty
	Kind   byte          // KindSpan or KindInstant
}

// Config parameterizes New. The zero value is usable: a 4096-entry ring
// clocked by wall time since creation.
type Config struct {
	// Capacity is the ring buffer size in events. Once full, new events
	// overwrite the oldest; Dropped reports how many were lost.
	// Non-positive means DefaultCapacity.
	Capacity int

	// Clock returns the current time as an offset from a fixed epoch.
	// It must be monotonic and safe for concurrent use if the tracer
	// is shared across goroutines. Nil means wall time since New.
	Clock func() time.Duration
}

// DefaultCapacity is the ring size used when Config.Capacity is unset.
const DefaultCapacity = 4096

// Tracer records events into a bounded ring. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops).
type Tracer struct {
	clock func() time.Duration
	ids   atomic.Uint64

	mu  sync.Mutex
	buf []Event // ring storage, len == capacity
	n   uint64  // total events ever recorded; write cursor = n % len(buf)
}

// New returns a Tracer with the given configuration.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	t := &Tracer{buf: make([]Event, cfg.Capacity)}
	if cfg.Clock != nil {
		t.clock = cfg.Clock
	} else {
		// The default clock is intentionally the wall clock: it serves
		// real-time tracers (vqserve). Simulations override it with the
		// virtual clock via Config.Clock (see simnet).
		//lint:ignore virtclock documented wall-clock epoch for real-time tracers
		epoch := time.Now()
		//lint:ignore virtclock documented wall-clock epoch for real-time tracers
		t.clock = func() time.Duration { return time.Since(epoch) }
	}
	return t
}

// Enabled reports whether events will actually be recorded. It is the
// idiomatic guard for call sites that would otherwise pay to format a
// detail string.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the tracer's clock reading, or 0 on a nil tracer.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock()
}

// NextID allocates a fresh span ID. Exposed for callers that need the
// ID before the event is recorded (e.g. to propagate as a parent).
func (t *Tracer) NextID() SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.ids.Add(1))
}

func (t *Tracer) record(ev Event) {
	t.mu.Lock()
	t.buf[t.n%uint64(len(t.buf))] = ev
	t.n++
	t.mu.Unlock()
}

// Instant records a point-in-time event and returns its ID.
func (t *Tracer) Instant(track, name, detail string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	id := t.NextID()
	t.record(Event{ID: id, Parent: parent, Start: t.clock(), Track: track, Name: name, Detail: detail, Kind: KindInstant})
	return id
}

// RecordSpan records an already-measured complete span: it started at
// start (on the tracer's clock) and lasted dur. Use this when the
// caller measures with its own stopwatch, e.g. the serving engine which
// times stages with time.Time deltas.
func (t *Tracer) RecordSpan(track, name, detail string, parent SpanID, start, dur time.Duration) SpanID {
	if t == nil {
		return 0
	}
	// Clamp rather than trust the caller's stopwatch: a skewed clock
	// must not produce spans that start before the epoch or run
	// backwards — both render as garbage in Perfetto and break
	// duration accounting downstream.
	if start < 0 {
		start = 0
	}
	if dur < 0 {
		dur = 0
	}
	id := t.NextID()
	t.record(Event{ID: id, Parent: parent, Start: start, Dur: dur, Track: track, Name: name, Detail: detail, Kind: KindSpan})
	return id
}

// Span is an in-progress interval handed out by StartSpan. It is a
// plain value — copying is fine, and the zero Span (from a nil tracer)
// is inert: End and EndDetail no-op, ID returns 0.
type Span struct {
	tr     *Tracer
	start  time.Duration
	id     SpanID
	parent SpanID
	track  string
	name   string
}

// StartSpan opens a span; the event is recorded when End (or
// EndDetail) is called. parent may be 0 for a root span.
func (t *Tracer) StartSpan(track, name string, parent SpanID) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, start: t.clock(), id: t.NextID(), parent: parent, track: track, name: name}
}

// ID returns the span's ID, or 0 for an inert span.
func (s Span) ID() SpanID { return s.id }

// Active reports whether the span will record anything on End.
func (s Span) Active() bool { return s.tr != nil }

// End records the span with no detail annotation.
func (s Span) End() { s.EndDetail("") }

// EndDetail records the span with a detail annotation. Calling it more
// than once records the span more than once; don't.
func (s Span) EndDetail(detail string) {
	if s.tr == nil {
		return
	}
	dur := s.tr.clock() - s.start
	if dur < 0 {
		dur = 0 // clock skewed backwards between start and end
	}
	s.tr.record(Event{ID: s.id, Parent: s.parent, Start: s.start, Dur: dur,
		Track: s.track, Name: s.name, Detail: detail, Kind: KindSpan})
}

// Len reports how many events are currently held (≤ capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Dropped reports how many events were overwritten because the ring
// filled up.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events returns a copy of the buffered events in recording order
// (oldest first). Spans appear at the position they *ended*, which is
// fine for both exporters — neither requires start-time order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cap64 := uint64(len(t.buf))
	if t.n <= cap64 {
		out := make([]Event, t.n)
		copy(out, t.buf[:t.n])
		return out
	}
	out := make([]Event, 0, len(t.buf))
	cur := t.n % cap64
	out = append(out, t.buf[cur:]...)
	out = append(out, t.buf[:cur]...)
	return out
}

// Reset discards all buffered events. The ID counter keeps running so
// IDs stay unique across the tracer's lifetime.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.n = 0
	t.mu.Unlock()
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonEvent is the NDJSON wire form of an Event. Timestamps are integer
// nanoseconds from the clock epoch so virtual-clock traces round-trip
// exactly.
type jsonEvent struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Track   string `json:"track"`
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	Kind    string `json:"kind"` // "span" | "instant"
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns,omitempty"`
}

// WriteNDJSON writes one JSON object per buffered event, oldest first.
// The format is stable and greppable; see docs/OBSERVABILITY.md.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		kind := "span"
		if ev.Kind == KindInstant {
			kind = "instant"
		}
		je := jsonEvent{
			ID: uint64(ev.ID), Parent: uint64(ev.Parent),
			Track: ev.Track, Name: ev.Name, Detail: ev.Detail, Kind: kind,
			StartNS: ev.Start.Nanoseconds(), DurNS: ev.Dur.Nanoseconds(),
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace_event JSON array. ts and
// dur are microseconds; fractional values are allowed, so nanosecond
// precision survives.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`    // instant scope
	Args map[string]any `json:"args,omitempty"` // id/parent/detail
}

// WriteChromeTrace writes the buffer in Chrome trace_event JSON format
// ({"traceEvents": [...]}), loadable in Perfetto or chrome://tracing.
// Each distinct Track becomes its own named thread row (via
// thread_name metadata events); Perfetto nests same-track spans by
// time containment, which matches the parent IDs we record.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()

	// Map tracks to thread IDs in order of first appearance so the
	// output is deterministic for a given buffer.
	tids := make(map[string]int)
	var order []string
	for _, ev := range events {
		if _, ok := tids[ev.Track]; !ok {
			tids[ev.Track] = len(tids) + 1
			order = append(order, ev.Track)
		}
	}

	out := make([]chromeEvent, 0, len(events)+len(order))
	for _, track := range order {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[track],
			Args: map[string]any{"name": track},
		})
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Track, Pid: 1, Tid: tids[ev.Track],
			Ts: float64(ev.Start.Nanoseconds()) / 1e3,
		}
		args := map[string]any{"id": uint64(ev.ID)}
		if ev.Parent != 0 {
			args["parent"] = uint64(ev.Parent)
		}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		ce.Args = args
		if ev.Kind == KindInstant {
			ce.Ph = "i"
			ce.S = "t" // thread-scoped instant
		} else {
			ce.Ph = "X"
			dur := float64(ev.Dur.Nanoseconds()) / 1e3
			ce.Dur = &dur
		}
		out = append(out, ce)
	}

	if _, err := io.WriteString(w, `{"traceEvents":`); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(out); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, `,"displayTimeUnit":"ms"}`)
	return err
}

package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// simClock returns a fake virtual clock advanced manually by tests.
func simClock() (clock func() time.Duration, advance func(time.Duration)) {
	var now time.Duration
	return func() time.Duration { return now }, func(d time.Duration) { now += d }
}

func TestSpanAndInstantRecording(t *testing.T) {
	clock, advance := simClock()
	tr := New(Config{Capacity: 16, Clock: clock})

	root := tr.StartSpan("player", "session", 0)
	advance(10 * time.Millisecond)
	tr.Instant("tcp", "rto", "rto=200ms", root.ID())
	advance(5 * time.Millisecond)
	child := tr.StartSpan("player", "stall", root.ID())
	advance(30 * time.Millisecond)
	child.EndDetail("rebuffer")
	advance(5 * time.Millisecond)
	root.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Recording order: instant, child span (ended first), root span.
	inst, stall, sess := evs[0], evs[1], evs[2]
	if inst.Kind != KindInstant || inst.Name != "rto" || inst.Parent != root.ID() {
		t.Errorf("instant event wrong: %+v", inst)
	}
	if inst.Start != 10*time.Millisecond {
		t.Errorf("instant at %v, want 10ms", inst.Start)
	}
	if stall.Kind != KindSpan || stall.Start != 15*time.Millisecond || stall.Dur != 30*time.Millisecond {
		t.Errorf("stall span wrong: %+v", stall)
	}
	if stall.Detail != "rebuffer" || stall.Parent != sess.ID {
		t.Errorf("stall annotation wrong: %+v", stall)
	}
	if sess.Start != 0 || sess.Dur != 50*time.Millisecond || sess.Parent != 0 {
		t.Errorf("session span wrong: %+v", sess)
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", tr.Dropped())
	}
}

func TestRingWraparound(t *testing.T) {
	clock, advance := simClock()
	tr := New(Config{Capacity: 4, Clock: clock})
	for i := 0; i < 10; i++ {
		tr.Instant("t", "ev", "", 0)
		advance(time.Millisecond)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	// Oldest-first: events 7..10 (IDs are 1-based), at 6..9 ms.
	for i, ev := range evs {
		wantID := SpanID(7 + i)
		wantAt := time.Duration(6+i) * time.Millisecond
		if ev.ID != wantID || ev.Start != wantAt {
			t.Errorf("evs[%d] = id %d at %v, want id %d at %v", i, ev.ID, ev.Start, wantID, wantAt)
		}
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	sp := tr.StartSpan("t", "n", 0)
	if sp.Active() || sp.ID() != 0 {
		t.Fatal("nil tracer produced an active span")
	}
	sp.End()
	sp.EndDetail("x")
	if id := tr.Instant("t", "n", "", 0); id != 0 {
		t.Fatal("nil tracer allocated an instant ID")
	}
	if id := tr.RecordSpan("t", "n", "", 0, 0, 0); id != 0 {
		t.Fatal("nil tracer allocated a span ID")
	}
	if tr.Now() != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer accessors not zero")
	}
	tr.Reset()
}

// TestDisabledPathAllocs asserts the disabled (nil-tracer) fast path
// performs zero allocations — the mechanism behind the "tracing off
// adds <5% to serving throughput" acceptance bar, checked exactly
// rather than with a flaky timing comparison.
func TestDisabledPathAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("serve", "request", 0)
		tr.Instant("net", "drop", "", sp.ID())
		tr.RecordSpan("serve", "predict", "", sp.ID(), 0, 0)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(Config{Capacity: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.StartSpan("serve", "request", 0)
				tr.Instant("serve", "tick", "", sp.ID())
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != 128 {
		t.Fatalf("Len = %d, want full ring 128", got)
	}
	seen := map[SpanID]bool{}
	for _, ev := range tr.Events() {
		if ev.ID == 0 {
			t.Fatal("event with zero ID")
		}
		if ev.Kind == KindSpan && seen[ev.ID] {
			t.Fatalf("duplicate span ID %d", ev.ID)
		}
		seen[ev.ID] = true
	}
}

func TestWriteNDJSON(t *testing.T) {
	clock, advance := simClock()
	tr := New(Config{Capacity: 8, Clock: clock})
	sp := tr.StartSpan("player", "download", 0)
	advance(1500 * time.Microsecond)
	tr.Instant("net", "queue_drop", "link=lan", sp.ID())
	sp.EndDetail("bytes=4096")

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q not JSON: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0]["kind"] != "instant" || lines[0]["name"] != "queue_drop" || lines[0]["detail"] != "link=lan" {
		t.Errorf("instant line wrong: %v", lines[0])
	}
	if lines[0]["start_ns"] != float64(1500000) {
		t.Errorf("instant start_ns = %v, want 1.5e6", lines[0]["start_ns"])
	}
	if lines[1]["kind"] != "span" || lines[1]["dur_ns"] != float64(1500000) {
		t.Errorf("span line wrong: %v", lines[1])
	}
}

func TestWriteChromeTrace(t *testing.T) {
	clock, advance := simClock()
	tr := New(Config{Capacity: 8, Clock: clock})
	sess := tr.StartSpan("player", "session", 0)
	advance(2 * time.Millisecond)
	tr.Instant("tcp", "fast_retransmit", "seq=4096", sess.ID())
	advance(2 * time.Millisecond)
	sess.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 tracks → 2 thread_name metadata events, plus 2 real events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4", len(doc.TraceEvents))
	}
	var meta, spans, instants int
	tids := map[string]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
			if ev["name"] != "thread_name" {
				t.Errorf("metadata event missing thread_name: %v", ev)
			}
			name := ev["args"].(map[string]any)["name"].(string)
			tids[name] = ev["tid"].(float64)
		case "X":
			spans++
			if ev["dur"] != float64(4000) { // 4ms in µs
				t.Errorf("span dur = %v µs, want 4000", ev["dur"])
			}
		case "i":
			instants++
			if ev["s"] != "t" {
				t.Errorf("instant missing thread scope: %v", ev)
			}
			if ev["ts"] != float64(2000) {
				t.Errorf("instant ts = %v µs, want 2000", ev["ts"])
			}
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if meta != 2 || spans != 1 || instants != 1 {
		t.Fatalf("meta=%d spans=%d instants=%d, want 2/1/1", meta, spans, instants)
	}
	if tids["player"] == tids["tcp"] {
		t.Error("player and tcp share a tid; tracks must be separate rows")
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("output contains NaN — not JSON-parseable")
	}
}

func TestResetKeepsIDsUnique(t *testing.T) {
	tr := New(Config{Capacity: 8})
	first := tr.Instant("t", "a", "", 0)
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tr.Len())
	}
	second := tr.Instant("t", "b", "", 0)
	if second <= first {
		t.Fatalf("ID reuse after Reset: %d then %d", first, second)
	}
}

package trace

// Regression tests for clock-skew hardening: a Config.Clock that steps
// backwards between a span's start and end (NTP step, broken virtual
// clock) must not record negative durations or pre-epoch starts, which
// render as garbage in Perfetto and corrupt duration accounting.

import (
	"testing"
	"time"
)

func TestEndDetailClampsBackwardsClock(t *testing.T) {
	now := 10 * time.Second
	tr := New(Config{Capacity: 8, Clock: func() time.Duration { return now }})
	s := tr.StartSpan("test", "skew", 0)
	now = 7 * time.Second // clock steps backwards mid-span
	s.End()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if evs[0].Dur != 0 {
		t.Errorf("backwards clock recorded Dur=%v, want clamped to 0", evs[0].Dur)
	}
	if evs[0].Start != 10*time.Second {
		t.Errorf("Start=%v, want the span's original start", evs[0].Start)
	}
}

func TestRecordSpanClampsNegativeInputs(t *testing.T) {
	tr := New(Config{Capacity: 8})
	tr.RecordSpan("test", "neg", "", 0, -5*time.Second, -time.Second)
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if evs[0].Start != 0 || evs[0].Dur != 0 {
		t.Errorf("negative stopwatch recorded Start=%v Dur=%v, want both clamped to 0",
			evs[0].Start, evs[0].Dur)
	}
}

// Package metrics provides the aggregation and feature-vector primitives
// shared by all probes — streaming min/max/mean/std accumulators and named
// feature vectors that merge across vantage points — plus the serving
// observability registry (registry.go): counters, gauges and histograms
// with Prometheus text exposition, standard library only.
package metrics

import (
	"math"
	"sort"
)

// Agg is a streaming aggregator over float64 samples. The zero value is
// ready to use.
type Agg struct {
	n          int
	sum, sumsq float64
	minV, maxV float64
}

// Add records one sample.
func (a *Agg) Add(v float64) {
	if a.n == 0 {
		a.minV, a.maxV = v, v
	} else {
		if v < a.minV {
			a.minV = v
		}
		if v > a.maxV {
			a.maxV = v
		}
	}
	a.n++
	a.sum += v
	a.sumsq += v * v
}

// Count returns the number of samples.
func (a *Agg) Count() int { return a.n }

// Mean returns the sample mean, or 0 with no samples.
func (a *Agg) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Min returns the smallest sample, or 0 with no samples.
func (a *Agg) Min() float64 { return a.minV }

// Max returns the largest sample, or 0 with no samples.
func (a *Agg) Max() float64 { return a.maxV }

// Std returns the population standard deviation, or 0 with fewer than
// two samples.
func (a *Agg) Std() float64 {
	if a.n < 2 {
		return 0
	}
	m := a.Mean()
	v := a.sumsq/float64(a.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Fill writes the aggregate's summary statistics into vec under
// name_avg/min/max/std/cnt.
func (a *Agg) Fill(vec Vector, name string) {
	vec[name+"_avg"] = a.Mean()
	vec[name+"_min"] = a.Min()
	vec[name+"_max"] = a.Max()
	vec[name+"_std"] = a.Std()
	vec[name+"_cnt"] = float64(a.n)
}

// Vector is a named feature vector. Missing features are simply absent;
// the ML layer treats absent keys as missing values.
type Vector map[string]float64

// Merge copies every feature of other into v under prefix+".". Vantage
// point records are merged this way ("mobile.", "router.", "server.").
func (v Vector) Merge(prefix string, other Vector) {
	for k, val := range other {
		v[prefix+"."+k] = val
	}
}

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// Names returns the sorted feature names.
func (v Vector) Names() []string {
	names := make([]string, 0, len(v))
	for k := range v {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

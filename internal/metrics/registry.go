package metrics

// This file is the operational-metrics half of the package: a small,
// dependency-free counters/gauges/histograms registry with Prometheus
// text exposition, written for the serving engine (the feature-vector
// half above is the ML substrate). Series names may carry a literal
// label set, e.g. `vqserve_queue_depth{shard="3"}`; series sharing a
// base name form one family in the exposition output.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe for concurrent
// use; the zero value is ready.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float-valued metric that can go up and down. Safe for
// concurrent use; the zero value is ready.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		val := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative le-buckets, Prometheus
// style. Safe for concurrent use.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
	ex      atomic.Pointer[Exemplar]
}

// Exemplar links a recent observation to the trace that produced it,
// in the OpenMetrics sense: scrape the histogram, follow the trace ID
// to the exact request behind a latency bucket.
type Exemplar struct {
	TraceID string
	Value   float64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64{}, bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// ObserveExemplar records a sample and retains it as the histogram's
// exemplar, tagged with the originating trace ID. The latest exemplar
// wins; exposition shows it only in OpenMetrics output (the 0.0.4 text
// format has no exemplar syntax).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID != "" {
		h.ex.Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// Exemplar returns the most recently attached exemplar, or nil.
func (h *Histogram) Exemplar() *Exemplar { return h.ex.Load() }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// LatencyBuckets is a general-purpose latency bucket layout in seconds,
// spanning 1µs to 1s.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
}

// series is one registered metric instance.
type series struct {
	labels string // label body without braces, "" for none
	metric any    // *Counter, *Gauge or *Histogram
}

// family groups series sharing a base name.
type family struct {
	name, help, kind string
	order            []string
	series           map[string]*series
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration is idempotent: asking for an existing
// series returns it.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// splitName separates `base{label="x"}` into base and label body.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func (r *Registry) register(name, help, kind string, mk func() any) any {
	base, labels := splitName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[base]
	if f == nil {
		f = &family{name: base, help: help, kind: kind, series: map[string]*series{}}
		r.families[base] = f
		r.order = append(r.order, base)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", base, f.kind, kind))
	}
	s := f.series[labels]
	if s == nil {
		s = &series{labels: labels, metric: mk()}
		f.series[labels] = s
		f.order = append(f.order, labels)
	}
	return s.metric
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, "counter", func() any { return &Counter{} }).(*Counter)
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, "gauge", func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns (registering if needed) the named histogram; bounds
// are the bucket upper limits (+Inf is implicit) and are fixed by the
// first registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, "histogram", func() any { return newHistogram(bounds) }).(*Histogram)
}

// withLabel renders a label body plus an optional extra label.
func withLabel(labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return ""
	case labels == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + labels + "}"
	default:
		return "{" + labels + "," + extra + "}"
	}
}

// WriteText renders every registered metric in Prometheus text
// exposition format (version 0.0.4). Output is byte-identical to what
// it was before exemplar support existed: exemplars only appear in
// WriteOpenMetrics.
func (r *Registry) WriteText(w io.Writer) {
	r.writeText(w, false)
}

// WriteOpenMetrics renders the registry with OpenMetrics extensions:
// histogram buckets carry `# {trace_id="..."} value` exemplars (on the
// first bucket wide enough to contain the exemplar's value) and the
// output ends with the mandatory `# EOF` marker.
func (r *Registry) WriteOpenMetrics(w io.Writer) {
	r.writeText(w, true)
	fmt.Fprint(w, "# EOF\n")
}

func (r *Registry) writeText(w io.Writer, openMetrics bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, base := range r.order {
		f := r.families[base]
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		for _, labels := range f.order {
			s := f.series[labels]
			switch m := s.metric.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, withLabel(labels, ""), m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, withLabel(labels, ""), formatFloat(m.Value()))
			case *Histogram:
				var ex *Exemplar
				if openMetrics {
					ex = m.Exemplar()
				}
				exSuffix := func(bound float64) string {
					if ex == nil || ex.Value > bound {
						return ""
					}
					suffix := fmt.Sprintf(" # {trace_id=%q} %s", ex.TraceID, formatFloat(ex.Value))
					ex = nil // an exemplar annotates exactly one bucket
					return suffix
				}
				var cum uint64
				for i, bound := range m.bounds {
					cum += m.counts[i].Load()
					le := `le="` + formatFloat(bound) + `"`
					fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, withLabel(labels, le), cum, exSuffix(bound))
				}
				cum += m.counts[len(m.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d%s\n", f.name, withLabel(labels, `le="+Inf"`), cum, exSuffix(math.Inf(1)))
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, withLabel(labels, ""), formatFloat(m.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, withLabel(labels, ""), m.Count())
			}
		}
	}
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// SeriesSnapshot is one registered series' point-in-time state, the
// introspection form the obs telemetry plane samples. Counter and gauge
// values land in Value; histograms carry their bucket layout and
// per-bucket (non-cumulative) counts. Bounds is shared with the live
// histogram — callers must not mutate it; Counts is freshly copied.
type SeriesSnapshot struct {
	Name   string // base family name
	Labels string // label body without braces, "" for none
	Kind   string // "counter", "gauge" or "histogram"
	Value  float64
	// Histogram-only fields:
	Bounds []float64 // ascending bucket upper bounds; +Inf implicit
	Counts []uint64  // per-bucket counts, len(Bounds)+1 (last = overflow)
	Sum    float64
	Count  uint64
}

// FullName renders the series' registration name (base plus label set).
func (s *SeriesSnapshot) FullName() string {
	if s.Labels == "" {
		return s.Name
	}
	return s.Name + "{" + s.Labels + "}"
}

// Snapshot returns the state of every registered series, families in
// registration order and series within a family in registration order —
// a deterministic enumeration for the same registration and load
// history. Individual metric reads are atomic; a histogram's buckets,
// sum and count are read without a collective lock, so under concurrent
// observation they may straddle an in-flight Observe (fine for
// monitoring; quiesce writers for exact snapshots).
func (r *Registry) Snapshot() []SeriesSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []SeriesSnapshot
	for _, base := range r.order {
		f := r.families[base]
		for _, labels := range f.order {
			s := f.series[labels]
			snap := SeriesSnapshot{Name: f.name, Labels: labels, Kind: f.kind}
			switch m := s.metric.(type) {
			case *Counter:
				snap.Value = float64(m.Value())
			case *Gauge:
				snap.Value = m.Value()
			case *Histogram:
				snap.Bounds = m.bounds
				snap.Counts = make([]uint64, len(m.counts))
				for i := range m.counts {
					snap.Counts[i] = m.counts[i].Load()
				}
				snap.Sum = m.Sum()
				snap.Count = m.Count()
			}
			out = append(out, snap)
		}
	}
	return out
}

// Handler serves the registry over HTTP as a /metrics endpoint. The
// default output is Prometheus text 0.0.4; a scraper whose Accept
// header asks for application/openmetrics-text gets the OpenMetrics
// rendering, which is where histogram exemplars appear.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req != nil && strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

package metrics

import (
	"reflect"
	"testing"
)

// Snapshot must enumerate every series in registration order with the
// exact live values — it is the contract the obs sampler builds on.
func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	g := r.Gauge(`depth{shard="0"}`, "queue depth")
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})

	c.Add(7)
	g.Set(3.5)
	h.Observe(0.005) // bucket 0
	h.Observe(0.05)  // bucket 1
	h.Observe(0.5)   // bucket 2
	h.Observe(5)     // overflow

	ss := r.Snapshot()
	if len(ss) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(ss))
	}
	if ss[0].Name != "reqs_total" || ss[0].Kind != "counter" || ss[0].Value != 7 {
		t.Fatalf("counter snapshot = %+v", ss[0])
	}
	if ss[1].FullName() != `depth{shard="0"}` || ss[1].Kind != "gauge" || ss[1].Value != 3.5 {
		t.Fatalf("gauge snapshot = %+v", ss[1])
	}
	hs := ss[2]
	if hs.Kind != "histogram" || hs.Count != 4 || hs.Sum != 0.005+0.05+0.5+5 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	if !reflect.DeepEqual(hs.Bounds, []float64{0.01, 0.1, 1}) {
		t.Fatalf("bounds = %v", hs.Bounds)
	}
	if !reflect.DeepEqual(hs.Counts, []uint64{1, 1, 1, 1}) {
		t.Fatalf("per-bucket counts = %v, want [1 1 1 1]", hs.Counts)
	}

	// Counts must be a copy: mutating the snapshot cannot reach the
	// live histogram.
	hs.Counts[0] = 99
	if got := r.Snapshot()[2].Counts[0]; got != 1 {
		t.Fatalf("snapshot mutation leaked into registry: %d", got)
	}

	// Registration order is stable across snapshots.
	r.Counter("later_total", "registered after first snapshot")
	ss2 := r.Snapshot()
	for i, want := range []string{"reqs_total", "depth", "lat_seconds", "later_total"} {
		if ss2[i].Name != want {
			t.Fatalf("series %d = %q, want %q", i, ss2[i].Name, want)
		}
	}
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAggBasics(t *testing.T) {
	var a Agg
	if a.Count() != 0 || a.Mean() != 0 || a.Std() != 0 {
		t.Error("zero-value aggregate must report zeros")
	}
	for _, v := range []float64{3, 1, 4, 1, 5} {
		a.Add(v)
	}
	if a.Count() != 5 {
		t.Errorf("count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
	if got := a.Mean(); math.Abs(got-2.8) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
}

func TestAggPropertyOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		var a Agg
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Bound magnitude to keep float error analysis trivial.
			x = math.Mod(x, 1e6)
			a.Add(x)
			ok = ok && a.Min() <= a.Mean()+1e-6 && a.Mean() <= a.Max()+1e-6 && a.Std() >= 0
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggStdOfConstant(t *testing.T) {
	var a Agg
	for i := 0; i < 10; i++ {
		a.Add(7)
	}
	if a.Std() > 1e-9 {
		t.Errorf("std of constant series = %v", a.Std())
	}
}

func TestAggFill(t *testing.T) {
	var a Agg
	a.Add(2)
	a.Add(4)
	v := Vector{}
	a.Fill(v, "x")
	want := map[string]float64{"x_avg": 3, "x_min": 2, "x_max": 4, "x_std": 1, "x_cnt": 2}
	for k, val := range want {
		if math.Abs(v[k]-val) > 1e-9 {
			t.Errorf("%s = %v, want %v", k, v[k], val)
		}
	}
}

func TestVectorMergeCloneNames(t *testing.T) {
	v := Vector{"b": 2, "a": 1}
	names := v.Names()
	if names[0] != "a" || names[1] != "b" {
		t.Errorf("names not sorted: %v", names)
	}
	c := v.Clone()
	c["a"] = 99
	if v["a"] != 1 {
		t.Error("clone aliases original")
	}
	m := Vector{}
	m.Merge("vp", v)
	if m["vp.a"] != 1 || m["vp.b"] != 2 {
		t.Errorf("merge result %v", m)
	}
}

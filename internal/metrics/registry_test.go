package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("requests_total", "total requests"); again != c {
		t.Fatal("re-registration did not return the existing counter")
	}
	g := r.Gauge(`queue_depth{shard="2"}`, "queue depth")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 5",
		"# TYPE queue_depth gauge",
		`queue_depth{shard="2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat{stage="predict"}`, "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 5.555 {
		t.Fatalf("sum = %g, want 5.555", h.Sum())
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{stage="predict",le="0.01"} 1`,
		`lat_bucket{stage="predict",le="0.1"} 2`,
		`lat_bucket{stage="predict",le="1"} 3`,
		`lat_bucket{stage="predict",le="+Inf"} 4`,
		`lat_sum{stage="predict"} 5.555`,
		`lat_count{stage="predict"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic registering x_total as a gauge")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total", "")
			h := r.Histogram("obs", "", LatencyBuckets)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-6)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
	if got := r.Histogram("obs", "", nil).Count(); got != 8000 {
		t.Fatalf("observations = %d, want 8000", got)
	}
}

func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat{stage="total"}`, "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.ObserveExemplar(0.05, "1a2b")
	if ex := h.Exemplar(); ex == nil || ex.TraceID != "1a2b" || ex.Value != 0.05 {
		t.Fatalf("exemplar = %+v, want {1a2b 0.05}", h.Exemplar())
	}
	// The latest exemplar wins; empty trace IDs never replace one.
	h.ObserveExemplar(0.5, "c3d4")
	h.ObserveExemplar(0.7, "")
	if ex := h.Exemplar(); ex.TraceID != "c3d4" {
		t.Fatalf("exemplar = %+v, want c3d4", ex)
	}

	// Default exposition is exemplar-free and unchanged.
	var plain strings.Builder
	r.WriteText(&plain)
	if strings.Contains(plain.String(), "trace_id") {
		t.Errorf("0.0.4 exposition leaked an exemplar:\n%s", plain.String())
	}

	// OpenMetrics shows the exemplar on the first bucket containing its
	// value (0.5 -> le="1"), exactly once, and ends with # EOF.
	var om strings.Builder
	r.WriteOpenMetrics(&om)
	out := om.String()
	want := `lat_bucket{stage="total",le="1"} 4 # {trace_id="c3d4"} 0.5`
	if !strings.Contains(out, want) {
		t.Errorf("OpenMetrics missing %q in:\n%s", want, out)
	}
	if strings.Count(out, "trace_id") != 1 {
		t.Errorf("exemplar rendered %d times, want 1:\n%s", strings.Count(out, "trace_id"), out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics output missing # EOF terminator")
	}
}

func TestExemplarAboveAllBucketsLandsOnInf(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1})
	h.ObserveExemplar(5, "beef")
	var om strings.Builder
	r.WriteOpenMetrics(&om)
	want := `lat_bucket{le="+Inf"} 1 # {trace_id="beef"} 5`
	if !strings.Contains(om.String(), want) {
		t.Errorf("OpenMetrics missing %q in:\n%s", want, om.String())
	}
}

func TestExemplarConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", LatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.ObserveExemplar(float64(j)*1e-6, "t")
				var b strings.Builder
				if j%100 == 0 {
					r.WriteOpenMetrics(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
}

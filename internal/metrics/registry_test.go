package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("requests_total", "total requests"); again != c {
		t.Fatal("re-registration did not return the existing counter")
	}
	g := r.Gauge(`queue_depth{shard="2"}`, "queue depth")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		"requests_total 5",
		"# TYPE queue_depth gauge",
		`queue_depth{shard="2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat{stage="predict"}`, "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 5.555 {
		t.Fatalf("sum = %g, want 5.555", h.Sum())
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{stage="predict",le="0.01"} 1`,
		`lat_bucket{stage="predict",le="0.1"} 2`,
		`lat_bucket{stage="predict",le="1"} 3`,
		`lat_bucket{stage="predict",le="+Inf"} 4`,
		`lat_sum{stage="predict"} 5.555`,
		`lat_count{stage="predict"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic registering x_total as a gauge")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits_total", "")
			h := r.Histogram("obs", "", LatencyBuckets)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-6)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits_total", "").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
	if got := r.Histogram("obs", "", nil).Count(); got != 8000 {
		t.Fatalf("observations = %d, want 8000", got)
	}
}

package chaos

import (
	"os"
	"runtime"
	"strconv"
	"testing"

	"vqprobe/internal/serve"
)

// seed returns the scenario seed: CHAOS_SEED from the environment (the
// reproduction knob printed by every failure) or the fixed default.
func seed() int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return DefaultSeed
}

// withLeakCheck runs fn and then asserts the goroutine count settles
// back to its pre-scenario baseline.
func withLeakCheck(t *testing.T, fn func(h *Harness)) {
	h := New(t, seed())
	baseline := runtime.NumGoroutine()
	fn(h)
	h.SettleGoroutines(baseline)
}

func TestServeMalformedIngest(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.ServeMalformedIngest(BuildModel(t, "lan_cong_severe"))
	})
}

func TestServeNonFiniteFlood(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.ServeNonFiniteFlood(BuildModel(t, "lan_cong_severe"))
	})
}

// The non-finite flood is fully deterministic end to end (batch order,
// classifications, error strings): same seed, same event log.
func TestServeNonFiniteFloodDeterministic(t *testing.T) {
	m := BuildModel(t, "lan_cong_severe")
	run := func() string {
		h := New(t, seed())
		h.ServeNonFiniteFlood(m)
		return h.EventLog()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different event logs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

func TestServeQueueSaturationShed(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.ServeQueueSaturation(BuildModel(t, "lan_cong_severe"), serve.Shed)
	})
}

func TestServeQueueSaturationBlock(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.ServeQueueSaturation(BuildModel(t, "lan_cong_severe"), serve.Block)
	})
}

func TestServeReloadStorm(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.ServeReloadStorm(BuildModel(t, "lan_cong_severe"), BuildModel(t, "wan_cong_severe"))
	})
}

func TestServeSlowClients(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.ServeSlowClients(BuildModel(t, "lan_cong_severe"))
	})
}

func TestServeWorkerPanics(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.ServeWorkerPanics(BuildModel(t, "lan_cong_severe"))
	})
}

func TestServeClockSkew(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.ServeClockSkew(BuildModel(t, "lan_cong_severe"))
	})
}

func TestServePredictionsStableAcrossChaos(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.ServePredictionsStable(func() *serve.Model { return BuildModel(t, "lan_cong_severe") })
	})
}

// The router scenarios extend the harness to the multi-replica
// topology: replica killed mid-batch, split-brain reload, retry storm
// against a flapping replica, client disconnect through the proxy.

func TestRouteReplicaKill(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.RouteReplicaKill(func() *serve.Model { return BuildModel(t, "lan_cong_severe") })
	})
}

func TestRouteSplitBrainReload(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.RouteSplitBrainReload(func() *serve.Model { return BuildModel(t, "lan_cong_severe") })
	})
}

func TestRouteRetryStorm(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.RouteRetryStorm(func() *serve.Model { return BuildModel(t, "lan_cong_severe") })
	})
}

func TestRouteClientDisconnect(t *testing.T) {
	withLeakCheck(t, func(h *Harness) {
		h.RouteClientDisconnect(BuildModel(t, "lan_cong_severe"))
	})
}

func TestSimFlakySessionTerminates(t *testing.T) {
	// Several independent schedules from one master seed: the harness
	// chains sub-seeds off h.Rand, so the whole sweep replays from one
	// CHAOS_SEED value.
	h := New(t, seed())
	for i := 0; i < 4; i++ {
		h.SimFlakySession()
	}
}

func TestSimMidStreamAbort(t *testing.T) {
	h := New(t, seed())
	h.SimMidStreamAbort()
}

func TestSimStarvedStartup(t *testing.T) {
	h := New(t, seed())
	h.SimStarvedStartup()
}

// TestSimDeterministic is the harness's core guarantee: the simulation
// scenarios run on the virtual clock, so two runs with the same seed
// must produce byte-identical event logs — fault schedules, player
// reports, MOS values, everything.
func TestSimDeterministic(t *testing.T) {
	run := func() string {
		h := New(t, seed())
		h.SimFlakySession()
		h.SimMidStreamAbort()
		h.SimStarvedStartup()
		return h.EventLog()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different event logs:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("scenarios recorded no events")
	}
}

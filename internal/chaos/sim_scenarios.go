package chaos

// Fault scenarios for the virtual-clock simulation stack (simnet /
// tcpsim / video / hardware). Everything here runs on the simulator's
// deterministic event loop, so the event log of a scenario is a pure
// function of the seed — the determinism test replays a scenario and
// compares logs byte for byte.

import (
	"math"
	"time"

	"vqprobe/internal/hardware"
	"vqprobe/internal/qoe"
	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
	"vqprobe/internal/video"
)

// simRig is one phone-to-server topology with an adaptive streaming
// session riding on it.
type simRig struct {
	sim    *simnet.Sim
	link   *simnet.Link
	dev    *hardware.Device
	player *video.AdaptivePlayer
	rep    video.AdaptiveReport
	got    bool
}

func (h *Harness) newSimRig(seed int64, linkCfg simnet.LinkConfig, dur time.Duration) *simRig {
	r := &simRig{sim: simnet.New(seed)}
	cn := r.sim.NewNode("phone", 1)
	sn := r.sim.NewNode("server", 2)
	cnic, snic := cn.AddNIC("wlan0"), sn.AddNIC("eth0")
	r.link = simnet.ConnectSym(r.sim, "l", cnic, snic, linkCfg)
	client := tcpsim.NewHost(cn, cnic)
	server := tcpsim.NewHost(sn, snic)
	r.dev = hardware.NewDevice(r.sim, hardware.ProfileGalaxyS2)

	session := video.NewAdaptiveSession(dur, video.AdaptiveConfig{})
	session.ServeAdaptive(server)
	r.player = video.PlayAdaptive(client, r.dev, 2, session)
	r.player.OnFinish = func(rep video.AdaptiveReport) { r.rep = rep; r.got = true; r.sim.Halt() }
	return r
}

// checkReport asserts the invariants every terminated session must
// satisfy, regardless of what was injected: a report was delivered,
// its fields are finite and non-negative, and its MOS lands on
// [1, MOSMax].
func (h *Harness) checkReport(r *simRig, scenario string) {
	h.TB.Helper()
	if !r.got {
		h.Fatalf("%s: session never terminated (player state: done=%v)", scenario, r.player.Done())
	}
	rep := r.rep
	if math.IsNaN(rep.PlayedSec) || math.IsInf(rep.PlayedSec, 0) || rep.PlayedSec < 0 {
		h.Failf("%s: non-finite PlayedSec %v", scenario, rep.PlayedSec)
	}
	if rep.StallTime < 0 || rep.SessionTime < 0 || rep.StartupDelay < 0 || rep.Stalls < 0 {
		h.Failf("%s: negative timing fields: %+v", scenario, rep.Report)
	}
	if rep.StallTime > rep.SessionTime {
		h.Failf("%s: stalled %v of a %v session", scenario, rep.StallTime, rep.SessionTime)
	}
	m := qoe.MOS(rep.Report)
	if math.IsNaN(m) || m < 1 || m > qoe.MOSMax {
		h.Failf("%s: MOS %v outside [1, %v]", scenario, m, qoe.MOSMax)
	}
	h.Logf("%s: completed=%v failed=%v reason=%q stalls=%d stall=%v startup=%v session=%v mos=%.4f",
		scenario, rep.Completed, rep.Failed, rep.FailReason, rep.Stalls,
		rep.StallTime, rep.StartupDelay, rep.SessionTime, m)
}

// SimFlakySession streams a clip over a link that degrades mid-session
// with a seeded schedule: loss windows, rate collapses, short outages
// (below the retransmission-abort horizon), and device stress bursts.
// Contract: the session always terminates (completed or cleanly
// failed) and scores a finite MOS.
func (h *Harness) SimFlakySession() {
	h.TB.Helper()
	seed := h.Rand.Int63()
	r := h.newSimRig(seed, simnet.LinkConfig{
		Rate: 8e6, Delay: 25 * time.Millisecond, QueueBytes: 128 * 1024,
	}, 30*time.Second)

	// Seeded fault schedule across the first two minutes of the session.
	rng := h.Rand
	events := 2 + rng.Intn(4)
	for i := 0; i < events; i++ {
		at := time.Duration(2+rng.Intn(40)) * time.Second
		switch rng.Intn(3) {
		case 0: // loss window
			p := 0.05 + rng.Float64()*0.2
			dur := time.Duration(1+rng.Intn(5)) * time.Second
			h.Logf("flaky: inject loss p=%.3f at=%v dur=%v", p, at, dur)
			r.sim.At(at, func() {
				r.link.SetLoss(simnet.AtoB, p)
				r.link.SetLoss(simnet.BtoA, p)
			})
			r.sim.At(at+dur, func() {
				r.link.SetLoss(simnet.AtoB, 0)
				r.link.SetLoss(simnet.BtoA, 0)
			})
		case 1: // short outage, below the RTO-abort horizon
			dur := time.Duration(500+rng.Intn(2000)) * time.Millisecond
			h.Logf("flaky: inject outage at=%v dur=%v", at, dur)
			r.sim.At(at, func() { r.link.SetDown(true) })
			r.sim.At(at+dur, func() { r.link.SetDown(false) })
		default: // device stress burst
			cpu := 60 + rng.Float64()*38
			dur := time.Duration(2+rng.Intn(8)) * time.Second
			h.Logf("flaky: inject stress cpu=%.1f at=%v dur=%v", cpu, at, dur)
			r.dev.Stress(cpu, 0, 30, at, dur)
		}
	}

	r.sim.Run(10 * time.Minute) // hard watchdog: a hung session fails the report check
	h.checkReport(r, "flaky")
}

// SimMidStreamAbort kills the transport at a seeded point mid-stream.
// Contract: the player notices promptly (no multi-minute zombie
// sessions draining a dead buffer), reports a failure with the abort
// reason, and still produces a well-formed, scorable report.
func (h *Harness) SimMidStreamAbort() {
	h.TB.Helper()
	seed := h.Rand.Int63()
	r := h.newSimRig(seed, simnet.LinkConfig{
		Rate: 3e6, Delay: 30 * time.Millisecond, QueueBytes: 96 * 1024,
	}, 30*time.Second)

	abortAt := time.Duration(3+h.Rand.Intn(10)) * time.Second
	h.Logf("abort: inject at=%v", abortAt)
	r.sim.At(abortAt, func() { r.player.InjectAbort("chaos transport loss") })
	r.sim.Run(10 * time.Minute)
	h.checkReport(r, "abort")
	if r.got && !r.rep.Failed {
		h.Failf("abort: session with severed transport reported success")
	}
	// Promptness: the player may only linger to drain its buffer.
	if limit := abortAt + 35*time.Second; r.got && r.rep.SessionTime > limit {
		h.Failf("abort: zombie session lingered %v after a %v abort", r.rep.SessionTime, abortAt)
	}
}

// SimStarvedStartup throttles the link so hard the session can barely
// start, with a mid-startup outage for good measure. Contract: the
// player either limps to completion or abandons within its tolerance —
// it must never hang — and the report stays scorable.
func (h *Harness) SimStarvedStartup() {
	h.TB.Helper()
	seed := h.Rand.Int63()
	rate := (0.1 + h.Rand.Float64()*0.4) * 1e6
	r := h.newSimRig(seed, simnet.LinkConfig{
		Rate: rate, Delay: 60 * time.Millisecond, QueueBytes: 64 * 1024,
	}, 20*time.Second)
	h.Logf("starved: rate=%.0f", rate)

	outageAt := time.Duration(1+h.Rand.Intn(4)) * time.Second
	r.sim.At(outageAt, func() { r.link.SetDown(true) })
	r.sim.At(outageAt+1500*time.Millisecond, func() { r.link.SetDown(false) })

	r.sim.Run(20 * time.Minute)
	h.checkReport(r, "starved")
}

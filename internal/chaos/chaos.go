// Package chaos is the deterministic fault-injection harness for the
// serving and simulation stacks. Every scenario is driven by a single
// seed: the harness derives all fault schedules (what breaks, when, and
// how badly) from a seeded PRNG, records what happened in an ordered
// event log, and stamps every failure with the seed so any red run can
// be replayed exactly with `go test -run <Test> -chaos.seed=<seed>`
// (or CHAOS_SEED=<seed>).
//
// The scenarios live in serve_scenarios.go (the online diagnosis
// engine: malformed ingest, non-finite features, queue saturation,
// reload storms, slow clients, worker panics, clock skew) and
// sim_scenarios.go (the virtual-clock network/player stack: flaky
// links, device stress bursts, mid-stream transport loss). See
// docs/ROBUSTNESS.md for the fault catalog and the bugs this harness
// originally surfaced.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vqprobe/internal/features"
	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
	"vqprobe/internal/ml/c45"
	"vqprobe/internal/serve"
)

// DefaultSeed is used when no seed override is supplied. Any fixed
// value works — determinism, not randomness, is the point.
const DefaultSeed = 7

// Harness owns one scenario run: the seed, the PRNG every scenario
// must draw from, and the ordered event log used to prove determinism
// (two runs with the same seed must produce byte-identical logs).
type Harness struct {
	TB   testing.TB
	Seed int64
	Rand *rand.Rand

	mu  sync.Mutex
	log []string
}

// New builds a harness around tb. The seed is announced up front so a
// failing CI run is reproducible from its output alone.
func New(tb testing.TB, seed int64) *Harness {
	tb.Logf("chaos: seed=%d (set CHAOS_SEED=%d to reproduce)", seed, seed)
	return &Harness{TB: tb, Seed: seed, Rand: rand.New(rand.NewSource(seed))}
}

// Logf appends one line to the event log. Only record facts that are
// functions of the seed and the virtual clock — never wall-clock
// durations, goroutine counts, or map-iteration artifacts — so the log
// stays byte-identical across same-seed runs.
func (h *Harness) Logf(format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.log = append(h.log, fmt.Sprintf(format, args...))
}

// EventLog returns the recorded events, one per line.
func (h *Harness) EventLog() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return strings.Join(h.log, "\n")
}

// Failf reports a test failure stamped with the reproduction seed.
func (h *Harness) Failf(format string, args ...any) {
	h.TB.Helper()
	h.TB.Errorf("chaos seed %d: %s", h.Seed, fmt.Sprintf(format, args...))
}

// Fatalf is Failf but stops the scenario.
func (h *Harness) Fatalf(format string, args ...any) {
	h.TB.Helper()
	h.TB.Fatalf("chaos seed %d: %s", h.Seed, fmt.Sprintf(format, args...))
}

// CheckCounters asserts the engine's request-accounting invariant:
// after a drain, everything accepted into the pipeline was answered.
// (Shed requests never enter the pipeline and are counted separately.)
func (h *Harness) CheckCounters(e *serve.Engine) {
	h.TB.Helper()
	submitted, requests, errs, shed := e.Counters()
	if submitted != requests+errs {
		h.Failf("request accounting imbalance: submitted=%d classified=%d errors=%d shed=%d",
			submitted, requests, errs, shed)
	}
}

// SettleGoroutines waits for the goroutine count to fall back to the
// baseline captured before the scenario, then flags anything left over
// as a leak. The grace period absorbs runtime/netpoll stragglers.
func (h *Harness) SettleGoroutines(baseline int) {
	h.TB.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			h.Failf("goroutine leak: %d alive, baseline %d\n%s", n, baseline, buf)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Fingerprint hashes an ordered result list (IDs, classes, errors) so
// scenarios can assert byte-identical predictions before and after a
// chaos run without storing full outputs in the event log.
func Fingerprint(results []serve.Result) string {
	hash := fnv.New64a()
	for _, r := range results {
		fmt.Fprintf(hash, "%s|%s|%s|%s|%s\n", r.ID, r.Class, r.Severity, r.Cause, r.Err)
	}
	return fmt.Sprintf("%016x", hash.Sum64())
}

// BuildModel trains the small fully separable model the serve scenarios
// run against: good (rtt <= 100), lan_cong_mild (rtt > 100, loss <= 5),
// severeClass (rtt > 100, loss > 5). severeClass parameterizes the
// third label so reload scenarios can tell two snapshots apart.
func BuildModel(tb testing.TB, severeClass string) *serve.Model {
	tb.Helper()
	var insts []ml.Instance
	for rtt := 10.0; rtt <= 200; rtt += 10 {
		for loss := 0.0; loss <= 10; loss++ {
			cls := "good"
			if rtt > 100 {
				if loss > 5 {
					cls = severeClass
				} else {
					cls = "lan_cong_mild"
				}
			}
			insts = append(insts, ml.Instance{
				Features: metrics.Vector{"mobile.rtt": rtt, "mobile.loss": loss},
				Class:    cls,
			})
		}
	}
	d := ml.NewDataset(insts)
	constructed, norm := features.Construct(d)
	tree := c45.Default().TrainTree(constructed)
	ct, err := c45.Compile(tree)
	if err != nil {
		tb.Fatal(err)
	}
	return serve.NewModel("exact", norm, ct)
}

// Vec builds the two-feature vector BuildModel's tree splits on.
func Vec(rtt, loss float64) map[string]float64 {
	return map[string]float64{"mobile.rtt": rtt, "mobile.loss": loss}
}

package chaos

// Fault scenarios for the online diagnosis engine (internal/serve and
// its HTTP surface). Each scenario builds its own engine, injects one
// fault class with seed-derived parameters, and asserts the engine's
// survival contract: every request answered, counters balanced, no
// crashed workers, and the process able to serve normally afterwards.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"vqprobe/internal/serve"
	"vqprobe/internal/trace"
)

// ServeMalformedIngest feeds /diagnose a seeded mix of valid records,
// blank lines, truncated JSON, binary junk, and oversized-but-legal
// lines. Contract: HTTP 200, exactly one result line per non-blank
// input line, parse errors carry true line numbers, and the engine
// still answers a clean request afterwards.
func (h *Harness) ServeMalformedIngest(m *serve.Model) {
	h.TB.Helper()
	e := serve.NewEngine(m, serve.Config{Shards: 2})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	var (
		body     strings.Builder
		nonBlank int
		badLines []int // 1-based input line numbers of malformed lines
		lineno   int
	)
	for i := 0; i < 200; i++ {
		lineno++
		switch h.Rand.Intn(5) {
		case 0: // blank (still advances the input line count)
			body.WriteString("\n")
		case 1: // truncated JSON
			body.WriteString(`{"id":"t","features":{"mobile.rtt":` + "\n")
			nonBlank++
			badLines = append(badLines, lineno)
		case 2: // binary junk
			junk := make([]byte, 1+h.Rand.Intn(24))
			for j := range junk {
				junk[j] = byte(1 + h.Rand.Intn(9)) // control bytes, no \n
			}
			body.Write(junk)
			body.WriteString("\n")
			nonBlank++
			badLines = append(badLines, lineno)
		default: // valid record
			fmt.Fprintf(&body, `{"id":"r%d","features":{"mobile.rtt":%d,"mobile.loss":%d}}`+"\n",
				i, 10+h.Rand.Intn(190), h.Rand.Intn(11))
			nonBlank++
		}
	}

	resp, err := srv.Client().Post(srv.URL+"/diagnose", "application/x-ndjson",
		strings.NewReader(body.String()))
	if err != nil {
		h.Fatalf("malformed ingest: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.Fatalf("malformed ingest: status %d, want 200", resp.StatusCode)
	}
	var results []serve.Result
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r serve.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			h.Fatalf("malformed ingest: unparseable result line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	if len(results) != nonBlank {
		h.Failf("malformed ingest: %d result lines for %d non-blank input lines", len(results), nonBlank)
	}
	errLines := 0
	for _, r := range results {
		if strings.Contains(r.Err, "line ") {
			errLines++
		}
	}
	if errLines != len(badLines) {
		h.Failf("malformed ingest: %d per-line errors for %d malformed lines", errLines, len(badLines))
	}
	h.Logf("malformed-ingest: lines=%d bad=%d fp=%s", nonBlank, len(badLines), Fingerprint(results))

	// The engine survived: a clean follow-up classifies.
	after := e.DiagnoseBatch([]serve.Request{{ID: "after", Features: Vec(50, 0)}})
	if after[0].Err != "" {
		h.Failf("malformed ingest: engine broken afterwards: %q", after[0].Err)
	}
	h.CheckCounters(e)
}

// ServeNonFiniteFlood mixes NaN/Inf feature vectors into a batch.
// Contract: every poisoned record fails with a deterministic error
// naming a feature, every clean record classifies, and the invalid
// counter matches the poison count exactly.
func (h *Harness) ServeNonFiniteFlood(m *serve.Model) {
	h.TB.Helper()
	e := serve.NewEngine(m, serve.Config{Shards: 4})
	defer e.Close()

	var reqs []serve.Request
	poison := map[int]bool{}
	for i := 0; i < 300; i++ {
		fv := Vec(float64(10+h.Rand.Intn(190)), float64(h.Rand.Intn(11)))
		if h.Rand.Intn(3) == 0 {
			poison[i] = true
			key := "mobile.rtt"
			if h.Rand.Intn(2) == 0 {
				key = "mobile.loss"
			}
			switch h.Rand.Intn(3) {
			case 0:
				fv[key] = math.NaN()
			case 1:
				fv[key] = math.Inf(1)
			default:
				fv[key] = math.Inf(-1)
			}
		}
		reqs = append(reqs, serve.Request{ID: fmt.Sprintf("f%d", i), Features: fv})
	}
	results := e.DiagnoseBatch(reqs)
	for i, r := range results {
		if poison[i] {
			if !strings.Contains(r.Err, "non-finite") || r.Class != "" {
				h.Fatalf("non-finite flood: poisoned record %d not rejected: %+v", i, r)
			}
		} else if r.Err != "" || r.Class == "" {
			h.Fatalf("non-finite flood: clean record %d failed: %+v", i, r)
		}
	}
	h.Logf("non-finite-flood: n=%d poisoned=%d fp=%s", len(reqs), len(poison), Fingerprint(results))
	h.CheckCounters(e)
}

// ServeQueueSaturation hammers a deliberately tiny queue from many
// goroutines with the worker wedged on a slow fault, under the given
// policy. Contract: every submission returns (ok, or ErrOverloaded
// under Shed — never a hang), and accounting balances after the drain.
func (h *Harness) ServeQueueSaturation(m *serve.Model, policy serve.Policy) {
	h.TB.Helper()
	e := serve.NewEngine(m, serve.Config{
		Shards: 1, QueueDepth: 2, MaxBatch: 1, Policy: policy,
		InjectFault: func(r *serve.Request) error {
			time.Sleep(200 * time.Microsecond) // slow worker => standing queue
			return nil
		},
	})
	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	var okN, shedN, otherN int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res := e.DiagnoseBatch([]serve.Request{
					{ID: fmt.Sprintf("w%d-%d", w, i), Features: Vec(50, 0)},
				})
				mu.Lock()
				switch {
				case res[0].Err == "":
					okN++
				case strings.Contains(res[0].Err, serve.ErrOverloaded.Error()):
					shedN++
				default:
					otherN++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		h.Failf("queue saturation: close: %v", err)
	}
	if otherN != 0 {
		h.Failf("queue saturation: %d unexpected errors", otherN)
	}
	if okN+shedN != workers*perWorker {
		h.Failf("queue saturation: %d answers for %d submissions", okN+shedN, workers*perWorker)
	}
	if policy == serve.Block && shedN != 0 {
		h.Failf("queue saturation: Block policy shed %d requests", shedN)
	}
	h.CheckCounters(e)
}

// ServeReloadStorm hot-swaps the model while requests are in flight,
// interleaving failed reloads. Contract: every in-flight request is
// answered by exactly one of the two snapshots (never a torn state),
// failed reloads leave the engine degraded-but-serving, and a final
// successful reload clears the degraded flag.
func (h *Harness) ServeReloadStorm(mA, mB *serve.Model) {
	h.TB.Helper()
	e := serve.NewEngine(mA, serve.Config{Shards: 4})
	defer e.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Reload schedule is seed-derived but runs concurrently with the
		// request load, so only its composition (not interleaving) is
		// deterministic.
		rng := h.Rand
		h.mu.Lock()
		flips := 50 + rng.Intn(50)
		h.mu.Unlock()
		for i := 0; i < flips; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				e.Reload(mB)
			case 1:
				e.NoteReloadError(fmt.Errorf("injected reload failure %d", i))
			case 2:
				e.Reload(mA)
			default:
				e.Reload(mB)
			}
		}
	}()

	valid := map[string]bool{}
	for _, m := range []*serve.Model{mA, mB} {
		for _, c := range m.Classes() {
			valid[c] = true
		}
	}
	for i := 0; i < 400; i++ {
		res := e.DiagnoseBatch([]serve.Request{
			{ID: fmt.Sprintf("s%d", i), Features: Vec(150, 8)}, // the severe region: differs per snapshot
		})
		if res[0].Err != "" || !valid[res[0].Class] {
			h.Fatalf("reload storm: torn or failed result mid-swap: %+v", res[0])
		}
	}
	close(stop)
	wg.Wait()

	// Degraded state is observable and recoverable.
	e.NoteReloadError(fmt.Errorf("final injected failure"))
	if e.LastReloadError() == "" {
		h.Failf("reload storm: degraded state not recorded")
	}
	if res := e.DiagnoseBatch([]serve.Request{{ID: "d", Features: Vec(50, 0)}}); res[0].Err != "" {
		h.Failf("reload storm: degraded engine stopped serving: %+v", res[0])
	}
	e.Reload(mA)
	if e.LastReloadError() != "" {
		h.Failf("reload storm: successful reload did not clear degraded state")
	}
	h.Logf("reload-storm: survived with consistent snapshots")
	h.CheckCounters(e)
}

// ServeSlowClients throws badly behaved HTTP clients at the server: one
// that dribbles half a request then hangs until cut off, one that
// disconnects mid-request, and one that walks away while the response
// is streaming. Contract: none of them wedge the server — a clean
// request afterwards gets a normal answer.
func (h *Harness) ServeSlowClients(m *serve.Model) {
	h.TB.Helper()
	e := serve.NewEngine(m, serve.Config{Shards: 2})
	defer e.Close()
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	dial := func() net.Conn {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			h.Fatalf("slow client: dial: %v", err)
		}
		return c
	}

	// Client 1: dribbles headers + half a body line, then stalls; the
	// harness cuts it off as a client-side timeout would.
	c1 := dial()
	fmt.Fprintf(c1, "POST /diagnose HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n")
	fmt.Fprintf(c1, `{"id":"half","features":{"mobile.`)
	time.Sleep(50 * time.Millisecond)
	//lint:ignore closecheck the scenario IS the abrupt disconnect; the close error is the point
	c1.Close()

	// Client 2: promises a body and disconnects immediately.
	c2 := dial()
	fmt.Fprintf(c2, "POST /diagnose HTTP/1.1\r\nHost: x\r\nContent-Length: 500\r\n\r\n")
	//lint:ignore closecheck the scenario IS the abrupt disconnect; the close error is the point
	c2.Close()

	// Client 3: sends a large valid batch and walks away mid-response;
	// the handler must abort its write loop, not spin on a dead socket.
	var big strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&big, `{"id":"g%d","features":{"mobile.rtt":50,"mobile.loss":0}}`+"\n", i)
	}
	c3 := dial()
	fmt.Fprintf(c3, "POST /diagnose HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\n\r\n%s",
		big.Len(), big.String())
	buf := make([]byte, 256)
	c3.Read(buf) // first bytes of the response
	//lint:ignore closecheck the scenario IS the abrupt disconnect; the close error is the point
	c3.Close()

	// The server is still healthy.
	resp, err := srv.Client().Post(srv.URL+"/diagnose", "application/x-ndjson",
		strings.NewReader(`{"id":"after","features":{"mobile.rtt":50,"mobile.loss":0}}`+"\n"))
	if err != nil {
		h.Fatalf("slow client: server dead after abusive clients: %v", err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(out), `"good"`) {
		h.Fatalf("slow client: bad answer after abusive clients: %d %s", resp.StatusCode, out)
	}
	h.Logf("slow-clients: server survived 3 abusive clients")
	h.CheckCounters(e)
}

// ServeWorkerPanics poisons a seed-derived subset of requests so the
// classification path panics. Contract: each poisoned request fails
// with a recovered-panic error, every other request classifies, and
// the workers (and Close) survive.
func (h *Harness) ServeWorkerPanics(m *serve.Model) {
	h.TB.Helper()
	e := serve.NewEngine(m, serve.Config{
		Shards: 3,
		InjectFault: func(r *serve.Request) error {
			if strings.HasSuffix(r.ID, "!") {
				panic("chaos: poisoned " + r.ID)
			}
			return nil
		},
	})
	var reqs []serve.Request
	poisoned := 0
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("p%d", i)
		if h.Rand.Intn(4) == 0 {
			id += "!"
			poisoned++
		}
		reqs = append(reqs, serve.Request{ID: id, Features: Vec(50, 0)})
	}
	results := e.DiagnoseBatch(reqs)
	for i, r := range results {
		if strings.HasSuffix(reqs[i].ID, "!") {
			if !strings.Contains(r.Err, "recovered panic") {
				h.Fatalf("worker panics: poisoned %s answered %+v", reqs[i].ID, r)
			}
		} else if r.Err != "" {
			h.Fatalf("worker panics: clean %s failed: %q", reqs[i].ID, r.Err)
		}
	}
	if err := e.Close(); err != nil {
		h.Failf("worker panics: close hung or failed: %v", err)
	}
	h.Logf("worker-panics: n=%d poisoned=%d fp=%s", len(reqs), poisoned, Fingerprint(results))
	h.CheckCounters(e)
}

// ServeClockSkew drives the engine with a tracer whose clock performs a
// seeded random walk that repeatedly steps backwards (NTP corrections,
// broken virtual clocks). Contract: no span is emitted with a negative
// start or duration.
func (h *Harness) ServeClockSkew(m *serve.Model) {
	h.TB.Helper()
	var mu sync.Mutex
	now := 10 * time.Second
	rng := h.Rand
	tr := trace.New(trace.Config{Capacity: 4096, Clock: func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		// Mostly forward, sometimes a hard backwards step.
		if rng.Intn(4) == 0 {
			now -= time.Duration(rng.Intn(2000)) * time.Millisecond
		} else {
			now += time.Duration(rng.Intn(50)) * time.Millisecond
		}
		return now
	}})
	e := serve.NewEngine(m, serve.Config{Shards: 2, Tracer: tr})
	for i := 0; i < 100; i++ {
		e.DiagnoseBatch([]serve.Request{{ID: fmt.Sprintf("c%d", i), Features: Vec(50, 0)}})
	}
	if err := e.Close(); err != nil {
		h.Fatalf("engine close under clock skew: %v", err)
	}
	n := 0
	for _, ev := range tr.Events() {
		n++
		if ev.Start < 0 || ev.Dur < 0 {
			h.Fatalf("clock skew: span %s/%s emitted Start=%v Dur=%v", ev.Track, ev.Name, ev.Start, ev.Dur)
		}
	}
	if n == 0 {
		h.Failf("clock skew: tracer recorded no spans")
	}
	h.Logf("clock-skew: spans non-negative")
}

// ServePredictionsStable runs a fixed workload, subjects the engine to
// a chaos sweep (panics, reload churn back to an equivalent snapshot,
// a non-finite flood), then replays the workload. Contract: the two
// prediction fingerprints are byte-identical — chaos must not perturb
// the model's answers.
func (h *Harness) ServePredictionsStable(mk func() *serve.Model) {
	h.TB.Helper()
	faults := false
	e := serve.NewEngine(mk(), serve.Config{
		Shards: 2,
		InjectFault: func(r *serve.Request) error {
			if faults && strings.HasSuffix(r.ID, "!") {
				panic("chaos sweep")
			}
			return nil
		},
	})
	defer e.Close()

	var workload []serve.Request
	for i := 0; i < 150; i++ {
		workload = append(workload, serve.Request{
			ID:       fmt.Sprintf("w%d", i),
			Features: Vec(float64(10+h.Rand.Intn(190)), float64(h.Rand.Intn(11))),
		})
	}
	before := Fingerprint(e.DiagnoseBatch(workload))

	faults = true
	var sweep []serve.Request
	for i := 0; i < 60; i++ {
		fv := Vec(float64(10+h.Rand.Intn(190)), float64(h.Rand.Intn(11)))
		id := fmt.Sprintf("x%d", i)
		switch h.Rand.Intn(3) {
		case 0:
			id += "!"
		case 1:
			fv["mobile.rtt"] = math.NaN()
		}
		sweep = append(sweep, serve.Request{ID: id, Features: fv})
	}
	e.DiagnoseBatch(sweep)
	e.Reload(mk()) // retrained-to-equivalent snapshot
	faults = false

	after := Fingerprint(e.DiagnoseBatch(workload))
	if before != after {
		h.Fatalf("predictions drifted across chaos: %s -> %s", before, after)
	}
	h.Logf("predictions-stable: fp=%s", before)
	h.CheckCounters(e)
}

package chaos

// Fault scenarios for the fleet-mode router (internal/route +
// cmd/vqroute). These extend the harness to the multi-replica
// topology: each scenario boots real serve engines behind per-replica
// HTTP servers, fronts them with a router, and injects topology-level
// faults — a replica killed mid-batch, a split-brain model reload, a
// flapping replica under a retry storm, a client vanishing mid-stream
// through the proxy. Fault parameters derive from the harness seed;
// wall-clock behavior (real HTTP, real goroutines) stays behind the
// same survival contracts the single-engine scenarios use: every
// acknowledged row answered exactly once, counters balanced, nothing
// leaked, and the fleet serving normally afterwards.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"time"

	"vqprobe/internal/route"
	"vqprobe/internal/serve"
)

// routeRows renders n seeded NDJSON rows with IDs prefixed pfx and
// returns the body plus the IDs in order.
func (h *Harness) routeRows(pfx string, n int) (string, []string) {
	var b strings.Builder
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("%s-%d", pfx, i)
		fmt.Fprintf(&b, `{"id":%q,"features":{"mobile.rtt":%d,"mobile.loss":%d}}`+"\n",
			ids[i], 10+h.Rand.Intn(190), h.Rand.Intn(11))
	}
	return b.String(), ids
}

// postRows sends one NDJSON batch to the router and decodes the
// answer rows.
func (h *Harness) postRows(client *http.Client, url, body string) []serve.Result {
	h.TB.Helper()
	resp, err := client.Post(url+"/diagnose", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		h.Fatalf("router POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 2048))
		h.Fatalf("router answered HTTP %d: %s", resp.StatusCode, msg)
	}
	var out []serve.Result
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r serve.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			h.Fatalf("unparseable router result %q: %v", sc.Text(), err)
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		h.Fatalf("router result stream: %v", err)
	}
	return out
}

// checkExactlyOnce asserts one clean answer per input row, in input
// order — the zero-lost-acknowledged-requests contract.
func (h *Harness) checkExactlyOnce(what string, ids []string, results []serve.Result) {
	h.TB.Helper()
	if len(results) != len(ids) {
		h.Fatalf("%s: %d result rows for %d inputs", what, len(results), len(ids))
	}
	seen := map[string]int{}
	for i, r := range results {
		if r.ID != ids[i] {
			h.Failf("%s: slot %d holds %q, want %q", what, i, r.ID, ids[i])
		}
		if r.Err != "" {
			h.Failf("%s: acknowledged row %s lost: %q", what, r.ID, r.Err)
		}
		seen[r.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			h.Failf("%s: row %s answered %d times", what, id, n)
		}
	}
}

// RouteReplicaKill kills one replica mid-batch: the replica streams a
// seeded number of answer rows, then its connection dies and every
// subsequent request to it fails. Contract: the router fails the
// unserved tail over to the surviving replica and the client receives
// exactly one clean answer per row — zero lost acknowledged requests —
// on the kill batch and on every batch after it; health polls then
// eject the corpse and traffic stops reaching it entirely.
func (h *Harness) RouteReplicaKill(mk func() *serve.Model) {
	h.TB.Helper()
	eA := serve.NewEngine(mk(), serve.Config{Shards: 2})
	defer eA.Close()
	eB := serve.NewEngine(mk(), serve.Config{Shards: 2})
	defer eB.Close()

	killAfter := 1 + h.Rand.Intn(4) // rows the dying replica answers first
	var (
		dead     atomic.Bool
		aBatches atomic.Int64
		realA    = eA.Handler()
	)
	srvA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			http.Error(w, "replica killed", http.StatusServiceUnavailable)
			return
		}
		if r.URL.Path != "/diagnose" {
			realA.ServeHTTP(w, r)
			return
		}
		aBatches.Add(1)
		// Serve the batch through the real engine, then cut the stream
		// after killAfter lines — the kill lands mid-response.
		dead.Store(true)
		rec := httptest.NewRecorder()
		realA.ServeHTTP(rec, r)
		w.Header().Set("Content-Type", "application/x-ndjson")
		sc := bufio.NewScanner(rec.Body)
		for i := 0; i < killAfter && sc.Scan(); i++ {
			w.Write(append(sc.Bytes(), '\n'))
		}
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	}))
	defer srvA.Close()
	srvB := httptest.NewServer(eB.Handler())
	defer srvB.Close()

	rt, err := route.New(route.Config{Replicas: []string{srvA.URL, srvB.URL}, EjectAfter: 2})
	if err != nil {
		h.Fatalf("router: %v", err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	rows := 80 + h.Rand.Intn(80)
	body, ids := h.routeRows("kill", rows)
	results := h.postRows(router.Client(), router.URL, body)
	h.checkExactlyOnce("replica-kill batch", ids, results)
	if aBatches.Load() != 1 {
		h.Failf("replica-kill: dying replica served %d batches, want exactly 1", aBatches.Load())
	}
	h.Logf("replica-kill: rows=%d killAfter=%d fp=%s", rows, killAfter, Fingerprint(results))

	// The fleet keeps answering while the corpse is still nominally in
	// rotation (failover absorbs its sticky rows request by request).
	body2, ids2 := h.routeRows("after", 40)
	h.checkExactlyOnce("post-kill batch", ids2, h.postRows(router.Client(), router.URL, body2))

	// Health polls eject it; traffic then routes around it entirely.
	ctx := context.Background()
	rt.PollHealth(ctx)
	rt.PollHealth(ctx)
	if st := rt.Statuses(); st[0].State != "down" {
		h.Failf("replica-kill: killed replica state %q after polls, want down", st[0].State)
	}
	body3, ids3 := h.routeRows("routed", 40)
	h.checkExactlyOnce("post-eject batch", ids3, h.postRows(router.Client(), router.URL, body3))

	h.CheckCounters(eA)
	h.CheckCounters(eB)
}

// RouteSplitBrainReload drives a staged rollout into a fleet whose
// replicas load different artifacts. Contract: the canary verifies,
// the fan-out detects the hash mismatch and holds; a fleet with a
// degraded replica holds before touching the canary at all; and both
// holds leave the fleet serving traffic from its last-good models.
func (h *Harness) RouteSplitBrainReload(mk func() *serve.Model) {
	h.TB.Helper()
	var canaryReloads atomic.Int64
	mkHashed := func(hash string) *serve.Model {
		m := mk()
		m.SetProvenance(hash, 0)
		return m
	}
	eA := serve.NewEngine(mkHashed("v1"), serve.Config{Shards: 2, ReloadFunc: func() (*serve.Model, error) {
		canaryReloads.Add(1)
		return mkHashed("v2"), nil
	}})
	defer eA.Close()
	// Replica B misbehaves on demand: "split" loads a different
	// artifact, "fail" refuses to load at all.
	var bMode atomic.Value
	bMode.Store("split")
	eB := serve.NewEngine(mkHashed("v1"), serve.Config{Shards: 2, ReloadFunc: func() (*serve.Model, error) {
		if bMode.Load() == "fail" {
			return nil, fmt.Errorf("artifact store returned a torn file")
		}
		return mkHashed("v2-other"), nil
	}})
	defer eB.Close()
	srvA := httptest.NewServer(eA.Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(eB.Handler())
	defer srvB.Close()

	rt, err := route.New(route.Config{Replicas: []string{srvA.URL, srvB.URL}})
	if err != nil {
		h.Fatalf("router: %v", err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()
	ctx := context.Background()

	// Split brain: canary loads v2, the fan-out replica loads v2-other.
	rep, err := rt.Rollout(ctx, "v2")
	if err != nil {
		h.Fatalf("split-brain rollout: %v", err)
	}
	if rep.Status != "held" || !strings.Contains(rep.Reason, "split brain") {
		h.Failf("split-brain rollout not held: status=%q reason=%q", rep.Status, rep.Reason)
	}
	h.Logf("split-brain: held reason has split brain=%v stages=%d", strings.Contains(rep.Reason, "split brain"), len(rep.Stages))

	// Degraded hold: break B's reload for real (its own /-/reload fails,
	// it keeps serving last-good and self-reports degraded), then a new
	// rollout must hold before reloading the canary.
	bMode.Store("fail")
	resp, err := http.Post(srvB.URL+"/-/reload", "", nil)
	if err != nil {
		h.Fatalf("degrading reload: %v", err)
	}
	resp.Body.Close()
	before := canaryReloads.Load()
	rt.PollHealth(ctx)
	if st := rt.Statuses(); st[1].State != "degraded" {
		h.Failf("split-brain: replica B state %q after failed reload, want degraded", st[1].State)
	}
	rep, err = rt.Rollout(ctx, "v2")
	if err != nil {
		h.Fatalf("degraded rollout: %v", err)
	}
	if rep.Status != "held" || !strings.Contains(rep.Reason, "degraded") {
		h.Failf("rollout into degraded fleet not held: status=%q reason=%q", rep.Status, rep.Reason)
	}
	if canaryReloads.Load() != before {
		h.Failf("degraded hold still reloaded the canary (%d -> %d)", before, canaryReloads.Load())
	}

	// Both holds left the fleet serving: the degraded replica answers
	// its sticky traffic from the last-good snapshot.
	body, ids := h.routeRows("held", 60)
	h.checkExactlyOnce("post-hold batch", ids, h.postRows(router.Client(), router.URL, body))
	h.Logf("split-brain: post-hold traffic served rows=%d", len(ids))

	h.CheckCounters(eA)
	h.CheckCounters(eB)
}

// RouteRetryStorm batters the router while one replica flaps. The
// contract is damping, not heroics: a replica that answers 500 to
// every batch absorbs at most EjectAfter upstream requests before it
// is ejected — no matter how many client batches arrive — and every
// client batch still gets exactly one clean answer per row through
// the failover path. When the replica recovers, a health poll
// re-admits it and its sticky traffic returns.
func (h *Harness) RouteRetryStorm(mk func() *serve.Model) {
	h.TB.Helper()
	eA := serve.NewEngine(mk(), serve.Config{Shards: 2})
	defer eA.Close()
	eB := serve.NewEngine(mk(), serve.Config{Shards: 2})
	defer eB.Close()

	var (
		aFlaky atomic.Bool
		aReqs  atomic.Int64
		bReqs  atomic.Int64
		realA  = eA.Handler()
		realB  = eB.Handler()
	)
	aFlaky.Store(true)
	srvA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/diagnose" {
			aReqs.Add(1)
			if aFlaky.Load() {
				http.Error(w, "replica flapping", http.StatusInternalServerError)
				return
			}
		}
		if r.URL.Path == "/healthz" && aFlaky.Load() {
			http.Error(w, "replica flapping", http.StatusInternalServerError)
			return
		}
		realA.ServeHTTP(w, r)
	}))
	defer srvA.Close()
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/diagnose" {
			bReqs.Add(1)
		}
		realB.ServeHTTP(w, r)
	}))
	defer srvB.Close()

	const ejectAfter = 3
	rt, err := route.New(route.Config{Replicas: []string{srvA.URL, srvB.URL}, EjectAfter: ejectAfter})
	if err != nil {
		h.Fatalf("router: %v", err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	batches := 8 + h.Rand.Intn(5)
	for i := 0; i < batches; i++ {
		body, ids := h.routeRows(fmt.Sprintf("storm%d", i), 16)
		h.checkExactlyOnce(fmt.Sprintf("storm batch %d", i), ids, h.postRows(router.Client(), router.URL, body))
	}
	stormA := aReqs.Load()
	if stormA > ejectAfter {
		h.Failf("retry storm not damped: flapping replica absorbed %d requests, eject threshold is %d", stormA, ejectAfter)
	}
	if stormA == 0 {
		h.Failf("retry storm never touched the flapping replica — scenario is vacuous")
	}
	if upper := int64(2*batches + 1); bReqs.Load() > upper {
		h.Failf("healthy replica absorbed %d requests for %d batches (cap %d) — failover is retrying in a loop",
			bReqs.Load(), batches, upper)
	}
	if st := rt.Statuses(); st[0].State != "down" {
		h.Failf("flapping replica state %q after the storm, want down", st[0].State)
	}
	h.Logf("retry-storm: batches=%d flaky_reqs<=%d damped=true", batches, ejectAfter)

	// Recovery: the replica stops flapping, a poll re-admits it, and
	// sticky traffic returns.
	aFlaky.Store(false)
	rt.PollHealth(context.Background())
	if st := rt.Statuses(); st[0].State != "healthy" {
		h.Failf("recovered replica state %q after poll, want healthy", st[0].State)
	}
	before := aReqs.Load()
	body, ids := h.routeRows("recovered", 32)
	h.checkExactlyOnce("recovery batch", ids, h.postRows(router.Client(), router.URL, body))
	if aReqs.Load() == before {
		h.Failf("recovered replica received no traffic after re-admission")
	}

	h.CheckCounters(eA)
	h.CheckCounters(eB)
}

// RouteClientDisconnect vanishes the downstream client mid-request and
// requires the router to cancel its upstream replica request — the
// audit contract for aborted writes: no replica keeps grinding for a
// socket nobody reads, and the router serves normally afterwards.
func (h *Harness) RouteClientDisconnect(mk *serve.Model) {
	h.TB.Helper()
	e := serve.NewEngine(mk, serve.Config{Shards: 2})
	defer e.Close()
	real := e.Handler()

	var hang atomic.Bool
	hang.Store(true)
	gotUpstream := make(chan struct{})
	canceled := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/diagnose" && hang.CompareAndSwap(true, false) {
			// Drain the body first: the server only notices a vanished
			// client once no unread request data is pending.
			io.Copy(io.Discard, r.Body)
			close(gotUpstream)
			select {
			case <-r.Context().Done():
				close(canceled)
			case <-time.After(10 * time.Second):
			}
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer srv.Close()

	rt, err := route.New(route.Config{Replicas: []string{srv.URL}})
	if err != nil {
		h.Fatalf("router: %v", err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	body, _ := h.routeRows("gone", 8)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, router.URL+"/diagnose", strings.NewReader(body))
	if err != nil {
		h.Fatalf("building request: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := router.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()
	<-gotUpstream
	cancel() // the client vanishes mid-stream

	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		h.Fatalf("client disconnect did not cancel the upstream replica request")
	}
	if err := <-done; err == nil {
		h.Failf("canceled client request reported success")
	}
	h.Logf("client-disconnect: upstream canceled=true")

	// The router shrugs it off: the next batch round-trips cleanly.
	body2, ids2 := h.routeRows("alive", 20)
	h.checkExactlyOnce("post-disconnect batch", ids2, h.postRows(router.Client(), router.URL, body2))
	h.CheckCounters(e)
}

package probe

import (
	"testing"
	"testing/quick"
	"time"
)

// TestSeqTrackingInvariants drives the dirState sequence machinery with
// arbitrary segment arrivals and checks structural invariants: holes
// never overlap maxEnd boundaries, classifications are exhaustive, and
// byte counters never go negative.
func TestSeqTrackingInvariants(t *testing.T) {
	f := func(segs []struct {
		Seq uint16
		Len uint8
	}) bool {
		d := &dirState{}
		now := time.Duration(0)
		for _, s := range segs {
			n := int64(s.Len%64) + 1
			seq := int64(s.Seq % 4096)
			now += time.Millisecond
			d.observeData(now, seq, n)

			// Invariant: holes all lie strictly below maxEnd and are
			// non-empty.
			for _, h := range d.holes {
				if h.start >= h.end || h.end > d.maxEnd {
					return false
				}
			}
			// Invariant: counters non-negative and consistent.
			if d.dataPkts < d.retransPkts+d.oooPkts {
				return false
			}
			if d.retransBytes < 0 || d.dataBytes <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSequentialStreamNoRetransNoHoles: a perfectly sequential stream
// must produce zero retransmissions, zero reordering and no lingering
// holes.
func TestSequentialStreamNoRetransNoHoles(t *testing.T) {
	d := &dirState{}
	var seq int64 = 1
	for i := 0; i < 1000; i++ {
		d.observeData(time.Duration(i)*time.Millisecond, seq, 1460)
		seq += 1460
	}
	if d.retransPkts != 0 || d.oooPkts != 0 {
		t.Errorf("sequential stream counted retx=%d ooo=%d", d.retransPkts, d.oooPkts)
	}
	// Only the initial [0,1) SYN gap may remain.
	for _, h := range d.holes {
		if h.end > 1 {
			t.Errorf("unexpected hole %+v", h)
		}
	}
}

// TestDuplicateSegmentIsRetransmission: replaying the same segment must
// count as a retransmission, not reordering.
func TestDuplicateSegmentIsRetransmission(t *testing.T) {
	d := &dirState{}
	d.observeData(0, 1, 1000)
	d.observeData(time.Millisecond, 1, 1000)
	if d.retransPkts != 1 {
		t.Errorf("retrans = %d, want 1", d.retransPkts)
	}
	if d.oooPkts != 0 {
		t.Errorf("ooo = %d, want 0", d.oooPkts)
	}
}

// TestHoleFillIsReordering: a segment that fills a never-seen gap counts
// as reordering (the original was lost upstream of the tap).
func TestHoleFillIsReordering(t *testing.T) {
	d := &dirState{}
	d.observeData(0, 1, 1000)                   // [1,1001)
	d.observeData(time.Millisecond, 2001, 1000) // [2001,3001): hole [1001,2001)
	d.observeData(2*time.Millisecond, 1001, 1000)
	if d.oooPkts != 1 {
		t.Errorf("ooo = %d, want 1", d.oooPkts)
	}
	if len(d.holes) != 1 || d.holes[0].end > 1 {
		// only the SYN gap should remain
		for _, h := range d.holes {
			if h.end > 1 {
				t.Errorf("hole not closed: %+v", d.holes)
			}
		}
	}
}

// TestRTTMatchingOrder: cumulative ACKs release pending samples in
// order and never double-count.
func TestRTTMatchingOrder(t *testing.T) {
	d := &dirState{}
	d.observeData(0, 1, 1000)
	d.observeData(10*time.Millisecond, 1001, 1000)
	d.observeData(20*time.Millisecond, 2001, 1000)
	d.matchAcks(50*time.Millisecond, 2001) // covers first two
	if d.rttAgg.Count() != 2 {
		t.Fatalf("rtt samples = %d, want 2", d.rttAgg.Count())
	}
	if got := d.rttAgg.Max(); got != 50 {
		t.Errorf("first sample %vms, want 50", got)
	}
	d.matchAcks(60*time.Millisecond, 3001)
	if d.rttAgg.Count() != 3 {
		t.Errorf("rtt samples = %d after final ack", d.rttAgg.Count())
	}
	// Re-acking releases nothing further.
	d.matchAcks(70*time.Millisecond, 3001)
	if d.rttAgg.Count() != 3 {
		t.Error("duplicate ack double-counted an RTT sample")
	}
}

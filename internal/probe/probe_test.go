package probe

import (
	"testing"
	"time"

	"vqprobe/internal/hardware"
	"vqprobe/internal/metrics"
	"vqprobe/internal/simnet"
	"vqprobe/internal/tcpsim"
)

// world is a client <-> router <-> server topology with flow meters on
// all three nodes.
type world struct {
	sim                    *simnet.Sim
	client, server         *tcpsim.Host
	lanLink, wanLink       *simnet.Link
	mMob, mRtr, mSrv       *FlowMeter
	cliNode, rtrN, srvNode *simnet.Node
}

func newWorld(seed int64, lan, wan simnet.LinkConfig) *world {
	s := simnet.New(seed)
	cn := s.NewNode("phone", 1)
	rn := s.NewNode("router", 100)
	sn := s.NewNode("server", 2)
	cnic := cn.AddNIC("wlan0")
	rlan := rn.AddNIC("wlan0")
	rwan := rn.AddNIC("eth0")
	snic := sn.AddNIC("eth0")
	lanL := simnet.ConnectSym(s, "lan", cnic, rlan, lan)
	wanL := simnet.ConnectSym(s, "wan", rwan, snic, wan)
	r := simnet.NewRouter(rn)
	r.AddRoute(1, rlan)
	r.AddRoute(2, rwan)
	return &world{
		sim:     s,
		client:  tcpsim.NewHost(cn, cnic),
		server:  tcpsim.NewHost(sn, snic),
		lanLink: lanL,
		wanLink: wanL,
		mMob:    NewFlowMeter(cn),
		mRtr:    NewFlowMeter(rn),
		mSrv:    NewFlowMeter(sn),
		cliNode: cn, rtrN: rn, srvNode: sn,
	}
}

// download transfers n bytes server->client after a 300B request.
func (w *world) download(t *testing.T, n int64, until time.Duration) simnet.FlowKey {
	t.Helper()
	w.server.Listen(80, func(c *tcpsim.Conn) {
		c.OnData = func(int) {}
		c.OnEstablished = func() { c.Write(n); c.Close() }
	})
	cc := w.client.Dial(2, 80)
	cc.OnEstablished = func() { cc.Write(300) }
	done := false
	cc.OnPeerClose = func() { done = true; cc.Close() }
	w.sim.Run(until)
	if !done {
		t.Fatal("download did not complete")
	}
	return cc.Flow()
}

func lanCfg() simnet.LinkConfig {
	return simnet.LinkConfig{Rate: 30e6, Delay: 2 * time.Millisecond, QueueBytes: 256 * 1024}
}

func wanCfg() simnet.LinkConfig {
	return simnet.LinkConfig{Rate: 8e6, Delay: 40 * time.Millisecond, QueueBytes: 256 * 1024}
}

func TestMetersSeeTheFlow(t *testing.T) {
	w := newWorld(1, lanCfg(), wanCfg())
	flow := w.download(t, 400_000, time.Minute)
	for _, m := range []*FlowMeter{w.mMob, w.mRtr, w.mSrv} {
		fr := m.Flow(flow)
		if fr == nil {
			t.Fatal("meter missed the flow")
		}
		v := fr.Vector()
		if v["tcp_s2c_data_bytes"] < 400_000 {
			t.Errorf("s2c data bytes %v < 400000", v["tcp_s2c_data_bytes"])
		}
		if v["tcp_c2s_data_bytes"] < 300 {
			t.Errorf("c2s data bytes %v < 300", v["tcp_c2s_data_bytes"])
		}
		if v["tcp_s2c_mss"] != 1460 {
			t.Errorf("mss %v, want 1460", v["tcp_s2c_mss"])
		}
		if v["tcp_duration_s"] <= 0 {
			t.Error("non-positive duration")
		}
	}
}

func TestLookupWorksInBothOrientations(t *testing.T) {
	w := newWorld(2, lanCfg(), wanCfg())
	flow := w.download(t, 50_000, time.Minute)
	a := w.mRtr.Flow(flow)
	b := w.mRtr.Flow(flow.Reverse())
	if a == nil || b == nil {
		t.Fatal("lookup failed in one orientation")
	}
	va, vb := a.Vector(), b.Vector()
	if va["tcp_s2c_data_bytes"] != vb["tcp_s2c_data_bytes"] {
		t.Error("orientation changes the record")
	}
}

func TestRouterCountsPacketsOnce(t *testing.T) {
	w := newWorld(3, lanCfg(), wanCfg())
	flow := w.download(t, 200_000, time.Minute)
	vr := w.mRtr.Flow(flow).Vector()
	vm := w.mMob.Flow(flow).Vector()
	// The router forwards every packet across two NICs; if the tap
	// double-counted, the router totals would be ~2x the endpoint's.
	ratio := vr["tcp_s2c_data_pkts"] / vm["tcp_s2c_data_pkts"]
	if ratio > 1.3 {
		t.Errorf("router saw %.0fx the packets the mobile saw; double counting",
			ratio)
	}
}

func TestRTTViewsDifferByVantagePoint(t *testing.T) {
	// Server-side s2c RTT covers the whole path (~84ms+); the mobile's
	// own s2c view is near zero (data arrives and is ACKed locally).
	w := newWorld(4, lanCfg(), wanCfg())
	flow := w.download(t, 400_000, time.Minute)
	srv := w.mSrv.Flow(flow).Vector()
	mob := w.mMob.Flow(flow).Vector()
	rtr := w.mRtr.Flow(flow).Vector()
	if srv["tcp_s2c_rtt_ms_avg"] < 50 {
		t.Errorf("server s2c RTT %.1fms, want full-path scale", srv["tcp_s2c_rtt_ms_avg"])
	}
	if mob["tcp_s2c_rtt_ms_avg"] > srv["tcp_s2c_rtt_ms_avg"]/2 {
		t.Errorf("mobile s2c RTT %.1fms not far below server view %.1fms",
			mob["tcp_s2c_rtt_ms_avg"], srv["tcp_s2c_rtt_ms_avg"])
	}
	// Router's s2c RTT covers router<->client only (LAN): small here.
	if rtr["tcp_s2c_rtt_ms_avg"] > srv["tcp_s2c_rtt_ms_avg"] {
		t.Errorf("router s2c RTT %.1f above server view %.1f",
			rtr["tcp_s2c_rtt_ms_avg"], srv["tcp_s2c_rtt_ms_avg"])
	}
}

func TestRetransmissionsVisibleAtSenderSideTap(t *testing.T) {
	// Loss on the LAN: the server (and router) transmit each lost
	// packet twice, so their taps see retransmissions; the mobile tap
	// sees hole-filling arrivals (counted as reordering) instead.
	lan := lanCfg()
	lan.Loss = 0.05
	w := newWorld(5, lan, wanCfg())
	flow := w.download(t, 400_000, 5*time.Minute)
	srv := w.mSrv.Flow(flow).Vector()
	mob := w.mMob.Flow(flow).Vector()
	if srv["tcp_s2c_retrans_pkts"] == 0 {
		t.Error("server tap saw no retransmissions despite 5% LAN loss")
	}
	if mob["tcp_s2c_ooo_pkts"] == 0 {
		t.Error("mobile tap saw no out-of-order arrivals despite upstream loss")
	}
	if mob["tcp_s2c_retrans_pkts"] > srv["tcp_s2c_retrans_pkts"] {
		t.Error("mobile should see fewer duplicate bytes than the sender side")
	}
}

func TestWANLossRaisesRetransAtAllUpstreamTaps(t *testing.T) {
	wan := wanCfg()
	wan.Loss = 0.05
	w := newWorld(6, lanCfg(), wan)
	flow := w.download(t, 400_000, 5*time.Minute)
	srv := w.mSrv.Flow(flow).Vector()
	rtr := w.mRtr.Flow(flow).Vector()
	if srv["tcp_s2c_retrans_pkts"] == 0 {
		t.Error("server saw no retransmissions with WAN loss")
	}
	// The router is downstream of the WAN loss: it sees the gap-filling
	// retransmissions as reordering plus the duplicates that survive.
	if rtr["tcp_s2c_ooo_pkts"]+rtr["tcp_s2c_retrans_pkts"] == 0 {
		t.Error("router saw neither reordering nor retransmissions with WAN loss")
	}
}

func TestFirstDataDelayGrowsWithSlowServer(t *testing.T) {
	fast := newWorld(7, lanCfg(), wanCfg())
	fFlow := fast.download(t, 100_000, time.Minute)
	slowWan := wanCfg()
	slowWan.Delay = 300 * time.Millisecond
	slow := newWorld(7, lanCfg(), slowWan)
	sFlow := slow.download(t, 100_000, time.Minute)
	fd := fast.mMob.Flow(fFlow).Vector()["tcp_first_data_delay_s"]
	sd := slow.mMob.Flow(sFlow).Vector()["tcp_first_data_delay_s"]
	if sd <= fd {
		t.Errorf("first data delay on slow path %.3fs not above fast %.3fs", sd, fd)
	}
}

func TestHWProbeAggregates(t *testing.T) {
	s := simnet.New(8)
	dev := hardware.NewDevice(s, hardware.ProfileGalaxyS2)
	p := NewHWProbe(dev)
	dev.Stress(50, 100, 5, 0, time.Minute)
	s.Run(30 * time.Second)
	v := p.Vector()
	if v["hw_cpu_pct_cnt"] != 30 {
		t.Errorf("cpu samples %v, want 30", v["hw_cpu_pct_cnt"])
	}
	if v["hw_cpu_pct_avg"] < 40 {
		t.Errorf("cpu avg %v under 50%% stress", v["hw_cpu_pct_avg"])
	}
	if v["hw_mem_free_mb_avg"] <= 0 {
		t.Error("mem avg missing")
	}
	p.Reset()
	if p.Vector()["hw_cpu_pct_cnt"] != 0 {
		t.Error("reset did not clear aggregates")
	}
}

func TestLinkProbeUtilization(t *testing.T) {
	s := simnet.New(9)
	a := s.NewNode("a", 1)
	b := s.NewNode("b", 2)
	an, bn := a.AddNIC("0"), b.AddNIC("0")
	simnet.ConnectSym(s, "l", an, bn, simnet.LinkConfig{Rate: 8e6, QueueBytes: 1 << 20})
	p := NewLinkProbe(s, bn, nil)
	// Saturate for 10 seconds: ~50% duty cycle over a 20s window.
	simnet.NewTicker(s, 10*time.Millisecond, func(now time.Duration) {
		if now < 10*time.Second {
			a.Send(an, s.NewPacket(simnet.FlowKey{Proto: simnet.ProtoUDP, Src: 1, Dst: 2}, 9960, nil))
		}
	})
	s.Run(20 * time.Second)
	v := p.Vector()
	if v["nic_rx_util_max"] < 0.5 {
		t.Errorf("rx util max %.2f during saturation, want high", v["nic_rx_util_max"])
	}
	if v["nic_rx_util_avg"] >= v["nic_rx_util_max"] {
		t.Error("util avg not below max for a bursty source")
	}
}

func TestVantagePointRecordMergesLayers(t *testing.T) {
	w := newWorld(10, lanCfg(), wanCfg())
	dev := hardware.NewDevice(w.sim, hardware.ProfileGalaxyS2)
	vp := NewVantagePoint("mobile", w.cliNode, dev)
	vp.AddLink(w.sim, "wlan0", w.cliNode.NICs()[0], nil)
	flow := w.download(t, 100_000, time.Minute)
	rec := vp.Record(flow)
	for _, want := range []string{"tcp_s2c_data_bytes", "hw_cpu_pct_avg", "wlan0_nic_rx_util_avg"} {
		if _, ok := rec[want]; !ok {
			t.Errorf("record missing %s", want)
		}
	}
	if len(rec) < 80 {
		t.Errorf("record has only %d features; expected a tstat-scale set", len(rec))
	}
}

func TestVectorMergePrefixes(t *testing.T) {
	a := metrics.Vector{"x": 1}
	combined := metrics.Vector{}
	combined.Merge("mobile", a)
	if combined["mobile.x"] != 1 {
		t.Error("merge did not prefix")
	}
}

func TestZeroWindowObserved(t *testing.T) {
	w := newWorld(11, lanCfg(), wanCfg())
	w.server.Listen(80, func(c *tcpsim.Conn) {
		c.OnEstablished = func() { c.Write(500_000) }
	})
	cc := w.client.Dial(2, 80)
	cc.SetRcvBuf(16 * 1024)
	cc.SetAutoRead(false) // never consume: window slams shut
	w.sim.Run(10 * time.Second)
	v := w.mSrv.Flow(cc.Flow()).Vector()
	if v["tcp_c2s_zero_wnd_pkts"] == 0 {
		t.Error("server tap never saw a zero-window advertisement")
	}
	if v["tcp_c2s_win_min"] != 0 {
		t.Errorf("c2s min window %v, want 0", v["tcp_c2s_win_min"])
	}
}

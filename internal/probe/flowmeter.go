// Package probe implements the vantage-point measurement probes of the
// paper: a tstat-style passive TCP flow meter (transport layer), an
// OS/hardware sampler, and a NIC/link sampler. A VantagePoint bundles the
// three and produces one feature vector per video session.
//
// Everything a probe exports is derived from what it can passively see at
// its own tap — packet headers, local OS counters, local radio state.
// Probes never read simulator ground truth (player buffer state, fault
// schedules), which is what makes the train/evaluate methodology honest.
package probe

import (
	"time"

	"vqprobe/internal/metrics"
	"vqprobe/internal/simnet"
)

// dirState accumulates tstat-style metrics for one direction of a flow.
type dirState struct {
	pkts, bytes         int64
	dataPkts, dataBytes int64
	pureAcks            int64
	pushPkts            int64
	synPkts, finPkts    int64
	rstPkts             int64
	retransPkts         int64
	retransBytes        int64
	oooPkts             int64
	dupAcks             int64
	zeroWndPkts         int64
	mss                 float64

	winAgg metrics.Agg
	segAgg metrics.Agg
	rttAgg metrics.Agg
	iatAgg metrics.Agg // inter-arrival times, ms

	firstPkt  time.Duration
	lastPkt   time.Duration
	firstData time.Duration
	maxIdle   time.Duration
	havePkt   bool
	haveData  bool

	// Sequence tracking: bytes [0,maxEnd) have been observed except the
	// spans in holes. Used to classify retransmission vs reordering.
	maxEnd int64
	holes  []span

	// RTT matching: data segments awaiting an ACK from the opposite
	// direction. Only never-before-seen data is timed (Karn's rule at
	// the meter).
	pending []pendingSeg

	lastAck int64 // highest ack seen in the opposite direction
}

type span struct{ start, end int64 }

type pendingSeg struct {
	end int64
	at  time.Duration
}

// flowState tracks one TCP conversation; index 0 is client-to-server
// (the direction of the first SYN), index 1 server-to-client.
type flowState struct {
	key   simnet.FlowKey // c2s orientation
	dirs  [2]*dirState
	start time.Duration
}

// FlowMeter observes a node's packets and keeps per-flow transport
// metrics, like tstat bound to an interface.
type FlowMeter struct {
	node  *simnet.Node
	flows map[simnet.FlowKey]*flowState
}

// NewFlowMeter taps node and begins collecting. The meter counts each
// packet exactly once even on forwarding nodes (it counts arrivals, plus
// departures the node itself originated).
func NewFlowMeter(node *simnet.Node) *FlowMeter {
	m := &FlowMeter{node: node, flows: make(map[simnet.FlowKey]*flowState)}
	node.AddTap(m.tap)
	return m
}

func (m *FlowMeter) tap(now time.Duration, nic *simnet.NIC, pkt *simnet.Packet, dir simnet.PacketDir) {
	if !pkt.IsTCP() {
		return
	}
	// Count once: all arrivals, plus locally originated departures.
	if dir == simnet.DirOut && pkt.Flow.Src != m.node.Addr {
		return
	}
	fs, di := m.lookup(pkt, now)
	if fs == nil {
		return
	}
	fs.observe(now, pkt, di)
}

// lookup finds or creates flow state and returns the direction index of
// the packet within it.
func (m *FlowMeter) lookup(pkt *simnet.Packet, now time.Duration) (*flowState, int) {
	if fs, ok := m.flows[pkt.Flow]; ok {
		return fs, 0
	}
	if fs, ok := m.flows[pkt.Flow.Reverse()]; ok {
		return fs, 1
	}
	// New flow: orient by the first SYN so c2s is the client direction.
	// A meter that comes up mid-flow orients by first packet seen.
	fs := &flowState{key: pkt.Flow, start: now, dirs: [2]*dirState{{}, {}}}
	m.flows[pkt.Flow] = fs
	return fs, 0
}

// Flow returns the record for the given flow (in either orientation), or
// nil if the meter never saw it.
func (m *FlowMeter) Flow(key simnet.FlowKey) *FlowRecord {
	fs, ok := m.flows[key]
	if !ok {
		fs, ok = m.flows[key.Reverse()]
		if !ok {
			return nil
		}
	}
	return &FlowRecord{fs: fs}
}

// Flows returns the number of conversations the meter has seen.
func (m *FlowMeter) Flows() int { return len(m.flows) }

func (fs *flowState) observe(now time.Duration, pkt *simnet.Packet, di int) {
	d := fs.dirs[di]
	opp := fs.dirs[1-di]
	hdr := pkt.TCP

	if d.havePkt {
		iat := now - d.lastPkt
		d.iatAgg.Add(float64(iat) / float64(time.Millisecond))
		if iat > d.maxIdle {
			d.maxIdle = iat
		}
	} else {
		d.firstPkt = now
		d.havePkt = true
	}
	d.lastPkt = now

	d.pkts++
	d.bytes += int64(pkt.Size())
	d.winAgg.Add(float64(hdr.Window))
	if hdr.Window == 0 {
		d.zeroWndPkts++
	}
	if hdr.Flags.Has(simnet.FlagSYN) {
		d.synPkts++
		if hdr.MSS > 0 {
			d.mss = float64(hdr.MSS)
		}
	}
	if hdr.Flags.Has(simnet.FlagFIN) {
		d.finPkts++
	}
	if hdr.Flags.Has(simnet.FlagRST) {
		d.rstPkts++
	}
	if hdr.Flags.Has(simnet.FlagPSH) {
		d.pushPkts++
	}

	if pkt.Payload > 0 {
		d.observeData(now, hdr.Seq, int64(pkt.Payload))
	} else if hdr.Flags&(simnet.FlagSYN|simnet.FlagFIN|simnet.FlagRST) == 0 {
		d.pureAcks++
		if hdr.Ack == d.lastAck && opp.maxEnd > hdr.Ack {
			d.dupAcks++
		}
	}
	if hdr.Flags.Has(simnet.FlagACK) {
		d.lastAck = hdr.Ack
		opp.matchAcks(now, hdr.Ack)
	}
}

// observeData classifies a data segment as new, retransmitted or
// reordered, and updates sequence bookkeeping.
func (d *dirState) observeData(now time.Duration, seq, n int64) {
	end := seq + n
	d.dataPkts++
	d.dataBytes += n
	d.segAgg.Add(float64(n))
	if !d.haveData {
		d.firstData = now
		d.haveData = true
	}

	switch {
	case seq >= d.maxEnd:
		// New data; any gap becomes a hole (we missed nothing: gaps in
		// seq space at a tap mean packets are still in flight behind).
		if seq > d.maxEnd {
			d.holes = append(d.holes, span{d.maxEnd, seq})
		}
		d.maxEnd = end
		d.pending = append(d.pending, pendingSeg{end: end, at: now})
	case d.overlapsSeen(seq, end):
		// Bytes we already saw pass the tap again: retransmission.
		d.retransPkts++
		d.retransBytes += n
		d.fillHoles(seq, end)
	default:
		// Hole-filling bytes never seen before: reordering at this tap
		// (the original was lost upstream of us).
		d.oooPkts++
		d.fillHoles(seq, end)
	}
}

// overlapsSeen reports whether any byte of [start,end) was observed
// before, i.e. lies below maxEnd and outside every hole.
func (d *dirState) overlapsSeen(start, end int64) bool {
	if start >= d.maxEnd {
		return false
	}
	hi := end
	if hi > d.maxEnd {
		hi = d.maxEnd
	}
	// [start,hi) minus holes non-empty?
	covered := int64(0)
	for _, h := range d.holes {
		lo, h2 := maxi(start, h.start), mini(hi, h.end)
		if h2 > lo {
			covered += h2 - lo
		}
	}
	return covered < hi-start
}

func (d *dirState) fillHoles(start, end int64) {
	out := d.holes[:0]
	for _, h := range d.holes {
		switch {
		case end <= h.start || start >= h.end:
			out = append(out, h)
		case start <= h.start && end >= h.end:
			// hole fully filled
		case start <= h.start:
			out = append(out, span{end, h.end})
		case end >= h.end:
			out = append(out, span{h.start, start})
		default:
			out = append(out, span{h.start, start}, span{end, h.end})
		}
	}
	d.holes = out
	if end > d.maxEnd {
		d.maxEnd = end
	}
}

// matchAcks samples RTTs for pending data segments covered by ack.
func (d *dirState) matchAcks(now time.Duration, ack int64) {
	i := 0
	for ; i < len(d.pending); i++ {
		p := d.pending[i]
		if p.end > ack {
			break
		}
		d.rttAgg.Add(float64(now-p.at) / float64(time.Millisecond))
	}
	if i > 0 {
		d.pending = d.pending[i:]
	}
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// FlowRecord is a read-only view over a measured conversation. C2S always
// means client-to-server (the direction of the first SYN the meter saw),
// regardless of which flow key was used to look the record up.
type FlowRecord struct {
	fs *flowState
}

func (r *FlowRecord) dir(clientToServer bool) *dirState {
	if clientToServer {
		return r.fs.dirs[0]
	}
	return r.fs.dirs[1]
}

// Duration returns the observed flow duration.
func (r *FlowRecord) Duration() time.Duration {
	var last time.Duration
	for _, d := range r.fs.dirs {
		if d.lastPkt > last {
			last = d.lastPkt
		}
	}
	if last < r.fs.start {
		return 0
	}
	return last - r.fs.start
}

// dirNames maps the two directions to tstat-like prefixes.
var dirNames = [2]string{"c2s", "s2c"}

// Vector exports the full tstat-style metric set for the flow. Names are
// stable and documented; DESIGN.md maps the paper's Table 1 names onto
// them.
func (r *FlowRecord) Vector() metrics.Vector {
	v := metrics.Vector{}
	durSec := r.Duration().Seconds()
	v["tcp_duration_s"] = durSec

	for i, name := range dirNames {
		d := r.dir(i == 0)
		p := "tcp_" + name + "_"
		v[p+"pkts"] = float64(d.pkts)
		v[p+"bytes"] = float64(d.bytes)
		v[p+"data_pkts"] = float64(d.dataPkts)
		v[p+"data_bytes"] = float64(d.dataBytes)
		v[p+"pure_acks"] = float64(d.pureAcks)
		v[p+"push_pkts"] = float64(d.pushPkts)
		v[p+"syn_pkts"] = float64(d.synPkts)
		v[p+"fin_pkts"] = float64(d.finPkts)
		v[p+"rst_pkts"] = float64(d.rstPkts)
		v[p+"retrans_pkts"] = float64(d.retransPkts)
		v[p+"retrans_bytes"] = float64(d.retransBytes)
		v[p+"ooo_pkts"] = float64(d.oooPkts)
		v[p+"dup_acks"] = float64(d.dupAcks)
		v[p+"zero_wnd_pkts"] = float64(d.zeroWndPkts)
		v[p+"mss"] = d.mss
		v[p+"win_avg"] = d.winAgg.Mean()
		v[p+"win_min"] = d.winAgg.Min()
		v[p+"win_max"] = d.winAgg.Max()
		v[p+"seg_avg"] = d.segAgg.Mean()
		v[p+"seg_min"] = d.segAgg.Min()
		v[p+"seg_max"] = d.segAgg.Max()
		v[p+"seg_std"] = d.segAgg.Std()
		v[p+"win_std"] = d.winAgg.Std()
		v[p+"uniq_bytes"] = float64(d.maxEnd)
		d.rttAgg.Fill(v, p+"rtt_ms")
		v[p+"iat_avg_ms"] = d.iatAgg.Mean()
		v[p+"iat_std_ms"] = d.iatAgg.Std()
		v[p+"max_idle_ms"] = float64(d.maxIdle) / float64(time.Millisecond)
		if d.havePkt {
			v[p+"first_pkt_s"] = (d.firstPkt - r.fs.start).Seconds()
			v[p+"last_pkt_s"] = (d.lastPkt - r.fs.start).Seconds()
		}
		if d.haveData {
			v[p+"first_data_s"] = (d.firstData - r.fs.start).Seconds()
			v[p+"data_time_s"] = (d.lastPkt - d.firstData).Seconds()
			if active := (d.lastPkt - d.firstData).Seconds(); active > 0 {
				v[p+"active_throughput_bps"] = float64(d.dataBytes) * 8 / active
			}
		}
		if durSec > 0 {
			v[p+"throughput_bps"] = float64(d.dataBytes) * 8 / durSec
		}
		if d.dataPkts > 0 {
			v[p+"retrans_ratio"] = float64(d.retransPkts) / float64(d.dataPkts)
			v[p+"ooo_ratio"] = float64(d.oooPkts) / float64(d.dataPkts)
		}
		if d.pkts > 0 {
			v[p+"ack_ratio"] = float64(d.pureAcks) / float64(d.pkts)
			v[p+"bytes_per_pkt"] = float64(d.bytes) / float64(d.pkts)
		}
		if d.pureAcks > 0 {
			v[p+"dupack_ratio"] = float64(d.dupAcks) / float64(d.pureAcks)
		}
	}

	// Flow-level composites.
	c2s, s2c := r.dir(true), r.dir(false)
	v["tcp_total_pkts"] = float64(c2s.pkts + s2c.pkts)
	v["tcp_total_bytes"] = float64(c2s.bytes + s2c.bytes)
	if s2c.haveData {
		// "First packet arrival": request to first video data byte —
		// one of the paper's strongest features.
		v["tcp_first_data_delay_s"] = (s2c.firstData - r.fs.start).Seconds()
	}
	if c2s.havePkt && s2c.havePkt {
		v["tcp_handshake_ms"] = float64(s2c.firstPkt-c2s.firstPkt) / float64(time.Millisecond)
	}
	// Combined RTT view (both half-connections).
	var rtt metrics.Agg
	for _, d := range r.fs.dirs {
		if d.rttAgg.Count() > 0 {
			rtt.Add(d.rttAgg.Mean())
		}
	}
	if rtt.Count() > 0 {
		v["tcp_rtt_any_avg_ms"] = rtt.Mean()
	}
	return v
}

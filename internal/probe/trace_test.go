package probe

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestTraceRoundTrip: metrics computed live at a tap must match metrics
// recomputed from a recorded trace of the same tap.
func TestTraceRoundTrip(t *testing.T) {
	w := newWorld(30, lanCfg(), wanCfg())
	var buf bytes.Buffer
	rec, err := NewTraceRecorder(w.cliNode, &buf)
	if err != nil {
		t.Fatal(err)
	}
	flow := w.download(t, 300_000, time.Minute)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, err := ReplayTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	live := w.mMob.Flow(flow).Vector()
	back := replayed.Flow(flow).Vector()
	if len(live) != len(back) {
		t.Fatalf("metric counts differ: live=%d replay=%d", len(live), len(back))
	}
	for k, v := range live {
		if back[k] != v {
			t.Errorf("metric %s: live=%v replay=%v", k, v, back[k])
		}
	}
}

func TestTraceContainsOnlyOwnPackets(t *testing.T) {
	w := newWorld(31, lanCfg(), wanCfg())
	var buf bytes.Buffer
	rec, err := NewTraceRecorder(w.cliNode, &buf)
	if err != nil {
		t.Fatal(err)
	}
	w.download(t, 50_000, time.Minute)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 10 {
		t.Fatalf("trace too short: %d lines", len(lines))
	}
	// Every row is either an arrival or a locally originated departure.
	for _, ln := range lines[1:] {
		cells := strings.Split(ln, ",")
		if cells[1] == "out" && cells[3] != "1" {
			t.Fatalf("trace recorded a forwarded packet: %s", ln)
		}
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := ReplayTrace(strings.NewReader("hello,world\n1,2\n")); err == nil {
		t.Error("garbage header accepted")
	}
	bad := strings.Join(traceHeader, ",") + "\nnotanumber,in,tcp,1,2,3,4,5,6,7,8,9,10\n"
	if _, err := ReplayTrace(strings.NewReader(bad)); err == nil {
		t.Error("bad timestamp accepted")
	}
}

func TestReplayedMeterUsableForDiagnosis(t *testing.T) {
	// The replayed meter must expose the same API surface: flow counts
	// and lookup in both orientations.
	w := newWorld(32, lanCfg(), wanCfg())
	var buf bytes.Buffer
	rec, err := NewTraceRecorder(w.srvNode, &buf)
	if err != nil {
		t.Fatal(err)
	}
	flow := w.download(t, 80_000, time.Minute)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := ReplayTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Flows() == 0 {
		t.Fatal("replayed meter has no flows")
	}
	if m.Flow(flow.Reverse()) == nil {
		t.Error("reverse-orientation lookup failed on replayed meter")
	}
	if v := m.Flow(flow).Vector(); v["tcp_s2c_data_bytes"] < 80_000 {
		t.Errorf("replayed byte count %v", v["tcp_s2c_data_bytes"])
	}
}

// failAfterWriter accepts n bytes, then fails every write with err.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n < len(p) {
		return 0, w.err
	}
	w.n -= len(p)
	return len(p), nil
}

// TestTraceRecorderSurfacesWriteError: a sink that starts failing mid-
// recording must not be silent — Close reports the first error, and
// keeps reporting the same one on repeat calls.
func TestTraceRecorderSurfacesWriteError(t *testing.T) {
	errDisk := errors.New("disk full")
	w := newWorld(33, lanCfg(), wanCfg())
	rec, err := NewTraceRecorder(w.cliNode, &failAfterWriter{n: 1024, err: errDisk})
	if err != nil {
		t.Fatal(err)
	}
	w.download(t, 300_000, time.Minute)
	if err := rec.Close(); !errors.Is(err, errDisk) {
		t.Fatalf("Close() = %v, want %v", err, errDisk)
	}
	if err := rec.Close(); !errors.Is(err, errDisk) {
		t.Fatalf("second Close() = %v, want the same first error", err)
	}
}

// TestTraceRecorderCloseStopsRecording: packets tapped after Close must
// not land in the trace (taps cannot be detached from a node).
func TestTraceRecorderCloseStopsRecording(t *testing.T) {
	w := newWorld(34, lanCfg(), wanCfg())
	var buf bytes.Buffer
	rec, err := NewTraceRecorder(w.cliNode, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	w.download(t, 50_000, time.Minute)
	rec.Flush()
	if lines := strings.Split(strings.TrimSpace(buf.String()), "\n"); len(lines) != 1 {
		t.Fatalf("closed recorder captured %d rows", len(lines)-1)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	m, err := ReplayTrace(strings.NewReader(strings.Join(traceHeader, ",") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Flows() != 0 {
		t.Errorf("empty trace produced %d flows", m.Flows())
	}
}

package probe

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"vqprobe/internal/simnet"
)

// Trace recording and replay: a TraceRecorder taps a node and writes a
// pcap-like CSV of every TCP header it sees; ReplayTrace feeds such a
// file back through a FlowMeter. This decouples the analysis pipeline
// from the live simulator — the same flow metrics can be computed from
// recorded captures, which is how the paper's probes would consume
// real tstat logs or packet traces.

// TraceRecorder writes one CSV row per observed TCP packet.
type TraceRecorder struct {
	w      *csv.Writer
	err    error
	closed bool
}

// traceHeader is the column layout of a trace file.
var traceHeader = []string{
	"t_ns", "dir", "proto", "src", "sport", "dst", "dport",
	"payload", "seq", "ack", "flags", "window", "mss",
}

// NewTraceRecorder attaches a recorder to node, streaming rows to w.
func NewTraceRecorder(node *simnet.Node, w io.Writer) (*TraceRecorder, error) {
	r := &TraceRecorder{w: csv.NewWriter(w)}
	if err := r.w.Write(traceHeader); err != nil {
		return nil, fmt.Errorf("probe: writing trace header: %w", err)
	}
	addr := node.Addr
	node.AddTap(func(now time.Duration, _ *simnet.NIC, pkt *simnet.Packet, dir simnet.PacketDir) {
		if r.closed || r.err != nil || !pkt.IsTCP() {
			return
		}
		if dir == simnet.DirOut && pkt.Flow.Src != addr {
			return // forwarding duplicates, as the meter filters them
		}
		h := pkt.TCP
		row := []string{
			strconv.FormatInt(int64(now), 10),
			dir.String(),
			pkt.Flow.Proto.String(),
			strconv.Itoa(int(pkt.Flow.Src)), strconv.Itoa(pkt.Flow.SrcPort),
			strconv.Itoa(int(pkt.Flow.Dst)), strconv.Itoa(pkt.Flow.DstPort),
			strconv.Itoa(pkt.Payload),
			strconv.FormatInt(h.Seq, 10), strconv.FormatInt(h.Ack, 10),
			strconv.Itoa(int(h.Flags)), strconv.Itoa(h.Window), strconv.Itoa(h.MSS),
		}
		if err := r.w.Write(row); err != nil {
			r.err = err
		}
	})
	return r, nil
}

// Flush writes out buffered rows and reports the first error hit while
// writing the trace (sticky: later calls keep returning it).
func (r *TraceRecorder) Flush() error {
	r.w.Flush()
	if r.err == nil {
		r.err = r.w.Error()
	}
	return r.err
}

// Close stops recording — packets tapped afterwards are ignored —
// flushes, and surfaces the first write error. Node taps cannot be
// detached, so the recorder must outlive the simulation, but after
// Close it only ever returns this same result.
func (r *TraceRecorder) Close() error {
	r.closed = true
	return r.Flush()
}

// ReplayTrace parses a recorded trace and feeds every packet through a
// fresh flow-metering state, returning a meter holding the same per-flow
// records a live tap would have produced.
func ReplayTrace(rd io.Reader) (*FlowMeter, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("probe: reading trace header: %w", err)
	}
	if len(header) != len(traceHeader) || header[0] != "t_ns" {
		return nil, fmt.Errorf("probe: not a trace file (header %v)", header)
	}
	m := &FlowMeter{flows: make(map[simnet.FlowKey]*flowState)}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("probe: trace line %d: %w", line, err)
		}
		pkt, now, perr := parseTraceRow(rec)
		if perr != nil {
			return nil, fmt.Errorf("probe: trace line %d: %w", line, perr)
		}
		fs, di := m.lookup(pkt, now)
		fs.observe(now, pkt, di)
	}
	return m, nil
}

func parseTraceRow(rec []string) (*simnet.Packet, time.Duration, error) {
	geti := func(i int) (int, error) { return strconv.Atoi(rec[i]) }
	tNS, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("bad timestamp %q", rec[0])
	}
	src, err1 := geti(3)
	sport, err2 := geti(4)
	dst, err3 := geti(5)
	dport, err4 := geti(6)
	payload, err5 := geti(7)
	seq, err6 := strconv.ParseInt(rec[8], 10, 64)
	ack, err7 := strconv.ParseInt(rec[9], 10, 64)
	flags, err8 := geti(10)
	window, err9 := geti(11)
	mss, err10 := geti(12)
	for _, e := range []error{err1, err2, err3, err4, err5, err6, err7, err8, err9, err10} {
		if e != nil {
			return nil, 0, e
		}
	}
	pkt := &simnet.Packet{
		Flow: simnet.FlowKey{
			Proto: simnet.ProtoTCP,
			Src:   simnet.Addr(src), Dst: simnet.Addr(dst),
			SrcPort: sport, DstPort: dport,
		},
		Payload: payload,
		TCP: &simnet.TCPHeader{
			Seq: seq, Ack: ack, Flags: simnet.TCPFlags(flags),
			Window: window, MSS: mss,
		},
	}
	return pkt, time.Duration(tNS), nil
}

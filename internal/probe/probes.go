package probe

import (
	"time"

	"vqprobe/internal/hardware"
	"vqprobe/internal/metrics"
	"vqprobe/internal/simnet"
	"vqprobe/internal/wireless"
)

// HWProbe samples the OS/hardware layer of a device once per second via
// the device model's sampling hook.
type HWProbe struct {
	cpu, mem, io metrics.Agg
}

// NewHWProbe registers on the device's sampler. Only one probe may own a
// device's OnSample hook; the testbed creates exactly one per VP.
func NewHWProbe(dev *hardware.Device) *HWProbe {
	p := &HWProbe{}
	dev.OnSample = func(_ time.Duration, cpu, mem, io float64) {
		p.cpu.Add(cpu)
		p.mem.Add(mem)
		p.io.Add(io)
	}
	return p
}

// Vector exports the aggregated OS/hardware metrics.
func (p *HWProbe) Vector() metrics.Vector {
	v := metrics.Vector{}
	p.cpu.Fill(v, "hw_cpu_pct")
	p.mem.Fill(v, "hw_mem_free_mb")
	p.io.Fill(v, "hw_io_wait_pct")
	return v
}

// Reset clears the aggregates; called between sessions.
func (p *HWProbe) Reset() { *p = HWProbe{} }

// LinkProbe samples one NIC once per second: utilization from byte
// counter deltas, drops/losses/retries from its link, and — when a
// wireless channel is attached and the probe is allowed to see it — the
// RSSI time series. Per the paper, only the mobile device exports RSSI;
// router and server probes are created without a channel.
type LinkProbe struct {
	nic  *simnet.NIC
	chn  *wireless.Channel
	tick *simnet.Ticker

	lastRx, lastTx int64
	baseDisc       int64

	rxUtil, txUtil metrics.Agg // fraction of nominal link rate
	rssi           metrics.Agg
	retries        int64
	lastRetries    [2]int64
	queueDrops     int64
	channelLoss    int64
	lastDrops      [2]int64
	lastLoss       [2]int64
}

// NewLinkProbe starts sampling nic every second. chn may be nil (wired
// NIC or a VP without radio visibility).
func NewLinkProbe(sim *simnet.Sim, nic *simnet.NIC, chn *wireless.Channel) *LinkProbe {
	p := &LinkProbe{nic: nic, chn: chn}
	p.baseline()
	if chn != nil {
		chn.OnSample = func(_ time.Duration, rssi float64) { p.rssi.Add(rssi) }
	}
	p.tick = simnet.NewTicker(sim, time.Second, p.sample)
	return p
}

func (p *LinkProbe) baseline() {
	p.lastRx, p.lastTx = p.nic.RxBytes, p.nic.TxBytes
	p.baseDisc = p.nic.Disconnects
	if l := p.nic.Link(); l != nil {
		for i, d := range []simnet.Direction{simnet.AtoB, simnet.BtoA} {
			st := l.Stats(d)
			p.lastRetries[i] = st.Retries
			p.lastDrops[i] = st.QueueDrops
			p.lastLoss[i] = st.ChannelLoss
		}
	}
}

func (p *LinkProbe) sample(time.Duration) {
	l := p.nic.Link()
	if l == nil {
		return
	}
	rate := l.Config(simnet.AtoB).Rate
	rx, tx := p.nic.RxBytes, p.nic.TxBytes
	p.rxUtil.Add(float64(rx-p.lastRx) * 8 / rate)
	p.txUtil.Add(float64(tx-p.lastTx) * 8 / rate)
	p.lastRx, p.lastTx = rx, tx
	for i, d := range []simnet.Direction{simnet.AtoB, simnet.BtoA} {
		st := l.Stats(d)
		p.retries += st.Retries - p.lastRetries[i]
		p.queueDrops += st.QueueDrops - p.lastDrops[i]
		p.channelLoss += st.ChannelLoss - p.lastLoss[i]
		p.lastRetries[i] = st.Retries
		p.lastDrops[i] = st.QueueDrops
		p.lastLoss[i] = st.ChannelLoss
	}
}

// Vector exports the aggregated link/physical metrics for the NIC.
func (p *LinkProbe) Vector() metrics.Vector {
	v := metrics.Vector{}
	v["nic_rx_util_avg"] = p.rxUtil.Mean()
	v["nic_rx_util_max"] = p.rxUtil.Max()
	v["nic_tx_util_avg"] = p.txUtil.Mean()
	v["nic_tx_util_max"] = p.txUtil.Max()
	v["nic_retries"] = float64(p.retries)
	v["nic_queue_drops"] = float64(p.queueDrops)
	v["nic_channel_loss"] = float64(p.channelLoss)
	v["nic_disconnects"] = float64(p.nic.Disconnects - p.baseDisc)
	if p.rssi.Count() > 0 {
		p.rssi.Fill(v, "nic_rssi_dbm")
	}
	return v
}

// Reset re-baselines the counters and clears aggregates for a new
// session.
func (p *LinkProbe) Reset() {
	rssiHook := p.chn
	*p = LinkProbe{nic: p.nic, chn: rssiHook, tick: p.tick}
	p.baseline()
}

// Stop halts the sampler.
func (p *LinkProbe) Stop() { p.tick.Stop() }

// VantagePoint bundles the probes deployed on one entity (mobile device,
// router/AP, or content server) and assembles the per-session record.
type VantagePoint struct {
	Name  string
	meter *FlowMeter
	hw    *HWProbe
	links map[string]*LinkProbe
}

// NewVantagePoint instruments a node with a flow meter and a hardware
// probe.
func NewVantagePoint(name string, node *simnet.Node, dev *hardware.Device) *VantagePoint {
	return &VantagePoint{
		Name:  name,
		meter: NewFlowMeter(node),
		hw:    NewHWProbe(dev),
		links: make(map[string]*LinkProbe),
	}
}

// AddLink attaches a NIC sampler under the given label ("wlan0",
// "eth0"). Pass chn only for the mobile device's radio.
func (vp *VantagePoint) AddLink(sim *simnet.Sim, label string, nic *simnet.NIC, chn *wireless.Channel) *LinkProbe {
	p := NewLinkProbe(sim, nic, chn)
	vp.links[label] = p
	return p
}

// Meter exposes the transport-layer flow meter.
func (vp *VantagePoint) Meter() *FlowMeter { return vp.meter }

// Record assembles the vantage point's feature vector for one video
// flow. Feature names are flat (tcp_*, hw_*, <label>_nic_*); the caller
// prefixes them with the VP name when combining vantage points.
func (vp *VantagePoint) Record(flow simnet.FlowKey) metrics.Vector {
	return vp.RecordInto(flow, nil)
}

// RecordInto is Record writing into a caller-supplied vector, which is
// cleared first; a nil vector allocates a fresh one. Pooled session
// runners (testbed.Runner, the vqfleet full-fidelity path) pass the
// previous session's vector back in to keep the per-session record
// path allocation-free.
func (vp *VantagePoint) RecordInto(flow simnet.FlowKey, v metrics.Vector) metrics.Vector {
	if v == nil {
		v = metrics.Vector{}
	} else {
		for k := range v {
			delete(v, k)
		}
	}
	if fr := vp.meter.Flow(flow); fr != nil {
		for k, val := range fr.Vector() {
			v[k] = val
		}
	}
	for k, val := range vp.hw.Vector() {
		v[k] = val
	}
	for label, lp := range vp.links {
		for k, val := range lp.Vector() {
			v[label+"_"+k] = val
		}
	}
	return v
}

package features

import (
	"math"
	"sort"

	"vqprobe/internal/ml"
	"vqprobe/internal/parallel"
)

// fcbfBins is the number of equal-frequency bins used to discretize
// continuous features before computing information measures. (The
// original FCBF paper used MDL discretization; equal-frequency binning
// is a standard simpler substitute and is documented in DESIGN.md.)
const fcbfBins = 10

// missingBin is the discrete symbol for absent values.
const missingBin = fcbfBins

// SUScore pairs a feature with its symmetrical uncertainty against the
// class.
type SUScore struct {
	Feature string
	SU      float64
}

// discretize maps a feature column to bin indices via equal-frequency
// binning; missing values get their own bin.
func discretize(col []float64) []int {
	present := make([]float64, 0, len(col))
	for _, v := range col {
		if !ml.IsMissing(v) {
			present = append(present, v)
		}
	}
	out := make([]int, len(col))
	if len(present) == 0 {
		for i := range out {
			out[i] = missingBin
		}
		return out
	}
	sort.Float64s(present)
	// Bin edges at the quantiles.
	edges := make([]float64, 0, fcbfBins-1)
	for b := 1; b < fcbfBins; b++ {
		edges = append(edges, present[len(present)*b/fcbfBins])
	}
	for i, v := range col {
		if ml.IsMissing(v) {
			out[i] = missingBin
			continue
		}
		// First edge strictly greater than v: values equal to an edge
		// belong to the bin above it.
		out[i] = sort.Search(len(edges), func(j int) bool { return edges[j] > v })
	}
	return out
}

// entropyOf computes H(X) over discrete symbols.
func entropyOf(xs []int, nSym int) float64 {
	counts := make([]float64, nSym)
	for _, x := range xs {
		counts[x]++
	}
	n := float64(len(xs))
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / n
			h -= p * math.Log2(p)
		}
	}
	return h
}

// suScratch is one worker's reusable contingency-table buffers, so
// pairwise symmetric-uncertainty evaluations allocate nothing after
// warm-up.
type suScratch struct {
	joint  []float64
	ycount []float64
}

// condEntropy computes H(X|Y), building the contingency table in the
// worker's scratch buffers.
func condEntropy(x []int, nx int, y []int, ny int, sc *suScratch) float64 {
	if cap(sc.joint) < nx*ny {
		sc.joint = make([]float64, nx*ny)
	}
	if cap(sc.ycount) < ny {
		sc.ycount = make([]float64, ny)
	}
	joint := sc.joint[:nx*ny]
	ycount := sc.ycount[:ny]
	for i := range joint {
		joint[i] = 0
	}
	for i := range ycount {
		ycount[i] = 0
	}
	for i := range x {
		joint[y[i]*nx+x[i]]++
		ycount[y[i]]++
	}
	n := float64(len(x))
	h := 0.0
	for yi := 0; yi < ny; yi++ {
		if ycount[yi] == 0 {
			continue
		}
		py := ycount[yi] / n
		hxy := 0.0
		for xi := 0; xi < nx; xi++ {
			c := joint[yi*nx+xi]
			if c > 0 {
				p := c / ycount[yi]
				hxy -= p * math.Log2(p)
			}
		}
		h += py * hxy
	}
	return h
}

// su computes symmetrical uncertainty 2*IG/(H(X)+H(Y)) from memoized
// marginal entropies hx and hy; only the contingency table is built per
// call.
func su(x []int, nx int, hx float64, y []int, ny int, hy float64, sc *suScratch) float64 {
	if hx+hy == 0 {
		return 0
	}
	ig := hx - condEntropy(x, nx, y, ny, sc)
	return 2 * ig / (hx + hy)
}

// corpus is the memoized state for one FCBF run, shared between the
// discretization step (equal-frequency or Fayyad-Irani MDL), the
// class-relevance ranking and the pairwise redundancy elimination: the
// raw feature columns are extracted from the instance maps exactly
// once, and every feature's marginal entropy H(X) is computed exactly
// once instead of from scratch per feature pair.
type corpus struct {
	names  []string
	y      []int
	nClass int
	cols   [][]int
	syms   []int
	hx     []float64 // H(feature f) over its symbols, memoized
	hy     float64   // H(class), memoized
}

// buildCorpus extracts and discretizes every feature column (in
// parallel across features) and memoizes the marginal entropies.
func buildCorpus(d *ml.Dataset, disc Discretizer, workers int) *corpus {
	names := d.Features()
	nInst, nF := d.Len(), len(names)
	classes := d.Classes()
	cidx := make(map[string]int, len(classes))
	for i, cl := range classes {
		cidx[cl] = i
	}
	c := &corpus{
		names: names, y: make([]int, nInst), nClass: len(classes),
		cols: make([][]int, nF), syms: make([]int, nF), hx: make([]float64, nF),
	}
	// One pass over the instance maps scatters values into a
	// column-major slab; absent values stay Missing.
	raw := make([]float64, nF*nInst)
	for i := range raw {
		raw[i] = ml.Missing
	}
	for i := range d.Instances {
		in := &d.Instances[i]
		c.y[i] = cidx[in.Class]
		for name, v := range in.Features {
			if f := d.FeatureIndex(name); f >= 0 {
				raw[f*nInst+i] = v
			}
		}
	}
	parallel.For(nF, workers, func(f int) {
		c.cols[f], c.syms[f] = disc(raw[f*nInst:(f+1)*nInst], c.y, c.nClass)
		c.hx[f] = entropyOf(c.cols[f], c.syms[f])
	})
	c.hy = entropyOf(c.y, c.nClass)
	return c
}

// rank runs the FCBF ranking and redundancy elimination over the
// corpus. Relevance scoring fans out across features; elimination
// rounds fan out across the not-yet-removed candidates of each
// predominant feature (each candidate's verdict depends only on the
// serially-chosen predominant feature, so any worker count produces the
// same selection).
func (c *corpus) rank(delta float64, workers int) []SUScore {
	nF := len(c.names)
	resolved := parallel.Workers(workers, nF)
	scratch := make([]suScratch, resolved)

	suClass := make([]float64, nF)
	parallel.ForWorker(nF, resolved, func(w, f int) {
		suClass[f] = su(c.cols[f], c.syms[f], c.hx[f], c.y, c.nClass, c.hy, &scratch[w])
	})
	scores := make([]SUScore, 0, nF)
	for f, name := range c.names {
		if suClass[f] > delta {
			scores = append(scores, SUScore{Feature: name, SU: suClass[f]})
		}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].SU != scores[j].SU {
			return scores[i].SU > scores[j].SU
		}
		return scores[i].Feature < scores[j].Feature
	})

	// Redundancy elimination.
	index := make(map[string]int, nF)
	for f, n := range c.names {
		index[n] = f
	}
	removed := make([]bool, len(scores))
	var selected []SUScore
	for i := range scores {
		if removed[i] {
			continue
		}
		selected = append(selected, scores[i])
		fi := index[scores[i].Feature]
		rest := len(scores) - i - 1
		w := resolved
		if rest < 32 {
			w = 1 // not worth a fan-out
		}
		parallel.ForWorker(rest, w, func(wk, jj int) {
			j := i + 1 + jj
			if removed[j] {
				return
			}
			fj := index[scores[j].Feature]
			if su(c.cols[fj], c.syms[fj], c.hx[fj], c.cols[fi], c.syms[fi], c.hx[fi], &scratch[wk]) >= suClass[fj] {
				removed[j] = true
			}
		})
	}
	return selected
}

// FCBF runs the Fast Correlation-Based Filter (Yu & Liu, 2003): rank
// features by symmetrical uncertainty with the class, keep those above
// delta, then remove every feature that is more correlated with an
// already-selected (predominant) feature than with the class.
//
// It returns the selected feature names in rank order together with
// their class SU values.
func FCBF(d *ml.Dataset, delta float64) []SUScore {
	return FCBFWorkers(d, delta, 0)
}

// FCBFWorkers is FCBF with an explicit worker bound (zero selects
// GOMAXPROCS, 1 forces serial); the selection is byte-identical for any
// worker count.
func FCBFWorkers(d *ml.Dataset, delta float64, workers int) []SUScore {
	return FCBFWithWorkers(d, delta, EqualFrequency(), workers)
}

// Names extracts the feature names from a ranked score list.
func Names(scores []SUScore) []string {
	out := make([]string, len(scores))
	for i, s := range scores {
		out[i] = s.Feature
	}
	return out
}

// Select runs feature construction followed by FCBF and returns the
// projected dataset plus the selected ranking and the normalizer — the
// complete FS&FC pipeline of the paper.
func Select(d *ml.Dataset, delta float64) (*ml.Dataset, []SUScore, *Normalizer) {
	constructed, norm := Construct(d)
	scores := FCBF(constructed, delta)
	return constructed.Project(Names(scores)), scores, norm
}

package features

import (
	"math"
	"sort"

	"vqprobe/internal/ml"
)

// fcbfBins is the number of equal-frequency bins used to discretize
// continuous features before computing information measures. (The
// original FCBF paper used MDL discretization; equal-frequency binning
// is a standard simpler substitute and is documented in DESIGN.md.)
const fcbfBins = 10

// missingBin is the discrete symbol for absent values.
const missingBin = fcbfBins

// SUScore pairs a feature with its symmetrical uncertainty against the
// class.
type SUScore struct {
	Feature string
	SU      float64
}

// discretize maps a feature column to bin indices via equal-frequency
// binning; missing values get their own bin.
func discretize(col []float64) []int {
	present := make([]float64, 0, len(col))
	for _, v := range col {
		if !ml.IsMissing(v) {
			present = append(present, v)
		}
	}
	out := make([]int, len(col))
	if len(present) == 0 {
		for i := range out {
			out[i] = missingBin
		}
		return out
	}
	sort.Float64s(present)
	// Bin edges at the quantiles.
	edges := make([]float64, 0, fcbfBins-1)
	for b := 1; b < fcbfBins; b++ {
		edges = append(edges, present[len(present)*b/fcbfBins])
	}
	for i, v := range col {
		if ml.IsMissing(v) {
			out[i] = missingBin
			continue
		}
		// First edge strictly greater than v: values equal to an edge
		// belong to the bin above it.
		out[i] = sort.Search(len(edges), func(j int) bool { return edges[j] > v })
	}
	return out
}

// entropyOf computes H(X) over discrete symbols.
func entropyOf(xs []int, nSym int) float64 {
	counts := make([]float64, nSym)
	for _, x := range xs {
		counts[x]++
	}
	n := float64(len(xs))
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / n
			h -= p * math.Log2(p)
		}
	}
	return h
}

// condEntropy computes H(X|Y).
func condEntropy(x []int, nx int, y []int, ny int) float64 {
	joint := make([]float64, nx*ny)
	ycount := make([]float64, ny)
	for i := range x {
		joint[y[i]*nx+x[i]]++
		ycount[y[i]]++
	}
	n := float64(len(x))
	h := 0.0
	for yi := 0; yi < ny; yi++ {
		if ycount[yi] == 0 {
			continue
		}
		py := ycount[yi] / n
		hxy := 0.0
		for xi := 0; xi < nx; xi++ {
			c := joint[yi*nx+xi]
			if c > 0 {
				p := c / ycount[yi]
				hxy -= p * math.Log2(p)
			}
		}
		h += py * hxy
	}
	return h
}

// su computes symmetrical uncertainty 2*IG/(H(X)+H(Y)).
func su(x []int, nx int, y []int, ny int) float64 {
	hx := entropyOf(x, nx)
	hy := entropyOf(y, ny)
	if hx+hy == 0 {
		return 0
	}
	ig := hx - condEntropy(x, nx, y, ny)
	return 2 * ig / (hx + hy)
}

// FCBF runs the Fast Correlation-Based Filter (Yu & Liu, 2003): rank
// features by symmetrical uncertainty with the class, keep those above
// delta, then remove every feature that is more correlated with an
// already-selected (predominant) feature than with the class.
//
// It returns the selected feature names in rank order together with
// their class SU values.
func FCBF(d *ml.Dataset, delta float64) []SUScore {
	names := d.Features()
	nInst := d.Len()
	if nInst == 0 || len(names) == 0 {
		return nil
	}

	// Class symbols.
	classes := d.Classes()
	cidx := make(map[string]int, len(classes))
	for i, c := range classes {
		cidx[c] = i
	}
	y := make([]int, nInst)
	for i, in := range d.Instances {
		y[i] = cidx[in.Class]
	}

	// Discretize every feature column once.
	cols := make([][]int, len(names))
	col := make([]float64, nInst)
	for f, name := range names {
		for i, in := range d.Instances {
			if v, ok := in.Features[name]; ok {
				col[i] = v
			} else {
				col[i] = ml.Missing
			}
		}
		cols[f] = discretize(col)
	}
	nSym := fcbfBins + 1

	// SU with the class.
	scores := make([]SUScore, 0, len(names))
	suClass := make([]float64, len(names))
	for f, name := range names {
		s := su(cols[f], nSym, y, len(classes))
		suClass[f] = s
		if s > delta {
			scores = append(scores, SUScore{Feature: name, SU: s})
		}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].SU != scores[j].SU {
			return scores[i].SU > scores[j].SU
		}
		return scores[i].Feature < scores[j].Feature
	})

	// Redundancy elimination.
	index := make(map[string]int, len(names))
	for f, n := range names {
		index[n] = f
	}
	removed := make([]bool, len(scores))
	var selected []SUScore
	for i := range scores {
		if removed[i] {
			continue
		}
		selected = append(selected, scores[i])
		fi := index[scores[i].Feature]
		for j := i + 1; j < len(scores); j++ {
			if removed[j] {
				continue
			}
			fj := index[scores[j].Feature]
			if su(cols[fj], nSym, cols[fi], nSym) >= suClass[fj] {
				removed[j] = true
			}
		}
	}
	return selected
}

// Names extracts the feature names from a ranked score list.
func Names(scores []SUScore) []string {
	out := make([]string, len(scores))
	for i, s := range scores {
		out[i] = s.Feature
	}
	return out
}

// Select runs feature construction followed by FCBF and returns the
// projected dataset plus the selected ranking and the normalizer — the
// complete FS&FC pipeline of the paper.
func Select(d *ml.Dataset, delta float64) (*ml.Dataset, []SUScore, *Normalizer) {
	constructed, norm := Construct(d)
	scores := FCBF(constructed, delta)
	return constructed.Project(Names(scores)), scores, norm
}

package features

import (
	"math/rand"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

func TestMDLFindsCutOnSeparableFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var col []float64
	var y []int
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			col = append(col, rng.NormFloat64())
			y = append(y, 0)
		} else {
			col = append(col, 10+rng.NormFloat64())
			y = append(y, 1)
		}
	}
	syms, n := MDL()(col, y, 2)
	if n < 3 { // at least two value bins + missing bin
		t.Fatalf("MDL found no cut on a separable feature (nSymbols=%d)", n)
	}
	// All class-0 values must land in a different bin than class-1.
	seen := map[int]map[int]bool{}
	for i, s := range syms {
		if seen[s] == nil {
			seen[s] = map[int]bool{}
		}
		seen[s][y[i]] = true
	}
	for s, classes := range seen {
		if len(classes) > 1 {
			t.Errorf("bin %d mixes both classes", s)
		}
	}
}

func TestMDLRejectsNoiseFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var col []float64
	var y []int
	for i := 0; i < 300; i++ {
		col = append(col, rng.Float64())
		y = append(y, rng.Intn(2))
	}
	_, n := MDL()(col, y, 2)
	// No informative cut should be accepted: one value bin + missing bin.
	if n > 3 {
		t.Errorf("MDL accepted %d symbols on pure noise", n-1)
	}
}

func TestMDLHandlesMissingAndEmpty(t *testing.T) {
	syms, n := MDL()([]float64{ml.Missing, ml.Missing}, []int{0, 1}, 2)
	if len(syms) != 2 || n < 2 {
		t.Errorf("all-missing column mishandled: %v, n=%d", syms, n)
	}
	syms2, _ := MDL()([]float64{1, ml.Missing, 2}, []int{0, 1, 0}, 2)
	if syms2[1] == syms2[0] {
		t.Error("missing value shares a bin with a present value")
	}
}

func TestFCBFWithMDLSelectsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ins []ml.Instance
	for i := 0; i < 400; i++ {
		cls, sig := "a", rng.NormFloat64()
		if i%2 == 0 {
			cls, sig = "b", 6+rng.NormFloat64()
		}
		ins = append(ins, ml.Instance{Features: metrics.Vector{
			"signal": sig, "noise": rng.Float64(),
		}, Class: cls})
	}
	sel := FCBFWith(ml.NewDataset(ins), 0.02, MDL())
	if len(sel) == 0 || sel[0].Feature != "signal" {
		t.Fatalf("FCBF+MDL selection = %+v", sel)
	}
	// Noise must be rejected outright (MDL collapses it to one bin).
	for _, s := range sel {
		if s.Feature == "noise" {
			t.Error("noise survived MDL discretization")
		}
	}
}

func TestFCBFWithEqualFrequencyMatchesDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ins []ml.Instance
	for i := 0; i < 200; i++ {
		cls, sig := "a", rng.NormFloat64()
		if i%2 == 0 {
			cls, sig = "b", 4+rng.NormFloat64()
		}
		ins = append(ins, ml.Instance{Features: metrics.Vector{"s": sig, "n": rng.Float64()}, Class: cls})
	}
	d := ml.NewDataset(ins)
	a := FCBF(d, 0.02)
	b := FCBFWith(d, 0.02, EqualFrequency())
	if len(a) != len(b) {
		t.Fatalf("default and explicit equal-frequency disagree: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("rank %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

package features

// Regression test: a single +Inf sample in a max-scaled feature
// (throughput, NIC utilization) used to become the dataset-level
// divisor, collapsing every finite value of that feature to 0 and
// turning the Inf sample itself into NaN (Inf/Inf) after normalization.

import (
	"math"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

func TestNormalizerIgnoresNonFiniteSamples(t *testing.T) {
	d := ml.NewDataset([]ml.Instance{
		{Features: map[string]float64{"mobile.throughput_bps": 2e6}, Class: "good"},
		{Features: map[string]float64{"mobile.throughput_bps": math.Inf(1)}, Class: "good"},
		{Features: map[string]float64{"mobile.throughput_bps": 4e6}, Class: "good"},
	})
	n := NewNormalizer(d)
	if got := n.Scales()["mobile.throughput_bps"]; got != 4e6 {
		t.Fatalf("max scale = %v, want 4e6 (the largest finite sample)", got)
	}
	fv := n.ApplyVector(metrics.Vector{"mobile.throughput_bps": 2e6})
	if got := fv["mobile.throughput_bps"]; got != 0.5 {
		t.Errorf("normalized value = %v, want 0.5", got)
	}
}

func TestNormalizerAllNonFiniteLeavesUnscaled(t *testing.T) {
	d := ml.NewDataset([]ml.Instance{
		{Features: map[string]float64{"mobile.nic_rx_util": math.Inf(1)}, Class: "good"},
	})
	n := NewNormalizer(d)
	if _, ok := n.Scales()["mobile.nic_rx_util"]; ok {
		t.Error("feature with only non-finite samples got a scale divisor")
	}
	// ApplyVector must pass finite values through untouched, never NaN.
	fv := n.ApplyVector(metrics.Vector{"mobile.nic_rx_util": 0.7})
	if got := fv["mobile.nic_rx_util"]; got != 0.7 || math.IsNaN(got) {
		t.Errorf("unscaled value = %v, want 0.7", got)
	}
}

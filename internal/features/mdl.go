package features

import (
	"math"
	"sort"

	"vqprobe/internal/ml"
)

// Fayyad & Irani (1993) MDL-based entropy discretization — the method
// the original FCBF paper used before computing symmetrical uncertainty.
// FCBFWith lets experiments compare it against the default
// equal-frequency binning (the ablate-mdl experiment).

// Discretizer converts one feature column (aligned with class labels)
// into small integer symbols; implementations must reserve distinct
// symbols per distinct region and may not exceed maxSymbols-1, leaving
// the top symbol for missing values.
type Discretizer func(col []float64, y []int, nClass int) (symbols []int, nSymbols int)

// EqualFrequency returns the default 10-bin equal-frequency discretizer.
func EqualFrequency() Discretizer {
	return func(col []float64, _ []int, _ int) ([]int, int) {
		return discretize(col), fcbfBins + 1
	}
}

// MDL returns the Fayyad-Irani entropy/MDL discretizer: cut points are
// chosen recursively to maximize information gain and accepted only when
// the gain clears the minimum-description-length criterion. Features for
// which no cut is accepted collapse to a single symbol (and thus zero
// SU), which is itself a form of feature rejection.
func MDL() Discretizer {
	return func(col []float64, y []int, nClass int) ([]int, int) {
		type vy struct {
			v float64
			y int
		}
		var pts []vy
		for i, v := range col {
			if !ml.IsMissing(v) {
				pts = append(pts, vy{v, y[i]})
			}
		}
		out := make([]int, len(col))
		if len(pts) == 0 {
			for i := range out {
				out[i] = 1 // everything missing
			}
			return out, 2
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].v < pts[j].v })
		vals := make([]float64, len(pts))
		ys := make([]int, len(pts))
		for i, p := range pts {
			vals[i] = p.v
			ys[i] = p.y
		}
		var cuts []float64
		mdlSplit(vals, ys, nClass, &cuts, 0)
		sort.Float64s(cuts)

		for i, v := range col {
			if ml.IsMissing(v) {
				out[i] = len(cuts) + 1 // missing bin
				continue
			}
			out[i] = sort.SearchFloat64s(cuts, v)
			if out[i] < len(cuts) && v >= cuts[out[i]] {
				out[i]++
			}
		}
		return out, len(cuts) + 2
	}
}

// maxMDLDepth bounds recursion; 2^6 = 64 intervals is far beyond what
// the criterion ever accepts on real data.
const maxMDLDepth = 6

// mdlSplit recursively finds accepted cut points over vals[ys] (sorted).
func mdlSplit(vals []float64, ys []int, nClass int, cuts *[]float64, depth int) {
	n := len(vals)
	if n < 4 || depth >= maxMDLDepth {
		return
	}
	total := classCounts(ys, nClass)
	entS, kS := entropyAndClasses(total, n)
	if entS == 0 {
		return
	}

	// Scan boundary candidates for the best information gain.
	left := make([]float64, nClass)
	bestGain, bestIdx := -1.0, -1
	var bestE1, bestE2 float64
	var bestK1, bestK2 int
	for i := 0; i < n-1; i++ {
		left[ys[i]]++
		if vals[i] == vals[i+1] {
			continue
		}
		n1 := i + 1
		n2 := n - n1
		e1, k1 := entropyAndClassesFromLeft(left, total, n1, 0, nClass)
		e2, k2 := entropyAndClassesFromLeft(left, total, n2, 1, nClass)
		cond := (float64(n1)*e1 + float64(n2)*e2) / float64(n)
		if g := entS - cond; g > bestGain {
			bestGain, bestIdx = g, i
			bestE1, bestE2 = e1, e2
			bestK1, bestK2 = k1, k2
		}
	}
	if bestIdx < 0 {
		return
	}

	// MDL acceptance criterion.
	delta := math.Log2(math.Pow(3, float64(kS))-2) -
		(float64(kS)*entS - float64(bestK1)*bestE1 - float64(bestK2)*bestE2)
	threshold := (math.Log2(float64(n-1)) + delta) / float64(n)
	if bestGain <= threshold {
		return
	}

	cut := (vals[bestIdx] + vals[bestIdx+1]) / 2
	*cuts = append(*cuts, cut)
	mdlSplit(vals[:bestIdx+1], ys[:bestIdx+1], nClass, cuts, depth+1)
	mdlSplit(vals[bestIdx+1:], ys[bestIdx+1:], nClass, cuts, depth+1)
}

func classCounts(ys []int, nClass int) []float64 {
	c := make([]float64, nClass)
	for _, y := range ys {
		c[y]++
	}
	return c
}

// entropyAndClasses returns H(S) and the number of distinct classes.
func entropyAndClasses(counts []float64, n int) (float64, int) {
	h, k := 0.0, 0
	for _, c := range counts {
		if c > 0 {
			k++
			p := c / float64(n)
			h -= p * math.Log2(p)
		}
	}
	return h, k
}

// entropyAndClassesFromLeft computes the entropy of the left (side=0) or
// right (side=1) partition given running left counts and totals.
func entropyAndClassesFromLeft(left, total []float64, n, side, nClass int) (float64, int) {
	h, k := 0.0, 0
	for c := 0; c < nClass; c++ {
		v := left[c]
		if side == 1 {
			v = total[c] - left[c]
		}
		if v > 0 {
			k++
			p := v / float64(n)
			h -= p * math.Log2(p)
		}
	}
	return h, k
}

// FCBFWith runs FCBF using a custom discretizer (see FCBF for the
// algorithm itself).
func FCBFWith(d *ml.Dataset, delta float64, disc Discretizer) []SUScore {
	return FCBFWithWorkers(d, delta, disc, 0)
}

// FCBFWithWorkers is FCBFWith with an explicit worker bound (zero
// selects GOMAXPROCS, 1 forces serial). Discretization, relevance
// scoring and redundancy elimination all run on the shared memoized
// corpus (columns extracted once, marginal entropies computed once) and
// produce a byte-identical selection for any worker count.
func FCBFWithWorkers(d *ml.Dataset, delta float64, disc Discretizer, workers int) []SUScore {
	if d.Len() == 0 || len(d.Features()) == 0 {
		return nil
	}
	return buildCorpus(d, disc, workers).rank(delta, workers)
}

package features

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// fcbfCorpus builds a dataset with correlated feature groups (so
// redundancy elimination has real work to do) and some missing values.
func fcbfCorpus(n int, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ins := make([]ml.Instance, n)
	for i := range ins {
		base := rng.NormFloat64()
		fv := metrics.Vector{}
		for f := 0; f < 12; f++ {
			var v float64
			switch {
			case f < 4: // informative, mutually redundant group
				v = base + rng.NormFloat64()*0.1*float64(f+1)
			case f < 8: // weakly informative
				v = base*0.3 + rng.NormFloat64()
			default: // noise
				v = rng.NormFloat64()
			}
			if rng.Float64() >= 0.08 {
				fv[fmt.Sprintf("g%02d", f)] = v
			}
		}
		cls := "a"
		if base > 0 {
			cls = "b"
		}
		ins[i] = ml.Instance{Features: fv, Class: cls}
	}
	return ml.NewDataset(ins)
}

// TestFCBFWorkerInvariance proves the ranking and redundancy
// elimination produce an identical selection (names, order, and exact
// SU values) for any worker count, with both discretizers.
func TestFCBFWorkerInvariance(t *testing.T) {
	d := fcbfCorpus(400, 17)
	for _, tc := range []struct {
		name string
		disc Discretizer
	}{
		{"equal-frequency", EqualFrequency()},
		{"mdl", MDL()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := FCBFWithWorkers(d, 0.01, tc.disc, 1)
			if len(want) == 0 {
				t.Fatal("selection is empty; corpus has no signal")
			}
			for _, workers := range []int{2, 8} {
				got := FCBFWithWorkers(d, 0.01, tc.disc, workers)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("workers=%d selection differs:\n%v\nvs\n%v", workers, got, want)
				}
			}
		})
	}
}

// TestFCBFWorkersMatchesFCBF pins the convenience wrappers to the same
// result.
func TestFCBFWorkersMatchesFCBF(t *testing.T) {
	d := fcbfCorpus(200, 23)
	if got, want := FCBFWorkers(d, 0.02, 8), FCBF(d, 0.02); !reflect.DeepEqual(got, want) {
		t.Errorf("FCBFWorkers(8) = %v, FCBF = %v", got, want)
	}
}

package features

import (
	"math/rand"
	"testing"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

func TestConstructNormalizesCounts(t *testing.T) {
	d := ml.NewDataset([]ml.Instance{
		{Features: metrics.Vector{
			"tcp_s2c_data_pkts": 50, "tcp_total_pkts": 100,
			"tcp_s2c_data_bytes": 5000, "tcp_total_bytes": 10000,
			"tcp_s2c_first_pkt_s": 2, "tcp_duration_s": 10,
		}, Class: "x"},
	})
	out, _ := Construct(d)
	fv := out.Instances[0].Features
	if fv["tcp_s2c_data_pkts"] != 0.5 {
		t.Errorf("pkts normalized to %v, want 0.5", fv["tcp_s2c_data_pkts"])
	}
	if fv["tcp_s2c_data_bytes"] != 0.5 {
		t.Errorf("bytes normalized to %v, want 0.5", fv["tcp_s2c_data_bytes"])
	}
	if fv["tcp_s2c_first_pkt_s"] != 0.2 {
		t.Errorf("time normalized to %v, want 0.2", fv["tcp_s2c_first_pkt_s"])
	}
}

func TestConstructNormalizesPrefixedVPs(t *testing.T) {
	d := ml.NewDataset([]ml.Instance{
		{Features: metrics.Vector{
			"mobile.tcp_s2c_data_pkts": 40, "mobile.tcp_total_pkts": 80,
			"router.tcp_s2c_data_pkts": 10, "router.tcp_total_pkts": 100,
		}, Class: "x"},
	})
	out, _ := Construct(d)
	fv := out.Instances[0].Features
	if fv["mobile.tcp_s2c_data_pkts"] != 0.5 || fv["router.tcp_s2c_data_pkts"] != 0.1 {
		t.Errorf("per-VP normalization wrong: %v", fv)
	}
}

func TestConstructScalesUtilizationByDatasetMax(t *testing.T) {
	d := ml.NewDataset([]ml.Instance{
		{Features: metrics.Vector{"wlan0_nic_rx_util_avg": 0.2, "tcp_s2c_throughput_bps": 1e6}, Class: "x"},
		{Features: metrics.Vector{"wlan0_nic_rx_util_avg": 0.4, "tcp_s2c_throughput_bps": 4e6}, Class: "y"},
	})
	out, _ := Construct(d)
	if got := out.Instances[1].Features["wlan0_nic_rx_util_avg"]; got != 1.0 {
		t.Errorf("max util scaled to %v, want 1", got)
	}
	if got := out.Instances[0].Features["tcp_s2c_throughput_bps"]; got != 0.25 {
		t.Errorf("throughput scaled to %v, want 0.25", got)
	}
}

func TestConstructKeepsOnlyAvgRSSI(t *testing.T) {
	d := ml.NewDataset([]ml.Instance{
		{Features: metrics.Vector{
			"wlan0_nic_rssi_dbm_avg": -60, "wlan0_nic_rssi_dbm_min": -80,
			"wlan0_nic_rssi_dbm_max": -50, "wlan0_nic_rssi_dbm_std": 4,
			"wlan0_nic_rssi_dbm_cnt": 30,
		}, Class: "x"},
	})
	out, _ := Construct(d)
	fv := out.Instances[0].Features
	if _, ok := fv["wlan0_nic_rssi_dbm_avg"]; !ok {
		t.Error("average RSSI dropped")
	}
	for _, gone := range []string{"wlan0_nic_rssi_dbm_min", "wlan0_nic_rssi_dbm_max", "wlan0_nic_rssi_dbm_std", "wlan0_nic_rssi_dbm_cnt"} {
		if _, ok := fv[gone]; ok {
			t.Errorf("%s should be dropped by construction", gone)
		}
	}
}

func TestNormalizerReuseNoLeak(t *testing.T) {
	train := ml.NewDataset([]ml.Instance{
		{Features: metrics.Vector{"tcp_s2c_throughput_bps": 2e6}, Class: "x"},
	})
	_, norm := Construct(train)
	test := ml.NewDataset([]ml.Instance{
		{Features: metrics.Vector{"tcp_s2c_throughput_bps": 4e6}, Class: "x"},
	})
	out := norm.Apply(test)
	// Scaled by the TRAINING max (2e6), not its own: 4e6/2e6 = 2.
	if got := out.Instances[0].Features["tcp_s2c_throughput_bps"]; got != 2 {
		t.Errorf("test-set scaling used wrong divisor: %v", got)
	}
}

func TestDiscretizeEqualFrequency(t *testing.T) {
	col := make([]float64, 100)
	for i := range col {
		col[i] = float64(i)
	}
	bins := discretize(col)
	counts := map[int]int{}
	for _, b := range bins {
		counts[b]++
	}
	for b, c := range counts {
		if c != 10 {
			t.Errorf("bin %d has %d values, want 10", b, c)
		}
	}
}

func TestDiscretizeMissing(t *testing.T) {
	col := []float64{1, ml.Missing, 3}
	bins := discretize(col)
	if bins[1] != missingBin {
		t.Errorf("missing value binned to %d", bins[1])
	}
}

func TestFCBFFindsInformativeFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ins []ml.Instance
	for i := 0; i < 400; i++ {
		cls := "a"
		sig := rng.NormFloat64()
		if i%2 == 0 {
			cls = "b"
			sig += 6
		}
		ins = append(ins, ml.Instance{Features: metrics.Vector{
			"signal": sig,
			"noise1": rng.Float64(),
			"noise2": rng.Float64(),
		}, Class: cls})
	}
	sel := FCBF(ml.NewDataset(ins), 0.05)
	if len(sel) == 0 || sel[0].Feature != "signal" {
		t.Fatalf("FCBF selection = %+v, want signal on top", sel)
	}
	for _, s := range sel {
		if s.Feature != "signal" && s.SU > sel[0].SU/2 {
			t.Errorf("noise feature %s kept with high SU %.3f", s.Feature, s.SU)
		}
	}
}

func TestFCBFRemovesRedundantCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ins []ml.Instance
	for i := 0; i < 400; i++ {
		cls := "a"
		sig := rng.NormFloat64()
		if i%2 == 0 {
			cls = "b"
			sig += 6
		}
		ins = append(ins, ml.Instance{Features: metrics.Vector{
			"signal": sig,
			"copy":   sig * 2.5, // perfectly redundant
			"indep":  rng.NormFloat64() + boolTo(cls == "b")*3,
		}, Class: cls})
	}
	sel := FCBF(ml.NewDataset(ins), 0.05)
	names := Names(sel)
	hasSignal, hasCopy := false, false
	for _, n := range names {
		if n == "signal" {
			hasSignal = true
		}
		if n == "copy" {
			hasCopy = true
		}
	}
	if hasSignal && hasCopy {
		t.Errorf("FCBF kept both a feature and its scaled copy: %v", names)
	}
	if !hasSignal && !hasCopy {
		t.Error("FCBF dropped the informative feature entirely")
	}
}

func TestFCBFReducesFeatureSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ins []ml.Instance
	for i := 0; i < 300; i++ {
		cls := "a"
		sig := rng.NormFloat64()
		if i%2 == 0 {
			cls = "b"
			sig += 5
		}
		fv := metrics.Vector{"signal": sig}
		for f := 0; f < 40; f++ {
			fv[fname(f)] = rng.Float64()
		}
		ins = append(ins, ml.Instance{Features: fv, Class: cls})
	}
	sel := FCBF(ml.NewDataset(ins), 0.05)
	if len(sel) > 10 {
		t.Errorf("FCBF kept %d of 41 features; expected strong reduction", len(sel))
	}
}

func TestSelectPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ins []ml.Instance
	for i := 0; i < 200; i++ {
		cls := "good"
		rtt := 20 + rng.NormFloat64()*3
		if i%3 == 0 {
			cls = "bad"
			rtt = 200 + rng.NormFloat64()*30
		}
		ins = append(ins, ml.Instance{Features: metrics.Vector{
			"tcp_s2c_rtt_ms_avg": rtt,
			"tcp_s2c_data_pkts":  float64(100 + rng.Intn(50)),
			"tcp_total_pkts":     float64(200 + rng.Intn(50)),
			"noise":              rng.Float64(),
		}, Class: cls})
	}
	ds, scores, norm := Select(ml.NewDataset(ins), 0.05)
	if norm == nil || len(scores) == 0 {
		t.Fatal("pipeline returned nothing")
	}
	if scores[0].Feature != "tcp_s2c_rtt_ms_avg" {
		t.Errorf("top selected feature = %s, want the RTT", scores[0].Feature)
	}
	if len(ds.Features()) != len(scores) {
		t.Errorf("projected dataset has %d features, ranking has %d", len(ds.Features()), len(scores))
	}
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func fname(i int) string {
	return "junk_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

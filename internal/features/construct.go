// Package features implements the paper's two pre-learning steps
// (Section 3.2): Feature Construction — normalizations that make the
// model agnostic to video type, delivery mechanism and link technology —
// and Feature Selection with the Fast Correlation-Based Filter (FCBF).
package features

import (
	"math"
	"strings"

	"vqprobe/internal/metrics"
	"vqprobe/internal/ml"
)

// Per-direction count features normalized by the session's total packet
// count (same vantage point), exactly the paper's list: data packets,
// retransmitted packets, out-of-order packets, and friends.
var pktNormalized = []string{
	"data_pkts", "retrans_pkts", "ooo_pkts", "pure_acks", "dup_acks",
	"push_pkts", "zero_wnd_pkts", "pkts",
}

// Per-direction byte features normalized by the session's total bytes.
var byteNormalized = []string{"data_bytes", "retrans_bytes", "bytes"}

// Per-direction time features normalized by the flow duration.
var timeNormalized = []string{"first_pkt_s", "last_pkt_s", "first_data_s"}

// Construct applies feature construction to a dataset and returns the
// engineered dataset:
//
//   - packet and byte counts become fractions of the session's totals;
//   - per-flow timings become fractions of the flow duration;
//   - throughput and NIC utilization are rescaled by the maximum value
//     observed for that feature across the dataset (the paper's
//     "utilization relative to the maximum transfer rate observed for
//     this NIC"), so they land in [0,1] regardless of technology;
//   - of the RSSI aggregates only the average is kept (the paper found
//     min/max less predictive).
//
// The dataset-level maxima make this a two-pass transform; apply it to
// the training set and reuse the returned Normalizer for evaluation
// data so no test-set information leaks into training.
func Construct(d *ml.Dataset) (*ml.Dataset, *Normalizer) {
	n := NewNormalizer(d)
	return n.Apply(d), n
}

// Normalizer holds the dataset-level scale factors of feature
// construction.
type Normalizer struct {
	// maxScale maps feature name -> dataset max used as divisor.
	maxScale map[string]float64
}

// NewNormalizer computes the dataset-level maxima from d.
func NewNormalizer(d *ml.Dataset) *Normalizer {
	n := &Normalizer{maxScale: map[string]float64{}}
	for _, f := range d.Features() {
		if !isScaledByMax(f) {
			continue
		}
		max := 0.0
		for _, in := range d.Instances {
			// Skip non-finite samples: one +Inf reading would become the
			// divisor for the whole feature, collapsing every finite value
			// to 0 and turning the Inf sample itself into NaN (Inf/Inf).
			if v, ok := in.Features[f]; ok && !math.IsInf(v, 0) && v > max {
				max = v
			}
		}
		if max > 0 {
			n.maxScale[f] = max
		}
	}
	return n
}

// isScaledByMax selects throughput- and utilization-like features.
func isScaledByMax(f string) bool {
	return strings.Contains(f, "throughput_bps") || strings.Contains(f, "nic_rx_util") ||
		strings.Contains(f, "nic_tx_util")
}

// droppedRSSI reports RSSI aggregates other than the average.
func droppedRSSI(f string) bool {
	if !strings.Contains(f, "nic_rssi_dbm") {
		return false
	}
	return !strings.HasSuffix(f, "_avg")
}

// vpPrefix returns the vantage-point prefix of a combined feature name
// ("mobile.tcp_x" -> "mobile."), or "" for unprefixed records.
func vpPrefix(f string) string {
	if i := strings.Index(f, "."); i >= 0 {
		return f[:i+1]
	}
	return ""
}

// Apply transforms one dataset with the normalizer's factors.
func (n *Normalizer) Apply(d *ml.Dataset) *ml.Dataset {
	out := make([]ml.Instance, d.Len())
	for i, in := range d.Instances {
		out[i] = ml.Instance{Features: n.ApplyVector(in.Features), Class: in.Class}
	}
	return ml.NewDataset(out)
}

// ApplyVector transforms a single raw feature vector with the
// normalizer's factors — the streaming counterpart of Apply used by the
// online serving engine, which never materializes a dataset.
func (n *Normalizer) ApplyVector(in metrics.Vector) metrics.Vector {
	fv := make(metrics.Vector, len(in))
	for f, v := range in {
		switch {
		case droppedRSSI(f):
			continue
		case n.maxScale[f] > 0:
			fv[f] = v / n.maxScale[f]
		default:
			fv[f] = v
		}
	}
	// Count/byte/time normalizations are per-instance and per-VP.
	for f := range fv {
		pfx := vpPrefix(f)
		base := strings.TrimPrefix(f, pfx)
		for _, dir := range []string{"tcp_c2s_", "tcp_s2c_"} {
			if !strings.HasPrefix(base, dir) {
				continue
			}
			suffix := strings.TrimPrefix(base, dir)
			switch {
			case contains(pktNormalized, suffix):
				if tot := fv[pfx+"tcp_total_pkts"]; tot > 0 {
					fv[f] = fv[f] / tot
				}
			case contains(byteNormalized, suffix):
				if tot := fv[pfx+"tcp_total_bytes"]; tot > 0 {
					fv[f] = fv[f] / tot
				}
			case contains(timeNormalized, suffix):
				if dur := fv[pfx+"tcp_duration_s"]; dur > 0 {
					fv[f] = fv[f] / dur
				}
			}
		}
	}
	return fv
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Scales exposes the dataset-level divisors for serialization.
func (n *Normalizer) Scales() map[string]float64 { return n.maxScale }

// FeaturePlan describes how ApplyVector transforms one feature: drop
// it, divide by a dataset-level scale, and/or divide by a per-instance
// divisor feature. The serving engine precomputes one plan per model
// feature so the hot path never scans the full raw vector.
type FeaturePlan struct {
	// Dropped features are removed by construction (non-avg RSSI).
	Dropped bool
	// Scale is the dataset-level max divisor, or 0 for none.
	Scale float64
	// Divisor names the per-instance divisor feature ("" for none);
	// division only applies when the raw divisor value is positive.
	Divisor string
}

// Plan returns the construction plan for one feature, exactly matching
// what ApplyVector does to it.
func (n *Normalizer) Plan(f string) FeaturePlan {
	p := FeaturePlan{Dropped: droppedRSSI(f), Scale: n.maxScale[f]}
	pfx := vpPrefix(f)
	base := strings.TrimPrefix(f, pfx)
	for _, dir := range []string{"tcp_c2s_", "tcp_s2c_"} {
		if !strings.HasPrefix(base, dir) {
			continue
		}
		suffix := strings.TrimPrefix(base, dir)
		switch {
		case contains(pktNormalized, suffix):
			p.Divisor = pfx + "tcp_total_pkts"
		case contains(byteNormalized, suffix):
			p.Divisor = pfx + "tcp_total_bytes"
		case contains(timeNormalized, suffix):
			p.Divisor = pfx + "tcp_duration_s"
		}
	}
	return p
}

// NormalizerFromScales rebuilds a normalizer from serialized divisors.
func NormalizerFromScales(scales map[string]float64) *Normalizer {
	if scales == nil {
		scales = map[string]float64{}
	}
	return &Normalizer{maxScale: scales}
}

package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vqprobe/internal/lint"
)

func TestConfigEnabledIn(t *testing.T) {
	cfg := &lint.Config{
		Exclude: []string{"floatfmt"},
		DirExclude: map[string][]string{
			"cmd":            {"virtclock"},
			"internal/serve": {"all"},
		},
	}
	cases := []struct {
		check, dir string
		want       bool
	}{
		{"virtclock", "internal/simnet", true},
		{"virtclock", "cmd", false},
		{"virtclock", "cmd/vqsim", false},           // subtree inherits
		{"virtclock", "cmdx", true},                 // prefix must be a path boundary
		{"maporder", "cmd/vqsim", true},             // only the named check is relaxed
		{"maporder", "internal/serve", false},       // "all" disables everything
		{"floatfmt", "internal/experiments", false}, // global exclude
	}
	for _, c := range cases {
		if got := cfg.EnabledIn(c.check, c.dir); got != c.want {
			t.Errorf("EnabledIn(%s, %s) = %v, want %v", c.check, c.dir, got, c.want)
		}
	}
}

func TestConfigChecksRestriction(t *testing.T) {
	cfg := &lint.Config{Checks: []string{"virtclock"}}
	if !cfg.Enabled("virtclock") {
		t.Error("selected check disabled")
	}
	if cfg.Enabled("maporder") {
		t.Error("-checks virtclock must disable other analyzers")
	}
	if !cfg.Enabled(lint.DirectiveCheckName) {
		t.Error("directive meta-check must survive -checks restriction")
	}
}

func TestConfigValidateRejectsUnknownNames(t *testing.T) {
	cfg := &lint.Config{DirExclude: map[string][]string{"cmd": {"virtclocc"}}}
	err := cfg.Validate(lint.ByName())
	if err == nil || !strings.Contains(err.Error(), "virtclocc") {
		t.Fatalf("want unknown-name error mentioning virtclocc, got %v", err)
	}
}

func TestLoadConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, lint.ConfigFileName)

	if cfg, err := lint.LoadConfigFile(path); err != nil || len(cfg.DirExclude) != 0 {
		t.Fatalf("missing config file must yield empty config, got %+v, %v", cfg, err)
	}

	if err := os.WriteFile(path, []byte(`{"dirExclude":{"cmd":["virtclock"]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := lint.LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.EnabledIn("virtclock", "internal/simnet") || cfg.EnabledIn("virtclock", "cmd/vqsim") {
		t.Errorf("parsed config not applied: %+v", cfg)
	}

	if err := os.WriteFile(path, []byte(`{"dirExcludeTypo":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.LoadConfigFile(path); err == nil {
		t.Error("unknown config fields must be rejected, not silently ignored")
	}
}

func TestSplitList(t *testing.T) {
	got := lint.SplitList(" virtclock, detrand ,,maporder ")
	want := []string{"virtclock", "detrand", "maporder"}
	if len(got) != len(want) {
		t.Fatalf("SplitList = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitList = %v, want %v", got, want)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"text", "json", "github"} {
		if _, err := lint.ParseFormat(ok); err != nil {
			t.Errorf("ParseFormat(%s): %v", ok, err)
		}
	}
	if _, err := lint.ParseFormat("xml"); err == nil {
		t.Error("ParseFormat(xml) must fail")
	}
}

func sampleDiags() []lint.Diagnostic {
	return []lint.Diagnostic{
		{
			Check:    "virtclock",
			Severity: lint.SeverityError,
			Pos:      token.Position{Filename: "/mod/internal/simnet/sim.go", Line: 12, Column: 3},
			Message:  "time.Now would read the wall clock",
			Fix:      "thread the event clock",
		},
		{
			Check:          "virtclock",
			Severity:       lint.SeverityError,
			Pos:            token.Position{Filename: "/mod/internal/serve/pool.go", Line: 76, Column: 15},
			Message:        "time.Now would read the wall clock",
			Suppressed:     true,
			SuppressReason: "real request latency",
		},
	}
}

func TestWriteDiagnosticsText(t *testing.T) {
	var sb strings.Builder
	if err := lint.WriteDiagnostics(&sb, sampleDiags(), lint.FormatText, "/mod"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "internal/simnet/sim.go:12:3: virtclock: time.Now would read the wall clock") {
		t.Errorf("text output missing finding line:\n%s", out)
	}
	if !strings.Contains(out, "suggested: thread the event clock") {
		t.Errorf("text output missing fix line:\n%s", out)
	}
	if strings.Contains(out, "pool.go") {
		t.Errorf("text output must hide suppressed findings:\n%s", out)
	}
}

func TestWriteDiagnosticsJSON(t *testing.T) {
	var sb strings.Builder
	if err := lint.WriteDiagnostics(&sb, sampleDiags(), lint.FormatJSON, "/mod"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`"check": "virtclock"`,
		`"file": "internal/simnet/sim.go"`,
		`"severity": "error"`,
		`"suppressed": true`,
		`"suppressReason": "real request latency"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("json output missing %s:\n%s", want, out)
		}
	}
}

func TestWriteDiagnosticsGitHub(t *testing.T) {
	var sb strings.Builder
	if err := lint.WriteDiagnostics(&sb, sampleDiags(), lint.FormatGitHub, "/mod"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "::error file=internal/simnet/sim.go,line=12,col=3,title=vqlint virtclock::") {
		t.Errorf("github output malformed:\n%s", out)
	}
	if strings.Contains(out, "pool.go") {
		t.Errorf("github output must hide suppressed findings:\n%s", out)
	}
}

func TestUnsuppressed(t *testing.T) {
	if n := lint.Unsuppressed(sampleDiags()); n != 1 {
		t.Errorf("Unsuppressed = %d, want 1", n)
	}
}

func TestModuleRootAndPackageWalk(t *testing.T) {
	wd, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := lint.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	if modPath != "vqprobe" {
		t.Errorf("module path = %s, want vqprobe", modPath)
	}
	dirs, err := lint.ListPackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range dirs {
		seen[d] = true
		if strings.Contains(d, "testdata") {
			t.Errorf("testdata directory %s must not be walked", d)
		}
	}
	for _, want := range []string{"", "internal/lint", "internal/simnet", "cmd/vqlint"} {
		if !seen[want] {
			t.Errorf("package walk missed %q (got %d dirs)", want, len(dirs))
		}
	}
}

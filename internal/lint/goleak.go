package lint

import (
	"go/ast"
	"go/types"

	"vqprobe/internal/lint/cfg"
)

// AnalyzerGoLeak reports goroutines with no termination edge: the
// spawned function's CFG contains a loop from which no path reaches a
// normal return — no ctx.Done select arm, no channel-close exit, no
// break, no done flag. Such a goroutine outlives every request and
// every test; in a long-lived probe process they accumulate until the
// scheduler and the heap tell the story. A `for { select { case
// <-ctx.Done(): return ... } }` worker is clean because the Done arm
// reaches return; a bare `for { work() }` is the finding.
//
// The analysis covers function literals launched inline and named
// functions defined in the same package. Intentional run-forever
// daemons suppress with //lint:ignore goleak <reason>.
var AnalyzerGoLeak = &Analyzer{
	Name:     "goleak",
	Severity: SeverityWarn,
	Doc: "Reports go statements whose goroutine can never terminate: the body's " +
		"control-flow graph has a cycle that cannot reach a return (no ctx/done/" +
		"channel-close edge). Covers literals and same-package named functions.",
	Run: runGoLeak,
}

func runGoLeak(p *Pass) {
	decls := packageFuncDecls(p)
	for _, fi := range p.Functions() {
		inspectSkipFuncLits(fi.Body, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, name := goroutineBody(p, decls, g.Call)
			if body == nil {
				return true
			}
			graph := cfg.New(body, cfg.Options{IsTerminal: p.isTerminalCall})
			if hasTrappedCycle(graph) {
				p.Report(g.Pos(),
					"goroutine "+name+"never terminates: it loops with no path to return "+
						"(no ctx.Done/channel-close/break edge)",
					"give the loop a termination edge (select on ctx.Done() or a done channel, "+
						"or range over a closable channel); if it must run for the process lifetime, "+
						"suppress with //lint:ignore goleak <reason>")
			}
			return true
		})
	}
}

// packageFuncDecls indexes this package's function declarations by
// their object, so `go s.loop()` can be followed to loop's body.
func packageFuncDecls(p *Pass) map[types.Object]*ast.FuncDecl {
	decls := map[types.Object]*ast.FuncDecl{}
	if p.Info == nil {
		return decls
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj := p.Info.Defs[fn.Name]; obj != nil {
					decls[obj] = fn
				}
			}
		}
	}
	return decls
}

// goroutineBody resolves the body of the function a go statement
// launches: an inline literal, or a named function/method declared in
// this package. Cross-package and dynamic callees return nil (unseen
// code is not accused).
func goroutineBody(p *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) (*ast.BlockStmt, string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, ""
	case *ast.Ident:
		if p.Info != nil {
			if decl, ok := decls[p.Info.Uses[fun]]; ok {
				return decl.Body, decl.Name.Name + " "
			}
		}
	case *ast.SelectorExpr:
		if p.Info != nil {
			if decl, ok := decls[p.Info.Uses[fun.Sel]]; ok {
				return decl.Body, decl.Name.Name + " "
			}
		}
	}
	return nil, ""
}

// hasTrappedCycle reports whether the graph contains a block that is
// reachable from Entry, sits on a cycle, and cannot reach Exit: once
// control enters that cycle the function never returns. Straight-line
// bodies that end in panic or block forever on an empty select are not
// cycles and are not reported (they are bugs of a different shape).
func hasTrappedCycle(g *cfg.Graph) bool {
	reach := reachableFrom(g.Entry)
	exits := canReachExit(g)
	for blk := range reach {
		if exits[blk] {
			continue
		}
		if onCycle(blk) {
			return true
		}
	}
	return false
}

func reachableFrom(entry *cfg.Block) map[*cfg.Block]bool {
	seen := map[*cfg.Block]bool{entry: true}
	stack := []*cfg.Block{entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// canReachExit computes the blocks from which Exit is reachable, by
// reverse BFS over predecessor edges.
func canReachExit(g *cfg.Graph) map[*cfg.Block]bool {
	can := map[*cfg.Block]bool{g.Exit: true}
	for changed := true; changed; {
		changed = false
		for _, blk := range g.Blocks {
			if can[blk] {
				continue
			}
			for _, s := range blk.Succs {
				if can[s] {
					can[blk] = true
					changed = true
					break
				}
			}
		}
	}
	return can
}

// onCycle reports whether blk can reach itself through one or more
// edges.
func onCycle(blk *cfg.Block) bool {
	seen := map[*cfg.Block]bool{}
	stack := append([]*cfg.Block(nil), blk.Succs...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == blk {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = append(stack, cur.Succs...)
	}
	return false
}

// Package floatfmt is golden-file input for the floatfmt analyzer: %v
// applied to floats in fmt formatting calls is flagged; explicit
// precision verbs, non-floats, and precision-carrying %v are not.
package floatfmt

import (
	"fmt"
	"io"
)

func reportRow(name string, acc float64) string {
	return fmt.Sprintf("%s accuracy=%v", name, acc) // want "float formatted with %v in fmt.Sprintf"
}

func printRow(acc float64) {
	fmt.Printf("acc=%v\n", acc) // want "float formatted with %v in fmt.Printf"
}

func writeRow(w io.Writer, acc float32) {
	fmt.Fprintf(w, "acc=%v\n", acc) // want "float formatted with %v in fmt.Fprintf"
}

func starWidth(acc float64) string {
	return fmt.Sprintf("%*d %v", 8, 42, acc) // want "float formatted with %v in fmt.Sprintf"
}

// explicitPrecision is the sanctioned form — near miss, stays silent.
func explicitPrecision(acc float64) string {
	return fmt.Sprintf("accuracy=%.3f stall=%.6g", acc, acc*2)
}

// precisionV carries an explicit precision through %v — silent: the
// width is pinned, which is all the check demands.
func precisionV(acc float64) string {
	return fmt.Sprintf("%.4v", acc)
}

// intV formats a non-float with %v — near miss, stays silent.
func intV(n int, label string) string {
	return fmt.Sprintf("%v=%v", label, n)
}

func ignoredV(acc float64) string {
	//lint:ignore floatfmt debug string, never written to a report or CSV
	return fmt.Sprintf("%v", acc)
}

// Package virtclock is golden-file input for the virtclock analyzer:
// wall-clock reads/waits are flagged; virtual-clock arithmetic and
// clock-free uses of package time are not.
package virtclock

import "time"

// Sim mimics the discrete-event clock: a plain counter, no wall time.
type Sim struct{ now time.Duration }

// Now is the virtual clock read — allowed.
func (s *Sim) Now() time.Duration { return s.now }

func simulateStep(s *Sim) time.Duration {
	start := s.Now() // near miss: a method named Now on the event clock is fine
	s.now += 5 * time.Millisecond
	return s.Now() - start
}

func leakWallClock(s *Sim) time.Duration {
	start := time.Now()               // want "time.Now would read the wall clock"
	time.Sleep(time.Millisecond)      // want "time.Sleep would wait on the wall clock"
	_ = time.Since(start)             // want "time.Since would read the wall clock"
	<-time.After(time.Millisecond)    // want "time.After would wait on the wall clock"
	tk := time.NewTicker(time.Second) // want "time.NewTicker would wait on the wall clock"
	tk.Stop()
	return s.Now()
}

func ignoredWallClock() time.Duration {
	//lint:ignore virtclock this path measures real host latency by design
	t0 := time.Now()
	return time.Since(t0) //lint:ignore virtclock same-line suppression form, also by design
}

// durationMath only uses time for arithmetic and construction — the
// near-miss set that must stay silent.
func durationMath(d time.Duration) time.Duration {
	deadline := d + 3*time.Second
	epoch := time.Unix(0, 0)
	_ = epoch
	return deadline.Round(time.Millisecond)
}

// Package directive is golden-file input for the directive meta-check:
// malformed //lint:ignore comments are diagnostics in their own right.
// Expectations use the want+1 offset form because a want comment cannot
// share a line with the directive it describes (it would parse as the
// directive's reason).
package directive

import "strings"

// want+1 "has no reason"
//lint:ignore maporder

// want+1 "missing check name and reason"
//lint:ignore

// want+1 "may not suppress all"
//lint:ignore all the whole file is special

// want+1 "names unknown check nosuchcheck"
//lint:ignore nosuchcheck the check was renamed and this comment rotted

// want+1 "may not suppress directive"
//lint:ignore directive silencing the auditor

// validDirective shows a well-formed suppression — near miss, silent.
func validDirective(m map[string]int) []string {
	var keys []string
	//lint:ignore maporder feeds a set; order never reaches output
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// plainComment mentions lint:ignore mid-sentence — near miss, silent:
// only comments starting with the directive prefix are parsed.
func plainComment() string {
	// The string "lint:ignore" below is data, not a directive.
	return strings.ToUpper("lint:ignore nothing")
}

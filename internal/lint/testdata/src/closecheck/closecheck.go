// Package closecheck is golden-file input for the closecheck analyzer:
// discarded Close/Flush errors on writers are flagged; checked calls,
// error-free signatures, and non-writers are not.
package closecheck

import (
	"bufio"
	"io"
	"os"
)

func uncheckedClose(f *os.File) {
	f.Close() // want "Close on a writer discards its error"
}

func uncheckedFlush(w *bufio.Writer) {
	w.Flush() // want "Flush on a writer discards its error"
}

func deferredFlush(w *bufio.Writer) {
	defer w.Flush() // want "deferred Flush discards its error"
	w.WriteString("row")
}

// checkedClose propagates the error — stays silent.
func checkedClose(f *os.File) error {
	return f.Close()
}

// checkedFlush handles the error — stays silent.
func checkedFlush(w *bufio.Writer) error {
	if err := w.Flush(); err != nil {
		return err
	}
	return nil
}

// deferredClose is idiomatic cleanup after an explicit checked flush —
// near miss, stays silent by design.
func deferredClose(f *os.File) {
	defer f.Close()
}

// readerClose closes something with no Write method — near miss, stays
// silent: a reader's Close rarely has anything to report.
func readerClose(r io.ReadCloser) {
	r.Close()
}

// voidFlush has no error result (csv.Writer's shape) — near miss,
// stays silent: there is nothing to check.
type voidFlusher struct{}

func (voidFlusher) Write(p []byte) (int, error) { return len(p), nil }
func (voidFlusher) Flush()                      {}

func flushVoid(v voidFlusher) {
	v.Flush()
}

// readOnlyOpen closes a file obtained from os.Open — near miss, stays
// silent: a read-only file has no buffered writes to lose.
func readOnlyOpen(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	f.Close()
	return buf[:n], err
}

func ignoredClose(f *os.File) {
	//lint:ignore closecheck exiting the process right after; nothing to do with the error
	f.Close()
}

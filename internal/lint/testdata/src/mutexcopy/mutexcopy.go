// Package mutexcopy is golden-file input for the mutexcopy analyzer:
// signatures moving sync state by value are flagged; pointer plumbing
// and lock-free values are not.
package mutexcopy

import (
	"sync"
	"sync/atomic"
)

// Counter embeds a mutex directly.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Registry nests the lock two levels deep.
type Registry struct {
	inner Counter
	name  string
}

// Stats carries only a reference to sync state — copying it is fine.
type Stats struct {
	c *Counter
	n int
}

func passByValue(c Counter) int { // want "parameter of type Counter copies a sync primitive"
	return c.n
}

func returnByValue() Counter { // want "result of type Counter copies a sync primitive"
	return Counter{}
}

func (c Counter) valueReceiver() int { // want "value receiver of type Counter copies a sync primitive"
	return c.n
}

func nestedByValue(r Registry) string { // want "parameter of type Registry copies a sync primitive"
	return r.name
}

func atomicByValue(v atomic.Int64) int64 { // want "parameter of type atomic.Int64 copies a sync primitive"
	return v.Load()
}

// pointerPlumbing is the sanctioned shape — near miss, stays silent.
func pointerPlumbing(c *Counter, r *Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r.inner.n++
}

// referenceCopy copies only a pointer to the lock — stays silent.
func referenceCopy(s Stats) int {
	return s.n
}

// lockerParam takes the interface — stays silent: interfaces hold a
// reference, nothing is copied.
func lockerParam(l sync.Locker) {
	l.Lock()
	l.Unlock()
}

//lint:ignore mutexcopy snapshot type: the copy is intentional and never locked again
func snapshotByValue(c Counter) int {
	return c.n
}

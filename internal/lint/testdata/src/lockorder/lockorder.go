// Package lockorder is golden-file input for the lockorder analyzer:
// pairwise mutex acquisition order must be consistent package-wide.
package lockorder

import "sync"

type server struct {
	mu      sync.Mutex
	statsMu sync.Mutex
}

// abOrder and baOrder disagree: two goroutines running them can each
// hold one mutex and wait on the other forever.
func (s *server) abOrder() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.statsMu.Lock() // want "server.statsMu acquired while holding .*server.mu"
	defer s.statsMu.Unlock()
}

func (s *server) baOrder() {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	s.mu.Lock() // want "server.mu acquired while holding .*server.statsMu"
	defer s.mu.Unlock()
}

type queue struct {
	head sync.Mutex
	tail sync.Mutex
}

// consistent order everywhere — stays silent.
func (q *queue) push() {
	q.head.Lock()
	q.tail.Lock()
	q.tail.Unlock()
	q.head.Unlock()
}

func (q *queue) pop() {
	q.head.Lock()
	defer q.head.Unlock()
	q.tail.Lock()
	defer q.tail.Unlock()
}

var muA, muB sync.Mutex

func globalAB() {
	muA.Lock()
	muB.Lock() // want "muB acquired while holding muA"
	muB.Unlock()
	muA.Unlock()
}

func globalBA() {
	muB.Lock()
	muA.Lock() // want "muA acquired while holding muB"
	muA.Unlock()
	muB.Unlock()
}

// sequential stays silent: the first mutex is released before the
// second is taken, so no ordering pair exists.
func sequential() {
	muA.Lock()
	muA.Unlock()
	muB.Lock()
	muB.Unlock()
}

type cache struct {
	rw sync.RWMutex
	m  sync.Mutex
}

// rwConsistent stays silent: RLock participates in ordering but both
// functions agree on rw-then-m.
func (c *cache) read() {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.m.Lock()
	defer c.m.Unlock()
}

func (c *cache) write() {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.m.Lock()
	defer c.m.Unlock()
}

// Package goleak is golden-file input for the goleak analyzer:
// goroutines whose control flow can never reach a return.
package goleak

import (
	"context"
	"sync"
)

func work() {}

func leakyLiteral() {
	go func() { // want "goroutine never terminates"
		for {
			work()
		}
	}()
}

func spin() {
	for {
		work()
	}
}

func leakyNamed() {
	go spin() // want "goroutine spin never terminates"
}

// ctxBound stays silent: the Done arm reaches return.
func ctxBound(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// doneChannel stays silent: the done arm breaks the loop.
func doneChannel(done chan struct{}, jobs chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// rangeOverChannel stays silent: closing jobs ends the range loop.
func rangeOverChannel(jobs chan int) {
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
}

// wgWorker stays silent: range exit reaches the deferred Done and
// return.
func wgWorker(wg *sync.WaitGroup, jobs chan int) {
	go func() {
		defer wg.Done()
		for j := range jobs {
			_ = j
		}
	}()
}

// boundedLoop stays silent: the break edge escapes the cycle.
func boundedLoop(n int) {
	go func() {
		i := 0
		for {
			if i >= n {
				break
			}
			i++
		}
	}()
}

// oneShot stays silent: straight-line body returns.
func oneShot(ch chan int) {
	go func() {
		ch <- 1
	}()
}

// crossPackageUnseen stays silent: the callee's body is not visible,
// and unseen code is not accused.
func crossPackageUnseen(ctx context.Context) {
	go context.AfterFunc(ctx, work)
}

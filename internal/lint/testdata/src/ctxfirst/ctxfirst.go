// Package ctxfirst is golden-file input for the ctxfirst analyzer:
// misplaced context.Context parameters and context struct fields are
// flagged; ctx-first signatures and request-scoped plumbing are not.
package ctxfirst

import "context"

func ctxSecond(name string, ctx context.Context) error { // want "context.Context parameter is not first"
	return ctx.Err()
}

func ctxLast(a, b int, ctx context.Context) int { // want "context.Context parameter is not first"
	_ = ctx
	return a + b
}

type request struct {
	ctx  context.Context // want "context.Context stored in a struct field"
	body []byte
}

// ctxFirst is the sanctioned shape — near miss, stays silent.
func ctxFirst(ctx context.Context, name string) error {
	return ctx.Err()
}

// noCtx has no context at all — stays silent.
func noCtx(a, b int) int { return a + b }

// methodCtxFirst: the receiver does not count as a parameter.
type server struct{ addr string }

func (s *server) handle(ctx context.Context, path string) error {
	_ = s.addr
	return ctx.Err()
}

func literalCtxSecond() func(int, context.Context) {
	return func(n int, ctx context.Context) { // want "context.Context parameter is not first"
		_ = n
	}
}

func useRequest(r request) int { return len(r.body) }

func ignoredField() {
	type job struct {
		//lint:ignore ctxfirst detached background job carries its own lifecycle ctx
		ctx context.Context
	}
	var j job
	_ = j.ctx
}

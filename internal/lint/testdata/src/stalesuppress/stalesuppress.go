// Package stalesuppress is golden-file input for the stalesuppress
// meta-check. Unlike the other goldens this package runs under the FULL
// analyzer set: staleness is only judged for directives whose named
// checks actually ran.
package stalesuppress

import "time"

// liveSuppression stays silent: the directive suppresses a real
// virtclock finding on the next line, so it is used.
func liveSuppression() int64 {
	//lint:ignore virtclock golden: wall time intentional, value feeds nothing deterministic
	return time.Now().Unix()
}

// want+2 "lint:ignore maporder suppresses nothing"
//
//lint:ignore maporder golden: stale — nothing below iterates a map
func nothingMapLike() int { return 1 }

// want+2 "lint:ignore virtclock,detrand suppresses nothing"
//
//lint:ignore virtclock,detrand golden: stale on both named checks
func nothingTimed() int { return 2 }

// sameLineStale is stale too: directives may sit on the offending line
// itself, and this line offends nothing.
func sameLineStale() int {
	return 3 //lint:ignore floatfmt golden: stale same-line directive // want "lint:ignore floatfmt suppresses nothing"
}

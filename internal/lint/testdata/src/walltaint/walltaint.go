// Package walltaint is golden-file input for the walltaint analyzer:
// cross-function taint from wall-clock/global-RNG sources into
// deterministic sinks. The helpers are the point — no reported line
// mentions time or rand directly, which is exactly what the call-site
// checks (virtclock, detrand) cannot see.
package walltaint

import (
	"math/rand"
	"time"
)

// stamp reads the wall clock; every transitive caller is tainted.
func stamp() int64 { return time.Now().UnixNano() }

// helperChain adds a hop so witness paths have two links.
func helperChain() int64 { return stamp() }

// jitter draws from the global RNG.
func jitter() float64 { return rand.Float64() }

// Encode is a deterministic sink: same inputs must give same bytes.
//
//lint:deterministic golden: encoded reports are diffed across runs
func Encode(vals ...int64) string { return "" }

// EncodeF is a float-accepting sink.
//
//lint:deterministic golden: float channel of the same contract
func EncodeF(v float64) string { return "" }

// record is NOT a sink — tainted values may flow here freely.
func record(v int64) {}

// Snapshot is a sink that is itself tainted: its own call tree reaches
// the wall clock.
//
//lint:deterministic golden: snapshot bytes are content-addressed
func Snapshot() int64 {
	return stamp() // want "deterministic sink walltaint.Snapshot transitively reaches time.Now"
}

// flowViaHelper: the classic miss — time.Now is two calls away.
func flowViaHelper() string {
	ts := helperChain()
	return Encode(ts) // want "wall-derived value .*helperChain -> .*stamp -> time.Now.* flows into deterministic sink walltaint.Encode"
}

// flowDirectArg: tainted call directly in the argument list.
func flowDirectArg() string {
	return Encode(stamp()) // want "wall-derived value .* flows into deterministic sink walltaint.Encode"
}

// flowRand: the RNG channel taints the float sink.
func flowRand() string {
	v := jitter()
	return EncodeF(v) // want "wall-derived value .* flows into deterministic sink walltaint.EncodeF"
}

// orderSensitive stays silent: x is only tainted AFTER the sink call.
// Flow sensitivity is the difference between this and a false positive.
func orderSensitive() string {
	var x int64
	out := Encode(x)
	x = stamp()
	record(x)
	return out
}

// loopCarried fires: the loop's back edge carries last iteration's
// taint into this iteration's sink call.
func loopCarried() {
	var acc int64
	for i := 0; i < 3; i++ {
		Encode(acc) // want "wall-derived value .* flows into deterministic sink walltaint.Encode"
		acc = stamp()
	}
}

// suppressedSource stays silent everywhere: the directive on the
// source line declares wall time intentional, which stops the taint
// before it propagates.
func suppressedSource() string {
	//lint:ignore walltaint golden: wall time shown to humans only, never encoded deterministically
	t := time.Now().Unix()
	return Encode(t)
}

// notASink stays silent: record carries no deterministic contract.
func notASink() {
	record(stamp())
}

// cleanFlow stays silent: nothing wall-derived in sight.
func cleanFlow(seed int64) string {
	return Encode(seed + 1)
}

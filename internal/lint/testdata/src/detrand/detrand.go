// Package detrand is golden-file input for the detrand analyzer:
// global math/rand draws and wall-clock seeds are flagged; seeded
// *rand.Rand instances threaded from config are not.
package detrand

import (
	"math/rand"
	"time"
)

// Config mirrors the experiment config: the seed is explicit state.
type Config struct{ Seed int64 }

func globalDraws() float64 {
	n := rand.Intn(10)                 // want "rand.Intn draws from the shared global source"
	rand.Shuffle(n, func(i, j int) {}) // want "rand.Shuffle draws from the shared global source"
	return rand.Float64()              // want "rand.Float64 draws from the shared global source"
}

func wallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the wall clock"
}

// threadedRNG is the sanctioned pattern — the near miss that must stay
// silent: the same function names (Intn, Float64, Shuffle) called as
// methods on an explicitly seeded generator.
func threadedRNG(cfg Config) float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := rng.Intn(10)
	rng.Shuffle(n, func(i, j int) {})
	return rng.Float64()
}

func ignoredGlobal() int {
	//lint:ignore detrand jitter for a log message, never observable in results
	return rand.Int()
}

// Package spanleak is golden-file input for the spanleak analyzer. It
// models the internal/trace API shape: Start* methods returning a value
// with an End method.
package spanleak

// Span mimics trace.Span: value type, End records it.
type Span struct{ id uint64 }

// End records the span.
func (s Span) End() {}

// EndDetail records the span with an annotation.
func (s Span) EndDetail(detail string) {}

// ID returns the span's identifier.
func (s Span) ID() uint64 { return s.id }

// Tracer mimics trace.Tracer.
type Tracer struct{ next uint64 }

// StartSpan opens a span.
func (t *Tracer) StartSpan(track, name string) Span {
	t.next++
	return Span{id: t.next}
}

// StartBatch is a multi-result Start* func — near miss, not a span
// constructor, stays silent.
func (t *Tracer) StartBatch(n int) ([]Span, error) { return nil, nil }

type holder struct{ span Span }

func discarded(t *Tracer) {
	t.StartSpan("sim", "step") // want "span started and immediately discarded"
}

func blanked(t *Tracer) {
	_ = t.StartSpan("sim", "step") // want "span started into the blank identifier"
}

func neverEnded(t *Tracer) uint64 {
	s := t.StartSpan("sim", "step") // want "span s is never ended and never escapes"
	return s.ID()
}

func properlyEnded(t *Tracer) {
	s := t.StartSpan("sim", "step")
	defer s.End()
}

func endedWithDetail(t *Tracer) {
	s := t.StartSpan("sim", "step")
	s.EndDetail("done")
}

// escapesToField hands the obligation to the holder — stays silent.
func escapesToField(t *Tracer, h *holder) {
	h.span = t.StartSpan("player", "session")
}

// escapesAsArg passes the span along — callee owns it; stays silent.
func escapesAsArg(t *Tracer) {
	s := t.StartSpan("player", "download")
	finishLater(s)
}

// escapesAsReturn returns the span — caller owns it; stays silent.
func escapesAsReturn(t *Tracer) Span {
	s := t.StartSpan("player", "startup")
	return s
}

func finishLater(s Span) { s.End() }

func ignoredLeak(t *Tracer) uint64 {
	//lint:ignore spanleak parent id is recorded by the child span at End
	s := t.StartSpan("sim", "root")
	return s.ID()
}

// batches uses the multi-result Start* — near miss, stays silent.
func batches(t *Tracer) int {
	spans, err := t.StartBatch(3)
	if err != nil {
		return 0
	}
	return len(spans)
}

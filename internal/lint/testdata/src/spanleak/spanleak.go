// Package spanleak is golden-file input for the spanleak analyzer. It
// models the internal/trace API shape: Start* methods returning a value
// with an End method.
package spanleak

// Span mimics trace.Span: value type, End records it.
type Span struct{ id uint64 }

// End records the span.
func (s Span) End() {}

// EndDetail records the span with an annotation.
func (s Span) EndDetail(detail string) {}

// ID returns the span's identifier.
func (s Span) ID() uint64 { return s.id }

// Tracer mimics trace.Tracer.
type Tracer struct{ next uint64 }

// StartSpan opens a span.
func (t *Tracer) StartSpan(track, name string) Span {
	t.next++
	return Span{id: t.next}
}

// StartBatch is a multi-result Start* func — near miss, not a span
// constructor, stays silent.
func (t *Tracer) StartBatch(n int) ([]Span, error) { return nil, nil }

type holder struct{ span Span }

func discarded(t *Tracer) {
	t.StartSpan("sim", "step") // want "span started and immediately discarded"
}

func blanked(t *Tracer) {
	_ = t.StartSpan("sim", "step") // want "span started into the blank identifier"
}

func neverEnded(t *Tracer) uint64 {
	s := t.StartSpan("sim", "step") // want "span s is not ended on every path"
	return s.ID()
}

func properlyEnded(t *Tracer) {
	s := t.StartSpan("sim", "step")
	defer s.End()
}

func endedWithDetail(t *Tracer) {
	s := t.StartSpan("sim", "step")
	s.EndDetail("done")
}

// escapesToField hands the obligation to the holder — stays silent.
func escapesToField(t *Tracer, h *holder) {
	h.span = t.StartSpan("player", "session")
}

// escapesAsArg passes the span along — callee owns it; stays silent.
func escapesAsArg(t *Tracer) {
	s := t.StartSpan("player", "download")
	finishLater(s)
}

// escapesAsReturn returns the span — caller owns it; stays silent.
func escapesAsReturn(t *Tracer) Span {
	s := t.StartSpan("player", "startup")
	return s
}

func finishLater(s Span) { s.End() }

func ignoredLeak(t *Tracer) uint64 {
	//lint:ignore spanleak parent id is recorded by the child span at End
	s := t.StartSpan("sim", "root")
	return s.ID()
}

// batches uses the multi-result Start* — near miss, stays silent.
func batches(t *Tracer) int {
	spans, err := t.StartBatch(3)
	if err != nil {
		return 0
	}
	return len(spans)
}

// --- v2 all-paths cases: End on one branch is not End on every path ---

// endedOnOneBranch leaks on the early-return path: v1's "End appears
// somewhere" scan missed exactly this.
func endedOnOneBranch(t *Tracer, fast bool) uint64 {
	s := t.StartSpan("sim", "step") // want "span s is not ended on every path"
	if fast {
		return s.ID() // leaves without ending
	}
	s.End()
	return 0
}

// endedOnEveryBranch discharges both paths — stays silent.
func endedOnEveryBranch(t *Tracer, fast bool) uint64 {
	s := t.StartSpan("sim", "step")
	if fast {
		s.End()
		return s.ID()
	}
	s.End()
	return 0
}

// panicPathExempt: the only undischarged path panics, and a crashing
// process owes no span — stays silent.
func panicPathExempt(t *Tracer, ok bool) {
	s := t.StartSpan("sim", "step")
	if !ok {
		panic("invariant violated")
	}
	s.End()
}

// deferInBranch covers only the paths that registered it: the early
// return before the defer leaks.
func deferInBranch(t *Tracer, skip bool) uint64 {
	s := t.StartSpan("sim", "step") // want "span s is not ended on every path"
	if skip {
		return 0
	}
	defer s.End()
	return s.ID()
}

// loopBackEdge: End only happens inside a conditional that may never
// run; the zero-iteration path leaks.
func loopBackEdge(t *Tracer, n int) {
	s := t.StartSpan("sim", "loop") // want "span s is not ended on every path"
	for i := 0; i < n; i++ {
		if i == n-1 {
			s.End()
		}
	}
}

// closureDischarge: a deferred closure ending the span discharges it —
// stays silent.
func closureDischarge(t *Tracer) {
	s := t.StartSpan("sim", "step")
	defer func() { s.End() }()
}

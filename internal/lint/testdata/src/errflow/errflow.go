// Package errflow is golden-file input for the errflow analyzer:
// module-internal calls whose error result is silently dropped.
package errflow

import (
	"errors"
	"fmt"
)

func mightFail() error { return errors.New("boom") }

func value() (int, error) { return 0, errors.New("boom") }

func pure() int { return 1 }

type store struct{}

func (s *store) Sync() error { return nil }

func dropped() {
	mightFail() // want "call to mightFail drops its error result"
}

func droppedMethod(s *store) {
	s.Sync() // want "call to Sync drops its error result"
}

func droppedGo() {
	go mightFail() // want "goroutine call to mightFail drops its error result"
}

// explicitDiscard stays silent: the blank identifier is a visible,
// reviewable decision.
func explicitDiscard() {
	_ = mightFail()
	v, _ := value()
	_ = v
}

// handled stays silent: the error is looked at.
func handled() error {
	if err := mightFail(); err != nil {
		return err
	}
	return nil
}

// deferredCleanup stays silent: defer has no error path to thread.
func deferredCleanup(s *store) {
	defer s.Sync()
}

// noErrorResult stays silent: nothing to drop.
func noErrorResult() {
	pure()
}

// stdlibExempt stays silent: fmt.Println returns an error nobody
// checks, by universal idiom.
func stdlibExempt() {
	fmt.Println("ok")
}

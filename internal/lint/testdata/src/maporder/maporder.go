// Package maporder is golden-file input for the maporder analyzer:
// map ranges feeding ordered sinks are flagged; collect-then-sort and
// pure aggregation are not.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func appendWithoutSort(m map[string]int) []string {
	var rows []string
	for k, v := range m { // want "map iteration order feeds a slice built outside the loop"
		rows = append(rows, fmt.Sprintf("%s=%d", k, v))
	}
	return rows
}

func printDirectly(m map[string]int) {
	for k, v := range m { // want "map iteration order feeds fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func writeDirectly(m map[string]int, sb *strings.Builder) {
	for k := range m { // want "map iteration order feeds a WriteString sink"
		sb.WriteString(k)
	}
}

// collectThenSort is the sanctioned idiom — near miss, stays silent.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]string, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return rows
}

// sortSliceLater uses sort.Slice with a comparator — also sanctioned.
func sortSliceLater(m map[string]float64) []float64 {
	vals := make([]float64, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// aggregate only folds values — order-insensitive, stays silent.
func aggregate(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// localScratch appends to a slice born inside the loop body — it dies
// each iteration, so order cannot leak; stays silent.
func localScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		pair := make([]int, 0, 2)
		pair = append(pair, vs...)
		total += len(pair)
	}
	return total
}

func ignoredRange(m map[string]int) []string {
	var rows []string
	//lint:ignore maporder consumer builds a set; order never reaches output
	for k := range m {
		rows = append(rows, k)
	}
	return rows
}

package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxFirst is the API-hygiene check for request-scoped code
// (written for internal/serve, enforced everywhere since it is cheap):
// a context.Context parameter must be the first parameter, and contexts
// must not be stored in struct fields. Both rules exist for the same
// reason — cancellation flows along call chains, and anything that
// hides the context (position, struct capture) eventually produces a
// handler that cannot be cancelled or traces that attach to the wrong
// request.
var AnalyzerCtxFirst = &Analyzer{
	Name:     "ctxfirst",
	Severity: SeverityWarn,
	Doc: "Requires context.Context parameters to come first (after the receiver) " +
		"and forbids storing contexts in struct fields; cancellation must flow " +
		"through call chains, not hide in state.",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.FuncDecl:
					checkCtxParams(p, node.Type)
				case *ast.FuncLit:
					checkCtxParams(p, node.Type)
				case *ast.StructType:
					for _, field := range node.Fields.List {
						if isContextType(p.TypeOf(field.Type)) {
							p.Report(field.Type.Pos(),
								"context.Context stored in a struct field outlives the call it belongs to",
								"pass the context as the first parameter of each method that needs it")
						}
					}
				}
				return true
			})
		}
	},
}

func checkCtxParams(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	// Walk individual parameters: a single *ast.Field may declare
	// several names (a, b context.Context), all sharing one position.
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter
		}
		if isContextType(p.TypeOf(field.Type)) && idx > 0 {
			p.Report(field.Type.Pos(),
				"context.Context parameter is not first; call sites and wrappers expect ctx up front",
				"move ctx to the first parameter position")
		}
		idx += n
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

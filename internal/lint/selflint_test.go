package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"vqprobe/internal/lint"
)

// TestSelfLint runs the full analyzer suite over the real repository —
// the same thing `go run ./cmd/vqlint ./...` does in CI — and fails on
// any unsuppressed diagnostic. Keeping this in tier-1 tests means an
// invariant regression fails `go test ./...` locally, not just the CI
// lint job.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module; skipped in -short")
	}
	wd, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	root, _, err := lint.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := lint.LoadConfigFile(filepath.Join(root, lint.ConfigFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(lint.ByName()); err != nil {
		t.Fatal(err)
	}

	pkgs, err := sharedLoader.LoadModule(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error (loader bug or broken code): %v", p.Path, terr)
		}
	}

	runner := &lint.Runner{Analyzers: lint.All(), Config: cfg}
	diags := runner.Run(pkgs)

	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil {
			rel = filepath.ToSlash(r)
		}
		if d.Suppressed {
			// The audit trail half of the suppression policy: a
			// suppression that reaches here always carries its reason.
			if strings.TrimSpace(d.SuppressReason) == "" {
				t.Errorf("%s:%d: suppressed %s finding without a reason", rel, d.Pos.Line, d.Check)
			}
			continue
		}
		t.Errorf("%s:%d:%d: %s: %s", rel, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}

	// The suite only earns its keep while it is actually exercised:
	// the intentional wall-clock sites in serve/ and trace/ must keep
	// flowing through the directive machinery.
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Error("expected suppressed virtclock findings in internal/serve and internal/trace; did the analyzer stop firing?")
	}
}

package lint

import (
	"go/ast"
)

// detrandAllowed are the math/rand package-level functions that do not
// touch the shared global source: constructors that the caller seeds
// explicitly.
var detrandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// AnalyzerDetRand enforces the byte-identical-output invariant from
// docs/PERFORMANCE.md: every random draw in library code must come
// from a *rand.Rand threaded down from the experiment configuration's
// seed. The global math/rand functions (rand.Intn, rand.Float64,
// rand.Shuffle, ...) share a process-wide source that other goroutines
// can advance, so a single call makes worker-count invariance and
// cross-run reproducibility unprovable. math/rand/v2's top-level
// functions are auto-seeded and are flagged for the same reason.
//
// The check also flags seeding from the wall clock
// (rand.NewSource(time.Now().UnixNano()) and friends): a time-derived
// seed is just global randomness with extra steps.
var AnalyzerDetRand = &Analyzer{
	Name:     "detrand",
	Severity: SeverityError,
	Doc: "Forbids global math/rand (and math/rand/v2) top-level draws and " +
		"wall-clock-derived seeds in library code; RNGs must be *rand.Rand " +
		"instances constructed from the experiment config's seed and threaded " +
		"explicitly.",
	RunFile: func(p *Pass, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := p.PkgFunc(call)
			if !ok {
				return true
			}
			switch pkgPath {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if !detrandAllowed[name] {
				p.Report(call.Pos(),
					"rand."+name+" draws from the shared global source; results depend on every other draw in the process",
					"construct rng := rand.New(rand.NewSource(cfg.Seed)) and thread it to this call site")
				return true
			}
			if name == "NewSource" && callsWallClock(p, call) {
				p.Report(call.Pos(),
					"rand.NewSource seeded from the wall clock is nondeterministic across runs",
					"seed from the experiment config (cfg.Seed) so runs are reproducible")
			}
			return true
		})
	},
}

// callsWallClock reports whether any subexpression of call invokes a
// wall-clock function of package time.
func callsWallClock(p *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, name, ok := p.PkgFunc(inner); ok && pkgPath == "time" {
				if _, banned := wallClockFuncs[name]; banned {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

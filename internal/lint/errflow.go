package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerErrFlow reports module-internal calls whose error result is
// silently dropped: the call stands alone as an expression statement
// (or is launched with go) and nobody looks at the error. On the serve
// and fleet hot paths a swallowed error is how a degraded probe keeps
// reporting healthy numbers — the paper's root-cause attribution is
// only as good as the error propagation feeding it.
//
// Explicit discards (`_ = f()`, `v, _ := f()`) are not findings: the
// blank identifier is a visible, reviewable decision. Deferred calls
// are exempt (`defer flush()` has no error path to thread), and only
// callees inside this module count — stdlib drops like fmt.Println are
// idiomatic.
var AnalyzerErrFlow = &Analyzer{
	Name:     "errflow",
	Severity: SeverityWarn,
	Doc: "Reports calls to module-internal functions whose error result is dropped " +
		"on the floor (bare expression statement or go statement). Explicit blank-" +
		"identifier discards and deferred calls are exempt; stdlib callees are exempt.",
	Run: func(p *Pass) {
		for _, fi := range p.Functions() {
			inspectSkipFuncLits(fi.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
						checkDroppedError(p, call, "")
					}
				case *ast.GoStmt:
					checkDroppedError(p, st.Call, "goroutine ")
					return false // the literal's body is its own FuncInfo
				case *ast.DeferStmt:
					return false // deferred cleanup: no error path to thread
				}
				return true
			})
		}
	},
}

// checkDroppedError reports call if it returns an error that this
// statement discards and the callee lives in this module.
func checkDroppedError(p *Pass, call *ast.CallExpr, context string) {
	callee, ok := calleeFunc(p, call)
	if !ok || !sameModule(callee.Pkg(), p.Path) {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			p.Report(call.Pos(),
				context+"call to "+callee.Name()+" drops its error result",
				"handle the error, or discard it explicitly with `_ = ...` and a comment saying why losing it is safe")
			return
		}
	}
}

// calleeFunc resolves the static callee of call: a package-level
// function or a method.
func calleeFunc(p *Pass, call *ast.CallExpr) (*types.Func, bool) {
	if m, _, ok := p.MethodCall(call); ok {
		return m, true
	}
	if p.Info == nil {
		return nil, false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	return fn, ok
}

// sameModule reports whether pkg shares selfPath's module root (the
// first import-path element), so "vqprobe/internal/serve" matches
// "vqprobe/internal/fleet" but not "fmt" or "os".
func sameModule(pkg *types.Package, selfPath string) bool {
	if pkg == nil {
		return false
	}
	root := func(path string) string {
		if i := strings.Index(path, "/"); i >= 0 {
			return path[:i]
		}
		return path
	}
	return root(pkg.Path()) == root(selfPath)
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vqprobe/internal/lint"
)

// writeCacheModule lays out a module where package b's walltaint
// finding depends on facts from package a: the cross-package case the
// cache must keep sound when only one side re-analyzes.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachetest\n\ngo 1.22\n",
		"a/a.go": `package a

import "time"

// Stamp reads the wall clock; callers become wall-tainted.
func Stamp() int64 { return time.Now().UnixNano() }
`,
		"b/b.go": `package b

import "cachetest/a"

// Encode is a deterministic sink.
//
//lint:deterministic cache test: encoded bytes are compared across runs
func Encode(vals ...int64) string { return "" }

// Flow feeds a wall-derived value into the sink.
func Flow() string { return Encode(a.Stamp()) }
`,
	}
	for rel, src := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func diagKeys(root string, diags []lint.Diagnostic) []string {
	var keys []string
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		rel := d.Pos.Filename
		if r, err := filepath.Rel(root, rel); err == nil {
			rel = filepath.ToSlash(r)
		}
		keys = append(keys, fmt.Sprintf("%s:%d:%s:%s", rel, d.Pos.Line, d.Check, d.Message))
	}
	sort.Strings(keys)
	return keys
}

func appendComment(t *testing.T, path string) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(src, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunModuleCache(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a module repeatedly with the source importer; skipped in -short")
	}
	root := writeCacheModule(t)
	// The source importer resolves module-internal imports by running
	// `go list` from the process working directory, so the test must
	// run from inside the throwaway module.
	chdir(t, root)
	cachePath := filepath.Join(t.TempDir(), "lint.cache.json")
	runner := &lint.Runner{Analyzers: lint.All(), Config: &lint.Config{}}

	run := func(label string, wantAnalyzed, wantCached int) lint.ModuleRunResult {
		t.Helper()
		res, err := lint.RunModule(root, nil, runner, cachePath)
		if err != nil {
			t.Fatal(err)
		}
		for _, terr := range res.TypeErrors {
			t.Fatalf("%s: cache module must type-check: %v", label, terr)
		}
		if res.Analyzed != wantAnalyzed || res.Cached != wantCached {
			t.Fatalf("%s: analyzed=%d cached=%d, want %d/%d",
				label, res.Analyzed, res.Cached, wantAnalyzed, wantCached)
		}
		return res
	}

	cold := run("cold", 2, 0)
	want := diagKeys(root, cold.Diags)
	var hasWallTaint, hasVirtClock bool
	for _, k := range want {
		if strings.Contains(k, ":walltaint:") {
			hasWallTaint = true
		}
		if strings.Contains(k, ":virtclock:") {
			hasVirtClock = true
		}
	}
	if !hasWallTaint || !hasVirtClock {
		t.Fatalf("cold run must find virtclock (a) and walltaint (b); got %v", want)
	}

	// Warm: everything served from the file, findings byte-identical.
	warm := run("warm", 0, 2)
	assertSameDiags(t, "warm", want, diagKeys(root, warm.Diags))

	// Touch only b: a stays cached, but its summary still feeds the
	// taint fixpoint, so b's cross-package walltaint finding survives.
	appendComment(t, filepath.Join(root, "b", "b.go"))
	afterB := run("touch b", 1, 1)
	assertSameDiags(t, "touch b", want, diagKeys(root, afterB.Diags))

	// Touch a: b's content key covers its transitive module-internal
	// imports, so both packages re-analyze.
	appendComment(t, filepath.Join(root, "a", "a.go"))
	run("touch a", 2, 0)

	// A different analyzer set changes the config hash and voids the
	// whole cache: stale entries must never answer for a new config.
	subset := &lint.Runner{Analyzers: lint.All()[:3], Config: &lint.Config{}}
	res, err := lint.RunModule(root, nil, subset, cachePath)
	if err != nil {
		t.Fatal(err)
	}
	if res.Analyzed != 2 || res.Cached != 0 {
		t.Fatalf("config change: analyzed=%d cached=%d, want 2/0", res.Analyzed, res.Cached)
	}
}

func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

func assertSameDiags(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d findings vs %d cold:\nwant %v\ngot  %v", label, len(got), len(want), want, got)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: finding %d differs:\nwant %s\ngot  %s", label, i, want[i], got[i])
		}
	}
}

package lint

// StaleSuppressCheckName is the suppression-audit meta-check: a
// //lint:ignore directive that suppresses nothing is itself a finding.
// Dead suppressions are worse than dead code — each one is a standing
// claim that an invariant is intentionally violated at that line, and
// once the violation is gone the claim silently rots, hiding the next
// real finding that lands on the same line. Like the directive check it
// is implemented inside the runner (it needs the post-suppression match
// state), and it only fires when every check the directive names
// actually ran for the package, so a restricted `-checks` invocation
// cannot misclassify a live suppression as stale.
const StaleSuppressCheckName = "stalesuppress"

// staleSuppressDiagnostics reports the unused directives of one package
// after applySuppressions ran. ranForPkg must contain the analyzer
// names that executed for this package (enabled and selected); only
// directives whose every named check ran are auditable.
func staleSuppressDiagnostics(pkg *Package, ranForPkg map[string]bool, report func(Diagnostic)) {
	for _, fileDirs := range pkg.directives {
		for i := range fileDirs {
			d := &fileDirs[i]
			if d.used {
				continue
			}
			auditable := true
			for _, check := range d.checks {
				if !ranForPkg[check] {
					auditable = false
					break
				}
			}
			if !auditable {
				continue
			}
			report(Diagnostic{
				Check:    StaleSuppressCheckName,
				Severity: SeverityWarn,
				Pos:      d.pos,
				Message: "//lint:ignore " + joinChecks(d.checks) + " suppresses nothing: no " +
					joinChecks(d.checks) + " finding on this or the next line",
				Fix: "delete the stale directive (vqlint -fix does this); if the invariant is " +
					"still intentionally violated nearby, move the directive to the offending line",
				Edits: []Edit{{
					File:              d.pos.Filename,
					Start:             d.pos.Offset,
					End:               d.end.Offset,
					DeleteLineIfBlank: true,
				}},
			})
		}
	}
}

func joinChecks(checks []string) string {
	out := ""
	for i, c := range checks {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}

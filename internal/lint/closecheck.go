package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCloseCheck flags discarded Close/Flush errors on writers. For
// a reader, Close rarely has anything to say; for a writer, Close and
// Flush are where buffered bytes actually reach the file — dropping
// that error means a truncated CSV trace or report that looks like it
// was written successfully. Exactly this class of bug produces
// "sometimes the last rows are missing" mysteries in pipeline output.
//
// Scope, deliberately narrow to stay high-signal:
//   - plain statements `w.Close()` / `w.Flush()` where the method
//     returns an error and the receiver has a Write method;
//   - `defer w.Flush()` (the error is structurally unobservable;
//     deferred Close is left alone because close-on-cleanup after an
//     explicit flush-and-check is idiomatic);
//   - files known to be read-only — variables assigned from os.Open in
//     the same file — are skipped even though *os.File technically has
//     a Write method: nothing buffered means nothing to lose.
var AnalyzerCloseCheck = &Analyzer{
	Name:     "closecheck",
	Severity: SeverityWarn,
	Doc: "Flags unchecked Close/Flush errors on writers (receiver has a Write " +
		"method, Close/Flush returns error): a dropped flush error silently " +
		"truncates output files.",
	RunFile: func(p *Pass, f *ast.File) {
		readOnly := readOnlyFiles(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if receiverIn(p, call, readOnly) {
						return true
					}
					if name, bad := uncheckedWriterClose(p, call); bad {
						p.Report(call.Pos(),
							name+" on a writer discards its error; buffered output may be silently lost",
							"check it: if err := x."+name+"(); err != nil { ... } (or return/record the error)")
					}
				}
			case *ast.DeferStmt:
				if name, bad := uncheckedWriterClose(p, stmt.Call); bad && name == "Flush" {
					p.Report(stmt.Call.Pos(),
						"deferred Flush discards its error; the final buffer may never reach the file",
						"flush explicitly before returning and check the error; keep defer Close for cleanup only")
				}
			}
			return true
		})
	},
}

// readOnlyFiles collects the objects of variables whose EVERY
// assignment in f is the first result of os.Open: their Close has no
// buffered writes to lose. Requiring every assignment matters — a
// variable opened for reading and later reassigned from os.Create is a
// writer, and exempting it on the strength of the earlier os.Open would
// hide exactly the truncated-output bug this check exists for.
func readOnlyFiles(p *Pass, f *ast.File) map[types.Object]bool {
	fromOpen := map[types.Object]bool{}
	otherwise := map[types.Object]bool{}
	objOf := func(id *ast.Ident) types.Object {
		if obj := p.Info.Defs[id]; obj != nil {
			return obj
		}
		return p.Info.Uses[id]
	}
	ast.Inspect(f, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		isOpen := false
		if len(assign.Rhs) == 1 {
			if call, isCall := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr); isCall {
				if pkgPath, name, isFn := p.PkgFunc(call); isFn && pkgPath == "os" && name == "Open" {
					isOpen = true
				}
			}
		}
		for i, lhs := range assign.Lhs {
			id, isIdent := ast.Unparen(lhs).(*ast.Ident)
			if !isIdent || id.Name == "_" {
				continue
			}
			obj := objOf(id)
			if obj == nil {
				continue
			}
			if isOpen && i == 0 {
				fromOpen[obj] = true // the *os.File result of f, err := os.Open(...)
			} else {
				otherwise[obj] = true
			}
		}
		return true
	})
	out := map[types.Object]bool{}
	for obj := range fromOpen {
		if !otherwise[obj] {
			out[obj] = true
		}
	}
	return out
}

// receiverIn reports whether call's receiver is a plain identifier in
// the given object set.
func receiverIn(p *Pass, call *ast.CallExpr, set map[types.Object]bool) bool {
	if len(set) == 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return set[p.Info.Uses[id]]
}

// uncheckedWriterClose reports whether call is a Close/Flush method
// invocation returning exactly one error on a receiver that has a
// Write method.
func uncheckedWriterClose(p *Pass, call *ast.CallExpr) (string, bool) {
	m, recv, ok := p.MethodCall(call)
	if !ok {
		return "", false
	}
	name := m.Name()
	if name != "Close" && name != "Flush" {
		return "", false
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return "", false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return "", false
	}
	if !HasMethod(recv, "Write") {
		return "", false
	}
	return name, true
}

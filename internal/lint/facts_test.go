package lint_test

import (
	"strings"
	"testing"

	"vqprobe/internal/lint"
)

// handSummaries builds a two-package module by hand:
//
//	a.stamp      reads time.Now (taint seed)
//	a.helper     calls a.stamp
//	a.quiet      reads time.Now under a suppression (no seed)
//	b.use        calls a.helper (cross-package propagation)
//	b.Encode     deterministic sink, clean
//	b.clean      no edges at all
func handSummaries() []*lint.PackageSummary {
	return []*lint.PackageSummary{
		{
			Path:   "mod/a",
			RelDir: "a",
			Funcs: []*lint.FuncSummary{
				{Sym: "a.stamp", Sources: []lint.SourceSite{{What: "time.Now"}}},
				{Sym: "a.helper", Calls: []lint.CallSite{{Sym: "a.stamp"}}},
				{Sym: "a.quiet", Sources: []lint.SourceSite{{What: "time.Now", Suppressed: true}}},
			},
		},
		{
			Path:   "mod/b",
			RelDir: "b",
			Funcs: []*lint.FuncSummary{
				{Sym: "b.use", Calls: []lint.CallSite{{Sym: "a.helper"}}},
				{Sym: "b.Encode", Sink: true, SinkReason: "bytes are diffed"},
				{Sym: "b.clean"},
			},
		},
	}
}

func TestBuildModuleFacts(t *testing.T) {
	facts := lint.BuildModuleFacts(handSummaries())

	if ti := facts.Tainted("a.stamp"); ti == nil || ti.Root != "time.Now" {
		t.Errorf("a.stamp: want direct time.Now taint, got %+v", ti)
	}
	if ti := facts.Tainted("a.helper"); ti == nil || ti.Via != "a.stamp" {
		t.Errorf("a.helper: want taint via a.stamp, got %+v", ti)
	}
	if ti := facts.Tainted("b.use"); ti == nil || ti.Via != "a.helper" {
		t.Errorf("b.use: want cross-package taint via a.helper, got %+v", ti)
	}
	if ti := facts.Tainted("a.quiet"); ti != nil {
		t.Errorf("a.quiet: suppressed source must not seed taint, got %+v", ti)
	}
	if ti := facts.Tainted("b.clean"); ti != nil {
		t.Errorf("b.clean: want no taint, got %+v", ti)
	}

	if fs := facts.Sink("b.Encode"); fs == nil || fs.SinkReason != "bytes are diffed" {
		t.Errorf("b.Encode: want sink with reason, got %+v", fs)
	}
	if fs := facts.Sink("b.use"); fs != nil {
		t.Errorf("b.use: not a sink, got %+v", fs)
	}

	path := facts.TaintPath("b.use")
	for _, hop := range []string{"b.use", "a.helper", "a.stamp", "time.Now"} {
		if !strings.Contains(path, hop) {
			t.Errorf("witness path %q missing hop %q", path, hop)
		}
	}
	if i, j := strings.Index(path, "a.helper"), strings.Index(path, "a.stamp"); i > j {
		t.Errorf("witness path %q lists hops out of call order", path)
	}
}

// TestBuildModuleFactsDeterministic feeds the same facts in reversed
// package and function order and demands identical witness paths — the
// property the sorted BFS worklist exists to provide.
func TestBuildModuleFactsDeterministic(t *testing.T) {
	a := lint.BuildModuleFacts(handSummaries())

	rev := handSummaries()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	for _, ps := range rev {
		fs := ps.Funcs
		for i, j := 0, len(fs)-1; i < j; i, j = i+1, j-1 {
			fs[i], fs[j] = fs[j], fs[i]
		}
	}
	b := lint.BuildModuleFacts(rev)

	for sym := range a.Taint {
		pa, pb := a.TaintPath(sym), b.TaintPath(sym)
		if pa != pb {
			t.Errorf("%s: witness path depends on input order:\n  %s\n  %s", sym, pa, pb)
		}
	}
	if len(a.Taint) != len(b.Taint) {
		t.Errorf("taint set size depends on input order: %d vs %d", len(a.Taint), len(b.Taint))
	}
}

package lint

import (
	"vqprobe/internal/parallel"
)

// Runner applies a set of analyzers to loaded packages, in parallel,
// with per-directory configuration and //lint:ignore suppression.
//
// A run has two phases. Phase one parses suppression directives and
// computes each package's FuncSummary facts (call edges, wall-clock /
// RNG source sites, deterministic-sink markers); the summaries — plus
// any supplied by the incremental cache for packages not loaded this
// run — merge into module-wide ModuleFacts via the taint fixpoint.
// Phase two runs the analyzers per package with those shared facts, so
// a check like walltaint sees call chains that cross package
// boundaries. Both phases use the per-index-slot worker pool, so
// output is byte-identical for any worker count.
type Runner struct {
	Analyzers []*Analyzer
	Config    *Config

	// Workers bounds per-package parallelism; <=0 means GOMAXPROCS
	// (resolved by internal/parallel, the same pool discipline as the
	// training engine: per-index output slots, serial merge).
	Workers int
}

// Run analyzes pkgs and returns all diagnostics — suppressed ones
// included, flagged — sorted by position. Callers filter on Suppressed
// for exit-code decisions; formatters show or hide them as appropriate.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	return r.RunWith(pkgs, nil)
}

// RunWith is Run with extra package summaries contributed by the
// incremental cache: facts from packages whose findings are cached (and
// therefore not re-analyzed) still participate in the module-wide taint
// fixpoint, so a cached helper that reads the wall clock taints its
// callers in freshly analyzed packages.
func (r *Runner) RunWith(pkgs []*Package, extra []*PackageSummary) []Diagnostic {
	cfg := r.Config
	if cfg == nil {
		cfg = &Config{}
	}
	// Directive validation recognizes every registered check, not just
	// the ones enabled for this run: `-checks virtclock` must not
	// reclassify a valid `//lint:ignore maporder ...` as unknown.
	known := ByName()
	for _, a := range r.Analyzers {
		known[a.Name] = a
	}

	// Phase 1: directives + per-package fact summaries, in parallel.
	parallel.For(len(pkgs), r.Workers, func(i int) {
		preparePackage(pkgs[i], known)
	})
	sums := make([]*PackageSummary, 0, len(pkgs)+len(extra))
	for _, pkg := range pkgs {
		sums = append(sums, pkg.summary)
	}
	sums = append(sums, extra...)
	facts := BuildModuleFacts(sums)

	// Phase 2: analyzers, with the shared facts.
	perPkg := make([][]Diagnostic, len(pkgs))
	parallel.For(len(pkgs), r.Workers, func(i int) {
		perPkg[i] = r.runPackage(pkgs[i], known, cfg, facts)
	})

	var all []Diagnostic
	for _, ds := range perPkg {
		all = append(all, ds...)
	}
	SortDiagnostics(all)
	return all
}

// preparePackage parses pkg's suppression directives (recording
// malformed ones as diagnostics for phase two to emit) and computes its
// fact summary. Idempotent: a package prepared by an earlier run keeps
// its parse results.
func preparePackage(pkg *Package, known map[string]*Analyzer) {
	if pkg.directives == nil {
		pkg.directives = make(map[string][]ignoreDirective)
		fset := pkg.Fset
		for _, f := range pkg.Files {
			name := fset.Position(f.Pos()).Filename
			pkg.directives[name] = parseDirectives(fset, f, known, func(d Diagnostic) {
				pkg.directiveDiags = append(pkg.directiveDiags, d)
			})
		}
	}
	SummarizePackage(pkg)
}

// runPackage runs every enabled analyzer over one package, applies the
// package's suppression directives, then audits them for staleness.
func (r *Runner) runPackage(pkg *Package, known map[string]*Analyzer, cfg *Config, facts *ModuleFacts) []Diagnostic {
	diags := append([]Diagnostic(nil), pkg.directiveDiags...)

	ran := map[string]bool{}
	for _, a := range r.Analyzers {
		if a.Name == DirectiveCheckName || a.Name == StaleSuppressCheckName {
			// Meta-checks: directive parsing happened in phase one;
			// staleness is judged below, after suppressions resolve.
			ran[a.Name] = true
			continue
		}
		if !cfg.EnabledIn(a.Name, pkg.RelDir) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			RelDir:   pkg.RelDir,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Facts:    facts,
			pkg:      pkg,
			diags:    &diags,
		}
		if a.Run != nil {
			a.Run(pass)
		}
		if a.RunFile != nil {
			for _, f := range pkg.Files {
				a.RunFile(pass, f)
			}
		}
	}

	applySuppressions(diags, pkg.directives)
	if ran[StaleSuppressCheckName] && cfg.EnabledIn(StaleSuppressCheckName, pkg.RelDir) {
		staleSuppressDiagnostics(pkg, ran, func(d Diagnostic) {
			diags = append(diags, d)
		})
	}
	return diags
}

package lint

import (
	"vqprobe/internal/parallel"
)

// Runner applies a set of analyzers to loaded packages, in parallel,
// with per-directory configuration and //lint:ignore suppression.
type Runner struct {
	Analyzers []*Analyzer
	Config    *Config

	// Workers bounds per-package parallelism; <=0 means GOMAXPROCS
	// (resolved by internal/parallel, the same pool discipline as the
	// training engine: per-index output slots, serial merge).
	Workers int
}

// Run analyzes pkgs and returns all diagnostics — suppressed ones
// included, flagged — sorted by position. Callers filter on Suppressed
// for exit-code decisions; formatters show or hide them as appropriate.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	cfg := r.Config
	if cfg == nil {
		cfg = &Config{}
	}
	// Directive validation recognizes every registered check, not just
	// the ones enabled for this run: `-checks virtclock` must not
	// reclassify a valid `//lint:ignore maporder ...` as unknown.
	known := ByName()
	for _, a := range r.Analyzers {
		known[a.Name] = a
	}

	perPkg := make([][]Diagnostic, len(pkgs))
	parallel.For(len(pkgs), r.Workers, func(i int) {
		perPkg[i] = r.runPackage(pkgs[i], known, cfg)
	})

	var all []Diagnostic
	for _, ds := range perPkg {
		all = append(all, ds...)
	}
	SortDiagnostics(all)
	return all
}

// runPackage runs every enabled analyzer over one package and applies
// the package's suppression directives.
func (r *Runner) runPackage(pkg *Package, known map[string]*Analyzer, cfg *Config) []Diagnostic {
	var diags []Diagnostic

	// Parse directives first: malformed ones are diagnostics in their
	// own right, and well-formed ones suppress findings below.
	byFile := make(map[string][]ignoreDirective)
	fset := pkg.Fset
	for _, f := range pkg.Files {
		name := fset.Position(f.Pos()).Filename
		byFile[name] = parseDirectives(fset, f, known, func(d Diagnostic) {
			diags = append(diags, d)
		})
	}

	for _, a := range r.Analyzers {
		if a.Name == DirectiveCheckName {
			continue // handled above, during directive parsing
		}
		if !cfg.EnabledIn(a.Name, pkg.RelDir) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			RelDir:   pkg.RelDir,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			diags:    &diags,
		}
		if a.Run != nil {
			a.Run(pass)
		}
		if a.RunFile != nil {
			for _, f := range pkg.Files {
				a.RunFile(pass, f)
			}
		}
	}

	applySuppressions(diags, byFile)
	return diags
}
